// Nested data (§V): a deeply nested trips table queried with the legacy
// row-based reader and the new columnar reader; then a schema evolution —
// adding a struct field — showing old files read the new field as NULL
// while renames and type changes are rejected.
//
//	go run ./examples/nested
package main

import (
	"fmt"
	"log"
	"time"

	"prestolite/internal/connectors/hive"
	"prestolite/internal/core"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/types"
	"prestolite/internal/workload"
)

func main() {
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	cfg := workload.TripsConfig{RowsPerDate: 5000, Dates: 2, FilesPerDate: 4, RowGroupRows: 1024, NeedleCityID: 99999}
	if _, err := workload.BuildTripsWarehouse(ms, nn, cfg); err != nil {
		log.Fatal(err)
	}

	oldEngine := core.New()
	oldEngine.Register("hive", hive.New("hive", ms, nn, hive.Options{UseLegacyReader: true}))
	newEngine := core.New()
	newEngine.Register("hive", hive.New("hive", ms, nn, hive.Options{}))
	session := core.DefaultSession("hive", "rawdata")

	// The §V.C needle-in-a-haystack query over a 20-field nested struct.
	needle := `SELECT base.driver_uuid FROM trips
		WHERE datestr = '2017-03-01' AND base.city_id IN (99999)`
	fmt.Println("needle query:", needle)
	for _, e := range []struct {
		name   string
		engine *core.Engine
	}{{"legacy reader", oldEngine}, {"new reader   ", newEngine}} {
		start := time.Now()
		res, err := e.engine.Query(session, needle)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %6.1fms, %d rows\n", e.name, float64(time.Since(start).Microseconds())/1000, res.RowCount())
	}

	// Nested column pruning is visible in the plan.
	plan, err := newEngine.Explain(session, needle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnew reader plan (nestedPaths = only the struct fields touched):")
	fmt.Print(plan)

	// Schema evolution: add base.loyalty_points (allowed). Old files read
	// NULL for it.
	fmt.Println("\n-- schema evolution --")
	t, err := ms.GetTable("rawdata", "trips")
	if err != nil {
		log.Fatal(err)
	}
	baseType := t.Columns[1].Type
	evolved := append([]types.Field{}, baseType.Fields...)
	evolved = append(evolved, types.Field{Name: "loyalty_points", Type: types.Bigint})
	newCols := []metastore.Column{
		t.Columns[0],
		{Name: "base", Type: types.NewRow(evolved...)},
	}
	if err := ms.EvolveTable("rawdata", "trips", newCols); err != nil {
		log.Fatal(err)
	}
	fmt.Println("added field base.loyalty_points (v2 of the schema)")

	res, err := newEngine.Query(session, `SELECT count(*), count(base.loyalty_points) FROM trips`)
	if err != nil {
		log.Fatal(err)
	}
	row := res.Rows()[0]
	fmt.Printf("rows in old files: %v; non-null loyalty_points: %v (new fields read as NULL in old data)\n", row[0], row[1])

	// Rename and type change: rejected by the schema service.
	if err := ms.RenameColumn("rawdata", "trips", "base", "base_v2"); err != nil {
		fmt.Println("rename rejected:", err)
	}
	badCols := []metastore.Column{t.Columns[0], {Name: "base", Type: types.NewRow(types.Field{Name: "driver_uuid", Type: types.Bigint})}}
	if err := ms.EvolveTable("rawdata", "trips", badCols); err != nil {
		fmt.Println("type change rejected:", err)
	}
}
