// Federation: one SQL query joining three heterogeneous systems — a hive
// warehouse (columnar files on simulated HDFS), MySQL (row store) and Druid
// (real-time OLAP) — with no data copy (§IV). EXPLAIN shows each connector
// absorbing its pushdowns, including aggregation pushdown into druid.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"

	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/mysql"
	"prestolite/internal/core"
	"prestolite/internal/druid"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/mysqlite"
	"prestolite/internal/types"
	"prestolite/internal/workload"
)

func main() {
	engine := core.New()

	// Catalog 1: hive — the trips warehouse on simulated HDFS.
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	cfg := workload.TripsConfig{RowsPerDate: 2000, Dates: 2, FilesPerDate: 2, RowGroupRows: 1024, NeedleCityID: 9999}
	if _, err := workload.BuildTripsWarehouse(ms, nn, cfg); err != nil {
		log.Fatal(err)
	}
	engine.Register("hive", hive.New("hive", ms, nn, hive.Options{}))

	// Catalog 2: mysql — operational city metadata with transactions.
	db := mysqlite.New()
	if _, err := db.CreateTable("city_meta", []mysqlite.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "tier", Type: types.Varchar},
	}, "city_id"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		tier := "launch"
		if i%3 == 0 {
			tier = "mature"
		}
		if err := db.Insert("city_meta", []any{int64(i), tier}); err != nil {
			log.Fatal(err)
		}
	}
	engine.Register("mysql", mysql.New("mysql", "ops", db))

	// Catalog 3: druid — real-time events.
	store := druid.NewStore()
	if err := workload.BuildEventsTable(store, workload.EventsConfig{Rows: 20000, Segments: 2}); err != nil {
		log.Fatal(err)
	}
	engine.Register("druid", druidconn.New("druid", &druid.EmbeddedClient{Store: store}))

	session := core.DefaultSession("hive", "rawdata")

	// Join warehouse trips with MySQL metadata: no pipelines, no copies.
	fmt.Println("-- trips per city tier (hive ⋈ mysql) --")
	res, err := engine.Query(session, `
		SELECT m.tier, count(*) AS trips, sum(t.base.fare) AS revenue
		FROM hive.rawdata.trips t
		JOIN mysql.ops.city_meta m ON t.base.city_id = m.city_id
		GROUP BY m.tier ORDER BY trips DESC`)
	if err != nil {
		log.Fatal(err)
	}
	printRows(res)

	// Sub-second store through full SQL: druid does the aggregation.
	fmt.Println("\n-- real-time clicks by country (aggregation pushed into druid) --")
	res, err = engine.Query(session, `
		SELECT country, sum(clicks) AS clicks
		FROM druid.default.events
		WHERE device = 'ios'
		GROUP BY country ORDER BY clicks DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	printRows(res)

	fmt.Println("\n-- EXPLAIN (note aggregationPushdown + filter in the druid scan) --")
	plan, err := engine.Explain(session, `
		SELECT country, sum(clicks) FROM druid.default.events
		WHERE device = 'ios' GROUP BY country`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan)
}

func printRows(res *core.Result) {
	for _, c := range res.Columns {
		fmt.Printf("%-14s", c.Name)
	}
	fmt.Println()
	for _, row := range res.Rows() {
		for _, v := range row {
			fmt.Printf("%-14v", v)
		}
		fmt.Println()
	}
}
