// Geospatial: the §VI.C query — how many trips end inside each city's
// geofence — run twice: brute-force st_contains for every (trip, city) pair,
// then with the QuadTree rewrite (Fig 13). Same results, very different
// latency.
//
//	go run ./examples/geospatial
package main

import (
	"fmt"
	"log"
	"time"

	"prestolite/internal/connectors/memory"
	"prestolite/internal/core"
	"prestolite/internal/workload"
)

func main() {
	mem := memory.New("memory")
	cfg := workload.GeoConfig{Cities: 100, VerticesPerCity: 300, Trips: 5000}
	if err := workload.BuildGeoTables(mem, cfg); err != nil {
		log.Fatal(err)
	}
	engine := core.New()
	engine.Register("memory", mem)

	fast := core.DefaultSession("memory", "geo")
	slow := core.DefaultSession("memory", "geo")
	slow.Properties["geospatial_optimization"] = "false"

	fmt.Println("query:", workload.GeoQuery)

	start := time.Now()
	bruteRes, err := engine.Query(slow, workload.GeoQuery)
	if err != nil {
		log.Fatal(err)
	}
	bruteTime := time.Since(start)

	start = time.Now()
	quadRes, err := engine.Query(fast, workload.GeoQuery)
	if err != nil {
		log.Fatal(err)
	}
	quadTime := time.Since(start)

	fmt.Printf("\nbrute force: %8.1fms  (%d cities matched)\n", float64(bruteTime.Microseconds())/1000, bruteRes.RowCount())
	fmt.Printf("quadtree:    %8.1fms  (%d cities matched)\n", float64(quadTime.Microseconds())/1000, quadRes.RowCount())
	fmt.Printf("speedup:     %8.0fx\n", float64(bruteTime)/float64(quadTime))

	plan, err := engine.Explain(fast, workload.GeoQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrewritten plan (Fig 13):")
	fmt.Print(plan)

	fmt.Println("\ntop cities by arrivals:")
	rows := quadRes.Rows()
	for i := 0; i < len(rows) && i < 5; i++ {
		fmt.Printf("  city %v: %v trips\n", rows[i][0], rows[i][1])
	}
}
