// Real-time analytics: the title of the paper, end to end. Events stream
// through the partitioned append log into druid segments (mutable → sealed
// → compacted) while a hybrid table splices them onto Parquet history — one
// SQL name spanning the batch and real-time worlds, split by the optimizer
// on a time watermark.
//
//	go run ./examples/realtime
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/hybrid"
	"prestolite/internal/core"
	"prestolite/internal/druid"
	"prestolite/internal/hdfs"
	"prestolite/internal/ingest"
	"prestolite/internal/metastore"
	"prestolite/internal/types"
	"prestolite/internal/workload"
)

const boundary = int64(1_000_000) // watermark: hive below, druid at or above

func main() {
	engine := core.New()

	// Historical side: a hive table of yesterday's events on simulated HDFS.
	fs := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar, types.Bigint})
	const histRows = 20000
	for i := 0; i < histRows; i++ {
		pb.AppendRow([]any{int64(i), []string{"us", "de", "jp", "br"}[i%4], int64(i % 10)})
	}
	if err := loader.CreateTable("web", "events_hist", cols, []*block.Page{pb.Build()}); err != nil {
		log.Fatal(err)
	}
	engine.Register("hive", hive.New("hive", ms, fs, hive.Options{}))

	// Real-time side: an empty druid table with streaming thresholds.
	store := druid.NewStore()
	rt, err := store.CreateTable("events_rt", []druid.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	})
	if err != nil {
		log.Fatal(err)
	}
	rt.SetSegmentConfig(druid.SegmentConfig{
		SealRows:         4000,
		SealAge:          500 * time.Millisecond,
		CompactBelowRows: 2000,
		CompactBatch:     8,
	})
	engine.Register("druid", druidconn.New("druid", &druid.EmbeddedClient{Store: store}))

	// The hybrid table gluing both sides under one name.
	hc := hybrid.New("hybrid", engine.Catalogs)
	if err := hc.AddTable("events", hybrid.TableConfig{
		Historical: connector.HybridPart{Catalog: "hive", Schema: "web", Table: "events_hist"},
		Realtime:   connector.HybridPart{Catalog: "druid", Schema: "default", Table: "events_rt"},
		TimeColumn: "ts",
		Boundary:   boundary,
	}); err != nil {
		log.Fatal(err)
	}
	engine.Register("hybrid", hc)
	session := core.DefaultSession("hybrid", "default")

	// Show the expansion: one scan becomes union(hive | watermark | druid),
	// and a time predicate prunes the side it rules out.
	for _, q := range []string{
		"SELECT count(*) FROM events",
		fmt.Sprintf("SELECT count(*) FROM events WHERE ts >= %d", boundary),
	} {
		plan, err := engine.Explain(session, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("EXPLAIN %s\n%s\n", q, plan)
	}

	// Stream events: producer -> partitioned log -> segment writer -> druid.
	lg := ingest.NewLog()
	topic, err := lg.CreateTopic("events", 4)
	if err != nil {
		log.Fatal(err)
	}
	writer := ingest.NewSegmentWriter(lg, topic, rt, ingest.WriterConfig{MaintainEvery: 100 * time.Millisecond})
	writer.Start()
	producer := ingest.NewProducer(topic, ingest.ProducerConfig{})

	count := func() int64 {
		res, err := engine.Query(session, "SELECT count(*) AS n FROM events")
		if err != nil {
			log.Fatal(err)
		}
		return res.Rows()[0][0].(int64)
	}
	fmt.Printf("before streaming: count(*) = %d (history only)\n", count())

	const events = 10000
	start := time.Now()
	sent, err := workload.RunStream(context.Background(), workload.StreamConfig{
		EventsPerSec: 20000,
		MaxEvents:    events,
		Seed:         7,
	}, func(ev workload.StreamEvent) error {
		return producer.Send(ev.Key, ev.Time, []any{boundary + ev.Seq, ev.Country, ev.Clicks})
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := producer.Close(); err != nil {
		log.Fatal(err)
	}
	for lg.Lag(ingest.DefaultWriterGroup, "events") > 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("streamed %d events in %v\n", sent, time.Since(start).Round(time.Millisecond))

	fmt.Printf("after streaming:  count(*) = %d (want %d)\n", count(), histRows+events)
	res, err := engine.Query(session, fmt.Sprintf(
		"SELECT country, count(*) AS n FROM events WHERE ts >= %d GROUP BY country ORDER BY n DESC LIMIT 3", boundary))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top real-time countries:")
	for _, row := range res.Rows() {
		fmt.Printf("  %v\n", row)
	}

	writer.Stop()
	stats := rt.Stats()
	hs := writer.Freshness().Snapshot()
	fmt.Printf("segments: open=%d sealed=%d (compacted %d), rows=%d\n",
		stats.Open, stats.Sealed, stats.Compacted, stats.Rows)
	fmt.Printf("freshness: p50=%v p99=%v over %d events\n",
		time.Duration(hs.P50).Round(time.Microsecond), time.Duration(hs.P99).Round(time.Microsecond), hs.Count)
}
