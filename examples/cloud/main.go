// Cloud (§IX): a hive warehouse whose files live in simulated S3 behind
// PrestoS3FileSystem (lazy seek, exponential backoff, multipart upload),
// queried by a coordinator + workers cluster that then expands with a new
// worker and gracefully shrinks one away under live traffic.
//
//	go run ./examples/cloud
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/cluster"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/metastore"
	"prestolite/internal/planner"
	"prestolite/internal/s3"
	"prestolite/internal/types"
)

func main() {
	// S3 with throttling: 1 in 40 requests gets a transient 503; the
	// exponential backoff in PrestoS3FileSystem rides them out.
	store := s3.NewStore(s3.Config{ThrottleEvery: 40})
	fs := s3.NewFileSystem(store, s3.DefaultConfig())

	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "fare", Type: types.Double},
	}
	var pages []*block.Page
	for f := 0; f < 8; f++ {
		pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Double})
		for i := 0; i < 5000; i++ {
			pb.AppendRow([]any{int64(i % 20), float64(i%50) + 2.5})
		}
		pages = append(pages, pb.Build())
	}
	if err := loader.CreateTable("lake", "trips", cols, pages); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d objects to s3 (puts=%d, throttles ridden out=%d, backoff retries=%d)\n",
		8, store.Counters.PutRequests.Load(), store.Counters.Throttles.Load(), fs.Retries.N)

	catalogs := connector.NewRegistry()
	catalogs.Register("hive", hive.New("hive", ms, fs, hive.Options{}))

	// A 2-worker cluster.
	coord := cluster.NewCoordinator(catalogs)
	var workers []*cluster.Worker
	addWorker := func() *cluster.Worker {
		w := cluster.NewWorker(catalogs)
		w.GracePeriod = 50 * time.Millisecond
		if err := w.Start("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		coord.AddWorker(w.Addr())
		workers = append(workers, w)
		return w
	}
	addWorker()
	addWorker()
	session := &planner.Session{Catalog: "hive", Schema: "lake", User: "demo", Properties: map[string]string{}}

	q := "SELECT city_id, count(*), avg(fare) FROM trips GROUP BY city_id ORDER BY 2 DESC LIMIT 3"
	res, err := coord.Query(session, q)
	if err != nil {
		log.Fatal(err)
	}
	rows, _ := res.Rows() // the query just succeeded; Rows cannot fail here
	fmt.Println("\ntop cities from S3-backed warehouse (2 workers):")
	for _, r := range rows {
		fmt.Printf("  city %v: %v trips, avg fare %.2f\n", r[0], r[1], r[2])
	}

	// Graceful expansion: a third worker joins; next queries use it.
	fmt.Println("\nexpanding: +1 worker during busy hours")
	addWorker()
	fmt.Printf("cluster now has %d workers\n", len(coord.Workers()))

	// Graceful shrink under live traffic: zero failed queries.
	fmt.Println("shrinking: draining one worker while queries keep flowing")
	var wg sync.WaitGroup
	failures := 0
	var mu sync.Mutex
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := coord.Query(session, q); err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	go workers[0].GracefulShutdown()
	workers[0].WaitShutdown()
	close(stop)
	wg.Wait()
	fmt.Printf("worker drained (state=%s); failed queries during shrink: %d\n", workers[0].State(), failures)
	for _, w := range workers[1:] {
		_ = w.Close() // example teardown
	}
}
