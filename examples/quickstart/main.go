// Quickstart: embed the engine, register an in-memory catalog, run SQL.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/core"
	"prestolite/internal/types"
)

func main() {
	// 1. Create an engine and a memory catalog.
	engine := core.New()
	mem := memory.New("memory")
	engine.Register("memory", mem)

	// 2. Create a table and load rows.
	cols := []connector.Column{
		{Name: "city", Type: types.Varchar},
		{Name: "trips", Type: types.Bigint},
		{Name: "fare", Type: types.Double},
	}
	if err := mem.CreateTable("demo", "rides", cols, nil); err != nil {
		log.Fatal(err)
	}
	rows := [][]any{
		{"san francisco", int64(3), 21.5},
		{"san francisco", int64(1), 8.0},
		{"oakland", int64(2), 12.0},
		{"san jose", int64(5), 33.5},
	}
	if err := mem.AppendRows("demo", "rides", rows); err != nil {
		log.Fatal(err)
	}

	// 3. Query.
	session := core.DefaultSession("memory", "demo")
	res, err := engine.Query(session, `
		SELECT city, sum(trips) AS total_trips, avg(fare) AS avg_fare
		FROM rides
		WHERE fare > 5.0
		GROUP BY city
		ORDER BY total_trips DESC`)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Columns {
		fmt.Printf("%-16s", c.Name)
	}
	fmt.Println()
	for _, row := range res.Rows() {
		for _, v := range row {
			fmt.Printf("%-16v", v)
		}
		fmt.Println()
	}

	// 4. EXPLAIN shows the optimized plan with connector pushdowns.
	plan, err := engine.Explain(session, "SELECT city FROM rides WHERE fare > 5.0 LIMIT 2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN:")
	fmt.Print(plan)
}
