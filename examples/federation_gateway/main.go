// Cluster federation (§VIII): two presto clusters behind a gateway that
// routes by user/group from a MySQL table, then a zero-downtime drain of the
// dedicated cluster for "maintenance".
//
//	go run ./examples/federation_gateway
package main

import (
	"fmt"
	"log"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/cluster"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/gateway"
	"prestolite/internal/types"
)

func startCluster(marker string) (*cluster.Coordinator, func()) {
	mem := memory.New("memory")
	if err := mem.CreateTable("meta", "whoami", []connector.Column{
		{Name: "cluster", Type: types.Varchar},
	}, []*block.Page{block.NewPage(block.FromValues(types.Varchar, marker))}); err != nil {
		log.Fatal(err)
	}
	reg := connector.NewRegistry()
	reg.Register("memory", mem)
	coord := cluster.NewCoordinator(reg)
	w := cluster.NewWorker(reg)
	w.GracePeriod = 10 * time.Millisecond
	if err := w.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	coord.AddWorker(w.Addr())
	if err := coord.Start("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	return coord, func() { _ = coord.Close(); _ = w.Close() } // example teardown
}

func main() {
	dedicated, stop1 := startCluster("dedicated-latency-sensitive")
	defer stop1()
	shared, stop2 := startCluster("shared-big-cluster")
	defer stop2()

	gw, err := gateway.New()
	if err != nil {
		log.Fatal(err)
	}
	check(gw.AddCluster("dedicated", dedicated.Addr()))
	check(gw.AddCluster("shared", shared.Addr()))
	check(gw.SetRoute("user:pricing-bot", "dedicated"))
	check(gw.SetRoute("group:marketplace", "dedicated"))
	check(gw.SetRoute("default", "shared"))
	check(gw.Start("127.0.0.1:0"))
	defer gw.Close()
	fmt.Println("gateway on", gw.Addr(), "— routing stored in MySQL, editable live")

	ask := func(user, group string) string {
		client := cluster.NewClient(gw.Addr())
		res, err := client.QueryWithIdentity(cluster.StatementRequest{
			Query: "SELECT cluster FROM whoami", Catalog: "memory", Schema: "meta", User: user,
		}, user, group)
		if err != nil {
			log.Fatal(err)
		}
		rows, _ := res.Rows() // the query just succeeded; Rows cannot fail here
		return rows[0][0].(string)
	}

	fmt.Printf("pricing-bot        -> %s\n", ask("pricing-bot", ""))
	fmt.Printf("ana (marketplace)  -> %s\n", ask("ana", "marketplace"))
	fmt.Printf("bob (etl)          -> %s\n", ask("bob", "etl"))

	fmt.Println("\nmaintenance window: draining the dedicated cluster (no downtime)")
	check(gw.SetClusterEnabled("dedicated", false))
	fmt.Printf("pricing-bot        -> %s\n", ask("pricing-bot", ""))
	check(gw.SetClusterEnabled("dedicated", true))
	fmt.Println("maintenance done")
	fmt.Printf("pricing-bot        -> %s\n", ask("pricing-bot", ""))
	fmt.Printf("\n%d redirects issued\n", gw.Redirects.Load())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
