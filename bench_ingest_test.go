package prestolite_test

// Real-time ingestion benchmark (BENCH_PR6.json via `make bench-ingest-json`):
// streams a fixed event load through the partitioned log into druid segments
// while 0/4/16 concurrent hybrid queries run, and reports event-to-queryable
// freshness percentiles plus sustained ingest throughput. The interesting
// comparison is how much concurrent analytical load degrades freshness.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/hybrid"
	"prestolite/internal/core"
	"prestolite/internal/druid"
	"prestolite/internal/hdfs"
	"prestolite/internal/ingest"
	"prestolite/internal/metastore"
	"prestolite/internal/types"
	"prestolite/internal/workload"
)

const (
	benchIngestBoundary = int64(1_000_000)
	benchIngestHistRows = 10_000
	benchIngestEvents   = 20_000
)

// benchIngestEngine builds the hybrid stack: hive historical, an empty druid
// real-time table with streaming segment thresholds, and the hybrid catalog.
func benchIngestEngine(b *testing.B) (*core.Engine, *druid.Table) {
	b.Helper()
	fs := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar, types.Bigint})
	for i := 0; i < benchIngestHistRows; i++ {
		pb.AppendRow([]any{int64(i), []string{"us", "de", "jp"}[i%3], int64(i % 10)})
	}
	if err := loader.CreateTable("web", "events_hist", cols, []*block.Page{pb.Build()}); err != nil {
		b.Fatal(err)
	}
	store := druid.NewStore()
	rt, err := store.CreateTable("events_rt", []druid.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	})
	if err != nil {
		b.Fatal(err)
	}
	rt.SetSegmentConfig(druid.SegmentConfig{
		SealRows:         5000,
		SealAge:          time.Second,
		CompactBelowRows: 2500,
		CompactBatch:     8,
	})
	e := core.New()
	e.Register("hive", hive.New("hive", ms, fs, hive.Options{}))
	e.Register("druid", druidconn.New("druid", &druid.EmbeddedClient{Store: store}))
	hc := hybrid.New("hybrid", e.Catalogs)
	if err := hc.AddTable("events", hybrid.TableConfig{
		Historical: connector.HybridPart{Catalog: "hive", Schema: "web", Table: "events_hist"},
		Realtime:   connector.HybridPart{Catalog: "druid", Schema: "default", Table: "events_rt"},
		TimeColumn: "ts",
		Boundary:   benchIngestBoundary,
	}); err != nil {
		b.Fatal(err)
	}
	e.Register("hybrid", hc)
	return e, rt
}

var benchIngestQueries = []string{
	"SELECT count(*) AS n FROM events",
	"SELECT country, sum(clicks) AS s FROM events GROUP BY country",
	fmt.Sprintf("SELECT count(*) AS n FROM events WHERE ts >= %d", benchIngestBoundary),
}

// BenchmarkIngestFreshness: one op = streaming benchIngestEvents events into
// a fresh table under N concurrent analytical queries. Reported metrics:
// freshness p50/p95/p99 (ms) and sustained ingest rows/s.
func BenchmarkIngestFreshness(b *testing.B) {
	for _, queries := range []int{0, 4, 16} {
		b.Run(fmt.Sprintf("queries=%d", queries), func(b *testing.B) {
			var p50, p95, p99, rowsPerSec float64
			for i := 0; i < b.N; i++ {
				e, rt := benchIngestEngine(b)
				log := ingest.NewLog()
				topic, err := log.CreateTopic("events", 4)
				if err != nil {
					b.Fatal(err)
				}
				producer := ingest.NewProducer(topic, ingest.ProducerConfig{BatchRecords: 256, Linger: 5 * time.Millisecond})
				writer := ingest.NewSegmentWriter(log, topic, rt, ingest.WriterConfig{MaintainEvery: 100 * time.Millisecond})
				writer.Start()

				// Concurrent analytical load on the hybrid table.
				session := core.DefaultSession("hybrid", "default")
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for q := 0; q < queries; q++ {
					wg.Add(1)
					go func(q int) {
						defer wg.Done()
						for j := 0; ; j++ {
							select {
							case <-stop:
								return
							default:
							}
							res, err := e.Query(session, benchIngestQueries[(q+j)%len(benchIngestQueries)])
							if err != nil {
								b.Error(err)
								return
							}
							_ = res.RowCount()
						}
					}(q)
				}

				start := time.Now()
				if _, err := workload.RunStream(context.Background(), workload.StreamConfig{
					MaxEvents: benchIngestEvents, // unpaced: as fast as the log accepts
					Seed:      int64(i + 1),
				}, func(ev workload.StreamEvent) error {
					return producer.Send(ev.Key, ev.Time, []any{benchIngestBoundary + ev.Seq, ev.Country, ev.Clicks})
				}); err != nil {
					b.Fatal(err)
				}
				if err := producer.Close(); err != nil {
					b.Fatal(err)
				}
				for log.Lag(ingest.DefaultWriterGroup, "events") > 0 {
					time.Sleep(time.Millisecond)
				}
				elapsed := time.Since(start)
				writer.Stop()
				close(stop)
				wg.Wait()

				hs := writer.Freshness().Snapshot()
				p50 = float64(hs.P50) / 1e6
				p95 = float64(hs.P95) / 1e6
				p99 = float64(hs.P99) / 1e6
				rowsPerSec = float64(benchIngestEvents) / elapsed.Seconds()
			}
			b.ReportMetric(p50, "p50-ms")
			b.ReportMetric(p95, "p95-ms")
			b.ReportMetric(p99, "p99-ms")
			b.ReportMetric(rowsPerSec, "rows/s")
		})
	}
}
