package prestolite_test

// One testing.B benchmark per table/figure of the paper's evaluation, plus
// ablations for the design choices DESIGN.md calls out. `go test -bench=.`
// runs everything; cmd/prestobench prints the same comparisons as aligned
// tables with per-query rows.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"prestolite/internal/connector"
	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/core"
	"prestolite/internal/druid"
	"prestolite/internal/expr"
	"prestolite/internal/geo"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/parquet"
	"prestolite/internal/planner"
	"prestolite/internal/tpch"
	"prestolite/internal/types"
	"prestolite/internal/workload"

	"prestolite/internal/block"
)

// ---------------------------------------------------------------------------
// Fig 16: Druid native vs Presto-Druid connector.

func fig16Fixtures(b *testing.B) (*druid.Store, *core.Engine, *planner.Session) {
	b.Helper()
	store := druid.NewStore()
	if err := workload.BuildEventsTable(store, workload.EventsConfig{Rows: 50000, Segments: 4}); err != nil {
		b.Fatal(err)
	}
	engine := core.New()
	engine.Register("druid", druidconn.New("druid", &druid.EmbeddedClient{Store: store}))
	return store, engine, core.DefaultSession("druid", "default")
}

func BenchmarkFig16DruidNative(b *testing.B) {
	store, _, _ := fig16Fixtures(b)
	queries := workload.EventQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := store.Execute(q.Native); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig16PrestoDruidConnector(b *testing.B) {
	_, engine, session := fig16Fixtures(b)
	queries := workload.EventQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := engine.Query(session, q.SQL); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Fig 17: old vs new Parquet reader over the nested trips warehouse.

func fig17Engine(b *testing.B, legacy bool) (*core.Engine, *planner.Session, workload.TripsConfig) {
	b.Helper()
	cfg := workload.TripsConfig{RowsPerDate: 4000, Dates: 3, FilesPerDate: 4, RowGroupRows: 2048, NeedleCityID: 99999}
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	if _, err := workload.BuildTripsWarehouse(ms, nn, cfg); err != nil {
		b.Fatal(err)
	}
	e := core.New()
	e.Register("hive", hive.New("hive", ms, nn, hive.Options{UseLegacyReader: legacy}))
	return e, core.DefaultSession("hive", "rawdata"), cfg
}

func runTripQueries(b *testing.B, e *core.Engine, s *planner.Session, cfg workload.TripsConfig, kind string) {
	b.Helper()
	queries := workload.TripQueries(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if kind != "" && q.Kind != kind {
				continue
			}
			if _, err := e.Query(s, q.SQL); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig17OldReaderAll21(b *testing.B) {
	e, s, cfg := fig17Engine(b, true)
	runTripQueries(b, e, s, cfg, "")
}

func BenchmarkFig17NewReaderAll21(b *testing.B) {
	e, s, cfg := fig17Engine(b, false)
	runTripQueries(b, e, s, cfg, "")
}

func BenchmarkFig17OldReaderNeedle(b *testing.B) {
	e, s, cfg := fig17Engine(b, true)
	runTripQueries(b, e, s, cfg, "needle")
}

func BenchmarkFig17NewReaderNeedle(b *testing.B) {
	e, s, cfg := fig17Engine(b, false)
	runTripQueries(b, e, s, cfg, "needle")
}

// Ablation: each new-reader optimization off, one at a time, over the
// needle workload (design-choice ablation from DESIGN.md).
func BenchmarkFig17Ablation(b *testing.B) {
	cfg := workload.TripsConfig{RowsPerDate: 4000, Dates: 3, FilesPerDate: 4, RowGroupRows: 2048, NeedleCityID: 99999}
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	if _, err := workload.BuildTripsWarehouse(ms, nn, cfg); err != nil {
		b.Fatal(err)
	}
	variants := map[string]hive.Options{
		"AllOn":                hive.Options{},
		"NoColumnPruning":      {Reader: hive.ReaderToggles{NoColumnPruning: true}},
		"NoPredicatePushdown":  {Reader: hive.ReaderToggles{NoPredicatePushdown: true}},
		"NoDictionaryPushdown": {Reader: hive.ReaderToggles{NoDictionaryPushdown: true}},
		"NoLazyReads":          {Reader: hive.ReaderToggles{NoLazyReads: true}},
		"NoVectorized":         {Reader: hive.ReaderToggles{NoVectorized: true}},
	}
	for name, opts := range variants {
		opts := opts
		b.Run(name, func(b *testing.B) {
			e := core.New()
			e.Register("hive", hive.New("hive", ms, nn, opts))
			s := core.DefaultSession("hive", "rawdata")
			runTripQueries(b, e, s, cfg, "needle")
		})
	}
}

// ---------------------------------------------------------------------------
// Figs 18-20: old vs native Parquet writer throughput per dataset and codec.

func benchWriter(b *testing.B, codec parquet.Codec, native bool) {
	for _, ds := range workload.WriterDatasets() {
		ds := ds
		rows := 50000
		if ds.Name == "All Lineitem columns" {
			rows = 12000
		}
		b.Run(ds.Name, func(b *testing.B) {
			page := ds.Generate(1, rows)
			schema, err := parquet.NewSchema(ds.Cols, ds.Types)
			if err != nil {
				b.Fatal(err)
			}
			opts := parquet.WriterOptions{Codec: codec, RowGroupRows: 8192}
			b.SetBytes(int64(page.SizeBytes()))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var werr error
				if native {
					w, err := parquet.NewNativeWriter(io.Discard, schema, opts)
					if err != nil {
						b.Fatal(err)
					}
					werr = w.WritePage(page)
					if werr == nil {
						werr = w.Close()
					}
				} else {
					w, err := parquet.NewLegacyWriter(io.Discard, schema, opts)
					if err != nil {
						b.Fatal(err)
					}
					werr = w.WritePage(page)
					if werr == nil {
						werr = w.Close()
					}
				}
				if werr != nil {
					b.Fatal(werr)
				}
			}
		})
	}
}

func BenchmarkFig18SnappyOldWriter(b *testing.B)    { benchWriter(b, parquet.CodecSnappy, false) }
func BenchmarkFig18SnappyNativeWriter(b *testing.B) { benchWriter(b, parquet.CodecSnappy, true) }
func BenchmarkFig19GzipOldWriter(b *testing.B)      { benchWriter(b, parquet.CodecGzip, false) }
func BenchmarkFig19GzipNativeWriter(b *testing.B)   { benchWriter(b, parquet.CodecGzip, true) }
func BenchmarkFig20NoneOldWriter(b *testing.B)      { benchWriter(b, parquet.CodecNone, false) }
func BenchmarkFig20NoneNativeWriter(b *testing.B)   { benchWriter(b, parquet.CodecNone, true) }

// ---------------------------------------------------------------------------
// §VI geospatial: brute force vs QuadTree spatial join.

func geoEngine(b *testing.B, trips int) (*core.Engine, *planner.Session, *planner.Session) {
	b.Helper()
	mem := memory.New("memory")
	cfg := workload.GeoConfig{Cities: 100, VerticesPerCity: 200, Trips: trips}
	if err := workload.BuildGeoTables(mem, cfg); err != nil {
		b.Fatal(err)
	}
	e := core.New()
	e.Register("memory", mem)
	fast := core.DefaultSession("memory", "geo")
	slow := core.DefaultSession("memory", "geo")
	slow.Properties["geospatial_optimization"] = "false"
	return e, fast, slow
}

func BenchmarkGeoQuadTreeJoin(b *testing.B) {
	e, fast, _ := geoEngine(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(fast, workload.GeoQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeoBruteForceJoin(b *testing.B) {
	e, _, slow := geoEngine(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(slow, workload.GeoQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// QuadTree parameter sweep (design-choice ablation).
func BenchmarkGeoQuadTreeParams(b *testing.B) {
	var wkts []string
	for i := 0; i < 500; i++ {
		c := float64(i%25)*10 + 5
		r := float64(i/25)*10 + 5
		wkts = append(wkts, fmt.Sprintf("POLYGON ((%v %v, %v %v, %v %v, %v %v, %v %v))",
			c-4, r-4, c+4, r-4, c+4, r+4, c-4, r+4, c-4, r-4))
	}
	for _, maxEntries := range []int{2, 8, 32, 128} {
		maxEntries := maxEntries
		b.Run(fmt.Sprintf("maxEntries=%d", maxEntries), func(b *testing.B) {
			var boxes []geo.BBox
			var shapes []*geo.Geometry
			bounds := geo.EmptyBBox()
			for _, w := range wkts {
				g, err := geo.ParseWKT(w)
				if err != nil {
					b.Fatal(err)
				}
				shapes = append(shapes, g)
				bb := geo.BoundsOf(g)
				boxes = append(boxes, bb)
				bounds = bounds.Union(bb)
			}
			tree := geo.NewQuadTree(bounds, geo.QuadTreeOptions{MaxEntries: maxEntries})
			for i, bb := range boxes {
				tree.Insert(int32(i), bb)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := geo.Point{Lng: float64(i%250) + 0.5, Lat: float64((i*7)%200) + 0.5}
				tree.Candidates(p, nil)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// §VII caches.

func BenchmarkCacheFileList(b *testing.B) {
	for _, cached := range []bool{false, true} {
		cached := cached
		name := "Disabled"
		if cached {
			name = "Enabled"
		}
		b.Run(name, func(b *testing.B) {
			cfg := workload.TripsConfig{RowsPerDate: 500, Dates: 3, FilesPerDate: 2, RowGroupRows: 512, NeedleCityID: 9}
			nn := hdfs.New(hdfs.Config{})
			ms := metastore.New()
			if _, err := workload.BuildTripsWarehouse(ms, nn, cfg); err != nil {
				b.Fatal(err)
			}
			e := core.New()
			e.Register("hive", hive.New("hive", ms, nn, hive.Options{DisableFileListCache: !cached, DisableFooterCache: !cached}))
			s := core.DefaultSession("hive", "rawdata")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(s, "SELECT count(*) FROM trips"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(nn.Counters.ListFilesCalls.Load())/float64(b.N), "listFiles/op")
			b.ReportMetric(float64(nn.Counters.GetFileInfoCalls.Load())/float64(b.N), "getFileInfo/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Engine ablations.

// Vectorized vs row-at-a-time expression evaluation.
func BenchmarkExprVectorizedVsRow(b *testing.B) {
	n := 8192
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % 100)
	}
	page := block.NewPage(block.NewInt64Block(vals))
	pred := expr.MustCall("eq", expr.NewVariable("c", 0, types.Bigint), expr.NewConstant(int64(42), types.Bigint))
	b.Run("Vectorized", func(b *testing.B) {
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			if _, err := expr.EvalFilter(pred, page); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RowAtATime", func(b *testing.B) {
		b.SetBytes(int64(8 * n))
		for i := 0; i < b.N; i++ {
			count := 0
			for r := 0; r < n; r++ {
				v, err := expr.EvalRowValue(pred, page.Row(r))
				if err != nil {
					b.Fatal(err)
				}
				if v == true {
					count++
				}
			}
		}
	})
}

// Broadcast vs partitioned join strategies (plan-level; execution identical
// in embedded mode, so this measures planning/strategy selection cost and
// documents the session property).
func BenchmarkJoinStrategies(b *testing.B) {
	mem := memory.New("memory")
	if err := workload.BuildGeoTables(mem, workload.GeoConfig{Cities: 50, VerticesPerCity: 8, Trips: 5000}); err != nil {
		b.Fatal(err)
	}
	e := core.New()
	e.Register("memory", mem)
	q := "SELECT count(*) FROM trips t JOIN cities c ON t.trip_id = c.city_id"
	for _, strategy := range []string{"partitioned", "broadcast"} {
		strategy := strategy
		b.Run(strategy, func(b *testing.B) {
			s := core.DefaultSession("memory", "geo")
			s.Properties["join_distribution_type"] = strategy
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(s, q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Intra-task parallelism: driver pipelines over a shared split queue.
//
// The container running CI may have a single CPU, so the headline workload
// models what the paper's §III actually parallelizes on real clusters:
// overlapping *storage waits*. latencySource charges a disaggregated-storage
// read RTT per page, and N drivers overlap N reads — speedup there is
// wait-overlap, not core count. The in-memory variants are CPU-bound and
// reported alongside for honesty: on a single-core host they hover near 1x
// (measuring exchange overhead); on multi-core hosts they scale with cores.

// latencyConnector wraps a connector so every page read costs rtt, modeling
// a remote disaggregated-storage round trip.
type latencyConnector struct {
	connector.Connector
	rtt time.Duration
}

func (c *latencyConnector) RecordSetProvider() connector.RecordSetProvider {
	return &latencyProvider{base: c.Connector.RecordSetProvider(), rtt: c.rtt}
}

type latencyProvider struct {
	base connector.RecordSetProvider
	rtt  time.Duration
}

func (p *latencyProvider) CreatePageSource(h connector.TableHandle, s connector.Split, cols []int) (connector.PageSource, error) {
	src, err := p.base.CreatePageSource(h, s, cols)
	if err != nil {
		return nil, err
	}
	return &latencySource{PageSource: src, rtt: p.rtt}, nil
}

type latencySource struct {
	connector.PageSource
	rtt time.Duration
}

func (s *latencySource) Next() (*block.Page, error) {
	time.Sleep(s.rtt)
	return s.PageSource.Next()
}

// intraTaskEngine builds a LINEITEM warehouse with `files` splits; rtt > 0
// wraps the catalog in the storage-latency model.
func intraTaskEngine(b *testing.B, files int, rtt time.Duration) *core.Engine {
	b.Helper()
	fs := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := make([]metastore.Column, len(tpch.LineItemColumns))
	for i, c := range tpch.LineItemColumns {
		cols[i] = metastore.Column{Name: c.Name, Type: c.Type}
	}
	var pages []*block.Page
	for f := 0; f < files; f++ {
		pages = append(pages, tpch.GeneratePage(99+int64(f), 250))
	}
	if err := loader.CreateTable("tpch", "lineitem", cols, pages); err != nil {
		b.Fatal(err)
	}
	var conn connector.Connector = hive.New("hive", ms, fs, hive.Options{})
	if rtt > 0 {
		conn = &latencyConnector{Connector: conn, rtt: rtt}
	}
	e := core.New()
	e.Register("hive", conn)
	return e
}

func intraTaskSession(drivers int) *planner.Session {
	s := core.DefaultSession("hive", "tpch")
	s.Properties["task_concurrency"] = fmt.Sprint(drivers)
	return s
}

func BenchmarkIntraTaskParallelism(b *testing.B) {
	const storageRTT = 400 * time.Microsecond
	const groupbySQL = `SELECT l_orderkey, l_partkey, count(*) AS n FROM lineitem GROUP BY l_orderkey, l_partkey`
	const joinSQL = `SELECT count(*) AS n FROM lineitem a JOIN lineitem b ON a.l_orderkey = b.l_orderkey`
	workloads := []struct {
		name    string
		rtt     time.Duration
		sql     string
		rowwise bool // vectorized_execution=false: the row-at-a-time baseline
	}{
		{name: "storage_scan_agg", rtt: storageRTT, sql: `SELECT l_returnflag, l_linestatus, count(*) AS n, sum(l_quantity) AS q
			FROM lineitem GROUP BY l_returnflag, l_linestatus`},
		{name: "inmem_scan_filter", sql: `SELECT count(*) AS n FROM lineitem WHERE l_quantity < 25.0`},
		{name: "inmem_groupby", sql: groupbySQL},
		{name: "inmem_join", sql: joinSQL},
		// The _rowwise twins pin the reference operators; benchjson derives
		// vector_speedups (vectorized at N drivers vs rowwise at 1) from the
		// pairing — the kernels' contribution measured against a fixed
		// serial baseline, independent of the host's core count.
		{name: "inmem_groupby_rowwise", sql: groupbySQL, rowwise: true},
		{name: "inmem_join_rowwise", sql: joinSQL, rowwise: true},
	}
	for _, w := range workloads {
		e := intraTaskEngine(b, 32, w.rtt)
		for _, drivers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/drivers=%d", w.name, drivers), func(b *testing.B) {
				session := intraTaskSession(drivers)
				if w.rowwise {
					session.Properties["vectorized_execution"] = "false"
				}
				for i := 0; i < b.N; i++ {
					if _, err := e.Query(session, w.sql); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
