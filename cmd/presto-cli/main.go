// Command presto-cli runs SQL either against an embedded demo engine or a
// remote coordinator/gateway:
//
//	presto-cli -demo -execute "SELECT city, count(*) FROM trips GROUP BY city"
//	presto-cli -server 127.0.0.1:8080 -catalog hive -schema rawdata
//
// Without -execute it reads statements from stdin, one per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"prestolite/internal/cluster"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/core"
	"prestolite/internal/types"
)

func main() {
	server := flag.String("server", "", "coordinator or gateway address (host:port)")
	demo := flag.Bool("demo", false, "use an embedded engine with a demo dataset")
	catalog := flag.String("catalog", "memory", "default catalog")
	schema := flag.String("schema", "demo", "default schema")
	user := flag.String("user", os.Getenv("USER"), "user for gateway routing")
	group := flag.String("group", "", "group for gateway routing")
	execute := flag.String("execute", "", "run one statement and exit")
	flag.Parse()

	var runQuery func(q string) error
	switch {
	case *server != "":
		client := cluster.NewClient(*server)
		runQuery = func(q string) error {
			res, err := client.QueryWithIdentity(cluster.StatementRequest{
				Query: q, Catalog: *catalog, Schema: *schema, User: *user,
			}, *user, *group)
			if err != nil {
				return err
			}
			rows, err := res.Rows()
			if err != nil {
				return err
			}
			printTable(res.Columns, rows)
			return nil
		}
	case *demo:
		engine := demoEngine()
		session := core.DefaultSession(*catalog, *schema)
		runQuery = func(q string) error {
			res, err := engine.Query(session, q)
			if err != nil {
				return err
			}
			names := make([]string, len(res.Columns))
			for i, c := range res.Columns {
				names[i] = c.Name
			}
			printTable(names, res.Rows())
			return nil
		}
	default:
		fmt.Fprintln(os.Stderr, "presto-cli: need -server or -demo")
		os.Exit(2)
	}

	if *execute != "" {
		if err := runQuery(*execute); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("presto> ")
	for scanner.Scan() {
		q := strings.TrimSpace(scanner.Text())
		if q == "" || q == "quit" || q == "exit" {
			if q != "" {
				return
			}
			fmt.Print("presto> ")
			continue
		}
		if err := runQuery(q); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		fmt.Print("presto> ")
	}
}

func printTable(columns []string, rows [][]any) {
	fmt.Println(strings.Join(columns, " | "))
	fmt.Println(strings.Repeat("-", len(strings.Join(columns, " | "))))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			if v == nil {
				parts[i] = "NULL"
			} else {
				parts[i] = fmt.Sprintf("%v", v)
			}
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", len(rows))
}

// demoEngine builds a small in-memory dataset for kicking the tires.
func demoEngine() *core.Engine {
	engine := core.New()
	mem := memory.New("memory")
	cols := []connector.Column{
		{Name: "city", Type: types.Varchar},
		{Name: "trips", Type: types.Bigint},
		{Name: "revenue", Type: types.Double},
	}
	if err := mem.CreateTable("demo", "trips", cols, nil); err != nil {
		panic(err)
	}
	rows := [][]any{
		{"san francisco", int64(1200), 18500.0},
		{"oakland", int64(340), 5100.5},
		{"san jose", int64(411), 7200.25},
	}
	if err := mem.AppendRows("demo", "trips", rows); err != nil {
		panic(err)
	}
	engine.Register("memory", mem)
	return engine
}
