// Command presto-coordinator starts a cluster coordinator with a demo
// warehouse (simulated HDFS + metastore + hive catalog, plus a druid
// catalog):
//
//	presto-coordinator -listen 127.0.0.1:8080
//
// Workers join via presto-worker -coordinator <addr>. Query with:
//
//	presto-cli -server 127.0.0.1:8080 -catalog hive -schema rawdata
package main

import (
	"flag"
	"fmt"
	"os"

	"prestolite/internal/cluster"
	"prestolite/internal/resource"
	"prestolite/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	memoryLimit := flag.Int64("memory-limit", 0, "process-wide memory pool in bytes (0 = unlimited)")
	spillDir := flag.String("spill-dir", "", "enable spill-to-disk under this directory")
	spillBudget := flag.Int64("spill-budget", 0, "disk cap for live spill runs in bytes (0 = unlimited)")
	oomKill := flag.Bool("oom-kill", false, "kill the largest query when the shared pool is exhausted")
	maxConcurrency := flag.Int("max-concurrency", 0, "admission: concurrent queries in the default group (0 = no admission control)")
	maxQueued := flag.Int("max-queued", 0, "admission: queued queries before 429 rejections")
	perQueryMemory := flag.Int64("query-max-memory", 0, "default per-query memory cap in bytes (0 = uncapped)")
	flag.Parse()

	catalogs, err := workload.DemoCatalogs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "presto-coordinator:", err)
		os.Exit(1)
	}
	coord := cluster.NewCoordinator(catalogs)
	if *memoryLimit > 0 || *spillDir != "" || *maxConcurrency > 0 {
		cfg := cluster.ResourceConfig{
			MemoryLimit: *memoryLimit,
			SpillDir:    *spillDir,
			SpillBudget: *spillBudget,
			OOMKill:     *oomKill,
		}
		if *maxConcurrency > 0 {
			cfg.Groups = []resource.GroupConfig{{
				Name:           "default",
				MaxConcurrency: *maxConcurrency,
				MaxQueued:      *maxQueued,
				PerQueryMemory: *perQueryMemory,
			}}
		}
		if err := coord.ConfigureResources(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "presto-coordinator:", err)
			os.Exit(1)
		}
	}
	if err := coord.Start(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "presto-coordinator:", err)
		os.Exit(1)
	}
	fmt.Printf("coordinator listening on %s (catalogs: hive, druid)\n", coord.Addr())
	fmt.Println("workers join with: presto-worker -coordinator", coord.Addr())
	select {}
}
