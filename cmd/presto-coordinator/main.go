// Command presto-coordinator starts a cluster coordinator with a demo
// warehouse (simulated HDFS + metastore + hive catalog, plus a druid
// catalog):
//
//	presto-coordinator -listen 127.0.0.1:8080
//
// Workers join via presto-worker -coordinator <addr>. Query with:
//
//	presto-cli -server 127.0.0.1:8080 -catalog hive -schema rawdata
package main

import (
	"flag"
	"fmt"
	"os"

	"prestolite/internal/cluster"
	"prestolite/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "listen address")
	flag.Parse()

	catalogs, err := workload.DemoCatalogs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "presto-coordinator:", err)
		os.Exit(1)
	}
	coord := cluster.NewCoordinator(catalogs)
	if err := coord.Start(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "presto-coordinator:", err)
		os.Exit(1)
	}
	fmt.Printf("coordinator listening on %s (catalogs: hive, druid)\n", coord.Addr())
	fmt.Println("workers join with: presto-worker -coordinator", coord.Addr())
	select {}
}
