// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report:
//
//	go test -bench BenchmarkIntraTaskParallelism -run '^$' . | benchjson -o BENCH_PR5.json
//
// Each benchmark line becomes one result entry. Sub-benchmarks named
// ".../drivers=N" are additionally folded into a speedups section keyed by
// workload, reporting each driver count's throughput relative to drivers=1 —
// the number the intra-task parallelism acceptance criterion reads.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "p99-ms", "rows/s")
	// keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Context  map[string]string             `json:"context,omitempty"`
	Results  []result                      `json:"results"`
	Speedups map[string]map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		r := result{Name: trimProcSuffix(fields[0])}
		var err error
		if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					r.NsPerOp = v
				}
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.BytesPerOp = v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.AllocsPerOp = v
				}
			default:
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					if r.Metrics == nil {
						r.Metrics = map[string]float64{}
					}
					r.Metrics[unit] = v
				}
			}
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Speedups = speedups(rep.Results)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// trimProcSuffix drops go test's trailing -GOMAXPROCS from a benchmark name.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups groups ".../drivers=N" results by workload and reports each
// driver count's speedup over that workload's drivers=1 run.
func speedups(results []result) map[string]map[string]float64 {
	type sample struct {
		drivers string
		nsPerOp float64
	}
	groups := map[string][]sample{}
	for _, r := range results {
		i := strings.LastIndex(r.Name, "/drivers=")
		if i < 0 || r.NsPerOp <= 0 {
			continue
		}
		workload := r.Name[:i]
		groups[workload] = append(groups[workload], sample{r.Name[i+len("/drivers="):], r.NsPerOp})
	}
	out := map[string]map[string]float64{}
	for workload, samples := range groups {
		var base float64
		for _, s := range samples {
			if s.drivers == "1" {
				base = s.nsPerOp
			}
		}
		if base <= 0 {
			continue
		}
		m := map[string]float64{}
		for _, s := range samples {
			// Two decimal places: these are summary ratios, not raw data.
			m["drivers="+s.drivers] = float64(int(base/s.nsPerOp*100+0.5)) / 100
		}
		out[workload] = m
	}
	return out
}
