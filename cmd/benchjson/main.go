// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report:
//
//	go test -bench BenchmarkIntraTaskParallelism -run '^$' . | benchjson -o BENCH_PR8.json
//
// Each benchmark line becomes one result entry. Sub-benchmarks named
// ".../drivers=N" are additionally folded into a speedups section keyed by
// workload, reporting each driver count's throughput relative to drivers=1 —
// the number the intra-task parallelism acceptance criterion reads. Workload
// pairs named X and X_rowwise additionally produce a vector_speedups section:
// X at each driver count relative to X_rowwise at drivers=1, isolating the
// vectorized kernels' contribution from driver parallelism. Workload pairs
// named X/cache=on and X/cache=off produce a cache_speedups section: the
// cache hierarchy's steady-state throughput over the cold baseline.
//
// With -compare OLD.json the report is additionally checked against a
// previous run: any benchmark present in both whose ns/op regressed more
// than 20% fails the command (exit 1) after the new report is written —
// the trajectory gate for BENCH_*.json files checked into the repo.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "p99-ms", "rows/s")
	// keyed by unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Context  map[string]string             `json:"context,omitempty"`
	Results  []result                      `json:"results"`
	Speedups map[string]map[string]float64 `json:"speedups,omitempty"`
	// VectorSpeedups compares each workload X (vectorized) at every driver
	// count against its X_rowwise sibling at drivers=1 — the row-at-a-time
	// serial baseline.
	VectorSpeedups map[string]map[string]float64 `json:"vector_speedups,omitempty"`
	// CacheSpeedups compares each workload X/cache=on against its
	// X/cache=off sibling — steady-state throughput with the §VII cache
	// hierarchy (chunk, fragment, result tiers + affinity scheduling)
	// relative to every refresh running cold.
	CacheSpeedups map[string]float64 `json:"cache_speedups,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "previous report to diff against; >20% ns/op regressions fail")
	flag.Parse()

	rep := report{Context: map[string]string{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				rep.Context[key] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		r := result{Name: trimProcSuffix(fields[0])}
		var err error
		if r.Iterations, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					r.NsPerOp = v
				}
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.BytesPerOp = v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.AllocsPerOp = v
				}
			default:
				if v, err := strconv.ParseFloat(val, 64); err == nil {
					if r.Metrics == nil {
						r.Metrics = map[string]float64{}
					}
					r.Metrics[unit] = v
				}
			}
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Speedups = speedups(rep.Results)
	rep.VectorSpeedups = vectorSpeedups(rep.Results)
	rep.CacheSpeedups = cacheSpeedups(rep.Results)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// The comparison runs after the report is written: a failing gate still
	// leaves the new numbers on disk to inspect.
	if *compare != "" && regressed(rep.Results, *compare) {
		os.Exit(1)
	}
}

// regressionThreshold is how much slower (ns/op) a benchmark may get
// relative to the compared report before the run fails.
const regressionThreshold = 1.20

// regressed diffs the new results against the report at path and reports
// whether any shared benchmark slowed down past the threshold.
func regressed(results []result, path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: -compare:", err)
		return true
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -compare %s: %v\n", path, err)
		return true
	}
	base := make(map[string]float64, len(old.Results))
	for _, r := range old.Results {
		if r.NsPerOp > 0 {
			base[r.Name] = r.NsPerOp
		}
	}
	bad := false
	for _, r := range results {
		was, ok := base[r.Name]
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		if r.NsPerOp > was*regressionThreshold {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s: %.0f ns/op, was %.0f (%.2fx > %.2fx allowed)\n",
				r.Name, r.NsPerOp, was, r.NsPerOp/was, regressionThreshold)
			bad = true
		}
	}
	if bad {
		fmt.Fprintf(os.Stderr, "benchjson: regressions vs %s\n", path)
	}
	return bad
}

// vectorSpeedups pairs each ".../X/drivers=N" workload with its
// ".../X_rowwise/drivers=1" sibling and reports the vectorized path's
// speedup over the serial row-at-a-time baseline at every driver count —
// kernel contribution times driver scaling, against a fixed denominator.
func vectorSpeedups(results []result) map[string]map[string]float64 {
	byName := make(map[string]float64, len(results))
	for _, r := range results {
		if r.NsPerOp > 0 {
			byName[r.Name] = r.NsPerOp
		}
	}
	out := map[string]map[string]float64{}
	for _, r := range results {
		i := strings.LastIndex(r.Name, "/drivers=")
		if i < 0 || r.NsPerOp <= 0 {
			continue
		}
		workload := r.Name[:i]
		if strings.HasSuffix(workload, "_rowwise") {
			continue
		}
		base, ok := byName[workload+"_rowwise/drivers=1"]
		if !ok {
			continue
		}
		m := out[workload]
		if m == nil {
			m = map[string]float64{}
			out[workload] = m
		}
		// Two decimal places: these are summary ratios, not raw data.
		m["drivers="+r.Name[i+len("/drivers="):]] = float64(int(base/r.NsPerOp*100+0.5)) / 100
	}
	return out
}

// cacheSpeedups pairs each ".../cache=on" workload with its ".../cache=off"
// sibling and reports the cache hierarchy's speedup over the cold baseline —
// the dashboard-QPS acceptance ratio.
func cacheSpeedups(results []result) map[string]float64 {
	byName := make(map[string]float64, len(results))
	for _, r := range results {
		if r.NsPerOp > 0 {
			byName[r.Name] = r.NsPerOp
		}
	}
	out := map[string]float64{}
	for _, r := range results {
		workload, ok := strings.CutSuffix(r.Name, "/cache=on")
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		base, ok := byName[workload+"/cache=off"]
		if !ok {
			continue
		}
		// Two decimal places: these are summary ratios, not raw data.
		out[workload] = float64(int(base/r.NsPerOp*100+0.5)) / 100
	}
	return out
}

// trimProcSuffix drops go test's trailing -GOMAXPROCS from a benchmark name.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// speedups groups ".../drivers=N" results by workload and reports each
// driver count's speedup over that workload's drivers=1 run.
func speedups(results []result) map[string]map[string]float64 {
	type sample struct {
		drivers string
		nsPerOp float64
	}
	groups := map[string][]sample{}
	for _, r := range results {
		i := strings.LastIndex(r.Name, "/drivers=")
		if i < 0 || r.NsPerOp <= 0 {
			continue
		}
		workload := r.Name[:i]
		groups[workload] = append(groups[workload], sample{r.Name[i+len("/drivers="):], r.NsPerOp})
	}
	out := map[string]map[string]float64{}
	for workload, samples := range groups {
		var base float64
		for _, s := range samples {
			if s.drivers == "1" {
				base = s.nsPerOp
			}
		}
		if base <= 0 {
			continue
		}
		m := map[string]float64{}
		for _, s := range samples {
			// Two decimal places: these are summary ratios, not raw data.
			m["drivers="+s.drivers] = float64(int(base/s.nsPerOp*100+0.5)) / 100
		}
		out[workload] = m
	}
	return out
}
