// Command presto-gateway starts the cluster-federation gateway (§VIII):
//
//	presto-gateway -listen 127.0.0.1:9000 \
//	  -cluster shared=127.0.0.1:8080 -cluster dedicated=127.0.0.1:8081 \
//	  -route default=shared -route user:alice=dedicated
//
// Clients point presto-cli -server at the gateway; queries are redirected
// (HTTP 307) to the cluster their user/group maps to.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prestolite/internal/gateway"
)

type kvList []string

func (l *kvList) String() string     { return strings.Join(*l, ",") }
func (l *kvList) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	listen := flag.String("listen", "127.0.0.1:9000", "listen address")
	var clusters, routes kvList
	flag.Var(&clusters, "cluster", "name=addr (repeatable)")
	flag.Var(&routes, "route", "principal=cluster (repeatable); principals: default, user:<u>, group:<g>")
	flag.Parse()

	gw, err := gateway.New()
	if err != nil {
		fmt.Fprintln(os.Stderr, "presto-gateway:", err)
		os.Exit(1)
	}
	for _, c := range clusters {
		parts := strings.SplitN(c, "=", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "presto-gateway: bad -cluster", c)
			os.Exit(2)
		}
		if err := gw.AddCluster(parts[0], parts[1]); err != nil {
			fmt.Fprintln(os.Stderr, "presto-gateway:", err)
			os.Exit(1)
		}
	}
	for _, r := range routes {
		parts := strings.SplitN(r, "=", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "presto-gateway: bad -route", r)
			os.Exit(2)
		}
		if err := gw.SetRoute(parts[0], parts[1]); err != nil {
			fmt.Fprintln(os.Stderr, "presto-gateway:", err)
			os.Exit(1)
		}
	}
	if err := gw.Start(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "presto-gateway:", err)
		os.Exit(1)
	}
	fmt.Printf("gateway listening on %s\n", gw.Addr())
	select {}
}
