// Command prestobench regenerates every table and figure of the paper's
// evaluation (§X) plus the quantitative claims of §VI (geospatial), §VII
// (caches) and §IX (S3):
//
//	prestobench -experiment fig16    # Druid vs Presto-Druid connector
//	prestobench -experiment fig17    # old vs new Parquet reader (21 queries)
//	prestobench -experiment fig17ab  # per-optimization reader ablation
//	prestobench -experiment fig18    # writer throughput, Snappy
//	prestobench -experiment fig19    # writer throughput, Gzip
//	prestobench -experiment fig20    # writer throughput, uncompressed
//	prestobench -experiment geo      # QuadTree vs brute-force spatial join
//	prestobench -experiment cache    # file list + footer cache RPC reduction
//	prestobench -experiment s3       # PrestoS3FileSystem optimizations
//	prestobench -experiment all
//
// Use -scale to shrink or grow the workloads (1.0 = the defaults used in
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"

	"prestolite/internal/bench"
	"prestolite/internal/parquet"
	"prestolite/internal/workload"
)

func main() {
	experiment := flag.String("experiment", "all", "which experiment to run")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	repeats := flag.Int("repeats", 3, "timing repetitions (best-of)")
	flag.Parse()

	if err := run(*experiment, *scale, *repeats); err != nil {
		fmt.Fprintln(os.Stderr, "prestobench:", err)
		os.Exit(1)
	}
}

func run(experiment string, scale float64, repeats int) error {
	sc := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	runOne := func(name string) error {
		var rep *bench.Report
		var err error
		switch name {
		case "fig16":
			cfg := workload.DefaultEventsConfig()
			cfg.Rows = sc(cfg.Rows)
			rep, err = bench.RunFig16(cfg, repeats)
		case "fig17":
			cfg := workload.DefaultTripsConfig()
			cfg.RowsPerDate = sc(cfg.RowsPerDate)
			rep, err = bench.RunFig17(cfg, repeats)
		case "fig17ab":
			cfg := workload.DefaultTripsConfig()
			cfg.RowsPerDate = sc(cfg.RowsPerDate)
			rep, err = bench.RunFig17Ablation(cfg, repeats)
		case "fig18":
			rep, err = bench.RunWriterFigure(parquet.CodecSnappy, sc(200000), repeats)
		case "fig19":
			rep, err = bench.RunWriterFigure(parquet.CodecGzip, sc(100000), repeats)
		case "fig20":
			rep, err = bench.RunWriterFigure(parquet.CodecNone, sc(200000), repeats)
		case "geo":
			cfg := workload.DefaultGeoConfig()
			cfg.Trips = sc(cfg.Trips)
			rep, err = bench.RunGeo(cfg, repeats)
		case "cache":
			rep, err = bench.RunCache(sc(20))
		case "s3":
			rep, err = bench.RunS3(sc(50000))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep.Print(os.Stdout)
		return nil
	}
	if experiment == "all" {
		for _, name := range []string{"fig16", "fig17", "fig17ab", "fig18", "fig19", "fig20", "geo", "cache", "s3"} {
			if err := runOne(name); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(experiment)
}
