// Command presto-worker starts a worker, mounts the same demo catalogs as
// the coordinator, and announces itself:
//
//	presto-worker -coordinator 127.0.0.1:8080
//
// Graceful shrink (§IX): send SIGINT (Ctrl-C) or POST /v1/shutdown; the
// worker enters SHUTTING_DOWN, drains active tasks over two grace periods,
// then exits with no query failures.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"prestolite/internal/cluster"
	"prestolite/internal/workload"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "listen address")
	coordinator := flag.String("coordinator", "", "coordinator address to announce to")
	grace := flag.Duration("grace-period", 2*time.Minute, "shutdown.grace-period")
	memoryLimit := flag.Int64("memory-limit", 0, "process-wide memory pool in bytes (0 = unlimited)")
	spillDir := flag.String("spill-dir", "", "enable spill-to-disk under this directory")
	spillBudget := flag.Int64("spill-budget", 0, "disk cap for live spill runs in bytes (0 = unlimited)")
	taskConcurrency := flag.Int("task-concurrency", 0, "driver pipelines per task (0 = one per CPU core); the task_concurrency session property overrides it")
	flag.Parse()

	catalogs, err := workload.DemoCatalogs()
	if err != nil {
		fmt.Fprintln(os.Stderr, "presto-worker:", err)
		os.Exit(1)
	}
	w := cluster.NewWorker(catalogs)
	w.GracePeriod = *grace
	w.MemoryLimit = *memoryLimit
	w.SpillDir = *spillDir
	w.SpillBudget = *spillBudget
	w.TaskConcurrency = *taskConcurrency
	if err := w.Start(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "presto-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("worker listening on %s\n", w.Addr())
	if *coordinator != "" {
		resp, err := http.Get("http://" + *coordinator + "/v1/announce?addr=" + w.Addr())
		if err != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "presto-worker: announce to %s failed: %v\n", *coordinator, err)
			os.Exit(1)
		}
		_ = resp.Body.Close() // announce responses carry no body; status already checked
		fmt.Printf("announced to coordinator %s\n", *coordinator)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("entering SHUTTING_DOWN (graceful shrink)")
	go w.GracefulShutdown()
	w.WaitShutdown()
	fmt.Println("worker drained, exiting")
}
