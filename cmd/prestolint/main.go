// Command prestolint runs the project's static-analysis suite
// (internal/analysis) over the module: machine-checked concurrency, context
// and hot-path invariants that gate every PR via `make lint`.
//
// Usage:
//
//	prestolint [-only a,b] [-list] [packages]
//
// Packages default to ./... . Exit status: 0 clean, 1 findings, 2 load or
// usage error. Findings are suppressed — always with a written reason —
// via `//lint:ignore <analyzer> <reason>` on or directly above the line.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prestolite/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "prestolint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prestolint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	if len(diags) == 0 {
		return
	}
	wd, _ := os.Getwd() // best-effort: fall back to absolute paths
	for _, d := range diags {
		if wd != "" && strings.HasPrefix(d.Pos.Filename, wd+string(os.PathSeparator)) {
			d.Pos.Filename = d.Pos.Filename[len(wd)+1:]
		}
		fmt.Println(d.String())
	}
	fmt.Fprintf(os.Stderr, "prestolint: %d finding(s)\n", len(diags))
	os.Exit(1)
}
