module prestolite

go 1.22
