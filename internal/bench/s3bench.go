package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/parquet"
	"prestolite/internal/s3"
	"prestolite/internal/types"
)

// RunS3 reproduces the §IX optimizations: lazy seek (fewer GET connections),
// exponential backoff (success under throttling), S3 Select (bytes shipped)
// and multipart upload (parallel puts).
func RunS3(rows int) (*Report, error) {
	report := &Report{
		Experiment: "§IX PrestoS3FileSystem optimizations",
		Columns:    []string{"baseline", "optimized", "ratio"},
	}

	// Build one parquet object.
	build := func(store *s3.Store) (string, error) {
		fs := s3.NewFileSystem(store, s3.DefaultConfig())
		schema, err := parquet.NewSchema([]string{"id", "payload"}, []*types.Type{types.Bigint, types.Varchar})
		if err != nil {
			return "", err
		}
		w, err := fs.Create("/lake/t/part-0")
		if err != nil {
			return "", err
		}
		pw, err := parquet.NewNativeWriter(w, schema, parquet.WriterOptions{RowGroupRows: 1024})
		if err != nil {
			return "", err
		}
		pb := block.NewPageBuilder(schema.Types)
		for i := 0; i < rows; i++ {
			pb.AppendRow([]any{int64(i), fmt.Sprintf("payload-%06d-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx", i)})
		}
		if err := pw.WritePage(pb.Build()); err != nil {
			return "", err
		}
		if err := pw.Close(); err != nil {
			return "", err
		}
		return "/lake/t/part-0", w.Close()
	}

	scan := func(lazy bool) (int64, error) {
		store := s3.NewStore(s3.Config{})
		path, err := build(store)
		if err != nil {
			return 0, err
		}
		cfg := s3.DefaultConfig()
		cfg.LazySeek = lazy
		fs := s3.NewFileSystem(store, cfg)
		store.Counters.GetRequests.Store(0)
		f, err := fs.Open(path)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		r, err := parquet.NewReader(f, parquet.AllOptimizations(nil, nil))
		if err != nil {
			return 0, err
		}
		for {
			p, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			} else if err != nil {
				return 0, err
			}
			// Materialize like a real client (forces lazy column reads).
			block.MaterializePage(p)
		}
		return store.Counters.GetRequests.Load(), nil
	}
	eagerGets, err := scan(false)
	if err != nil {
		return nil, err
	}
	lazyGets, err := scan(true)
	if err != nil {
		return nil, err
	}
	report.Rows = append(report.Rows, Row{
		Name: "GET requests per full scan (lazy seek)",
		Values: map[string]float64{
			"baseline": float64(eagerGets), "optimized": float64(lazyGets),
			"ratio": float64(eagerGets) / float64(lazyGets),
		},
	})

	// Backoff under throttling: fraction of operations that succeed.
	attempt := func(retries int) float64 {
		store := s3.NewStore(s3.Config{ThrottleEvery: 3})
		cfg := s3.DefaultConfig()
		cfg.MaxRetries = retries
		cfg.BaseBackoff = 50 * time.Microsecond
		fs := s3.NewFileSystem(store, cfg)
		ok := 0
		const trials = 200
		for i := 0; i < trials; i++ {
			w, _ := fs.Create(fmt.Sprintf("/k%d", i)) // in-memory store: Create cannot fail
			_, _ = w.Write([]byte("v"))               // buffered write; upload errors surface at Close
			if err := w.Close(); err == nil {
				ok++
			}
		}
		return float64(ok) / trials * 100
	}
	report.Rows = append(report.Rows, Row{
		Name: "PUT success rate under throttling %",
		Values: map[string]float64{
			"baseline": attempt(0), "optimized": attempt(7), "ratio": 0,
		},
		Note: "baseline = no retries, optimized = exponential backoff",
	})

	// S3 Select: bytes shipped for a 1-column projection.
	store := s3.NewStore(s3.Config{})
	path, err := build(store)
	if err != nil {
		return nil, err
	}
	objSize, err := store.Head(path[1:])
	if err != nil {
		return nil, err
	}
	store.Counters.BytesReturned.Store(0)
	if _, err := store.SelectObject(path[1:], []string{"id"}, nil); err != nil {
		return nil, err
	}
	selectBytes := store.Counters.BytesReturned.Load()
	report.Rows = append(report.Rows, Row{
		Name: "bytes shipped: full GET vs S3 Select",
		Values: map[string]float64{
			"baseline": float64(objSize), "optimized": float64(selectBytes),
			"ratio": float64(objSize) / float64(selectBytes),
		},
	})
	report.Summary = "lazy seek coalesces sequential chunk reads; backoff rides out 503s; S3 Select ships only projected columns"
	return report, nil
}
