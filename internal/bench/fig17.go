package bench

import (
	"fmt"

	"prestolite/internal/connectors/hive"
	"prestolite/internal/core"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/workload"
)

// RunFig17 reproduces Fig 17: 21 production-style queries over the nested
// trips warehouse with the old (row-based) versus the brand-new (columnar)
// reader on identical files. The paper's claim: 2-10X speedup, largest for
// needle-in-a-haystack scans.
func RunFig17(cfg workload.TripsConfig, repeats int) (*Report, error) {
	nn := hdfs.New(hdfs.Config{})
	ms2 := metastore.New()
	if _, err := workload.BuildTripsWarehouse(ms2, nn, cfg); err != nil {
		return nil, err
	}

	engineFor := func(opts hive.Options) *core.Engine {
		e := core.New()
		e.Register("hive", hive.New("hive", ms2, nn, opts))
		return e
	}
	oldEngine := engineFor(hive.Options{UseLegacyReader: true})
	newEngine := engineFor(hive.Options{})
	session := core.DefaultSession("hive", "rawdata")

	report := &Report{
		Experiment: "Fig 17: old vs new Parquet reader, 21 Uber-style queries (ms)",
		Columns:    []string{"old_ms", "new_ms", "speedup"},
	}
	var totalOld, totalNew float64
	for _, q := range workload.TripQueries(cfg) {
		q := q
		// Verify both readers agree before timing.
		r1, err := oldEngine.Query(session, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("fig17 %s old: %w", q.Name, err)
		}
		r2, err := newEngine.Query(session, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("fig17 %s new: %w", q.Name, err)
		}
		if r1.RowCount() != r2.RowCount() {
			return nil, fmt.Errorf("fig17 %s: readers disagree (%d vs %d rows)", q.Name, r1.RowCount(), r2.RowCount())
		}
		oldTime, err := bestOf(repeats, func() error {
			_, err := oldEngine.Query(session, q.SQL)
			return err
		})
		if err != nil {
			return nil, err
		}
		newTime, err := bestOf(repeats, func() error {
			_, err := newEngine.Query(session, q.SQL)
			return err
		})
		if err != nil {
			return nil, err
		}
		totalOld += ms(oldTime)
		totalNew += ms(newTime)
		report.Rows = append(report.Rows, Row{
			Name: q.Name,
			Values: map[string]float64{
				"old_ms":  ms(oldTime),
				"new_ms":  ms(newTime),
				"speedup": ms(oldTime) / ms(newTime),
			},
			Note: q.Kind,
		})
	}
	report.Summary = fmt.Sprintf("total: old %.0fms, new %.0fms, overall speedup %.1fx (paper: 2-10x per query)",
		totalOld, totalNew, totalOld/totalNew)
	return report, nil
}

// RunFig17Ablation toggles each new-reader optimization off one at a time on
// the two needle queries, quantifying each contribution (the DESIGN.md
// ablation).
func RunFig17Ablation(cfg workload.TripsConfig, repeats int) (*Report, error) {
	nn := hdfs.New(hdfs.Config{})
	ms2 := metastore.New()
	if _, err := workload.BuildTripsWarehouse(ms2, nn, cfg); err != nil {
		return nil, err
	}
	session := core.DefaultSession("hive", "rawdata")
	var needle []workload.TripQuery
	for _, q := range workload.TripQueries(cfg) {
		if q.Kind == "needle" || q.Name == "Q01 scan projection" {
			needle = append(needle, q)
		}
	}
	variants := []struct {
		name string
		opts hive.Options
	}{
		{"all optimizations", hive.Options{}},
		{"no column pruning", hive.Options{Reader: hive.ReaderToggles{NoColumnPruning: true}}},
		{"no predicate pushdown", hive.Options{Reader: hive.ReaderToggles{NoPredicatePushdown: true}}},
		{"no dictionary pushdown", hive.Options{Reader: hive.ReaderToggles{NoDictionaryPushdown: true}}},
		{"no lazy reads", hive.Options{Reader: hive.ReaderToggles{NoLazyReads: true}}},
		{"no vectorized decode", hive.Options{Reader: hive.ReaderToggles{NoVectorized: true}}},
		{"legacy reader", hive.Options{UseLegacyReader: true}},
	}
	report := &Report{
		Experiment: "Fig 17 ablation: per-optimization contribution (total ms over scan+needle queries)",
		Columns:    []string{"total_ms"},
	}
	for _, v := range variants {
		e := core.New()
		e.Register("hive", hive.New("hive", ms2, nn, v.opts))
		total, err := bestOf(repeats, func() error {
			for _, q := range needle {
				if _, err := e.Query(session, q.SQL); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		report.Rows = append(report.Rows, Row{Name: v.name, Values: map[string]float64{"total_ms": ms(total)}})
	}
	return report, nil
}
