package bench

import (
	"fmt"
	"time"

	"prestolite/internal/connectors/druid"
	"prestolite/internal/core"
	driver "prestolite/internal/druid"
	"prestolite/internal/workload"
)

// RunFig16 reproduces Fig 16: the 20 production-style druid queries run
// natively against the druid store versus through the Presto-Druid connector
// with predicate, limit and aggregation pushdown. The paper's claim: the
// connector adds less than ~15% overhead and keeps sub-second latency.
func RunFig16(cfg workload.EventsConfig, repeats int) (*Report, error) {
	store := driver.NewStore()
	if err := workload.BuildEventsTable(store, cfg); err != nil {
		return nil, err
	}
	// Both paths talk to the broker through the same client, including a
	// realistic broker round-trip latency (production clients always pay the
	// network; without it, microsecond-scale LIMIT queries would measure
	// nothing but the engine's fixed planning cost).
	client := &driver.LatencyClient{Inner: &driver.EmbeddedClient{Store: store}, Latency: 2 * time.Millisecond}
	engine := core.New()
	engine.Register("druid", druid.New("druid", client))
	session := core.DefaultSession("druid", "default")

	report := &Report{
		Experiment: "Fig 16: Druid vs Presto-Druid connector (ms, best of runs)",
		Columns:    []string{"druid_ms", "connector_ms", "overhead_pct"},
	}
	totalOverhead := 0.0
	for _, q := range workload.EventQueries() {
		q := q
		nativeTime, err := bestOf(repeats, func() error {
			_, err := client.Execute(q.Native)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig16 %s native: %w", q.Name, err)
		}
		connTime, err := bestOf(repeats, func() error {
			_, err := engine.Query(session, q.SQL)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig16 %s connector: %w", q.Name, err)
		}
		overhead := (ms(connTime) - ms(nativeTime)) / ms(nativeTime) * 100
		totalOverhead += overhead
		note := ""
		if q.HasPredicate {
			note += "pred "
		}
		if q.HasLimit {
			note += "limit "
		}
		if q.IsAggregation {
			note += "agg"
		}
		report.Rows = append(report.Rows, Row{
			Name:   q.Name,
			Values: map[string]float64{"druid_ms": ms(nativeTime), "connector_ms": ms(connTime), "overhead_pct": overhead},
			Note:   note,
		})
	}
	report.Summary = fmt.Sprintf("mean overhead: %.1f%% across %d queries (paper: <15%%)",
		totalOverhead/float64(len(report.Rows)), len(report.Rows))
	return report, nil
}
