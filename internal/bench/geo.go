package bench

import (
	"fmt"

	"prestolite/internal/connectors/memory"
	"prestolite/internal/core"
	"prestolite/internal/workload"
)

// RunGeo reproduces the §VI claim: the QuadTree rewrite makes the
// st_contains spatial join "more than 50X faster" than the brute-force
// cross-join evaluation.
func RunGeo(cfg workload.GeoConfig, repeats int) (*Report, error) {
	mem := memory.New("memory")
	if err := workload.BuildGeoTables(mem, cfg); err != nil {
		return nil, err
	}
	engine := core.New()
	engine.Register("memory", mem)

	fast := core.DefaultSession("memory", "geo")
	slow := core.DefaultSession("memory", "geo")
	slow.Properties["geospatial_optimization"] = "false"

	// Verify both plans produce identical results before timing.
	r1, err := engine.Query(fast, workload.GeoQuery)
	if err != nil {
		return nil, fmt.Errorf("geo quadtree: %w", err)
	}
	r2, err := engine.Query(slow, workload.GeoQuery)
	if err != nil {
		return nil, fmt.Errorf("geo brute: %w", err)
	}
	if r1.RowCount() != r2.RowCount() {
		return nil, fmt.Errorf("geo plans disagree: %d vs %d rows", r1.RowCount(), r2.RowCount())
	}

	quadTime, err := bestOf(repeats, func() error {
		_, err := engine.Query(fast, workload.GeoQuery)
		return err
	})
	if err != nil {
		return nil, err
	}
	bruteTime, err := bestOf(1, func() error { // brute force is slow; one run
		_, err := engine.Query(slow, workload.GeoQuery)
		return err
	})
	if err != nil {
		return nil, err
	}
	report := &Report{
		Experiment: fmt.Sprintf("§VI geospatial: QuadTree rewrite vs brute force (%d cities x %d vertices, %d trips)",
			cfg.Cities, cfg.VerticesPerCity, cfg.Trips),
		Columns: []string{"ms"},
	}
	report.Rows = append(report.Rows,
		Row{Name: "brute force st_contains join", Values: map[string]float64{"ms": ms(bruteTime)}},
		Row{Name: "QuadTree GeoSpatialJoin", Values: map[string]float64{"ms": ms(quadTime)}},
	)
	report.Summary = fmt.Sprintf("speedup: %.0fx (paper: >50x vs brute force execution)", ms(bruteTime)/ms(quadTime))
	return report, nil
}
