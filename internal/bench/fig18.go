package bench

import (
	"fmt"
	"io"

	"prestolite/internal/parquet"
	"prestolite/internal/workload"
)

// RunWriterFigure reproduces Figs 18/19/20: old (record-reconstructing)
// versus native (columnar) writer throughput in MB/s per dataset, under one
// codec. The paper's claim: native is consistently ~20%+ faster, with the
// largest gains on simple types under heavy codecs.
func RunWriterFigure(codec parquet.Codec, rowsPerDataset int, repeats int) (*Report, error) {
	figure := map[parquet.Codec]string{
		parquet.CodecSnappy: "Fig 18: writer throughput, Snappy",
		parquet.CodecGzip:   "Fig 19: writer throughput, Gzip",
		parquet.CodecNone:   "Fig 20: writer throughput, no compression",
	}[codec]
	report := &Report{
		Experiment: figure + " (MB/s)",
		Columns:    []string{"old_mb_s", "native_mb_s", "gain_pct"},
	}
	var totalGain float64
	for _, ds := range workload.WriterDatasets() {
		ds := ds
		rows := rowsPerDataset
		if ds.Name == "All Lineitem columns" {
			rows = rowsPerDataset / 4 // wide rows
		}
		page := ds.Generate(1, rows)
		inputMB := float64(page.SizeBytes()) / (1 << 20)

		schema, err := parquet.NewSchema(ds.Cols, ds.Types)
		if err != nil {
			return nil, fmt.Errorf("writer %s: %w", ds.Name, err)
		}
		opts := parquet.WriterOptions{Codec: codec, RowGroupRows: 8192}

		oldTime, err := bestOf(repeats, func() error {
			w, err := parquet.NewLegacyWriter(io.Discard, schema, opts)
			if err != nil {
				return err
			}
			if err := w.WritePage(page); err != nil {
				return err
			}
			return w.Close()
		})
		if err != nil {
			return nil, fmt.Errorf("writer %s old: %w", ds.Name, err)
		}
		nativeTime, err := bestOf(repeats, func() error {
			w, err := parquet.NewNativeWriter(io.Discard, schema, opts)
			if err != nil {
				return err
			}
			if err := w.WritePage(page); err != nil {
				return err
			}
			return w.Close()
		})
		if err != nil {
			return nil, fmt.Errorf("writer %s native: %w", ds.Name, err)
		}
		oldMBs := inputMB / oldTime.Seconds()
		nativeMBs := inputMB / nativeTime.Seconds()
		gain := (nativeMBs - oldMBs) / oldMBs * 100
		totalGain += gain
		report.Rows = append(report.Rows, Row{
			Name: ds.Name,
			Values: map[string]float64{
				"old_mb_s":    oldMBs,
				"native_mb_s": nativeMBs,
				"gain_pct":    gain,
			},
		})
	}
	report.Summary = fmt.Sprintf("mean throughput gain: %.0f%% (paper: consistently >20%%)",
		totalGain/float64(len(report.Rows)))
	return report, nil
}
