// Package bench is the experiment harness: for every table and figure in the
// paper's evaluation (§X) plus the quantitative claims of §VI (geospatial),
// §VII (caches) and §IX (S3), it builds the workload, runs both sides of the
// comparison, and reports rows in the same shape as the paper.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Row is one line of an experiment report.
type Row struct {
	Name   string
	Values map[string]float64
	Note   string
}

// Report is one experiment's output.
type Report struct {
	Experiment string
	Columns    []string // value keys in print order
	Rows       []Row
	Summary    string
}

// Print renders a report as an aligned table. The report is rendered
// in memory and flushed with one best-effort write: it goes to a terminal,
// where a failed write has no sane handling.
func (r *Report) Print(w io.Writer) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", r.Experiment)
	header := fmt.Sprintf("%-34s", "name")
	for _, c := range r.Columns {
		header += fmt.Sprintf("%16s", c)
	}
	fmt.Fprintln(&sb, header)
	fmt.Fprintln(&sb, strings.Repeat("-", len(header)))
	for _, row := range r.Rows {
		line := fmt.Sprintf("%-34s", row.Name)
		for _, c := range r.Columns {
			line += fmt.Sprintf("%16.3f", row.Values[c])
		}
		if row.Note != "" {
			line += "  " + row.Note
		}
		fmt.Fprintln(&sb, line)
	}
	if r.Summary != "" {
		fmt.Fprintln(&sb, r.Summary)
	}
	sb.WriteByte('\n')
	_, _ = io.WriteString(w, sb.String()) // terminal report; a failed write has no recovery
}

// timeIt measures one run.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// bestOf runs fn n times and returns the fastest run (standard
// microbenchmark practice for latency comparisons).
func bestOf(n int, fn func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		d, err := timeIt(fn)
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
