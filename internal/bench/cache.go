package bench

import (
	"fmt"

	"prestolite/internal/connectors/hive"
	"prestolite/internal/core"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/workload"
)

// RunCache reproduces §VII: with the file list cache enabled over hot
// tables, listFile RPCs drop to "less than 40%" of the uncached volume; with
// the file handle + footer cache, "almost 90% of getFileInfo calls could be
// reduced".
func RunCache(queriesPerTable int) (*Report, error) {
	cfg := workload.TripsConfig{RowsPerDate: 2000, Dates: 5, FilesPerDate: 4, RowGroupRows: 1024, NeedleCityID: 9999}

	run := func(opts hive.Options) (listCalls, infoCalls int64, err error) {
		nn := hdfs.New(hdfs.Config{})
		ms2 := metastore.New()
		if _, err := workload.BuildTripsWarehouse(ms2, nn, cfg); err != nil {
			return 0, 0, err
		}
		engine := core.New()
		engine.Register("hive", hive.New("hive", ms2, nn, opts))
		session := core.DefaultSession("hive", "rawdata")
		nn.Counters.ListFilesCalls.Store(0)
		nn.Counters.GetFileInfoCalls.Store(0)
		// The "5 most popular tables" pattern: repeated queries over the
		// same partitions.
		queries := []string{
			"SELECT count(*) FROM trips WHERE datestr = '2017-03-01'",
			"SELECT sum(base.fare) FROM trips WHERE datestr = '2017-03-02'",
			"SELECT base.city_id, count(*) FROM trips GROUP BY base.city_id",
			"SELECT count(*) FROM cities",
			"SELECT count(*) FROM drivers",
		}
		for i := 0; i < queriesPerTable; i++ {
			for _, q := range queries {
				if _, err := engine.Query(session, q); err != nil {
					return 0, 0, fmt.Errorf("cache bench: %w", err)
				}
			}
		}
		return nn.Counters.ListFilesCalls.Load(), nn.Counters.GetFileInfoCalls.Load(), nil
	}

	uncachedList, uncachedInfo, err := run(hive.Options{DisableFileListCache: true, DisableFooterCache: true})
	if err != nil {
		return nil, err
	}
	cachedList, cachedInfo, err := run(hive.Options{})
	if err != nil {
		return nil, err
	}

	report := &Report{
		Experiment: "§VII caches: NameNode RPC volume with and without caching",
		Columns:    []string{"uncached", "cached", "remaining_pct"},
	}
	report.Rows = append(report.Rows,
		Row{Name: "listFiles calls (file list cache)", Values: map[string]float64{
			"uncached":      float64(uncachedList),
			"cached":        float64(cachedList),
			"remaining_pct": float64(cachedList) / float64(uncachedList) * 100,
		}},
		Row{Name: "getFileInfo calls (footer cache)", Values: map[string]float64{
			"uncached":      float64(uncachedInfo),
			"cached":        float64(cachedInfo),
			"remaining_pct": float64(cachedInfo) / float64(uncachedInfo) * 100,
		}},
	)
	report.Summary = fmt.Sprintf("paper: listFiles reduced to <40%% (ours: %.0f%%); getFileInfo reduced ~90%% (ours: %.0f%% reduction)",
		float64(cachedList)/float64(uncachedList)*100,
		100-float64(cachedInfo)/float64(uncachedInfo)*100)
	return report, nil
}
