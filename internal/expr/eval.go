package expr

import (
	"fmt"

	"prestolite/internal/block"
	"prestolite/internal/execution/vector"
	"prestolite/internal/types"
)

// Eval evaluates e against a page and returns a block of page.Count()
// results. Evaluation is vectorized: hot paths (int64/float64 comparisons
// and arithmetic) run tight loops over flat blocks; everything else falls
// back to a boxed per-row loop.
func Eval(e RowExpression, page *block.Page) (block.Block, error) {
	switch t := e.(type) {
	case *Constant:
		return block.NewRunLengthBlock(block.SingleValue(constBlockType(t.Type), t.Value), page.Count()), nil
	case *Variable:
		if t.Channel < 0 || t.Channel >= len(page.Blocks) {
			return nil, fmt.Errorf("expr: variable %s references channel %d of %d-channel page", t.Name, t.Channel, len(page.Blocks))
		}
		return page.Blocks[t.Channel], nil
	case *Call:
		return evalCall(t, page)
	case *SpecialForm:
		return evalSpecialForm(t, page)
	case *Lambda:
		return nil, fmt.Errorf("expr: lambda cannot be evaluated as a column")
	default:
		return nil, fmt.Errorf("expr: cannot evaluate %T", e)
	}
}

// constBlockType maps unknown to bigint storage for the null literal.
func constBlockType(t *types.Type) *types.Type {
	if t.Kind == types.KindUnknown {
		return types.Bigint
	}
	return t
}

// EvalFilter evaluates a boolean expression and returns the positions where
// it is true (NULL counts as false, per SQL WHERE semantics).
func EvalFilter(e RowExpression, page *block.Page) ([]int, error) {
	return EvalFilterInto(e, page, nil)
}

// EvalFilterInto is EvalFilter writing the selected positions into buf
// (append semantics from buf[:0]), so a caller that keeps a scratch vector —
// the filter operator holds one for its whole lifetime — pays no per-page
// allocation. buf may be nil.
func EvalFilterInto(e RowExpression, page *block.Page, buf []int) ([]int, error) {
	b, err := Eval(e, page)
	if err != nil {
		return nil, err
	}
	b = block.Unwrap(b)
	n := page.Count()
	positions := buf[:0]
	if cap(positions) == 0 {
		positions = make([]int, 0, n)
	}
	// The selection kernel understands flat, dictionary and run-length bool
	// blocks (a dict-encoded predicate keeps its indirection through
	// fastKernel, so this is the common case for filters over encoded scans).
	var fv vector.View
	if vector.Of(b, &fv) && fv.Kind == vector.KindBool {
		return vector.SelectTrue(&fv, n, positions), nil
	}
	for i := 0; i < n; i++ {
		if v := b.Value(i); v == true {
			positions = append(positions, i)
		}
	}
	return positions, nil
}

// EvalRowValue evaluates e against a single boxed row (used by the
// row-at-a-time baseline and by tests).
func EvalRowValue(e RowExpression, row []any) (any, error) {
	page := singleRowPage(row)
	b, err := Eval(e, page)
	if err != nil {
		return nil, err
	}
	return b.Value(0), nil
}

func singleRowPage(row []any) *block.Page {
	blocks := make([]block.Block, len(row))
	for i, v := range row {
		blocks[i] = boxedSingle(v)
	}
	return &block.Page{Blocks: blocks, N: 1}
}

func boxedSingle(v any) block.Block {
	switch x := v.(type) {
	case nil:
		return &block.Int64Block{Values: []int64{0}, Nulls: []bool{true}}
	case int64:
		return &block.Int64Block{Values: []int64{x}}
	case int:
		return &block.Int64Block{Values: []int64{int64(x)}}
	case float64:
		return &block.Float64Block{Values: []float64{x}}
	case bool:
		return &block.BoolBlock{Values: []bool{x}}
	case string:
		return &block.VarcharBlock{Values: []string{x}}
	default:
		// nested: build a one-off generic block
		return genericBlock{vals: []any{v}}
	}
}

// genericBlock is a boxed fallback block for single nested values.
type genericBlock struct{ vals []any }

func (g genericBlock) Count() int        { return len(g.vals) }
func (g genericBlock) IsNull(i int) bool { return g.vals[i] == nil }
func (g genericBlock) Value(i int) any   { return g.vals[i] }
func (g genericBlock) Region(offset, length int) block.Block {
	return genericBlock{vals: g.vals[offset : offset+length]}
}
func (g genericBlock) Mask(positions []int) block.Block {
	out := make([]any, len(positions))
	for i, p := range positions {
		out[i] = g.vals[p]
	}
	return genericBlock{vals: out}
}
func (g genericBlock) SizeBytes() int { return 32 * len(g.vals) }

func evalCall(c *Call, page *block.Page) (block.Block, error) {
	args := make([]block.Block, len(c.Args))
	for i, a := range c.Args {
		b, err := Eval(a, page)
		if err != nil {
			return nil, err
		}
		args[i] = block.Unwrap(b)
	}
	n := page.Count()
	// Vectorized fast paths for the hot kernels.
	if out := fastKernel(c.Handle.Name, args, n); out != nil {
		return out, nil
	}
	argTypes := make([]*types.Type, len(c.Args))
	for i, a := range c.Args {
		argTypes[i] = a.TypeOf()
	}
	fn, err := Resolve(c.Handle.Name, argTypes)
	if err != nil {
		return nil, err
	}
	builder := block.NewBuilder(c.Ret, n)
	row := make([]any, len(args))
	for i := 0; i < n; i++ {
		anyNull := false
		for j, ab := range args {
			row[j] = ab.Value(i)
			if row[j] == nil {
				anyNull = true
			}
		}
		if anyNull && !fn.CalledOnNull {
			builder.AppendNull()
			continue
		}
		v, err := fn.EvalRow(row)
		if err != nil {
			return nil, err
		}
		builder.Append(v)
	}
	return builder.Build(), nil
}

// mirrorKernel maps an operator to its argument-swapped equivalent, letting
// a constant left-hand side reuse the col⊗const kernels.
var mirrorKernel = map[string]string{
	"eq": "eq", "neq": "neq",
	"lt": "gt", "lte": "gte", "gt": "lt", "gte": "lte",
	"add": "add", "multiply": "multiply",
}

// fastKernel dispatches vectorized implementations for the hot kernels,
// aware of the numeric encodings: flat⊗flat and flat⊗const run tight typed
// loops, run-length inputs evaluate once and re-expand, and dictionary
// inputs evaluate over their (much smaller) dictionaries. Returns nil if no
// fast path applies — the caller falls back to the boxed row loop.
func fastKernel(name string, args []block.Block, n int) block.Block {
	if len(args) != 2 {
		return nil
	}
	a, b := args[0], args[1]
	ra, aIsRLE := a.(*block.RunLengthBlock)
	rb, bIsRLE := b.(*block.RunLengthBlock)
	switch {
	case aIsRLE && bIsRLE:
		// const ⊗ const: evaluate the single position once and re-expand.
		if out := fastKernel(name, []block.Block{ra.Single, rb.Single}, 1); out != nil {
			return block.NewRunLengthBlock(out, n)
		}
		return nil
	case aIsRLE:
		// const ⊗ col mirrors to col ⊗ const (b is not RLE here, so this
		// recurses at most once).
		if m, ok := mirrorKernel[name]; ok {
			return fastKernel(m, []block.Block{b, a}, n)
		}
		return nil
	}
	// dict ⊗ const evaluates over the dictionary — O(distinct values)
	// instead of O(rows) — and keeps the id indirection, so downstream
	// consumers (selection kernels, aggregation views) still see the
	// encoding.
	if da, ok := a.(*block.DictionaryBlock); ok && bIsRLE {
		dn := da.Dictionary.Count()
		if out := fastKernel(name, []block.Block{da.Dictionary, block.NewRunLengthBlock(rb.Single, dn)}, dn); out != nil {
			return &block.DictionaryBlock{Dictionary: out, Ids: da.Ids}
		}
		return nil
	}
	switch av := a.(type) {
	case *block.Int64Block:
		if bv, ok := b.(*block.Int64Block); ok {
			return int64Kernel(name, av, bv, n)
		}
		if bIsRLE && !rb.Single.IsNull(0) {
			if c, ok := rb.Single.Value(0).(int64); ok {
				return int64ConstKernel(name, av, c, n)
			}
		}
	case *block.Float64Block:
		if bv, ok := b.(*block.Float64Block); ok {
			return float64Kernel(name, av, bv, n)
		}
		if bIsRLE && !rb.Single.IsNull(0) {
			if c, ok := rb.Single.Value(0).(float64); ok {
				return float64ConstKernel(name, av, c, n)
			}
		}
	}
	return nil
}

func mergeNulls(a, b []bool, n int) []bool {
	if a == nil && b == nil {
		return nil
	}
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = (a != nil && a[i]) || (b != nil && b[i])
	}
	return out
}

func int64Kernel(name string, a, b *block.Int64Block, n int) block.Block {
	nulls := mergeNulls(a.Nulls, b.Nulls, n)
	switch name {
	case "eq", "neq", "lt", "lte", "gt", "gte":
		out := make([]bool, n)
		av, bv := a.Values, b.Values
		switch name {
		case "eq":
			for i := 0; i < n; i++ {
				out[i] = av[i] == bv[i]
			}
		case "neq":
			for i := 0; i < n; i++ {
				out[i] = av[i] != bv[i]
			}
		case "lt":
			for i := 0; i < n; i++ {
				out[i] = av[i] < bv[i]
			}
		case "lte":
			for i := 0; i < n; i++ {
				out[i] = av[i] <= bv[i]
			}
		case "gt":
			for i := 0; i < n; i++ {
				out[i] = av[i] > bv[i]
			}
		case "gte":
			for i := 0; i < n; i++ {
				out[i] = av[i] >= bv[i]
			}
		}
		return &block.BoolBlock{Values: out, Nulls: nulls}
	case "add", "subtract", "multiply":
		out := make([]int64, n)
		av, bv := a.Values, b.Values
		switch name {
		case "add":
			for i := 0; i < n; i++ {
				out[i] = av[i] + bv[i]
			}
		case "subtract":
			for i := 0; i < n; i++ {
				out[i] = av[i] - bv[i]
			}
		case "multiply":
			for i := 0; i < n; i++ {
				out[i] = av[i] * bv[i]
			}
		}
		return &block.Int64Block{Values: out, Nulls: nulls}
	}
	return nil
}

func int64ConstKernel(name string, a *block.Int64Block, c int64, n int) block.Block {
	switch name {
	case "eq", "neq", "lt", "lte", "gt", "gte":
		out := make([]bool, n)
		av := a.Values
		switch name {
		case "eq":
			for i := 0; i < n; i++ {
				out[i] = av[i] == c
			}
		case "neq":
			for i := 0; i < n; i++ {
				out[i] = av[i] != c
			}
		case "lt":
			for i := 0; i < n; i++ {
				out[i] = av[i] < c
			}
		case "lte":
			for i := 0; i < n; i++ {
				out[i] = av[i] <= c
			}
		case "gt":
			for i := 0; i < n; i++ {
				out[i] = av[i] > c
			}
		case "gte":
			for i := 0; i < n; i++ {
				out[i] = av[i] >= c
			}
		}
		var nulls []bool
		if a.Nulls != nil {
			nulls = a.Nulls
		}
		return &block.BoolBlock{Values: out, Nulls: nulls}
	case "add", "subtract", "multiply":
		out := make([]int64, n)
		av := a.Values
		switch name {
		case "add":
			for i := 0; i < n; i++ {
				out[i] = av[i] + c
			}
		case "subtract":
			for i := 0; i < n; i++ {
				out[i] = av[i] - c
			}
		case "multiply":
			for i := 0; i < n; i++ {
				out[i] = av[i] * c
			}
		}
		return &block.Int64Block{Values: out, Nulls: a.Nulls}
	}
	return nil
}

func float64ConstKernel(name string, a *block.Float64Block, c float64, n int) block.Block {
	av := a.Values
	switch name {
	case "eq", "neq", "lt", "lte", "gt", "gte":
		out := make([]bool, n)
		switch name {
		case "eq":
			for i := 0; i < n; i++ {
				out[i] = av[i] == c
			}
		case "neq":
			for i := 0; i < n; i++ {
				out[i] = av[i] != c
			}
		case "lt":
			for i := 0; i < n; i++ {
				out[i] = av[i] < c
			}
		case "lte":
			for i := 0; i < n; i++ {
				out[i] = av[i] <= c
			}
		case "gt":
			for i := 0; i < n; i++ {
				out[i] = av[i] > c
			}
		case "gte":
			for i := 0; i < n; i++ {
				out[i] = av[i] >= c
			}
		}
		return &block.BoolBlock{Values: out, Nulls: a.Nulls}
	case "add", "subtract", "multiply", "divide":
		out := make([]float64, n)
		switch name {
		case "add":
			for i := 0; i < n; i++ {
				out[i] = av[i] + c
			}
		case "subtract":
			for i := 0; i < n; i++ {
				out[i] = av[i] - c
			}
		case "multiply":
			for i := 0; i < n; i++ {
				out[i] = av[i] * c
			}
		case "divide":
			for i := 0; i < n; i++ {
				out[i] = av[i] / c
			}
		}
		return &block.Float64Block{Values: out, Nulls: a.Nulls}
	}
	return nil
}

func float64Kernel(name string, a, b *block.Float64Block, n int) block.Block {
	nulls := mergeNulls(a.Nulls, b.Nulls, n)
	av, bv := a.Values, b.Values
	switch name {
	case "add", "subtract", "multiply", "divide":
		out := make([]float64, n)
		switch name {
		case "add":
			for i := 0; i < n; i++ {
				out[i] = av[i] + bv[i]
			}
		case "subtract":
			for i := 0; i < n; i++ {
				out[i] = av[i] - bv[i]
			}
		case "multiply":
			for i := 0; i < n; i++ {
				out[i] = av[i] * bv[i]
			}
		case "divide":
			for i := 0; i < n; i++ {
				out[i] = av[i] / bv[i]
			}
		}
		return &block.Float64Block{Values: out, Nulls: nulls}
	case "eq", "neq", "lt", "lte", "gt", "gte":
		out := make([]bool, n)
		switch name {
		case "eq":
			for i := 0; i < n; i++ {
				out[i] = av[i] == bv[i]
			}
		case "neq":
			for i := 0; i < n; i++ {
				out[i] = av[i] != bv[i]
			}
		case "lt":
			for i := 0; i < n; i++ {
				out[i] = av[i] < bv[i]
			}
		case "lte":
			for i := 0; i < n; i++ {
				out[i] = av[i] <= bv[i]
			}
		case "gt":
			for i := 0; i < n; i++ {
				out[i] = av[i] > bv[i]
			}
		case "gte":
			for i := 0; i < n; i++ {
				out[i] = av[i] >= bv[i]
			}
		}
		return &block.BoolBlock{Values: out, Nulls: nulls}
	}
	return nil
}

func evalSpecialForm(s *SpecialForm, page *block.Page) (block.Block, error) {
	n := page.Count()
	switch s.Form {
	case FormAnd, FormOr:
		// Three-valued logic, vectorized over BoolBlocks.
		identity := s.Form == FormAnd // AND starts true, OR starts false
		vals := make([]bool, n)
		nulls := make([]bool, n)
		for i := range vals {
			vals[i] = identity
		}
		for _, arg := range s.Args {
			ab, err := Eval(arg, page)
			if err != nil {
				return nil, err
			}
			ab = block.Unwrap(ab)
			for i := 0; i < n; i++ {
				v := ab.Value(i)
				if v == nil {
					nulls[i] = true
					continue
				}
				bv := v.(bool)
				if s.Form == FormAnd {
					if !bv {
						vals[i] = false
						nulls[i] = false // FALSE dominates NULL in AND
					} else if nulls[i] {
						// stays null
					} else {
						vals[i] = vals[i] && bv
					}
				} else {
					if bv {
						vals[i] = true
						nulls[i] = false // TRUE dominates NULL in OR
					} else if nulls[i] {
						// stays null
					} else {
						vals[i] = vals[i] || bv
					}
				}
			}
		}
		// A position that saw a dominating value must keep it even if a later
		// arg was null; handle by re-scanning: above logic already prevents
		// un-dominating since once vals[i] is false (AND) we never set null.
		// But a null seen before a false must be cleared:
		return cleanupTVL(s, page, vals, nulls, n)
	case FormNot:
		ab, err := Eval(s.Args[0], page)
		if err != nil {
			return nil, err
		}
		ab = block.Unwrap(ab)
		vals := make([]bool, n)
		var nulls []bool
		for i := 0; i < n; i++ {
			v := ab.Value(i)
			if v == nil {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[i] = true
				continue
			}
			vals[i] = !v.(bool)
		}
		return &block.BoolBlock{Values: vals, Nulls: nulls}, nil
	case FormIsNull:
		ab, err := Eval(s.Args[0], page)
		if err != nil {
			return nil, err
		}
		ab = block.Unwrap(ab)
		vals := make([]bool, n)
		for i := 0; i < n; i++ {
			vals[i] = ab.IsNull(i)
		}
		return &block.BoolBlock{Values: vals}, nil
	case FormIf:
		// IF(cond, then, else?) — evaluate all branches, select per row.
		cond, err := Eval(s.Args[0], page)
		if err != nil {
			return nil, err
		}
		cond = block.Unwrap(cond)
		thenB, err := Eval(s.Args[1], page)
		if err != nil {
			return nil, err
		}
		thenB = block.Unwrap(thenB)
		var elseB block.Block
		if len(s.Args) > 2 {
			elseB, err = Eval(s.Args[2], page)
			if err != nil {
				return nil, err
			}
			elseB = block.Unwrap(elseB)
		}
		builder := block.NewBuilder(s.Ret, n)
		for i := 0; i < n; i++ {
			if cond.Value(i) == true {
				builder.Append(thenB.Value(i))
			} else if elseB != nil {
				builder.Append(elseB.Value(i))
			} else {
				builder.AppendNull()
			}
		}
		return builder.Build(), nil
	case FormCoalesce:
		blocks := make([]block.Block, len(s.Args))
		for i, a := range s.Args {
			b, err := Eval(a, page)
			if err != nil {
				return nil, err
			}
			blocks[i] = block.Unwrap(b)
		}
		builder := block.NewBuilder(s.Ret, n)
		for i := 0; i < n; i++ {
			appended := false
			for _, b := range blocks {
				if v := b.Value(i); v != nil {
					builder.Append(v)
					appended = true
					break
				}
			}
			if !appended {
				builder.AppendNull()
			}
		}
		return builder.Build(), nil
	case FormDereference:
		base, err := Eval(s.Args[0], page)
		if err != nil {
			return nil, err
		}
		base = block.Unwrap(base)
		fieldName := s.Args[1].(*Constant).Value.(string)
		baseType := s.Args[0].TypeOf()
		idx := baseType.FieldIndex(fieldName)
		if idx < 0 {
			return nil, fmt.Errorf("expr: no field %q in %s", fieldName, baseType)
		}
		if rb, ok := base.(*block.RowBlock); ok {
			child := rb.Fields[idx]
			if rb.Nulls == nil {
				return child, nil
			}
			// struct-level nulls propagate to the field
			builder := block.NewBuilder(s.Ret, n)
			for i := 0; i < n; i++ {
				if rb.Nulls[i] {
					builder.AppendNull()
				} else {
					builder.Append(child.Value(i))
				}
			}
			return builder.Build(), nil
		}
		builder := block.NewBuilder(s.Ret, n)
		for i := 0; i < n; i++ {
			v := base.Value(i)
			if v == nil {
				builder.AppendNull()
				continue
			}
			builder.Append(v.([]any)[idx])
		}
		return builder.Build(), nil
	case FormIn:
		needle, err := Eval(s.Args[0], page)
		if err != nil {
			return nil, err
		}
		needle = block.Unwrap(needle)
		hay := make([]block.Block, len(s.Args)-1)
		for i, a := range s.Args[1:] {
			b, err := Eval(a, page)
			if err != nil {
				return nil, err
			}
			hay[i] = block.Unwrap(b)
		}
		vals := make([]bool, n)
		var nulls []bool
		for i := 0; i < n; i++ {
			nv := needle.Value(i)
			if nv == nil {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[i] = true
				continue
			}
			found := false
			sawNull := false
			for _, hb := range hay {
				hv := hb.Value(i)
				if hv == nil {
					sawNull = true
					continue
				}
				if CompareValues(nv, hv) == 0 {
					found = true
					break
				}
			}
			if found {
				vals[i] = true
			} else if sawNull {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[i] = true
			}
		}
		return &block.BoolBlock{Values: vals, Nulls: nulls}, nil
	case FormBetween:
		v, err := Eval(s.Args[0], page)
		if err != nil {
			return nil, err
		}
		lo, err := Eval(s.Args[1], page)
		if err != nil {
			return nil, err
		}
		hi, err := Eval(s.Args[2], page)
		if err != nil {
			return nil, err
		}
		v, lo, hi = block.Unwrap(v), block.Unwrap(lo), block.Unwrap(hi)
		vals := make([]bool, n)
		var nulls []bool
		for i := 0; i < n; i++ {
			vv, lv, hv := v.Value(i), lo.Value(i), hi.Value(i)
			if vv == nil || lv == nil || hv == nil {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[i] = true
				continue
			}
			vals[i] = CompareValues(vv, lv) >= 0 && CompareValues(vv, hv) <= 0
		}
		return &block.BoolBlock{Values: vals, Nulls: nulls}, nil
	default:
		return nil, fmt.Errorf("expr: unsupported special form %s", s.Form)
	}
}

// cleanupTVL re-evaluates AND/OR positions that mixed NULL with a dominating
// value in the wrong order. The vectorized loop above handles
// false-after-null for AND and true-after-null for OR, but a null seen after
// a dominating value must not taint it; since we never set nulls[i] back once
// a dominating value clears it... it actually can: a later null arg sets
// nulls[i]=true unconditionally. Fix by row-wise re-evaluation of tainted
// positions only.
func cleanupTVL(s *SpecialForm, page *block.Page, vals, nulls []bool, n int) (block.Block, error) {
	tainted := make([]int, 0)
	for i := 0; i < n; i++ {
		if nulls[i] {
			tainted = append(tainted, i)
		}
	}
	if len(tainted) == 0 {
		return &block.BoolBlock{Values: vals}, nil
	}
	sub := page.Mask(tainted)
	for out, origPos := range tainted {
		result := any(nil) // null unless dominated
		for _, arg := range s.Args {
			b, err := Eval(arg, sub.Region(out, 1))
			if err != nil {
				return nil, err
			}
			v := block.Unwrap(b).Value(0)
			if v == nil {
				continue
			}
			bv := v.(bool)
			if s.Form == FormAnd && !bv {
				result = false
				break
			}
			if s.Form == FormOr && bv {
				result = true
				break
			}
		}
		if result != nil {
			vals[origPos] = result.(bool)
			nulls[origPos] = false
		} else {
			vals[origPos] = false
			nulls[origPos] = true
		}
	}
	anyNull := false
	for _, isNull := range nulls {
		if isNull {
			anyNull = true
			break
		}
	}
	if !anyNull {
		nulls = nil
	}
	return &block.BoolBlock{Values: vals, Nulls: nulls}, nil
}
