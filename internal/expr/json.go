package expr

import (
	"encoding/json"
	"fmt"

	"prestolite/internal/types"
)

// RowExpressions are "completely self-contained and can be shared across
// multiple systems" (§IV.B). This file implements the wire format the engine
// uses to push expressions down to connectors: a tagged JSON union. Integer
// values are carried as strings to survive JSON's float64 number model.

type jsonExpr struct {
	Kind   string          `json:"@type"`
	Type   string          `json:"type,omitempty"`
	Value  *jsonValue      `json:"value,omitempty"`
	Name   string          `json:"name,omitempty"`
	Chan   int             `json:"channel,omitempty"`
	Handle *FunctionHandle `json:"functionHandle,omitempty"`
	Form   string          `json:"form,omitempty"`
	Args   []jsonExpr      `json:"args,omitempty"`
	Params []string        `json:"params,omitempty"`
	PTypes []string        `json:"paramTypes,omitempty"`
}

type jsonValue struct {
	Null    bool    `json:"null,omitempty"`
	Int     *string `json:"int,omitempty"` // int64 as decimal string
	Float   *float64
	Bool    *bool
	Varchar *string
}

func (v jsonValue) MarshalJSON() ([]byte, error) {
	m := map[string]any{}
	switch {
	case v.Null:
		m["null"] = true
	case v.Int != nil:
		m["int"] = *v.Int
	case v.Float != nil:
		m["float"] = *v.Float
	case v.Bool != nil:
		m["bool"] = *v.Bool
	case v.Varchar != nil:
		m["varchar"] = *v.Varchar
	}
	return json.Marshal(m)
}

func (v *jsonValue) UnmarshalJSON(data []byte) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	if _, ok := m["null"]; ok {
		v.Null = true
		return nil
	}
	if raw, ok := m["int"]; ok {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return err
		}
		v.Int = &s
		return nil
	}
	if raw, ok := m["float"]; ok {
		var f float64
		if err := json.Unmarshal(raw, &f); err != nil {
			return err
		}
		v.Float = &f
		return nil
	}
	if raw, ok := m["bool"]; ok {
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return err
		}
		v.Bool = &b
		return nil
	}
	if raw, ok := m["varchar"]; ok {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return err
		}
		v.Varchar = &s
		return nil
	}
	return fmt.Errorf("expr: empty json value")
}

func boxValue(v any) (*jsonValue, error) {
	switch x := v.(type) {
	case nil:
		return &jsonValue{Null: true}, nil
	case int64:
		s := fmt.Sprintf("%d", x)
		return &jsonValue{Int: &s}, nil
	case float64:
		return &jsonValue{Float: &x}, nil
	case bool:
		return &jsonValue{Bool: &x}, nil
	case string:
		return &jsonValue{Varchar: &x}, nil
	default:
		return nil, fmt.Errorf("expr: cannot serialize constant of Go type %T", v)
	}
}

func unboxValue(v *jsonValue) (any, error) {
	switch {
	case v == nil || v.Null:
		return nil, nil
	case v.Int != nil:
		var n int64
		if _, err := fmt.Sscanf(*v.Int, "%d", &n); err != nil {
			return nil, fmt.Errorf("expr: bad int constant %q", *v.Int)
		}
		return n, nil
	case v.Float != nil:
		return *v.Float, nil
	case v.Bool != nil:
		return *v.Bool, nil
	case v.Varchar != nil:
		return *v.Varchar, nil
	}
	return nil, fmt.Errorf("expr: empty constant")
}

func toJSON(e RowExpression) (jsonExpr, error) {
	switch t := e.(type) {
	case *Constant:
		val, err := boxValue(t.Value)
		if err != nil {
			return jsonExpr{}, err
		}
		return jsonExpr{Kind: "constant", Type: t.Type.String(), Value: val}, nil
	case *Variable:
		return jsonExpr{Kind: "variable", Type: t.Type.String(), Name: t.Name, Chan: t.Channel}, nil
	case *Call:
		out := jsonExpr{Kind: "call", Type: t.Ret.String(), Handle: &t.Handle}
		for _, a := range t.Args {
			ja, err := toJSON(a)
			if err != nil {
				return jsonExpr{}, err
			}
			out.Args = append(out.Args, ja)
		}
		return out, nil
	case *SpecialForm:
		out := jsonExpr{Kind: "special", Type: t.Ret.String(), Form: string(t.Form)}
		for _, a := range t.Args {
			ja, err := toJSON(a)
			if err != nil {
				return jsonExpr{}, err
			}
			out.Args = append(out.Args, ja)
		}
		return out, nil
	case *Lambda:
		body, err := toJSON(t.Body)
		if err != nil {
			return jsonExpr{}, err
		}
		out := jsonExpr{Kind: "lambda", Params: t.Params, Args: []jsonExpr{body}}
		for _, pt := range t.ParamTypes {
			out.PTypes = append(out.PTypes, pt.String())
		}
		return out, nil
	default:
		return jsonExpr{}, fmt.Errorf("expr: cannot serialize %T", e)
	}
}

func fromJSON(j jsonExpr) (RowExpression, error) {
	switch j.Kind {
	case "constant":
		t, err := types.Parse(j.Type)
		if err != nil {
			return nil, err
		}
		v, err := unboxValue(j.Value)
		if err != nil {
			return nil, err
		}
		return &Constant{Value: v, Type: t}, nil
	case "variable":
		t, err := types.Parse(j.Type)
		if err != nil {
			return nil, err
		}
		return &Variable{Name: j.Name, Channel: j.Chan, Type: t}, nil
	case "call":
		t, err := types.Parse(j.Type)
		if err != nil {
			return nil, err
		}
		if j.Handle == nil {
			return nil, fmt.Errorf("expr: call without functionHandle")
		}
		args := make([]RowExpression, len(j.Args))
		for i, ja := range j.Args {
			args[i], err = fromJSON(ja)
			if err != nil {
				return nil, err
			}
		}
		return &Call{Handle: *j.Handle, Args: args, Ret: t}, nil
	case "special":
		t, err := types.Parse(j.Type)
		if err != nil {
			return nil, err
		}
		args := make([]RowExpression, len(j.Args))
		for i, ja := range j.Args {
			args[i], err = fromJSON(ja)
			if err != nil {
				return nil, err
			}
		}
		return &SpecialForm{Form: Form(j.Form), Args: args, Ret: t}, nil
	case "lambda":
		if len(j.Args) != 1 {
			return nil, fmt.Errorf("expr: lambda needs exactly one body")
		}
		body, err := fromJSON(j.Args[0])
		if err != nil {
			return nil, err
		}
		pts := make([]*types.Type, len(j.PTypes))
		for i, s := range j.PTypes {
			pts[i], err = types.Parse(s)
			if err != nil {
				return nil, err
			}
		}
		return &Lambda{Params: j.Params, ParamTypes: pts, Body: body}, nil
	default:
		return nil, fmt.Errorf("expr: unknown expression kind %q", j.Kind)
	}
}

// Marshal serializes a RowExpression to its wire form.
func Marshal(e RowExpression) ([]byte, error) {
	j, err := toJSON(e)
	if err != nil {
		return nil, err
	}
	return json.Marshal(j)
}

// Unmarshal reconstructs a RowExpression from its wire form.
func Unmarshal(data []byte) (RowExpression, error) {
	var j jsonExpr
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("expr: unmarshal: %w", err)
	}
	return fromJSON(j)
}
