package expr

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"prestolite/internal/types"
)

// ScalarFunction describes one overload of a scalar function. Functions are
// registered in a process-global registry; connectors and plugins (e.g. the
// geospatial plugin, §VI.E) register additional functions at startup.
type ScalarFunction struct {
	// Name is the lower-case function name.
	Name string
	// Params are the declared parameter types; a nil entry accepts any type.
	Params []*types.Type
	// Variadic allows extra trailing arguments of the last param type.
	Variadic bool
	// ReturnType computes the result type from actual argument types.
	ReturnType func(args []*types.Type) *types.Type
	// EvalRow computes a single row. Arguments follow block boxing.
	// It is only called when all arguments are non-null unless
	// CalledOnNull is set.
	EvalRow func(args []any) (any, error)
	// CalledOnNull opts into receiving SQL NULL arguments.
	CalledOnNull bool
}

// matches reports whether this overload accepts the argument types exactly.
func (f *ScalarFunction) matches(args []*types.Type) bool {
	if f.Variadic {
		if len(args) < len(f.Params) {
			return false
		}
	} else if len(args) != len(f.Params) {
		return false
	}
	for i, a := range args {
		p := f.Params[min(i, len(f.Params)-1)]
		if p == nil {
			continue
		}
		if !typeAccepts(p, a) {
			return false
		}
	}
	return true
}

// typeAccepts allows unknown (null literal) anywhere and structural equality
// otherwise. Array/map/row params with nil components act as wildcards.
func typeAccepts(param, arg *types.Type) bool {
	if arg.Kind == types.KindUnknown {
		return true
	}
	if param.Kind != arg.Kind {
		return false
	}
	switch param.Kind {
	case types.KindArray:
		return param.Elem == nil || typeAccepts(param.Elem, arg.Elem)
	case types.KindMap:
		return (param.Key == nil || typeAccepts(param.Key, arg.Key)) &&
			(param.Value == nil || typeAccepts(param.Value, arg.Value))
	case types.KindRow:
		return len(param.Fields) == 0
	}
	return true
}

var (
	registryMu sync.RWMutex
	registry   = map[string][]*ScalarFunction{}
)

// RegisterScalar adds an overload to the global registry.
func RegisterScalar(f *ScalarFunction) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[f.Name] = append(registry[f.Name], f)
}

// Resolve finds the overload of name matching argTypes.
func Resolve(name string, argTypes []*types.Type) (*ScalarFunction, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	overloads := registry[strings.ToLower(name)]
	for _, f := range overloads {
		if f.matches(argTypes) {
			return f, nil
		}
	}
	if len(overloads) == 0 {
		return nil, fmt.Errorf("expr: unknown function %q", name)
	}
	strs := make([]string, len(argTypes))
	for i, t := range argTypes {
		strs[i] = t.String()
	}
	return nil, fmt.Errorf("expr: no overload of %q for (%s)", name, strings.Join(strs, ", "))
}

// IsRegistered reports whether any overload of name exists.
func IsRegistered(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return len(registry[strings.ToLower(name)]) > 0
}

func fixedReturn(t *types.Type) func([]*types.Type) *types.Type {
	return func([]*types.Type) *types.Type { return t }
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// Built-in functions.

func asInt64(v any) int64 {
	switch x := v.(type) {
	case int64:
		return x
	case int:
		return int64(x)
	case float64:
		return int64(x)
	}
	panic(fmt.Sprintf("expr: not an int64: %T", v))
}

func asFloat64(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int64:
		return float64(x)
	case int:
		return float64(x)
	}
	panic(fmt.Sprintf("expr: not a float64: %T", v))
}

func registerBinaryNumeric(name string, intFn func(a, b int64) (int64, error), floatFn func(a, b float64) float64) {
	RegisterScalar(&ScalarFunction{
		Name: name, Params: []*types.Type{types.Bigint, types.Bigint},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow: func(args []any) (any, error) {
			return intFn(asInt64(args[0]), asInt64(args[1]))
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: name, Params: []*types.Type{types.Double, types.Double},
		ReturnType: fixedReturn(types.Double),
		EvalRow: func(args []any) (any, error) {
			return floatFn(asFloat64(args[0]), asFloat64(args[1])), nil
		},
	})
}

// CompareValues orders two non-null values of the same primitive type:
// -1, 0 or 1. Exported for use by ORDER BY and min/max aggregates.
func CompareValues(a, b any) int {
	switch x := a.(type) {
	case int64:
		y := asInt64(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case float64:
		y := asFloat64(b)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case string:
		return strings.Compare(x, b.(string))
	case bool:
		y := b.(bool)
		switch {
		case !x && y:
			return -1
		case x && !y:
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("expr: cannot compare %T", a))
}

func registerComparison(name string, pred func(cmp int) bool) {
	for _, t := range []*types.Type{types.Bigint, types.Double, types.Varchar, types.Boolean, types.Date} {
		t := t
		RegisterScalar(&ScalarFunction{
			Name: name, Params: []*types.Type{t, t},
			ReturnType: fixedReturn(types.Boolean),
			EvalRow: func(args []any) (any, error) {
				return pred(CompareValues(args[0], args[1])), nil
			},
		})
	}
}

var likeCache sync.Map // pattern string -> *regexp.Regexp

// CompileLike converts a SQL LIKE pattern to a regexp ('%' → '.*', '_' → '.').
func CompileLike(pattern string) (*regexp.Regexp, error) {
	if re, ok := likeCache.Load(pattern); ok {
		return re.(*regexp.Regexp), nil
	}
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	re, err := regexp.Compile(sb.String())
	if err != nil {
		return nil, fmt.Errorf("expr: bad LIKE pattern %q: %w", pattern, err)
	}
	likeCache.Store(pattern, re)
	return re, nil
}

// EpochDate converts a 'YYYY-MM-DD' string to days since the Unix epoch.
func EpochDate(s string) (int64, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("expr: bad date %q: %w", s, err)
	}
	return t.Unix() / 86400, nil
}

// FormatDate renders days-since-epoch as 'YYYY-MM-DD'.
func FormatDate(days int64) string {
	return time.Unix(days*86400, 0).UTC().Format("2006-01-02")
}

func init() {
	registerBinaryNumeric("add",
		func(a, b int64) (int64, error) { return a + b, nil },
		func(a, b float64) float64 { return a + b })
	registerBinaryNumeric("subtract",
		func(a, b int64) (int64, error) { return a - b, nil },
		func(a, b float64) float64 { return a - b })
	registerBinaryNumeric("multiply",
		func(a, b int64) (int64, error) { return a * b, nil },
		func(a, b float64) float64 { return a * b })
	registerBinaryNumeric("divide",
		func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("expr: division by zero")
			}
			return a / b, nil
		},
		func(a, b float64) float64 { return a / b })
	registerBinaryNumeric("modulus",
		func(a, b int64) (int64, error) {
			if b == 0 {
				return 0, fmt.Errorf("expr: modulus by zero")
			}
			return a % b, nil
		},
		func(a, b float64) float64 { return math.Mod(a, b) })

	RegisterScalar(&ScalarFunction{
		Name: "negate", Params: []*types.Type{types.Bigint},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow:    func(args []any) (any, error) { return -asInt64(args[0]), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "negate", Params: []*types.Type{types.Double},
		ReturnType: fixedReturn(types.Double),
		EvalRow:    func(args []any) (any, error) { return -asFloat64(args[0]), nil },
	})

	registerComparison("eq", func(c int) bool { return c == 0 })
	registerComparison("neq", func(c int) bool { return c != 0 })
	registerComparison("lt", func(c int) bool { return c < 0 })
	registerComparison("lte", func(c int) bool { return c <= 0 })
	registerComparison("gt", func(c int) bool { return c > 0 })
	registerComparison("gte", func(c int) bool { return c >= 0 })

	RegisterScalar(&ScalarFunction{
		Name: "like", Params: []*types.Type{types.Varchar, types.Varchar},
		ReturnType: fixedReturn(types.Boolean),
		EvalRow: func(args []any) (any, error) {
			re, err := CompileLike(args[1].(string))
			if err != nil {
				return nil, err
			}
			return re.MatchString(args[0].(string)), nil
		},
	})

	// Casts: to_<type>(x). The analyzer resolves CAST(x AS t) to these.
	RegisterScalar(&ScalarFunction{
		Name: "to_double", Params: []*types.Type{types.Bigint},
		ReturnType: fixedReturn(types.Double),
		EvalRow:    func(args []any) (any, error) { return float64(asInt64(args[0])), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "to_double", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Double),
		EvalRow: func(args []any) (any, error) {
			f, err := strconv.ParseFloat(args[0].(string), 64)
			if err != nil {
				return nil, fmt.Errorf("expr: cannot cast %q to double", args[0])
			}
			return f, nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "to_double", Params: []*types.Type{types.Double},
		ReturnType: fixedReturn(types.Double),
		EvalRow:    func(args []any) (any, error) { return args[0], nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "to_bigint", Params: []*types.Type{types.Double},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow:    func(args []any) (any, error) { return int64(asFloat64(args[0])), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "to_bigint", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow: func(args []any) (any, error) {
			n, err := strconv.ParseInt(strings.TrimSpace(args[0].(string)), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("expr: cannot cast %q to bigint", args[0])
			}
			return n, nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "to_bigint", Params: []*types.Type{types.Bigint},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow:    func(args []any) (any, error) { return args[0], nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "to_varchar", Params: []*types.Type{nil},
		ReturnType: fixedReturn(types.Varchar),
		EvalRow:    func(args []any) (any, error) { return fmt.Sprintf("%v", args[0]), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "to_date", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Date),
		EvalRow: func(args []any) (any, error) {
			return EpochDate(args[0].(string))
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "to_boolean", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Boolean),
		EvalRow: func(args []any) (any, error) {
			switch strings.ToLower(args[0].(string)) {
			case "true", "t", "1":
				return true, nil
			case "false", "f", "0":
				return false, nil
			}
			return nil, fmt.Errorf("expr: cannot cast %q to boolean", args[0])
		},
	})

	// String functions.
	RegisterScalar(&ScalarFunction{
		Name: "lower", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Varchar),
		EvalRow:    func(args []any) (any, error) { return strings.ToLower(args[0].(string)), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "upper", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Varchar),
		EvalRow:    func(args []any) (any, error) { return strings.ToUpper(args[0].(string)), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "length", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow:    func(args []any) (any, error) { return int64(len(args[0].(string))), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "trim", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Varchar),
		EvalRow:    func(args []any) (any, error) { return strings.TrimSpace(args[0].(string)), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "reverse", Params: []*types.Type{types.Varchar},
		ReturnType: fixedReturn(types.Varchar),
		EvalRow: func(args []any) (any, error) {
			r := []rune(args[0].(string))
			for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
				r[i], r[j] = r[j], r[i]
			}
			return string(r), nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "concat", Params: []*types.Type{types.Varchar, types.Varchar}, Variadic: true,
		ReturnType: fixedReturn(types.Varchar),
		EvalRow: func(args []any) (any, error) {
			var sb strings.Builder
			for _, a := range args {
				sb.WriteString(a.(string))
			}
			return sb.String(), nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "substr", Params: []*types.Type{types.Varchar, types.Bigint},
		ReturnType: fixedReturn(types.Varchar),
		EvalRow: func(args []any) (any, error) {
			s := args[0].(string)
			start := asInt64(args[1])
			if start < 1 || start > int64(len(s)) {
				return "", nil
			}
			return s[start-1:], nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "substr", Params: []*types.Type{types.Varchar, types.Bigint, types.Bigint},
		ReturnType: fixedReturn(types.Varchar),
		EvalRow: func(args []any) (any, error) {
			s := args[0].(string)
			start, length := asInt64(args[1]), asInt64(args[2])
			if start < 1 || start > int64(len(s)) || length <= 0 {
				return "", nil
			}
			end := start - 1 + length
			if end > int64(len(s)) {
				end = int64(len(s))
			}
			return s[start-1 : end], nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "strpos", Params: []*types.Type{types.Varchar, types.Varchar},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow: func(args []any) (any, error) {
			return int64(strings.Index(args[0].(string), args[1].(string)) + 1), nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "replace", Params: []*types.Type{types.Varchar, types.Varchar, types.Varchar},
		ReturnType: fixedReturn(types.Varchar),
		EvalRow: func(args []any) (any, error) {
			return strings.ReplaceAll(args[0].(string), args[1].(string), args[2].(string)), nil
		},
	})

	// Math functions.
	RegisterScalar(&ScalarFunction{
		Name: "abs", Params: []*types.Type{types.Bigint},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow: func(args []any) (any, error) {
			v := asInt64(args[0])
			if v < 0 {
				v = -v
			}
			return v, nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "abs", Params: []*types.Type{types.Double},
		ReturnType: fixedReturn(types.Double),
		EvalRow:    func(args []any) (any, error) { return math.Abs(asFloat64(args[0])), nil },
	})
	for name, fn := range map[string]func(float64) float64{
		"floor": math.Floor, "ceil": math.Ceil, "sqrt": math.Sqrt, "ln": math.Log,
		"round": math.Round,
	} {
		fn := fn
		RegisterScalar(&ScalarFunction{
			Name: name, Params: []*types.Type{types.Double},
			ReturnType: fixedReturn(types.Double),
			EvalRow:    func(args []any) (any, error) { return fn(asFloat64(args[0])), nil },
		})
	}
	RegisterScalar(&ScalarFunction{
		Name: "power", Params: []*types.Type{types.Double, types.Double},
		ReturnType: fixedReturn(types.Double),
		EvalRow: func(args []any) (any, error) {
			return math.Pow(asFloat64(args[0]), asFloat64(args[1])), nil
		},
	})

	// Array and map functions.
	RegisterScalar(&ScalarFunction{
		Name: "cardinality", Params: []*types.Type{{Kind: types.KindArray}},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow:    func(args []any) (any, error) { return int64(len(args[0].([]any))), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "cardinality", Params: []*types.Type{{Kind: types.KindMap}},
		ReturnType: fixedReturn(types.Bigint),
		EvalRow:    func(args []any) (any, error) { return int64(len(args[0].([][2]any))), nil },
	})
	RegisterScalar(&ScalarFunction{
		Name: "element_at", Params: []*types.Type{{Kind: types.KindArray}, types.Bigint},
		ReturnType: func(args []*types.Type) *types.Type { return args[0].Elem },
		EvalRow: func(args []any) (any, error) {
			arr := args[0].([]any)
			i := asInt64(args[1])
			if i < 1 || i > int64(len(arr)) {
				return nil, nil
			}
			return arr[i-1], nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "element_at", Params: []*types.Type{{Kind: types.KindMap}, nil},
		ReturnType: func(args []*types.Type) *types.Type { return args[0].Value },
		EvalRow: func(args []any) (any, error) {
			entries := args[0].([][2]any)
			for _, e := range entries {
				if e[0] != nil && CompareValues(e[0], args[1]) == 0 {
					return e[1], nil
				}
			}
			return nil, nil
		},
	})
	RegisterScalar(&ScalarFunction{
		Name: "contains", Params: []*types.Type{{Kind: types.KindArray}, nil},
		ReturnType: fixedReturn(types.Boolean),
		EvalRow: func(args []any) (any, error) {
			for _, e := range args[0].([]any) {
				if e != nil && CompareValues(e, args[1]) == 0 {
					return true, nil
				}
			}
			return false, nil
		},
	})
}
