package expr

import (
	"reflect"
	"strings"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

func bigint(v int64) *Constant { return NewConstant(v, types.Bigint) }
func dbl(v float64) *Constant  { return NewConstant(v, types.Double) }
func str(v string) *Constant   { return NewConstant(v, types.Varchar) }
func boolean(v bool) *Constant { return NewConstant(v, types.Boolean) }
func col(ch int, t *types.Type) *Variable {
	return NewVariable("c"+string(rune('0'+ch)), ch, t)
}

func evalConst(t *testing.T, e RowExpression) any {
	t.Helper()
	v, err := EvalRowValue(e, nil)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr RowExpression
		want any
	}{
		{MustCall("add", bigint(2), bigint(3)), int64(5)},
		{MustCall("subtract", bigint(2), bigint(3)), int64(-1)},
		{MustCall("multiply", bigint(4), bigint(3)), int64(12)},
		{MustCall("divide", bigint(7), bigint(2)), int64(3)},
		{MustCall("modulus", bigint(7), bigint(2)), int64(1)},
		{MustCall("add", dbl(1.5), dbl(2.25)), 3.75},
		{MustCall("divide", dbl(1.0), dbl(4.0)), 0.25},
		{MustCall("negate", bigint(5)), int64(-5)},
		{MustCall("negate", dbl(2.5)), -2.5},
	}
	for _, c := range cases {
		if got := evalConst(t, c.expr); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	_, err := EvalRowValue(MustCall("divide", bigint(1), bigint(0)), nil)
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected division by zero, got %v", err)
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		expr RowExpression
		want bool
	}{
		{MustCall("eq", bigint(2), bigint(2)), true},
		{MustCall("neq", bigint(2), bigint(3)), true},
		{MustCall("lt", str("a"), str("b")), true},
		{MustCall("gte", dbl(2.5), dbl(2.5)), true},
		{MustCall("gt", boolean(true), boolean(false)), true},
		{MustCall("lte", bigint(5), bigint(4)), false},
	}
	for _, c := range cases {
		if got := evalConst(t, c.expr); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	null := Null()
	if got := evalConst(t, MustCall("eq", bigint(1), null)); got != nil {
		t.Errorf("1 = NULL should be NULL, got %v", got)
	}
	if got := evalConst(t, MustCall("add", null, bigint(1))); got != nil {
		t.Errorf("NULL + 1 should be NULL, got %v", got)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	null := Null()
	tr, fa := boolean(true), boolean(false)
	nullCmp := MustCall("eq", bigint(1), null) // NULL boolean
	cases := []struct {
		expr RowExpression
		want any
	}{
		{And(tr, tr), true},
		{And(tr, fa), false},
		{And(fa, nullCmp), false}, // FALSE AND NULL = FALSE
		{And(nullCmp, fa), false}, // NULL AND FALSE = FALSE
		{And(tr, nullCmp), nil},   // TRUE AND NULL = NULL
		{Or(tr, nullCmp), true},   // TRUE OR NULL = TRUE
		{Or(nullCmp, tr), true},   // NULL OR TRUE = TRUE
		{Or(fa, nullCmp), nil},    // FALSE OR NULL = NULL
		{Not(nullCmp), nil},       // NOT NULL = NULL
		{Not(tr), false},
		{Or(fa, fa), false},
	}
	for _, c := range cases {
		if got := evalConst(t, c.expr); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestSpecialForms(t *testing.T) {
	null := Null()
	isNull := &SpecialForm{Form: FormIsNull, Args: []RowExpression{null}, Ret: types.Boolean}
	if got := evalConst(t, isNull); got != true {
		t.Errorf("NULL IS NULL = %v", got)
	}
	ifExpr := &SpecialForm{Form: FormIf, Args: []RowExpression{boolean(true), bigint(1), bigint(2)}, Ret: types.Bigint}
	if got := evalConst(t, ifExpr); got != int64(1) {
		t.Errorf("IF = %v", got)
	}
	ifNoElse := &SpecialForm{Form: FormIf, Args: []RowExpression{boolean(false), bigint(1)}, Ret: types.Bigint}
	if got := evalConst(t, ifNoElse); got != nil {
		t.Errorf("IF without else = %v", got)
	}
	coalesce := &SpecialForm{Form: FormCoalesce, Args: []RowExpression{null, bigint(7), bigint(9)}, Ret: types.Bigint}
	if got := evalConst(t, coalesce); got != int64(7) {
		t.Errorf("COALESCE = %v", got)
	}
	in := &SpecialForm{Form: FormIn, Args: []RowExpression{bigint(2), bigint(1), bigint(2), bigint(3)}, Ret: types.Boolean}
	if got := evalConst(t, in); got != true {
		t.Errorf("IN = %v", got)
	}
	notIn := &SpecialForm{Form: FormIn, Args: []RowExpression{bigint(9), bigint(1), null}, Ret: types.Boolean}
	if got := evalConst(t, notIn); got != nil {
		t.Errorf("9 IN (1, NULL) should be NULL, got %v", got)
	}
	between := &SpecialForm{Form: FormBetween, Args: []RowExpression{bigint(5), bigint(1), bigint(10)}, Ret: types.Boolean}
	if got := evalConst(t, between); got != true {
		t.Errorf("BETWEEN = %v", got)
	}
}

func TestDereference(t *testing.T) {
	rowType := types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Varchar},
		types.Field{Name: "city_id", Type: types.Bigint},
	)
	base := col(0, rowType)
	deref, err := Dereference(base, "city_id")
	if err != nil {
		t.Fatal(err)
	}
	if deref.TypeOf() != types.Bigint {
		t.Errorf("deref type = %v", deref.TypeOf())
	}
	page := block.NewPage(block.FromValues(rowType,
		[]any{"d1", int64(12)},
		[]any{"d2", int64(7)},
		nil,
	))
	b, err := Eval(deref, page)
	if err != nil {
		t.Fatal(err)
	}
	if b.Value(0) != int64(12) || b.Value(1) != int64(7) || !b.IsNull(2) {
		t.Errorf("deref values: %v %v null=%v", b.Value(0), b.Value(1), b.IsNull(2))
	}
	if _, err := Dereference(base, "missing"); err == nil {
		t.Error("expected error for missing field")
	}
	if _, err := Dereference(col(0, types.Bigint), "x"); err == nil {
		t.Error("expected error for non-row base")
	}
}

func TestNestedDereferenceChain(t *testing.T) {
	inner := types.NewRow(types.Field{Name: "lat", Type: types.Double})
	outer := types.NewRow(types.Field{Name: "geo", Type: inner})
	d1, err := Dereference(col(0, outer), "geo")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Dereference(d1, "lat")
	if err != nil {
		t.Fatal(err)
	}
	page := block.NewPage(block.FromValues(outer, []any{[]any{37.7}}, []any{nil}))
	b, err := Eval(d2, page)
	if err != nil {
		t.Fatal(err)
	}
	if b.Value(0) != 37.7 || !b.IsNull(1) {
		t.Errorf("chain: %v, null=%v", b.Value(0), b.IsNull(1))
	}
}

func TestVectorizedFilter(t *testing.T) {
	page := block.NewPage(
		block.NewInt64Block([]int64{5, 10, 12, 3, 12}),
		block.NewVarcharBlock([]string{"a", "b", "c", "d", "e"}),
	)
	pred := MustCall("eq", col(0, types.Bigint), bigint(12))
	pos, err := EvalFilter(pred, page)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos, []int{2, 4}) {
		t.Errorf("positions = %v", pos)
	}
}

func TestStringFunctions(t *testing.T) {
	cases := []struct {
		expr RowExpression
		want any
	}{
		{MustCall("lower", str("AbC")), "abc"},
		{MustCall("upper", str("AbC")), "ABC"},
		{MustCall("length", str("hello")), int64(5)},
		{MustCall("concat", str("a"), str("b"), str("c")), "abc"},
		{MustCall("substr", str("hello"), bigint(2)), "ello"},
		{MustCall("substr", str("hello"), bigint(2), bigint(3)), "ell"},
		{MustCall("trim", str("  x ")), "x"},
		{MustCall("strpos", str("hello"), str("ll")), int64(3)},
		{MustCall("replace", str("aaa"), str("a"), str("b")), "bbb"},
		{MustCall("reverse", str("abc")), "cba"},
		{MustCall("like", str("san francisco"), str("san%")), true},
		{MustCall("like", str("oakland"), str("san%")), false},
		{MustCall("like", str("cat"), str("c_t")), true},
	}
	for _, c := range cases {
		if got := evalConst(t, c.expr); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestCasts(t *testing.T) {
	cases := []struct {
		expr RowExpression
		want any
	}{
		{MustCall("to_double", bigint(3)), 3.0},
		{MustCall("to_bigint", dbl(3.9)), int64(3)},
		{MustCall("to_bigint", str("42")), int64(42)},
		{MustCall("to_varchar", bigint(7)), "7"},
		{MustCall("to_boolean", str("true")), true},
	}
	for _, c := range cases {
		if got := evalConst(t, c.expr); got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
	d := evalConst(t, MustCall("to_date", str("2017-08-01")))
	if FormatDate(d.(int64)) != "2017-08-01" {
		t.Errorf("date round trip failed: %v", d)
	}
	if _, err := EvalRowValue(MustCall("to_bigint", str("zzz")), nil); err == nil {
		t.Error("expected cast error")
	}
}

func TestArrayMapFunctions(t *testing.T) {
	arrType := types.NewArray(types.Bigint)
	arr := col(0, arrType)
	page := block.NewPage(block.FromValues(arrType, []any{int64(10), int64(20), int64(30)}))
	card, err := Eval(MustCall("cardinality", arr), page)
	if err != nil {
		t.Fatal(err)
	}
	if card.Value(0) != int64(3) {
		t.Errorf("cardinality = %v", card.Value(0))
	}
	elem, err := Eval(MustCall("element_at", arr, bigint(2)), page)
	if err != nil {
		t.Fatal(err)
	}
	if elem.Value(0) != int64(20) {
		t.Errorf("element_at = %v", elem.Value(0))
	}
	oob, _ := Eval(MustCall("element_at", arr, bigint(9)), page)
	if oob.Value(0) != nil {
		t.Errorf("element_at out of range = %v", oob.Value(0))
	}
	has, _ := Eval(MustCall("contains", arr, bigint(20)), page)
	if has.Value(0) != true {
		t.Errorf("contains = %v", has.Value(0))
	}

	mapType := types.NewMap(types.Varchar, types.Double)
	mpage := block.NewPage(block.FromValues(mapType, [][2]any{{"a", 1.5}, {"b", 2.5}}))
	mv, err := Eval(MustCall("element_at", col(0, mapType), str("b")), mpage)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Value(0) != 2.5 {
		t.Errorf("map element_at = %v", mv.Value(0))
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := NewCall("no_such_fn", bigint(1)); err == nil {
		t.Error("expected unknown function error")
	}
	if _, err := NewCall("add", str("a"), bigint(1)); err == nil {
		t.Error("expected no-overload error")
	}
}

func TestWalkAndRewrite(t *testing.T) {
	e := And(
		MustCall("eq", col(0, types.Bigint), bigint(12)),
		MustCall("gt", col(3, types.Bigint), col(1, types.Bigint)),
	)
	if got := ReferencedChannels(e); !reflect.DeepEqual(got, []int{0, 1, 3}) {
		t.Errorf("ReferencedChannels = %v", got)
	}
	remapped := RemapChannels(e, map[int]int{0: 5, 1: 6, 3: 7})
	if got := ReferencedChannels(remapped); !reflect.DeepEqual(got, []int{5, 6, 7}) {
		t.Errorf("remapped channels = %v", got)
	}
	count := 0
	Walk(e, func(RowExpression) bool { count++; return true })
	if count != 7 { // AND + 2 calls + 4 leaves (eq: var, const; gt: var, var)
		t.Errorf("walk visited %d nodes", count)
	}
}

func TestStringRendering(t *testing.T) {
	e := And(
		MustCall("eq", NewVariable("city_id", 0, types.Bigint), bigint(12)),
		MustCall("like", NewVariable("name", 1, types.Varchar), str("san%")),
	)
	want := "((city_id = 12) AND (name LIKE 'san%'))"
	if got := e.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestAggregates(t *testing.T) {
	sum, err := ResolveAggregate("sum", []*types.Type{types.Bigint})
	if err != nil {
		t.Fatal(err)
	}
	s := sum.NewState(nil)
	for _, v := range []any{int64(1), nil, int64(4)} {
		s.Add([]any{v})
	}
	if s.Final() != int64(5) {
		t.Errorf("sum = %v", s.Final())
	}

	countStar, err := ResolveAggregate("count", nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := countStar.NewState(nil)
	cs.Add(nil)
	cs.Add(nil)
	if cs.Final() != int64(2) {
		t.Errorf("count(*) = %v", cs.Final())
	}

	countCol, _ := ResolveAggregate("count", []*types.Type{types.Varchar})
	cc := countCol.NewState([]*types.Type{types.Varchar})
	cc.Add([]any{"x"})
	cc.Add([]any{nil})
	if cc.Final() != int64(1) {
		t.Errorf("count(col) with null = %v", cc.Final())
	}

	minFn, _ := ResolveAggregate("min", []*types.Type{types.Varchar})
	ms := minFn.NewState([]*types.Type{types.Varchar})
	ms.Add([]any{"banana"})
	ms.Add([]any{"apple"})
	ms.Add([]any{nil})
	if ms.Final() != "apple" {
		t.Errorf("min = %v", ms.Final())
	}

	avgFn, _ := ResolveAggregate("avg", []*types.Type{types.Bigint})
	as := avgFn.NewState([]*types.Type{types.Bigint})
	as.Add([]any{int64(2)})
	as.Add([]any{int64(4)})
	if as.Final() != 3.0 {
		t.Errorf("avg = %v", as.Final())
	}

	// empty states
	empty := sum.NewState(nil)
	if empty.Final() != nil {
		t.Error("sum of nothing should be NULL")
	}
	emptyAvg := avgFn.NewState(nil)
	if emptyAvg.Final() != nil {
		t.Error("avg of nothing should be NULL")
	}
}

func TestAggregatePartialFinal(t *testing.T) {
	// Simulate distributed partial/final aggregation: two workers each
	// accumulate, ship intermediates, final merges.
	avgFn, _ := ResolveAggregate("avg", []*types.Type{types.Bigint})
	w1 := avgFn.NewState(nil)
	w1.Add([]any{int64(1)})
	w1.Add([]any{int64(2)})
	w2 := avgFn.NewState(nil)
	w2.Add([]any{int64(9)})

	final := avgFn.NewState(nil)
	final.AddIntermediate(w1.Intermediate())
	final.AddIntermediate(w2.Intermediate())
	if final.Final() != 4.0 {
		t.Errorf("distributed avg = %v, want 4.0", final.Final())
	}

	cFn, _ := ResolveAggregate("count", []*types.Type{types.Bigint})
	c1 := cFn.NewState(nil)
	c1.Add([]any{int64(5)})
	c1.Add([]any{int64(5)})
	c2 := cFn.NewState(nil)
	c2.Add([]any{int64(5)})
	cf := cFn.NewState(nil)
	cf.AddIntermediate(c1.Intermediate())
	cf.AddIntermediate(c2.Intermediate())
	if cf.Final() != int64(3) {
		t.Errorf("distributed count = %v", cf.Final())
	}

	ad, _ := ResolveAggregate("approx_distinct", []*types.Type{types.Varchar})
	a1 := ad.NewState(nil)
	a1.Add([]any{"x"})
	a1.Add([]any{"y"})
	a2 := ad.NewState(nil)
	a2.Add([]any{"y"})
	a2.Add([]any{"z"})
	af := ad.NewState(nil)
	af.AddIntermediate(a1.Intermediate())
	af.AddIntermediate(a2.Intermediate())
	if af.Final() != int64(3) {
		t.Errorf("distributed approx_distinct = %v", af.Final())
	}
}

func TestIsRegisteredAndIsAggregate(t *testing.T) {
	if !IsRegistered("add") || IsRegistered("definitely_not") {
		t.Error("IsRegistered wrong")
	}
	if !IsAggregate("sum") || IsAggregate("lower") {
		t.Error("IsAggregate wrong")
	}
}

// TestFastKernelEncodings: the encoded fast paths (dict⊗const, RLE⊗RLE,
// const⊗col mirroring) must agree row-for-row with the flat evaluation of
// the same logical data.
func TestFastKernelEncodings(t *testing.T) {
	flat := block.NewInt64Block([]int64{5, 10, 12, 3, 12, 7})
	dict := &block.DictionaryBlock{
		Dictionary: block.NewInt64Block([]int64{3, 5, 7, 10, 12}),
		Ids:        []int32{1, 3, 4, 0, 4, 2},
	}
	withNull := &block.Int64Block{Values: []int64{5, 10, 12, 3, 12, 7}, Nulls: []bool{false, true, false, false, false, false}}
	dictNull := &block.DictionaryBlock{
		Dictionary: block.NewInt64Block([]int64{3, 5, 7, 10, 12}),
		Ids:        []int32{1, -1, 4, 0, 4, 2},
	}
	exprs := []RowExpression{
		MustCall("lt", col(0, types.Bigint), bigint(10)),
		MustCall("gte", col(0, types.Bigint), bigint(7)),
		MustCall("eq", col(0, types.Bigint), bigint(12)),
		MustCall("gt", bigint(10), col(0, types.Bigint)), // const on the left
		MustCall("add", col(0, types.Bigint), bigint(100)),
		MustCall("multiply", bigint(3), col(0, types.Bigint)),
	}
	encoded := map[string][2]block.Block{
		"dict":      {flat, dict},
		"flat-null": {withNull, withNull},
		"dict-null": {withNull, dictNull},
	}
	for name, pair := range encoded {
		ref, enc := pair[0], pair[1]
		for _, e := range exprs {
			want, err := Eval(e, block.NewPage(ref))
			if err != nil {
				t.Fatal(err)
			}
			got, err := Eval(e, block.NewPage(enc))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 6; i++ {
				if !reflect.DeepEqual(got.Value(i), want.Value(i)) {
					t.Errorf("%s %s row %d: got %v want %v", name, e, i, got.Value(i), want.Value(i))
				}
			}
		}
	}
	// RLE ⊗ RLE collapses to one evaluation.
	rlePage := block.NewPage(block.NewRunLengthBlock(block.NewInt64Block([]int64{9}), 4))
	out, err := Eval(MustCall("add", col(0, types.Bigint), bigint(1)), rlePage)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(*block.RunLengthBlock); !ok {
		t.Errorf("RLE input produced %T, want run-length output", out)
	}
	for i := 0; i < 4; i++ {
		if out.Value(i) != int64(10) {
			t.Errorf("row %d = %v, want 10", i, out.Value(i))
		}
	}
	// Dict filter keeps the indirection and still selects correctly.
	pos, err := EvalFilter(MustCall("lt", col(0, types.Bigint), bigint(10)), block.NewPage(dict))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pos, []int{0, 3, 5}) {
		t.Errorf("dict filter positions = %v", pos)
	}
}
