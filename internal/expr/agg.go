package expr

import (
	"fmt"
	"strings"
	"sync"

	"prestolite/internal/types"
)

// AggregateFunction describes one overload of an aggregate. Aggregation runs
// in two phases when distributed (partial on workers, final on the
// coordinator side — Fig 2 of the paper): states produce a serializable
// intermediate value that a final-phase state can merge.
type AggregateFunction struct {
	// Name is the lower-case aggregate name.
	Name string
	// Params are declared parameter types; nil accepts any type.
	// count(*) has zero params.
	Params []*types.Type
	// IntermediateType is the type of the partial-aggregation output.
	IntermediateType func(args []*types.Type) *types.Type
	// FinalType is the type of the final result.
	FinalType func(args []*types.Type) *types.Type
	// NewState creates an empty accumulator.
	NewState func(args []*types.Type) AggState
}

// AggState accumulates input rows or partial states.
type AggState interface {
	// Add accumulates one raw input row (len = number of aggregate args).
	Add(vals []any)
	// AddIntermediate merges one partial value produced by Intermediate.
	AddIntermediate(v any)
	// Intermediate returns the partial state boxed in block convention.
	Intermediate() any
	// Final returns the final aggregate value.
	Final() any
}

var (
	aggMu       sync.RWMutex
	aggRegistry = map[string][]*AggregateFunction{}
)

// RegisterAggregate adds an aggregate overload to the global registry.
func RegisterAggregate(f *AggregateFunction) {
	aggMu.Lock()
	defer aggMu.Unlock()
	aggRegistry[f.Name] = append(aggRegistry[f.Name], f)
}

// ResolveAggregate finds the aggregate overload matching argTypes.
func ResolveAggregate(name string, argTypes []*types.Type) (*AggregateFunction, error) {
	aggMu.RLock()
	defer aggMu.RUnlock()
	overloads := aggRegistry[strings.ToLower(name)]
	for _, f := range overloads {
		if len(f.Params) != len(argTypes) {
			continue
		}
		ok := true
		for i, p := range f.Params {
			if p != nil && !typeAccepts(p, argTypes[i]) {
				ok = false
				break
			}
		}
		if ok {
			return f, nil
		}
	}
	if len(overloads) == 0 {
		return nil, fmt.Errorf("expr: unknown aggregate %q", name)
	}
	strs := make([]string, len(argTypes))
	for i, t := range argTypes {
		strs[i] = t.String()
	}
	return nil, fmt.Errorf("expr: no overload of aggregate %q for (%s)", name, strings.Join(strs, ", "))
}

// IsAggregate reports whether name is a registered aggregate.
func IsAggregate(name string) bool {
	aggMu.RLock()
	defer aggMu.RUnlock()
	return len(aggRegistry[strings.ToLower(name)]) > 0
}

// ---------------------------------------------------------------------------
// Built-in aggregates.

type countState struct{ n int64 }

func (s *countState) Add(vals []any) {
	if len(vals) == 0 || vals[0] != nil {
		s.n++
	}
}
func (s *countState) AddIntermediate(v any) {
	if v != nil {
		s.n += asInt64(v)
	}
}
func (s *countState) Intermediate() any { return s.n }
func (s *countState) Final() any        { return s.n }

type sumInt64State struct {
	sum     int64
	nonNull bool
}

func (s *sumInt64State) Add(vals []any) {
	if vals[0] == nil {
		return
	}
	s.sum += asInt64(vals[0])
	s.nonNull = true
}
func (s *sumInt64State) AddIntermediate(v any) {
	if v == nil {
		return
	}
	s.sum += asInt64(v)
	s.nonNull = true
}
func (s *sumInt64State) Intermediate() any { return s.Final() }
func (s *sumInt64State) Final() any {
	if !s.nonNull {
		return nil
	}
	return s.sum
}

type sumFloat64State struct {
	sum     float64
	nonNull bool
}

func (s *sumFloat64State) Add(vals []any) {
	if vals[0] == nil {
		return
	}
	s.sum += asFloat64(vals[0])
	s.nonNull = true
}
func (s *sumFloat64State) AddIntermediate(v any) {
	if v == nil {
		return
	}
	s.sum += asFloat64(v)
	s.nonNull = true
}
func (s *sumFloat64State) Intermediate() any { return s.Final() }
func (s *sumFloat64State) Final() any {
	if !s.nonNull {
		return nil
	}
	return s.sum
}

type minMaxState struct {
	best any
	max  bool
}

func (s *minMaxState) consider(v any) {
	if v == nil {
		return
	}
	if s.best == nil {
		s.best = v
		return
	}
	c := CompareValues(v, s.best)
	if (s.max && c > 0) || (!s.max && c < 0) {
		s.best = v
	}
}
func (s *minMaxState) Add(vals []any)        { s.consider(vals[0]) }
func (s *minMaxState) AddIntermediate(v any) { s.consider(v) }
func (s *minMaxState) Intermediate() any     { return s.best }
func (s *minMaxState) Final() any            { return s.best }

// avgState keeps (sum, count); its intermediate is a row(sum double,
// count bigint) so partial states survive the exchange.
type avgState struct {
	sum float64
	n   int64
}

var avgIntermediateType = types.NewRow(
	types.Field{Name: "sum", Type: types.Double},
	types.Field{Name: "count", Type: types.Bigint},
)

func (s *avgState) Add(vals []any) {
	if vals[0] == nil {
		return
	}
	s.sum += asFloat64(vals[0])
	s.n++
}

func (s *avgState) AddIntermediate(v any) {
	if v == nil {
		return
	}
	pair := v.([]any)
	s.sum += asFloat64(pair[0])
	s.n += asInt64(pair[1])
}

func (s *avgState) Intermediate() any { return []any{s.sum, s.n} }

func (s *avgState) Final() any {
	if s.n == 0 {
		return nil
	}
	return s.sum / float64(s.n)
}

// approxDistinctState implements approx_distinct with a simple linear
// counting fallback (exact over a hash set) — good enough for a simulator.
type approxDistinctState struct {
	seen map[string]struct{}
}

func distinctKey(v any) string { return fmt.Sprintf("%T:%v", v, v) }

func (s *approxDistinctState) Add(vals []any) {
	if vals[0] == nil {
		return
	}
	s.seen[distinctKey(vals[0])] = struct{}{}
}

func (s *approxDistinctState) AddIntermediate(v any) {
	if v == nil {
		return
	}
	for _, k := range v.([]any) {
		s.seen[k.(string)] = struct{}{}
	}
}

func (s *approxDistinctState) Intermediate() any {
	out := make([]any, 0, len(s.seen))
	for k := range s.seen {
		out = append(out, k)
	}
	return out
}

func (s *approxDistinctState) Final() any { return int64(len(s.seen)) }

func init() {
	RegisterAggregate(&AggregateFunction{
		Name: "count", Params: nil, // count(*)
		IntermediateType: fixedReturn(types.Bigint),
		FinalType:        fixedReturn(types.Bigint),
		NewState:         func([]*types.Type) AggState { return &countState{} },
	})
	RegisterAggregate(&AggregateFunction{
		Name: "count", Params: []*types.Type{nil},
		IntermediateType: fixedReturn(types.Bigint),
		FinalType:        fixedReturn(types.Bigint),
		NewState:         func([]*types.Type) AggState { return &countState{} },
	})
	RegisterAggregate(&AggregateFunction{
		Name: "sum", Params: []*types.Type{types.Bigint},
		IntermediateType: fixedReturn(types.Bigint),
		FinalType:        fixedReturn(types.Bigint),
		NewState:         func([]*types.Type) AggState { return &sumInt64State{} },
	})
	RegisterAggregate(&AggregateFunction{
		Name: "sum", Params: []*types.Type{types.Double},
		IntermediateType: fixedReturn(types.Double),
		FinalType:        fixedReturn(types.Double),
		NewState:         func([]*types.Type) AggState { return &sumFloat64State{} },
	})
	for _, name := range []string{"min", "max"} {
		name := name
		RegisterAggregate(&AggregateFunction{
			Name: name, Params: []*types.Type{nil},
			IntermediateType: func(args []*types.Type) *types.Type { return args[0] },
			FinalType:        func(args []*types.Type) *types.Type { return args[0] },
			NewState: func([]*types.Type) AggState {
				return &minMaxState{max: name == "max"}
			},
		})
	}
	RegisterAggregate(&AggregateFunction{
		Name: "avg", Params: []*types.Type{types.Bigint},
		IntermediateType: fixedReturn(avgIntermediateType),
		FinalType:        fixedReturn(types.Double),
		NewState:         func([]*types.Type) AggState { return &avgState{} },
	})
	RegisterAggregate(&AggregateFunction{
		Name: "avg", Params: []*types.Type{types.Double},
		IntermediateType: fixedReturn(avgIntermediateType),
		FinalType:        fixedReturn(types.Double),
		NewState:         func([]*types.Type) AggState { return &avgState{} },
	})
	RegisterAggregate(&AggregateFunction{
		Name: "approx_distinct", Params: []*types.Type{nil},
		IntermediateType: fixedReturn(types.NewArray(types.Varchar)),
		FinalType:        fixedReturn(types.Bigint),
		NewState: func([]*types.Type) AggState {
			return &approxDistinctState{seen: map[string]struct{}{}}
		},
	})
}
