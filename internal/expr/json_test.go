package expr

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"prestolite/internal/types"
)

// TestTableI verifies the property Table I of the paper claims for each of
// the five RowExpression subtypes: the representation is completely
// self-contained — it serializes, deserializes on "another system", and
// evaluates identically without any re-resolution against the original
// planner state.
func TestTableI(t *testing.T) {
	rowType := types.NewRow(
		types.Field{Name: "city_id", Type: types.Bigint},
		types.Field{Name: "driver_uuid", Type: types.Varchar},
	)
	deref, err := Dereference(NewVariable("base", 0, rowType), "city_id")
	if err != nil {
		t.Fatal(err)
	}
	exprs := map[string]RowExpression{
		"ConstantExpression (1L, BIGINT)":   bigint(1),
		"ConstantExpression ('string')":     str("string"),
		"ConstantExpression (null)":         Null(),
		"VariableReferenceExpression":       NewVariable("columnA", 2, types.Bigint),
		"CallExpression arithmetic":         MustCall("add", bigint(1), bigint(2)),
		"CallExpression cast":               MustCall("to_double", bigint(1)),
		"CallExpression udf-style":          MustCall("concat", str("a"), str("b")),
		"SpecialFormExpression IN":          &SpecialForm{Form: FormIn, Args: []RowExpression{bigint(1), bigint(1), bigint(2)}, Ret: types.Boolean},
		"SpecialFormExpression IF":          &SpecialForm{Form: FormIf, Args: []RowExpression{boolean(true), str("y"), str("n")}, Ret: types.Varchar},
		"SpecialFormExpression IS_NULL":     &SpecialForm{Form: FormIsNull, Args: []RowExpression{Null()}, Ret: types.Boolean},
		"SpecialFormExpression AND":         And(boolean(true), boolean(false)),
		"SpecialFormExpression DEREFERENCE": deref,
		"LambdaDefinitionExpression x+y": &Lambda{
			Params:     []string{"x", "y"},
			ParamTypes: []*types.Type{types.Bigint, types.Bigint},
			Body:       MustCall("add", NewVariable("x", 0, types.Bigint), NewVariable("y", 1, types.Bigint)),
		},
	}
	for name, e := range exprs {
		data, err := Marshal(e)
		if err != nil {
			t.Errorf("%s: marshal: %v", name, err)
			continue
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Errorf("%s: unmarshal: %v", name, err)
			continue
		}
		if back.String() != e.String() {
			t.Errorf("%s: round trip changed rendering: %q vs %q", name, back.String(), e.String())
		}
		if !back.TypeOf().Equals(e.TypeOf()) {
			t.Errorf("%s: round trip changed type: %v vs %v", name, back.TypeOf(), e.TypeOf())
		}
		// Evaluate both sides where evaluable without inputs (lambdas and
		// variables need inputs; skip those).
		if _, isLambda := e.(*Lambda); isLambda {
			continue
		}
		if len(ReferencedChannels(e)) > 0 {
			continue
		}
		want, err1 := EvalRowValue(e, nil)
		got, err2 := EvalRowValue(back, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Errorf("%s: eval error mismatch: %v vs %v", name, err1, err2)
			continue
		}
		if err1 == nil && !reflect.DeepEqual(got, want) {
			t.Errorf("%s: deserialized eval = %v, original = %v", name, got, want)
		}
	}
}

func TestFunctionHandleIsSelfContained(t *testing.T) {
	// The serialized form must carry full function-resolution info.
	c := MustCall("add", bigint(1), dbl(2.0).asBigintForTest())
	_ = c
	call := MustCall("eq", str("a"), str("b"))
	data, err := Marshal(call)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"functionHandle"`, `"eq"`, `"varchar"`, `"boolean"`} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized call missing %s: %s", want, s)
		}
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.(*Call).Handle.Signature() != "eq(varchar, varchar):boolean" {
		t.Errorf("signature = %s", back.(*Call).Handle.Signature())
	}
}

// asBigintForTest is a throwaway helper to keep the above compile-simple.
func (c *Constant) asBigintForTest() *Constant { return bigint(2) }

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		``,
		`{}`,
		`{"@type":"nope"}`,
		`{"@type":"constant","type":"bad type!!","value":{"int":"1"}}`,
		`{"@type":"call","type":"bigint"}`,
		`{"@type":"lambda","params":["x"],"paramTypes":["bigint"],"args":[]}`,
	}
	for _, s := range bad {
		if _, err := Unmarshal([]byte(s)); err == nil {
			t.Errorf("Unmarshal(%q) unexpectedly succeeded", s)
		}
	}
}

func TestInt64PrecisionSurvivesJSON(t *testing.T) {
	big := int64(1) << 62
	e := bigint(big)
	data, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.(*Constant).Value != big {
		t.Errorf("int64 lost precision: %v", back.(*Constant).Value)
	}
}

// Property: random predicate trees survive serialization and evaluate
// identically on both sides.
func TestQuickSerializationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randomPredicate(r, 3)
		data, err := Marshal(e)
		if err != nil {
			t.Logf("marshal: %v", err)
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Logf("unmarshal: %v", err)
			return false
		}
		want, err1 := EvalRowValue(e, nil)
		got, err2 := EvalRowValue(back, nil)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		return err1 != nil || reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomPredicate builds a random constant-only boolean expression.
func randomPredicate(r *rand.Rand, depth int) RowExpression {
	if depth == 0 || r.Intn(3) == 0 {
		leaf := []RowExpression{
			MustCall("eq", bigint(r.Int63n(10)), bigint(r.Int63n(10))),
			MustCall("lt", dbl(r.Float64()), dbl(r.Float64())),
			MustCall("like", str("abc"), str("a%")),
			boolean(r.Intn(2) == 0),
			MustCall("gt", bigint(r.Int63n(5)), Null().asBigintNull()),
		}
		return leaf[r.Intn(len(leaf))]
	}
	switch r.Intn(3) {
	case 0:
		return And(randomPredicate(r, depth-1), randomPredicate(r, depth-1))
	case 1:
		return Or(randomPredicate(r, depth-1), randomPredicate(r, depth-1))
	default:
		return Not(randomPredicate(r, depth-1))
	}
}

// asBigintNull returns a NULL constant typed bigint so comparisons resolve.
func (c *Constant) asBigintNull() *Constant { return NewConstant(nil, types.Bigint) }
