// Package expr implements RowExpression, the self-contained expression
// representation the paper introduces for connector pushdown (§IV.B,
// Table I). Unlike an AST, a RowExpression carries full type information and
// a serializable FunctionHandle for every call, so an expression can be
// shipped to a connector (or another system) and evaluated there without
// re-resolution.
//
// The five subtypes of Table I are ConstantExpression,
// VariableReferenceExpression, CallExpression, SpecialFormExpression and
// LambdaDefinitionExpression.
package expr

import (
	"fmt"
	"strings"

	"prestolite/internal/types"
)

// RowExpression is a typed, self-contained expression node.
type RowExpression interface {
	// TypeOf returns the expression's result type.
	TypeOf() *types.Type
	// String renders a human-readable form (used by EXPLAIN).
	String() string
	isRowExpression()
}

// Constant is a literal value such as (1, BIGINT) or ('sf', VARCHAR).
// Values use the block boxing convention; nil is SQL NULL.
type Constant struct {
	Value any
	Type  *types.Type
}

func (c *Constant) TypeOf() *types.Type { return c.Type }
func (c *Constant) isRowExpression()    {}

func (c *Constant) String() string {
	if c.Value == nil {
		return "null"
	}
	if c.Type.Kind == types.KindVarchar {
		return fmt.Sprintf("'%v'", c.Value)
	}
	return fmt.Sprintf("%v", c.Value)
}

// Variable references an input channel of the operator's input page —
// "a reference to an input column / a field of the output from the previous
// relation expression" (Table I).
type Variable struct {
	Name    string
	Channel int
	Type    *types.Type
}

func (v *Variable) TypeOf() *types.Type { return v.Type }
func (v *Variable) isRowExpression()    {}
func (v *Variable) String() string      { return v.Name }

// FunctionHandle stores function-resolution information in the expression
// itself (§IV.B: "we resolve this by storing function resolution information
// in the expression representation itself as a serializable functionHandle").
type FunctionHandle struct {
	Name       string
	ArgTypes   []string // SQL type strings
	ReturnType string
}

// Signature renders name(argtypes):ret.
func (h FunctionHandle) Signature() string {
	return h.Name + "(" + strings.Join(h.ArgTypes, ", ") + "):" + h.ReturnType
}

// Call is a function invocation: arithmetic, casts, UDFs, geo functions.
type Call struct {
	Handle FunctionHandle
	Args   []RowExpression
	Ret    *types.Type
}

func (c *Call) TypeOf() *types.Type { return c.Ret }
func (c *Call) isRowExpression()    {}

func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	// render operators infix for readability
	if op, ok := infixNames[c.Handle.Name]; ok && len(args) == 2 {
		return "(" + args[0] + " " + op + " " + args[1] + ")"
	}
	return c.Handle.Name + "(" + strings.Join(args, ", ") + ")"
}

var infixNames = map[string]string{
	"add": "+", "subtract": "-", "multiply": "*", "divide": "/", "modulus": "%",
	"eq": "=", "neq": "<>", "lt": "<", "lte": "<=", "gt": ">", "gte": ">=",
	"like": "LIKE",
}

// Form enumerates the special built-in forms (Table I: IN, IF, IS_NULL, AND,
// DEREFERENCE, ...).
type Form string

const (
	FormAnd         Form = "AND"
	FormOr          Form = "OR"
	FormNot         Form = "NOT"
	FormIn          Form = "IN"
	FormIf          Form = "IF"
	FormIsNull      Form = "IS_NULL"
	FormCoalesce    Form = "COALESCE"
	FormDereference Form = "DEREFERENCE"
	FormBetween     Form = "BETWEEN"
)

// SpecialForm is a special built-in call with non-function semantics
// (short-circuiting, null handling, field access).
type SpecialForm struct {
	Form Form
	Args []RowExpression
	Ret  *types.Type
}

func (s *SpecialForm) TypeOf() *types.Type { return s.Ret }
func (s *SpecialForm) isRowExpression()    {}

func (s *SpecialForm) String() string {
	switch s.Form {
	case FormAnd, FormOr:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			parts[i] = a.String()
		}
		return "(" + strings.Join(parts, " "+string(s.Form)+" ") + ")"
	case FormNot:
		return "(NOT " + s.Args[0].String() + ")"
	case FormIsNull:
		return "(" + s.Args[0].String() + " IS NULL)"
	case FormDereference:
		return s.Args[0].String() + "." + s.Args[1].(*Constant).Value.(string)
	case FormIn:
		parts := make([]string, len(s.Args)-1)
		for i, a := range s.Args[1:] {
			parts[i] = a.String()
		}
		return "(" + s.Args[0].String() + " IN (" + strings.Join(parts, ", ") + "))"
	case FormBetween:
		return "(" + s.Args[0].String() + " BETWEEN " + s.Args[1].String() + " AND " + s.Args[2].String() + ")"
	default:
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			parts[i] = a.String()
		}
		return string(s.Form) + "(" + strings.Join(parts, ", ") + ")"
	}
}

// Lambda is an anonymous function definition, e.g.
// (x bigint, y bigint) -> x + y.
type Lambda struct {
	Params     []string
	ParamTypes []*types.Type
	Body       RowExpression
}

func (l *Lambda) TypeOf() *types.Type { return l.Body.TypeOf() }
func (l *Lambda) isRowExpression()    {}

func (l *Lambda) String() string {
	parts := make([]string, len(l.Params))
	for i, p := range l.Params {
		parts[i] = p + ":" + l.ParamTypes[i].String()
	}
	return "(" + strings.Join(parts, ", ") + ") -> " + l.Body.String()
}

// ---------------------------------------------------------------------------
// Construction helpers used throughout the planner.

// NewConstant builds a typed literal.
func NewConstant(v any, t *types.Type) *Constant { return &Constant{Value: v, Type: t} }

// Null is the NULL literal of unknown type.
func Null() *Constant { return &Constant{Value: nil, Type: types.Unknown} }

// NewVariable references input channel ch.
func NewVariable(name string, ch int, t *types.Type) *Variable {
	return &Variable{Name: name, Channel: ch, Type: t}
}

// NewCall resolves name against the global registry and builds a Call.
// It returns an error if no matching function exists.
func NewCall(name string, args ...RowExpression) (*Call, error) {
	argTypes := make([]*types.Type, len(args))
	for i, a := range args {
		argTypes[i] = a.TypeOf()
	}
	fn, err := Resolve(name, argTypes)
	if err != nil {
		return nil, err
	}
	ret := fn.ReturnType(argTypes)
	handle := FunctionHandle{Name: fn.Name, ReturnType: ret.String()}
	for _, at := range argTypes {
		handle.ArgTypes = append(handle.ArgTypes, at.String())
	}
	return &Call{Handle: handle, Args: args, Ret: ret}, nil
}

// MustCall is NewCall that panics; for tests and internal rewrites where the
// signature is known valid.
func MustCall(name string, args ...RowExpression) *Call {
	c, err := NewCall(name, args...)
	if err != nil {
		panic(err)
	}
	return c
}

// And builds a conjunction (flattening nested ANDs); returns true-constant
// for no args.
func And(args ...RowExpression) RowExpression {
	flat := make([]RowExpression, 0, len(args))
	for _, a := range args {
		if sf, ok := a.(*SpecialForm); ok && sf.Form == FormAnd {
			flat = append(flat, sf.Args...)
			continue
		}
		flat = append(flat, a)
	}
	switch len(flat) {
	case 0:
		return NewConstant(true, types.Boolean)
	case 1:
		return flat[0]
	}
	return &SpecialForm{Form: FormAnd, Args: flat, Ret: types.Boolean}
}

// Or builds a disjunction.
func Or(args ...RowExpression) RowExpression {
	switch len(args) {
	case 0:
		return NewConstant(false, types.Boolean)
	case 1:
		return args[0]
	}
	return &SpecialForm{Form: FormOr, Args: args, Ret: types.Boolean}
}

// Not negates a boolean expression.
func Not(arg RowExpression) RowExpression {
	return &SpecialForm{Form: FormNot, Args: []RowExpression{arg}, Ret: types.Boolean}
}

// Dereference accesses field (by name) of a ROW-typed expression.
func Dereference(base RowExpression, field string) (*SpecialForm, error) {
	bt := base.TypeOf()
	if bt.Kind != types.KindRow {
		return nil, fmt.Errorf("expr: cannot dereference %s from non-row type %s", field, bt)
	}
	idx := bt.FieldIndex(field)
	if idx < 0 {
		return nil, fmt.Errorf("expr: row type %s has no field %q", bt, field)
	}
	return &SpecialForm{
		Form: FormDereference,
		Args: []RowExpression{base, NewConstant(bt.Fields[idx].Name, types.Varchar)},
		Ret:  bt.Fields[idx].Type,
	}, nil
}

// Walk visits e and all descendants in pre-order; stop descending when fn
// returns false.
func Walk(e RowExpression, fn func(RowExpression) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch t := e.(type) {
	case *Call:
		for _, a := range t.Args {
			Walk(a, fn)
		}
	case *SpecialForm:
		for _, a := range t.Args {
			Walk(a, fn)
		}
	case *Lambda:
		Walk(t.Body, fn)
	}
}

// Rewrite applies fn bottom-up, returning a new tree. fn receives each node
// after its children were rewritten.
func Rewrite(e RowExpression, fn func(RowExpression) RowExpression) RowExpression {
	switch t := e.(type) {
	case *Call:
		args := make([]RowExpression, len(t.Args))
		for i, a := range t.Args {
			args[i] = Rewrite(a, fn)
		}
		return fn(&Call{Handle: t.Handle, Args: args, Ret: t.Ret})
	case *SpecialForm:
		args := make([]RowExpression, len(t.Args))
		for i, a := range t.Args {
			args[i] = Rewrite(a, fn)
		}
		return fn(&SpecialForm{Form: t.Form, Args: args, Ret: t.Ret})
	case *Lambda:
		return fn(&Lambda{Params: t.Params, ParamTypes: t.ParamTypes, Body: Rewrite(t.Body, fn)})
	default:
		return fn(e)
	}
}

// ReferencedChannels returns the sorted set of input channels e reads.
func ReferencedChannels(e RowExpression) []int {
	seen := map[int]bool{}
	Walk(e, func(x RowExpression) bool {
		if v, ok := x.(*Variable); ok {
			seen[v.Channel] = true
		}
		return true
	})
	out := make([]int, 0, len(seen))
	for ch := range seen {
		out = append(out, ch)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// RemapChannels returns a copy of e with each Variable channel mapped through
// m. Panics if a channel is missing from m (planner bug).
func RemapChannels(e RowExpression, m map[int]int) RowExpression {
	return Rewrite(e, func(x RowExpression) RowExpression {
		if v, ok := x.(*Variable); ok {
			nc, ok := m[v.Channel]
			if !ok {
				panic(fmt.Sprintf("expr: channel %d missing from remap", v.Channel))
			}
			return &Variable{Name: v.Name, Channel: nc, Type: v.Type}
		}
		return x
	})
}
