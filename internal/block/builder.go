package block

import (
	"fmt"

	"prestolite/internal/types"
)

// Builder accumulates values for one column and produces a Block.
type Builder interface {
	// Append adds a value boxed in the same convention as Block.Value;
	// nil appends SQL NULL.
	Append(v any)
	// AppendNull adds a NULL.
	AppendNull()
	// Len returns the number of appended positions.
	Len() int
	// Build finalizes the block. The builder must not be reused.
	Build() Block
}

// NewBuilder returns a Builder for the given type with capacity hint.
func NewBuilder(t *types.Type, capacity int) Builder {
	switch t.Kind {
	case types.KindBoolean:
		return &boolBuilder{values: make([]bool, 0, capacity)}
	case types.KindInteger, types.KindBigint, types.KindDate, types.KindUnknown:
		return &int64Builder{values: make([]int64, 0, capacity)}
	case types.KindDouble:
		return &float64Builder{values: make([]float64, 0, capacity)}
	case types.KindVarchar:
		return &varcharBuilder{values: make([]string, 0, capacity)}
	case types.KindArray:
		return &arrayBuilder{elem: NewBuilder(t.Elem, capacity), offsets: append(make([]int32, 0, capacity+1), 0)}
	case types.KindMap:
		return &mapBuilder{
			keys:    NewBuilder(t.Key, capacity),
			values:  NewBuilder(t.Value, capacity),
			offsets: append(make([]int32, 0, capacity+1), 0),
		}
	case types.KindRow:
		fields := make([]Builder, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = NewBuilder(f.Type, capacity)
		}
		return &rowBuilder{fields: fields}
	default:
		panic(fmt.Sprintf("block: no builder for type %v", t))
	}
}

type nullTracker struct {
	nulls   []bool
	anyNull bool
}

func (nt *nullTracker) mark(n int, isNull bool) {
	if isNull && !nt.anyNull {
		nt.anyNull = true
		nt.nulls = make([]bool, n)
	}
	if nt.anyNull {
		nt.nulls = append(nt.nulls, isNull)
	}
}

func (nt *nullTracker) build() []bool {
	if !nt.anyNull {
		return nil
	}
	return nt.nulls
}

type int64Builder struct {
	values []int64
	nt     nullTracker
}

func (b *int64Builder) Append(v any) {
	if v == nil {
		b.AppendNull()
		return
	}
	b.nt.mark(len(b.values), false)
	switch x := v.(type) {
	case int64:
		b.values = append(b.values, x)
	case int:
		b.values = append(b.values, int64(x))
	case int32:
		b.values = append(b.values, int64(x))
	default:
		panic(fmt.Sprintf("block: int64Builder got %T", v))
	}
}

func (b *int64Builder) AppendNull() {
	b.nt.mark(len(b.values), true)
	b.values = append(b.values, 0)
}

func (b *int64Builder) Len() int { return len(b.values) }

func (b *int64Builder) Build() Block {
	return &Int64Block{Values: b.values, Nulls: b.nt.build()}
}

type float64Builder struct {
	values []float64
	nt     nullTracker
}

func (b *float64Builder) Append(v any) {
	if v == nil {
		b.AppendNull()
		return
	}
	b.nt.mark(len(b.values), false)
	switch x := v.(type) {
	case float64:
		b.values = append(b.values, x)
	case int64:
		b.values = append(b.values, float64(x))
	case int:
		b.values = append(b.values, float64(x))
	default:
		panic(fmt.Sprintf("block: float64Builder got %T", v))
	}
}

func (b *float64Builder) AppendNull() {
	b.nt.mark(len(b.values), true)
	b.values = append(b.values, 0)
}

func (b *float64Builder) Len() int { return len(b.values) }

func (b *float64Builder) Build() Block {
	return &Float64Block{Values: b.values, Nulls: b.nt.build()}
}

type boolBuilder struct {
	values []bool
	nt     nullTracker
}

func (b *boolBuilder) Append(v any) {
	if v == nil {
		b.AppendNull()
		return
	}
	b.nt.mark(len(b.values), false)
	b.values = append(b.values, v.(bool))
}

func (b *boolBuilder) AppendNull() {
	b.nt.mark(len(b.values), true)
	b.values = append(b.values, false)
}

func (b *boolBuilder) Len() int { return len(b.values) }

func (b *boolBuilder) Build() Block {
	return &BoolBlock{Values: b.values, Nulls: b.nt.build()}
}

type varcharBuilder struct {
	values []string
	nt     nullTracker
}

func (b *varcharBuilder) Append(v any) {
	if v == nil {
		b.AppendNull()
		return
	}
	b.nt.mark(len(b.values), false)
	b.values = append(b.values, v.(string))
}

func (b *varcharBuilder) AppendNull() {
	b.nt.mark(len(b.values), true)
	b.values = append(b.values, "")
}

func (b *varcharBuilder) Len() int { return len(b.values) }

func (b *varcharBuilder) Build() Block {
	return &VarcharBlock{Values: b.values, Nulls: b.nt.build()}
}

type arrayBuilder struct {
	elem    Builder
	offsets []int32
	nt      nullTracker
	n       int
}

func (b *arrayBuilder) Append(v any) {
	if v == nil {
		b.AppendNull()
		return
	}
	items := v.([]any)
	for _, it := range items {
		b.elem.Append(it)
	}
	b.offsets = append(b.offsets, b.offsets[len(b.offsets)-1]+int32(len(items)))
	b.nt.mark(b.n, false)
	b.n++
}

func (b *arrayBuilder) AppendNull() {
	b.offsets = append(b.offsets, b.offsets[len(b.offsets)-1])
	b.nt.mark(b.n, true)
	b.n++
}

func (b *arrayBuilder) Len() int { return b.n }

func (b *arrayBuilder) Build() Block {
	return &ArrayBlock{Elements: b.elem.Build(), Offsets: b.offsets, Nulls: b.nt.build()}
}

type mapBuilder struct {
	keys    Builder
	values  Builder
	offsets []int32
	nt      nullTracker
	n       int
}

func (b *mapBuilder) Append(v any) {
	if v == nil {
		b.AppendNull()
		return
	}
	entries := v.([][2]any)
	for _, e := range entries {
		b.keys.Append(e[0])
		b.values.Append(e[1])
	}
	b.offsets = append(b.offsets, b.offsets[len(b.offsets)-1]+int32(len(entries)))
	b.nt.mark(b.n, false)
	b.n++
}

func (b *mapBuilder) AppendNull() {
	b.offsets = append(b.offsets, b.offsets[len(b.offsets)-1])
	b.nt.mark(b.n, true)
	b.n++
}

func (b *mapBuilder) Len() int { return b.n }

func (b *mapBuilder) Build() Block {
	return &MapBlock{Keys: b.keys.Build(), Values: b.values.Build(), Offsets: b.offsets, Nulls: b.nt.build()}
}

type rowBuilder struct {
	fields []Builder
	nt     nullTracker
	n      int
}

func (b *rowBuilder) Append(v any) {
	if v == nil {
		b.AppendNull()
		return
	}
	vals := v.([]any)
	if len(vals) != len(b.fields) {
		panic(fmt.Sprintf("block: rowBuilder got %d values for %d fields", len(vals), len(b.fields)))
	}
	for i, fv := range vals {
		b.fields[i].Append(fv)
	}
	b.nt.mark(b.n, false)
	b.n++
}

func (b *rowBuilder) AppendNull() {
	for _, f := range b.fields {
		f.AppendNull()
	}
	b.nt.mark(b.n, true)
	b.n++
}

func (b *rowBuilder) Len() int { return b.n }

func (b *rowBuilder) Build() Block {
	fields := make([]Block, len(b.fields))
	for i, f := range b.fields {
		fields[i] = f.Build()
	}
	return &RowBlock{Fields: fields, Nulls: b.nt.build(), N: b.n}
}

// PageBuilder accumulates rows across a fixed set of typed channels. It
// tracks the row count independently so zero-channel pages (count(*) scans)
// keep their cardinality.
type PageBuilder struct {
	builders []Builder
	typesOf  []*types.Type
	rows     int
}

// NewPageBuilder creates a builder for the given channel types.
func NewPageBuilder(channelTypes []*types.Type) *PageBuilder {
	pb := &PageBuilder{typesOf: channelTypes}
	pb.reset()
	return pb
}

func (pb *PageBuilder) reset() {
	pb.builders = make([]Builder, len(pb.typesOf))
	for i, t := range pb.typesOf {
		pb.builders[i] = NewBuilder(t, 64)
	}
}

// AppendRow appends one boxed value per channel.
func (pb *PageBuilder) AppendRow(row []any) {
	if len(row) != len(pb.builders) {
		panic(fmt.Sprintf("block: AppendRow got %d values for %d channels", len(row), len(pb.builders)))
	}
	for i, v := range row {
		pb.builders[i].Append(v)
	}
	pb.rows++
}

// Channel returns the builder for channel i for column-wise appends.
func (pb *PageBuilder) Channel(i int) Builder { return pb.builders[i] }

// Len returns the number of buffered rows.
func (pb *PageBuilder) Len() int { return pb.rows }

// Build produces the page and resets the builder for reuse.
func (pb *PageBuilder) Build() *Page {
	blocks := make([]Block, len(pb.builders))
	for i, b := range pb.builders {
		blocks[i] = b.Build()
	}
	page := &Page{Blocks: blocks, N: pb.rows}
	for _, b := range blocks {
		if b.Count() != pb.rows {
			//lint:ignore hotalloc only evaluated on the panic path of a broken invariant
			panic(fmt.Sprintf("block: page builder channel has %d rows, want %d", b.Count(), pb.rows))
		}
	}
	pb.rows = 0
	pb.reset()
	return page
}

// FromValues builds a single-column block of type t from boxed values.
func FromValues(t *types.Type, values ...any) Block {
	b := NewBuilder(t, len(values))
	for _, v := range values {
		b.Append(v)
	}
	return b.Build()
}

// SingleValue builds a one-position block holding v.
func SingleValue(t *types.Type, v any) Block { return FromValues(t, v) }
