// Package block implements the engine's columnar in-memory data
// representation. A Page is a batch of rows stored as one Block per column;
// operators process whole Blocks at a time (vectorized execution, §III of the
// paper) instead of row by row.
//
// Block kinds mirror Presto's: flat primitive blocks, nested array/map/row
// blocks, plus the encoded blocks the Parquet reader work relies on:
// DictionaryBlock (dictionary pushdown), RunLengthBlock (constants) and
// LazyBlock (lazy reads — §V.H).
package block

import (
	"fmt"
	"strings"
)

// Block is an immutable column of values. Implementations must be safe for
// concurrent reads.
type Block interface {
	// Count returns the number of positions (rows) in the block.
	Count() int
	// IsNull reports whether position i is SQL NULL.
	IsNull(i int) bool
	// Value returns the value at position i boxed as:
	// int64, float64, bool, string, []any (array), [][2]any (map entries,
	// key/value pairs in insertion order), []any (row fields), or nil.
	Value(i int) any
	// Region returns a view of length rows starting at offset. Views share
	// storage with the parent block.
	Region(offset, length int) Block
	// Mask returns a new block containing only the given positions, in order.
	Mask(positions []int) Block
	// SizeBytes is an estimate of retained memory, used for memory accounting.
	SizeBytes() int
}

// Loadable is implemented by LazyBlock; Load forces materialization.
type Loadable interface {
	Load() Block
}

// Unwrap forces lazy blocks and returns a fully materialized block.
func Unwrap(b Block) Block {
	for {
		l, ok := b.(Loadable)
		if !ok {
			return b
		}
		b = l.Load()
	}
}

func checkRegion(count, offset, length int) {
	if offset < 0 || length < 0 || offset+length > count {
		panic(fmt.Sprintf("block: region [%d, %d) out of bounds of %d", offset, offset+length, count))
	}
}

// ---------------------------------------------------------------------------
// Int64Block: BIGINT, INTEGER and DATE columns.

// Int64Block stores 64-bit integers with an optional null mask.
type Int64Block struct {
	Values []int64
	Nulls  []bool // nil means no nulls
}

// NewInt64Block wraps values (no nulls).
func NewInt64Block(values []int64) *Int64Block { return &Int64Block{Values: values} }

func (b *Int64Block) Count() int { return len(b.Values) }

func (b *Int64Block) IsNull(i int) bool { return b.Nulls != nil && b.Nulls[i] }

func (b *Int64Block) Value(i int) any {
	if b.IsNull(i) {
		return nil
	}
	return b.Values[i]
}

func (b *Int64Block) Region(offset, length int) Block {
	checkRegion(len(b.Values), offset, length)
	r := &Int64Block{Values: b.Values[offset : offset+length]}
	if b.Nulls != nil {
		r.Nulls = b.Nulls[offset : offset+length]
	}
	return r
}

func (b *Int64Block) Mask(positions []int) Block {
	vals := make([]int64, len(positions))
	var nulls []bool
	for out, p := range positions {
		if b.IsNull(p) {
			if nulls == nil {
				nulls = make([]bool, len(positions))
			}
			nulls[out] = true
			continue
		}
		vals[out] = b.Values[p]
	}
	return &Int64Block{Values: vals, Nulls: nulls}
}

func (b *Int64Block) SizeBytes() int { return 8*len(b.Values) + len(b.Nulls) }

// ---------------------------------------------------------------------------
// Float64Block: DOUBLE columns.

// Float64Block stores float64 values with an optional null mask.
type Float64Block struct {
	Values []float64
	Nulls  []bool
}

// NewFloat64Block wraps values (no nulls).
func NewFloat64Block(values []float64) *Float64Block { return &Float64Block{Values: values} }

func (b *Float64Block) Count() int        { return len(b.Values) }
func (b *Float64Block) IsNull(i int) bool { return b.Nulls != nil && b.Nulls[i] }

func (b *Float64Block) Value(i int) any {
	if b.IsNull(i) {
		return nil
	}
	return b.Values[i]
}

func (b *Float64Block) Region(offset, length int) Block {
	checkRegion(len(b.Values), offset, length)
	r := &Float64Block{Values: b.Values[offset : offset+length]}
	if b.Nulls != nil {
		r.Nulls = b.Nulls[offset : offset+length]
	}
	return r
}

func (b *Float64Block) Mask(positions []int) Block {
	vals := make([]float64, len(positions))
	var nulls []bool
	for out, p := range positions {
		if b.IsNull(p) {
			if nulls == nil {
				nulls = make([]bool, len(positions))
			}
			nulls[out] = true
			continue
		}
		vals[out] = b.Values[p]
	}
	return &Float64Block{Values: vals, Nulls: nulls}
}

func (b *Float64Block) SizeBytes() int { return 8*len(b.Values) + len(b.Nulls) }

// ---------------------------------------------------------------------------
// BoolBlock: BOOLEAN columns.

// BoolBlock stores booleans with an optional null mask.
type BoolBlock struct {
	Values []bool
	Nulls  []bool
}

// NewBoolBlock wraps values (no nulls).
func NewBoolBlock(values []bool) *BoolBlock { return &BoolBlock{Values: values} }

func (b *BoolBlock) Count() int        { return len(b.Values) }
func (b *BoolBlock) IsNull(i int) bool { return b.Nulls != nil && b.Nulls[i] }

func (b *BoolBlock) Value(i int) any {
	if b.IsNull(i) {
		return nil
	}
	return b.Values[i]
}

func (b *BoolBlock) Region(offset, length int) Block {
	checkRegion(len(b.Values), offset, length)
	r := &BoolBlock{Values: b.Values[offset : offset+length]}
	if b.Nulls != nil {
		r.Nulls = b.Nulls[offset : offset+length]
	}
	return r
}

func (b *BoolBlock) Mask(positions []int) Block {
	vals := make([]bool, len(positions))
	var nulls []bool
	for out, p := range positions {
		if b.IsNull(p) {
			if nulls == nil {
				nulls = make([]bool, len(positions))
			}
			nulls[out] = true
			continue
		}
		vals[out] = b.Values[p]
	}
	return &BoolBlock{Values: vals, Nulls: nulls}
}

func (b *BoolBlock) SizeBytes() int { return len(b.Values) + len(b.Nulls) }

// ---------------------------------------------------------------------------
// VarcharBlock: VARCHAR columns.

// VarcharBlock stores strings with an optional null mask.
type VarcharBlock struct {
	Values []string
	Nulls  []bool
}

// NewVarcharBlock wraps values (no nulls).
func NewVarcharBlock(values []string) *VarcharBlock { return &VarcharBlock{Values: values} }

func (b *VarcharBlock) Count() int        { return len(b.Values) }
func (b *VarcharBlock) IsNull(i int) bool { return b.Nulls != nil && b.Nulls[i] }

func (b *VarcharBlock) Value(i int) any {
	if b.IsNull(i) {
		return nil
	}
	return b.Values[i]
}

func (b *VarcharBlock) Region(offset, length int) Block {
	checkRegion(len(b.Values), offset, length)
	r := &VarcharBlock{Values: b.Values[offset : offset+length]}
	if b.Nulls != nil {
		r.Nulls = b.Nulls[offset : offset+length]
	}
	return r
}

func (b *VarcharBlock) Mask(positions []int) Block {
	vals := make([]string, len(positions))
	var nulls []bool
	for out, p := range positions {
		if b.IsNull(p) {
			if nulls == nil {
				nulls = make([]bool, len(positions))
			}
			nulls[out] = true
			continue
		}
		vals[out] = b.Values[p]
	}
	return &VarcharBlock{Values: vals, Nulls: nulls}
}

func (b *VarcharBlock) SizeBytes() int {
	n := len(b.Nulls) + 16*len(b.Values)
	for _, s := range b.Values {
		n += len(s)
	}
	return n
}

// ---------------------------------------------------------------------------
// ArrayBlock: ARRAY columns.

// ArrayBlock stores arrays as a flattened Elements block plus per-row offsets.
// Row i holds Elements[Offsets[i]:Offsets[i+1]].
type ArrayBlock struct {
	Elements Block
	Offsets  []int32 // length Count()+1
	Nulls    []bool
}

func (b *ArrayBlock) Count() int        { return len(b.Offsets) - 1 }
func (b *ArrayBlock) IsNull(i int) bool { return b.Nulls != nil && b.Nulls[i] }

func (b *ArrayBlock) Value(i int) any {
	if b.IsNull(i) {
		return nil
	}
	start, end := int(b.Offsets[i]), int(b.Offsets[i+1])
	out := make([]any, 0, end-start)
	for j := start; j < end; j++ {
		out = append(out, b.Elements.Value(j))
	}
	return out
}

func (b *ArrayBlock) Region(offset, length int) Block {
	checkRegion(b.Count(), offset, length)
	// Keep the shared elements block; only re-slice the offsets.
	offs := make([]int32, length+1)
	copy(offs, b.Offsets[offset:offset+length+1])
	r := &ArrayBlock{Elements: b.Elements, Offsets: offs}
	if b.Nulls != nil {
		r.Nulls = b.Nulls[offset : offset+length]
	}
	return r
}

func (b *ArrayBlock) Mask(positions []int) Block {
	var elemPos []int
	offs := make([]int32, 1, len(positions)+1)
	var nulls []bool
	for out, p := range positions {
		if b.IsNull(p) {
			if nulls == nil {
				nulls = make([]bool, len(positions))
			}
			nulls[out] = true
			offs = append(offs, offs[len(offs)-1])
			continue
		}
		start, end := int(b.Offsets[p]), int(b.Offsets[p+1])
		for j := start; j < end; j++ {
			elemPos = append(elemPos, j)
		}
		offs = append(offs, offs[len(offs)-1]+int32(end-start))
	}
	return &ArrayBlock{Elements: b.Elements.Mask(elemPos), Offsets: offs, Nulls: nulls}
}

func (b *ArrayBlock) SizeBytes() int { return b.Elements.SizeBytes() + 4*len(b.Offsets) + len(b.Nulls) }

// ---------------------------------------------------------------------------
// MapBlock: MAP columns.

// MapBlock stores maps as parallel flattened Keys/Values blocks plus offsets.
type MapBlock struct {
	Keys    Block
	Values  Block
	Offsets []int32 // length Count()+1
	Nulls   []bool
}

func (b *MapBlock) Count() int        { return len(b.Offsets) - 1 }
func (b *MapBlock) IsNull(i int) bool { return b.Nulls != nil && b.Nulls[i] }

func (b *MapBlock) Value(i int) any {
	if b.IsNull(i) {
		return nil
	}
	start, end := int(b.Offsets[i]), int(b.Offsets[i+1])
	out := make([][2]any, 0, end-start)
	for j := start; j < end; j++ {
		out = append(out, [2]any{b.Keys.Value(j), b.Values.Value(j)})
	}
	return out
}

func (b *MapBlock) Region(offset, length int) Block {
	checkRegion(b.Count(), offset, length)
	offs := make([]int32, length+1)
	copy(offs, b.Offsets[offset:offset+length+1])
	r := &MapBlock{Keys: b.Keys, Values: b.Values, Offsets: offs}
	if b.Nulls != nil {
		r.Nulls = b.Nulls[offset : offset+length]
	}
	return r
}

func (b *MapBlock) Mask(positions []int) Block {
	var entryPos []int
	offs := make([]int32, 1, len(positions)+1)
	var nulls []bool
	for out, p := range positions {
		if b.IsNull(p) {
			if nulls == nil {
				nulls = make([]bool, len(positions))
			}
			nulls[out] = true
			offs = append(offs, offs[len(offs)-1])
			continue
		}
		start, end := int(b.Offsets[p]), int(b.Offsets[p+1])
		for j := start; j < end; j++ {
			entryPos = append(entryPos, j)
		}
		offs = append(offs, offs[len(offs)-1]+int32(end-start))
	}
	return &MapBlock{Keys: b.Keys.Mask(entryPos), Values: b.Values.Mask(entryPos), Offsets: offs, Nulls: nulls}
}

func (b *MapBlock) SizeBytes() int {
	return b.Keys.SizeBytes() + b.Values.SizeBytes() + 4*len(b.Offsets) + len(b.Nulls)
}

// ---------------------------------------------------------------------------
// RowBlock: ROW (nested struct) columns.

// RowBlock stores a struct column as one child block per field. All children
// have the same Count as the RowBlock. A null struct has null children at the
// same position (children may hold arbitrary values there).
type RowBlock struct {
	Fields []Block
	Nulls  []bool
	N      int
}

// NewRowBlock builds a row block over field children.
func NewRowBlock(n int, fields []Block, nulls []bool) *RowBlock {
	for _, f := range fields {
		if f.Count() != n {
			//lint:ignore hotalloc only evaluated on the panic path of a broken invariant
			panic(fmt.Sprintf("block: row field count %d != %d", f.Count(), n))
		}
	}
	return &RowBlock{Fields: fields, Nulls: nulls, N: n}
}

func (b *RowBlock) Count() int        { return b.N }
func (b *RowBlock) IsNull(i int) bool { return b.Nulls != nil && b.Nulls[i] }

func (b *RowBlock) Value(i int) any {
	if b.IsNull(i) {
		return nil
	}
	out := make([]any, len(b.Fields))
	for f, fb := range b.Fields {
		out[f] = fb.Value(i)
	}
	return out
}

func (b *RowBlock) Region(offset, length int) Block {
	checkRegion(b.N, offset, length)
	fields := make([]Block, len(b.Fields))
	for i, f := range b.Fields {
		fields[i] = f.Region(offset, length)
	}
	r := &RowBlock{Fields: fields, N: length}
	if b.Nulls != nil {
		r.Nulls = b.Nulls[offset : offset+length]
	}
	return r
}

func (b *RowBlock) Mask(positions []int) Block {
	fields := make([]Block, len(b.Fields))
	for i, f := range b.Fields {
		fields[i] = f.Mask(positions)
	}
	var nulls []bool
	if b.Nulls != nil {
		nulls = make([]bool, len(positions))
		for out, p := range positions {
			nulls[out] = b.Nulls[p]
		}
	}
	return &RowBlock{Fields: fields, Nulls: nulls, N: len(positions)}
}

func (b *RowBlock) SizeBytes() int {
	n := len(b.Nulls)
	for _, f := range b.Fields {
		n += f.SizeBytes()
	}
	return n
}

// ---------------------------------------------------------------------------
// DictionaryBlock: dictionary-encoded column.

// DictionaryBlock maps positions through Ids into a (usually small)
// Dictionary block. Produced by the new Parquet reader for dictionary-encoded
// chunks so downstream predicate evaluation touches each distinct value once.
type DictionaryBlock struct {
	Dictionary Block
	Ids        []int32 // -1 marks null
}

func (b *DictionaryBlock) Count() int { return len(b.Ids) }
func (b *DictionaryBlock) IsNull(i int) bool {
	return b.Ids[i] < 0 || b.Dictionary.IsNull(int(b.Ids[i]))
}

func (b *DictionaryBlock) Value(i int) any {
	if b.Ids[i] < 0 {
		return nil
	}
	return b.Dictionary.Value(int(b.Ids[i]))
}

func (b *DictionaryBlock) Region(offset, length int) Block {
	checkRegion(len(b.Ids), offset, length)
	return &DictionaryBlock{Dictionary: b.Dictionary, Ids: b.Ids[offset : offset+length]}
}

func (b *DictionaryBlock) Mask(positions []int) Block {
	ids := make([]int32, len(positions))
	for out, p := range positions {
		ids[out] = b.Ids[p]
	}
	return &DictionaryBlock{Dictionary: b.Dictionary, Ids: ids}
}

func (b *DictionaryBlock) SizeBytes() int { return b.Dictionary.SizeBytes() + 4*len(b.Ids) }

// Decode flattens the dictionary encoding into a plain block.
func (b *DictionaryBlock) Decode() Block {
	pos := make([]int, len(b.Ids))
	nullAt := -1
	var nullPads []int
	for i, id := range b.Ids {
		if id < 0 {
			// remember positions that need explicit nulls
			nullPads = append(nullPads, i)
			pos[i] = 0
			continue
		}
		pos[i] = int(id)
	}
	if len(nullPads) == 0 {
		return b.Dictionary.Mask(pos)
	}
	_ = nullAt
	flat := b.Dictionary.Mask(pos)
	return withNulls(flat, nullPads)
}

// withNulls returns a copy of b with the given positions forced to null.
func withNulls(b Block, positions []int) Block {
	n := b.Count()
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		nulls[i] = b.IsNull(i)
	}
	for _, p := range positions {
		nulls[p] = true
	}
	switch t := b.(type) {
	case *Int64Block:
		return &Int64Block{Values: t.Values, Nulls: nulls}
	case *Float64Block:
		return &Float64Block{Values: t.Values, Nulls: nulls}
	case *BoolBlock:
		return &BoolBlock{Values: t.Values, Nulls: nulls}
	case *VarcharBlock:
		return &VarcharBlock{Values: t.Values, Nulls: nulls}
	case *ArrayBlock:
		return &ArrayBlock{Elements: t.Elements, Offsets: t.Offsets, Nulls: nulls}
	case *MapBlock:
		return &MapBlock{Keys: t.Keys, Values: t.Values, Offsets: t.Offsets, Nulls: nulls}
	case *RowBlock:
		return &RowBlock{Fields: t.Fields, Nulls: nulls, N: t.N}
	default:
		panic(fmt.Sprintf("block: withNulls unsupported %T", b))
	}
}

// ---------------------------------------------------------------------------
// RunLengthBlock: a single value repeated.

// RunLengthBlock represents one value repeated N times — used for constants
// and partition key columns.
type RunLengthBlock struct {
	Single Block // exactly one position
	N      int
}

// NewRunLengthBlock repeats the first position of single n times.
func NewRunLengthBlock(single Block, n int) *RunLengthBlock {
	if single.Count() != 1 {
		panic("block: RunLengthBlock needs a single-position block")
	}
	return &RunLengthBlock{Single: single, N: n}
}

func (b *RunLengthBlock) Count() int        { return b.N }
func (b *RunLengthBlock) IsNull(i int) bool { return b.Single.IsNull(0) }
func (b *RunLengthBlock) Value(i int) any   { return b.Single.Value(0) }

func (b *RunLengthBlock) Region(offset, length int) Block {
	checkRegion(b.N, offset, length)
	return &RunLengthBlock{Single: b.Single, N: length}
}

func (b *RunLengthBlock) Mask(positions []int) Block {
	return &RunLengthBlock{Single: b.Single, N: len(positions)}
}

func (b *RunLengthBlock) SizeBytes() int { return b.Single.SizeBytes() + 8 }

// ---------------------------------------------------------------------------
// LazyBlock: deferred column materialization (lazy reads, §V.H).

// LazyBlock defers reading a column until it is actually accessed. The new
// Parquet reader wraps projected columns in LazyBlocks so rows filtered out
// by the predicate never pay the decode cost.
type LazyBlock struct {
	N      int
	Loader func() Block
	loaded Block
}

// NewLazyBlock builds a lazy block of n rows materialized by loader on first
// access. Loader must return a block with exactly n rows.
func NewLazyBlock(n int, loader func() Block) *LazyBlock {
	return &LazyBlock{N: n, Loader: loader}
}

// Load materializes the block (idempotent, not safe for concurrent first use).
func (b *LazyBlock) Load() Block {
	if b.loaded == nil {
		b.loaded = Unwrap(b.Loader())
		if b.loaded.Count() != b.N {
			panic(fmt.Sprintf("block: lazy loader returned %d rows, want %d", b.loaded.Count(), b.N))
		}
	}
	return b.loaded
}

// Loaded reports whether the block has been materialized yet.
func (b *LazyBlock) Loaded() bool { return b.loaded != nil }

func (b *LazyBlock) Count() int        { return b.N }
func (b *LazyBlock) IsNull(i int) bool { return b.Load().IsNull(i) }
func (b *LazyBlock) Value(i int) any   { return b.Load().Value(i) }

func (b *LazyBlock) Region(offset, length int) Block {
	checkRegion(b.N, offset, length)
	return NewLazyBlock(length, func() Block { return b.Load().Region(offset, length) })
}

func (b *LazyBlock) Mask(positions []int) Block {
	pos := append([]int(nil), positions...)
	return NewLazyBlock(len(pos), func() Block { return b.Load().Mask(pos) })
}

func (b *LazyBlock) SizeBytes() int {
	if b.loaded != nil {
		return b.loaded.SizeBytes()
	}
	return 16
}

// ---------------------------------------------------------------------------
// Page

// Page is a batch of rows: one block per output channel, all the same length.
type Page struct {
	Blocks []Block
	N      int
}

// NewPage builds a page, validating that all blocks agree on row count.
func NewPage(blocks ...Block) *Page {
	n := 0
	if len(blocks) > 0 {
		n = blocks[0].Count()
	}
	for _, b := range blocks {
		if b.Count() != n {
			//lint:ignore hotalloc only evaluated on the panic path of a broken invariant
			panic(fmt.Sprintf("block: page block counts differ: %d vs %d", b.Count(), n))
		}
	}
	return &Page{Blocks: blocks, N: n}
}

// EmptyPage returns a zero-row page with the given channel count.
func EmptyPage(channels int) *Page {
	blocks := make([]Block, channels)
	for i := range blocks {
		blocks[i] = &Int64Block{}
	}
	return &Page{Blocks: blocks}
}

// Count returns the number of rows.
func (p *Page) Count() int { return p.N }

// Region returns a view of rows [offset, offset+length).
func (p *Page) Region(offset, length int) *Page {
	blocks := make([]Block, len(p.Blocks))
	for i, b := range p.Blocks {
		blocks[i] = b.Region(offset, length)
	}
	return &Page{Blocks: blocks, N: length}
}

// Mask keeps only the given positions in all channels.
func (p *Page) Mask(positions []int) *Page {
	blocks := make([]Block, len(p.Blocks))
	for i, b := range p.Blocks {
		blocks[i] = b.Mask(positions)
	}
	return &Page{Blocks: blocks, N: len(positions)}
}

// SizeBytes estimates retained memory across all channels.
func (p *Page) SizeBytes() int {
	n := 0
	for _, b := range p.Blocks {
		n += b.SizeBytes()
	}
	return n
}

// Row returns row i boxed as []any, forcing lazy columns.
func (p *Page) Row(i int) []any {
	out := make([]any, len(p.Blocks))
	for c, b := range p.Blocks {
		out[c] = b.Value(i)
	}
	return out
}

// String renders a compact debug representation.
func (p *Page) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Page[%d rows x %d cols]", p.N, len(p.Blocks))
	return sb.String()
}
