package block

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prestolite/internal/types"
)

// randomValue generates a boxed value of type t.
func randomValue(r *rand.Rand, t *types.Type, depth int) any {
	if r.Intn(6) == 0 {
		return nil
	}
	switch t.Kind {
	case types.KindBoolean:
		return r.Intn(2) == 0
	case types.KindInteger, types.KindBigint, types.KindDate:
		return r.Int63n(1 << 40)
	case types.KindDouble:
		return r.NormFloat64()
	case types.KindVarchar:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	case types.KindArray:
		n := r.Intn(4)
		out := make([]any, n)
		for i := range out {
			out[i] = randomValue(r, t.Elem, depth-1)
		}
		return out
	case types.KindMap:
		n := r.Intn(3)
		out := make([][2]any, n)
		for i := range out {
			k := randomValue(r, t.Key, depth-1)
			if k == nil {
				k = randomNonNull(r, t.Key)
			}
			out[i] = [2]any{k, randomValue(r, t.Value, depth-1)}
		}
		return out
	case types.KindRow:
		out := make([]any, len(t.Fields))
		for i, f := range t.Fields {
			out[i] = randomValue(r, f.Type, depth-1)
		}
		return out
	}
	return nil
}

func randomNonNull(r *rand.Rand, t *types.Type) any {
	for {
		if v := randomValue(r, t, 1); v != nil {
			return v
		}
	}
}

var quickTypes = []*types.Type{
	types.Bigint,
	types.Double,
	types.Boolean,
	types.Varchar,
	types.NewArray(types.Bigint),
	types.NewArray(types.NewArray(types.Varchar)),
	types.NewMap(types.Varchar, types.Double),
	types.NewRow(
		types.Field{Name: "a", Type: types.Bigint},
		types.Field{Name: "b", Type: types.NewArray(types.Varchar)},
		types.Field{Name: "c", Type: types.NewRow(types.Field{Name: "x", Type: types.Double})},
	),
}

// Property: building a block from values and reading them back is identity.
func TestQuickBuilderRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		typ := quickTypes[int(n)%len(quickTypes)]
		count := r.Intn(50) + 1
		vals := make([]any, count)
		for i := range vals {
			vals[i] = randomValue(r, typ, 3)
		}
		blk := FromValues(typ, vals...)
		if blk.Count() != count {
			return false
		}
		for i, want := range vals {
			got := blk.Value(i)
			if !reflect.DeepEqual(normalize(got), normalize(want)) {
				t.Logf("type %v pos %d: got %#v want %#v", typ, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Mask then Value equals picking the original values.
func TestQuickMaskConsistent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		typ := quickTypes[int(n)%len(quickTypes)]
		count := r.Intn(40) + 1
		vals := make([]any, count)
		for i := range vals {
			vals[i] = randomValue(r, typ, 2)
		}
		blk := FromValues(typ, vals...)
		perm := r.Perm(count)[:r.Intn(count)+1]
		masked := blk.Mask(perm)
		for out, p := range perm {
			if !reflect.DeepEqual(normalize(masked.Value(out)), normalize(vals[p])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Region is a consistent window.
func TestQuickRegionConsistent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		typ := quickTypes[int(n)%len(quickTypes)]
		count := r.Intn(40) + 2
		vals := make([]any, count)
		for i := range vals {
			vals[i] = randomValue(r, typ, 2)
		}
		blk := FromValues(typ, vals...)
		off := r.Intn(count)
		length := r.Intn(count - off)
		reg := blk.Region(off, length)
		for i := 0; i < length; i++ {
			if !reflect.DeepEqual(normalize(reg.Value(i)), normalize(vals[off+i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: pages survive the wire codec.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		count := r.Intn(30) + 1
		cols := r.Intn(3) + 1
		blocks := make([]Block, cols)
		for c := range blocks {
			typ := quickTypes[r.Intn(len(quickTypes))]
			vals := make([]any, count)
			for i := range vals {
				vals[i] = randomValue(r, typ, 2)
			}
			blocks[c] = FromValues(typ, vals...)
		}
		p := NewPage(blocks...)
		data, err := EncodePage(p)
		if err != nil {
			return false
		}
		got, err := DecodePage(data)
		if err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			if !reflect.DeepEqual(normalize(got.Row(i)), normalize(p.Row(i))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// normalize maps empty slices to nil-insensitive forms so DeepEqual compares
// [] and nil-backed empties consistently.
func normalize(v any) any {
	switch x := v.(type) {
	case []any:
		if len(x) == 0 {
			return []any{}
		}
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalize(e)
		}
		return out
	case [][2]any:
		if len(x) == 0 {
			return [][2]any{}
		}
		out := make([][2]any, len(x))
		for i, e := range x {
			out[i] = [2]any{normalize(e[0]), normalize(e[1])}
		}
		return out
	default:
		return v
	}
}
