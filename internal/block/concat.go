package block

import "fmt"

// Materializer is implemented by engine-internal view blocks (e.g. the sort
// operator's indirection blocks) that must convert to concrete blocks before
// crossing a process boundary.
type Materializer interface {
	Materialize() Block
}

// Concat combines same-kind blocks into one. Inputs are flattened first;
// mixed kinds are an error (panic: indicates an engine bug, not user input).
func Concat(blocks []Block) Block {
	if len(blocks) == 0 {
		return &Int64Block{}
	}
	flat := make([]Block, len(blocks))
	for i, b := range blocks {
		flat[i] = flatten(b)
	}
	switch flat[0].(type) {
	case *Int64Block:
		var vals []int64
		var nulls []bool
		anyNull := false
		for _, b := range flat {
			t := b.(*Int64Block)
			vals = append(vals, t.Values...)
			anyNull = anyNull || t.Nulls != nil
		}
		if anyNull {
			nulls = make([]bool, 0, len(vals))
			for _, b := range flat {
				t := b.(*Int64Block)
				if t.Nulls != nil {
					nulls = append(nulls, t.Nulls...)
				} else {
					nulls = append(nulls, make([]bool, len(t.Values))...)
				}
			}
		}
		return &Int64Block{Values: vals, Nulls: nulls}
	case *Float64Block:
		var vals []float64
		var nulls []bool
		anyNull := false
		for _, b := range flat {
			t := b.(*Float64Block)
			vals = append(vals, t.Values...)
			anyNull = anyNull || t.Nulls != nil
		}
		if anyNull {
			for _, b := range flat {
				t := b.(*Float64Block)
				if t.Nulls != nil {
					nulls = append(nulls, t.Nulls...)
				} else {
					nulls = append(nulls, make([]bool, len(t.Values))...)
				}
			}
		}
		return &Float64Block{Values: vals, Nulls: nulls}
	case *BoolBlock:
		var vals []bool
		var nulls []bool
		anyNull := false
		for _, b := range flat {
			t := b.(*BoolBlock)
			vals = append(vals, t.Values...)
			anyNull = anyNull || t.Nulls != nil
		}
		if anyNull {
			for _, b := range flat {
				t := b.(*BoolBlock)
				if t.Nulls != nil {
					nulls = append(nulls, t.Nulls...)
				} else {
					nulls = append(nulls, make([]bool, len(t.Values))...)
				}
			}
		}
		return &BoolBlock{Values: vals, Nulls: nulls}
	case *VarcharBlock:
		var vals []string
		var nulls []bool
		anyNull := false
		for _, b := range flat {
			t := b.(*VarcharBlock)
			vals = append(vals, t.Values...)
			anyNull = anyNull || t.Nulls != nil
		}
		if anyNull {
			for _, b := range flat {
				t := b.(*VarcharBlock)
				if t.Nulls != nil {
					nulls = append(nulls, t.Nulls...)
				} else {
					nulls = append(nulls, make([]bool, len(t.Values))...)
				}
			}
		}
		return &VarcharBlock{Values: vals, Nulls: nulls}
	case *ArrayBlock:
		var elems []Block
		offsets := []int32{0}
		var nulls []bool
		anyNull := false
		for _, b := range flat {
			t := b.(*ArrayBlock)
			base := offsets[len(offsets)-1] - t.Offsets[0]
			for _, off := range t.Offsets[1:] {
				offsets = append(offsets, off+base)
			}
			elems = append(elems, t.Elements)
			anyNull = anyNull || t.Nulls != nil
		}
		if anyNull {
			for _, b := range flat {
				t := b.(*ArrayBlock)
				if t.Nulls != nil {
					nulls = append(nulls, t.Nulls...)
				} else {
					nulls = append(nulls, make([]bool, t.Count())...)
				}
			}
		}
		return &ArrayBlock{Elements: Concat(elems), Offsets: offsets, Nulls: nulls}
	case *MapBlock:
		var keys, vals []Block
		offsets := []int32{0}
		var nulls []bool
		anyNull := false
		for _, b := range flat {
			t := b.(*MapBlock)
			base := offsets[len(offsets)-1] - t.Offsets[0]
			for _, off := range t.Offsets[1:] {
				offsets = append(offsets, off+base)
			}
			keys = append(keys, t.Keys)
			vals = append(vals, t.Values)
			anyNull = anyNull || t.Nulls != nil
		}
		if anyNull {
			for _, b := range flat {
				t := b.(*MapBlock)
				if t.Nulls != nil {
					nulls = append(nulls, t.Nulls...)
				} else {
					nulls = append(nulls, make([]bool, t.Count())...)
				}
			}
		}
		return &MapBlock{Keys: Concat(keys), Values: Concat(vals), Offsets: offsets, Nulls: nulls}
	case *RowBlock:
		first := flat[0].(*RowBlock)
		fieldParts := make([][]Block, len(first.Fields))
		n := 0
		var nulls []bool
		anyNull := false
		for _, b := range flat {
			t := b.(*RowBlock)
			for i, f := range t.Fields {
				fieldParts[i] = append(fieldParts[i], f)
			}
			n += t.N
			anyNull = anyNull || t.Nulls != nil
		}
		if anyNull {
			for _, b := range flat {
				t := b.(*RowBlock)
				if t.Nulls != nil {
					nulls = append(nulls, t.Nulls...)
				} else {
					nulls = append(nulls, make([]bool, t.N)...)
				}
			}
		}
		fields := make([]Block, len(fieldParts))
		for i, parts := range fieldParts {
			fields[i] = Concat(parts)
		}
		return &RowBlock{Fields: fields, Nulls: nulls, N: n}
	default:
		panic(fmt.Sprintf("block: cannot concat %T", flat[0]))
	}
}
