package block

import "sync"

// Positions is a leased selection vector — the []int of row positions that
// the hot scan→filter→project path produces per page (and that local
// exchanges produce per output per page when hash-partitioning). These
// vectors were the dominant per-page allocation in that path (flagged by the
// hotalloc lint): one fresh make per filtered page. Leasing them from a
// process-wide pool keeps the steady state allocation-free.
//
// Safe reuse relies on a property every Block.Mask implementation has: Mask
// materializes its own copy of the selected positions/values, so the vector
// never escapes into result pages and may be reused as soon as Mask returns.
type Positions struct {
	Buf []int
}

// positionsCap is the initial capacity of a pooled vector; pages are
// typically ≤1024 rows, so vectors rarely regrow after their first lease.
const positionsCap = 1024

var positionsPool = sync.Pool{
	New: func() any { return &Positions{Buf: make([]int, 0, positionsCap)} },
}

// GetPositions leases a selection vector (length 0). Return it with
// PutPositions when the operator closes — not per page: holding the lease
// for the operator's lifetime is what makes the per-page path allocation
// free.
func GetPositions() *Positions {
	return positionsPool.Get().(*Positions)
}

// PutPositions returns a leased vector to the pool. nil is a no-op so Close
// paths can call it unconditionally.
func PutPositions(p *Positions) {
	if p == nil {
		return
	}
	p.Buf = p.Buf[:0]
	positionsPool.Put(p)
}
