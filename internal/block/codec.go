package block

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Pages cross the wire between workers and the coordinator (§III: stages
// stream pages through exchanges). We serialize with encoding/gob over a
// small envelope; lazy and encoded blocks are materialized to flat blocks
// first since the remote side has no loader.

func init() {
	gob.Register(&Int64Block{})
	gob.Register(&Float64Block{})
	gob.Register(&BoolBlock{})
	gob.Register(&VarcharBlock{})
	gob.Register(&ArrayBlock{})
	gob.Register(&MapBlock{})
	gob.Register(&RowBlock{})
}

type wirePage struct {
	Blocks []Block
	N      int
}

// flatten converts encoded/lazy/view blocks into plain serializable blocks.
func flatten(b Block) Block {
	b = Unwrap(b)
	if m, ok := b.(Materializer); ok {
		return flatten(m.Materialize())
	}
	switch t := b.(type) {
	case *DictionaryBlock:
		return flatten(t.Decode())
	case *RunLengthBlock:
		pos := make([]int, t.N)
		return flatten(t.Single.Mask(pos))
	case *ArrayBlock:
		return &ArrayBlock{Elements: flatten(t.Elements), Offsets: t.Offsets, Nulls: t.Nulls}
	case *MapBlock:
		return &MapBlock{Keys: flatten(t.Keys), Values: flatten(t.Values), Offsets: t.Offsets, Nulls: t.Nulls}
	case *RowBlock:
		fields := make([]Block, len(t.Fields))
		for i, f := range t.Fields {
			fields[i] = flatten(f)
		}
		return &RowBlock{Fields: fields, Nulls: t.Nulls, N: t.N}
	default:
		return b
	}
}

// MaterializePage forces lazy/view blocks into concrete blocks. Results
// leaving the engine (to a client or across the wire) must not carry
// deferred loaders.
func MaterializePage(p *Page) *Page {
	blocks := make([]Block, len(p.Blocks))
	for i, b := range p.Blocks {
		blocks[i] = flatten(b)
	}
	return &Page{Blocks: blocks, N: p.N}
}

// EncodePage serializes a page for the wire.
func EncodePage(p *Page) ([]byte, error) {
	blocks := make([]Block, len(p.Blocks))
	for i, b := range p.Blocks {
		blocks[i] = flatten(b)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wirePage{Blocks: blocks, N: p.N}); err != nil {
		return nil, fmt.Errorf("block: encode page: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePage deserializes a page from the wire.
func DecodePage(data []byte) (*Page, error) {
	var wp wirePage
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wp); err != nil {
		return nil, fmt.Errorf("block: decode page: %w", err)
	}
	return &Page{Blocks: wp.Blocks, N: wp.N}, nil
}
