package block

import (
	"reflect"
	"testing"

	"prestolite/internal/types"
)

func TestInt64BlockBasics(t *testing.T) {
	b := FromValues(types.Bigint, int64(1), nil, int64(3))
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	if b.Value(0) != int64(1) || b.Value(2) != int64(3) {
		t.Errorf("values wrong: %v %v", b.Value(0), b.Value(2))
	}
	if !b.IsNull(1) || b.Value(1) != nil {
		t.Error("null handling wrong")
	}
	r := b.Region(1, 2)
	if r.Count() != 2 || !r.IsNull(0) || r.Value(1) != int64(3) {
		t.Error("region wrong")
	}
	m := b.Mask([]int{2, 0})
	if m.Value(0) != int64(3) || m.Value(1) != int64(1) {
		t.Error("mask wrong")
	}
}

func TestRegionBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-bounds region")
		}
	}()
	FromValues(types.Bigint, int64(1)).Region(0, 2)
}

func TestVarcharBlock(t *testing.T) {
	b := FromValues(types.Varchar, "a", nil, "ccc")
	if b.Value(0) != "a" || !b.IsNull(1) || b.Value(2) != "ccc" {
		t.Error("varchar block wrong")
	}
	if b.SizeBytes() <= 0 {
		t.Error("SizeBytes should be positive")
	}
}

func TestArrayBlock(t *testing.T) {
	typ := types.NewArray(types.Bigint)
	b := FromValues(typ, []any{int64(1), int64(2)}, nil, []any{}, []any{int64(9)})
	if b.Count() != 4 {
		t.Fatalf("Count = %d", b.Count())
	}
	if !reflect.DeepEqual(b.Value(0), []any{int64(1), int64(2)}) {
		t.Errorf("Value(0) = %v", b.Value(0))
	}
	if !b.IsNull(1) {
		t.Error("expected null at 1")
	}
	if got := b.Value(2).([]any); len(got) != 0 {
		t.Errorf("Value(2) = %v", got)
	}
	m := b.Mask([]int{3, 0})
	if !reflect.DeepEqual(m.Value(0), []any{int64(9)}) || !reflect.DeepEqual(m.Value(1), []any{int64(1), int64(2)}) {
		t.Errorf("mask: %v %v", m.Value(0), m.Value(1))
	}
	r := b.Region(1, 3)
	if !r.IsNull(0) || !reflect.DeepEqual(r.Value(2), []any{int64(9)}) {
		t.Error("region wrong")
	}
}

func TestMapBlock(t *testing.T) {
	typ := types.NewMap(types.Varchar, types.Double)
	b := FromValues(typ,
		[][2]any{{"a", 1.5}, {"b", 2.5}},
		nil,
		[][2]any{{"z", 0.0}},
	)
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	v := b.Value(0).([][2]any)
	if v[0][0] != "a" || v[1][1] != 2.5 {
		t.Errorf("Value(0) = %v", v)
	}
	if !b.IsNull(1) {
		t.Error("null wrong")
	}
	m := b.Mask([]int{2})
	if got := m.Value(0).([][2]any); got[0][0] != "z" {
		t.Errorf("mask = %v", got)
	}
}

func TestRowBlockNested(t *testing.T) {
	typ := types.NewRow(
		types.Field{Name: "id", Type: types.Bigint},
		types.Field{Name: "geo", Type: types.NewRow(
			types.Field{Name: "lat", Type: types.Double},
			types.Field{Name: "lng", Type: types.Double},
		)},
	)
	b := FromValues(typ,
		[]any{int64(1), []any{1.0, 2.0}},
		[]any{int64(2), nil},
		nil,
	)
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	row0 := b.Value(0).([]any)
	if row0[0] != int64(1) || !reflect.DeepEqual(row0[1], []any{1.0, 2.0}) {
		t.Errorf("row0 = %v", row0)
	}
	row1 := b.Value(1).([]any)
	if row1[1] != nil {
		t.Errorf("nested null: %v", row1[1])
	}
	if !b.IsNull(2) {
		t.Error("row null wrong")
	}
	rb := b.(*RowBlock)
	if rb.Fields[0].Value(0) != int64(1) {
		t.Error("field access wrong")
	}
}

func TestDictionaryBlock(t *testing.T) {
	dict := FromValues(types.Varchar, "x", "y")
	b := &DictionaryBlock{Dictionary: dict, Ids: []int32{0, 1, 0, -1, 1}}
	if b.Count() != 5 {
		t.Fatalf("Count = %d", b.Count())
	}
	if b.Value(0) != "x" || b.Value(1) != "y" || b.Value(4) != "y" {
		t.Error("dictionary values wrong")
	}
	if !b.IsNull(3) || b.Value(3) != nil {
		t.Error("dictionary null wrong")
	}
	dec := b.Decode()
	for i := 0; i < b.Count(); i++ {
		if !reflect.DeepEqual(dec.Value(i), b.Value(i)) {
			t.Errorf("decode mismatch at %d: %v vs %v", i, dec.Value(i), b.Value(i))
		}
	}
	m := b.Mask([]int{4, 3})
	if m.Value(0) != "y" || !m.IsNull(1) {
		t.Error("dictionary mask wrong")
	}
}

func TestRunLengthBlock(t *testing.T) {
	b := NewRunLengthBlock(SingleValue(types.Varchar, "sf"), 100)
	if b.Count() != 100 || b.Value(57) != "sf" {
		t.Error("RLE wrong")
	}
	r := b.Region(10, 5)
	if r.Count() != 5 || r.Value(0) != "sf" {
		t.Error("RLE region wrong")
	}
	if b.Mask([]int{1, 2, 3}).Count() != 3 {
		t.Error("RLE mask wrong")
	}
	nullRLE := NewRunLengthBlock(FromValues(types.Bigint, nil), 3)
	if !nullRLE.IsNull(2) {
		t.Error("null RLE wrong")
	}
}

func TestLazyBlock(t *testing.T) {
	loads := 0
	b := NewLazyBlock(3, func() Block {
		loads++
		return FromValues(types.Bigint, int64(1), int64(2), int64(3))
	})
	if b.Loaded() {
		t.Error("should not be loaded yet")
	}
	if b.Count() != 3 {
		t.Error("Count should not force load")
	}
	if loads != 0 {
		t.Error("Count forced a load")
	}
	if b.Value(1) != int64(2) {
		t.Error("value wrong")
	}
	_ = b.Value(2)
	if loads != 1 {
		t.Errorf("loader ran %d times", loads)
	}
	// Region of an unloaded lazy block stays lazy.
	b2 := NewLazyBlock(3, func() Block { return FromValues(types.Bigint, int64(1), int64(2), int64(3)) })
	r := b2.Region(1, 2).(*LazyBlock)
	if r.Loaded() {
		t.Error("region should stay lazy")
	}
	if r.Value(0) != int64(2) {
		t.Error("lazy region value wrong")
	}
}

func TestLazyBlockWrongCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong loader count")
		}
	}()
	NewLazyBlock(5, func() Block { return FromValues(types.Bigint, int64(1)) }).Load()
}

func TestPage(t *testing.T) {
	p := NewPage(
		FromValues(types.Bigint, int64(1), int64(2), int64(3)),
		FromValues(types.Varchar, "a", "b", "c"),
	)
	if p.Count() != 3 {
		t.Fatalf("Count = %d", p.Count())
	}
	if !reflect.DeepEqual(p.Row(1), []any{int64(2), "b"}) {
		t.Errorf("Row(1) = %v", p.Row(1))
	}
	r := p.Region(1, 2)
	if r.Count() != 2 || r.Row(0)[1] != "b" {
		t.Error("page region wrong")
	}
	m := p.Mask([]int{2, 0})
	if m.Row(0)[0] != int64(3) || m.Row(1)[1] != "a" {
		t.Error("page mask wrong")
	}
}

func TestPageMismatchedCountsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPage(FromValues(types.Bigint, int64(1)), FromValues(types.Varchar, "a", "b"))
}

func TestPageBuilder(t *testing.T) {
	pb := NewPageBuilder([]*types.Type{types.Bigint, types.Varchar})
	pb.AppendRow([]any{int64(1), "x"})
	pb.AppendRow([]any{nil, "y"})
	if pb.Len() != 2 {
		t.Fatalf("Len = %d", pb.Len())
	}
	p := pb.Build()
	if p.Count() != 2 || !p.Blocks[0].IsNull(1) || p.Row(0)[1] != "x" {
		t.Error("page builder wrong")
	}
	// Builder resets for reuse.
	pb.AppendRow([]any{int64(9), "z"})
	p2 := pb.Build()
	if p2.Count() != 1 || p2.Row(0)[0] != int64(9) {
		t.Error("builder reuse wrong")
	}
}

func TestBuilderIntCoercions(t *testing.T) {
	b := NewBuilder(types.Bigint, 4)
	b.Append(5)
	b.Append(int32(6))
	b.Append(int64(7))
	blk := b.Build()
	if blk.Value(0) != int64(5) || blk.Value(1) != int64(6) || blk.Value(2) != int64(7) {
		t.Error("int coercion wrong")
	}
	fb := NewBuilder(types.Double, 2)
	fb.Append(int64(2))
	fb.Append(1.5)
	fblk := fb.Build()
	if fblk.Value(0) != float64(2) || fblk.Value(1) != 1.5 {
		t.Error("float coercion wrong")
	}
}

func TestEncodeDecodePageRoundTrip(t *testing.T) {
	typ := types.NewRow(
		types.Field{Name: "a", Type: types.Bigint},
		types.Field{Name: "tags", Type: types.NewArray(types.Varchar)},
	)
	p := NewPage(
		FromValues(types.Bigint, int64(10), nil, int64(30)),
		FromValues(types.Varchar, "x", "y", "z"),
		FromValues(typ, []any{int64(1), []any{"t1"}}, nil, []any{int64(3), []any{}}),
		FromValues(types.NewMap(types.Varchar, types.Double), [][2]any{{"k", 1.0}}, nil, [][2]any{}),
	)
	data, err := EncodePage(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != p.Count() || len(got.Blocks) != len(p.Blocks) {
		t.Fatalf("shape mismatch: %d x %d", got.Count(), len(got.Blocks))
	}
	for i := 0; i < p.Count(); i++ {
		if !reflect.DeepEqual(got.Row(i), p.Row(i)) {
			t.Errorf("row %d mismatch: %v vs %v", i, got.Row(i), p.Row(i))
		}
	}
}

func TestEncodePageFlattensEncodedBlocks(t *testing.T) {
	dict := FromValues(types.Varchar, "sf", "nyc")
	p := NewPage(
		&DictionaryBlock{Dictionary: dict, Ids: []int32{0, 1, 0}},
		NewRunLengthBlock(SingleValue(types.Bigint, int64(7)), 3),
		NewLazyBlock(3, func() Block { return FromValues(types.Double, 1.0, 2.0, 3.0) }),
	)
	data, err := EncodePage(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePage(data)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{{"sf", int64(7), 1.0}, {"nyc", int64(7), 2.0}, {"sf", int64(7), 3.0}}
	for i, w := range want {
		if !reflect.DeepEqual(got.Row(i), w) {
			t.Errorf("row %d = %v, want %v", i, got.Row(i), w)
		}
	}
}
