// Package elasticsearch implements the Presto-Elasticsearch connector
// (§IV): "we map each Elasticsearch index into a table. Each Elasticsearch
// field is mapped into a column." Term and range filters, source filtering
// (projection) and size (limit) push down into the store's search API.
package elasticsearch

import (
	"encoding/gob"
	"fmt"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/elastic"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

func init() {
	gob.Register(&TableHandle{})
	gob.Register(&Split{})
	gob.Register(elastic.RangeFilter{})
}

// Connector maps one elastic store into a catalog under a single schema.
type Connector struct {
	name   string
	schema string
	store  *elastic.Store
}

// New creates the connector.
func New(name string, store *elastic.Store) *Connector {
	return &Connector{name: name, schema: "default", store: store}
}

// Name implements connector.Connector.
func (c *Connector) Name() string { return c.name }

// Metadata implements connector.Connector.
func (c *Connector) Metadata() connector.Metadata { return (*esMetadata)(c) }

// SplitManager implements connector.Connector.
func (c *Connector) SplitManager() connector.SplitManager { return (*esSplits)(c) }

// RecordSetProvider implements connector.Connector.
func (c *Connector) RecordSetProvider() connector.RecordSetProvider { return (*esRecords)(c) }

// TableHandle carries the index identity plus pushed-down search state.
type TableHandle struct {
	Index   string
	Columns []connector.Column
	// Terms and Ranges are pushed filters.
	Terms  map[string]string
	Ranges []elastic.RangeFilter
	// Projection lists retained ordinals (nil = all).
	Projection []int
	// Limit (-1 = none) maps to the search size.
	Limit int64
}

// Description implements connector.TableHandle.
func (h *TableHandle) Description() string {
	s := "elasticsearch:" + h.Index
	for f, v := range h.Terms {
		s += fmt.Sprintf(" term[%s=%s]", f, v)
	}
	for _, r := range h.Ranges {
		s += fmt.Sprintf(" range[%s %s %v]", r.Field, r.Op, r.Value)
	}
	if h.Projection != nil {
		s += fmt.Sprintf(" source=%v", h.Projection)
	}
	if h.Limit >= 0 {
		s += fmt.Sprintf(" size=%d", h.Limit)
	}
	return s
}

// Split is the single search split.
type Split struct{ Handle *TableHandle }

// Description implements connector.Split.
func (s *Split) Description() string { return "elasticsearch:" + s.Handle.Index }

type esMetadata Connector

func (m *esMetadata) ListSchemas() ([]string, error) { return []string{m.schema}, nil }

func (m *esMetadata) ListTables(schema string) ([]string, error) {
	if schema != m.schema {
		return nil, fmt.Errorf("elasticsearch: schema %q does not exist", schema)
	}
	return m.store.Indexes(), nil
}

func (m *esMetadata) GetTable(schema, table string) (*connector.TableSchema, connector.TableHandle, error) {
	if schema != m.schema {
		return nil, nil, fmt.Errorf("elasticsearch: schema %q does not exist", schema)
	}
	idx, err := m.store.GetIndex(table)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]connector.Column, len(idx.Fields))
	for i, f := range idx.Fields {
		cols[i] = connector.Column{Name: f.Name, Type: f.Type}
	}
	return &connector.TableSchema{Catalog: m.name, Schema: schema, Table: table, Columns: cols},
		&TableHandle{Index: table, Columns: cols, Limit: -1}, nil
}

type esSplits Connector

func (sm *esSplits) Splits(handle connector.TableHandle) ([]connector.Split, error) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return nil, fmt.Errorf("elasticsearch: foreign table handle %T", handle)
	}
	return []connector.Split{&Split{Handle: h}}, nil
}

type esRecords Connector

func (r *esRecords) CreatePageSource(handle connector.TableHandle, split connector.Split, columns []int) (connector.PageSource, error) {
	c := (*Connector)(r)
	sp, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("elasticsearch: foreign split %T", split)
	}
	h := sp.Handle
	effective := make([]int, len(columns))
	for i, col := range columns {
		if h.Projection != nil {
			effective[i] = h.Projection[col]
		} else {
			effective[i] = col
		}
	}
	source := make([]string, len(effective))
	outTypes := make([]*types.Type, len(effective))
	for i, ord := range effective {
		source[i] = h.Columns[ord].Name
		outTypes[i] = h.Columns[ord].Type
	}
	if len(source) == 0 {
		// count(*)-style scans still need hit counts: fetch one field.
		source = []string{h.Columns[0].Name}
	}
	_, hits, err := c.store.Search(elastic.Query{
		Index:  h.Index,
		Terms:  h.Terms,
		Ranges: h.Ranges,
		Source: source,
		Size:   h.Limit,
	})
	if err != nil {
		return nil, err
	}
	pb := block.NewPageBuilder(outTypes)
	for _, hit := range hits {
		pb.AppendRow(hit[:len(outTypes)])
	}
	return &connector.SlicePageSource{Pages: []*block.Page{pb.Build()}}, nil
}

// ---------------------------------------------------------------------------
// Pushdowns.

var (
	_ connector.FilterPushdown     = (*Connector)(nil)
	_ connector.ProjectionPushdown = (*Connector)(nil)
	_ connector.LimitPushdown      = (*Connector)(nil)
)

// PushFilter lowers conjuncts to term queries (varchar equality) and range
// filters (numeric/boolean comparisons).
func (c *Connector) PushFilter(handle connector.TableHandle, predicate expr.RowExpression, schema *connector.TableSchema) (connector.TableHandle, expr.RowExpression, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, predicate, false
	}
	nh := *h
	nh.Terms = map[string]string{}
	for k, v := range h.Terms {
		nh.Terms[k] = v
	}
	var residual []expr.RowExpression
	pushed := false
	for _, conj := range conjuncts(predicate) {
		call, ok := conj.(*expr.Call)
		if !ok || len(call.Args) != 2 {
			residual = append(residual, conj)
			continue
		}
		op, known := esOps[call.Handle.Name]
		if !known {
			residual = append(residual, conj)
			continue
		}
		v, c1 := call.Args[0].(*expr.Variable)
		cst, c2 := call.Args[1].(*expr.Constant)
		if !c1 || !c2 || cst.Value == nil {
			// try flipped
			v2, f1 := call.Args[1].(*expr.Variable)
			cst2, f2 := call.Args[0].(*expr.Constant)
			if !f1 || !f2 || cst2.Value == nil {
				residual = append(residual, conj)
				continue
			}
			v, cst = v2, cst2
			op = esFlipped[op]
		}
		if v.Channel < 0 || v.Channel >= len(h.Columns) {
			residual = append(residual, conj)
			continue
		}
		field := h.Columns[v.Channel]
		if op == "eq" && field.Type.Kind == types.KindVarchar {
			term, isStr := cst.Value.(string)
			if !isStr {
				residual = append(residual, conj)
				continue
			}
			// Two different terms on one field can never both match; keep
			// the second as residual so the engine produces zero rows.
			if existing, dup := nh.Terms[field.Name]; dup && existing != term {
				residual = append(residual, conj)
				continue
			}
			nh.Terms[field.Name] = term
			pushed = true
			continue
		}
		nh.Ranges = append(nh.Ranges, elastic.RangeFilter{Field: field.Name, Op: op, Value: cst.Value})
		pushed = true
	}
	if !pushed {
		return handle, predicate, false
	}
	if len(residual) == 0 {
		return &nh, nil, true
	}
	return &nh, expr.And(residual...), true
}

// PushProjection implements source filtering.
func (c *Connector) PushProjection(handle connector.TableHandle, columns []int) (connector.TableHandle, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false
	}
	nh := *h
	nh.Projection = append([]int(nil), columns...)
	return &nh, true
}

// PushLimit maps to the search size; guaranteed (single split).
func (c *Connector) PushLimit(handle connector.TableHandle, limit int64) (connector.TableHandle, bool, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false, false
	}
	nh := *h
	if nh.Limit < 0 || limit < nh.Limit {
		nh.Limit = limit
	}
	return &nh, true, true
}

var esOps = map[string]string{
	"eq": "eq", "neq": "neq", "lt": "lt", "lte": "lte", "gt": "gt", "gte": "gte",
}

var esFlipped = map[string]string{
	"eq": "eq", "neq": "neq", "lt": "gt", "lte": "gte", "gt": "lt", "gte": "lte",
}

func conjuncts(e expr.RowExpression) []expr.RowExpression {
	if sf, ok := e.(*expr.SpecialForm); ok && sf.Form == expr.FormAnd {
		var out []expr.RowExpression
		for _, a := range sf.Args {
			out = append(out, conjuncts(a)...)
		}
		return out
	}
	return []expr.RowExpression{e}
}
