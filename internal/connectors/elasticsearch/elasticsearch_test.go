package elasticsearch

import (
	"strings"
	"testing"

	"prestolite/internal/core"
	"prestolite/internal/elastic"
	"prestolite/internal/types"
)

func newESEngine(t *testing.T) (*core.Engine, *elastic.Store) {
	t.Helper()
	store := elastic.NewStore()
	idx, err := store.CreateIndex("service_logs", []elastic.Field{
		{Name: "service", Type: types.Varchar},
		{Name: "level", Type: types.Varchar},
		{Name: "latency_ms", Type: types.Double},
		{Name: "status", Type: types.Bigint},
		{Name: "ok", Type: types.Boolean},
	})
	if err != nil {
		t.Fatal(err)
	}
	docs := []map[string]any{
		{"service": "api", "level": "error", "latency_ms": 120.5, "status": int64(500), "ok": false},
		{"service": "api", "level": "info", "latency_ms": 8.0, "status": int64(200), "ok": true},
		{"service": "web", "level": "error", "latency_ms": 300.0, "status": int64(502), "ok": false},
		{"service": "web", "level": "info", "latency_ms": 5.5, "status": int64(200), "ok": true},
		{"service": "api", "level": "warn", "status": int64(200)}, // latency missing -> NULL
	}
	for _, d := range docs {
		if err := idx.IndexDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	e := core.New()
	e.Register("elasticsearch", New("elasticsearch", store))
	return e, store
}

func TestIndexAsTable(t *testing.T) {
	e, _ := newESEngine(t)
	s := core.DefaultSession("elasticsearch", "default")
	res, err := e.Query(s, "SHOW TABLES FROM elasticsearch.default")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != "service_logs" {
		t.Fatalf("tables = %v", res.Rows())
	}
	res, err = e.Query(s, "SELECT count(*) FROM service_logs")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != int64(5) {
		t.Fatalf("count = %v", res.Rows())
	}
}

func TestTermAndRangePushdown(t *testing.T) {
	e, _ := newESEngine(t)
	s := core.DefaultSession("elasticsearch", "default")
	plan, err := e.Explain(s, "SELECT latency_ms FROM service_logs WHERE level = 'error' AND latency_ms > 100.0 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"term[level=error]", "range[latency_ms gt 100]", "size=10"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if strings.Contains(plan, "- Filter[") || strings.Contains(plan, "- Limit[") {
		t.Errorf("pushdowns not absorbed:\n%s", plan)
	}
	res, err := e.Query(s, "SELECT service, latency_ms FROM service_logs WHERE level = 'error' AND latency_ms > 100.0 ORDER BY latency_ms")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != "api" || rows[1][0] != "web" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregateOverES(t *testing.T) {
	e, _ := newESEngine(t)
	s := core.DefaultSession("elasticsearch", "default")
	res, err := e.Query(s, `SELECT service, count(*), max(latency_ms)
		FROM service_logs GROUP BY service ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != "api" || rows[0][1] != int64(3) || rows[0][2] != 120.5 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMissingFieldReadsNull(t *testing.T) {
	e, _ := newESEngine(t)
	s := core.DefaultSession("elasticsearch", "default")
	res, err := e.Query(s, "SELECT count(*), count(latency_ms) FROM service_logs WHERE service = 'api'")
	if err != nil {
		t.Fatal(err)
	}
	r := res.Rows()[0]
	if r[0] != int64(3) || r[1] != int64(2) {
		t.Fatalf("counts = %v", r)
	}
}

func TestContradictoryTermsYieldZero(t *testing.T) {
	e, _ := newESEngine(t)
	s := core.DefaultSession("elasticsearch", "default")
	res, err := e.Query(s, "SELECT count(*) FROM service_logs WHERE level = 'error' AND level = 'info'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != int64(0) {
		t.Fatalf("count = %v", res.Rows())
	}
}

func TestStoreValidation(t *testing.T) {
	store := elastic.NewStore()
	if _, err := store.CreateIndex("x", []elastic.Field{{Name: "m", Type: types.NewArray(types.Bigint)}}); err == nil {
		t.Error("array field accepted")
	}
	idx, _ := store.CreateIndex("x", []elastic.Field{{Name: "a", Type: types.Bigint}})
	if err := idx.IndexDocument(map[string]any{"nope": int64(1)}); err == nil {
		t.Error("unknown field accepted")
	}
	if err := idx.IndexDocument(map[string]any{"a": "wrong"}); err == nil {
		t.Error("wrong type accepted")
	}
	if _, _, err := store.Search(elastic.Query{Index: "missing"}); err == nil {
		t.Error("missing index accepted")
	}
	if _, _, err := store.Search(elastic.Query{Index: "x", Source: []string{"ghost"}}); err == nil {
		t.Error("bad source accepted")
	}
	if _, _, err := store.Search(elastic.Query{Index: "x", Terms: map[string]string{"a": "v"}}); err == nil {
		t.Error("term on non-varchar accepted")
	}
}

func TestCrossCatalogJoinWithES(t *testing.T) {
	// Monitoring data joined with anything else, no copy (§IV).
	e, store := newESEngine(t)
	idx, err := store.CreateIndex("owners", []elastic.Field{
		{Name: "service", Type: types.Varchar},
		{Name: "team", Type: types.Varchar},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx.IndexDocument(map[string]any{"service": "api", "team": "core"})
	idx.IndexDocument(map[string]any{"service": "web", "team": "growth"})
	s := core.DefaultSession("elasticsearch", "default")
	res, err := e.Query(s, `SELECT o.team, count(*) FROM service_logs l
		JOIN owners o ON l.service = o.service
		WHERE l.level = 'error' GROUP BY o.team ORDER BY 1`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != "core" || rows[0][1] != int64(1) {
		t.Fatalf("rows = %v", rows)
	}
}
