// Package druid implements the Presto-Druid connector (§IV.B): it maps
// druid tables into the engine and pushes predicates, projections, limits
// and — the headline feature — entire grouped aggregations down to the
// store, so "only aggregated results are streamed into the Presto engine"
// (Fig 2). The connector bridges sub-second store latency with full SQL:
// joins and subqueries run in the engine, aggregations run in druid.
package druid

import (
	"encoding/gob"
	"fmt"
	"sync"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	driver "prestolite/internal/druid"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

func init() {
	gob.Register(&TableHandle{})
	gob.Register(&Split{})
	gob.Register(driver.Filter{})
	gob.Register(driver.Aggregation{})
}

// Connector is the Presto-Druid connector.
type Connector struct {
	name   string
	schema string // single logical schema name, default "default"
	client driver.Client

	// schemaCache avoids a broker round trip per metadata lookup (the
	// analyzer and optimizer each resolve the table during planning).
	schemaMu    sync.RWMutex
	schemaCache map[string][]connector.Column
}

// New creates a connector over a druid client.
func New(name string, client driver.Client) *Connector {
	return &Connector{name: name, schema: "default", client: client, schemaCache: map[string][]connector.Column{}}
}

// SnapshotVersion implements connector.SnapshotVersioner when the client
// can see store versions (embedded or latency-wrapped embedded clients).
// Remote HTTP clients cannot, so their tables are never result-cached.
func (c *Connector) SnapshotVersion(schema, table string) (int64, bool) {
	v, ok := c.client.(driver.Versioner)
	if !ok {
		return 0, false
	}
	return v.TableVersion(table)
}

func (c *Connector) tableColumns(table string) ([]connector.Column, error) {
	c.schemaMu.RLock()
	cols, ok := c.schemaCache[table]
	c.schemaMu.RUnlock()
	if ok {
		return cols, nil
	}
	raw, err := c.client.Schema(table)
	if err != nil {
		return nil, err
	}
	cols = make([]connector.Column, len(raw))
	for i, col := range raw {
		cols[i] = connector.Column{Name: col.Name, Type: col.Type}
	}
	c.schemaMu.Lock()
	c.schemaCache[table] = cols
	c.schemaMu.Unlock()
	return cols, nil
}

// Name implements connector.Connector.
func (c *Connector) Name() string { return c.name }

// Metadata implements connector.Connector.
func (c *Connector) Metadata() connector.Metadata { return (*druidMetadata)(c) }

// SplitManager implements connector.Connector.
func (c *Connector) SplitManager() connector.SplitManager { return (*druidSplits)(c) }

// RecordSetProvider implements connector.Connector.
func (c *Connector) RecordSetProvider() connector.RecordSetProvider { return (*druidRecords)(c) }

// TableHandle carries pushdown state; the whole native query shape lives
// here. Serializable RowExpressions were already lowered to native filters.
type TableHandle struct {
	Table string
	// Columns is the table schema (resolved once at GetTable).
	Columns []connector.Column
	// Filters are pushed predicates.
	Filters []driver.Filter
	// Projection lists retained ordinals (nil = all).
	Projection []int
	// Aggregations + GroupBy when an aggregation was pushed.
	Aggregations []driver.Aggregation
	GroupByNames []string
	AggPushed    bool
	// AggOutputs are the scan output columns after aggregation pushdown.
	AggOutputs []connector.Column
	// Limit (-1 none).
	Limit int64
}

// Description implements connector.TableHandle.
func (h *TableHandle) Description() string {
	s := "druid:" + h.Table
	for _, f := range h.Filters {
		s += fmt.Sprintf(" filter[%s %s %v]", f.Column, f.Op, f.Values)
	}
	if h.Projection != nil {
		s += fmt.Sprintf(" columns=%v", h.Projection)
	}
	if h.AggPushed {
		s += " aggregationPushdown=["
		for i, a := range h.Aggregations {
			if i > 0 {
				s += ", "
			}
			s += a.Func + "(" + a.Column + ")"
		}
		s += fmt.Sprintf("] groupBy=%v", h.GroupByNames)
	}
	if h.Limit >= 0 {
		s += fmt.Sprintf(" limit=%d", h.Limit)
	}
	return s
}

// Split is the single broker split: druid executes the (possibly
// aggregated) query as one unit.
type Split struct {
	Handle *TableHandle
}

// Description implements connector.Split.
func (s *Split) Description() string { return "druid:" + s.Handle.Table }

// ---------------------------------------------------------------------------

type druidMetadata Connector

func (m *druidMetadata) ListSchemas() ([]string, error) { return []string{m.schema}, nil }

func (m *druidMetadata) ListTables(schema string) ([]string, error) {
	if schema != m.schema {
		return nil, fmt.Errorf("druid: schema %q does not exist", schema)
	}
	return m.client.Tables()
}

func (m *druidMetadata) GetTable(schema, table string) (*connector.TableSchema, connector.TableHandle, error) {
	if schema != m.schema {
		return nil, nil, fmt.Errorf("druid: schema %q does not exist", schema)
	}
	out, err := (*Connector)(m).tableColumns(table)
	if err != nil {
		return nil, nil, err
	}
	return &connector.TableSchema{Catalog: m.name, Schema: schema, Table: table, Columns: out},
		&TableHandle{Table: table, Columns: out, Limit: -1}, nil
}

type druidSplits Connector

func (sm *druidSplits) Splits(handle connector.TableHandle) ([]connector.Split, error) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return nil, fmt.Errorf("druid: foreign table handle %T", handle)
	}
	// One split: the broker parallelizes internally, and pushed
	// aggregations must be global.
	return []connector.Split{&Split{Handle: h}}, nil
}

type druidRecords Connector

func (r *druidRecords) CreatePageSource(handle connector.TableHandle, split connector.Split, columns []int) (connector.PageSource, error) {
	c := (*Connector)(r)
	sp, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("druid: foreign split %T", split)
	}
	h := sp.Handle

	// Build the native query from the handle.
	q := driver.Query{Table: h.Table, Filters: h.Filters, Limit: h.Limit}
	var outCols []connector.Column
	if h.AggPushed {
		q.GroupBy = h.GroupByNames
		q.Aggregations = h.Aggregations
		outCols = h.AggOutputs
	} else {
		effective := effectiveColumns(h)
		for _, ord := range effective {
			outCols = append(outCols, h.Columns[ord])
			q.Columns = append(q.Columns, h.Columns[ord].Name)
		}
	}
	res, err := c.client.Execute(q)
	if err != nil {
		return nil, fmt.Errorf("druid: executing native query: %w", err)
	}

	// Project requested output channels out of the native result.
	outTypes := make([]*types.Type, len(columns))
	for i, col := range columns {
		outTypes[i] = outCols[col].Type
	}
	pb := block.NewPageBuilder(outTypes)
	for _, row := range res.Rows {
		out := make([]any, len(columns))
		for i, col := range columns {
			out[i] = row[col]
		}
		pb.AppendRow(out)
	}
	return &connector.SlicePageSource{Pages: []*block.Page{pb.Build()}}, nil
}

func effectiveColumns(h *TableHandle) []int {
	if h.Projection != nil {
		return h.Projection
	}
	out := make([]int, len(h.Columns))
	for i := range out {
		out[i] = i
	}
	return out
}

// ---------------------------------------------------------------------------
// Pushdowns.

var (
	_ connector.FilterPushdown      = (*Connector)(nil)
	_ connector.ProjectionPushdown  = (*Connector)(nil)
	_ connector.LimitPushdown       = (*Connector)(nil)
	_ connector.AggregationPushdown = (*Connector)(nil)
)

// PushFilter lowers supported conjuncts to native druid filters.
func (c *Connector) PushFilter(handle connector.TableHandle, predicate expr.RowExpression, schema *connector.TableSchema) (connector.TableHandle, expr.RowExpression, bool) {
	h, ok := handle.(*TableHandle)
	if !ok || h.AggPushed {
		return handle, predicate, false
	}
	nh := *h
	var residual []expr.RowExpression
	pushed := false
	for _, conj := range conjuncts(predicate) {
		f, ok := toNativeFilter(conj, h.Columns)
		if !ok {
			residual = append(residual, conj)
			continue
		}
		nh.Filters = append(nh.Filters, f)
		pushed = true
	}
	if !pushed {
		return handle, predicate, false
	}
	if len(residual) == 0 {
		return &nh, nil, true
	}
	return &nh, expr.And(residual...), true
}

// PushProjection narrows the native select list.
func (c *Connector) PushProjection(handle connector.TableHandle, columns []int) (connector.TableHandle, bool) {
	h, ok := handle.(*TableHandle)
	if !ok || h.AggPushed {
		return handle, false
	}
	nh := *h
	nh.Projection = append([]int(nil), columns...)
	return &nh, true
}

// PushLimit is guaranteed: the single broker split applies it globally.
func (c *Connector) PushLimit(handle connector.TableHandle, limit int64) (connector.TableHandle, bool, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false, false
	}
	nh := *h
	if nh.Limit < 0 || limit < nh.Limit {
		nh.Limit = limit
	}
	return &nh, true, true
}

// PushAggregation absorbs a grouped aggregation (§IV.B, Fig 2): druid
// executes it natively over its in-memory structures and only aggregated
// rows are streamed into the engine.
func (c *Connector) PushAggregation(handle connector.TableHandle, aggs []connector.AggregateSpec, groupBy []int) (connector.TableHandle, bool) {
	h, ok := handle.(*TableHandle)
	if !ok || h.AggPushed {
		return handle, false
	}
	cols := h.Columns
	nh := *h
	nh.AggPushed = true
	for _, g := range groupBy {
		// groupBy ordinals arrive relative to the handle's effective
		// projection.
		ord := resolveOrdinal(h, g)
		nh.GroupByNames = append(nh.GroupByNames, cols[ord].Name)
		nh.AggOutputs = append(nh.AggOutputs, cols[ord])
	}
	for _, a := range aggs {
		na := driver.Aggregation{Func: a.Function, Name: a.OutputName}
		if a.ArgColumn >= 0 {
			ord := resolveOrdinal(h, a.ArgColumn)
			na.Column = cols[ord].Name
		}
		switch a.Function {
		case "count", "sum", "min", "max", "avg":
		default:
			return handle, false
		}
		nh.Aggregations = append(nh.Aggregations, na)
		nh.AggOutputs = append(nh.AggOutputs, connector.Column{Name: a.OutputName, Type: a.OutputType})
	}
	nh.Projection = nil
	return &nh, true
}

func resolveOrdinal(h *TableHandle, ch int) int {
	if h.Projection != nil {
		return h.Projection[ch]
	}
	return ch
}

func conjuncts(e expr.RowExpression) []expr.RowExpression {
	if sf, ok := e.(*expr.SpecialForm); ok && sf.Form == expr.FormAnd {
		var out []expr.RowExpression
		for _, a := range sf.Args {
			out = append(out, conjuncts(a)...)
		}
		return out
	}
	return []expr.RowExpression{e}
}

var druidOps = map[string]string{
	"eq": "eq", "neq": "neq", "lt": "lt", "lte": "lte", "gt": "gt", "gte": "gte",
}

var druidFlipped = map[string]string{
	"eq": "eq", "neq": "neq", "lt": "gt", "lte": "gte", "gt": "lt", "gte": "lte",
}

// toNativeFilter lowers col-vs-constant comparisons and IN lists. Variable
// channels are table ordinals relative to the handle's effective projection.
func toNativeFilter(e expr.RowExpression, cols []connector.Column) (driver.Filter, bool) {
	colName := func(x expr.RowExpression) (string, bool) {
		v, ok := x.(*expr.Variable)
		if !ok || v.Channel < 0 || v.Channel >= len(cols) {
			return "", false
		}
		return cols[v.Channel].Name, true
	}
	constVal := func(x expr.RowExpression) (any, bool) {
		cst, ok := x.(*expr.Constant)
		if !ok || cst.Value == nil {
			return nil, false
		}
		switch cst.Value.(type) {
		case int64, float64, string, bool:
			return cst.Value, true
		}
		return nil, false
	}
	switch t := e.(type) {
	case *expr.Call:
		op, known := druidOps[t.Handle.Name]
		if !known || len(t.Args) != 2 {
			return driver.Filter{}, false
		}
		if name, ok := colName(t.Args[0]); ok {
			if v, ok := constVal(t.Args[1]); ok {
				return driver.Filter{Column: name, Op: op, Values: []any{v}}, true
			}
		}
		if name, ok := colName(t.Args[1]); ok {
			if v, ok := constVal(t.Args[0]); ok {
				return driver.Filter{Column: name, Op: druidFlipped[op], Values: []any{v}}, true
			}
		}
	case *expr.SpecialForm:
		if t.Form == expr.FormIn {
			name, ok := colName(t.Args[0])
			if !ok {
				return driver.Filter{}, false
			}
			var values []any
			for _, a := range t.Args[1:] {
				v, ok := constVal(a)
				if !ok {
					return driver.Filter{}, false
				}
				values = append(values, v)
			}
			return driver.Filter{Column: name, Op: "in", Values: values}, true
		}
	}
	return driver.Filter{}, false
}
