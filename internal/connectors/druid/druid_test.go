package druid

import (
	"strings"
	"testing"

	"prestolite/internal/core"
	driver "prestolite/internal/druid"
	"prestolite/internal/types"
)

func newDruidEngine(t *testing.T) (*core.Engine, *driver.Store) {
	t.Helper()
	store := driver.NewStore()
	tab, err := store.CreateTable("events", []driver.Column{
		{Name: "country", Type: types.Varchar},
		{Name: "device", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
		{Name: "revenue", Type: types.Double},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Ingest([][]any{
		{"us", "ios", int64(10), 1.5},
		{"us", "android", int64(20), 2.5},
		{"de", "ios", int64(5), 0.5},
		{"jp", "android", int64(3), 0.3},
		{"us", "ios", int64(7), 0.9},
	}); err != nil {
		t.Fatal(err)
	}
	e := core.New()
	e.Register("druid", New("druid", &driver.EmbeddedClient{Store: store}))
	return e, store
}

func TestDruidConnectorBasics(t *testing.T) {
	e, _ := newDruidEngine(t)
	s := core.DefaultSession("druid", "default")

	res, err := e.Query(s, "SELECT country, clicks FROM events WHERE device = 'ios' ORDER BY clicks DESC")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 3 || rows[0][1] != int64(10) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAggregationPushdownPlan(t *testing.T) {
	e, _ := newDruidEngine(t)
	s := core.DefaultSession("druid", "default")
	// The Fig 2 query shape: SELECT columnA, max(columnB) FROM T WHERE
	// predicate GROUP BY columnA.
	plan, err := e.Explain(s, `SELECT country, max(clicks) FROM events
		WHERE device = 'ios' GROUP BY country`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "aggregationPushdown=[max(clicks)]") {
		t.Errorf("plan missing aggregation pushdown:\n%s", plan)
	}
	if !strings.Contains(plan, "filter[device eq [ios]]") {
		t.Errorf("plan missing filter pushdown:\n%s", plan)
	}
	// No engine-side Aggregate remains: druid does the aggregation.
	if strings.Contains(plan, "Aggregate(") {
		t.Errorf("aggregate not absorbed:\n%s", plan)
	}
}

func TestAggregationPushdownResults(t *testing.T) {
	e, _ := newDruidEngine(t)
	s := core.DefaultSession("druid", "default")
	res, err := e.Query(s, `SELECT country, sum(clicks) AS c, count(*) AS n
		FROM events GROUP BY country ORDER BY c DESC`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "us" || rows[0][1] != int64(37) || rows[0][2] != int64(3) {
		t.Errorf("us row = %v", rows[0])
	}
}

func TestPushdownMatchesEngineAggregation(t *testing.T) {
	// The same query with pushdown disabled (session property is not the
	// mechanism here; instead compare against a fresh engine whose optimizer
	// cannot push because of a HAVING over a non-pushable aggregate).
	e, _ := newDruidEngine(t)
	s := core.DefaultSession("druid", "default")
	// count(distinct ...) cannot push down; engine aggregates raw rows.
	res, err := e.Query(s, "SELECT count(distinct country) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != int64(3) {
		t.Fatalf("rows = %v", res.Rows())
	}
	plan, _ := e.Explain(s, "SELECT count(distinct country) FROM events")
	if !strings.Contains(plan, "Aggregate(") {
		t.Errorf("distinct aggregate should stay in the engine:\n%s", plan)
	}
}

func TestGlobalAggPushdown(t *testing.T) {
	e, _ := newDruidEngine(t)
	s := core.DefaultSession("druid", "default")
	res, err := e.Query(s, "SELECT sum(revenue), avg(clicks) FROM events WHERE country = 'us'")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows()[0]
	if rv := row[0].(float64); rv < 4.89 || rv > 4.91 {
		t.Errorf("sum = %v", rv)
	}
	plan, _ := e.Explain(s, "SELECT sum(revenue) FROM events WHERE country = 'us'")
	if !strings.Contains(plan, "aggregationPushdown") {
		t.Errorf("global agg not pushed:\n%s", plan)
	}
}

func TestLimitPushdownGuaranteed(t *testing.T) {
	e, _ := newDruidEngine(t)
	s := core.DefaultSession("druid", "default")
	plan, err := e.Explain(s, "SELECT country FROM events LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "limit=2") {
		t.Errorf("limit not pushed:\n%s", plan)
	}
	// Guaranteed: the engine Limit disappears.
	if strings.Contains(plan, "- Limit[") {
		t.Errorf("engine limit should be removed:\n%s", plan)
	}
	res, err := e.Query(s, "SELECT country FROM events LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestJoinDruidWithOtherCatalog(t *testing.T) {
	// Full SQL over druid: joins run in the engine while the scan side
	// pushes down (bridging sub-second stores with full SQL, §IV.B).
	e, _ := newDruidEngine(t)
	s := core.DefaultSession("druid", "default")
	res, err := e.Query(s, `SELECT a.country, a.clicks, b.clicks
		FROM events a JOIN events b ON a.country = b.country AND a.device = b.device
		WHERE a.country = 'jp'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 1 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestHTTPConnector(t *testing.T) {
	store := driver.NewStore()
	tab, _ := store.CreateTable("metrics", []driver.Column{
		{Name: "service", Type: types.Varchar},
		{Name: "errors", Type: types.Bigint},
	})
	tab.Ingest([][]any{{"api", int64(3)}, {"web", int64(1)}, {"api", int64(2)}})
	srv := driver.NewServer(store)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	e := core.New()
	e.Register("druid", New("druid", driver.NewHTTPClient(srv.Addr())))
	s := core.DefaultSession("druid", "default")
	res, err := e.Query(s, "SELECT service, sum(errors) FROM metrics GROUP BY service ORDER BY 2 DESC")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != "api" || rows[0][1] != int64(5) {
		t.Fatalf("rows = %v", rows)
	}
}
