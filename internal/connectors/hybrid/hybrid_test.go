package hybrid

import (
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/druid"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/types"
)

// histFixture builds a hive connector over a one-partition sealed table and
// returns the connector plus a loader for landing backfill files.
func histFixture(t *testing.T) (*hive.Connector, *hive.Loader, connector.TableHandle, string) {
	t.Helper()
	ms := metastore.New()
	fs := hdfs.New(hdfs.Config{})
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
	}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar})
	pb.AppendRow([]any{int64(1), "us"})
	pb.AppendRow([]any{int64(2), "de"})
	page := pb.Build()
	if err := loader.CreatePartitionedTable("rt", "events_hist", cols, "datestr",
		map[string][]*block.Page{"2017-03-02": {page}}, map[string]bool{"2017-03-02": true}); err != nil {
		t.Fatal(err)
	}
	hc := hive.New("hive", ms, fs, hive.Options{})
	_, handle, err := hc.Metadata().GetTable("rt", "events_hist")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ms.GetTable("rt", "events_hist")
	if err != nil {
		t.Fatal(err)
	}
	return hc, loader, handle, tab.Location
}

func countSplits(t *testing.T, hc *hive.Connector, handle connector.TableHandle) int {
	t.Helper()
	splits, err := hc.SplitManager().Splits(handle)
	if err != nil {
		t.Fatal(err)
	}
	return len(splits)
}

func backfillPage() *block.Page {
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar})
	pb.AppendRow([]any{int64(3), "fr"})
	return pb.Build()
}

// TestRealtimeSealInvalidatesHistoricalCache is the staleness regression
// test: a backfill file landing in a sealed partition (written directly to
// the filesystem, as the seal pipeline does — no metastore event) is
// invisible through the warm file-list cache until the druid seal event
// fires the invalidation binding.
func TestRealtimeSealInvalidatesHistoricalCache(t *testing.T) {
	hc, loader, handle, location := histFixture(t)

	if n := countSplits(t, hc, handle); n != 1 {
		t.Fatalf("initial splits = %d, want 1", n)
	}

	// Backfill lands on disk without a metastore event.
	if err := loader.AppendFile("rt", "events_hist", "datestr=2017-03-02", backfillPage(), "part-backfill-0"); err != nil {
		t.Fatal(err)
	}
	// The cached listing is stale: this is the bug being fixed — without
	// invalidation the new file stays invisible until TTL.
	if n := countSplits(t, hc, handle); n != 1 {
		t.Fatalf("expected stale cached listing (1 split), got %d", n)
	}

	// Wire the binding and drive a druid segment seal.
	store := druid.NewStore()
	rt, err := store.CreateTable("events", []druid.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetSegmentConfig(druid.SegmentConfig{SealRows: 2})
	BindRealtimeInvalidation(store, "events", hc, location)

	if err := rt.Ingest([][]any{{int64(10), "us"}, {int64(11), "de"}}); err != nil {
		t.Fatal(err)
	}
	if rt.Stats().Sealed == 0 {
		t.Fatal("fixture bug: ingest did not seal a segment")
	}
	if n := countSplits(t, hc, handle); n != 2 {
		t.Errorf("after seal event: splits = %d, want 2 (backfill visible)", n)
	}

	// Watermark advance (a duplicate AppendFrom delivery) also invalidates.
	if err := loader.AppendFile("rt", "events_hist", "datestr=2017-03-02", backfillPage(), "part-backfill-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AppendFrom("topic-0", 0, [][]any{{int64(12), "fr"}}, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if n := countSplits(t, hc, handle); n != 3 {
		t.Errorf("after watermark advance: splits = %d, want 3", n)
	}

	// Events for other druid tables must not touch this binding.
	other, err := store.CreateTable("other", []druid.Column{{Name: "x", Type: types.Bigint}})
	if err != nil {
		t.Fatal(err)
	}
	if err := loader.AppendFile("rt", "events_hist", "datestr=2017-03-02", backfillPage(), "part-backfill-2"); err != nil {
		t.Fatal(err)
	}
	if err := other.Ingest([][]any{{int64(1)}}); err != nil {
		t.Fatal(err)
	}
	if n := countSplits(t, hc, handle); n != 3 {
		t.Errorf("foreign-table event invalidated the cache: splits = %d, want stale 3", n)
	}
}

// TestSnapshotVersionFoldsSidesAndBoundary checks the hybrid connector's
// SnapshotVersion moves when either side's data or the boundary moves.
func TestSnapshotVersionFoldsSidesAndBoundary(t *testing.T) {
	ms := metastore.New()
	fs := hdfs.New(hdfs.Config{})
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{{Name: "ts", Type: types.Bigint}, {Name: "country", Type: types.Varchar}}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar})
	pb.AppendRow([]any{int64(1), "us"})
	if err := loader.CreateTable("rt", "events_hist", cols, []*block.Page{pb.Build()}); err != nil {
		t.Fatal(err)
	}
	hiveConn := hive.New("hive", ms, fs, hive.Options{})

	store := druid.NewStore()
	if _, err := store.CreateTable("events", []druid.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
	}); err != nil {
		t.Fatal(err)
	}
	druidConn := druidconn.New("druid", &druid.EmbeddedClient{Store: store})

	reg := connector.NewRegistry()
	reg.Register("hive", hiveConn)
	reg.Register("druid", druidConn)
	hc := New("hybrid", reg)
	if err := hc.AddTable("events", TableConfig{
		Historical: connector.HybridPart{Catalog: "hive", Schema: "rt", Table: "events_hist"},
		Realtime:   connector.HybridPart{Catalog: "druid", Schema: "default", Table: "events"},
		TimeColumn: "ts",
		Boundary:   100,
	}); err != nil {
		t.Fatal(err)
	}

	v0, ok := hc.SnapshotVersion("default", "events")
	if !ok {
		t.Fatal("hybrid table should be versionable over embedded druid + hive")
	}
	// Realtime append moves it.
	rt, _ := store.GetTable("events")
	if err := rt.Ingest([][]any{{int64(101), "us"}}); err != nil {
		t.Fatal(err)
	}
	v1, _ := hc.SnapshotVersion("default", "events")
	if v1 <= v0 {
		t.Errorf("append did not move version: %d -> %d", v0, v1)
	}
	// Historical partition add moves it.
	if err := ms.AddPartition("rt", "events_hist", metastore.Partition{Name: "datestr=2017-03-03", Location: "/p", Sealed: true}); err != nil {
		t.Fatal(err)
	}
	v2, _ := hc.SnapshotVersion("default", "events")
	if v2 <= v1 {
		t.Errorf("partition add did not move version: %d -> %d", v1, v2)
	}
	// Boundary move moves it.
	if err := hc.SetBoundary("events", 200); err != nil {
		t.Fatal(err)
	}
	v3, _ := hc.SnapshotVersion("default", "events")
	if v3 <= v2 {
		t.Errorf("boundary move did not move version: %d -> %d", v2, v3)
	}
	if _, ok := hc.SnapshotVersion("default", "missing"); ok {
		t.Error("missing table should not version")
	}
}
