// Package hybrid implements the batch + real-time table connector: one
// logical table backed by a historical side (typically parquet/hive) and a
// real-time side (druid), split on an event-time watermark. The connector
// only serves metadata — the optimizer expands every hybrid scan into
// union(historical scan, real-time scan) with the boundary predicate on
// each side, so one SQL query transparently spans batch history and
// seconds-old events.
package hybrid

import (
	"encoding/gob"
	"fmt"
	"sync"

	"prestolite/internal/connector"
	"prestolite/internal/druid"
	"prestolite/internal/types"
)

func init() {
	gob.Register(&TableHandle{})
}

// TableConfig declares one hybrid table.
type TableConfig struct {
	Historical connector.HybridPart
	Realtime   connector.HybridPart
	// TimeColumn is the Bigint column the boundary applies to.
	TimeColumn string
	// Boundary is the watermark: historical rows have TimeColumn < Boundary,
	// real-time rows TimeColumn >= Boundary.
	Boundary int64
}

// Connector is the hybrid connector. It resolves table schemas from the
// real-time side (validating the historical side matches) and reports
// HybridSpecs to the optimizer; scans never execute here.
type Connector struct {
	name     string
	schema   string
	catalogs *connector.Registry

	mu     sync.RWMutex
	tables map[string]TableConfig
	// boundaryGen counts watermark moves; folded into SnapshotVersion so a
	// backfill that shifts the boundary invalidates cached results even
	// when neither side's own version moved.
	boundaryGen int64
}

// New creates a hybrid connector resolving parts through the given catalog
// registry.
func New(name string, catalogs *connector.Registry) *Connector {
	return &Connector{name: name, schema: "default", catalogs: catalogs, tables: map[string]TableConfig{}}
}

// AddTable declares a hybrid table. Side schemas are validated lazily at
// GetTable (the parts may not be registered yet).
func (c *Connector) AddTable(table string, cfg TableConfig) error {
	if cfg.TimeColumn == "" {
		return fmt.Errorf("hybrid: table %q needs a time column", table)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.tables[table]; exists {
		return fmt.Errorf("hybrid: table %q already declared", table)
	}
	c.tables[table] = cfg
	return nil
}

// SetBoundary moves a table's watermark (e.g. after a batch backfill
// absorbs older real-time segments).
func (c *Connector) SetBoundary(table string, boundary int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg, ok := c.tables[table]
	if !ok {
		return fmt.Errorf("hybrid: table %q does not exist", table)
	}
	cfg.Boundary = boundary
	c.tables[table] = cfg
	c.boundaryGen++
	return nil
}

// SnapshotVersion implements connector.SnapshotVersioner by folding both
// sides' versions with the boundary generation: the hybrid table's visible
// data changes exactly when one of the three does. ok is false when either
// side's connector cannot report a version.
func (c *Connector) SnapshotVersion(schema, table string) (int64, bool) {
	if schema != c.schema {
		return 0, false
	}
	c.mu.RLock()
	cfg, ok := c.tables[table]
	gen := c.boundaryGen
	c.mu.RUnlock()
	if !ok {
		return 0, false
	}
	sum := gen
	for _, part := range []connector.HybridPart{cfg.Historical, cfg.Realtime} {
		conn, err := c.catalogs.Get(part.Catalog)
		if err != nil {
			return 0, false
		}
		sv, ok := conn.(connector.SnapshotVersioner)
		if !ok {
			return 0, false
		}
		v, ok := sv.SnapshotVersion(part.Schema, part.Table)
		if !ok {
			return 0, false
		}
		sum += v
	}
	return sum, true
}

// HistoricalInvalidator drops cached filesystem state under a directory.
// hive.Connector implements it; the small interface keeps this package from
// importing hive.
type HistoricalInvalidator interface {
	InvalidateLocation(dir string)
}

// BindRealtimeInvalidation wires a druid store's lifecycle events into
// historical-side cache invalidation for one hybrid table: every segment
// seal and ingest-watermark advance (append) on druidTable drops the file
// listings, footers and chunks cached under historicalDir. Without this,
// a backfill landing as segments seal is invisible to the historical side
// until the file-list TTL expires — the staleness window this PR closes.
func BindRealtimeInvalidation(store *druid.Store, druidTable string, inv HistoricalInvalidator, historicalDir string) {
	store.OnChange(func(ev druid.TableEvent) {
		if ev.Table != druidTable {
			return
		}
		if ev.Kind == druid.EventSeal || ev.Kind == druid.EventAppend {
			inv.InvalidateLocation(historicalDir)
		}
	})
}

// TableHandle names a hybrid table plus its resolved spec.
type TableHandle struct {
	Table string
	Spec  connector.HybridSpec
}

// Description implements connector.TableHandle.
func (h *TableHandle) Description() string {
	return fmt.Sprintf("hybrid:%s [%s.%s.%s | %s >= %d | %s.%s.%s]",
		h.Table,
		h.Spec.Historical.Catalog, h.Spec.Historical.Schema, h.Spec.Historical.Table,
		h.Spec.TimeColumn, h.Spec.Boundary,
		h.Spec.Realtime.Catalog, h.Spec.Realtime.Schema, h.Spec.Realtime.Table)
}

// Name implements connector.Connector.
func (c *Connector) Name() string { return c.name }

// Metadata implements connector.Connector.
func (c *Connector) Metadata() connector.Metadata { return (*hybridMetadata)(c) }

// SplitManager implements connector.Connector. Hybrid scans must be
// expanded by the optimizer, so reaching this is a planning bug.
func (c *Connector) SplitManager() connector.SplitManager { return unplanned{c.name} }

// RecordSetProvider implements connector.Connector.
func (c *Connector) RecordSetProvider() connector.RecordSetProvider { return unplanned{c.name} }

// HybridSpec implements connector.HybridTable.
func (c *Connector) HybridSpec(handle connector.TableHandle) (connector.HybridSpec, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return connector.HybridSpec{}, false
	}
	return h.Spec, true
}

var _ connector.HybridTable = (*Connector)(nil)

type hybridMetadata Connector

func (m *hybridMetadata) ListSchemas() ([]string, error) { return []string{m.schema}, nil }

func (m *hybridMetadata) ListTables(schema string) ([]string, error) {
	if schema != m.schema {
		return nil, fmt.Errorf("hybrid: schema %q does not exist", schema)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.tables))
	for name := range m.tables {
		out = append(out, name)
	}
	return out, nil
}

func (m *hybridMetadata) GetTable(schema, table string) (*connector.TableSchema, connector.TableHandle, error) {
	if schema != m.schema {
		return nil, nil, fmt.Errorf("hybrid: schema %q does not exist", schema)
	}
	c := (*Connector)(m)
	c.mu.RLock()
	cfg, ok := c.tables[table]
	c.mu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("hybrid: table %q does not exist", table)
	}
	histCols, err := c.sideColumns(cfg.Historical)
	if err != nil {
		return nil, nil, fmt.Errorf("hybrid: table %q historical side: %w", table, err)
	}
	rtCols, err := c.sideColumns(cfg.Realtime)
	if err != nil {
		return nil, nil, fmt.Errorf("hybrid: table %q real-time side: %w", table, err)
	}
	if err := matchColumns(histCols, rtCols); err != nil {
		return nil, nil, fmt.Errorf("hybrid: table %q sides disagree: %w", table, err)
	}
	tc := -1
	for i, col := range rtCols {
		if col.Name == cfg.TimeColumn {
			tc = i
			break
		}
	}
	if tc < 0 {
		return nil, nil, fmt.Errorf("hybrid: table %q has no time column %q", table, cfg.TimeColumn)
	}
	if rtCols[tc].Type.Kind != types.KindBigint {
		return nil, nil, fmt.Errorf("hybrid: time column %q must be bigint, is %s", cfg.TimeColumn, rtCols[tc].Type)
	}
	spec := connector.HybridSpec{
		Historical: cfg.Historical,
		Realtime:   cfg.Realtime,
		TimeColumn: cfg.TimeColumn,
		Boundary:   cfg.Boundary,
	}
	return &connector.TableSchema{Catalog: c.name, Schema: schema, Table: table, Columns: rtCols},
		&TableHandle{Table: table, Spec: spec}, nil
}

func (c *Connector) sideColumns(part connector.HybridPart) ([]connector.Column, error) {
	conn, err := c.catalogs.Get(part.Catalog)
	if err != nil {
		return nil, err
	}
	schema, _, err := conn.Metadata().GetTable(part.Schema, part.Table)
	if err != nil {
		return nil, err
	}
	return schema.Columns, nil
}

func matchColumns(hist, rt []connector.Column) error {
	if len(hist) != len(rt) {
		return fmt.Errorf("%d historical columns vs %d real-time", len(hist), len(rt))
	}
	for i := range rt {
		if hist[i].Name != rt[i].Name {
			return fmt.Errorf("column %d: %q vs %q", i, hist[i].Name, rt[i].Name)
		}
		if hist[i].Type.String() != rt[i].Type.String() {
			return fmt.Errorf("column %q: %s vs %s", rt[i].Name, hist[i].Type, rt[i].Type)
		}
	}
	return nil
}

// unplanned rejects execution-time calls: hybrid scans exist only between
// analysis and the optimizer's expansion pass.
type unplanned struct{ name string }

func (u unplanned) Splits(connector.TableHandle) ([]connector.Split, error) {
	return nil, fmt.Errorf("%s: hybrid scan was not expanded by the optimizer", u.name)
}

func (u unplanned) CreatePageSource(connector.TableHandle, connector.Split, []int) (connector.PageSource, error) {
	return nil, fmt.Errorf("%s: hybrid scan was not expanded by the optimizer", u.name)
}
