package mysql

import (
	"strings"
	"testing"

	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/core"
	"prestolite/internal/mysqlite"
	"prestolite/internal/types"
)

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	db := mysqlite.New()
	if _, err := db.CreateTable("cities", []mysqlite.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "name", Type: types.Varchar},
	}, "city_id"); err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]any{
		{int64(12), "san francisco"},
		{int64(7), "oakland"},
	} {
		if err := db.Insert("cities", row); err != nil {
			t.Fatal(err)
		}
	}
	e := core.New()
	e.Register("mysql", New("mysql", "prod", db))

	// A second catalog so we can join across systems without data copy.
	mem := memory.New("hadoop")
	if err := mem.CreateTable("rawdata", "trips", []connector.Column{
		{Name: "trip_id", Type: types.Bigint},
		{Name: "city_id", Type: types.Bigint},
	}, nil); err != nil {
		t.Fatal(err)
	}
	rows := [][]any{{int64(1), int64(12)}, {int64(2), int64(7)}, {int64(3), int64(12)}}
	if err := mem.AppendRows("rawdata", "trips", rows); err != nil {
		t.Fatal(err)
	}
	e.Register("hadoop", mem)
	return e
}

func TestMySQLBasicsAndPushdown(t *testing.T) {
	e := newEngine(t)
	s := core.DefaultSession("mysql", "prod")
	res, err := e.Query(s, "SELECT name FROM cities WHERE city_id = 12")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != "san francisco" {
		t.Fatalf("rows = %v", res.Rows())
	}
	plan, err := e.Explain(s, "SELECT name FROM cities WHERE city_id = 12 LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"filter[city_id eq [12]]", "columns=[1]", "limit=1"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	if strings.Contains(plan, "- Filter[") || strings.Contains(plan, "- Limit[") {
		t.Errorf("pushdowns not absorbed:\n%s", plan)
	}
}

func TestCrossCatalogJoinWithoutDataCopy(t *testing.T) {
	// The §IV headline: join warehouse data with MySQL data directly.
	e := newEngine(t)
	s := core.DefaultSession("hadoop", "rawdata")
	res, err := e.Query(s, `SELECT c.name, count(*) AS trips
		FROM hadoop.rawdata.trips t
		JOIN mysql.prod.cities c ON t.city_id = c.city_id
		GROUP BY c.name ORDER BY trips DESC`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != "san francisco" || rows[0][1] != int64(2) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMySQLMetadata(t *testing.T) {
	e := newEngine(t)
	s := core.DefaultSession("mysql", "prod")
	res, err := e.Query(s, "SHOW TABLES FROM mysql.prod")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != "cities" {
		t.Fatalf("rows = %v", res.Rows())
	}
	if _, err := e.Query(s, "SELECT * FROM mysql.wrongschema.cities"); err == nil {
		t.Error("wrong schema accepted")
	}
}
