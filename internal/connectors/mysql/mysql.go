// Package mysql implements the Presto-MySQL connector over the mysqlite
// substrate: unified SQL over the transactional store without data copy
// (§IV: "users could join Hadoop data with MySQL data ... no need to copy
// any data"). Predicates, projections and limits push down so only
// filtered, projected and limited rows stream into the engine.
package mysql

import (
	"encoding/gob"
	"fmt"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/mysqlite"
	"prestolite/internal/types"
)

func init() {
	gob.Register(&TableHandle{})
	gob.Register(&Split{})
	gob.Register(mysqlite.Predicate{})
}

// Connector maps a mysqlite database into the engine under one schema.
type Connector struct {
	name   string
	schema string
	db     *mysqlite.DB
}

// New creates a connector; schema is the single logical schema name.
func New(name, schema string, db *mysqlite.DB) *Connector {
	return &Connector{name: name, schema: schema, db: db}
}

// Name implements connector.Connector.
func (c *Connector) Name() string { return c.name }

// Metadata implements connector.Connector.
func (c *Connector) Metadata() connector.Metadata { return (*mysqlMetadata)(c) }

// SplitManager implements connector.Connector.
func (c *Connector) SplitManager() connector.SplitManager { return (*mysqlSplits)(c) }

// RecordSetProvider implements connector.Connector.
func (c *Connector) RecordSetProvider() connector.RecordSetProvider { return (*mysqlRecords)(c) }

// TableHandle carries pushdown state.
type TableHandle struct {
	Table      string
	Columns    []connector.Column
	Predicates []mysqlite.Predicate
	Projection []int
	Limit      int64
}

// Description implements connector.TableHandle.
func (h *TableHandle) Description() string {
	s := "mysql:" + h.Table
	for _, p := range h.Predicates {
		s += fmt.Sprintf(" filter[%s %s %v]", p.Column, p.Op, p.Values)
	}
	if h.Projection != nil {
		s += fmt.Sprintf(" columns=%v", h.Projection)
	}
	if h.Limit >= 0 {
		s += fmt.Sprintf(" limit=%d", h.Limit)
	}
	return s
}

// Split is the single split (row stores stream one result set).
type Split struct{ Handle *TableHandle }

// Description implements connector.Split.
func (s *Split) Description() string { return "mysql:" + s.Handle.Table }

type mysqlMetadata Connector

func (m *mysqlMetadata) ListSchemas() ([]string, error) { return []string{m.schema}, nil }

func (m *mysqlMetadata) ListTables(schema string) ([]string, error) {
	if schema != m.schema {
		return nil, fmt.Errorf("mysql: schema %q does not exist", schema)
	}
	return m.db.Tables(), nil
}

func (m *mysqlMetadata) GetTable(schema, table string) (*connector.TableSchema, connector.TableHandle, error) {
	if schema != m.schema {
		return nil, nil, fmt.Errorf("mysql: schema %q does not exist", schema)
	}
	t, err := m.db.Table(table)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]connector.Column, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = connector.Column{Name: c.Name, Type: c.Type}
	}
	return &connector.TableSchema{Catalog: m.name, Schema: schema, Table: table, Columns: cols},
		&TableHandle{Table: table, Columns: cols, Limit: -1}, nil
}

type mysqlSplits Connector

func (sm *mysqlSplits) Splits(handle connector.TableHandle) ([]connector.Split, error) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return nil, fmt.Errorf("mysql: foreign table handle %T", handle)
	}
	return []connector.Split{&Split{Handle: h}}, nil
}

type mysqlRecords Connector

func (r *mysqlRecords) CreatePageSource(handle connector.TableHandle, split connector.Split, columns []int) (connector.PageSource, error) {
	c := (*Connector)(r)
	sp, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("mysql: foreign split %T", split)
	}
	h := sp.Handle
	// Resolve requested channels through the pushed projection.
	effective := make([]int, len(columns))
	for i, col := range columns {
		if h.Projection != nil {
			effective[i] = h.Projection[col]
		} else {
			effective[i] = col
		}
	}
	rows, err := c.db.Scan(h.Table, h.Predicates, effective, h.Limit)
	if err != nil {
		return nil, err
	}
	outTypes := make([]*types.Type, len(effective))
	for i, ord := range effective {
		outTypes[i] = h.Columns[ord].Type
	}
	pb := block.NewPageBuilder(outTypes)
	for _, row := range rows {
		pb.AppendRow(row)
	}
	return &connector.SlicePageSource{Pages: []*block.Page{pb.Build()}}, nil
}

// ---------------------------------------------------------------------------
// Pushdowns.

var (
	_ connector.FilterPushdown     = (*Connector)(nil)
	_ connector.ProjectionPushdown = (*Connector)(nil)
	_ connector.LimitPushdown      = (*Connector)(nil)
)

var sqlOps = map[string]string{
	"eq": "eq", "neq": "neq", "lt": "lt", "lte": "lte", "gt": "gt", "gte": "gte",
}

var sqlFlipped = map[string]string{
	"eq": "eq", "neq": "neq", "lt": "gt", "lte": "gte", "gt": "lt", "gte": "lte",
}

// PushFilter lowers supported conjuncts to store predicates.
func (c *Connector) PushFilter(handle connector.TableHandle, predicate expr.RowExpression, schema *connector.TableSchema) (connector.TableHandle, expr.RowExpression, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, predicate, false
	}
	nh := *h
	var residual []expr.RowExpression
	pushed := false
	for _, conj := range conjuncts(predicate) {
		p, ok := lowerPredicate(conj, h.Columns)
		if !ok {
			residual = append(residual, conj)
			continue
		}
		nh.Predicates = append(nh.Predicates, p)
		pushed = true
	}
	if !pushed {
		return handle, predicate, false
	}
	if len(residual) == 0 {
		return &nh, nil, true
	}
	return &nh, expr.And(residual...), true
}

// PushProjection implements connector.ProjectionPushdown.
func (c *Connector) PushProjection(handle connector.TableHandle, columns []int) (connector.TableHandle, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false
	}
	nh := *h
	nh.Projection = append([]int(nil), columns...)
	return &nh, true
}

// PushLimit is guaranteed: a single split applies it globally after all
// pushed predicates.
func (c *Connector) PushLimit(handle connector.TableHandle, limit int64) (connector.TableHandle, bool, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false, false
	}
	nh := *h
	if nh.Limit < 0 || limit < nh.Limit {
		nh.Limit = limit
	}
	return &nh, true, true
}

func conjuncts(e expr.RowExpression) []expr.RowExpression {
	if sf, ok := e.(*expr.SpecialForm); ok && sf.Form == expr.FormAnd {
		var out []expr.RowExpression
		for _, a := range sf.Args {
			out = append(out, conjuncts(a)...)
		}
		return out
	}
	return []expr.RowExpression{e}
}

func lowerPredicate(e expr.RowExpression, cols []connector.Column) (mysqlite.Predicate, bool) {
	colName := func(x expr.RowExpression) (string, bool) {
		v, ok := x.(*expr.Variable)
		if !ok || v.Channel < 0 || v.Channel >= len(cols) {
			return "", false
		}
		return cols[v.Channel].Name, true
	}
	constVal := func(x expr.RowExpression) (any, bool) {
		cst, ok := x.(*expr.Constant)
		if !ok || cst.Value == nil {
			return nil, false
		}
		switch cst.Value.(type) {
		case int64, float64, string, bool:
			return cst.Value, true
		}
		return nil, false
	}
	switch t := e.(type) {
	case *expr.Call:
		op, known := sqlOps[t.Handle.Name]
		if !known || len(t.Args) != 2 {
			return mysqlite.Predicate{}, false
		}
		if name, ok := colName(t.Args[0]); ok {
			if v, ok := constVal(t.Args[1]); ok {
				return mysqlite.Predicate{Column: name, Op: op, Values: []any{v}}, true
			}
		}
		if name, ok := colName(t.Args[1]); ok {
			if v, ok := constVal(t.Args[0]); ok {
				return mysqlite.Predicate{Column: name, Op: sqlFlipped[op], Values: []any{v}}, true
			}
		}
	case *expr.SpecialForm:
		if t.Form == expr.FormIn {
			name, ok := colName(t.Args[0])
			if !ok {
				return mysqlite.Predicate{}, false
			}
			var values []any
			for _, a := range t.Args[1:] {
				v, ok := constVal(a)
				if !ok {
					return mysqlite.Predicate{}, false
				}
				values = append(values, v)
			}
			return mysqlite.Predicate{Column: name, Op: "in", Values: values}, true
		}
	}
	return mysqlite.Predicate{}, false
}
