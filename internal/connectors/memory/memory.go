// Package memory implements an in-memory connector: tables are slices of
// pages. It is the simplest full implementation of the connector SPI and the
// substrate for the quickstart example, supporting predicate, projection and
// limit pushdown so the optimizer paths are exercised even in-memory.
package memory

import (
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

func init() {
	gob.Register(&TableHandle{})
	gob.Register(&Split{})
}

// Connector is an in-memory catalog of schemas and tables.
type Connector struct {
	name string

	mu     sync.RWMutex
	tables map[string]map[string]*table // schema -> table -> data
}

type table struct {
	schema *connector.TableSchema
	pages  []*block.Page
}

// New creates an empty memory connector with the given catalog name.
func New(name string) *Connector {
	return &Connector{name: name, tables: map[string]map[string]*table{}}
}

// CreateTable registers a table with the given columns and data pages.
// Pages must have one block per column.
func (c *Connector) CreateTable(schema, name string, columns []connector.Column, pages []*block.Page) error {
	for _, p := range pages {
		if len(p.Blocks) != len(columns) {
			return fmt.Errorf("memory: page has %d blocks for %d columns", len(p.Blocks), len(columns))
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tables[schema] == nil {
		c.tables[schema] = map[string]*table{}
	}
	c.tables[schema][name] = &table{
		schema: &connector.TableSchema{Catalog: c.name, Schema: schema, Table: name, Columns: columns},
		pages:  pages,
	}
	return nil
}

// AppendRows adds boxed rows to an existing table.
func (c *Connector) AppendRows(schema, name string, rows [][]any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, err := c.lookupLocked(schema, name)
	if err != nil {
		return err
	}
	colTypes := make([]*types.Type, len(t.schema.Columns))
	for i, col := range t.schema.Columns {
		colTypes[i] = col.Type
	}
	pb := block.NewPageBuilder(colTypes)
	for _, r := range rows {
		pb.AppendRow(r)
	}
	t.pages = append(t.pages, pb.Build())
	return nil
}

func (c *Connector) lookupLocked(schema, name string) (*table, error) {
	s, ok := c.tables[schema]
	if !ok {
		return nil, fmt.Errorf("memory: schema %q does not exist", schema)
	}
	t, ok := s[name]
	if !ok {
		return nil, fmt.Errorf("memory: table %s.%s does not exist", schema, name)
	}
	return t, nil
}

// Name implements connector.Connector.
func (c *Connector) Name() string { return c.name }

// Metadata implements connector.Connector.
func (c *Connector) Metadata() connector.Metadata { return (*metadata)(c) }

// SplitManager implements connector.Connector.
func (c *Connector) SplitManager() connector.SplitManager { return (*splitManager)(c) }

// RecordSetProvider implements connector.Connector.
func (c *Connector) RecordSetProvider() connector.RecordSetProvider { return (*recordSet)(c) }

// TableHandle carries the table identity plus pushed-down state.
type TableHandle struct {
	Schema string
	Table  string
	// PredicateJSON is the serialized pushed predicate (channels are table
	// ordinals); empty when none.
	PredicateJSON []byte
	// Projection lists retained table ordinals; nil means all.
	Projection []int
	// Limit is a pushed row limit; negative means none.
	Limit int64
}

// Description implements connector.TableHandle.
func (h *TableHandle) Description() string {
	s := fmt.Sprintf("memory:%s.%s", h.Schema, h.Table)
	if len(h.PredicateJSON) > 0 {
		if e, err := expr.Unmarshal(h.PredicateJSON); err == nil {
			s += fmt.Sprintf(" filter=%s", e)
		}
	}
	if h.Projection != nil {
		s += fmt.Sprintf(" columns=%v", h.Projection)
	}
	if h.Limit >= 0 {
		s += fmt.Sprintf(" limit=%d", h.Limit)
	}
	return s
}

// Split identifies a range of pages of a table.
type Split struct {
	Handle    *TableHandle
	PageStart int
	PageEnd   int
}

// Description implements connector.Split.
func (s *Split) Description() string {
	return fmt.Sprintf("%s pages[%d:%d]", s.Handle.Description(), s.PageStart, s.PageEnd)
}

type metadata Connector

func (m *metadata) ListSchemas() ([]string, error) {
	c := (*Connector)(m)
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for s := range c.tables {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

func (m *metadata) ListTables(schema string) ([]string, error) {
	c := (*Connector)(m)
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.tables[schema]
	if !ok {
		return nil, fmt.Errorf("memory: schema %q does not exist", schema)
	}
	out := make([]string, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Strings(out)
	return out, nil
}

func (m *metadata) GetTable(schema, tableName string) (*connector.TableSchema, connector.TableHandle, error) {
	c := (*Connector)(m)
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, err := c.lookupLocked(schema, tableName)
	if err != nil {
		return nil, nil, err
	}
	return t.schema, &TableHandle{Schema: schema, Table: tableName, Limit: -1}, nil
}

type splitManager Connector

func (sm *splitManager) Splits(handle connector.TableHandle) ([]connector.Split, error) {
	c := (*Connector)(sm)
	h, ok := handle.(*TableHandle)
	if !ok {
		return nil, fmt.Errorf("memory: foreign table handle %T", handle)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, err := c.lookupLocked(h.Schema, h.Table)
	if err != nil {
		return nil, err
	}
	if len(t.pages) == 0 {
		return []connector.Split{&Split{Handle: h, PageStart: 0, PageEnd: 0}}, nil
	}
	// One split per page keeps parallelism simple and deterministic.
	splits := make([]connector.Split, 0, len(t.pages))
	for i := range t.pages {
		splits = append(splits, &Split{Handle: h, PageStart: i, PageEnd: i + 1})
	}
	return splits, nil
}

type recordSet Connector

func (rs *recordSet) CreatePageSource(handle connector.TableHandle, split connector.Split, columns []int) (connector.PageSource, error) {
	c := (*Connector)(rs)
	sp, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("memory: foreign split %T", split)
	}
	h := sp.Handle
	c.mu.RLock()
	t, err := c.lookupLocked(h.Schema, h.Table)
	if err != nil {
		c.mu.RUnlock()
		return nil, err
	}
	pages := t.pages[sp.PageStart:sp.PageEnd]
	c.mu.RUnlock()

	var pred expr.RowExpression
	if len(h.PredicateJSON) > 0 {
		pred, err = expr.Unmarshal(h.PredicateJSON)
		if err != nil {
			return nil, fmt.Errorf("memory: bad pushed predicate: %w", err)
		}
	}

	// The handle's projection remaps table ordinals; `columns` are indexes
	// into the post-projection schema.
	effective := make([]int, len(columns))
	for i, col := range columns {
		if h.Projection != nil {
			effective[i] = h.Projection[col]
		} else {
			effective[i] = col
		}
	}

	out := make([]*block.Page, 0, len(pages))
	remaining := h.Limit
	for _, p := range pages {
		if remaining == 0 {
			break
		}
		if pred != nil {
			positions, err := expr.EvalFilter(pred, p)
			if err != nil {
				return nil, fmt.Errorf("memory: pushed predicate: %w", err)
			}
			if len(positions) == 0 {
				continue
			}
			p = p.Mask(positions)
		}
		if remaining > 0 && int64(p.Count()) > remaining {
			p = p.Region(0, int(remaining))
		}
		if remaining > 0 {
			remaining -= int64(p.Count())
		}
		blocks := make([]block.Block, len(effective))
		for i, ord := range effective {
			blocks[i] = p.Blocks[ord]
		}
		out = append(out, &block.Page{Blocks: blocks, N: p.Count()})
	}
	return &connector.SlicePageSource{Pages: out}, nil
}

// ---------------------------------------------------------------------------
// Pushdown capabilities.

var (
	_ connector.FilterPushdown     = (*Connector)(nil)
	_ connector.ProjectionPushdown = (*Connector)(nil)
	_ connector.LimitPushdown      = (*Connector)(nil)
)

// PushFilter absorbs the full predicate (channels are table ordinals, which
// the page filter evaluates directly against full-width pages).
func (c *Connector) PushFilter(handle connector.TableHandle, predicate expr.RowExpression, schema *connector.TableSchema) (connector.TableHandle, expr.RowExpression, bool) {
	h, ok := handle.(*TableHandle)
	if !ok || h.Projection != nil || h.Limit >= 0 {
		// Keep the simple invariant: filter is pushed before projection and
		// limit (the optimizer runs rules in that order).
		return handle, predicate, false
	}
	data, err := expr.Marshal(predicate)
	if err != nil {
		return handle, predicate, false
	}
	nh := *h
	nh.PredicateJSON = data
	return &nh, nil, true
}

// PushProjection narrows the scan to the given table ordinals.
func (c *Connector) PushProjection(handle connector.TableHandle, columns []int) (connector.TableHandle, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false
	}
	nh := *h
	nh.Projection = append([]int(nil), columns...)
	return &nh, true
}

// PushLimit stops each split after limit rows. Not guaranteed: splits apply
// the limit independently, so the engine keeps its own Limit on top (same
// contract as Presto's per-split limit pushdown).
func (c *Connector) PushLimit(handle connector.TableHandle, limit int64) (connector.TableHandle, bool, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false, false
	}
	nh := *h
	if nh.Limit < 0 || limit < nh.Limit {
		nh.Limit = limit
	}
	return &nh, false, true
}
