package memory

import (
	"errors"
	"io"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

func newConn(t *testing.T) *Connector {
	t.Helper()
	c := New("memory")
	cols := []connector.Column{
		{Name: "id", Type: types.Bigint},
		{Name: "name", Type: types.Varchar},
	}
	if err := c.CreateTable("s", "t", cols, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows("s", "t", [][]any{
		{int64(1), "a"}, {int64(2), "b"}, {int64(3), "c"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows("s", "t", [][]any{{int64(4), "d"}}); err != nil {
		t.Fatal(err)
	}
	return c
}

func drain(t *testing.T, src connector.PageSource) [][]any {
	t.Helper()
	var rows [][]any
	for {
		p, err := src.Next()
		if errors.Is(err, io.EOF) {
			return rows
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p.Count(); i++ {
			rows = append(rows, p.Row(i))
		}
	}
}

func TestMetadataAndSplits(t *testing.T) {
	c := newConn(t)
	schemas, _ := c.Metadata().ListSchemas()
	if len(schemas) != 1 || schemas[0] != "s" {
		t.Fatalf("schemas = %v", schemas)
	}
	tables, _ := c.Metadata().ListTables("s")
	if len(tables) != 1 || tables[0] != "t" {
		t.Fatalf("tables = %v", tables)
	}
	ts, handle, err := c.Metadata().GetTable("s", "t")
	if err != nil || len(ts.Columns) != 2 {
		t.Fatalf("table = %v, %v", ts, err)
	}
	splits, err := c.SplitManager().Splits(handle)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 2 { // one per page
		t.Fatalf("splits = %d", len(splits))
	}
	var rows [][]any
	for _, sp := range splits {
		src, err := c.RecordSetProvider().CreatePageSource(handle, sp, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, drain(t, src)...)
	}
	if len(rows) != 4 || rows[3][1] != "d" {
		t.Fatalf("rows = %v", rows)
	}
	if _, _, err := c.Metadata().GetTable("s", "missing"); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := c.Metadata().ListTables("missing"); err == nil {
		t.Error("missing schema accepted")
	}
}

func TestPushdownsApplyInSource(t *testing.T) {
	c := newConn(t)
	_, handle, _ := c.Metadata().GetTable("s", "t")

	pred := expr.MustCall("gte", expr.NewVariable("id", 0, types.Bigint), expr.NewConstant(int64(3), types.Bigint))
	h2, residual, pushed := c.PushFilter(handle, pred, nil)
	if !pushed || residual != nil {
		t.Fatalf("filter pushdown: pushed=%v residual=%v", pushed, residual)
	}
	h3, pushed := c.PushProjection(h2, []int{1})
	if !pushed {
		t.Fatal("projection pushdown failed")
	}
	h4, guaranteed, pushed := c.PushLimit(h3, 1)
	if !pushed || guaranteed {
		t.Fatalf("limit pushdown: pushed=%v guaranteed=%v", pushed, guaranteed)
	}
	splits, _ := c.SplitManager().Splits(h4)
	var rows [][]any
	for _, sp := range splits {
		src, err := c.RecordSetProvider().CreatePageSource(h4, sp, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, drain(t, src)...)
	}
	// Per-split limit 1: first page contributes "c" (id=3), second "d".
	if len(rows) != 2 || rows[0][0] != "c" || rows[1][0] != "d" {
		t.Fatalf("rows = %v", rows)
	}
	if h4.Description() == "" {
		t.Error("handle description empty")
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := New("m")
	cols := []connector.Column{{Name: "a", Type: types.Bigint}}
	bad := block.NewPage(block.FromValues(types.Bigint, int64(1)), block.FromValues(types.Bigint, int64(2)))
	if err := c.CreateTable("s", "bad", cols, []*block.Page{bad}); err == nil {
		t.Error("mismatched page accepted")
	}
	if err := c.AppendRows("s", "missing", nil); err == nil {
		t.Error("append to missing table accepted")
	}
}
