package hive

import (
	"strings"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/core"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// newWarehouse builds a partitioned nested trips table on simulated HDFS.
func newWarehouse(t *testing.T, opts Options) (*core.Engine, *Connector, *hdfs.NameNode) {
	t.Helper()
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &Loader{MS: ms, FS: nn}

	baseType := types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Varchar},
		types.Field{Name: "city_id", Type: types.Bigint},
	)
	cols := []metastore.Column{
		{Name: "base", Type: baseType},
		{Name: "fare", Type: types.Double},
	}
	mkPage := func(rows ...[]any) *block.Page {
		pb := block.NewPageBuilder([]*types.Type{baseType, types.Double})
		for _, r := range rows {
			pb.AppendRow(r)
		}
		return pb.Build()
	}
	partitions := map[string][]*block.Page{
		"2017-03-02": {mkPage(
			[]any{[]any{"d-1", int64(12)}, 10.5},
			[]any{[]any{"d-2", int64(7)}, 5.0},
		)},
		"2017-03-03": {mkPage(
			[]any{[]any{"d-3", int64(12)}, 7.5},
			[]any{[]any{"d-4", int64(9)}, 30.0},
		)},
	}
	sealed := map[string]bool{"2017-03-02": true, "2017-03-03": true}
	if err := loader.CreatePartitionedTable("rawdata", "trips", cols, "datestr", partitions, sealed); err != nil {
		t.Fatal(err)
	}

	conn := New("hive", ms, nn, opts)
	e := core.New()
	e.Register("hive", conn)
	return e, conn, nn
}

func TestHiveEndToEnd(t *testing.T) {
	e, _, _ := newWarehouse(t, Options{})
	s := core.DefaultSession("hive", "rawdata")

	res, err := e.Query(s, "SELECT count(*) FROM trips")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != int64(4) {
		t.Fatalf("count = %v", res.Rows()[0][0])
	}

	res, err = e.Query(s, `SELECT base.driver_uuid FROM trips
		WHERE datestr = '2017-03-02' AND base.city_id IN (12)`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 || rows[0][0] != "d-1" {
		t.Fatalf("rows = %v", rows)
	}

	res, err = e.Query(s, "SELECT sum(fare) FROM trips WHERE datestr = '2017-03-03'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != 37.5 {
		t.Fatalf("sum = %v", res.Rows()[0][0])
	}
}

func TestPartitionPruning(t *testing.T) {
	e, _, nn := newWarehouse(t, Options{DisableFileListCache: true})
	s := core.DefaultSession("hive", "rawdata")

	before := nn.Counters.ListFilesCalls.Load()
	res, err := e.Query(s, "SELECT fare FROM trips WHERE datestr = '2017-03-02'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
	// Only the matching partition directory should be listed.
	if got := nn.Counters.ListFilesCalls.Load() - before; got != 1 {
		t.Errorf("listFiles calls = %d, want 1 (partition pruning)", got)
	}

	plan, err := e.Explain(s, "SELECT fare FROM trips WHERE datestr = '2017-03-02'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "partition[datestr = 2017-03-02]") {
		t.Errorf("plan missing partition pushdown:\n%s", plan)
	}
	if strings.Contains(plan, "- Filter[") {
		t.Errorf("predicate should be fully absorbed:\n%s", plan)
	}
}

func TestPredicatePushdownIntoReader(t *testing.T) {
	e, _, _ := newWarehouse(t, Options{})
	s := core.DefaultSession("hive", "rawdata")
	plan, err := e.Explain(s, "SELECT fare FROM trips WHERE base.city_id = 12")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "predicate[base.city_id = 12]") {
		t.Errorf("plan missing reader predicate:\n%s", plan)
	}
	res, err := e.Query(s, "SELECT fare FROM trips WHERE base.city_id = 12 ORDER BY fare")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != 7.5 || rows[1][0] != 10.5 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestLegacyReaderModeKeepsResidualFilter(t *testing.T) {
	e, _, _ := newWarehouse(t, Options{UseLegacyReader: true})
	s := core.DefaultSession("hive", "rawdata")
	plan, err := e.Explain(s, "SELECT fare FROM trips WHERE base.city_id = 12")
	if err != nil {
		t.Fatal(err)
	}
	// The legacy reader cannot evaluate predicates while scanning; the
	// engine keeps its Filter.
	if !strings.Contains(plan, "Filter[") {
		t.Errorf("legacy mode should keep the engine filter:\n%s", plan)
	}
	res, err := e.Query(s, "SELECT fare FROM trips WHERE base.city_id = 12 ORDER BY fare")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestReadersAgreeOnResults(t *testing.T) {
	queries := []string{
		"SELECT count(*) FROM trips",
		"SELECT base.driver_uuid FROM trips WHERE base.city_id = 12 ORDER BY 1",
		"SELECT datestr, sum(fare) FROM trips GROUP BY datestr ORDER BY 1",
		"SELECT fare FROM trips WHERE fare > 6.0 ORDER BY fare",
	}
	eNew, _, _ := newWarehouse(t, Options{})
	eOld, _, _ := newWarehouse(t, Options{UseLegacyReader: true})
	s := core.DefaultSession("hive", "rawdata")
	for _, q := range queries {
		r1, err := eNew.Query(s, q)
		if err != nil {
			t.Fatalf("%s (new): %v", q, err)
		}
		r2, err := eOld.Query(s, q)
		if err != nil {
			t.Fatalf("%s (legacy): %v", q, err)
		}
		g1, g2 := r1.Rows(), r2.Rows()
		if len(g1) != len(g2) {
			t.Fatalf("%s: new %v vs legacy %v", q, g1, g2)
		}
		for i := range g1 {
			for j := range g1[i] {
				if g1[i][j] != g2[i][j] {
					t.Errorf("%s row %d: %v vs %v", q, i, g1[i], g2[i])
				}
			}
		}
	}
}

func TestFileListCacheReducesListCalls(t *testing.T) {
	e, conn, nn := newWarehouse(t, Options{})
	s := core.DefaultSession("hive", "rawdata")
	q := "SELECT count(*) FROM trips"
	if _, err := e.Query(s, q); err != nil {
		t.Fatal(err)
	}
	afterFirst := nn.Counters.ListFilesCalls.Load()
	for i := 0; i < 9; i++ {
		if _, err := e.Query(s, q); err != nil {
			t.Fatal(err)
		}
	}
	// Sealed partitions: every subsequent listing is served from cache.
	if got := nn.Counters.ListFilesCalls.Load(); got != afterFirst {
		t.Errorf("listFiles calls grew from %d to %d despite cache", afterFirst, got)
	}
	if hr := conn.FileListCacheMetrics().HitRate(); hr < 0.8 {
		t.Errorf("file list cache hit rate = %.2f", hr)
	}
}

func TestOpenPartitionBypassesCacheAndSeesNewFiles(t *testing.T) {
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &Loader{MS: ms, FS: nn}
	cols := []metastore.Column{{Name: "v", Type: types.Bigint}}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint})
	pb.AppendRow([]any{int64(1)})
	partitions := map[string][]*block.Page{"today": {pb.Build()}}
	// "today" stays open: near-real-time ingestion keeps writing files.
	if err := loader.CreatePartitionedTable("rt", "events", cols, "datestr", partitions, map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	conn := New("hive", ms, nn, Options{})
	e := core.New()
	e.Register("hive", conn)
	s := core.DefaultSession("hive", "rt")

	res, err := e.Query(s, "SELECT count(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != int64(1) {
		t.Fatalf("count = %v", res.Rows()[0][0])
	}

	// Micro-batch ingestion appends a new file to the open partition.
	pb2 := block.NewPageBuilder([]*types.Type{types.Bigint})
	pb2.AppendRow([]any{int64(2)})
	pb2.AppendRow([]any{int64(3)})
	if err := loader.AppendFile("rt", "events", "datestr=today", pb2.Build(), "part-99999"); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(s, "SELECT count(*) FROM events")
	if err != nil {
		t.Fatal(err)
	}
	// Data freshness guaranteed: the new file is visible immediately.
	if res.Rows()[0][0] != int64(3) {
		t.Fatalf("count after ingestion = %v", res.Rows()[0][0])
	}
	if conn.FileListCacheMetrics().Bypasses.Load() == 0 {
		t.Error("open partition should bypass the cache")
	}
}

func TestFooterCacheReducesGetFileInfo(t *testing.T) {
	e, _, nn := newWarehouse(t, Options{})
	s := core.DefaultSession("hive", "rawdata")
	q := "SELECT count(*) FROM trips"
	if _, err := e.Query(s, q); err != nil {
		t.Fatal(err)
	}
	afterFirst := nn.Counters.GetFileInfoCalls.Load()
	for i := 0; i < 9; i++ {
		if _, err := e.Query(s, q); err != nil {
			t.Fatal(err)
		}
	}
	if got := nn.Counters.GetFileInfoCalls.Load(); got != afterFirst {
		t.Errorf("getFileInfo calls grew from %d to %d despite cache", afterFirst, got)
	}
}

func TestSchemaEvolutionAddField(t *testing.T) {
	// Write files with the v1 schema, evolve the table to add a field,
	// query the new field over old data: NULLs (§V.A).
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &Loader{MS: ms, FS: nn}
	v1 := []metastore.Column{{Name: "base", Type: types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Varchar},
	)}}
	pb := block.NewPageBuilder([]*types.Type{v1[0].Type})
	pb.AppendRow([]any{[]any{"d-1"}})
	if err := loader.CreateTable("rawdata", "evolving", v1, []*block.Page{pb.Build()}); err != nil {
		t.Fatal(err)
	}
	// Evolve: add base.rating.
	v2 := []metastore.Column{{Name: "base", Type: types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Varchar},
		types.Field{Name: "rating", Type: types.Double},
	)}}
	if err := ms.EvolveTable("rawdata", "evolving", v2); err != nil {
		t.Fatal(err)
	}
	conn := New("hive", ms, nn, Options{})
	e := core.New()
	e.Register("hive", conn)
	s := core.DefaultSession("hive", "rawdata")
	res, err := e.Query(s, "SELECT base.driver_uuid, base.rating FROM evolving")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 || rows[0][0] != "d-1" || rows[0][1] != nil {
		t.Fatalf("rows = %v", rows)
	}

	// Type change rejected.
	bad := []metastore.Column{{Name: "base", Type: types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Bigint},
	)}}
	if err := ms.EvolveTable("rawdata", "evolving", bad); err == nil {
		t.Error("type change should be rejected")
	}
	// Rename rejected.
	if err := ms.RenameColumn("rawdata", "evolving", "base", "base2"); err == nil {
		t.Error("rename should be rejected")
	}
}

func TestProjectionPushdownVisibleInPlan(t *testing.T) {
	e, _, _ := newWarehouse(t, Options{})
	plan, err := e.Explain(core.DefaultSession("hive", "rawdata"), "SELECT fare FROM trips")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "columns=[1]") {
		t.Errorf("plan missing projection pushdown:\n%s", plan)
	}
	_ = planner.Format
}

func TestDereferencePushdownInPlan(t *testing.T) {
	e, _, _ := newWarehouse(t, Options{})
	s := core.DefaultSession("hive", "rawdata")
	plan, err := e.Explain(s, "SELECT base.driver_uuid, fare FROM trips WHERE base.city_id = 12")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "nestedPaths=[base.driver_uuid fare]") &&
		!strings.Contains(plan, "nestedPaths=") {
		t.Errorf("plan missing nested path pushdown:\n%s", plan)
	}
	// The whole base struct must not be read: the scan outputs only the
	// dotted paths.
	if strings.Contains(plan, "=> [base,") || strings.Contains(plan, "=> [base]") {
		t.Errorf("whole struct still scanned:\n%s", plan)
	}
	res, err := e.Query(s, "SELECT base.driver_uuid, fare FROM trips WHERE base.city_id = 12 ORDER BY fare")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowCount() != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestNestedPathsMixedWithWholeStruct(t *testing.T) {
	// Selecting both a subfield and the whole struct must not push paths
	// incorrectly; results stay consistent.
	e, _, _ := newWarehouse(t, Options{})
	s := core.DefaultSession("hive", "rawdata")
	res, err := e.Query(s, "SELECT base, base.city_id FROM trips WHERE datestr = '2017-03-02' ORDER BY 2")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		structVal := r[0].([]any)
		if structVal[1] != r[1] { // base.city_id field inside the struct
			t.Errorf("struct/deref mismatch: %v vs %v", structVal[1], r[1])
		}
	}
}
