package hive

import (
	"prestolite/internal/block"
	"prestolite/internal/types"
)

// Schema evolution at read time (§V.A): files written under an older schema
// are adapted to the current metastore schema. Fields added since the file
// was written read as NULL; fields removed since are dropped. Matching is by
// name — which is exactly why renames are forbidden.

// evolveBlock adapts a block decoded with the file schema (from) to the
// table schema (to).
func evolveBlock(b block.Block, from, to *types.Type) block.Block {
	if from.Equals(to) {
		return b
	}
	b = block.Unwrap(b)
	n := b.Count()
	if from.Kind != to.Kind {
		// The metastore forbids type changes; a mismatch here means the
		// file predates the table entirely. Read as NULL.
		return nullBlock(to, n)
	}
	switch to.Kind {
	case types.KindRow:
		rb, ok := b.(*block.RowBlock)
		if !ok {
			return evolveBoxed(b, from, to)
		}
		fields := make([]block.Block, len(to.Fields))
		for i, tf := range to.Fields {
			idx := from.FieldIndex(tf.Name)
			if idx < 0 {
				fields[i] = nullBlock(tf.Type, n)
				continue
			}
			fields[i] = evolveBlock(rb.Fields[idx], from.Fields[idx].Type, tf.Type)
		}
		return block.NewRowBlock(n, fields, rb.Nulls)
	case types.KindArray:
		ab, ok := b.(*block.ArrayBlock)
		if !ok {
			return evolveBoxed(b, from, to)
		}
		return &block.ArrayBlock{
			Elements: evolveBlock(ab.Elements, from.Elem, to.Elem),
			Offsets:  ab.Offsets,
			Nulls:    ab.Nulls,
		}
	case types.KindMap:
		mb, ok := b.(*block.MapBlock)
		if !ok {
			return evolveBoxed(b, from, to)
		}
		return &block.MapBlock{
			Keys:    evolveBlock(mb.Keys, from.Key, to.Key),
			Values:  evolveBlock(mb.Values, from.Value, to.Value),
			Offsets: mb.Offsets,
			Nulls:   mb.Nulls,
		}
	default:
		// Primitive type change: forbidden, so treat as absent.
		return nullBlock(to, n)
	}
}

// evolveBoxed is the slow path for encoded blocks: rebuild via boxed values,
// reordering struct fields by name since boxed rows are positional.
func evolveBoxed(b block.Block, from, to *types.Type) block.Block {
	builder := block.NewBuilder(to, b.Count())
	for i := 0; i < b.Count(); i++ {
		builder.Append(evolveValue(b.Value(i), from, to))
	}
	return builder.Build()
}

func evolveValue(v any, from, to *types.Type) any {
	if v == nil || from.Equals(to) {
		return v
	}
	if from.Kind != to.Kind {
		return nil
	}
	switch to.Kind {
	case types.KindRow:
		fields := v.([]any)
		out := make([]any, len(to.Fields))
		for i, tf := range to.Fields {
			idx := from.FieldIndex(tf.Name)
			if idx < 0 {
				out[i] = nil
				continue
			}
			out[i] = evolveValue(fields[idx], from.Fields[idx].Type, tf.Type)
		}
		return out
	case types.KindArray:
		items := v.([]any)
		out := make([]any, len(items))
		for i, it := range items {
			out[i] = evolveValue(it, from.Elem, to.Elem)
		}
		return out
	case types.KindMap:
		entries := v.([][2]any)
		out := make([][2]any, len(entries))
		for i, e := range entries {
			out[i] = [2]any{evolveValue(e[0], from.Key, to.Key), evolveValue(e[1], from.Value, to.Value)}
		}
		return out
	default:
		return nil
	}
}

func nullBlock(t *types.Type, n int) block.Block {
	builder := block.NewBuilder(t, n)
	for i := 0; i < n; i++ {
		builder.AppendNull()
	}
	return builder.Build()
}
