package hive

import (
	"fmt"

	"prestolite/internal/block"
	"prestolite/internal/fsys"
	"prestolite/internal/metastore"
	"prestolite/internal/parquet"
	"prestolite/internal/types"
)

// Loader writes tables into a hive warehouse layout: registers them in the
// metastore and lays files out as <location>/<key>=<value>/part-N on the
// filesystem. Used by examples, tests and the benchmark harness (the
// engine's write path — CTAS — is out of scope for this reproduction; the
// paper's ETL write benchmarks drive the writers directly, as Fig 18-20 do).
type Loader struct {
	MS *metastore.Metastore
	FS fsys.FileSystem
	// Writer selects the file writer; default native.
	UseLegacyWriter bool
	// WriterOptions apply to every file.
	WriterOptions parquet.WriterOptions
}

// CreateTable registers an unpartitioned table and writes its pages as one
// file per page batch.
func (l *Loader) CreateTable(schema, table string, cols []metastore.Column, pages []*block.Page) error {
	location := fmt.Sprintf("/warehouse/%s/%s", schema, table)
	if _, err := l.MS.CreateTable(schema, table, location, cols, nil); err != nil {
		return err
	}
	return l.writeFiles(location, cols, pages)
}

// CreatePartitionedTable registers a table partitioned by one key and
// writes per-partition data. partitions maps partition value → pages;
// sealed marks which partitions are immutable.
func (l *Loader) CreatePartitionedTable(schema, table string, cols []metastore.Column, partitionKey string, partitions map[string][]*block.Page, sealed map[string]bool) error {
	location := fmt.Sprintf("/warehouse/%s/%s", schema, table)
	if _, err := l.MS.CreateTable(schema, table, location, cols, []string{partitionKey}); err != nil {
		return err
	}
	for value, pages := range partitions {
		if err := l.AddPartition(schema, table, partitionKey, value, pages, sealed[value]); err != nil {
			return err
		}
	}
	return nil
}

// AddPartition writes one partition's files and registers it.
func (l *Loader) AddPartition(schema, table, key, value string, pages []*block.Page, isSealed bool) error {
	t, err := l.MS.GetTable(schema, table)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s=%s", key, value)
	dir := t.Location + "/" + name
	if err := l.writeFiles(dir, t.Columns, pages); err != nil {
		return err
	}
	return l.MS.AddPartition(schema, table, metastore.Partition{Name: name, Location: dir, Sealed: isSealed})
}

// AppendFile writes one more file into an existing partition directory
// (simulating near-real-time micro-batch ingestion into open partitions).
func (l *Loader) AppendFile(schema, table, partitionName string, page *block.Page, fileName string) error {
	t, err := l.MS.GetTable(schema, table)
	if err != nil {
		return err
	}
	dir := t.Location
	if partitionName != "" {
		dir += "/" + partitionName
	}
	return l.writeOne(dir+"/"+fileName, t.Columns, []*block.Page{page})
}

func (l *Loader) writeFiles(dir string, cols []metastore.Column, pages []*block.Page) error {
	if len(pages) == 0 {
		// Touch the directory with an empty file so listings succeed.
		w, err := l.FS.Create(dir + "/.keep")
		if err != nil {
			return err
		}
		return w.Close()
	}
	for i, page := range pages {
		if err := l.writeOne(fmt.Sprintf("%s/part-%05d", dir, i), cols, []*block.Page{page}); err != nil {
			return err
		}
	}
	return nil
}

func (l *Loader) writeOne(path string, cols []metastore.Column, pages []*block.Page) error {
	names := make([]string, len(cols))
	colTypes := make([]*types.Type, len(cols))
	for i, c := range cols {
		names[i] = c.Name
		colTypes[i] = c.Type
	}
	schema, err := parquet.NewSchema(names, colTypes)
	if err != nil {
		return err
	}
	w, err := l.FS.Create(path)
	if err != nil {
		return err
	}
	if l.UseLegacyWriter {
		pw, err := parquet.NewLegacyWriter(w, schema, l.WriterOptions)
		if err != nil {
			return err
		}
		for _, p := range pages {
			if err := pw.WritePage(p); err != nil {
				return err
			}
		}
		if err := pw.Close(); err != nil {
			return err
		}
	} else {
		pw, err := parquet.NewNativeWriter(w, schema, l.WriterOptions)
		if err != nil {
			return err
		}
		for _, p := range pages {
			if err := pw.WritePage(p); err != nil {
				return err
			}
		}
		if err := pw.Close(); err != nil {
			return err
		}
	}
	return w.Close()
}
