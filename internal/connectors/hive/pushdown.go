package hive

import (
	"strings"

	"prestolite/internal/connector"
	"prestolite/internal/expr"
	"prestolite/internal/metastore"
	"prestolite/internal/parquet"
	"prestolite/internal/types"
)

// Pushdown capabilities (§IV.A). Predicates arrive as RowExpressions whose
// Variable channels are table ordinals. The connector absorbs:
//   - conjuncts on partition keys            → partition pruning
//   - simple comparisons on primitive leaves → reader-level predicates
//     (stats + dictionary row-group skipping, §V.F/§V.G)
// Everything else is returned as residual for the engine.

var (
	_ connector.FilterPushdown           = (*Connector)(nil)
	_ connector.ProjectionPushdown       = (*Connector)(nil)
	_ connector.LimitPushdown            = (*Connector)(nil)
	_ connector.NestedProjectionPushdown = (*Connector)(nil)
)

// PushNestedPaths implements nested column pruning (§V.D): the scan narrows
// to dotted struct paths, so the reader only decodes the required leaves.
func (c *Connector) PushNestedPaths(handle connector.TableHandle, paths []string) (connector.TableHandle, []connector.Column, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, nil, false
	}
	t, err := c.ms.GetTable(h.Schema, h.Table)
	if err != nil {
		return handle, nil, false
	}
	outCols := make([]connector.Column, len(paths))
	for i, p := range paths {
		typ := typeAtPath(t, p)
		if typ == nil {
			return handle, nil, false
		}
		outCols[i] = connector.Column{Name: p, Type: typ}
	}
	nh := *h
	nh.NestedPaths = append([]string(nil), paths...)
	nh.Projection = nil
	return &nh, outCols, true
}

// typeAtPath resolves a dotted path against the metastore schema
// (struct-field steps only); partition keys resolve as varchar.
func typeAtPath(t *metastore.Table, path string) *types.Type {
	parts := strings.Split(path, ".")
	for _, k := range t.PartitionKeys {
		if k == parts[0] {
			if len(parts) > 1 {
				return nil
			}
			return types.Varchar
		}
	}
	var cur *types.Type
	for _, col := range t.Columns {
		if col.Name == parts[0] {
			cur = col.Type
			break
		}
	}
	if cur == nil {
		return nil
	}
	for _, part := range parts[1:] {
		if cur.Kind != types.KindRow {
			return nil
		}
		idx := cur.FieldIndex(part)
		if idx < 0 {
			return nil
		}
		cur = cur.Fields[idx].Type
	}
	return cur
}

// PushFilter implements connector.FilterPushdown.
func (c *Connector) PushFilter(handle connector.TableHandle, predicate expr.RowExpression, schema *connector.TableSchema) (connector.TableHandle, expr.RowExpression, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, predicate, false
	}
	t, err := c.ms.GetTable(h.Schema, h.Table)
	if err != nil {
		return handle, predicate, false
	}
	partitionKeys := map[string]bool{}
	for _, k := range t.PartitionKeys {
		partitionKeys[k] = true
	}
	// Build the file schema to validate leaf paths.
	names := make([]string, len(t.Columns))
	colTypes := make([]*types.Type, len(t.Columns))
	for i, col := range t.Columns {
		names[i] = col.Name
		colTypes[i] = col.Type
	}
	fileSchema, err := parquet.NewSchema(names, colTypes)
	if err != nil {
		return handle, predicate, false
	}
	all := allColumns(t)

	nh := *h
	var residual []expr.RowExpression
	pushedAny := false
	for _, conj := range splitAnd(predicate) {
		pred, ok := toColumnPredicate(conj, all)
		if !ok {
			residual = append(residual, conj)
			continue
		}
		if partitionKeys[pred.Path] {
			nh.PartitionPreds = append(nh.PartitionPreds, pred)
			pushedAny = true
			continue
		}
		// Data predicates need the new reader (the legacy reader cannot
		// evaluate predicates while scanning, §V.C).
		node := fileSchema.Resolve(pred.Path)
		if node == nil || c.opts.UseLegacyReader {
			residual = append(residual, conj)
			continue
		}
		nh.DataPreds = append(nh.DataPreds, pred)
		pushedAny = true
	}
	if !pushedAny {
		return handle, predicate, false
	}
	if len(residual) == 0 {
		return &nh, nil, true
	}
	return &nh, expr.And(residual...), true
}

// PushProjection implements connector.ProjectionPushdown.
func (c *Connector) PushProjection(handle connector.TableHandle, columns []int) (connector.TableHandle, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false
	}
	nh := *h
	nh.Projection = append([]int(nil), columns...)
	return &nh, true
}

// PushLimit implements connector.LimitPushdown: per-split, not guaranteed.
func (c *Connector) PushLimit(handle connector.TableHandle, limit int64) (connector.TableHandle, bool, bool) {
	h, ok := handle.(*TableHandle)
	if !ok {
		return handle, false, false
	}
	// Only safe when the split applies every pushed predicate itself.
	nh := *h
	if nh.Limit < 0 || limit < nh.Limit {
		nh.Limit = limit
	}
	return &nh, false, true
}

func splitAnd(e expr.RowExpression) []expr.RowExpression {
	if sf, ok := e.(*expr.SpecialForm); ok && sf.Form == expr.FormAnd {
		var out []expr.RowExpression
		for _, a := range sf.Args {
			out = append(out, splitAnd(a)...)
		}
		return out
	}
	return []expr.RowExpression{e}
}

// leafPath extracts a dotted column path from a Variable or a
// Dereference chain rooted at a Variable; returns "" otherwise.
func leafPath(e expr.RowExpression, cols []connector.Column) string {
	switch t := e.(type) {
	case *expr.Variable:
		if t.Channel < 0 || t.Channel >= len(cols) {
			return ""
		}
		return cols[t.Channel].Name
	case *expr.SpecialForm:
		if t.Form != expr.FormDereference {
			return ""
		}
		base := leafPath(t.Args[0], cols)
		if base == "" {
			return ""
		}
		field, ok := t.Args[1].(*expr.Constant)
		if !ok {
			return ""
		}
		name, ok := field.Value.(string)
		if !ok {
			return ""
		}
		return base + "." + name
	}
	return ""
}

var opByName = map[string]parquet.Op{
	"eq": parquet.OpEq, "neq": parquet.OpNeq,
	"lt": parquet.OpLt, "lte": parquet.OpLte,
	"gt": parquet.OpGt, "gte": parquet.OpGte,
}

var flippedOp = map[parquet.Op]parquet.Op{
	parquet.OpEq: parquet.OpEq, parquet.OpNeq: parquet.OpNeq,
	parquet.OpLt: parquet.OpGt, parquet.OpLte: parquet.OpGte,
	parquet.OpGt: parquet.OpLt, parquet.OpGte: parquet.OpLte,
}

// toColumnPredicate converts a conjunct to a simple column predicate:
// col <op> const, const <op> col, or col IN (consts).
func toColumnPredicate(e expr.RowExpression, cols []connector.Column) (parquet.ColumnPredicate, bool) {
	switch t := e.(type) {
	case *expr.Call:
		op, ok := opByName[t.Handle.Name]
		if !ok || len(t.Args) != 2 {
			return parquet.ColumnPredicate{}, false
		}
		if path := leafPath(t.Args[0], cols); path != "" {
			if c, ok := constValue(t.Args[1]); ok {
				return parquet.ColumnPredicate{Path: path, Op: op, Values: []any{c}}, true
			}
		}
		if path := leafPath(t.Args[1], cols); path != "" {
			if c, ok := constValue(t.Args[0]); ok {
				return parquet.ColumnPredicate{Path: path, Op: flippedOp[op], Values: []any{c}}, true
			}
		}
	case *expr.SpecialForm:
		if t.Form == expr.FormIn {
			path := leafPath(t.Args[0], cols)
			if path == "" {
				return parquet.ColumnPredicate{}, false
			}
			var values []any
			for _, arg := range t.Args[1:] {
				c, ok := constValue(arg)
				if !ok {
					return parquet.ColumnPredicate{}, false
				}
				values = append(values, c)
			}
			return parquet.ColumnPredicate{Path: path, Op: parquet.OpIn, Values: values}, true
		}
		if t.Form == expr.FormBetween {
			// col BETWEEN a AND b is not expressible as one ColumnPredicate;
			// the optimizer will have already split it if rewritten, so skip.
			return parquet.ColumnPredicate{}, false
		}
	}
	return parquet.ColumnPredicate{}, false
}

func constValue(e expr.RowExpression) (any, bool) {
	c, ok := e.(*expr.Constant)
	if !ok || c.Value == nil {
		return nil, false
	}
	switch c.Value.(type) {
	case int64, float64, string, bool:
		return c.Value, true
	}
	return nil, false
}
