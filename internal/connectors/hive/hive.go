// Package hive implements the warehouse connector: tables are directories
// of columnar files on a FileSystem (simulated HDFS, local disk, or S3),
// schemas live in the external metastore, and partitions are subdirectories
// keyed like datestr=2017-03-02 (the layout Uber's trips tables use, §II/§V).
//
// The connector exercises the full §IV pushdown surface (predicate,
// projection, limit), routes listFiles through the coordinator file-list
// cache and footer reads through the worker footer cache (§VII), prunes
// partitions from pushed predicates, and reads files with either the legacy
// or the new Parquet reader (§V).
package hive

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/cache"
	"prestolite/internal/connector"
	"prestolite/internal/fsys"
	"prestolite/internal/metastore"
	"prestolite/internal/obs"
	"prestolite/internal/parquet"
	"prestolite/internal/types"
)

func init() {
	gob.Register(&TableHandle{})
	gob.Register(&Split{})
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
}

// Options configures reader strategy and caches.
type Options struct {
	// UseLegacyReader selects the old row-based reader (§V.C) instead of
	// the new columnar reader.
	UseLegacyReader bool
	// Reader toggles each new-reader optimization; zero value = all on.
	Reader ReaderToggles
	// DisableFileListCache turns off §VII.A caching.
	DisableFileListCache bool
	// DisableFooterCache turns off §VII.B caching.
	DisableFooterCache bool
	// DisableChunkCache turns off the worker-local data cache for
	// decompressed column chunks (§VII tier 1).
	DisableChunkCache bool
	// ChunkCacheBytes bounds the chunk cache (default 64 MiB).
	ChunkCacheBytes int64
}

// ReaderToggles disables individual optimizations (all false = everything
// enabled; the ablation benches flip one at a time).
type ReaderToggles struct {
	NoColumnPruning      bool
	NoPredicatePushdown  bool
	NoDictionaryPushdown bool
	NoLazyReads          bool
	NoVectorized         bool
}

// Connector is the hive-style connector.
type Connector struct {
	name string
	ms   *metastore.Metastore
	fs   fsys.FileSystem
	opts Options

	listCache   *cache.FileListCache
	footerCache *cache.FooterCache[footerEntry]
	chunkCache  *cache.ChunkCache
}

type footerEntry struct {
	meta   *parquet.FileMeta
	schema *parquet.Schema
}

// New creates a hive connector over a metastore and filesystem. It
// subscribes to the metastore's change feed: a partition added, sealed or a
// schema evolved invalidates the affected directory across all three cache
// tiers immediately instead of serving stale entries until TTL.
func New(name string, ms *metastore.Metastore, fs fsys.FileSystem, opts Options) *Connector {
	c := &Connector{
		name:        name,
		ms:          ms,
		fs:          fs,
		opts:        opts,
		listCache:   cache.NewFileListCache(fs, 4096, 10*time.Minute),
		footerCache: cache.NewFooterCache[footerEntry](8192, 10*time.Minute),
		chunkCache:  cache.NewChunkCache(opts.ChunkCacheBytes),
	}
	ms.OnChange(func(ch metastore.Change) {
		if ch.Location == "" {
			return
		}
		c.InvalidateLocation(ch.Location)
	})
	return c
}

// InvalidateLocation drops every cache entry under dir: the file listing,
// stat/footer entries for its files, and their decompressed chunks. Also
// called by hybrid-table bindings when the realtime side seals segments
// into this connector's warehouse.
func (c *Connector) InvalidateLocation(dir string) {
	c.listCache.Invalidate(dir)
	c.listCache.InvalidatePrefix(dir)
	c.footerCache.InvalidatePrefix(dir)
	c.chunkCache.InvalidatePrefix(dir)
}

// SnapshotVersion implements connector.SnapshotVersioner from the
// metastore's per-table change version.
func (c *Connector) SnapshotVersion(schema, table string) (int64, bool) {
	return c.ms.TableVersion(schema, table)
}

// FileListCacheMetrics exposes §VII.A cache effectiveness.
func (c *Connector) FileListCacheMetrics() *cache.Metrics { return c.listCache.Metrics }

// FooterCacheMetrics exposes §VII.B cache effectiveness.
func (c *Connector) FooterCacheMetrics() *cache.Metrics { return c.footerCache.FooterMetrics }

// RegisterObsMetrics implements obs.MetricsSource: the §VII cache hit rates
// appear in /v1/stats snapshots and EXPLAIN ANALYZE cache footers.
func (c *Connector) RegisterObsMetrics(reg *obs.Registry) {
	c.listCache.Metrics.RegisterObs(reg, c.name+".cache.file_list")
	c.footerCache.InfoMetrics.RegisterObs(reg, c.name+".cache.file_info")
	c.footerCache.FooterMetrics.RegisterObs(reg, c.name+".cache.footer")
	c.chunkCache.RegisterObs(reg, c.name+".cache.chunk")
}

// ChunkCacheMetrics exposes the tier-1 data cache effectiveness.
func (c *Connector) ChunkCacheMetrics() *cache.Metrics { return &c.chunkCache.Metrics }

// Name implements connector.Connector.
func (c *Connector) Name() string { return c.name }

// Metadata implements connector.Connector.
func (c *Connector) Metadata() connector.Metadata { return (*hiveMetadata)(c) }

// SplitManager implements connector.Connector.
func (c *Connector) SplitManager() connector.SplitManager { return (*hiveSplits)(c) }

// RecordSetProvider implements connector.Connector.
func (c *Connector) RecordSetProvider() connector.RecordSetProvider { return (*hiveRecords)(c) }

// allColumns returns data columns followed by partition-key virtual columns.
func allColumns(t *metastore.Table) []connector.Column {
	out := make([]connector.Column, 0, len(t.Columns)+len(t.PartitionKeys))
	for _, col := range t.Columns {
		out = append(out, connector.Column{Name: col.Name, Type: col.Type})
	}
	for _, k := range t.PartitionKeys {
		out = append(out, connector.Column{Name: k, Type: types.Varchar})
	}
	return out
}

// TableHandle carries table identity plus pushed-down state. Serializable
// for distributed scheduling.
type TableHandle struct {
	Schema string
	Table  string
	// PartitionPreds prune partitions by key value.
	PartitionPreds []parquet.ColumnPredicate
	// DataPreds evaluate inside the reader (§V.F/§V.G).
	DataPreds []parquet.ColumnPredicate
	// Projection lists retained table ordinals (nil = all).
	Projection []int
	// NestedPaths, when set, replaces the scan's output with these dotted
	// struct paths (nested column pruning, §V.D).
	NestedPaths []string
	// Limit is a per-split row limit (-1 = none).
	Limit int64
}

// Description implements connector.TableHandle.
func (h *TableHandle) Description() string {
	s := fmt.Sprintf("hive:%s.%s", h.Schema, h.Table)
	for _, p := range h.PartitionPreds {
		s += fmt.Sprintf(" partition[%s]", p)
	}
	for _, p := range h.DataPreds {
		s += fmt.Sprintf(" predicate[%s]", p)
	}
	if h.Projection != nil {
		s += fmt.Sprintf(" columns=%v", h.Projection)
	}
	if h.NestedPaths != nil {
		s += fmt.Sprintf(" nestedPaths=%v", h.NestedPaths)
	}
	if h.Limit >= 0 {
		s += fmt.Sprintf(" limit=%d", h.Limit)
	}
	return s
}

// Split is one file of one partition.
type Split struct {
	Handle          *TableHandle
	Path            string
	PartitionValues map[string]string
}

// Description implements connector.Split.
func (s *Split) Description() string { return "hive:" + s.Path }

// ---------------------------------------------------------------------------

type hiveMetadata Connector

func (m *hiveMetadata) ListSchemas() ([]string, error) {
	return (*Connector)(m).ms.ListSchemas(), nil
}

func (m *hiveMetadata) ListTables(schema string) ([]string, error) {
	return (*Connector)(m).ms.ListTables(schema), nil
}

func (m *hiveMetadata) GetTable(schema, table string) (*connector.TableSchema, connector.TableHandle, error) {
	t, err := (*Connector)(m).ms.GetTable(schema, table)
	if err != nil {
		return nil, nil, err
	}
	return &connector.TableSchema{
		Catalog: m.name,
		Schema:  schema,
		Table:   table,
		Columns: allColumns(t),
	}, &TableHandle{Schema: schema, Table: table, Limit: -1}, nil
}

// ---------------------------------------------------------------------------

type hiveSplits Connector

func (sm *hiveSplits) Splits(handle connector.TableHandle) ([]connector.Split, error) {
	c := (*Connector)(sm)
	h, ok := handle.(*TableHandle)
	if !ok {
		return nil, fmt.Errorf("hive: foreign table handle %T", handle)
	}
	t, err := c.ms.GetTable(h.Schema, h.Table)
	if err != nil {
		return nil, err
	}
	type partDir struct {
		dir    string
		sealed bool
		values map[string]string
	}
	var dirs []partDir
	if len(t.PartitionKeys) == 0 {
		dirs = append(dirs, partDir{dir: t.Location, sealed: true, values: map[string]string{}})
	} else {
		for _, p := range t.Partitions() {
			values, err := parsePartitionName(p.Name)
			if err != nil {
				return nil, err
			}
			if !partitionMatches(values, h.PartitionPreds) {
				continue // partition pruning from pushed predicates
			}
			dirs = append(dirs, partDir{dir: p.Location, sealed: p.Sealed, values: values})
		}
	}
	var splits []connector.Split
	for _, d := range dirs {
		var files []fsys.FileInfo
		if c.opts.DisableFileListCache {
			files, err = c.fs.ListFiles(d.dir)
		} else {
			files, err = c.listCache.List(d.dir, d.sealed)
		}
		if err != nil {
			return nil, fmt.Errorf("hive: listing %s: %w", d.dir, err)
		}
		for _, f := range files {
			if strings.HasSuffix(f.Path, "/.keep") {
				continue // directory marker, not data
			}
			splits = append(splits, &Split{Handle: h, Path: f.Path, PartitionValues: d.values})
		}
	}
	return splits, nil
}

// parsePartitionName parses "datestr=2017-03-02/region=us" style names.
func parsePartitionName(name string) (map[string]string, error) {
	out := map[string]string{}
	for _, part := range strings.Split(name, "/") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("hive: bad partition name %q", name)
		}
		out[kv[0]] = kv[1]
	}
	return out, nil
}

func partitionMatches(values map[string]string, preds []parquet.ColumnPredicate) bool {
	for _, p := range preds {
		v, ok := values[p.Path]
		if !ok {
			continue
		}
		if !p.MatchBoxed(v) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------

type hiveRecords Connector

func (r *hiveRecords) CreatePageSource(handle connector.TableHandle, split connector.Split, columns []int) (connector.PageSource, error) {
	c := (*Connector)(r)
	sp, ok := split.(*Split)
	if !ok {
		return nil, fmt.Errorf("hive: foreign split %T", split)
	}
	h := sp.Handle
	t, err := c.ms.GetTable(h.Schema, h.Table)
	if err != nil {
		return nil, err
	}
	all := allColumns(t)

	// Map requested post-projection indexes to table ordinals.
	ordinals := make([]int, len(columns))
	for i, col := range columns {
		if h.Projection != nil {
			ordinals[i] = h.Projection[col]
		} else {
			ordinals[i] = col
		}
	}

	// Stat + open the file through the worker caches (§VII.B).
	var file fsys.File
	if c.opts.DisableFooterCache {
		if _, err := c.fs.GetFileInfo(sp.Path); err != nil {
			return nil, err
		}
	} else {
		if _, err := c.footerCache.GetFileInfo(c.fs, sp.Path); err != nil {
			return nil, err
		}
	}
	file, err = c.fs.Open(sp.Path)
	if err != nil {
		return nil, err
	}
	var entry footerEntry
	if c.opts.DisableFooterCache {
		meta, schema, ferr := parquet.ReadFooter(file)
		if ferr != nil {
			_ = file.Close() // already failing: the footer error is the one to report
			return nil, ferr
		}
		entry = footerEntry{meta: meta, schema: schema}
	} else {
		entry, err = c.footerCache.GetFooter(sp.Path, func() (footerEntry, error) {
			meta, schema, err := parquet.ReadFooter(file)
			if err != nil {
				return footerEntry{}, err
			}
			return footerEntry{meta: meta, schema: schema}, nil
		})
		if err != nil {
			_ = file.Close() // already failing: the footer error is the one to report
			return nil, err
		}
	}

	// Partition-key columns come from the split; data columns from the
	// file. Schema evolution (§V.A): columns or struct fields added to the
	// table after this file was written are absent in the file schema —
	// they read as NULL; type layouts are adapted by evolveBlock.
	//
	// With nested paths pushed (§V.D), the scan's "columns" are dotted
	// struct paths instead of whole table columns.
	partKeys := map[string]bool{}
	for _, k := range t.PartitionKeys {
		partKeys[k] = true
	}
	outCols := all
	outName := func(ord int) string { return all[ord].Name }
	isPartKey := func(ord int) bool { return ord >= len(t.Columns) }
	if h.NestedPaths != nil {
		nested := make([]connector.Column, len(h.NestedPaths))
		for i, path := range h.NestedPaths {
			typ := typeAtPath(t, path)
			if typ == nil {
				return nil, fmt.Errorf("hive: nested path %q does not resolve in %s.%s", path, h.Schema, h.Table)
			}
			nested[i] = connector.Column{Name: path, Type: typ}
		}
		outCols = nested
		outName = func(ord int) string { return h.NestedPaths[ord] }
		isPartKey = func(ord int) bool { return partKeys[h.NestedPaths[ord]] }
	}
	var dataPaths []string
	dataSlot := map[int]int{}     // output slot -> index in dataPaths
	missingSlot := map[int]bool{} // output slot -> column absent in file
	for i, ord := range ordinals {
		if isPartKey(ord) {
			continue
		}
		if entry.schema.Resolve(outName(ord)) == nil {
			missingSlot[i] = true
			continue
		}
		dataSlot[i] = len(dataPaths)
		dataPaths = append(dataPaths, outName(ord))
	}
	// Predicates on columns missing from the file never match rows with a
	// non-null requirement... except OpNeq, which still cannot match NULL.
	for _, p := range h.DataPreds {
		if entry.schema.Resolve(p.Path) == nil {
			_ = file.Close() // pruned split: nothing was read, nothing to report
			return &connector.SlicePageSource{}, nil
		}
	}

	src := &pageSource{
		conn:        c,
		split:       sp,
		file:        file,
		ordinals:    ordinals,
		dataSlot:    dataSlot,
		missingSlot: missingSlot,
		allCols:     outCols,
		remaining:   h.Limit,
	}
	if c.opts.UseLegacyReader {
		legacy, err := parquet.NewLegacyReader(file, dataPaths)
		if err != nil {
			_ = file.Close() // already failing: the reader error is the one to report
			return nil, err
		}
		src.nextPage = legacy.Next
		src.fileTypes = legacy.OutputTypes()
		return src, nil
	}
	tog := c.opts.Reader
	opts := parquet.ReaderOptions{
		Columns:            dataPaths,
		Predicate:          h.DataPreds,
		ColumnPruning:      !tog.NoColumnPruning,
		PredicatePushdown:  !tog.NoPredicatePushdown,
		DictionaryPushdown: !tog.NoDictionaryPushdown,
		LazyReads:          !tog.NoLazyReads,
		Vectorized:         !tog.NoVectorized,
	}
	if !c.opts.DisableChunkCache {
		opts.Path = sp.Path
		opts.Chunks = c.chunkCache
	}
	reader, err := parquet.NewReaderWithFooter(file, entry.meta, entry.schema, opts)
	if err != nil {
		_ = file.Close() // already failing: the reader error is the one to report
		return nil, err
	}
	src.nextPage = reader.Next
	src.fileTypes = reader.OutputTypes()
	return src, nil
}

// pageSource adapts a file reader into a connector.PageSource, appending
// partition-key columns and applying the per-split limit.
type pageSource struct {
	conn        *Connector
	split       *Split
	file        fsys.File
	nextPage    func() (*block.Page, error)
	ordinals    []int
	dataSlot    map[int]int
	missingSlot map[int]bool
	fileTypes   []*types.Type
	allCols     []connector.Column
	remaining   int64
	done        bool
}

func (s *pageSource) Next() (*block.Page, error) {
	if s.done || s.remaining == 0 {
		return nil, io.EOF
	}
	p, err := s.nextPage()
	if errors.Is(err, io.EOF) {
		s.done = true
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	if s.remaining > 0 && int64(p.Count()) > s.remaining {
		p = p.Region(0, int(s.remaining))
	}
	if s.remaining > 0 {
		s.remaining -= int64(p.Count())
	}
	blocks := make([]block.Block, len(s.ordinals))
	for i, ord := range s.ordinals {
		if slot, isData := s.dataSlot[i]; isData {
			b := p.Blocks[slot]
			tableType := s.allCols[ord].Type
			if !s.fileTypes[slot].Equals(tableType) {
				b = evolveBlock(b, s.fileTypes[slot], tableType)
			}
			blocks[i] = b
			continue
		}
		if s.missingSlot[i] {
			blocks[i] = nullBlock(s.allCols[ord].Type, p.Count())
			continue
		}
		key := s.allCols[ord].Name
		blocks[i] = block.NewRunLengthBlock(
			block.SingleValue(types.Varchar, s.split.PartitionValues[key]), p.Count())
	}
	return &block.Page{Blocks: blocks, N: p.Count()}, nil
}

func (s *pageSource) Close() error {
	s.done = true
	return s.file.Close()
}
