package resource

import (
	"errors"
	"testing"
	"time"

	"prestolite/internal/obs"
)

func TestPoolHierarchyAccounting(t *testing.T) {
	root := NewPool("root", 1000)
	q1 := root.Child("q1", 500)
	q2 := root.Child("q2", 0)

	if err := q1.TryReserve(300); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if err := q2.TryReserve(200); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if got := root.Reserved(); got != 500 {
		t.Fatalf("root reserved = %d, want 500", got)
	}
	q1.Release(100)
	if got, want := q1.Reserved(), int64(200); got != want {
		t.Fatalf("q1 reserved = %d, want %d", got, want)
	}
	if got, want := root.Reserved(), int64(400); got != want {
		t.Fatalf("root reserved = %d, want %d", got, want)
	}
	// Peak is the high-water mark, unaffected by the release.
	if got, want := q1.Peak(), int64(300); got != want {
		t.Fatalf("q1 peak = %d, want %d", got, want)
	}
	if got, want := root.Peak(), int64(500); got != want {
		t.Fatalf("root peak = %d, want %d", got, want)
	}
}

func TestPoolChildCapNamesChild(t *testing.T) {
	root := NewPool("root", 0)
	q := root.Child("q1", 50)
	err := q.TryReserve(60)
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("want ErrPoolExhausted, got %v", err)
	}
	var ex ExhaustedError
	if !errors.As(err, &ex) || ex.Pool != "q1" {
		t.Fatalf("want exhaustion at pool q1, got %+v", err)
	}
	if root.Reserved() != 0 || q.Reserved() != 0 {
		t.Fatalf("failed reserve leaked: root=%d q=%d", root.Reserved(), q.Reserved())
	}
}

func TestPoolTryReserveRollsBackOnAncestorFailure(t *testing.T) {
	root := NewPool("root", 100)
	q := root.Child("q1", 0)
	if err := q.TryReserve(80); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	err := q.TryReserve(50)
	var ex ExhaustedError
	if !errors.As(err, &ex) || ex.Pool != "root" {
		t.Fatalf("want exhaustion at root, got %v", err)
	}
	// The child level must have been rolled back.
	if got, want := q.Reserved(), int64(80); got != want {
		t.Fatalf("q reserved = %d, want %d", got, want)
	}
	if got, want := root.Reserved(), int64(80); got != want {
		t.Fatalf("root reserved = %d, want %d", got, want)
	}
}

func TestPoolCloseReleasesRemainder(t *testing.T) {
	root := NewPool("root", 1000)
	q := root.Child("q1", 0)
	if err := q.TryReserve(400); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	q.Close()
	if got := root.Reserved(); got != 0 {
		t.Fatalf("root reserved after child close = %d, want 0", got)
	}
}

func TestReserveWithoutKillerFailsTyped(t *testing.T) {
	root := NewPool("root", 100)
	q := root.Child("q1", 0)
	if err := q.Reserve(80); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if err := q.Reserve(50); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("want ErrPoolExhausted, got %v", err)
	}
}

func TestOOMKillerKillsLargestQuery(t *testing.T) {
	reg := obs.NewRegistry()
	kills := reg.Counter("oom_kills")
	root := NewPool("root", 1000)
	root.EnableOOMKiller(kills)
	big := root.Child("big", 0)
	small := root.Child("small", 0)
	if err := big.Reserve(600); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if err := small.Reserve(300); err != nil {
		t.Fatalf("reserve: %v", err)
	}

	// Simulate the big query noticing it was killed and unwinding, as a
	// failing operator's Close would.
	go func() {
		for big.KilledErr() == nil {
			time.Sleep(time.Millisecond)
		}
		big.Close()
	}()

	// small needs 300 more: the root is full, the killer must pick big (the
	// largest reservation) and the blocked reservation then goes through.
	if err := small.Reserve(300); err != nil {
		t.Fatalf("reserve after OOM kill: %v", err)
	}
	if err := big.KilledErr(); !errors.Is(err, ErrQueryKilledOOM) {
		t.Fatalf("big should be OOM-killed, got %v", err)
	}
	if got := kills.Load(); got != 1 {
		t.Fatalf("oom_kills = %d, want 1", got)
	}
	// A killed query's further reservations fail with the kill error.
	if err := big.TryReserve(1); !errors.Is(err, ErrQueryKilledOOM) {
		t.Fatalf("killed pool accepted a reservation: %v", err)
	}
}

func TestOOMKillerKillsRequesterWhenLargest(t *testing.T) {
	root := NewPool("root", 1000)
	root.EnableOOMKiller(nil)
	hog := root.Child("hog", 0)
	other := root.Child("other", 0)
	if err := hog.Reserve(900); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	if err := other.Reserve(50); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	// hog itself asks for more than the root can give: it is the largest
	// reservation, so the killer turns on it immediately — no waiting.
	if err := hog.Reserve(200); !errors.Is(err, ErrQueryKilledOOM) {
		t.Fatalf("want ErrQueryKilledOOM, got %v", err)
	}
	if other.KilledErr() != nil {
		t.Fatalf("innocent query was killed: %v", other.KilledErr())
	}
}

func TestAddSpilledPropagates(t *testing.T) {
	root := NewPool("root", 0)
	q := root.Child("q1", 0)
	q.AddSpilled(123)
	if q.Spilled() != 123 || root.Spilled() != 123 {
		t.Fatalf("spilled: q=%d root=%d, want 123/123", q.Spilled(), root.Spilled())
	}
}
