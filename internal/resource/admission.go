package resource

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"prestolite/internal/fault"
)

// Typed admission errors.
var (
	// ErrQueueFull: the resource group's concurrency slots and its queue are
	// both full (or the group admits nothing). The coordinator maps this to
	// HTTP 429 + Retry-After; the gateway fails the principal over to the
	// next cluster.
	ErrQueueFull = errors.New("resource: admission queue full")
	// ErrQueueTimeout: the query waited longer than the group's
	// MaxQueuedTime without getting a slot.
	ErrQueueTimeout = errors.New("resource: queued past the group's maximum queue time")
)

// GroupConfig describes one resource group (§XII.C: manage the workload,
// don't just raise the limits).
type GroupConfig struct {
	// Name identifies the group (queries pick one with the resource_group
	// session property).
	Name string
	// MaxConcurrency is how many queries of the group run at once. Zero
	// admits nothing: every submission is rejected immediately with
	// ErrQueueFull (a drained/disabled group).
	MaxConcurrency int
	// MaxQueued bounds the FIFO queue behind the running set; submissions
	// past it are rejected with ErrQueueFull.
	MaxQueued int
	// MaxQueuedTime bounds how long one query may sit queued before it is
	// rejected with ErrQueueTimeout. 0 = wait forever.
	MaxQueuedTime time.Duration
	// PerQueryMemory caps each query's memory context when the session does
	// not set query_max_memory. 0 = no per-query cap.
	PerQueryMemory int64
}

// Group is one admission-controlled FIFO queue. Acquire blocks the calling
// query goroutine (the coordinator keeps it in the QUEUED state) until a
// concurrency slot frees up, the wait is cancelled, or it times out.
type Group struct {
	cfg   GroupConfig
	clock fault.Clock

	mu      sync.Mutex
	running int
	queue   []*waiter
}

// waiter is one queued query. granted is closed (under the group lock —
// close never blocks) to hand the slot over; abandoned waiters stay in the
// slice and are skipped at grant time, keeping cancellation O(1).
type waiter struct {
	granted   chan struct{}
	abandoned bool
}

// NewGroup creates a group. clock drives queue timeouts; nil means real
// time (tests pass a ManualClock to bound queued-time deterministically).
func NewGroup(cfg GroupConfig, clock fault.Clock) *Group {
	if clock == nil {
		clock = fault.RealClock{}
	}
	return &Group{cfg: cfg, clock: clock}
}

// Config returns the group's configuration.
func (g *Group) Config() GroupConfig { return g.cfg }

// Running returns the number of queries currently holding slots.
func (g *Group) Running() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.running
}

// Depth returns the number of queries queued (the queue_depth gauge).
func (g *Group) Depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, w := range g.queue {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// Saturated reports whether a new submission right now would be rejected —
// what the coordinator publishes for the gateway's failover decision.
func (g *Group) Saturated() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cfg.MaxConcurrency <= 0 {
		return true
	}
	if g.running < g.cfg.MaxConcurrency && g.queuedLocked() == 0 {
		return false
	}
	return g.queuedLocked() >= g.cfg.MaxQueued
}

func (g *Group) queuedLocked() int {
	n := 0
	for _, w := range g.queue {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// Acquire claims a concurrency slot, queueing FIFO behind the running set.
// cancel, when non-nil, abandons the wait (a client disconnect or query
// kill); the queue stays consistent and the slot goes to the next waiter.
// The returned release function must be called exactly once when the query
// finishes.
func (g *Group) Acquire(cancel <-chan struct{}) (release func(), err error) {
	g.mu.Lock()
	if g.cfg.MaxConcurrency <= 0 {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: group %q admits no queries", ErrQueueFull, g.cfg.Name)
	}
	if g.running < g.cfg.MaxConcurrency && g.queuedLocked() == 0 {
		g.running++
		g.mu.Unlock()
		return g.release, nil
	}
	if g.queuedLocked() >= g.cfg.MaxQueued {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: group %q has %d running and %d queued", ErrQueueFull,
			g.cfg.Name, g.running, g.cfg.MaxQueued)
	}
	w := &waiter{granted: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.mu.Unlock()

	var timeout <-chan time.Time
	if g.cfg.MaxQueuedTime > 0 {
		timeout = g.clock.After(g.cfg.MaxQueuedTime)
	}
	select {
	case <-w.granted:
		return g.release, nil
	case <-cancel:
		return nil, g.abandon(w, fmt.Errorf("resource: query cancelled while queued in group %q", g.cfg.Name))
	case <-timeout:
		return nil, g.abandon(w, fmt.Errorf("%w: group %q after %v", ErrQueueTimeout, g.cfg.Name, g.cfg.MaxQueuedTime))
	}
}

// abandon marks w abandoned; when the grant raced the cancellation, the
// already-granted slot is handed back so no capacity leaks.
func (g *Group) abandon(w *waiter, cause error) error {
	g.mu.Lock()
	select {
	case <-w.granted:
		// The slot was granted concurrently with the cancellation: give it
		// back and pass it on.
		g.running--
		g.grantNextLocked()
		g.mu.Unlock()
		return cause
	default:
	}
	w.abandoned = true
	g.mu.Unlock()
	return cause
}

// release returns a slot and grants the next live waiter.
func (g *Group) release() {
	g.mu.Lock()
	g.running--
	g.grantNextLocked()
	g.mu.Unlock()
}

// grantNextLocked pops abandoned waiters and hands the freed slot to the
// first live one. Called with g.mu held; close() on the grant channel never
// blocks.
func (g *Group) grantNextLocked() {
	for len(g.queue) > 0 {
		w := g.queue[0]
		g.queue[0] = nil
		g.queue = g.queue[1:]
		if w.abandoned {
			continue
		}
		g.running++
		close(w.granted)
		return
	}
}
