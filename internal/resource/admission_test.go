package resource

import (
	"errors"
	"testing"
	"time"

	"prestolite/internal/fault"
)

func TestAdmissionZeroConcurrencyRejects(t *testing.T) {
	g := NewGroup(GroupConfig{Name: "drained", MaxConcurrency: 0, MaxQueued: 10}, nil)
	if _, err := g.Acquire(nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if g.Running() != 0 || g.Depth() != 0 {
		t.Fatalf("rejected acquire mutated state: running=%d depth=%d", g.Running(), g.Depth())
	}
}

func TestAdmissionFIFOAndQueueFull(t *testing.T) {
	g := NewGroup(GroupConfig{Name: "adhoc", MaxConcurrency: 1, MaxQueued: 1}, nil)
	rel1, err := g.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}

	got2 := make(chan error, 1)
	go func() {
		rel2, err := g.Acquire(nil)
		if err == nil {
			defer rel2()
		}
		got2 <- err
	}()
	waitDepth(t, g, 1)

	// Queue is at MaxQueued: the next submission is rejected immediately.
	if _, err := g.Acquire(nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}

	rel1()
	if err := <-got2; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if g.Depth() != 0 {
		t.Fatalf("depth = %d after grant", g.Depth())
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	g := NewGroup(GroupConfig{Name: "adhoc", MaxConcurrency: 1, MaxQueued: 4}, nil)
	rel1, err := g.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}

	cancel := make(chan struct{})
	got := make(chan error, 1)
	go func() {
		_, err := g.Acquire(cancel)
		got <- err
	}()
	waitDepth(t, g, 1)
	close(cancel)
	if err := <-got; err == nil {
		t.Fatal("cancelled acquire returned nil error")
	}
	if g.Depth() != 0 {
		t.Fatalf("depth = %d after cancel", g.Depth())
	}

	// The queue stays consistent: the slot still works end to end.
	rel1()
	rel2, err := g.Acquire(nil)
	if err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	rel2()
	if g.Running() != 0 {
		t.Fatalf("running = %d after release", g.Running())
	}
}

func TestAdmissionQueuedTimeBounded(t *testing.T) {
	clock := fault.NewManualClock(time.Unix(0, 0))
	g := NewGroup(GroupConfig{Name: "adhoc", MaxConcurrency: 1, MaxQueued: 4, MaxQueuedTime: time.Minute}, clock)
	rel1, err := g.Acquire(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The manual clock fires timers instantly, so the queued acquire times
	// out deterministically instead of after a wall-clock minute.
	if _, err := g.Acquire(nil); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("want ErrQueueTimeout, got %v", err)
	}
	if g.Depth() != 0 {
		t.Fatalf("depth = %d after timeout", g.Depth())
	}
	rel1()
	rel2, err := g.Acquire(nil)
	if err != nil {
		t.Fatalf("acquire after timeout: %v", err)
	}
	rel2()
}

func waitDepth(t *testing.T, g *Group, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for g.Depth() != want {
		if time.Now().After(deadline) {
			t.Fatalf("depth = %d, want %d", g.Depth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
