// Package resource implements the cluster's resource-management subsystem:
// hierarchical memory pools with atomic reserve/release and peak tracking,
// spill-to-disk for blocking operators, and admission control with FIFO
// queues per resource group. Together they form the §XII.C degradation
// ladder — account, queue, spill, and only then kill — that replaces the
// hard "Insufficient Resources" failure users complained about.
package resource

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/obs"
)

// Typed sentinels of the degradation ladder. errors.Is works through the
// wrapping the layers add.
var (
	// ErrPoolExhausted: a reservation did not fit a pool's limit. Operators
	// catch it to trigger spilling; when spill is unavailable it surfaces as
	// the classic "Insufficient Resources" failure.
	ErrPoolExhausted = errors.New("resource: memory pool exhausted")
	// ErrQueryKilledOOM: the last rung of the ladder — the OOM killer chose
	// this query (the largest reservation in a pool stuck at its high-water
	// mark) so the rest of the workload could finish.
	ErrQueryKilledOOM = errors.New("resource: query killed by the cluster OOM killer")
)

// ExhaustedError is the concrete error behind ErrPoolExhausted; it names the
// pool that could not fit the reservation so callers can distinguish "the
// query hit its own cap" (spill, don't kill neighbours) from "the shared
// process pool is full" (where the OOM killer may help).
type ExhaustedError struct {
	Pool      string
	Limit     int64
	Requested int64
	Reserved  int64
}

func (e ExhaustedError) Error() string {
	return fmt.Sprintf("resource: pool %q exhausted: %d bytes requested, %d of %d reserved",
		e.Pool, e.Requested, e.Reserved, e.Limit)
}

// Is makes errors.Is(err, ErrPoolExhausted) true.
func (e ExhaustedError) Is(target error) bool { return target == ErrPoolExhausted }

// oomKillWaits bounds how long a reservation blocks for an OOM-killed
// victim to unwind and release its memory before giving up.
const (
	oomKillWaits    = 200
	oomKillWaitStep = time.Millisecond
)

// Pool is one node of the hierarchical memory-pool tree: a process-wide
// worker pool at the root, one child per query (or per task on workers).
// Reserve and Release are atomic and propagate to every ancestor, so the
// root always sees the true aggregate reservation; Peak tracks the
// high-water mark per pool for observability.
type Pool struct {
	name   string
	limit  int64 // 0 = unlimited
	parent *Pool

	reserved atomic.Int64
	peak     atomic.Int64
	spilled  atomic.Int64

	killed atomic.Pointer[killMark]

	mu       sync.Mutex
	children map[*Pool]struct{}

	// Root-only OOM-killer policy (EnableOOMKiller).
	oomKill  atomic.Bool
	oomKills *obs.Counter

	// Root-only time source for the OOM-kill wait loop (SetClock); nil
	// means real time. Pools built by operators mid-query inherit real
	// time, which is fine — the waits they time are never replayed.
	clock fault.Clock
}

// killMark records why a pool was killed (boxed for atomic.Pointer).
type killMark struct{ err error }

// NewPool creates a root pool. limit 0 means unlimited.
func NewPool(name string, limit int64) *Pool {
	return &Pool{name: name, limit: limit, children: map[*Pool]struct{}{}}
}

// Child creates a sub-pool (a per-query or per-task memory context) whose
// reservations also count against this pool. limit 0 inherits no extra cap.
func (p *Pool) Child(name string, limit int64) *Pool {
	c := &Pool{name: name, limit: limit, parent: p, children: map[*Pool]struct{}{}}
	p.mu.Lock()
	p.children[c] = struct{}{}
	p.mu.Unlock()
	return c
}

// EnableOOMKiller turns on the last-resort policy at this (root) pool: when
// a reservation finds the pool stuck at its limit, the child with the
// largest reservation is killed so the rest of the workload can finish.
// kills, when non-nil, counts victims (the oom_kills metric).
func (p *Pool) EnableOOMKiller(kills *obs.Counter) {
	p.oomKills = kills
	p.oomKill.Store(true)
}

// SetClock injects the time source the OOM-kill wait loop sleeps on. Set it
// on the root pool (like EnableOOMKiller); Reserve always consults the root.
func (p *Pool) SetClock(c fault.Clock) {
	if c != nil {
		p.clock = c
	}
}

func (p *Pool) clockOrReal() fault.Clock {
	if p.clock != nil {
		return p.clock
	}
	return fault.RealClock{}
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Limit returns the pool's byte limit (0 = unlimited).
func (p *Pool) Limit() int64 { return p.limit }

// Reserved returns the current reservation.
func (p *Pool) Reserved() int64 { return p.reserved.Load() }

// Peak returns the high-water mark of the reservation.
func (p *Pool) Peak() int64 { return p.peak.Load() }

// Spilled returns the bytes this pool's operators have spilled to disk.
func (p *Pool) Spilled() int64 { return p.spilled.Load() }

// AddSpilled records n bytes spilled on behalf of this pool (and its
// ancestors, so the root aggregates cluster-wide spill volume).
func (p *Pool) AddSpilled(n int64) {
	for q := p; q != nil; q = q.parent {
		q.spilled.Add(n)
	}
}

// KilledErr returns the OOM-kill error when this pool (or an ancestor) has
// been killed, nil otherwise.
func (p *Pool) KilledErr() error {
	for q := p; q != nil; q = q.parent {
		if m := q.killed.Load(); m != nil {
			return m.err
		}
	}
	return nil
}

// kill marks the pool killed; reservations against it (and its descendants)
// fail with err from now on.
func (p *Pool) kill(err error) {
	p.killed.CompareAndSwap(nil, &killMark{err: err})
}

// TryReserve atomically reserves n bytes against this pool and every
// ancestor. On failure nothing stays reserved and the returned error is an
// ExhaustedError naming the pool that did not fit (or the kill error when
// the query has been OOM-killed).
func (p *Pool) TryReserve(n int64) error {
	if n <= 0 {
		return nil
	}
	if err := p.KilledErr(); err != nil {
		return err
	}
	for q := p; q != nil; q = q.parent {
		if err := q.reserveLocal(n); err != nil {
			// Roll back the levels already reserved.
			for r := p; r != q; r = r.parent {
				r.reserved.Add(-n)
			}
			return err
		}
	}
	return nil
}

// reserveLocal reserves n at this level only (CAS against the limit).
func (p *Pool) reserveLocal(n int64) error {
	for {
		cur := p.reserved.Load()
		next := cur + n
		if p.limit > 0 && next > p.limit {
			return ExhaustedError{Pool: p.name, Limit: p.limit, Requested: n, Reserved: cur}
		}
		if p.reserved.CompareAndSwap(cur, next) {
			for {
				peak := p.peak.Load()
				if next <= peak || p.peak.CompareAndSwap(peak, next) {
					return nil
				}
			}
		}
	}
}

// Reserve reserves n bytes, escalating to the root's OOM killer when the
// shared pool is the one that is full: the killer marks the largest child
// dead and this reservation waits (bounded) for the victim's memory to come
// back. A caller whose own query is the largest is killed itself and gets
// ErrQueryKilledOOM immediately. Operators use TryReserve + spill first and
// Reserve as the last resort, which is exactly the §XII.C ladder.
func (p *Pool) Reserve(n int64) error {
	err := p.TryReserve(n)
	if err == nil || !errors.Is(err, ErrPoolExhausted) {
		return err
	}
	root := p.root()
	var ex ExhaustedError
	if !root.oomKill.Load() || !errors.As(err, &ex) || ex.Pool != root.name {
		return err
	}
	clock := root.clockOrReal()
	for i := 0; i < oomKillWaits; i++ {
		if killErr := root.oomKillFor(p); killErr != nil {
			return killErr
		}
		clock.Sleep(oomKillWaitStep)
		err = p.TryReserve(n)
		if err == nil || !errors.Is(err, ErrPoolExhausted) {
			return err
		}
	}
	return err
}

// Release returns n bytes to this pool and every ancestor.
func (p *Pool) Release(n int64) {
	if n <= 0 {
		return
	}
	for q := p; q != nil; q = q.parent {
		q.reserved.Add(-n)
	}
}

// Close releases whatever the pool still holds and detaches it from its
// parent. Call it when the query (or task) finishes, so leaked reservations
// from failed operators cannot poison the shared pool.
func (p *Pool) Close() {
	rem := p.reserved.Swap(0)
	if rem > 0 {
		for q := p.parent; q != nil; q = q.parent {
			q.reserved.Add(-rem)
		}
	}
	if p.parent != nil {
		p.parent.mu.Lock()
		delete(p.parent.children, p)
		p.parent.mu.Unlock()
	}
}

func (p *Pool) root() *Pool {
	q := p
	for q.parent != nil {
		q = q.parent
	}
	return q
}

// topAncestorBelow returns the ancestor of p that is a direct child of
// root (p itself when it is one).
func (p *Pool) topAncestorBelow(root *Pool) *Pool {
	q := p
	for q.parent != nil && q.parent != root {
		q = q.parent
	}
	return q
}

// oomKillFor runs one round of the OOM policy on behalf of a blocked
// reservation originating at origin: pick the live child with the largest
// reservation; if it is the origin's own query, kill it and return the
// error for the caller to propagate, otherwise kill it (once) and return
// nil so the caller can wait for the memory to come back.
func (p *Pool) oomKillFor(origin *Pool) error {
	originTop := origin.topAncestorBelow(p)
	p.mu.Lock()
	var victim *Pool
	var victimSize int64
	for c := range p.children {
		if c.killed.Load() != nil {
			continue // already dying; let it unwind
		}
		if sz := c.reserved.Load(); victim == nil || sz > victimSize ||
			(sz == victimSize && c.name < victim.name) {
			victim, victimSize = c, sz
		}
	}
	p.mu.Unlock()
	if victim == nil || victimSize == 0 {
		// Everything sizable is already unwinding (or nothing is reserved);
		// waiting is the only option.
		return nil
	}
	killErr := fmt.Errorf("%w: %s held %d bytes of pool %s (limit %d)",
		ErrQueryKilledOOM, victim.name, victimSize, p.name, p.limit)
	victim.kill(killErr)
	if p.oomKills != nil {
		p.oomKills.Inc()
	}
	if victim == originTop {
		return killErr
	}
	return nil
}
