package resource

import (
	"errors"
	"io"
	"os"
	"reflect"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

func testPage(t *testing.T, rows ...[]any) *block.Page {
	t.Helper()
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar})
	for _, r := range rows {
		pb.AppendRow(r)
	}
	return pb.Build()
}

func TestSpillRunRoundTrip(t *testing.T) {
	m, err := NewSpillManager(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.NewRun("sort")
	if err != nil {
		t.Fatal(err)
	}
	p1 := testPage(t, []any{int64(1), "a"}, []any{int64(2), "b"})
	p2 := testPage(t, []any{int64(3), nil})
	if err := w.WritePage(p1); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePage(p2); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Pages() != 2 || run.Bytes() <= 0 {
		t.Fatalf("run pages=%d bytes=%d", run.Pages(), run.Bytes())
	}
	if got := m.UsedBytes(); got != run.Bytes() {
		t.Fatalf("used = %d, want %d", got, run.Bytes())
	}
	if got := m.LiveRuns(); len(got) != 1 {
		t.Fatalf("live runs = %v, want 1", got)
	}

	rr, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	for {
		p, err := rr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p.Count(); i++ {
			rows = append(rows, p.Row(i))
		}
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
	want := [][]any{{int64(1), "a"}, {int64(2), "b"}, {int64(3), nil}}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}

	run.Remove()
	run.Remove() // idempotent
	if got := m.LiveRuns(); len(got) != 0 {
		t.Fatalf("live runs after remove = %v", got)
	}
	if got := m.UsedBytes(); got != 0 {
		t.Fatalf("used after remove = %d", got)
	}
	entries, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir not empty after remove: %v", entries)
	}
}

func TestSpillBudgetExhaustedAbandons(t *testing.T) {
	m, err := NewSpillManager(t.TempDir(), 16) // too small for any page frame
	if err != nil {
		t.Fatal(err)
	}
	w, err := m.NewRun("join-build")
	if err != nil {
		t.Fatal(err)
	}
	err = w.WritePage(testPage(t, []any{int64(1), "payload payload payload"}))
	if !errors.Is(err, ErrSpillBudgetExhausted) {
		t.Fatalf("want ErrSpillBudgetExhausted, got %v", err)
	}
	w.Abandon()
	if got := m.LiveRuns(); len(got) != 0 {
		t.Fatalf("abandoned run still live: %v", got)
	}
	if got := m.UsedBytes(); got != 0 {
		t.Fatalf("used after abandon = %d", got)
	}
}

func TestSpillRemoveAll(t *testing.T) {
	m, err := NewSpillManager(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w, err := m.NewRun("agg")
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePage(testPage(t, []any{int64(i), "x"})); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.LiveRuns(); len(got) != 3 {
		t.Fatalf("live runs = %v, want 3", got)
	}
	m.RemoveAll()
	if got := m.LiveRuns(); len(got) != 0 {
		t.Fatalf("live runs after RemoveAll = %v", got)
	}
	entries, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir not empty after RemoveAll: %v", entries)
	}
}
