package resource

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"prestolite/internal/block"
	"prestolite/internal/fsys"
	"prestolite/internal/obs"
	"prestolite/internal/snappy"
)

// ErrSpillBudgetExhausted: the spill disk budget is gone; the degradation
// ladder falls back to the "Insufficient Resources" failure (or the OOM
// killer) from here.
var ErrSpillBudgetExhausted = errors.New("resource: spill disk budget exhausted")

// SpillManager hands out spill runs — temp files of snappy-compressed page
// frames under one node-local directory — and tracks the disk budget plus
// the set of live runs (so tests can assert nothing leaks). Spill files are
// written and read through internal/fsys; they are node-local scratch, so
// deletion uses the OS directly.
type SpillManager struct {
	dir    string
	fs     *fsys.Local
	budget int64 // bytes on disk across all live runs; 0 = unlimited
	used   atomic.Int64
	seq    atomic.Int64

	spills       *obs.Counter // runs written
	spilledBytes *obs.Counter // compressed bytes written

	mu   sync.Mutex
	live map[string]struct{} // relative paths of live run files
}

// NewSpillManager creates a manager rooted at dir (created if missing).
// budget 0 means unlimited disk.
func NewSpillManager(dir string, budget int64) (*SpillManager, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resource: spill dir %s: %w", dir, err)
	}
	return &SpillManager{dir: dir, fs: fsys.NewLocal(dir), budget: budget, live: map[string]struct{}{}}, nil
}

// SetCounters wires the spills / spilled_bytes metrics (either may be nil).
func (m *SpillManager) SetCounters(spills, spilledBytes *obs.Counter) {
	m.spills = spills
	m.spilledBytes = spilledBytes
}

// Dir returns the spill directory.
func (m *SpillManager) Dir() string { return m.dir }

// UsedBytes returns the bytes currently on disk across live runs.
func (m *SpillManager) UsedBytes() int64 { return m.used.Load() }

// LiveRuns returns the relative paths of runs not yet removed, sorted —
// the leak-check hook: after a query (or the whole suite) finishes it must
// be empty.
func (m *SpillManager) LiveRuns() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.live))
	for p := range m.live {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// RemoveAll force-removes every live run (worker shutdown: no task will
// read them again).
func (m *SpillManager) RemoveAll() {
	m.mu.Lock()
	paths := make([]string, 0, len(m.live))
	for p := range m.live {
		paths = append(paths, p)
	}
	m.live = map[string]struct{}{}
	m.mu.Unlock()
	for _, p := range paths {
		_ = os.Remove(filepath.Join(m.dir, p)) // best-effort scratch cleanup on shutdown
	}
	m.used.Store(0)
}

// NewRun opens a run writer. tag names the spilling operator (it becomes
// part of the file name, for debuggability).
func (m *SpillManager) NewRun(tag string) (*RunWriter, error) {
	name := fmt.Sprintf("spill-%s-%d.run", sanitizeTag(tag), m.seq.Add(1))
	w, err := m.fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("resource: creating spill run: %w", err)
	}
	m.mu.Lock()
	m.live[name] = struct{}{}
	m.mu.Unlock()
	if m.spills != nil {
		m.spills.Inc()
	}
	return &RunWriter{m: m, name: name, w: w}, nil
}

// sanitizeTag keeps spill file names filesystem-safe.
func sanitizeTag(tag string) string {
	out := make([]byte, 0, len(tag))
	for i := 0; i < len(tag); i++ {
		c := tag[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// RunWriter streams page frames into one spill file. Frames are
// [uvarint compressed length][snappy(EncodePage)].
type RunWriter struct {
	m       *SpillManager
	name    string
	w       io.WriteCloser
	written int64
	scratch []byte
	pages   int
}

// WritePage appends one page frame, charging the disk budget. On a budget
// miss nothing is written and ErrSpillBudgetExhausted is returned; the
// caller abandons the run (Abandon) and falls back up the ladder.
func (w *RunWriter) WritePage(p *block.Page) error {
	data, err := block.EncodePage(p)
	if err != nil {
		return fmt.Errorf("resource: encoding spill page: %w", err)
	}
	w.scratch = snappy.Encode(w.scratch, data)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(w.scratch)))
	frame := int64(n + len(w.scratch))
	used := w.m.used.Add(frame)
	if w.m.budget > 0 && used > w.m.budget {
		w.m.used.Add(-frame)
		return fmt.Errorf("%w: %d bytes used of %d", ErrSpillBudgetExhausted, w.m.used.Load(), w.m.budget)
	}
	if _, err := w.w.Write(hdr[:n]); err != nil {
		w.m.used.Add(-frame)
		return fmt.Errorf("resource: writing spill frame: %w", err)
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		w.m.used.Add(-frame)
		return fmt.Errorf("resource: writing spill frame: %w", err)
	}
	w.written += frame
	w.pages++
	if w.m.spilledBytes != nil {
		w.m.spilledBytes.Add(frame)
	}
	return nil
}

// Finish seals the run for reading.
func (w *RunWriter) Finish() (*Run, error) {
	if err := w.w.Close(); err != nil {
		return nil, fmt.Errorf("resource: closing spill run: %w", err)
	}
	return &Run{m: w.m, name: w.name, bytes: w.written, pages: w.pages}, nil
}

// Abandon closes and removes a half-written run (spill failed midway).
func (w *RunWriter) Abandon() {
	_ = w.w.Close() // already abandoning; nothing to report to
	w.m.remove(w.name, w.written)
}

// Run is one sealed spill file.
type Run struct {
	m     *SpillManager
	name  string
	bytes int64
	pages int
}

// Bytes returns the run's on-disk size.
func (r *Run) Bytes() int64 { return r.bytes }

// Pages returns the number of page frames in the run.
func (r *Run) Pages() int { return r.pages }

// Open starts a sequential read of the run's pages.
func (r *Run) Open() (*RunReader, error) {
	f, err := r.m.fs.Open(r.name)
	if err != nil {
		return nil, fmt.Errorf("resource: opening spill run: %w", err)
	}
	return &RunReader{
		f:  f,
		br: bufio.NewReaderSize(io.NewSectionReader(f, 0, f.Size()), 64<<10),
	}, nil
}

// Remove deletes the run file and returns its bytes to the disk budget.
// Idempotent: double removal is a no-op.
func (r *Run) Remove() {
	if r.m.remove(r.name, r.bytes) {
		r.bytes = 0
	}
}

// remove drops name from the live set and the budget; reports whether the
// run was still live.
func (m *SpillManager) remove(name string, bytes int64) bool {
	m.mu.Lock()
	_, ok := m.live[name]
	delete(m.live, name)
	m.mu.Unlock()
	if !ok {
		return false
	}
	m.used.Add(-bytes)
	_ = os.Remove(filepath.Join(m.dir, name)) // best-effort local scratch removal
	return true
}

// RunReader iterates a run's pages in write order.
type RunReader struct {
	f       fsys.File
	br      *bufio.Reader
	scratch []byte
}

// Next returns the next page, io.EOF at the end.
func (rr *RunReader) Next() (*block.Page, error) {
	n, err := binary.ReadUvarint(rr.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("resource: reading spill frame header: %w", err)
	}
	if cap(rr.scratch) < int(n) {
		rr.scratch = make([]byte, n)
	}
	rr.scratch = rr.scratch[:n]
	if _, err := io.ReadFull(rr.br, rr.scratch); err != nil {
		return nil, fmt.Errorf("resource: reading spill frame: %w", err)
	}
	data, err := snappy.Decode(nil, rr.scratch)
	if err != nil {
		return nil, fmt.Errorf("resource: decompressing spill frame: %w", err)
	}
	p, err := block.DecodePage(data)
	if err != nil {
		return nil, fmt.Errorf("resource: decoding spill page: %w", err)
	}
	return p, nil
}

// Close releases the underlying file.
func (rr *RunReader) Close() error { return rr.f.Close() }
