// Package hdfs simulates a Hadoop Distributed File System: an in-memory
// NameNode (namespace + metadata RPCs) and DataNode (block contents). The
// simulation is behavioral, not byte-level: what matters for the paper's
// experiments is that ListFiles and GetFileInfo are *remote calls with
// per-call latency and counters* — the quantities the file-list and footer
// caches of §VII reduce — and that the NameNode can be degraded to reproduce
// the "listFiles stuck" incident of §XII.D.
package hdfs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/fsys"
)

// Counters tracks NameNode/DataNode RPC volume.
type Counters struct {
	ListFilesCalls   atomic.Int64
	GetFileInfoCalls atomic.Int64
	OpenCalls        atomic.Int64
	BytesRead        atomic.Int64
}

// Config tunes the simulation.
type Config struct {
	// ListFilesLatency is charged per ListFiles RPC.
	ListFilesLatency time.Duration
	// GetFileInfoLatency is charged per GetFileInfo RPC.
	GetFileInfoLatency time.Duration
	// ReadLatency is charged per ReadAt call (seek + fetch).
	ReadLatency time.Duration
}

// NameNode is the simulated filesystem. It implements fsys.FileSystem.
type NameNode struct {
	cfg Config

	mu    sync.RWMutex
	files map[string][]byte // path -> content

	// Counters are exported for experiments.
	Counters Counters

	// degraded multiplies metadata latencies (the §XII.D incident).
	degraded atomic.Int64 // multiplier-1; 0 = healthy
}

// New creates an empty simulated HDFS.
func New(cfg Config) *NameNode {
	return &NameNode{cfg: cfg, files: map[string][]byte{}}
}

// Degrade multiplies metadata RPC latency by factor (>=1). Factor 1 restores
// health.
func (n *NameNode) Degrade(factor int) {
	if factor < 1 {
		factor = 1
	}
	n.degraded.Store(int64(factor - 1))
}

func (n *NameNode) metaSleep(base time.Duration) {
	if base <= 0 {
		return
	}
	mult := time.Duration(n.degraded.Load() + 1)
	time.Sleep(base * mult)
}

func clean(p string) string {
	return strings.TrimSuffix(strings.TrimPrefix(p, "/"), "/")
}

// ListFiles implements fsys.FileSystem: one NameNode RPC.
func (n *NameNode) ListFiles(dir string) ([]fsys.FileInfo, error) {
	n.Counters.ListFilesCalls.Add(1)
	n.metaSleep(n.cfg.ListFilesLatency)
	dir = clean(dir)
	prefix := dir + "/"
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []fsys.FileInfo
	seenDir := false
	for path, data := range n.files {
		if !strings.HasPrefix(path, prefix) {
			continue
		}
		seenDir = true
		rest := path[len(prefix):]
		if strings.Contains(rest, "/") {
			continue // deeper level
		}
		out = append(out, fsys.FileInfo{Path: "/" + path, Size: int64(len(data))})
	}
	if !seenDir {
		return nil, fmt.Errorf("hdfs: directory %q does not exist", dir)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// ListDirs lists immediate subdirectories (used for partition discovery).
func (n *NameNode) ListDirs(dir string) ([]string, error) {
	n.Counters.ListFilesCalls.Add(1)
	n.metaSleep(n.cfg.ListFilesLatency)
	dir = clean(dir)
	prefix := dir + "/"
	n.mu.RLock()
	defer n.mu.RUnlock()
	seen := map[string]bool{}
	for path := range n.files {
		if !strings.HasPrefix(path, prefix) {
			continue
		}
		rest := path[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			seen[rest[:i]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

// GetFileInfo implements fsys.FileSystem: one NameNode RPC.
func (n *NameNode) GetFileInfo(path string) (fsys.FileInfo, error) {
	n.Counters.GetFileInfoCalls.Add(1)
	n.metaSleep(n.cfg.GetFileInfoLatency)
	n.mu.RLock()
	defer n.mu.RUnlock()
	data, ok := n.files[clean(path)]
	if !ok {
		return fsys.FileInfo{}, fmt.Errorf("hdfs: file %q does not exist", path)
	}
	return fsys.FileInfo{Path: path, Size: int64(len(data))}, nil
}

// Open implements fsys.FileSystem.
func (n *NameNode) Open(path string) (fsys.File, error) {
	n.Counters.OpenCalls.Add(1)
	n.metaSleep(n.cfg.GetFileInfoLatency)
	n.mu.RLock()
	data, ok := n.files[clean(path)]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q does not exist", path)
	}
	return &hdfsFile{nn: n, data: data}, nil
}

// Create implements fsys.FileSystem: buffered until Close.
func (n *NameNode) Create(path string) (io.WriteCloser, error) {
	return &hdfsWriter{nn: n, path: clean(path)}, nil
}

// Delete removes a file.
func (n *NameNode) Delete(path string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.files, clean(path))
}

type hdfsFile struct {
	nn   *NameNode
	data []byte
}

func (f *hdfsFile) ReadAt(p []byte, off int64) (int, error) {
	if f.nn.cfg.ReadLatency > 0 {
		time.Sleep(f.nn.cfg.ReadLatency)
	}
	if off >= int64(len(f.data)) {
		return 0, fmt.Errorf("hdfs: read past end (off %d, size %d)", off, len(f.data))
	}
	n := copy(p, f.data[off:])
	f.nn.Counters.BytesRead.Add(int64(n))
	if n < len(p) {
		return n, fmt.Errorf("hdfs: short read")
	}
	return n, nil
}

func (f *hdfsFile) Close() error { return nil }
func (f *hdfsFile) Size() int64  { return int64(len(f.data)) }

type hdfsWriter struct {
	nn   *NameNode
	path string
	buf  []byte
}

func (w *hdfsWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *hdfsWriter) Close() error {
	w.nn.mu.Lock()
	defer w.nn.mu.Unlock()
	w.nn.files[w.path] = w.buf
	return nil
}

// ---------------------------------------------------------------------------
// Observer NameNode (§VII: "one [effort] is to roll out HDFS Observer
// NameNode in production"): a read-only replica that serves metadata reads
// (ListFiles / GetFileInfo / Open), offloading the active NameNode. Writes
// still go to the active node and replicate synchronously (this simulation
// shares the namespace map, so reads are always consistent).

// Observer is a read-routing view over a NameNode with its own RPC counters
// and latency profile.
type Observer struct {
	active *NameNode
	cfg    Config

	// Counters tracks reads served by the observer instead of the active
	// NameNode.
	Counters Counters
}

// NewObserver attaches an observer to an active NameNode.
func NewObserver(active *NameNode, cfg Config) *Observer {
	return &Observer{active: active, cfg: cfg}
}

func (o *Observer) metaSleep(base time.Duration) {
	if base > 0 {
		time.Sleep(base)
	}
}

// ListFiles implements fsys.FileSystem, served by the observer.
func (o *Observer) ListFiles(dir string) ([]fsys.FileInfo, error) {
	o.Counters.ListFilesCalls.Add(1)
	o.metaSleep(o.cfg.ListFilesLatency)
	return o.active.listLocked(dir)
}

// GetFileInfo implements fsys.FileSystem, served by the observer.
func (o *Observer) GetFileInfo(path string) (fsys.FileInfo, error) {
	o.Counters.GetFileInfoCalls.Add(1)
	o.metaSleep(o.cfg.GetFileInfoLatency)
	o.active.mu.RLock()
	defer o.active.mu.RUnlock()
	data, ok := o.active.files[clean(path)]
	if !ok {
		return fsys.FileInfo{}, fmt.Errorf("hdfs: file %q does not exist", path)
	}
	return fsys.FileInfo{Path: path, Size: int64(len(data))}, nil
}

// Open implements fsys.FileSystem; block reads come from DataNodes either
// way, so the observer only saves the metadata RPC.
func (o *Observer) Open(path string) (fsys.File, error) {
	o.Counters.OpenCalls.Add(1)
	o.metaSleep(o.cfg.GetFileInfoLatency)
	o.active.mu.RLock()
	data, ok := o.active.files[clean(path)]
	o.active.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("hdfs: file %q does not exist", path)
	}
	return &hdfsFile{nn: o.active, data: data}, nil
}

// Create implements fsys.FileSystem: writes always go to the active
// NameNode.
func (o *Observer) Create(path string) (io.WriteCloser, error) {
	return o.active.Create(path)
}

// listLocked shares the listing logic without charging the active node's
// counters or latency.
func (n *NameNode) listLocked(dir string) ([]fsys.FileInfo, error) {
	dir = clean(dir)
	prefix := dir + "/"
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []fsys.FileInfo
	seenDir := false
	for path, data := range n.files {
		if !strings.HasPrefix(path, prefix) {
			continue
		}
		seenDir = true
		rest := path[len(prefix):]
		if strings.Contains(rest, "/") {
			continue
		}
		out = append(out, fsys.FileInfo{Path: "/" + path, Size: int64(len(data))})
	}
	if !seenDir {
		return nil, fmt.Errorf("hdfs: directory %q does not exist", dir)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
