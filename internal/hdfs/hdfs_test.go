package hdfs

import (
	"testing"
	"time"
)

func newFS(t *testing.T) *NameNode {
	t.Helper()
	nn := New(Config{})
	for path, content := range map[string]string{
		"/warehouse/t/datestr=2017-03-01/part-0": "aaa",
		"/warehouse/t/datestr=2017-03-01/part-1": "bb",
		"/warehouse/t/datestr=2017-03-02/part-0": "c",
	} {
		w, err := nn.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w.Write([]byte(content))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return nn
}

func TestListFiles(t *testing.T) {
	nn := newFS(t)
	files, err := nn.ListFiles("/warehouse/t/datestr=2017-03-01")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].Size != 3 || files[1].Size != 2 {
		t.Fatalf("files = %v", files)
	}
	// Listing a parent dir returns only direct children (none are files).
	files, err = nn.ListFiles("/warehouse/t")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("parent list = %v", files)
	}
	if _, err := nn.ListFiles("/missing"); err == nil {
		t.Error("missing dir accepted")
	}
	if n := nn.Counters.ListFilesCalls.Load(); n != 3 {
		t.Errorf("listFiles counter = %d", n)
	}
}

func TestListDirs(t *testing.T) {
	nn := newFS(t)
	dirs, err := nn.ListDirs("/warehouse/t")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 || dirs[0] != "datestr=2017-03-01" {
		t.Fatalf("dirs = %v", dirs)
	}
}

func TestOpenReadStat(t *testing.T) {
	nn := newFS(t)
	info, err := nn.GetFileInfo("/warehouse/t/datestr=2017-03-01/part-0")
	if err != nil || info.Size != 3 {
		t.Fatalf("info = %v, %v", info, err)
	}
	f, err := nn.Open("/warehouse/t/datestr=2017-03-01/part-0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 1); err != nil || string(buf) != "aa" {
		t.Fatalf("read = %q, %v", buf, err)
	}
	if _, err := f.ReadAt(buf, 10); err == nil {
		t.Error("read past end accepted")
	}
	if _, err := nn.Open("/missing"); err == nil {
		t.Error("missing open accepted")
	}
	if _, err := nn.GetFileInfo("/missing"); err == nil {
		t.Error("missing stat accepted")
	}
	if nn.Counters.BytesRead.Load() != 2 {
		t.Errorf("bytes read = %d", nn.Counters.BytesRead.Load())
	}
}

func TestDelete(t *testing.T) {
	nn := newFS(t)
	nn.Delete("/warehouse/t/datestr=2017-03-02/part-0")
	if _, err := nn.GetFileInfo("/warehouse/t/datestr=2017-03-02/part-0"); err == nil {
		t.Error("deleted file still visible")
	}
}

func TestDegradedNameNode(t *testing.T) {
	nn := New(Config{ListFilesLatency: 500 * time.Microsecond})
	w, _ := nn.Create("/d/f")
	w.Close()
	start := time.Now()
	nn.ListFiles("/d")
	healthy := time.Since(start)

	nn.Degrade(20) // the §XII.D incident
	start = time.Now()
	nn.ListFiles("/d")
	degraded := time.Since(start)
	// Sleep granularity makes exact ratios flaky; require a clear gap.
	if degraded < healthy+5*time.Millisecond {
		t.Errorf("degraded NameNode not slower: %v vs %v", degraded, healthy)
	}
	nn.Degrade(1)
	start = time.Now()
	nn.ListFiles("/d")
	if recovered := time.Since(start); recovered > degraded/2 {
		t.Errorf("recovery did not restore latency: %v", recovered)
	}
}

func TestObserverNameNodeOffloadsReads(t *testing.T) {
	nn := newFS(t)
	obs := NewObserver(nn, Config{})
	activeBefore := nn.Counters.ListFilesCalls.Load()

	// Reads through the observer never touch the active NameNode counters.
	files, err := obs.ListFiles("/warehouse/t/datestr=2017-03-01")
	if err != nil || len(files) != 2 {
		t.Fatalf("observer list = %v, %v", files, err)
	}
	if _, err := obs.GetFileInfo("/warehouse/t/datestr=2017-03-01/part-0"); err != nil {
		t.Fatal(err)
	}
	f, err := obs.Open("/warehouse/t/datestr=2017-03-01/part-0")
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if nn.Counters.ListFilesCalls.Load() != activeBefore {
		t.Error("observer read hit the active NameNode")
	}
	if obs.Counters.ListFilesCalls.Load() != 1 || obs.Counters.GetFileInfoCalls.Load() != 1 {
		t.Errorf("observer counters = %+v", obs.Counters.ListFilesCalls.Load())
	}

	// Writes go to the active node and are immediately visible to readers.
	w, err := obs.Create("/warehouse/t/datestr=2017-03-01/part-9")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("zz"))
	w.Close()
	files, _ = obs.ListFiles("/warehouse/t/datestr=2017-03-01")
	if len(files) != 3 {
		t.Errorf("new file not visible through observer: %v", files)
	}
	if _, err := obs.GetFileInfo("/missing"); err == nil {
		t.Error("missing stat accepted")
	}
	if _, err := obs.Open("/missing"); err == nil {
		t.Error("missing open accepted")
	}
	if _, err := obs.ListFiles("/missing"); err == nil {
		t.Error("missing list accepted")
	}
}
