package ingest

import (
	"strconv"
	"sync"
	"time"

	"prestolite/internal/druid"
	"prestolite/internal/fault"
	"prestolite/internal/obs"
)

// DefaultWriterGroup is the consumer group segment writers use unless
// WriterConfig.Group overrides it.
const DefaultWriterGroup = "segment-writer"

// WriterConfig tunes the log→druid streaming consumer.
type WriterConfig struct {
	// Group is the consumer-group name owning the committed offsets
	// (default DefaultWriterGroup).
	Group string
	// MaxPoll bounds the records taken from one partition per poll
	// (default 1024).
	MaxPoll int
	// PollInterval is the sleep between empty polls (default 5ms).
	PollInterval time.Duration
	// MaintainEvery is the cadence of the table lifecycle maintenance tick
	// — age-based sealing and compaction (default 250ms).
	MaintainEvery time.Duration
	// Clock times polls, maintenance ticks and freshness observations
	// (default real time); chaos replay injects a fault.ManualClock.
	Clock fault.Clock
}

func (c WriterConfig) withDefaults() WriterConfig {
	if c.Group == "" {
		c.Group = DefaultWriterGroup
	}
	if c.MaxPoll <= 0 {
		c.MaxPoll = 1024
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	if c.MaintainEvery <= 0 {
		c.MaintainEvery = 250 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = fault.RealClock{}
	}
	return c
}

// SegmentWriter is the streaming consumer closing the log→store loop: one
// goroutine per partition fetches batches from its committed offset,
// appends the rows into the druid table's open mutable segment and commits,
// while a maintenance ticker drives sealing and compaction. Freshness —
// event time to queryable — is observed per record at append time.
type SegmentWriter struct {
	log   *Log
	topic *Topic
	table *druid.Table
	cfg   WriterConfig

	rowsWritten  *obs.Counter
	writeErrors  *obs.Counter
	commitErrors *obs.Counter
	freshness    *obs.Histogram

	mu     sync.Mutex
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewSegmentWriter wires a topic to a druid table. Call Start for
// background streaming or RunOnce for deterministic pull-based tests.
// Metrics always exist: they live in a private registry until
// RegisterObsMetrics re-homes them into an exported one.
func NewSegmentWriter(log *Log, topic *Topic, table *druid.Table, cfg WriterConfig) *SegmentWriter {
	w := &SegmentWriter{log: log, topic: topic, table: table, cfg: cfg.withDefaults()}
	w.RegisterObsMetrics(obs.NewRegistry())
	return w
}

// RegisterObsMetrics publishes the write path's metrics: rows written,
// write errors, a committed-offset lag gauge and the event-to-queryable
// freshness histogram. Implements obs.MetricsSource. Call it before Start;
// counts observed under the previous registry are not carried over.
func (w *SegmentWriter) RegisterObsMetrics(reg *obs.Registry) {
	w.rowsWritten = reg.Counter("ingest_rows_written")
	w.writeErrors = reg.Counter("ingest_write_errors")
	w.commitErrors = reg.Counter("ingest_commit_errors")
	w.freshness = reg.Histogram("ingest_freshness")
	reg.GaugeFunc("ingest_lag", func() float64 {
		return float64(w.log.Lag(w.cfg.Group, w.topic.Name()))
	})
	reg.GaugeFunc("ingest_open_segment_rows", func() float64 {
		return float64(w.table.Stats().OpenRows)
	})
}

// Freshness returns the event-to-queryable histogram.
func (w *SegmentWriter) Freshness() *obs.Histogram { return w.freshness }

// Start launches one consumer goroutine per partition plus the maintenance
// ticker. Stop waits for them.
func (w *SegmentWriter) Start() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stopCh != nil {
		return
	}
	w.stopCh = make(chan struct{})
	stop := w.stopCh
	for p := 0; p < w.topic.Partitions(); p++ {
		w.wg.Add(1)
		go w.consumePartition(p, stop)
	}
	w.wg.Add(1)
	go w.maintainLoop(stop)
}

// Stop halts the consumers, drains whatever the log already holds (so a
// quiesced producer's records are fully written), and runs one final
// maintenance pass.
func (w *SegmentWriter) Stop() {
	w.mu.Lock()
	stop := w.stopCh
	w.stopCh = nil
	w.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	w.wg.Wait()
	for w.RunOnce() > 0 {
	}
	w.table.Maintain(w.cfg.Clock.Now())
}

// Kill halts the consumer goroutines abruptly — no drain, no final
// maintenance pass. This is the simulated SIGKILL the rolling-restart chaos
// suite uses; whatever was fetched-but-uncommitted is redelivered (and
// deduplicated) after recovery.
func (w *SegmentWriter) Kill() {
	w.mu.Lock()
	stop := w.stopCh
	w.stopCh = nil
	w.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	w.wg.Wait()
}

func (w *SegmentWriter) consumePartition(p int, stop chan struct{}) {
	defer w.wg.Done()
	for {
		n := w.pollPartition(p)
		if n == 0 {
			select {
			case <-stop:
				return
			case <-w.cfg.Clock.After(w.cfg.PollInterval):
			}
			continue
		}
		select {
		case <-stop:
			return
		default:
		}
	}
}

func (w *SegmentWriter) maintainLoop(stop chan struct{}) {
	defer w.wg.Done()
	for {
		select {
		case <-stop:
			return
		case <-w.cfg.Clock.After(w.cfg.MaintainEvery):
			w.table.Maintain(w.cfg.Clock.Now())
		}
	}
}

// source names this writer's delivery stream for one partition — the key of
// the druid-side exactly-once watermark.
func (w *SegmentWriter) source(p int) string {
	return w.cfg.Group + "/" + w.topic.Name() + "/" + strconv.Itoa(p)
}

// pollPartition fetches one batch from partition p, appends it to the table
// and commits. Returns the number of records consumed. Delivery is
// exactly-once across crashes: the append goes through AppendFrom keyed on
// the committed offset, so a batch redelivered after a crash between append
// and commit is deduplicated by the table's source watermark.
func (w *SegmentWriter) pollPartition(p int) int {
	group := w.cfg.Group
	offset := w.log.Committed(group, w.topic.Name(), p)
	recs, err := w.topic.Fetch(p, offset, w.cfg.MaxPoll)
	if err != nil || len(recs) == 0 {
		return 0
	}
	rows := make([][]any, len(recs))
	for i, r := range recs {
		rows[i] = r.Row
	}
	now := w.cfg.Clock.Now()
	appended, err := w.table.AppendFrom(w.source(p), offset, rows, now)
	if err != nil {
		// A malformed batch cannot become well-formed on retry: count it,
		// commit past it and keep consuming instead of hot-looping.
		if w.writeErrors != nil {
			w.writeErrors.Add(int64(len(recs)))
		}
		return w.commit(p, offset+int64(len(recs)), len(recs))
	}
	// Rows the watermark skipped were appended (and observed) by an earlier
	// delivery; only the fresh suffix counts.
	if w.rowsWritten != nil {
		w.rowsWritten.Add(int64(appended))
	}
	if w.freshness != nil {
		for _, r := range recs[len(recs)-appended:] {
			w.freshness.Observe(now.Sub(r.Time))
		}
	}
	return w.commit(p, offset+int64(len(recs)), len(recs))
}

// commit advances the group's offset. A failed (durable) commit backs the
// poll loop off: the batch is refetched and the druid watermark swallows the
// redelivery, so progress resumes once the offsets WAL accepts writes again.
func (w *SegmentWriter) commit(p int, offset int64, consumed int) int {
	if err := w.log.Commit(w.cfg.Group, w.topic.Name(), p, offset); err != nil {
		if w.commitErrors != nil {
			w.commitErrors.Inc()
		}
		return 0
	}
	return consumed
}

// RunOnce polls every partition once synchronously and returns the total
// records consumed — the deterministic alternative to Start for tests.
func (w *SegmentWriter) RunOnce() int {
	total := 0
	for p := 0; p < w.topic.Partitions(); p++ {
		total += w.pollPartition(p)
	}
	return total
}
