package ingest

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"prestolite/internal/fault"
)

// ProducerConfig tunes producer batching.
type ProducerConfig struct {
	// BatchRecords flushes a partition's buffer once it holds this many
	// records (default 256).
	BatchRecords int
	// Linger bounds how long a non-empty buffer may wait for more records
	// before a background flush (default 50ms). Zero keeps the default; a
	// negative value disables the background flusher (tests flush manually).
	Linger time.Duration
	// Clock schedules the linger flusher (default real time). Chaos replay
	// injects a fault.ManualClock here so batching cadence is deterministic.
	Clock fault.Clock
}

func (c ProducerConfig) withDefaults() ProducerConfig {
	if c.BatchRecords <= 0 {
		c.BatchRecords = 256
	}
	if c.Linger == 0 {
		c.Linger = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = fault.RealClock{}
	}
	return c
}

// Producer batches rows into a topic. Keyed rows hash to a stable
// partition (ordering per key); unkeyed rows round-robin. Safe for
// concurrent use.
type Producer struct {
	topic *Topic
	cfg   ProducerConfig

	mu     sync.Mutex
	buf    [][]Record // per-partition pending batch
	rr     int        // round-robin cursor for unkeyed sends
	sent   int64
	closed bool
	stopCh chan struct{}
	doneCh chan struct{}
}

// NewProducer creates a producer for a topic and starts its linger flusher
// (unless cfg.Linger < 0).
func NewProducer(topic *Topic, cfg ProducerConfig) *Producer {
	p := &Producer{
		topic:  topic,
		cfg:    cfg.withDefaults(),
		buf:    make([][]Record, topic.Partitions()),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	if p.cfg.Linger > 0 {
		go p.lingerLoop()
	} else {
		close(p.doneCh)
	}
	return p
}

func (p *Producer) lingerLoop() {
	defer close(p.doneCh)
	for {
		select {
		case <-p.stopCh:
			return
		case <-p.cfg.Clock.After(p.cfg.Linger):
			_ = p.Flush() // background tick: Close's final Flush surfaces errors
		}
	}
}

// Send buffers one row; the partition is fnv32a(key) mod partitions for
// keyed rows, round-robin otherwise. Full partition buffers flush inline.
func (p *Producer) Send(key string, eventTime time.Time, row []any) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("ingest: producer for topic %q is closed", p.topic.Name())
	}
	var part int
	if key != "" {
		h := fnv.New32a()
		h.Write([]byte(key))
		part = int(h.Sum32() % uint32(p.topic.Partitions()))
	} else {
		part = p.rr
		p.rr = (p.rr + 1) % p.topic.Partitions()
	}
	p.buf[part] = append(p.buf[part], Record{Time: eventTime, Key: key, Row: row})
	var flush []Record
	if len(p.buf[part]) >= p.cfg.BatchRecords {
		flush = p.buf[part]
		p.buf[part] = nil
	}
	p.mu.Unlock()
	if flush != nil {
		if _, err := p.topic.Append(part, flush...); err != nil {
			return err
		}
		p.mu.Lock()
		p.sent += int64(len(flush))
		p.mu.Unlock()
	}
	return nil
}

// Flush appends every pending batch to the log.
func (p *Producer) Flush() error {
	p.mu.Lock()
	pending := p.buf
	p.buf = make([][]Record, p.topic.Partitions())
	p.mu.Unlock()
	var n int64
	for part, batch := range pending {
		if len(batch) == 0 {
			continue
		}
		if _, err := p.topic.Append(part, batch...); err != nil {
			return err
		}
		n += int64(len(batch))
	}
	p.mu.Lock()
	p.sent += n
	p.mu.Unlock()
	return nil
}

// Sent returns how many records have been appended to the log (flushed,
// not merely buffered).
func (p *Producer) Sent() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent
}

// Close flushes pending batches and stops the linger flusher. The producer
// rejects sends afterwards.
func (p *Producer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stopCh)
	<-p.doneCh
	return p.Flush()
}
