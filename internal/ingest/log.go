// Package ingest is the real-time write path of the paper's title promise
// ("from batch processing to real-time analytics"): a partitioned,
// in-process append log shaped like Kafka — topics split into partitions of
// offset-addressed records, producers batching writes, consumer groups
// tracking committed offsets — feeding the druid store's mutable-segment
// lifecycle so events become queryable seconds after they are produced.
package ingest

import (
	"fmt"
	"sync"
	"time"
)

// Record is one offset-addressed log entry: an event timestamp, an optional
// partitioning key and the row payload.
type Record struct {
	Offset int64
	Time   time.Time
	Key    string
	Row    []any
}

// Log is the in-process broker: a set of named topics plus per-group
// committed offsets.
type Log struct {
	mu        sync.RWMutex
	topics    map[string]*Topic
	committed map[groupKey]int64 // next offset to consume
}

type groupKey struct {
	group     string
	topic     string
	partition int
}

// NewLog creates an empty broker.
func NewLog() *Log {
	return &Log{topics: map[string]*Topic{}, committed: map[groupKey]int64{}}
}

// CreateTopic registers a topic with the given partition count.
func (l *Log) CreateTopic(name string, partitions int) (*Topic, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("ingest: topic %q needs at least one partition", name)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, exists := l.topics[name]; exists {
		return nil, fmt.Errorf("ingest: topic %q already exists", name)
	}
	t := &Topic{name: name, parts: make([]partition, partitions)}
	l.topics[name] = t
	return t, nil
}

// Topic resolves a topic by name.
func (l *Log) Topic(name string) (*Topic, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	t, ok := l.topics[name]
	if !ok {
		return nil, fmt.Errorf("ingest: topic %q does not exist", name)
	}
	return t, nil
}

// Commit records that group has consumed topic/partition up to (but not
// including) offset — Kafka semantics: the committed offset is the next
// record to read.
func (l *Log) Commit(group, topic string, partition int, offset int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := groupKey{group, topic, partition}
	if offset > l.committed[k] {
		l.committed[k] = offset
	}
}

// Committed returns the group's committed offset for a partition (0 when
// the group has never committed).
func (l *Log) Committed(group, topic string, partition int) int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.committed[groupKey{group, topic, partition}]
}

// Lag sums end-offset minus committed-offset across a topic's partitions:
// the number of records the group has not yet consumed.
func (l *Log) Lag(group, topic string) int64 {
	t, err := l.Topic(topic)
	if err != nil {
		return 0
	}
	var lag int64
	for p := 0; p < t.Partitions(); p++ {
		if d := t.EndOffset(p) - l.Committed(group, topic, p); d > 0 {
			lag += d
		}
	}
	return lag
}

// Topic is an ordered, partitioned record log.
type Topic struct {
	name  string
	parts []partition
}

// partition is one append-only record sequence with its own offset space.
type partition struct {
	mu   sync.RWMutex
	recs []Record
}

// Partitions returns the partition count.
func (t *Topic) Partitions() int { return len(t.parts) }

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Append adds records to partition p, assigning consecutive offsets, and
// returns the offset of the first appended record.
func (t *Topic) Append(p int, recs ...Record) (int64, error) {
	if p < 0 || p >= len(t.parts) {
		return 0, fmt.Errorf("ingest: topic %q has no partition %d", t.name, p)
	}
	part := &t.parts[p]
	part.mu.Lock()
	defer part.mu.Unlock()
	base := int64(len(part.recs))
	for i := range recs {
		recs[i].Offset = base + int64(i)
	}
	part.recs = append(part.recs, recs...)
	return base, nil
}

// Fetch reads up to max records of partition p starting at offset. An
// offset at or past the end returns an empty batch (callers poll).
func (t *Topic) Fetch(p int, offset int64, max int) ([]Record, error) {
	if p < 0 || p >= len(t.parts) {
		return nil, fmt.Errorf("ingest: topic %q has no partition %d", t.name, p)
	}
	if offset < 0 {
		return nil, fmt.Errorf("ingest: negative offset %d", offset)
	}
	part := &t.parts[p]
	part.mu.RLock()
	defer part.mu.RUnlock()
	if offset >= int64(len(part.recs)) {
		return nil, nil
	}
	end := offset + int64(max)
	if max <= 0 || end > int64(len(part.recs)) {
		end = int64(len(part.recs))
	}
	// Records are immutable once appended; returning a subslice is safe.
	return part.recs[offset:end], nil
}

// EndOffset returns the offset one past the last record of partition p
// (0 for an empty or unknown partition).
func (t *Topic) EndOffset(p int) int64 {
	if p < 0 || p >= len(t.parts) {
		return 0
	}
	part := &t.parts[p]
	part.mu.RLock()
	defer part.mu.RUnlock()
	return int64(len(part.recs))
}
