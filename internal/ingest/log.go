// Package ingest is the real-time write path of the paper's title promise
// ("from batch processing to real-time analytics"): a partitioned,
// in-process append log shaped like Kafka — topics split into partitions of
// offset-addressed records, producers batching writes, consumer groups
// tracking committed offsets — feeding the druid store's mutable-segment
// lifecycle so events become queryable seconds after they are produced.
package ingest

import (
	"fmt"
	"sync"
	"time"

	"prestolite/internal/fsys"
	"prestolite/internal/obs"
)

// Record is one offset-addressed log entry: an event timestamp, an optional
// partitioning key and the row payload.
type Record struct {
	Offset int64
	Time   time.Time
	Key    string
	Row    []any
}

// Log is the in-process broker: a set of named topics plus per-group
// committed offsets. A durable log (NewDurableLog) additionally writes every
// append, topic creation and commit through a WAL before the in-memory state
// changes, and rebuilds all three from the WAL on restart.
type Log struct {
	wal       *WAL // nil for a memory-only log
	mu        sync.RWMutex
	topics    map[string]*Topic
	committed map[groupKey]int64 // next offset to consume
}

type groupKey struct {
	group     string
	topic     string
	partition int
}

// NewLog creates an empty memory-only broker: process death loses
// everything. Use NewDurableLog for the crash-safe variant.
func NewLog() *Log {
	return &Log{topics: map[string]*Topic{}, committed: map[groupKey]int64{}}
}

// NewDurableLog opens (or creates) a write-ahead-logged broker rooted at
// cfg.Dir within fs. Existing WAL files are replayed first: topics,
// partition contents and consumer-group committed offsets all survive
// process death, with torn tails left by a crash mid-write truncated to the
// longest valid frame prefix. The recovered state is immediately writable —
// new appends go to fresh segment files, never past a possibly-torn tail.
func NewDurableLog(fs fsys.FileSystem, cfg WALConfig) (*Log, error) {
	l := NewLog()
	l.wal = newWAL(fs, cfg)
	if err := l.wal.recover(l); err != nil {
		return nil, err
	}
	return l, nil
}

// WAL exposes the durability layer (nil for a memory-only log) for stats and
// metric registration.
func (l *Log) WAL() *WAL { return l.wal }

// RegisterObsMetrics publishes the WAL durability metrics; a no-op for a
// memory-only log. Implements obs.MetricsSource.
func (l *Log) RegisterObsMetrics(reg *obs.Registry) {
	if l.wal != nil {
		l.wal.RegisterObsMetrics(reg)
	}
}

// SyncWAL forces every buffered WAL frame to stable storage — the durability
// barrier callers need before reporting a batch acked under FsyncInterval or
// FsyncNever.
func (l *Log) SyncWAL() error {
	if l.wal == nil {
		return nil
	}
	if err := l.wal.syncStreams(); err != nil {
		return err
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	var first error
	for _, t := range l.topics {
		for p := range t.parts {
			part := &t.parts[p]
			part.mu.Lock()
			if part.seg != nil {
				if err := part.seg.sync(); err != nil && first == nil {
					first = err
				}
			}
			part.mu.Unlock()
		}
	}
	return first
}

// Close syncs and closes every WAL file. The log remains readable but
// further durable appends reopen fresh files; callers treat Close as
// end-of-life.
func (l *Log) Close() error {
	if l.wal == nil {
		return nil
	}
	first := l.wal.closeStreams()
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, t := range l.topics {
		for p := range t.parts {
			part := &t.parts[p]
			part.mu.Lock()
			if part.seg != nil {
				if err := part.seg.close(); err != nil && first == nil {
					first = err
				}
			}
			part.mu.Unlock()
		}
	}
	return first
}

// CreateTopic registers a topic with the given partition count. On a durable
// log the creation is WAL-logged (and fsynced) before it takes effect.
func (l *Log) CreateTopic(name string, partitions int) (*Topic, error) {
	if partitions <= 0 {
		return nil, fmt.Errorf("ingest: topic %q needs at least one partition", name)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, exists := l.topics[name]; exists {
		return nil, fmt.Errorf("ingest: topic %q already exists", name)
	}
	if l.wal != nil {
		if err := l.wal.appendTopic(name, partitions); err != nil {
			return nil, err
		}
	}
	t := &Topic{name: name, parts: make([]partition, partitions), wal: l.wal}
	l.topics[name] = t
	return t, nil
}

// EnsureTopic returns the existing topic or creates it — the idempotent
// variant restart flows use, since recovery may have rebuilt the topic
// already. An existing topic with a different partition count is an error.
func (l *Log) EnsureTopic(name string, partitions int) (*Topic, error) {
	l.mu.RLock()
	t, ok := l.topics[name]
	l.mu.RUnlock()
	if ok {
		if t.Partitions() != partitions {
			return nil, fmt.Errorf("ingest: topic %q has %d partitions, want %d", name, t.Partitions(), partitions)
		}
		return t, nil
	}
	return l.CreateTopic(name, partitions)
}

// Topic resolves a topic by name.
func (l *Log) Topic(name string) (*Topic, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	t, ok := l.topics[name]
	if !ok {
		return nil, fmt.Errorf("ingest: topic %q does not exist", name)
	}
	return t, nil
}

// Commit records that group has consumed topic/partition up to (but not
// including) offset — Kafka semantics: the committed offset is the next
// record to read. On a durable log the commit is WAL-logged first; on
// failure the in-memory offset does not advance, so the consumer refetches
// and retries (downstream delivery must dedup, which the segment writer does
// via the druid source watermark).
func (l *Log) Commit(group, topic string, partition int, offset int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := groupKey{group, topic, partition}
	if offset <= l.committed[k] {
		return nil // stale or duplicate commit: monotonic max wins
	}
	if l.wal != nil {
		if err := l.wal.appendCommit(group, topic, partition, offset); err != nil {
			return err
		}
	}
	l.committed[k] = offset
	return nil
}

// Committed returns the group's committed offset for a partition (0 when
// the group has never committed).
func (l *Log) Committed(group, topic string, partition int) int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.committed[groupKey{group, topic, partition}]
}

// Lag sums end-offset minus committed-offset across a topic's partitions:
// the number of records the group has not yet consumed.
func (l *Log) Lag(group, topic string) int64 {
	t, err := l.Topic(topic)
	if err != nil {
		return 0
	}
	var lag int64
	for p := 0; p < t.Partitions(); p++ {
		if d := t.EndOffset(p) - l.Committed(group, topic, p); d > 0 {
			lag += d
		}
	}
	return lag
}

// Topic is an ordered, partitioned record log.
type Topic struct {
	name  string
	parts []partition
	wal   *WAL // nil for a memory-only log
}

// partition is one append-only record sequence with its own offset space.
type partition struct {
	mu   sync.RWMutex
	recs []Record
	seg  *walStream // durable segment stream; nil for a memory-only log
}

// Partitions returns the partition count.
func (t *Topic) Partitions() int { return len(t.parts) }

// Name returns the topic name.
func (t *Topic) Name() string { return t.name }

// Append adds records to partition p, assigning consecutive offsets, and
// returns the offset of the first appended record. On a durable log the
// batch is WAL-framed (and fsynced per policy) before it becomes readable;
// a WAL failure rejects the whole batch, the in-memory partition is
// untouched, and the producer may retry — recovery keeps the first copy of
// any offset, so a retried batch never duplicates.
func (t *Topic) Append(p int, recs ...Record) (int64, error) {
	if p < 0 || p >= len(t.parts) {
		return 0, fmt.Errorf("ingest: topic %q has no partition %d", t.name, p)
	}
	part := &t.parts[p]
	part.mu.Lock()
	defer part.mu.Unlock()
	base := int64(len(part.recs))
	for i := range recs {
		recs[i].Offset = base + int64(i)
	}
	if t.wal != nil && len(recs) > 0 {
		if part.seg == nil {
			part.seg = t.wal.segmentStream(t.name, p, 0)
		}
		payload, err := encodeBatch(recs)
		if err != nil {
			return 0, err
		}
		if err := part.seg.append(payload, false); err != nil {
			return 0, err
		}
	}
	part.recs = append(part.recs, recs...)
	return base, nil
}

// Fetch reads up to max records of partition p starting at offset. An
// offset at or past the end returns an empty batch (callers poll).
func (t *Topic) Fetch(p int, offset int64, max int) ([]Record, error) {
	if p < 0 || p >= len(t.parts) {
		return nil, fmt.Errorf("ingest: topic %q has no partition %d", t.name, p)
	}
	if offset < 0 {
		return nil, fmt.Errorf("ingest: negative offset %d", offset)
	}
	part := &t.parts[p]
	part.mu.RLock()
	defer part.mu.RUnlock()
	if offset >= int64(len(part.recs)) {
		return nil, nil
	}
	end := offset + int64(max)
	if max <= 0 || end > int64(len(part.recs)) {
		end = int64(len(part.recs))
	}
	// Records are immutable once appended; returning a subslice is safe.
	return part.recs[offset:end], nil
}

// EndOffset returns the offset one past the last record of partition p
// (0 for an empty or unknown partition).
func (t *Topic) EndOffset(p int) int64 {
	if p < 0 || p >= len(t.parts) {
		return 0
	}
	part := &t.parts[p]
	part.mu.RLock()
	defer part.mu.RUnlock()
	return int64(len(part.recs))
}
