package ingest

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"prestolite/internal/druid"
	"prestolite/internal/obs"
	"prestolite/internal/types"
)

func TestLogOffsetsAndFetch(t *testing.T) {
	l := NewLog()
	topic, err := l.CreateTopic("events", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.CreateTopic("events", 1); err == nil {
		t.Error("duplicate topic accepted")
	}
	base := time.Unix(1700000000, 0)
	first, err := topic.Append(0, Record{Time: base, Row: []any{int64(1)}}, Record{Time: base, Row: []any{int64(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Errorf("first offset = %d, want 0", first)
	}
	second, _ := topic.Append(0, Record{Time: base, Row: []any{int64(3)}})
	if second != 2 {
		t.Errorf("second batch offset = %d, want 2", second)
	}
	// Partitions have independent offset spaces.
	p1, _ := topic.Append(1, Record{Time: base, Row: []any{int64(9)}})
	if p1 != 0 {
		t.Errorf("partition 1 first offset = %d, want 0", p1)
	}

	recs, err := topic.Fetch(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Offset != 1 || recs[1].Offset != 2 {
		t.Errorf("fetch from 1: %+v", recs)
	}
	if recs, _ := topic.Fetch(0, 3, 10); len(recs) != 0 {
		t.Errorf("fetch past end returned %d records", len(recs))
	}
	if _, err := topic.Fetch(5, 0, 1); err == nil {
		t.Error("fetch from unknown partition accepted")
	}
	if topic.EndOffset(0) != 3 || topic.EndOffset(1) != 1 {
		t.Errorf("end offsets: %d, %d", topic.EndOffset(0), topic.EndOffset(1))
	}
}

func TestConsumerGroupCommitAndLag(t *testing.T) {
	l := NewLog()
	topic, _ := l.CreateTopic("events", 2)
	base := time.Unix(1700000000, 0)
	for i := 0; i < 5; i++ {
		topic.Append(0, Record{Time: base, Row: []any{int64(i)}})
	}
	for i := 0; i < 3; i++ {
		topic.Append(1, Record{Time: base, Row: []any{int64(i)}})
	}
	if lag := l.Lag("g1", "events"); lag != 8 {
		t.Errorf("initial lag = %d, want 8", lag)
	}
	l.Commit("g1", "events", 0, 5)
	l.Commit("g1", "events", 1, 1)
	if lag := l.Lag("g1", "events"); lag != 2 {
		t.Errorf("lag after commits = %d, want 2", lag)
	}
	// Commits are monotonic; a stale commit never rewinds.
	l.Commit("g1", "events", 0, 2)
	if got := l.Committed("g1", "events", 0); got != 5 {
		t.Errorf("stale commit rewound offset to %d", got)
	}
	// Groups are independent.
	if lag := l.Lag("g2", "events"); lag != 8 {
		t.Errorf("second group lag = %d, want 8", lag)
	}
}

func TestProducerKeyedPartitioningAndBatching(t *testing.T) {
	l := NewLog()
	topic, _ := l.CreateTopic("events", 4)
	p := NewProducer(topic, ProducerConfig{BatchRecords: 8, Linger: -1})
	base := time.Unix(1700000000, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("user-%d", i%10)
		if err := p.Send(key, base, []any{int64(i), key}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if p.Sent() != 100 {
		t.Errorf("sent = %d, want 100", p.Sent())
	}
	var total int64
	for part := 0; part < topic.Partitions(); part++ {
		total += topic.EndOffset(part)
	}
	if total != 100 {
		t.Errorf("log holds %d records, want 100", total)
	}
	// Same key always lands in the same partition, in send order.
	for part := 0; part < topic.Partitions(); part++ {
		recs, _ := topic.Fetch(part, 0, 1000)
		lastPerKey := map[string]int64{}
		for _, r := range recs {
			seq := r.Row[0].(int64)
			if last, seen := lastPerKey[r.Key]; seen && seq <= last {
				t.Fatalf("key %s out of order in partition %d: %d after %d", r.Key, part, seq, last)
			}
			lastPerKey[r.Key] = seq
		}
	}
	keyPart := map[string][]int{}
	for part := 0; part < topic.Partitions(); part++ {
		recs, _ := topic.Fetch(part, 0, 1000)
		for _, r := range recs {
			if parts := keyPart[r.Key]; len(parts) == 0 || parts[len(parts)-1] != part {
				keyPart[r.Key] = append(keyPart[r.Key], part)
			}
		}
	}
	for key, parts := range keyPart {
		if len(parts) != 1 {
			t.Errorf("key %s spread over partitions %v", key, parts)
		}
	}
	if err := p.Send("x", base, []any{int64(0), "x"}); err == nil {
		t.Error("send after close accepted")
	}
}

func TestProducerLingerFlush(t *testing.T) {
	l := NewLog()
	topic, _ := l.CreateTopic("events", 1)
	p := NewProducer(topic, ProducerConfig{BatchRecords: 1000, Linger: 5 * time.Millisecond})
	defer p.Close()
	if err := p.Send("", time.Now(), []any{int64(1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for topic.EndOffset(0) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("linger flusher never appended the buffered record")
		}
		time.Sleep(time.Millisecond)
	}
}

func newEventsTable(t *testing.T) *druid.Table {
	t.Helper()
	s := druid.NewStore()
	tab, err := s.CreateTable("events", []druid.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSegmentWriterRunOnce(t *testing.T) {
	l := NewLog()
	topic, _ := l.CreateTopic("events", 2)
	tab := newEventsTable(t)
	tab.SetSegmentConfig(druid.SegmentConfig{SealRows: 100})
	w := NewSegmentWriter(l, topic, tab, WriterConfig{})
	reg := obs.NewRegistry()
	w.RegisterObsMetrics(reg)

	base := time.Now().Add(-time.Second)
	for i := 0; i < 250; i++ {
		topic.Append(i%2, Record{Time: base, Row: []any{int64(i), "us", int64(1)}})
	}
	if n := w.RunOnce(); n != 250 {
		t.Fatalf("RunOnce consumed %d, want 250", n)
	}
	if st := tab.Stats(); st.Rows != 250 {
		t.Fatalf("table rows = %d, want 250", st.Rows)
	}
	if lag := l.Lag("segment-writer", "events"); lag != 0 {
		t.Fatalf("lag after drain = %d", lag)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["ingest_rows_written"]; got != 250 {
		t.Errorf("ingest_rows_written = %d, want 250", got)
	}
	if got := snap.Gauges["ingest_lag"]; got != 0 {
		t.Errorf("ingest_lag gauge = %v, want 0", got)
	}
	fr := snap.Histograms["ingest_freshness"]
	if fr.Count != 250 {
		t.Errorf("freshness observations = %d, want 250", fr.Count)
	}
	if fr.P99 < int64(time.Second) {
		t.Errorf("freshness p99 = %v, want >= 1s (events were produced 1s ago)", time.Duration(fr.P99))
	}
	if n := w.RunOnce(); n != 0 {
		t.Errorf("second RunOnce consumed %d", n)
	}
}

func TestSegmentWriterSkipsPoisonBatch(t *testing.T) {
	l := NewLog()
	topic, _ := l.CreateTopic("events", 1)
	tab := newEventsTable(t)
	w := NewSegmentWriter(l, topic, tab, WriterConfig{})
	reg := obs.NewRegistry()
	w.RegisterObsMetrics(reg)

	now := time.Now()
	topic.Append(0, Record{Time: now, Row: []any{int64(1), "us", int64(1)}})
	topic.Append(0, Record{Time: now, Row: []any{"not-a-ts", "us", int64(1)}}) // poison
	w.RunOnce()
	w.RunOnce()
	if lag := l.Lag("segment-writer", "events"); lag != 0 {
		t.Fatalf("poison batch stalled the consumer: lag %d", lag)
	}
	snap := reg.Snapshot()
	if snap.Counters["ingest_write_errors"] == 0 {
		t.Error("ingest_write_errors not counted")
	}
}

// End-to-end: producer → log → writer → druid, with the writer streaming in
// the background while the producer sends. Run under -race in make
// test-race.
func TestStreamingEndToEnd(t *testing.T) {
	l := NewLog()
	topic, _ := l.CreateTopic("events", 4)
	tab := newEventsTable(t)
	tab.SetSegmentConfig(druid.SegmentConfig{SealRows: 500, CompactBelowRows: 200, CompactBatch: 4})
	w := NewSegmentWriter(l, topic, tab, WriterConfig{PollInterval: time.Millisecond, MaintainEvery: 10 * time.Millisecond})
	reg := obs.NewRegistry()
	w.RegisterObsMetrics(reg)
	w.Start()

	const total = 5000
	p := NewProducer(topic, ProducerConfig{BatchRecords: 64, Linger: 5 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < total/2; i++ {
				key := fmt.Sprintf("k-%d", i%17)
				if err := p.Send(key, time.Now(), []any{int64(g*total/2 + i), "de", int64(1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Lag("segment-writer", "events") > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("writer never drained: lag %d", l.Lag("segment-writer", "events"))
		}
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	if st := tab.Stats(); st.Rows != total {
		t.Fatalf("table rows = %d, want %d (stats %+v)", st.Rows, total, st)
	}
	if got := reg.Snapshot().Counters["ingest_rows_written"]; got != total {
		t.Errorf("ingest_rows_written = %d, want %d", got, total)
	}
	// The lifecycle kept segment count far below the 5000 rows appended.
	if n := tab.SegmentCount(); n > 30 {
		t.Errorf("segment count after streaming = %d, want bounded", n)
	}
}
