// Write-ahead log: the durability layer under the append log. Every record
// batch, topic creation and offset commit is framed (length + CRC32) into
// segment files on a fsys.FileSystem before the in-memory state changes, so
// process death loses nothing that was acked. Recovery replays the frames —
// truncating torn tails left by a crash mid-write — and rebuilds topics,
// partition contents and consumer-group committed offsets. Files are written
// once and never appended across restarts (the FileSystem SPI has no append):
// each restart bumps an epoch and rotation opens fresh segments, so a
// possibly-torn tail is never written past.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	iofs "io/fs"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/fsys"
	"prestolite/internal/obs"
)

// FsyncPolicy selects when the WAL forces frames to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: an acked record is durable.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs at most once per WALConfig.FsyncEvery: acked
	// records inside the window can be lost to a crash (group commit).
	FsyncInterval
	// FsyncNever leaves flushing to the OS: fastest, weakest.
	FsyncNever
)

// WALConfig tunes the write-ahead log.
type WALConfig struct {
	// Dir is the directory (within the FileSystem) holding WAL files
	// (default "wal").
	Dir string
	// SegmentBytes rotates a partition's segment file once it exceeds this
	// size (default 1 MiB).
	SegmentBytes int64
	// Fsync is the durability policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval cadence (default 50ms).
	FsyncEvery time.Duration
	// Clock times interval syncs (default real time); chaos replay injects a
	// fault.ManualClock.
	Clock fault.Clock
}

func (c WALConfig) withDefaults() WALConfig {
	if c.Dir == "" {
		c.Dir = "wal"
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 50 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = fault.RealClock{}
	}
	return c
}

// WALStats is the recovery and durability census of one WAL.
type WALStats struct {
	Fsyncs             int64
	RecoveredRecords   int64
	RecoveredTopics    int64
	TruncatedTailBytes int64
}

// WAL owns the durable files behind a Log. All appends go through it before
// the in-memory structures change.
type WAL struct {
	fs  fsys.FileSystem
	cfg WALConfig

	fsyncs             atomic.Int64
	recoveredRecords   atomic.Int64
	recoveredTopics    atomic.Int64
	truncatedTailBytes atomic.Int64

	// mu guards the manifest and offsets streams (segment streams are owned
	// by their partition and serialized by the partition lock).
	mu       sync.Mutex
	epoch    int
	manifest *walStream
	offsets  *walStream
}

func newWAL(fs fsys.FileSystem, cfg WALConfig) *WAL {
	return &WAL{fs: fs, cfg: cfg.withDefaults()}
}

// Stats snapshots the WAL's counters.
func (w *WAL) Stats() WALStats {
	return WALStats{
		Fsyncs:             w.fsyncs.Load(),
		RecoveredRecords:   w.recoveredRecords.Load(),
		RecoveredTopics:    w.recoveredTopics.Load(),
		TruncatedTailBytes: w.truncatedTailBytes.Load(),
	}
}

// RegisterObsMetrics publishes the WAL's durability metrics as computed
// gauges over its internal atomics. Implements obs.MetricsSource.
func (w *WAL) RegisterObsMetrics(reg *obs.Registry) {
	reg.GaugeFunc("wal_fsyncs", func() float64 { return float64(w.fsyncs.Load()) })
	reg.GaugeFunc("wal_recovered_records", func() float64 { return float64(w.recoveredRecords.Load()) })
	reg.GaugeFunc("wal_truncated_tail_bytes", func() float64 { return float64(w.truncatedTailBytes.Load()) })
}

// ---------------------------------------------------------------------------
// Frame format: [len uint32 LE][crc32(payload) uint32 LE][payload]. A frame
// is written with a single Write call, so a torn write can only leave a
// partial frame — never interleave two.

const frameHeader = 8

func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// nextFrame extracts the first frame of b, returning the payload and total
// bytes consumed. ok is false on a short or corrupt frame — the torn tail a
// crash leaves behind.
func nextFrame(b []byte) (payload []byte, n int, ok bool) {
	if len(b) < frameHeader {
		return nil, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	if len(b) < frameHeader+plen {
		return nil, 0, false
	}
	payload = b[frameHeader : frameHeader+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, false
	}
	return payload, frameHeader + plen, true
}

// ---------------------------------------------------------------------------
// Payload codecs. Row cells carry a one-byte type tag so the decoded value
// has the exact Go type the producer appended (the druid store type-checks
// cells strictly).

const (
	valNil byte = iota
	valBool
	valInt64
	valFloat64
	valString
	valBytes
	valTime
)

func appendCell(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, valNil), nil
	case bool:
		dst = append(dst, valBool)
		if x {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case int64:
		dst = append(dst, valInt64)
		return binary.AppendVarint(dst, x), nil
	case float64:
		dst = append(dst, valFloat64)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		return append(dst, buf[:]...), nil
	case string:
		dst = append(dst, valString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case []byte:
		dst = append(dst, valBytes)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case time.Time:
		dst = append(dst, valTime)
		return binary.AppendVarint(dst, x.UnixNano()), nil
	default:
		return nil, fmt.Errorf("ingest: wal cannot encode cell of type %T", v)
	}
}

// payloadReader is a cursor over one frame payload; the first decode error
// sticks.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("ingest: wal payload: truncated %s", what)
	}
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("bytes")
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *payloadReader) byteVal() byte {
	b := r.bytes(1)
	if len(b) != 1 {
		return 0
	}
	return b[0]
}

func (r *payloadReader) str() string { return string(r.bytes(int(r.uvarint()))) }

func (r *payloadReader) cell() any {
	switch tag := r.byteVal(); tag {
	case valNil:
		return nil
	case valBool:
		return r.byteVal() != 0
	case valInt64:
		return r.varint()
	case valFloat64:
		b := r.bytes(8)
		if len(b) != 8 {
			return nil
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	case valString:
		return r.str()
	case valBytes:
		return append([]byte(nil), r.bytes(int(r.uvarint()))...)
	case valTime:
		return time.Unix(0, r.varint())
	default:
		if r.err == nil {
			r.err = fmt.Errorf("ingest: wal payload: unknown cell tag %d", tag)
		}
		return nil
	}
}

// encodeBatch frames one Topic.Append batch: record count, then per record
// offset, event time, key and tagged row cells.
func encodeBatch(recs []Record) ([]byte, error) {
	dst := binary.AppendUvarint(nil, uint64(len(recs)))
	for _, rec := range recs {
		dst = binary.AppendUvarint(dst, uint64(rec.Offset))
		dst = binary.AppendVarint(dst, rec.Time.UnixNano())
		dst = binary.AppendUvarint(dst, uint64(len(rec.Key)))
		dst = append(dst, rec.Key...)
		dst = binary.AppendUvarint(dst, uint64(len(rec.Row)))
		for _, cell := range rec.Row {
			var err error
			dst, err = appendCell(dst, cell)
			if err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

func decodeBatch(payload []byte) ([]Record, error) {
	r := &payloadReader{b: payload}
	n := r.uvarint()
	recs := make([]Record, 0, n)
	for i := uint64(0); i < n; i++ {
		var rec Record
		rec.Offset = int64(r.uvarint())
		rec.Time = time.Unix(0, r.varint())
		rec.Key = r.str()
		cells := r.uvarint()
		if cells > 0 {
			rec.Row = make([]any, cells)
			for c := range rec.Row {
				rec.Row[c] = r.cell()
			}
		}
		if r.err != nil {
			return nil, r.err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func encodeTopic(name string, partitions int) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(name)))
	dst = append(dst, name...)
	return binary.AppendUvarint(dst, uint64(partitions))
}

func decodeTopic(payload []byte) (name string, partitions int, err error) {
	r := &payloadReader{b: payload}
	name = r.str()
	partitions = int(r.uvarint())
	return name, partitions, r.err
}

func encodeOffset(group, topic string, partition int, offset int64) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(group)))
	dst = append(dst, group...)
	dst = binary.AppendUvarint(dst, uint64(len(topic)))
	dst = append(dst, topic...)
	dst = binary.AppendUvarint(dst, uint64(partition))
	return binary.AppendUvarint(dst, uint64(offset))
}

func decodeOffset(payload []byte) (group, topic string, partition int, offset int64, err error) {
	r := &payloadReader{b: payload}
	group = r.str()
	topic = r.str()
	partition = int(r.uvarint())
	offset = int64(r.uvarint())
	return group, topic, partition, offset, r.err
}

// ---------------------------------------------------------------------------
// walStream: one logical append stream over a sequence of write-once files.

// walStream appends frames to the current file of a rotating sequence. A
// failed write or sync poisons the current file (its tail may hold a torn
// frame); the next append rotates to a fresh file, so recovery — which stops
// a file's replay at the first corrupt frame — resumes with the frames
// written after the failure. Not safe for concurrent use: the owner
// (partition lock or WAL.mu) serializes.
type walStream struct {
	wal      *WAL
	nameFor  func(seq int) string
	seq      int // last file sequence used (next rotation opens seq+1)
	w        io.WriteCloser
	size     int64
	rotateAt int64 // rotate when size exceeds this; 0 = never by size
	poisoned bool
	dirty    bool
	lastSync time.Time
}

func (s *walStream) append(payload []byte, forceSync bool) error {
	if s.w == nil || s.poisoned || (s.rotateAt > 0 && s.size >= s.rotateAt) {
		if err := s.rotate(); err != nil {
			return err
		}
	}
	frame := appendFrame(make([]byte, 0, frameHeader+len(payload)), payload)
	n, err := s.w.Write(frame)
	s.size += int64(n)
	if n > 0 {
		s.dirty = true
	}
	if err != nil {
		s.poisoned = true
		return err
	}
	if forceSync {
		return s.sync()
	}
	switch s.wal.cfg.Fsync {
	case FsyncAlways:
		return s.sync()
	case FsyncInterval:
		if now := s.wal.cfg.Clock.Now(); now.Sub(s.lastSync) >= s.wal.cfg.FsyncEvery {
			return s.sync()
		}
	}
	return nil
}

// sync forces buffered frames to stable storage. A sync error poisons the
// file: fsync failure leaves the on-disk state unknown, so the stream never
// writes past it.
func (s *walStream) sync() error {
	if s.w == nil || !s.dirty {
		return nil
	}
	if err := fsys.Sync(s.w); err != nil {
		s.poisoned = true
		return err
	}
	s.dirty = false
	s.lastSync = s.wal.cfg.Clock.Now()
	s.wal.fsyncs.Add(1)
	return nil
}

// rotate closes the current file and opens the next in sequence.
func (s *walStream) rotate() error {
	if s.w != nil {
		syncErr := s.sync()
		closeErr := s.w.Close()
		s.w = nil
		// A poisoned file is being abandoned: its sync/close failures are
		// the fault we are rotating away from, not new ones to report.
		if !s.poisoned {
			if syncErr != nil {
				return syncErr
			}
			if closeErr != nil {
				return closeErr
			}
		}
	}
	w, err := s.wal.fs.Create(s.nameFor(s.seq + 1))
	if err != nil {
		return err
	}
	s.seq++
	s.w = w
	s.size = 0
	s.poisoned = false
	s.dirty = false
	return nil
}

// close syncs and closes the current file.
func (s *walStream) close() error {
	if s.w == nil {
		return nil
	}
	syncErr := s.sync()
	closeErr := s.w.Close()
	s.w = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// ---------------------------------------------------------------------------
// Stream construction and WAL-level appends.

func (w *WAL) manifestName(seq int) string {
	return fmt.Sprintf("%s/topics-%06d-%06d.log", w.cfg.Dir, w.epoch, seq)
}

func (w *WAL) offsetsName(seq int) string {
	return fmt.Sprintf("%s/offsets-%06d-%06d.log", w.cfg.Dir, w.epoch, seq)
}

func (w *WAL) segmentName(topic string, p, seq int) string {
	return fmt.Sprintf("%s/t/%s/%d/seg-%06d.log", w.cfg.Dir, topic, p, seq)
}

// segmentStream creates the stream for one partition, continuing the file
// sequence after the last recovered segment.
func (w *WAL) segmentStream(topic string, p, lastSeq int) *walStream {
	return &walStream{
		wal:      w,
		nameFor:  func(seq int) string { return w.segmentName(topic, p, seq) },
		seq:      lastSeq,
		rotateAt: w.cfg.SegmentBytes,
	}
}

// appendTopic durably records a topic creation (always synced: rare and
// load-bearing — losing it orphans every segment under the topic).
func (w *WAL) appendTopic(name string, partitions int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.manifest == nil {
		w.manifest = &walStream{wal: w, nameFor: w.manifestName}
	}
	return w.manifest.append(encodeTopic(name, partitions), true)
}

// appendCommit durably records a consumer-group offset commit under the
// configured fsync policy.
func (w *WAL) appendCommit(group, topic string, partition int, offset int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.offsets == nil {
		w.offsets = &walStream{wal: w, nameFor: w.offsetsName, rotateAt: w.cfg.SegmentBytes}
	}
	return w.offsets.append(encodeOffset(group, topic, partition, offset), false)
}

// closeStreams syncs and closes the manifest and offsets streams (partition
// streams are closed by Log.Close under their partition locks).
func (w *WAL) closeStreams() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var first error
	for _, s := range []*walStream{w.manifest, w.offsets} {
		if s == nil {
			continue
		}
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Sync forces every buffered frame of the manifest and offsets streams to
// stable storage (partition streams sync through Log.SyncWAL, which holds
// the partition locks).
func (w *WAL) syncStreams() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var first error
	for _, s := range []*walStream{w.manifest, w.offsets} {
		if s == nil {
			continue
		}
		if err := s.sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ---------------------------------------------------------------------------
// Recovery.

// recover rebuilds l's topics, partition records and committed offsets from
// the WAL directory, then positions the WAL to write a fresh epoch.
func (w *WAL) recover(l *Log) error {
	files, err := w.fs.ListFiles(w.cfg.Dir)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			w.epoch = 1
			return nil // fresh WAL: nothing to replay
		}
		return fmt.Errorf("ingest: wal recovery: %w", err)
	}
	maxEpoch := 0
	var topicFiles, offsetFiles []fsys.FileInfo
	for _, fi := range files {
		base := fi.Path[strings.LastIndexByte(fi.Path, '/')+1:]
		var epoch, seq int
		switch {
		case parseWALName(base, "topics", &epoch, &seq):
			topicFiles = append(topicFiles, fi)
		case parseWALName(base, "offsets", &epoch, &seq):
			offsetFiles = append(offsetFiles, fi)
		default:
			continue
		}
		if epoch > maxEpoch {
			maxEpoch = epoch
		}
	}
	// Topics first: segment and offset replay need the topology. ListFiles
	// returns sorted paths, so zero-padded epoch/seq replay in write order.
	for _, fi := range topicFiles {
		err := w.replayFile(fi, func(payload []byte) error {
			name, partitions, err := decodeTopic(payload)
			if err != nil {
				return err
			}
			if _, ok := l.topics[name]; ok {
				return nil // re-announced by a later epoch
			}
			t := &Topic{name: name, parts: make([]partition, partitions), wal: w}
			l.topics[name] = t
			w.recoveredTopics.Add(1)
			return nil
		})
		if err != nil {
			return err
		}
	}
	// Partition contents.
	for _, t := range l.topics {
		for p := range t.parts {
			if err := w.recoverPartition(t, p); err != nil {
				return err
			}
		}
	}
	// Committed offsets: max wins, so cross-file replay order is irrelevant.
	for _, fi := range offsetFiles {
		err := w.replayFile(fi, func(payload []byte) error {
			group, topic, partition, offset, err := decodeOffset(payload)
			if err != nil {
				return err
			}
			k := groupKey{group, topic, partition}
			if offset > l.committed[k] {
				l.committed[k] = offset
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	w.epoch = maxEpoch + 1
	return nil
}

// recoverPartition replays a partition's segment files in sequence order,
// accepting each record whose offset continues the rebuilt log. Duplicate
// offsets (a batch re-appended after an unacked write) keep the first copy;
// an offset gap ends the replay — everything after a hole is unreachable.
func (w *WAL) recoverPartition(t *Topic, p int) error {
	dir := fmt.Sprintf("%s/t/%s/%d", w.cfg.Dir, t.name, p)
	files, err := w.fs.ListFiles(dir)
	if err != nil {
		if errors.Is(err, iofs.ErrNotExist) {
			t.parts[p].seg = w.segmentStream(t.name, p, 0)
			return nil
		}
		return fmt.Errorf("ingest: wal recovery: %w", err)
	}
	part := &t.parts[p]
	lastSeq := 0
	for _, fi := range files {
		base := fi.Path[strings.LastIndexByte(fi.Path, '/')+1:]
		var seq int
		if _, err := fmt.Sscanf(base, "seg-%06d.log", &seq); err != nil {
			continue
		}
		if seq > lastSeq {
			lastSeq = seq
		}
		err := w.replayFile(fi, func(payload []byte) error {
			recs, err := decodeBatch(payload)
			if err != nil {
				return err
			}
			for _, rec := range recs {
				switch next := int64(len(part.recs)); {
				case rec.Offset == next:
					part.recs = append(part.recs, rec)
					w.recoveredRecords.Add(1)
				case rec.Offset < next:
					// First copy wins: a duplicate is a batch retried after
					// an unacked (but possibly persisted) write.
				default:
					// A hole before this record: nothing after it in this
					// file can be contiguous either. Later files still
					// replay — a retried batch there may fill the sequence.
					return errStopReplay
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	part.seg = w.segmentStream(t.name, p, lastSeq)
	return nil
}

// errStopReplay aborts a file replay without failing recovery.
var errStopReplay = errors.New("ingest: stop replay")

// replayFile reads one WAL file and feeds each valid frame to fn. Replay
// stops at the first corrupt or short frame — the torn tail — and the
// skipped bytes are counted as truncated. Decode failures inside a
// CRC-valid frame are corruption too (flipped bits can collide CRC32).
func (w *WAL) replayFile(fi fsys.FileInfo, fn func(payload []byte) error) error {
	f, err := w.fs.Open(fi.Path)
	if err != nil {
		return fmt.Errorf("ingest: wal recovery: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only file; nothing to flush
	buf := make([]byte, f.Size())
	if len(buf) > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			return fmt.Errorf("ingest: wal recovery: read %s: %w", fi.Path, err)
		}
	}
	consumed := 0
	for consumed < len(buf) {
		payload, n, ok := nextFrame(buf[consumed:])
		if !ok {
			break
		}
		if err := fn(payload); err != nil {
			if errors.Is(err, errStopReplay) {
				return nil
			}
			break // corrupt payload: truncate from here
		}
		consumed += n
	}
	if tail := int64(len(buf) - consumed); tail > 0 {
		w.truncatedTailBytes.Add(tail)
	}
	return nil
}

// parseWALName matches "<kind>-<epoch>-<seq>.log".
func parseWALName(base, kind string, epoch, seq *int) bool {
	n, err := fmt.Sscanf(base, kind+"-%06d-%06d.log", epoch, seq)
	return err == nil && n == 2
}
