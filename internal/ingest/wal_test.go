package ingest

import (
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"prestolite/internal/fault"
	"prestolite/internal/fsys"
	"prestolite/internal/obs"
)

// walSeeds mirrors the chaos suite's seed discipline: a fixed set by
// default, one seed under CHAOS_SEED for replaying a failure.
func walSeeds(t *testing.T) []int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 42}
}

func walConfig(clock fault.Clock) WALConfig {
	return WALConfig{Fsync: FsyncAlways, Clock: clock}
}

// TestWALRecoverRoundTrip pins the basic durability contract: topics,
// records of every cell type, and committed offsets all survive a restart,
// and the recovered log keeps assigning contiguous offsets.
func TestWALRecoverRoundTrip(t *testing.T) {
	root := t.TempDir()
	clock := fault.NewManualClock(time.Unix(1_700_000_000, 0))
	l, err := NewDurableLog(fsys.NewLocal(root), walConfig(clock))
	if err != nil {
		t.Fatal(err)
	}
	topic, err := l.CreateTopic("events", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.CreateTopic("empty", 3); err != nil {
		t.Fatal(err)
	}
	base := clock.Now()
	rows := [][]any{
		{int64(1), "us", 3.5, true, nil},
		{int64(2), "de", -0.25, false, []byte{0xfe, 0xff}},
		{int64(3), "fr", 0.0, true, base.Add(time.Minute)},
	}
	for i, row := range rows {
		if _, err := topic.Append(i%2, Record{Time: base.Add(time.Duration(i) * time.Second), Key: "k" + strconv.Itoa(i), Row: row}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Commit("g1", "events", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewDurableLog(fsys.NewLocal(root), walConfig(clock))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Errorf("close recovered log: %v", err)
		}
	}()
	if got := r.WAL().Stats().RecoveredRecords; got != 3 {
		t.Errorf("recovered records = %d, want 3", got)
	}
	if got := r.WAL().Stats().RecoveredTopics; got != 2 {
		t.Errorf("recovered topics = %d, want 2", got)
	}
	empty, err := r.Topic("empty")
	if err != nil || empty.Partitions() != 3 {
		t.Fatalf("empty topic not recovered: %v", err)
	}
	rt, err := r.Topic("events")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Committed("g1", "events", 0); got != 2 {
		t.Errorf("committed = %d, want 2", got)
	}
	// Partition 0 got rows 0 and 2; partition 1 got row 1.
	recs, err := rt.Fetch(0, 0, 10)
	if err != nil || len(recs) != 2 {
		t.Fatalf("partition 0 fetch: %v (%d recs)", err, len(recs))
	}
	if recs[0].Key != "k0" || !recs[0].Time.Equal(base) {
		t.Errorf("record 0 = %+v", recs[0])
	}
	wantRow := rows[0]
	for c, cell := range recs[0].Row {
		switch want := wantRow[c].(type) {
		case time.Time:
			if got, ok := cell.(time.Time); !ok || !got.Equal(want) {
				t.Errorf("cell %d = %#v, want %v", c, cell, want)
			}
		case []byte:
			if got, ok := cell.([]byte); !ok || string(got) != string(want) {
				t.Errorf("cell %d = %#v, want %v", c, cell, want)
			}
		default:
			if cell != wantRow[c] {
				t.Errorf("cell %d = %#v, want %#v", c, cell, wantRow[c])
			}
		}
	}
	// Offsets continue where the crash left off.
	off, err := rt.Append(0, Record{Time: base, Row: []any{int64(9)}})
	if err != nil {
		t.Fatal(err)
	}
	if off != 2 {
		t.Errorf("post-recovery append offset = %d, want 2", off)
	}
	// EnsureTopic is idempotent against the recovered topology.
	if _, err := r.EnsureTopic("events", 2); err != nil {
		t.Errorf("EnsureTopic on recovered topic: %v", err)
	}
	if _, err := r.EnsureTopic("events", 5); err == nil {
		t.Error("EnsureTopic accepted a partition-count mismatch")
	}
}

// TestWALSegmentRotation forces rotation with a tiny segment size and
// checks recovery stitches the files back together in order.
func TestWALSegmentRotation(t *testing.T) {
	root := t.TempDir()
	cfg := walConfig(fault.RealClock{})
	cfg.SegmentBytes = 256
	l, err := NewDurableLog(fsys.NewLocal(root), cfg)
	if err != nil {
		t.Fatal(err)
	}
	topic, err := l.CreateTopic("events", 1)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	const n = 60
	for i := 0; i < n; i++ {
		if _, err := topic.Append(0, Record{Time: base, Key: "key-" + strconv.Itoa(i), Row: []any{int64(i), "padding-padding", int64(1)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := fsys.NewLocal(root).ListFiles("wal/t/events/0")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected rotation to produce several segment files, got %d", len(files))
	}
	r, err := NewDurableLog(fsys.NewLocal(root), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Errorf("close recovered log: %v", err)
		}
	}()
	rt, err := r.Topic("events")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := rt.Fetch(0, 0, n+10)
	if err != nil || len(recs) != n {
		t.Fatalf("recovered %d records (err %v), want %d", len(recs), err, n)
	}
	for i, rec := range recs {
		if rec.Offset != int64(i) || rec.Row[0] != int64(i) {
			t.Fatalf("record %d out of order: %+v", i, rec)
		}
	}
}

// TestWALCommittedOffsetsAcrossRestart is the consumer-group durability
// contract: after a crash, recovery must not redeliver below the committed
// offset and must redeliver everything above it. Seeded, ManualClock.
func TestWALCommittedOffsetsAcrossRestart(t *testing.T) {
	for _, seed := range walSeeds(t) {
		t.Run("seed-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			root := t.TempDir()
			clock := fault.NewManualClock(time.Unix(1_700_000_000, 0))
			l, err := NewDurableLog(fsys.NewLocal(root), walConfig(clock))
			if err != nil {
				t.Fatal(err)
			}
			topic, err := l.CreateTopic("events", 2)
			if err != nil {
				t.Fatal(err)
			}
			tab := newEventsTable(t)
			wcfg := WriterConfig{Clock: clock}
			w := NewSegmentWriter(l, topic, tab, wcfg)

			consumed := 10 + rng.Intn(20) // per partition, delivered before the crash
			pending := 1 + rng.Intn(10)
			for p := 0; p < 2; p++ {
				for i := 0; i < consumed; i++ {
					if _, err := topic.Append(p, Record{Time: clock.Now(), Row: []any{int64(i), "us", int64(1)}}); err != nil {
						t.Fatal(err)
					}
				}
			}
			if n := w.RunOnce(); n != 2*consumed {
				t.Fatalf("RunOnce consumed %d, want %d", n, 2*consumed)
			}
			// More records arrive after the last commit: these must be
			// redelivered in full after the crash.
			for p := 0; p < 2; p++ {
				for i := 0; i < pending; i++ {
					if _, err := topic.Append(p, Record{Time: clock.Now(), Row: []any{int64(consumed + i), "de", int64(1)}}); err != nil {
						t.Fatal(err)
					}
				}
			}
			w.Kill() // abrupt: no drain, no final commits
			// Crash: the log is abandoned without Close; recovery starts
			// from the files alone.
			r, err := NewDurableLog(fsys.NewLocal(root), walConfig(clock))
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := r.Close(); err != nil {
					t.Errorf("close recovered log: %v", err)
				}
			}()
			for p := 0; p < 2; p++ {
				if got := r.Committed(DefaultWriterGroup, "events", p); got != int64(consumed) {
					t.Errorf("partition %d committed = %d, want %d", p, got, consumed)
				}
			}
			rowsBefore := tab.Stats().Rows
			if rowsBefore != 2*consumed {
				t.Fatalf("druid rows before recovery = %d, want %d", rowsBefore, 2*consumed)
			}
			rt, err := r.Topic("events")
			if err != nil {
				t.Fatal(err)
			}
			w2 := NewSegmentWriter(r, rt, tab, wcfg)
			if n := w2.RunOnce(); n != 2*pending {
				t.Fatalf("post-recovery RunOnce consumed %d, want %d (only records above the committed offset)", n, 2*pending)
			}
			if got := tab.Stats().Rows; got != 2*(consumed+pending) {
				t.Errorf("druid rows after recovery = %d, want %d (no redelivery below committed, full redelivery above)", got, 2*(consumed+pending))
			}
		})
	}
}

// TestWALExactlyOnceRedelivery pins the crash window between druid append
// and offset commit: with the offsets WAL failing, every poll redelivers the
// batch — and the druid source watermark must swallow each redelivery.
func TestWALExactlyOnceRedelivery(t *testing.T) {
	inj := fault.NewInjector(42)
	inj.FaultFS(fault.FSRule{Path: "offsets-", Ops: []string{"write"}, ErrProb: 1})
	fs := &fault.FS{Injector: inj, Base: fsys.NewLocal(t.TempDir())}
	clock := fault.NewManualClock(time.Unix(1_700_000_000, 0))
	l, err := NewDurableLog(fs, walConfig(clock))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := l.Close(); err != nil {
			t.Logf("close: %v", err)
		}
	}()
	topic, err := l.CreateTopic("events", 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := newEventsTable(t)
	w := NewSegmentWriter(l, topic, tab, WriterConfig{Clock: clock})
	reg := obs.NewRegistry()
	w.RegisterObsMetrics(reg)
	for i := 0; i < 5; i++ {
		if _, err := topic.Append(0, Record{Time: clock.Now(), Row: []any{int64(i), "us", int64(1)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Two polls with the commit path down: rows land once, offsets stay.
	for i := 0; i < 2; i++ {
		if n := w.RunOnce(); n != 0 {
			t.Fatalf("poll %d consumed %d with commits failing, want 0", i, n)
		}
		if got := tab.Stats().Rows; got != 5 {
			t.Fatalf("poll %d: druid rows = %d, want 5 (redelivery must dedup)", i, got)
		}
	}
	if got := l.Committed(DefaultWriterGroup, "events", 0); got != 0 {
		t.Fatalf("committed advanced to %d despite WAL failures", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["ingest_commit_errors"] < 2 {
		t.Errorf("ingest_commit_errors = %d, want >= 2", snap.Counters["ingest_commit_errors"])
	}
	if got := snap.Counters["ingest_rows_written"]; got != 5 {
		t.Errorf("ingest_rows_written = %d, want 5 (deduped redeliveries must not count)", got)
	}
	// Heal the filesystem: the next poll commits and the loop drains.
	inj.Reset()
	if n := w.RunOnce(); n != 5 {
		t.Fatalf("post-heal RunOnce consumed %d, want 5", n)
	}
	if got := tab.Stats().Rows; got != 5 {
		t.Errorf("druid rows = %d, want 5", got)
	}
	if got := l.Committed(DefaultWriterGroup, "events", 0); got != 5 {
		t.Errorf("committed = %d, want 5", got)
	}
}

// TestChaosLifecycleWALTornTail is the torn-tail recovery property test:
// for seeded random truncation points of a clean WAL segment, recovery must
// rebuild exactly the records whose frames lie fully below the cut and
// account for the truncated bytes.
func TestChaosLifecycleWALTornTail(t *testing.T) {
	for _, seed := range walSeeds(t) {
		t.Run("seed-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			root := t.TempDir()
			l, err := NewDurableLog(fsys.NewLocal(root), walConfig(fault.RealClock{}))
			if err != nil {
				t.Fatal(err)
			}
			topic, err := l.CreateTopic("events", 1)
			if err != nil {
				t.Fatal(err)
			}
			base := time.Unix(1_700_000_000, 0)
			const n = 40
			for i := 0; i < n; i++ {
				if _, err := topic.Append(0, Record{Time: base, Key: "k" + strconv.Itoa(i), Row: []any{int64(i), "us", int64(i % 7)}}); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			segRel := filepath.Join("wal", "t", "events", "0", "seg-000001.log")
			data, err := os.ReadFile(filepath.Join(root, segRel))
			if err != nil {
				t.Fatal(err)
			}
			// Frame boundaries: frameEnds[i] = bytes holding records 0..i.
			var frameEnds []int
			for off := 0; off < len(data); {
				_, fn, ok := nextFrame(data[off:])
				if !ok {
					t.Fatalf("clean WAL has corrupt frame at %d", off)
				}
				off += fn
				frameEnds = append(frameEnds, off)
			}
			if len(frameEnds) != n {
				t.Fatalf("clean WAL holds %d frames, want %d", len(frameEnds), n)
			}
			cuts := []int{0, 1, frameHeader - 1, len(data) - 1, len(data)}
			for i := 0; i < 12; i++ {
				cuts = append(cuts, rng.Intn(len(data)+1))
			}
			for _, cut := range cuts {
				wantRecs := 0
				for _, end := range frameEnds {
					if end <= cut {
						wantRecs++
					}
				}
				tornRoot := t.TempDir()
				copyTree(t, root, tornRoot)
				if err := os.WriteFile(filepath.Join(tornRoot, segRel), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				r, err := NewDurableLog(fsys.NewLocal(tornRoot), walConfig(fault.RealClock{}))
				if err != nil {
					t.Fatalf("cut %d: recovery failed: %v", cut, err)
				}
				rt, err := r.Topic("events")
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				recs, err := rt.Fetch(0, 0, n+1)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				if len(recs) != wantRecs {
					t.Fatalf("cut %d: recovered %d records, want %d (longest valid prefix)", cut, len(recs), wantRecs)
				}
				for j, rec := range recs {
					if rec.Offset != int64(j) || rec.Row[0] != int64(j) {
						t.Fatalf("cut %d: record %d corrupt: %+v", cut, j, rec)
					}
				}
				wantTail := int64(cut)
				if wantRecs > 0 {
					wantTail = int64(cut - frameEnds[wantRecs-1])
				}
				if got := r.WAL().Stats().TruncatedTailBytes; got != wantTail {
					t.Errorf("cut %d: truncated tail bytes = %d, want %d", cut, got, wantTail)
				}
				// The recovered log stays writable past the truncation.
				if off, err := rt.Append(0, Record{Time: base, Row: []any{int64(99), "us", int64(0)}}); err != nil || off != int64(wantRecs) {
					t.Fatalf("cut %d: post-recovery append: offset %d err %v", cut, off, err)
				}
				if err := r.Close(); err != nil {
					t.Errorf("cut %d: close: %v", cut, err)
				}
			}
		})
	}
}

// TestChaosLifecycleWALTornWrites drives seeded torn-write and fsync faults
// through the WAL while the producer retries every rejected batch, then
// crashes and recovers: every acked record must come back exactly once, in
// order — torn frames are truncated, retried copies deduplicated.
func TestChaosLifecycleWALTornWrites(t *testing.T) {
	for _, seed := range walSeeds(t) {
		t.Run("seed-"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			root := t.TempDir()
			inj := fault.NewInjector(seed)
			inj.FaultFS(fault.FSRule{Path: "wal/t/", Ops: []string{"write"}, TornProb: 0.2})
			inj.FaultFS(fault.FSRule{Path: "wal/t/", Ops: []string{"sync"}, ErrProb: 0.05})
			fs := &fault.FS{Injector: inj, Base: fsys.NewLocal(root)}
			l, err := NewDurableLog(fs, walConfig(fault.RealClock{}))
			if err != nil {
				t.Fatal(err)
			}
			topic, err := l.CreateTopic("events", 2)
			if err != nil {
				t.Fatal(err)
			}
			base := time.Unix(1_700_000_000, 0)
			const n = 200
			acked := 0
			for i := 0; i < n; i++ {
				rec := Record{Time: base, Key: "k" + strconv.Itoa(i), Row: []any{int64(i), "us", int64(1)}}
				ok := false
				for attempt := 0; attempt < 50; attempt++ {
					if _, err := topic.Append(i%2, rec); err == nil {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("record %d never acked after 50 attempts", i)
				}
				acked++
			}
			if inj.Counters.FSTornWrites.Load() == 0 {
				t.Fatal("no torn writes were injected; the test exercised nothing")
			}
			// Crash without Close, recover against the pristine filesystem.
			r, err := NewDurableLog(fsys.NewLocal(root), walConfig(fault.RealClock{}))
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := r.Close(); err != nil {
					t.Errorf("close recovered log: %v", err)
				}
			}()
			rt, err := r.Topic("events")
			if err != nil {
				t.Fatal(err)
			}
			var got []int64
			for p := 0; p < 2; p++ {
				recs, err := rt.Fetch(p, 0, n+1)
				if err != nil {
					t.Fatal(err)
				}
				for j, rec := range recs {
					if rec.Offset != int64(j) {
						t.Fatalf("partition %d record %d has offset %d", p, j, rec.Offset)
					}
					got = append(got, rec.Row[0].(int64))
				}
			}
			if len(got) != acked {
				t.Fatalf("recovered %d records, want %d acked (seed %d, torn=%d, truncated=%d bytes)",
					len(got), acked, seed, inj.Counters.FSTornWrites.Load(), r.WAL().Stats().TruncatedTailBytes)
			}
			seen := map[int64]int{}
			for _, v := range got {
				seen[v]++
			}
			for i := int64(0); i < n; i++ {
				if seen[i] != 1 {
					t.Fatalf("record %d recovered %d times, want exactly once", i, seen[i])
				}
			}
		})
	}
}

// copyTree duplicates a directory tree of regular files.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer func() { _ = in.Close() }() // read-only source
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			_ = out.Close() // already failing: report the copy error
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}
