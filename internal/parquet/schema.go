// Package parquet implements the columnar file format of §V: data
// horizontally partitioned into row groups, vertically into column chunks,
// nested fields stored as separate columns via repetition/definition levels,
// dictionary pages, and a footer with codecs, encodings and column-level
// min/max statistics (Fig 3).
//
// Two readers operate on the identical format: the legacy reader (row-by-row
// assembly of all fields, §V.C) and the new reader (nested column pruning,
// columnar reads, predicate pushdown, dictionary pushdown, lazy reads,
// vectorized decoding — §V.D–§V.I). Two writers likewise: the legacy
// record-reconstructing writer and the native columnar writer (§V.J).
package parquet

import (
	"fmt"
	"strings"

	"prestolite/internal/types"
)

// NodeKind classifies schema tree nodes.
type NodeKind int

const (
	KindPrimitive NodeKind = iota
	KindStruct
	KindList
	KindMap
)

// Node is one field in the schema tree. Every field is optional (nullable);
// lists and maps add a repetition level and an extra definition level that
// distinguishes NULL from empty.
type Node struct {
	Name string
	Kind NodeKind
	// Prim is the SQL type of a primitive leaf.
	Prim *types.Type
	// Children: struct fields; list: [element]; map: [key, value].
	Children []*Node

	// RepLevel is the max repetition level at/above this node.
	RepLevel int
	// DefNotNull is the definition level meaning "this field is present".
	DefNotNull int
	// DefHasItems (lists/maps) means "present and non-empty".
	DefHasItems int
	// LeafIndex is the index into Schema.Leaves for primitives (-1 else).
	LeafIndex int

	// Path is the dotted path from the root, e.g. "base.city_id".
	Path string
}

// Leaf is a primitive column stored as one chunk per row group.
type Leaf struct {
	Node   *Node
	MaxRep int
	MaxDef int
	Index  int
}

// Schema is the file schema: named, typed top-level columns shredded into
// primitive leaves.
type Schema struct {
	Names  []string
	Types  []*types.Type
	Roots  []*Node
	Leaves []*Leaf
}

// NewSchema builds a schema from top-level column names and types.
func NewSchema(names []string, colTypes []*types.Type) (*Schema, error) {
	if len(names) != len(colTypes) {
		return nil, fmt.Errorf("parquet: %d names for %d types", len(names), len(colTypes))
	}
	s := &Schema{Names: names, Types: colTypes}
	for i, name := range names {
		node, err := s.buildNode(name, name, colTypes[i], 0, 0)
		if err != nil {
			return nil, err
		}
		s.Roots = append(s.Roots, node)
	}
	return s, nil
}

func (s *Schema) buildNode(name, path string, t *types.Type, rep, def int) (*Node, error) {
	n := &Node{Name: name, Path: path, RepLevel: rep, DefNotNull: def + 1, LeafIndex: -1}
	switch t.Kind {
	case types.KindArray:
		n.Kind = KindList
		n.RepLevel = rep + 1
		n.DefHasItems = n.DefNotNull + 1
		elem, err := s.buildNode("element", path+".element", t.Elem, rep+1, n.DefHasItems)
		if err != nil {
			return nil, err
		}
		n.Children = []*Node{elem}
	case types.KindMap:
		n.Kind = KindMap
		n.RepLevel = rep + 1
		n.DefHasItems = n.DefNotNull + 1
		key, err := s.buildNode("key", path+".key", t.Key, rep+1, n.DefHasItems)
		if err != nil {
			return nil, err
		}
		val, err := s.buildNode("value", path+".value", t.Value, rep+1, n.DefHasItems)
		if err != nil {
			return nil, err
		}
		n.Children = []*Node{key, val}
	case types.KindRow:
		n.Kind = KindStruct
		for _, f := range t.Fields {
			child, err := s.buildNode(f.Name, path+"."+f.Name, f.Type, rep, n.DefNotNull)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		}
	case types.KindUnknown:
		return nil, fmt.Errorf("parquet: cannot store unknown type at %s", path)
	default:
		n.Kind = KindPrimitive
		n.Prim = t
		leaf := &Leaf{Node: n, MaxRep: rep, MaxDef: n.DefNotNull, Index: len(s.Leaves)}
		n.LeafIndex = leaf.Index
		s.Leaves = append(s.Leaves, leaf)
	}
	return n, nil
}

// ColumnIndex returns the top-level column ordinal, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, n := range s.Names {
		if strings.EqualFold(n, name) {
			return i
		}
	}
	return -1
}

// Resolve finds the node at a dotted path (e.g. "base.city_id"); struct
// steps only. Returns nil if the path does not exist.
func (s *Schema) Resolve(path string) *Node {
	parts := strings.Split(path, ".")
	idx := s.ColumnIndex(parts[0])
	if idx < 0 {
		return nil
	}
	n := s.Roots[idx]
	for _, p := range parts[1:] {
		if n.Kind != KindStruct {
			return nil
		}
		var next *Node
		for _, c := range n.Children {
			if strings.EqualFold(c.Name, p) {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		n = next
	}
	return n
}

// LeavesUnder collects the leaf indexes in node's subtree, in order.
func LeavesUnder(n *Node) []int {
	var out []int
	var walk func(*Node)
	walk = func(x *Node) {
		if x.Kind == KindPrimitive {
			out = append(out, x.LeafIndex)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// TypeAt returns the SQL type of the node's subtree.
func TypeAt(n *Node) *types.Type {
	switch n.Kind {
	case KindPrimitive:
		return n.Prim
	case KindList:
		return types.NewArray(TypeAt(n.Children[0]))
	case KindMap:
		return types.NewMap(TypeAt(n.Children[0]), TypeAt(n.Children[1]))
	default:
		fields := make([]types.Field, len(n.Children))
		for i, c := range n.Children {
			fields[i] = types.Field{Name: c.Name, Type: TypeAt(c)}
		}
		return types.NewRow(fields...)
	}
}
