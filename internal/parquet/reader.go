package parquet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"prestolite/internal/fsys"
	"prestolite/internal/types"
)

// ReadFooter parses the file footer (Fig 3) and reconstructs the schema.
func ReadFooter(f fsys.File) (*FileMeta, *Schema, error) {
	size := f.Size()
	if size < int64(2*len(magic)+4) {
		return nil, nil, fmt.Errorf("parquet: file too small (%d bytes)", size)
	}
	tail := make([]byte, 8)
	if _, err := f.ReadAt(tail, size-8); err != nil {
		return nil, nil, fmt.Errorf("parquet: reading footer tail: %w", err)
	}
	if !bytes.Equal(tail[4:], magic) {
		return nil, nil, fmt.Errorf("parquet: bad trailing magic %q", tail[4:])
	}
	footerLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if footerLen <= 0 || footerLen > size-int64(2*len(magic)+4) {
		return nil, nil, fmt.Errorf("parquet: bad footer length %d", footerLen)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, size-8-footerLen); err != nil {
		return nil, nil, fmt.Errorf("parquet: reading footer: %w", err)
	}
	var meta FileMeta
	if err := gob.NewDecoder(bytes.NewReader(footer)).Decode(&meta); err != nil {
		return nil, nil, fmt.Errorf("parquet: decode footer: %w", err)
	}
	colTypes := make([]*types.Type, len(meta.TypeStrs))
	for i, s := range meta.TypeStrs {
		t, err := types.Parse(s)
		if err != nil {
			return nil, nil, fmt.Errorf("parquet: footer schema: %w", err)
		}
		colTypes[i] = t
	}
	schema, err := NewSchema(meta.Names, colTypes)
	if err != nil {
		return nil, nil, err
	}
	return &meta, schema, nil
}

// ---------------------------------------------------------------------------
// Column chunk decoding.

// chunkData is a decoded leaf chunk: level streams plus typed values.
type chunkData struct {
	leaf *Leaf
	reps []uint8 // nil when MaxRep == 0
	defs []uint8 // nil when MaxDef == 0

	ints   []int64
	floats []float64
	bools  []bool
	strs   []string
	// valueIdx maps record index -> value index for flat nullable chunks
	// (built lazily by flatValueAt).
	valueIdx []int32
	entries  int
}

func (c *chunkData) valueAt(i int) any {
	switch c.leaf.Node.Prim.Kind {
	case types.KindDouble:
		return c.floats[i]
	case types.KindBoolean:
		return c.bools[i]
	case types.KindVarchar:
		return c.strs[i]
	default:
		return c.ints[i]
	}
}

// ChunkCache is the worker-local data cache contract (tier 1 of the §VII
// hierarchy): decompressed column-chunk bodies keyed by file path, leaf
// column path, row group ordinal and page kind (data vs dictionary).
// Implementations must treat returned slices as shared and read-only; the
// reader never mutates a cached body. Defined here (and satisfied by
// internal/cache.ChunkCache) so parquet does not depend on the cache
// package.
type ChunkCache interface {
	GetChunk(path, column string, rowGroup int, dict bool) ([]byte, bool)
	PutChunk(path, column string, rowGroup int, dict bool, body []byte)
}

// chunkFetch locates chunk bytes: through the data cache when one is
// configured (a hit skips both the ReadAt and the decompression — the two
// costs the Alluxio-style local cache exists to remove), straight from the
// file otherwise. The zero value is the uncached baseline.
type chunkFetch struct {
	cache    ChunkCache
	path     string
	rowGroup int
}

// body returns the decompressed bytes of the chunk's data pages
// (dict=false) or dictionary page (dict=true).
func (cf chunkFetch) body(f fsys.File, codec Codec, cm *ChunkMeta, leaf *Leaf, dict bool) ([]byte, error) {
	if cf.cache != nil {
		if b, ok := cf.cache.GetChunk(cf.path, leaf.Node.Path, cf.rowGroup, dict); ok {
			return b, nil
		}
	}
	off, n := cm.DataOffset, cm.DataLen
	what := "chunk"
	if dict {
		off, n = cm.DictOffset, cm.DictLen
		what = "dictionary of"
	}
	raw := make([]byte, n)
	if _, err := f.ReadAt(raw, off); err != nil {
		return nil, fmt.Errorf("parquet: reading %s %s: %w", what, leaf.Node.Path, err)
	}
	body, err := decompress(codec, raw)
	if err != nil {
		return nil, err
	}
	if cf.cache != nil {
		cf.cache.PutChunk(cf.path, leaf.Node.Path, cf.rowGroup, dict, body)
	}
	return body, nil
}

// readChunkDictionary reads and decodes only the dictionary page of a chunk
// (the dictionary-pushdown probe, §V.G). Returns nil when not
// dictionary-encoded.
func readChunkDictionary(f fsys.File, codec Codec, cm *ChunkMeta, leaf *Leaf, cf chunkFetch) ([]any, error) {
	if !cm.Dictionary {
		return nil, nil
	}
	body, err := cf.body(f, codec, cm, leaf, true)
	if err != nil {
		return nil, err
	}
	dec := &valueDecoder{data: body}
	n, err := dec.uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]any, n)
	for i := range out {
		if leaf.Node.Prim.Kind == types.KindVarchar {
			s, err := dec.string()
			if err != nil {
				return nil, err
			}
			out[i] = s
		} else {
			v, err := dec.int64()
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
	}
	return out, nil
}

// decodeChunk reads and decodes one leaf chunk fully.
//
// vectorized selects the batched triplet decoder (§V.I): levels and values
// are decoded in batches of 1000 triplets with decoder state kept in locals
// ("registers"), a cached dictionary, and a direct path for non-nullable
// non-nested columns. The scalar path decodes one triplet per loop
// iteration, re-checking stream state each time.
func decodeChunk(f fsys.File, codec Codec, cm *ChunkMeta, leaf *Leaf, vectorized bool, cf chunkFetch) (*chunkData, error) {
	body, err := cf.body(f, codec, cm, leaf, false)
	if err != nil {
		return nil, err
	}
	dec := &valueDecoder{data: body}
	n64, err := dec.uvarint()
	if err != nil {
		return nil, err
	}
	n := int(n64)
	cd := &chunkData{leaf: leaf, entries: n}
	if leaf.MaxRep > 0 {
		if dec.pos+n > len(body) {
			return nil, fmt.Errorf("parquet: truncated rep levels in %s", leaf.Node.Path)
		}
		cd.reps = body[dec.pos : dec.pos+n]
		dec.pos += n
	}
	if leaf.MaxDef > 0 {
		if dec.pos+n > len(body) {
			return nil, fmt.Errorf("parquet: truncated def levels in %s", leaf.Node.Path)
		}
		cd.defs = body[dec.pos : dec.pos+n]
		dec.pos += n
	}
	if dec.pos >= len(body) {
		return nil, fmt.Errorf("parquet: truncated chunk %s", leaf.Node.Path)
	}
	encoding := body[dec.pos]
	dec.pos++

	numValues := n
	if cd.defs != nil {
		numValues = 0
		maxDef := uint8(leaf.MaxDef)
		for _, d := range cd.defs {
			if d == maxDef {
				numValues++
			}
		}
	}

	if encoding == 1 {
		dict, err := readChunkDictionary(f, codec, cm, leaf, cf)
		if err != nil {
			return nil, err
		}
		if dict == nil {
			return nil, fmt.Errorf("parquet: chunk %s dict-encoded without dictionary page", leaf.Node.Path)
		}
		return decodeDictChunk(cd, dec, dict, numValues, vectorized)
	}
	return decodePlainChunk(cd, dec, numValues, vectorized)
}

func decodePlainChunk(cd *chunkData, dec *valueDecoder, numValues int, vectorized bool) (*chunkData, error) {
	kind := cd.leaf.Node.Prim.Kind
	if vectorized {
		// Batched decode: values land directly in the typed slice with one
		// bounds check per batch of 1000.
		switch kind {
		case types.KindDouble:
			cd.floats = make([]float64, numValues)
			for i := 0; i < numValues; {
				end := i + 1000
				if end > numValues {
					end = numValues
				}
				for ; i < end; i++ {
					v, err := dec.float64()
					if err != nil {
						return nil, err
					}
					cd.floats[i] = v
				}
			}
		case types.KindBoolean:
			cd.bools = make([]bool, numValues)
			for i := 0; i < numValues; i++ {
				v, err := dec.bool()
				if err != nil {
					return nil, err
				}
				cd.bools[i] = v
			}
		case types.KindVarchar:
			cd.strs = make([]string, numValues)
			for i := 0; i < numValues; i++ {
				v, err := dec.string()
				if err != nil {
					return nil, err
				}
				cd.strs[i] = v
			}
		default:
			cd.ints = make([]int64, numValues)
			data, pos := dec.data, dec.pos
			for i := 0; i < numValues; i++ {
				v, n := binary.Varint(data[pos:])
				if n <= 0 {
					return nil, fmt.Errorf("parquet: bad varint in %s", cd.leaf.Node.Path)
				}
				cd.ints[i] = v
				pos += n
			}
			dec.pos = pos
		}
		return cd, nil
	}
	// Scalar path: append one value at a time.
	for i := 0; i < numValues; i++ {
		switch kind {
		case types.KindDouble:
			v, err := dec.float64()
			if err != nil {
				return nil, err
			}
			cd.floats = append(cd.floats, v)
		case types.KindBoolean:
			v, err := dec.bool()
			if err != nil {
				return nil, err
			}
			cd.bools = append(cd.bools, v)
		case types.KindVarchar:
			v, err := dec.string()
			if err != nil {
				return nil, err
			}
			cd.strs = append(cd.strs, v)
		default:
			v, err := dec.int64()
			if err != nil {
				return nil, err
			}
			cd.ints = append(cd.ints, v)
		}
	}
	return cd, nil
}

func decodeDictChunk(cd *chunkData, dec *valueDecoder, dict []any, numValues int, vectorized bool) (*chunkData, error) {
	kind := cd.leaf.Node.Prim.Kind
	if kind == types.KindVarchar {
		// Cached dictionary: decode ids, then one lookup per value
		// (vectorized keeps the dict in a local slice of the concrete type).
		strDict := make([]string, len(dict))
		for i, v := range dict {
			strDict[i] = v.(string)
		}
		cd.strs = make([]string, numValues)
		for i := 0; i < numValues; i++ {
			id, err := dec.uvarint()
			if err != nil {
				return nil, err
			}
			if int(id) >= len(strDict) {
				return nil, fmt.Errorf("parquet: dict id %d out of range in %s", id, cd.leaf.Node.Path)
			}
			cd.strs[i] = strDict[id]
		}
		return cd, nil
	}
	intDict := make([]int64, len(dict))
	for i, v := range dict {
		intDict[i] = v.(int64)
	}
	cd.ints = make([]int64, numValues)
	for i := 0; i < numValues; i++ {
		id, err := dec.uvarint()
		if err != nil {
			return nil, err
		}
		if int(id) >= len(intDict) {
			return nil, fmt.Errorf("parquet: dict id %d out of range in %s", id, cd.leaf.Node.Path)
		}
		cd.ints[i] = intDict[id]
	}
	return cd, nil
}
