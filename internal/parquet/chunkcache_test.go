package parquet

import (
	"reflect"
	"testing"

	"prestolite/internal/cache"
	"prestolite/internal/fsys"
)

// countingFile counts ReadAt calls so tests can prove the chunk cache
// short-circuits filesystem reads.
type countingFile struct {
	*fsys.BytesFile
	reads int
}

func (f *countingFile) ReadAt(p []byte, off int64) (int, error) {
	f.reads++
	return f.BytesFile.ReadAt(p, off)
}

// TestChunkCacheShortCircuitsReads re-reads the same file through one
// ChunkCache and asserts (a) identical rows, (b) zero chunk ReadAt calls on
// the warm pass — only the footer is touched — and (c) hit/miss counters
// moving the right way.
func TestChunkCacheShortCircuitsReads(t *testing.T) {
	s := tripSchema(t)
	rows := tripRows()
	base := writeFile(t, s, rows, WriterOptions{RowGroupRows: 2, Codec: CodecSnappy}, true)
	cc := cache.NewChunkCache(1 << 20)

	read := func() ([][]any, int) {
		f := &countingFile{BytesFile: &fsys.BytesFile{Data: base.Data}}
		opts := AllOptimizations(nil, nil)
		opts.LazyReads = false
		opts.Path = "/warehouse/trips/part-0.parquet"
		opts.Chunks = cc
		r, err := NewReader(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := drainReader(t, r.Next)
		return got, f.reads
	}

	cold, coldReads := read()
	if !reflect.DeepEqual(normalizeRows(cold), normalizeRows(rows)) {
		t.Fatalf("cold read mismatch: %v", cold)
	}
	if cc.Metrics.Misses.Load() == 0 || cc.Len() == 0 {
		t.Fatalf("cold pass should populate the cache: misses=%d len=%d",
			cc.Metrics.Misses.Load(), cc.Len())
	}

	warm, warmReads := read()
	if !reflect.DeepEqual(normalizeRows(warm), normalizeRows(cold)) {
		t.Fatalf("warm read mismatch")
	}
	// The footer costs 2 ReadAts (tail + footer body); every chunk beyond
	// that must come from the cache.
	if warmReads != 2 {
		t.Errorf("warm pass did %d ReadAts, want 2 (footer only); cold did %d", warmReads, coldReads)
	}
	if cc.Metrics.Hits.Load() == 0 {
		t.Error("warm pass recorded no cache hits")
	}

	// Invalidation drops the file's chunks; the next read goes to disk again.
	if n := cc.InvalidatePrefix("/warehouse/trips/"); n == 0 {
		t.Fatal("invalidation dropped nothing")
	}
	inval, invalReads := read()
	if !reflect.DeepEqual(normalizeRows(inval), normalizeRows(cold)) {
		t.Fatalf("post-invalidation read mismatch")
	}
	if invalReads <= 2 {
		t.Errorf("post-invalidation pass did %d ReadAts, want chunk reads again", invalReads)
	}
}
