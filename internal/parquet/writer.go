package parquet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

var magic = []byte("PQL1")

// ChunkMeta locates one leaf's column chunk within a row group.
type ChunkMeta struct {
	LeafIndex  int
	DictOffset int64
	DictLen    int32
	DataOffset int64
	DataLen    int32
	NumEntries int64 // triplets (including nulls/empties)
	Dictionary bool
	Stats      Stats
}

// RowGroupMeta describes one horizontal partition.
type RowGroupMeta struct {
	NumRows int64
	Chunks  []ChunkMeta
}

// FileMeta is the footer payload (Fig 3: file metadata + row group
// metadata).
type FileMeta struct {
	Names     []string
	TypeStrs  []string
	Codec     Codec
	RowGroups []RowGroupMeta
}

// WriterOptions configures both writers.
type WriterOptions struct {
	// Codec compresses page bodies (default none).
	Codec Codec
	// RowGroupRows bounds rows per row group (default 4096).
	RowGroupRows int
	// DisableDictionary turns dictionary encoding off.
	DisableDictionary bool
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.RowGroupRows <= 0 {
		o.RowGroupRows = 4096
	}
	return o
}

// ---------------------------------------------------------------------------
// chunkWriter accumulates one leaf's triplets for the current row group.

type chunkWriter struct {
	leaf *Leaf
	reps []uint8
	defs []uint8

	ints   []int64
	floats []float64
	bools  []bool
	strs   []string
	stats  Stats
}

func newChunkWriter(leaf *Leaf) *chunkWriter { return &chunkWriter{leaf: leaf} }

func (c *chunkWriter) reset() {
	c.reps = c.reps[:0]
	c.defs = c.defs[:0]
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	c.bools = c.bools[:0]
	c.strs = c.strs[:0]
	c.stats = Stats{}
}

func (c *chunkWriter) addLevels(rep, def int) {
	if c.leaf.MaxRep > 0 {
		c.reps = append(c.reps, uint8(rep))
	}
	if c.leaf.MaxDef > 0 {
		c.defs = append(c.defs, uint8(def))
	}
}

func (c *chunkWriter) entries() int {
	if c.leaf.MaxDef > 0 {
		return len(c.defs)
	}
	return c.count()
}

func (c *chunkWriter) count() int {
	switch c.leaf.Node.Prim.Kind {
	case types.KindDouble:
		return len(c.floats)
	case types.KindBoolean:
		return len(c.bools)
	case types.KindVarchar:
		return len(c.strs)
	default:
		return len(c.ints)
	}
}

func (c *chunkWriter) addNull(rep, def int) {
	c.addLevels(rep, def)
	c.stats.NullCount++
}

func (c *chunkWriter) addInt64(rep int, v int64) {
	c.addLevels(rep, c.leaf.MaxDef)
	c.ints = append(c.ints, v)
	c.stats.updateInt(v)
	c.stats.NumValues++
}

func (c *chunkWriter) addFloat64(rep int, v float64) {
	c.addLevels(rep, c.leaf.MaxDef)
	c.floats = append(c.floats, v)
	c.stats.updateFloat(v)
	c.stats.NumValues++
}

func (c *chunkWriter) addBool(rep int, v bool) {
	c.addLevels(rep, c.leaf.MaxDef)
	c.bools = append(c.bools, v)
	if v {
		c.stats.updateInt(1)
	} else {
		c.stats.updateInt(0)
	}
	c.stats.NumValues++
}

func (c *chunkWriter) addString(rep int, v string) {
	c.addLevels(rep, c.leaf.MaxDef)
	c.strs = append(c.strs, v)
	c.stats.updateString(v)
	c.stats.NumValues++
}

func (c *chunkWriter) addBoxed(rep int, v any) error {
	switch c.leaf.Node.Prim.Kind {
	case types.KindDouble:
		switch x := v.(type) {
		case float64:
			c.addFloat64(rep, x)
		case int64:
			c.addFloat64(rep, float64(x))
		default:
			return fmt.Errorf("parquet: column %s expects double, got %T", c.leaf.Node.Path, v)
		}
	case types.KindBoolean:
		b, ok := v.(bool)
		if !ok {
			return fmt.Errorf("parquet: column %s expects boolean, got %T", c.leaf.Node.Path, v)
		}
		c.addBool(rep, b)
	case types.KindVarchar:
		s, ok := v.(string)
		if !ok {
			return fmt.Errorf("parquet: column %s expects varchar, got %T", c.leaf.Node.Path, v)
		}
		c.addString(rep, s)
	default:
		switch x := v.(type) {
		case int64:
			c.addInt64(rep, x)
		case int:
			c.addInt64(rep, int64(x))
		case int32:
			c.addInt64(rep, int64(x))
		default:
			return fmt.Errorf("parquet: column %s expects %s, got %T", c.leaf.Node.Path, c.leaf.Node.Prim, v)
		}
	}
	return nil
}

// serialize produces (dictPage, dataPage) bodies, uncompressed.
func (c *chunkWriter) serialize(allowDict bool) (dict []byte, data []byte, usedDict bool, err error) {
	var enc valueEncoder
	enc.putUvarint(uint64(c.entries()))
	for _, r := range c.reps {
		enc.buf.WriteByte(r)
	}
	for _, d := range c.defs {
		enc.buf.WriteByte(d)
	}

	kind := c.leaf.Node.Prim.Kind
	n := c.count()
	// Dictionary decision: few distinct values relative to count.
	if allowDict && n >= 8 && (kind == types.KindVarchar || kind == types.KindBigint || kind == types.KindInteger || kind == types.KindDate) {
		var ids []uint32
		var dictEnc valueEncoder
		distinct := 0
		ok := false
		switch kind {
		case types.KindVarchar:
			index := map[string]uint32{}
			ids = make([]uint32, n)
			for i, s := range c.strs {
				id, seen := index[s]
				if !seen {
					id = uint32(len(index))
					index[s] = id
				}
				ids[i] = id
			}
			distinct = len(index)
			if distinct <= 4096 && distinct*2 <= n {
				ordered := make([]string, distinct)
				for s, id := range index {
					ordered[id] = s
				}
				dictEnc.putUvarint(uint64(distinct))
				for _, s := range ordered {
					dictEnc.putString(s)
				}
				ok = true
			}
		default:
			index := map[int64]uint32{}
			ids = make([]uint32, n)
			for i, v := range c.ints {
				id, seen := index[v]
				if !seen {
					id = uint32(len(index))
					index[v] = id
				}
				ids[i] = id
			}
			distinct = len(index)
			if distinct <= 4096 && distinct*2 <= n {
				ordered := make([]int64, distinct)
				for v, id := range index {
					ordered[id] = v
				}
				dictEnc.putUvarint(uint64(distinct))
				for _, v := range ordered {
					dictEnc.putInt64(v)
				}
				ok = true
			}
		}
		if ok {
			enc.buf.WriteByte(1) // dictionary-encoded data
			for _, id := range ids {
				enc.putUvarint(uint64(id))
			}
			return dictEnc.buf.Bytes(), enc.buf.Bytes(), true, nil
		}
	}

	enc.buf.WriteByte(0) // plain
	switch kind {
	case types.KindDouble:
		for _, v := range c.floats {
			enc.putFloat64(v)
		}
	case types.KindBoolean:
		for _, v := range c.bools {
			enc.putBool(v)
		}
	case types.KindVarchar:
		for _, v := range c.strs {
			enc.putString(v)
		}
	default:
		for _, v := range c.ints {
			enc.putInt64(v)
		}
	}
	return nil, enc.buf.Bytes(), false, nil
}

// ---------------------------------------------------------------------------
// fileWriter: shared row-group/footer machinery.

type fileWriter struct {
	w           io.Writer
	offset      int64
	schema      *Schema
	opts        WriterOptions
	chunks      []*chunkWriter
	rowsInGroup int64
	meta        FileMeta
	closed      bool
}

func newFileWriter(w io.Writer, schema *Schema, opts WriterOptions) (*fileWriter, error) {
	opts = opts.withDefaults()
	fw := &fileWriter{w: w, schema: schema, opts: opts}
	fw.meta.Codec = opts.Codec
	fw.meta.Names = schema.Names
	for _, t := range schema.Types {
		fw.meta.TypeStrs = append(fw.meta.TypeStrs, t.String())
	}
	for _, leaf := range schema.Leaves {
		fw.chunks = append(fw.chunks, newChunkWriter(leaf))
	}
	if err := fw.write(magic); err != nil {
		return nil, err
	}
	return fw, nil
}

func (fw *fileWriter) write(data []byte) error {
	n, err := fw.w.Write(data)
	fw.offset += int64(n)
	return err
}

func (fw *fileWriter) maybeFlush() error {
	if fw.rowsInGroup >= int64(fw.opts.RowGroupRows) {
		return fw.flushRowGroup()
	}
	return nil
}

func (fw *fileWriter) flushRowGroup() error {
	if fw.rowsInGroup == 0 {
		return nil
	}
	rg := RowGroupMeta{NumRows: fw.rowsInGroup}
	for _, cw := range fw.chunks {
		dict, data, usedDict, err := cw.serialize(!fw.opts.DisableDictionary)
		if err != nil {
			return err
		}
		cm := ChunkMeta{
			LeafIndex:  cw.leaf.Index,
			NumEntries: int64(cw.entries()),
			Dictionary: usedDict,
			Stats:      cw.stats,
		}
		if usedDict {
			comp, err := compress(fw.opts.Codec, dict)
			if err != nil {
				return err
			}
			cm.DictOffset = fw.offset
			cm.DictLen = int32(len(comp))
			if err := fw.write(comp); err != nil {
				return err
			}
		}
		comp, err := compress(fw.opts.Codec, data)
		if err != nil {
			return err
		}
		cm.DataOffset = fw.offset
		cm.DataLen = int32(len(comp))
		if err := fw.write(comp); err != nil {
			return err
		}
		rg.Chunks = append(rg.Chunks, cm)
		cw.reset()
	}
	fw.meta.RowGroups = append(fw.meta.RowGroups, rg)
	fw.rowsInGroup = 0
	return nil
}

// Close flushes the last row group and writes the footer.
func (fw *fileWriter) Close() error {
	if fw.closed {
		return nil
	}
	fw.closed = true
	if err := fw.flushRowGroup(); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&fw.meta); err != nil {
		return fmt.Errorf("parquet: encode footer: %w", err)
	}
	if err := fw.write(buf.Bytes()); err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(buf.Len()))
	if err := fw.write(lenBuf[:]); err != nil {
		return err
	}
	return fw.write(magic)
}

// ---------------------------------------------------------------------------
// Shredders.

// shredValue walks a boxed value (the legacy, record-oriented path).
func (fw *fileWriter) shredValue(node *Node, v any, rep, def int) error {
	if v == nil {
		fw.shredNull(node, rep, def)
		return nil
	}
	switch node.Kind {
	case KindPrimitive:
		return fw.chunks[node.LeafIndex].addBoxed(rep, v)
	case KindStruct:
		fields, ok := v.([]any)
		if !ok || len(fields) != len(node.Children) {
			return fmt.Errorf("parquet: %s expects %d struct fields, got %T", node.Path, len(node.Children), v)
		}
		for i, child := range node.Children {
			if err := fw.shredValue(child, fields[i], rep, node.DefNotNull); err != nil {
				return err
			}
		}
		return nil
	case KindList:
		items, ok := v.([]any)
		if !ok {
			return fmt.Errorf("parquet: %s expects array, got %T", node.Path, v)
		}
		if len(items) == 0 {
			fw.shredEmpty(node, rep)
			return nil
		}
		for i, item := range items {
			r := rep
			if i > 0 {
				r = node.RepLevel
			}
			if err := fw.shredValue(node.Children[0], item, r, node.DefHasItems); err != nil {
				return err
			}
		}
		return nil
	case KindMap:
		entries, ok := v.([][2]any)
		if !ok {
			return fmt.Errorf("parquet: %s expects map, got %T", node.Path, v)
		}
		if len(entries) == 0 {
			fw.shredEmpty(node, rep)
			return nil
		}
		for i, e := range entries {
			r := rep
			if i > 0 {
				r = node.RepLevel
			}
			if e[0] == nil {
				return fmt.Errorf("parquet: %s has a NULL map key", node.Path)
			}
			if err := fw.shredValue(node.Children[0], e[0], r, node.DefHasItems); err != nil {
				return err
			}
			if err := fw.shredValue(node.Children[1], e[1], r, node.DefHasItems); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("parquet: bad node kind %d", node.Kind)
}

// shredNull records a null at this node for every descendant leaf.
func (fw *fileWriter) shredNull(node *Node, rep, def int) {
	if node.Kind == KindPrimitive {
		fw.chunks[node.LeafIndex].addNull(rep, def)
		return
	}
	for _, c := range node.Children {
		fw.shredNull(c, rep, def)
	}
}

// shredEmpty records a present-but-empty list/map.
func (fw *fileWriter) shredEmpty(node *Node, rep int) {
	for _, c := range node.Children {
		fw.shredNull(c, rep, node.DefNotNull)
	}
}

// shredBlock walks a block directly (the native, columnar path): no
// intermediate row records are materialized (§V.J).
func (fw *fileWriter) shredBlock(node *Node, blk block.Block, row, rep, def int) error {
	if blk.IsNull(row) {
		fw.shredNull(node, rep, def)
		return nil
	}
	switch node.Kind {
	case KindPrimitive:
		cw := fw.chunks[node.LeafIndex]
		switch b := blk.(type) {
		case *block.Int64Block:
			cw.addInt64(rep, b.Values[row])
			return nil
		case *block.Float64Block:
			cw.addFloat64(rep, b.Values[row])
			return nil
		case *block.BoolBlock:
			cw.addBool(rep, b.Values[row])
			return nil
		case *block.VarcharBlock:
			cw.addString(rep, b.Values[row])
			return nil
		default:
			return cw.addBoxed(rep, blk.Value(row))
		}
	case KindStruct:
		rb, ok := blk.(*block.RowBlock)
		if !ok {
			return fw.shredValue(node, blk.Value(row), rep, def)
		}
		for i, child := range node.Children {
			if err := fw.shredBlock(child, rb.Fields[i], row, rep, node.DefNotNull); err != nil {
				return err
			}
		}
		return nil
	case KindList:
		ab, ok := blk.(*block.ArrayBlock)
		if !ok {
			return fw.shredValue(node, blk.Value(row), rep, def)
		}
		start, end := int(ab.Offsets[row]), int(ab.Offsets[row+1])
		if start == end {
			fw.shredEmpty(node, rep)
			return nil
		}
		for i := start; i < end; i++ {
			r := rep
			if i > start {
				r = node.RepLevel
			}
			if err := fw.shredBlock(node.Children[0], ab.Elements, i, r, node.DefHasItems); err != nil {
				return err
			}
		}
		return nil
	case KindMap:
		mb, ok := blk.(*block.MapBlock)
		if !ok {
			return fw.shredValue(node, blk.Value(row), rep, def)
		}
		start, end := int(mb.Offsets[row]), int(mb.Offsets[row+1])
		if start == end {
			fw.shredEmpty(node, rep)
			return nil
		}
		for i := start; i < end; i++ {
			r := rep
			if i > start {
				r = node.RepLevel
			}
			if mb.Keys.IsNull(i) {
				return fmt.Errorf("parquet: %s has a NULL map key", node.Path)
			}
			if err := fw.shredBlock(node.Children[0], mb.Keys, i, r, node.DefHasItems); err != nil {
				return err
			}
			if err := fw.shredBlock(node.Children[1], mb.Values, i, r, node.DefHasItems); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("parquet: bad node kind %d", node.Kind)
}

// ---------------------------------------------------------------------------
// Public writers.

// NativeWriter writes engine pages directly from their columnar in-memory
// form to the columnar file format — data values, repetition values and
// definition values — without reconstructing records (§V.J).
type NativeWriter struct {
	fw *fileWriter
}

// NewNativeWriter creates a native writer.
func NewNativeWriter(w io.Writer, schema *Schema, opts WriterOptions) (*NativeWriter, error) {
	fw, err := newFileWriter(w, schema, opts)
	if err != nil {
		return nil, err
	}
	return &NativeWriter{fw: fw}, nil
}

// WritePage appends a page (one block per schema column).
func (nw *NativeWriter) WritePage(p *block.Page) error {
	if len(p.Blocks) != len(nw.fw.schema.Roots) {
		return fmt.Errorf("parquet: page has %d columns, schema has %d", len(p.Blocks), len(nw.fw.schema.Roots))
	}
	blocks := make([]block.Block, len(p.Blocks))
	for i, b := range p.Blocks {
		blocks[i] = block.Unwrap(b)
	}
	for row := 0; row < p.Count(); row++ {
		for col, node := range nw.fw.schema.Roots {
			if err := nw.fw.shredBlock(node, blocks[col], row, 0, 0); err != nil {
				return err
			}
		}
		nw.fw.rowsInGroup++
		if err := nw.fw.maybeFlush(); err != nil {
			return err
		}
	}
	return nil
}

// Close finalizes the file.
func (nw *NativeWriter) Close() error { return nw.fw.Close() }

// LegacyWriter is the old write path (§V.J): it "iterates each columnar
// block in a page and reconstructs every single record, then consumes each
// individual record and writes value bytes" — i.e. pages are first converted
// to boxed row records, then shredded. The on-disk output is identical to
// the native writer's; only the write path differs.
type LegacyWriter struct {
	fw *fileWriter
}

// NewLegacyWriter creates a legacy writer.
func NewLegacyWriter(w io.Writer, schema *Schema, opts WriterOptions) (*LegacyWriter, error) {
	fw, err := newFileWriter(w, schema, opts)
	if err != nil {
		return nil, err
	}
	return &LegacyWriter{fw: fw}, nil
}

// WritePage appends a page by reconstructing each record.
func (lw *LegacyWriter) WritePage(p *block.Page) error {
	if len(p.Blocks) != len(lw.fw.schema.Roots) {
		return fmt.Errorf("parquet: page has %d columns, schema has %d", len(p.Blocks), len(lw.fw.schema.Roots))
	}
	for row := 0; row < p.Count(); row++ {
		// Reconstruct the full boxed record: this is the overhead the native
		// writer eliminates.
		record := p.Row(row)
		for col, node := range lw.fw.schema.Roots {
			if err := lw.fw.shredValue(node, record[col], 0, 0); err != nil {
				return err
			}
		}
		lw.fw.rowsInGroup++
		if err := lw.fw.maybeFlush(); err != nil {
			return err
		}
	}
	return nil
}

// Close finalizes the file.
func (lw *LegacyWriter) Close() error { return lw.fw.Close() }
