package parquet

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"prestolite/internal/snappy"
	"prestolite/internal/types"
)

// Codec selects page compression (§V.J / Figs 18-20: Snappy, Gzip, none).
type Codec int

const (
	CodecNone Codec = iota
	CodecSnappy
	CodecGzip
)

func (c Codec) String() string {
	switch c {
	case CodecSnappy:
		return "snappy"
	case CodecGzip:
		return "gzip"
	}
	return "none"
}

// compress encodes a page body with the codec.
func compress(c Codec, data []byte) ([]byte, error) {
	switch c {
	case CodecNone:
		return data, nil
	case CodecSnappy:
		return snappy.Encode(nil, data), nil
	case CodecGzip:
		var buf bytes.Buffer
		w, _ := gzip.NewWriterLevel(&buf, gzip.DefaultCompression) // DefaultCompression is always a valid level
		if _, err := w.Write(data); err != nil {
			return nil, err
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("parquet: unknown codec %d", c)
}

// decompress decodes a page body.
func decompress(c Codec, data []byte) ([]byte, error) {
	switch c {
	case CodecNone:
		return data, nil
	case CodecSnappy:
		return snappy.Decode(nil, data)
	case CodecGzip:
		r, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		defer r.Close()
		return io.ReadAll(r)
	}
	return nil, fmt.Errorf("parquet: unknown codec %d", c)
}

// ---------------------------------------------------------------------------
// Plain value encoding: int64 varint, float64 LE bits, bool bytes, varchar
// length-prefixed.

type valueEncoder struct {
	buf bytes.Buffer
	tmp [binary.MaxVarintLen64]byte
}

func (e *valueEncoder) putInt64(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *valueEncoder) putUvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.buf.Write(e.tmp[:n])
}

func (e *valueEncoder) putFloat64(v float64) {
	binary.LittleEndian.PutUint64(e.tmp[:8], math.Float64bits(v))
	e.buf.Write(e.tmp[:8])
}

func (e *valueEncoder) putBool(v bool) {
	if v {
		e.buf.WriteByte(1)
	} else {
		e.buf.WriteByte(0)
	}
}

func (e *valueEncoder) putString(v string) {
	e.putUvarint(uint64(len(v)))
	e.buf.WriteString(v)
}

type valueDecoder struct {
	data []byte
	pos  int
}

func (d *valueDecoder) int64() (int64, error) {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("parquet: bad varint at %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *valueDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("parquet: bad uvarint at %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *valueDecoder) float64() (float64, error) {
	if d.pos+8 > len(d.data) {
		return 0, fmt.Errorf("parquet: truncated float at %d", d.pos)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.pos:]))
	d.pos += 8
	return v, nil
}

func (d *valueDecoder) bool() (bool, error) {
	if d.pos >= len(d.data) {
		return false, fmt.Errorf("parquet: truncated bool at %d", d.pos)
	}
	v := d.data[d.pos] != 0
	d.pos++
	return v, nil
}

func (d *valueDecoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.data) {
		return "", fmt.Errorf("parquet: truncated string at %d", d.pos)
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// ---------------------------------------------------------------------------
// Column statistics (footer, Fig 3: "column-level statistics, e.g., the
// minimum and maximum number of column values").

// Stats holds per-chunk min/max and null counts.
type Stats struct {
	HasMinMax  bool
	MinI, MaxI int64
	MinF, MaxF float64
	MinS, MaxS string
	NullCount  int64
	NumValues  int64 // present (non-null) values
}

func (st *Stats) updateInt(v int64) {
	if !st.HasMinMax || v < st.MinI {
		st.MinI = v
	}
	if !st.HasMinMax || v > st.MaxI {
		st.MaxI = v
	}
	st.HasMinMax = true
}

func (st *Stats) updateFloat(v float64) {
	if !st.HasMinMax || v < st.MinF {
		st.MinF = v
	}
	if !st.HasMinMax || v > st.MaxF {
		st.MaxF = v
	}
	st.HasMinMax = true
}

func (st *Stats) updateString(v string) {
	if !st.HasMinMax || v < st.MinS {
		st.MinS = v
	}
	if !st.HasMinMax || v > st.MaxS {
		st.MaxS = v
	}
	st.HasMinMax = true
}

// Min returns the typed minimum (or nil).
func (st *Stats) Min(t *types.Type) any {
	if !st.HasMinMax {
		return nil
	}
	switch t.Kind {
	case types.KindDouble:
		return st.MinF
	case types.KindVarchar:
		return st.MinS
	case types.KindBoolean:
		return st.MinI != 0
	default:
		return st.MinI
	}
}

// Max returns the typed maximum (or nil).
func (st *Stats) Max(t *types.Type) any {
	if !st.HasMinMax {
		return nil
	}
	switch t.Kind {
	case types.KindDouble:
		return st.MaxF
	case types.KindVarchar:
		return st.MaxS
	case types.KindBoolean:
		return st.MaxI != 0
	default:
		return st.MaxI
	}
}
