package parquet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"prestolite/internal/block"
	"prestolite/internal/fsys"
	"prestolite/internal/types"
)

// randomValue generates a boxed value of type t (nil = NULL 1/6 of the time).
func randomValue(r *rand.Rand, t *types.Type, depth int) any {
	if r.Intn(6) == 0 {
		return nil
	}
	switch t.Kind {
	case types.KindBoolean:
		return r.Intn(2) == 0
	case types.KindInteger, types.KindBigint, types.KindDate:
		return r.Int63n(1<<40) - (1 << 39)
	case types.KindDouble:
		return r.NormFloat64()
	case types.KindVarchar:
		n := r.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return string(b)
	case types.KindArray:
		n := r.Intn(4)
		out := make([]any, n)
		for i := range out {
			out[i] = randomValue(r, t.Elem, depth-1)
		}
		return out
	case types.KindMap:
		n := r.Intn(3)
		out := make([][2]any, 0, n)
		seen := map[string]bool{}
		for i := 0; i < n; i++ {
			var k any
			for k == nil {
				k = randomValue(r, t.Key, depth-1)
			}
			ks, _ := k.(string)
			if t.Key.Kind == types.KindVarchar && seen[ks] {
				continue
			}
			seen[ks] = true
			out = append(out, [2]any{k, randomValue(r, t.Value, depth-1)})
		}
		return out
	case types.KindRow:
		out := make([]any, len(t.Fields))
		for i, f := range t.Fields {
			out[i] = randomValue(r, f.Type, depth-1)
		}
		return out
	}
	return nil
}

var quickSchemas = []struct {
	names []string
	types []*types.Type
}{
	{[]string{"a"}, []*types.Type{types.Bigint}},
	{[]string{"a", "b"}, []*types.Type{types.Double, types.Varchar}},
	{[]string{"arr"}, []*types.Type{types.NewArray(types.Bigint)}},
	{[]string{"deep"}, []*types.Type{types.NewArray(types.NewArray(types.Varchar))}},
	{[]string{"m"}, []*types.Type{types.NewMap(types.Varchar, types.Double)}},
	{[]string{"s"}, []*types.Type{types.NewRow(
		types.Field{Name: "x", Type: types.Bigint},
		types.Field{Name: "y", Type: types.NewArray(types.NewRow(
			types.Field{Name: "z", Type: types.Varchar},
		))},
	)}},
	{[]string{"mix", "flag"}, []*types.Type{
		types.NewRow(
			types.Field{Name: "tags", Type: types.NewArray(types.Varchar)},
			types.Field{Name: "inner", Type: types.NewRow(types.Field{Name: "v", Type: types.Double})},
		),
		types.Boolean,
	}},
}

// Property: random nested rows survive write (both writers, random codec,
// random row-group size) and read (both readers) bit-exactly.
func TestQuickWriteReadRoundTrip(t *testing.T) {
	f := func(seed int64, schemaIdx, codecIdx uint8, native bool) bool {
		r := rand.New(rand.NewSource(seed))
		sc := quickSchemas[int(schemaIdx)%len(quickSchemas)]
		schema, err := NewSchema(sc.names, sc.types)
		if err != nil {
			t.Logf("schema: %v", err)
			return false
		}
		codec := []Codec{CodecNone, CodecSnappy, CodecGzip}[int(codecIdx)%3]
		nRows := r.Intn(60) + 1
		rows := make([][]any, nRows)
		for i := range rows {
			row := make([]any, len(sc.types))
			for j, ct := range sc.types {
				row[j] = randomValue(r, ct, 3)
			}
			rows[i] = row
		}
		pb := block.NewPageBuilder(sc.types)
		for _, row := range rows {
			pb.AppendRow(row)
		}
		page := pb.Build()

		var buf bytes.Buffer
		opts := WriterOptions{Codec: codec, RowGroupRows: r.Intn(20) + 1}
		if native {
			w, err := NewNativeWriter(&buf, schema, opts)
			if err != nil {
				return false
			}
			if err := w.WritePage(page); err != nil {
				t.Logf("write: %v", err)
				return false
			}
			if err := w.Close(); err != nil {
				return false
			}
		} else {
			w, err := NewLegacyWriter(&buf, schema, opts)
			if err != nil {
				return false
			}
			if err := w.WritePage(page); err != nil {
				t.Logf("write: %v", err)
				return false
			}
			if err := w.Close(); err != nil {
				return false
			}
		}
		file := &fsys.BytesFile{Data: buf.Bytes()}

		want := normalizeRows(rows)
		newR, err := NewReader(file, AllOptimizations(nil, nil))
		if err != nil {
			t.Logf("new reader: %v", err)
			return false
		}
		got := normalizeRows(drainReader(t, newR.Next))
		if !reflect.DeepEqual(got, want) {
			t.Logf("new reader mismatch:\ngot  %v\nwant %v", got, want)
			return false
		}
		legacyR, err := NewLegacyReader(file, nil)
		if err != nil {
			return false
		}
		got2 := normalizeRows(drainReader(t, legacyR.Next))
		if !reflect.DeepEqual(got2, want) {
			t.Logf("legacy reader mismatch:\ngot  %v\nwant %v", got2, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the new reader's in-reader predicate matches a post-hoc filter
// of the full data (predicate correctness under row-group skipping).
func TestQuickPredicateEquivalence(t *testing.T) {
	f := func(seed int64, needle int16, opIdx uint8) bool {
		r := rand.New(rand.NewSource(seed))
		schema, _ := NewSchema([]string{"k", "v"}, []*types.Type{types.Bigint, types.Varchar})
		n := r.Intn(200) + 1
		keys := make([]any, n)
		for i := range keys {
			if r.Intn(10) == 0 {
				keys[i] = nil
			} else {
				keys[i] = r.Int63n(100)
			}
		}
		pb := block.NewPageBuilder(schema.Types)
		for i := 0; i < n; i++ {
			pb.AppendRow([]any{keys[i], "v"})
		}
		var buf bytes.Buffer
		w, _ := NewNativeWriter(&buf, schema, WriterOptions{RowGroupRows: r.Intn(30) + 1})
		w.WritePage(pb.Build())
		w.Close()
		file := &fsys.BytesFile{Data: buf.Bytes()}

		op := []Op{OpEq, OpNeq, OpLt, OpLte, OpGt, OpGte}[int(opIdx)%6]
		pred := ColumnPredicate{Path: "k", Op: op, Values: []any{int64(needle) % 100}}
		rd, err := NewReader(file, AllOptimizations([]string{"k"}, []ColumnPredicate{pred}))
		if err != nil {
			return false
		}
		got := drainReader(t, rd.Next)
		var want []any
		for _, k := range keys {
			if pred.matchValue(k) {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Logf("op=%v needle=%d: got %d rows, want %d", op, pred.Values[0], len(got), len(want))
			return false
		}
		for i := range got {
			if got[i][0] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
