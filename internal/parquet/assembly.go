package parquet

import (
	"fmt"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

// Record assembly: turning leaf triplet streams (repetition level,
// definition level, value) back into nested values. The legacy reader
// assembles full boxed row records across all columns; the new reader
// assembles per column directly into columnar blocks.

// cursor walks one decoded leaf chunk.
type cursor struct {
	data *chunkData
	pos  int // triplet index
	vpos int // value index (def == maxDef positions)
}

func (c *cursor) rep() int {
	if c.data.reps == nil {
		return 0
	}
	return int(c.data.reps[c.pos])
}

func (c *cursor) def() int {
	if c.data.defs == nil {
		return c.data.leaf.MaxDef
	}
	return int(c.data.defs[c.pos])
}

func (c *cursor) done() bool { return c.pos >= c.data.entries }

// advance consumes one triplet, returning its value (nil unless def ==
// maxDef).
func (c *cursor) advance() any {
	def := c.def()
	c.pos++
	if def == c.data.leaf.MaxDef {
		v := c.data.valueAt(c.vpos)
		c.vpos++
		return v
	}
	return nil
}

// skipOne consumes one triplet without producing the value.
func (c *cursor) skipOne() {
	if c.def() == c.data.leaf.MaxDef {
		c.vpos++
	}
	c.pos++
}

// assembler assembles records for one schema subtree.
type assembler struct {
	node    *Node
	cursors map[int]*cursor // leaf index -> cursor
	leaves  []int           // leaf indexes under node, leftmost first
}

func newAssembler(node *Node, chunks map[int]*chunkData) *assembler {
	a := &assembler{node: node, cursors: map[int]*cursor{}, leaves: LeavesUnder(node)}
	for _, li := range a.leaves {
		cd, ok := chunks[li]
		if !ok {
			panic(fmt.Sprintf("parquet: assembler missing chunk for leaf %d", li))
		}
		a.cursors[li] = &cursor{data: cd}
	}
	return a
}

func (a *assembler) leftmost() *cursor { return a.cursors[a.leaves[0]] }

// hasNext reports whether another record remains.
func (a *assembler) hasNext() bool { return !a.leftmost().done() }

// nextValue assembles the next record's value for the subtree.
func (a *assembler) nextValue() (any, error) {
	return a.assemble(a.node)
}

// skipRecord consumes the next record without building values (lazy reads
// skip decoding work for filtered-out rows at the value-construction level;
// level streams must still advance).
func (a *assembler) skipRecord() {
	for _, li := range a.leaves {
		c := a.cursors[li]
		c.skipOne()
		for !c.done() && c.rep() > 0 {
			c.skipOne()
		}
	}
}

// consumeNull advances every leaf under node by one triplet.
func (a *assembler) consumeNull(node *Node) {
	for _, li := range LeavesUnder(node) {
		a.cursors[li].skipOne()
	}
}

func (a *assembler) assemble(node *Node) (any, error) {
	switch node.Kind {
	case KindPrimitive:
		return a.cursors[node.LeafIndex].advance(), nil
	case KindStruct:
		// Present iff the leftmost descendant's def reaches this node's
		// DefNotNull.
		lm := a.cursors[LeavesUnder(node)[0]]
		if lm.def() < node.DefNotNull {
			a.consumeNull(node)
			return nil, nil
		}
		fields := make([]any, len(node.Children))
		for i, child := range node.Children {
			v, err := a.assemble(child)
			if err != nil {
				return nil, err
			}
			fields[i] = v
		}
		return fields, nil
	case KindList:
		lm := a.cursors[LeavesUnder(node)[0]]
		switch {
		case lm.def() < node.DefNotNull:
			a.consumeNull(node)
			return nil, nil
		case lm.def() < node.DefHasItems:
			a.consumeNull(node)
			return []any{}, nil
		}
		var items []any
		for {
			v, err := a.assemble(node.Children[0])
			if err != nil {
				return nil, err
			}
			items = append(items, v)
			if lm.done() || lm.rep() < node.RepLevel {
				break
			}
			// rep == node.RepLevel: another element of this list. Deeper
			// rep levels were consumed by the child.
			if lm.rep() > node.RepLevel {
				return nil, fmt.Errorf("parquet: bad repetition level %d at %s", lm.rep(), node.Path)
			}
		}
		return items, nil
	case KindMap:
		lm := a.cursors[LeavesUnder(node)[0]]
		switch {
		case lm.def() < node.DefNotNull:
			a.consumeNull(node)
			return nil, nil
		case lm.def() < node.DefHasItems:
			a.consumeNull(node)
			return [][2]any{}, nil
		}
		var entries [][2]any
		for {
			k, err := a.assemble(node.Children[0])
			if err != nil {
				return nil, err
			}
			v, err := a.assemble(node.Children[1])
			if err != nil {
				return nil, err
			}
			entries = append(entries, [2]any{k, v})
			if lm.done() || lm.rep() < node.RepLevel {
				break
			}
		}
		return entries, nil
	}
	return nil, fmt.Errorf("parquet: bad node kind %d", node.Kind)
}

// ---------------------------------------------------------------------------
// Columnar assembly for the new reader: one subtree at a time into a block,
// optionally restricted to selected record positions.

// assembleBlock builds a block for the node's subtree covering numRecords
// records. selection, when non-nil, is a sorted list of record indexes to
// keep; other records are skipped without building values (§V.H lazy reads:
// "build columnar blocks only if the predicate matches").
func assembleBlock(node *Node, chunks map[int]*chunkData, numRecords int, selection []int) (block.Block, error) {
	a := newAssembler(node, chunks)
	t := TypeAt(node)
	capacity := numRecords
	if selection != nil {
		capacity = len(selection)
	}
	// Fast paths: non-repeated primitive columns decode straight from
	// levels + typed values, no boxed assembly (vectorized direct access;
	// §V.I "seek to non-nullable and non-nested value directly").
	if node.Kind == KindPrimitive && node.RepLevel == 0 {
		cd := chunks[node.LeafIndex]
		if cd.defs == nil || cd.stats().NullCount == 0 {
			return flatBlock(node, cd, selection)
		}
		return assembleNullableFlat(node, cd, selection)
	}
	builder := block.NewBuilder(t, capacity)
	selPos := 0
	for rec := 0; rec < numRecords && a.hasNext(); rec++ {
		if selection != nil {
			if selPos >= len(selection) || selection[selPos] != rec {
				a.skipRecord()
				continue
			}
			selPos++
		}
		v, err := a.nextValue()
		if err != nil {
			return nil, err
		}
		builder.Append(v)
	}
	return builder.Build(), nil
}

func (c *chunkData) stats() Stats {
	// Null count can be derived from levels; recompute cheaply.
	if c.defs == nil {
		return Stats{NumValues: int64(c.entries)}
	}
	var st Stats
	maxDef := uint8(c.leaf.MaxDef)
	for _, d := range c.defs {
		if d == maxDef {
			st.NumValues++
		} else {
			st.NullCount++
		}
	}
	return st
}

// flatBlock wraps a flat no-null primitive chunk as a block directly.
func flatBlock(node *Node, cd *chunkData, selection []int) (block.Block, error) {
	var b block.Block
	switch node.Prim.Kind {
	case types.KindDouble:
		b = &block.Float64Block{Values: cd.floats}
	case types.KindBoolean:
		b = &block.BoolBlock{Values: cd.bools}
	case types.KindVarchar:
		b = &block.VarcharBlock{Values: cd.strs}
	default:
		b = &block.Int64Block{Values: cd.ints}
	}
	if selection != nil {
		b = b.Mask(selection)
	}
	return b, nil
}

// assembleNullableFlat builds a flat nullable primitive block straight from
// levels + values (no boxed assembly).
func assembleNullableFlat(node *Node, cd *chunkData, selection []int) (block.Block, error) {
	n := cd.entries
	nulls := make([]bool, n)
	maxDef := uint8(node.DefNotNull)
	vpos := 0
	switch node.Prim.Kind {
	case types.KindDouble:
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			if cd.defs[i] == maxDef {
				vals[i] = cd.floats[vpos]
				vpos++
			} else {
				nulls[i] = true
			}
		}
		b := block.Block(&block.Float64Block{Values: vals, Nulls: nulls})
		if selection != nil {
			b = b.Mask(selection)
		}
		return b, nil
	case types.KindBoolean:
		vals := make([]bool, n)
		for i := 0; i < n; i++ {
			if cd.defs[i] == maxDef {
				vals[i] = cd.bools[vpos]
				vpos++
			} else {
				nulls[i] = true
			}
		}
		b := block.Block(&block.BoolBlock{Values: vals, Nulls: nulls})
		if selection != nil {
			b = b.Mask(selection)
		}
		return b, nil
	case types.KindVarchar:
		vals := make([]string, n)
		for i := 0; i < n; i++ {
			if cd.defs[i] == maxDef {
				vals[i] = cd.strs[vpos]
				vpos++
			} else {
				nulls[i] = true
			}
		}
		b := block.Block(&block.VarcharBlock{Values: vals, Nulls: nulls})
		if selection != nil {
			b = b.Mask(selection)
		}
		return b, nil
	default:
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			if cd.defs[i] == maxDef {
				vals[i] = cd.ints[vpos]
				vpos++
			} else {
				nulls[i] = true
			}
		}
		b := block.Block(&block.Int64Block{Values: vals, Nulls: nulls})
		if selection != nil {
			b = b.Mask(selection)
		}
		return b, nil
	}
}
