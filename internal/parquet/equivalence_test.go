package parquet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/fsys"
)

// projectionsFor returns the column projections exercised for a quickSchemas
// entry: the full row, plus single columns, reordered columns, and nested
// struct paths where the schema has them.
func projectionsFor(schemaIdx int) [][]string {
	switch schemaIdx {
	case 0: // a BIGINT
		return [][]string{nil, {"a"}}
	case 1: // a DOUBLE, b VARCHAR
		return [][]string{nil, {"b"}, {"b", "a"}}
	case 5: // s ROW(x BIGINT, y ARRAY(ROW(z VARCHAR)))
		return [][]string{nil, {"s.x"}}
	case 6: // mix ROW(tags ARRAY(VARCHAR), inner ROW(v DOUBLE)), flag BOOLEAN
		return [][]string{nil, {"flag"}, {"mix.inner.v"}, {"mix.inner.v", "flag"}}
	default: // single nested column (array / map / deep array)
		return [][]string{nil}
	}
}

// TestReaderEquivalence is the legacy-vs-columnar oracle: for generated
// nested datasets — nulls, arrays, maps, structs, repeated fields — written
// by both writers under every codec, the brand-new optimized reader and the
// legacy record-assembly reader must return identical rows for identical
// projections. Any divergence is a correctness bug in one of them.
func TestReaderEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		for si, sc := range quickSchemas {
			rng := rand.New(rand.NewSource(seed*1000 + int64(si)))
			schema, err := NewSchema(sc.names, sc.types)
			if err != nil {
				t.Fatalf("schema %d: %v", si, err)
			}
			nRows := rng.Intn(150) + 1
			pb := block.NewPageBuilder(sc.types)
			for i := 0; i < nRows; i++ {
				row := make([]any, len(sc.types))
				for j, ct := range sc.types {
					row[j] = randomValue(rng, ct, 3)
				}
				pb.AppendRow(row)
			}
			page := pb.Build()
			codec := []Codec{CodecNone, CodecSnappy, CodecGzip}[int(seed)%3]
			opts := WriterOptions{Codec: codec, RowGroupRows: rng.Intn(40) + 1}

			for _, native := range []bool{true, false} {
				var buf bytes.Buffer
				var pw interface {
					WritePage(*block.Page) error
					Close() error
				}
				if native {
					pw, err = NewNativeWriter(&buf, schema, opts)
				} else {
					pw, err = NewLegacyWriter(&buf, schema, opts)
				}
				if err != nil {
					t.Fatalf("writer (native=%v): %v", native, err)
				}
				if err := pw.WritePage(page); err != nil {
					t.Fatalf("write (native=%v): %v", native, err)
				}
				if err := pw.Close(); err != nil {
					t.Fatalf("close (native=%v): %v", native, err)
				}
				file := &fsys.BytesFile{Data: buf.Bytes()}

				for _, proj := range projectionsFor(si) {
					newR, err := NewReader(file, AllOptimizations(proj, nil))
					if err != nil {
						t.Fatalf("seed %d schema %d proj %v: new reader: %v", seed, si, proj, err)
					}
					legacyR, err := NewLegacyReader(file, proj)
					if err != nil {
						t.Fatalf("seed %d schema %d proj %v: legacy reader: %v", seed, si, proj, err)
					}
					if !reflect.DeepEqual(newR.OutputTypes(), legacyR.OutputTypes()) {
						t.Fatalf("seed %d schema %d proj %v: output types differ:\nnew    %v\nlegacy %v",
							seed, si, proj, newR.OutputTypes(), legacyR.OutputTypes())
					}
					got := normalizeRows(drainReader(t, newR.Next))
					want := normalizeRows(drainReader(t, legacyR.Next))
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d schema %d native=%v proj %v: readers disagree over %d rows:\nnew    %v\nlegacy %v",
							seed, si, native, proj, nRows, got, want)
					}
				}
			}
		}
	}
}
