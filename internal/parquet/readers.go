package parquet

import (
	"fmt"
	"io"
	"strings"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/fsys"
	"prestolite/internal/types"
)

// Op enumerates reader-level predicate comparisons.
type Op int

const (
	OpEq Op = iota
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpIn
)

// ColumnPredicate is a simple comparison on a (possibly nested, non-repeated)
// primitive column, e.g. base.city_id = 12. These are what the hive
// connector extracts from pushed-down RowExpressions for the reader.
type ColumnPredicate struct {
	// Path is the dotted leaf path.
	Path string
	Op   Op
	// Values holds one value (or several for OpIn), boxed.
	Values []any
}

func (p ColumnPredicate) String() string {
	ops := map[Op]string{OpEq: "=", OpNeq: "<>", OpLt: "<", OpLte: "<=", OpGt: ">", OpGte: ">=", OpIn: "IN"}
	vals := make([]string, len(p.Values))
	for i, v := range p.Values {
		vals[i] = fmt.Sprintf("%v", v)
	}
	return fmt.Sprintf("%s %s %s", p.Path, ops[p.Op], strings.Join(vals, ","))
}

// MatchBoxed evaluates the predicate on a single boxed value (nil never
// matches). Exported for partition pruning in connectors.
func (p ColumnPredicate) MatchBoxed(v any) bool { return p.matchValue(v) }

// matchValue evaluates the predicate on one value (nil never matches).
func (p ColumnPredicate) matchValue(v any) bool {
	if v == nil {
		return false
	}
	switch p.Op {
	case OpIn:
		for _, w := range p.Values {
			if expr.CompareValues(v, w) == 0 {
				return true
			}
		}
		return false
	default:
		c := expr.CompareValues(v, p.Values[0])
		switch p.Op {
		case OpEq:
			return c == 0
		case OpNeq:
			return c != 0
		case OpLt:
			return c < 0
		case OpLte:
			return c <= 0
		case OpGt:
			return c > 0
		case OpGte:
			return c >= 0
		}
	}
	return false
}

// overlapsStats reports whether any value in [min, max] can match (the
// row-group skipping test of §V.F, Fig 7).
func (p ColumnPredicate) overlapsStats(min, max any) bool {
	if min == nil || max == nil {
		return true // no stats: cannot skip
	}
	switch p.Op {
	case OpEq:
		v := p.Values[0]
		return expr.CompareValues(v, min) >= 0 && expr.CompareValues(v, max) <= 0
	case OpIn:
		for _, v := range p.Values {
			if expr.CompareValues(v, min) >= 0 && expr.CompareValues(v, max) <= 0 {
				return true
			}
		}
		return false
	case OpLt:
		return expr.CompareValues(min, p.Values[0]) < 0
	case OpLte:
		return expr.CompareValues(min, p.Values[0]) <= 0
	case OpGt:
		return expr.CompareValues(max, p.Values[0]) > 0
	case OpGte:
		return expr.CompareValues(max, p.Values[0]) >= 0
	default: // OpNeq: stats can only prove min==max==v
		return !(expr.CompareValues(min, max) == 0 && expr.CompareValues(min, p.Values[0]) == 0)
	}
}

// ---------------------------------------------------------------------------
// New reader (§V.D–§V.I).

// ReaderOptions toggles each optimization independently (ablation studies
// turn them off one at a time; all-on is the production configuration).
type ReaderOptions struct {
	// Columns lists the output paths (top-level column names or nested
	// struct paths). Empty means all top-level columns.
	Columns []string
	// Predicate is a conjunction evaluated inside the reader.
	Predicate []ColumnPredicate

	// ColumnPruning reads only required leaves from disk (§V.D). When off,
	// every leaf is read and decoded (like the old reader).
	ColumnPruning bool
	// PredicatePushdown skips row groups via footer min/max stats (§V.F).
	PredicatePushdown bool
	// DictionaryPushdown probes dictionary pages to skip row groups (§V.G).
	DictionaryPushdown bool
	// LazyReads defers materializing non-predicate columns (§V.H).
	LazyReads bool
	// Vectorized selects the batched triplet decoder (§V.I).
	Vectorized bool

	// Path is the file's warehouse path, used only as the cache key prefix
	// for Chunks. Required when Chunks is set.
	Path string
	// Chunks, when non-nil, caches decompressed column-chunk bodies across
	// reader instances (the worker-local data cache, §VII). nil reads every
	// chunk from the filesystem.
	Chunks ChunkCache
}

// AllOptimizations enables every new-reader feature.
func AllOptimizations(columns []string, preds []ColumnPredicate) ReaderOptions {
	return ReaderOptions{
		Columns:            columns,
		Predicate:          preds,
		ColumnPruning:      true,
		PredicatePushdown:  true,
		DictionaryPushdown: true,
		LazyReads:          true,
		Vectorized:         true,
	}
}

// Metrics counts reader work for tests and EXPLAIN ANALYZE-style output.
type Metrics struct {
	RowGroupsTotal        int
	RowGroupsSkippedStats int
	RowGroupsSkippedDict  int
	RowGroupsRead         int
	LeavesDecoded         int
	RowsMatched           int64
	RowsScanned           int64
}

// Reader is the brand-new columnar reader. It yields one page per surviving
// row group.
type Reader struct {
	f       fsys.File
	meta    *FileMeta
	schema  *Schema
	opts    ReaderOptions
	outputs []*Node // one per output column
	rgIndex int

	Metrics Metrics
}

// NewReader opens a file with the given options.
func NewReader(f fsys.File, opts ReaderOptions) (*Reader, error) {
	meta, schema, err := ReadFooter(f)
	if err != nil {
		return nil, err
	}
	return NewReaderWithFooter(f, meta, schema, opts)
}

// NewReaderWithFooter opens a file whose footer was already parsed (workers
// serve it from the footer cache, §VII.B, skipping the footer read).
func NewReaderWithFooter(f fsys.File, meta *FileMeta, schema *Schema, opts ReaderOptions) (*Reader, error) {
	r := &Reader{f: f, meta: meta, schema: schema, opts: opts}
	cols := opts.Columns
	if len(cols) == 0 {
		cols = schema.Names
	}
	for _, path := range cols {
		n := schema.Resolve(path)
		if n == nil {
			return nil, fmt.Errorf("parquet: no column %q in schema", path)
		}
		r.outputs = append(r.outputs, n)
	}
	for _, p := range opts.Predicate {
		n := schema.Resolve(p.Path)
		if n == nil {
			return nil, fmt.Errorf("parquet: predicate column %q not in schema", p.Path)
		}
		if n.Kind != KindPrimitive || n.RepLevel != 0 {
			return nil, fmt.Errorf("parquet: predicate column %q must be a non-repeated primitive", p.Path)
		}
	}
	r.Metrics.RowGroupsTotal = len(meta.RowGroups)
	return r, nil
}

// OutputTypes returns the SQL type of each output column.
func (r *Reader) OutputTypes() []*types.Type {
	out := make([]*types.Type, len(r.outputs))
	for i, n := range r.outputs {
		out[i] = TypeAt(n)
	}
	return out
}

// Next returns the next page, or io.EOF.
func (r *Reader) Next() (*block.Page, error) {
	for r.rgIndex < len(r.meta.RowGroups) {
		rg := &r.meta.RowGroups[r.rgIndex]
		r.rgIndex++
		page, err := r.readRowGroup(rg)
		if err != nil {
			return nil, err
		}
		if page == nil || page.Count() == 0 {
			continue
		}
		return page, nil
	}
	return nil, io.EOF
}

// Close releases the file.
func (r *Reader) Close() error { return r.f.Close() }

func (r *Reader) chunkFor(rg *RowGroupMeta, leafIndex int) *ChunkMeta {
	for i := range rg.Chunks {
		if rg.Chunks[i].LeafIndex == leafIndex {
			return &rg.Chunks[i]
		}
	}
	return nil
}

func (r *Reader) readRowGroup(rg *RowGroupMeta) (*block.Page, error) {
	// rgIndex was advanced by Next before this call; the ordinal of the row
	// group in hand keys its chunks in the data cache.
	cf := chunkFetch{cache: r.opts.Chunks, path: r.opts.Path, rowGroup: r.rgIndex - 1}
	// 1. Predicate pushdown: skip the row group when stats cannot match
	//    (Fig 7: "one row group city_id max is 10, skip this row group").
	if r.opts.PredicatePushdown {
		for _, p := range r.opts.Predicate {
			leaf := r.schema.Resolve(p.Path)
			cm := r.chunkFor(rg, leaf.LeafIndex)
			if cm == nil {
				continue
			}
			if !p.overlapsStats(cm.Stats.Min(leaf.Prim), cm.Stats.Max(leaf.Prim)) {
				r.Metrics.RowGroupsSkippedStats++
				return nil, nil
			}
		}
	}
	// 2. Dictionary pushdown: even if stats match, the dictionary may prove
	//    no value matches (Fig 8).
	if r.opts.DictionaryPushdown {
		for _, p := range r.opts.Predicate {
			if p.Op != OpEq && p.Op != OpIn {
				continue
			}
			leaf := r.schema.Resolve(p.Path)
			cm := r.chunkFor(rg, leaf.LeafIndex)
			if cm == nil || !cm.Dictionary {
				continue
			}
			dict, err := readChunkDictionary(r.f, r.meta.Codec, cm, r.schema.Leaves[leaf.LeafIndex], cf)
			if err != nil {
				return nil, err
			}
			any := false
			for _, dv := range dict {
				if p.matchValue(dv) {
					any = true
					break
				}
			}
			if !any {
				r.Metrics.RowGroupsSkippedDict++
				return nil, nil
			}
		}
	}
	r.Metrics.RowGroupsRead++
	r.Metrics.RowsScanned += rg.NumRows
	numRecords := int(rg.NumRows)

	// Determine required leaves.
	requiredLeaves := map[int]bool{}
	predicateLeaves := map[int]bool{}
	for _, p := range r.opts.Predicate {
		li := r.schema.Resolve(p.Path).LeafIndex
		requiredLeaves[li] = true
		predicateLeaves[li] = true
	}
	for _, out := range r.outputs {
		for _, li := range LeavesUnder(out) {
			requiredLeaves[li] = true
		}
	}
	if !r.opts.ColumnPruning {
		// Nested column pruning off: read every leaf from disk (Fig 4),
		// even those no output needs.
		for li := range r.schema.Leaves {
			requiredLeaves[li] = true
		}
	}

	// 3. Decode predicate leaves first and evaluate the predicate on the
	//    fly (Figs 7-9: read, evaluate, and build in one step).
	chunks := map[int]*chunkData{}
	decode := func(li int) error {
		if _, ok := chunks[li]; ok {
			return nil
		}
		cm := r.chunkFor(rg, li)
		if cm == nil {
			// Schema evolution: this leaf is absent in the file; synthesize
			// an all-null chunk (§V.A: new fields read as NULL in old data).
			chunks[li] = nullChunk(r.schema.Leaves[li], numRecords)
			return nil
		}
		cd, err := decodeChunk(r.f, r.meta.Codec, cm, r.schema.Leaves[li], r.opts.Vectorized, cf)
		if err != nil {
			return err
		}
		chunks[li] = cd
		r.Metrics.LeavesDecoded++
		return nil
	}

	var selection []int
	if len(r.opts.Predicate) > 0 {
		for li := range predicateLeaves {
			if err := decode(li); err != nil {
				return nil, err
			}
		}
		selection = make([]int, 0, numRecords)
		for rec := 0; rec < numRecords; rec++ {
			match := true
			for _, p := range r.opts.Predicate {
				leaf := r.schema.Resolve(p.Path)
				cd := chunks[leaf.LeafIndex]
				if !p.matchValue(flatValueAt(cd, rec)) {
					match = false
					break
				}
			}
			if match {
				selection = append(selection, rec)
			}
		}
		if len(selection) == 0 {
			return nil, nil
		}
		r.Metrics.RowsMatched += int64(len(selection))
	} else {
		r.Metrics.RowsMatched += int64(numRecords)
	}

	// 4. Decode remaining required leaves and build columnar blocks
	//    directly (Fig 6). With lazy reads, projected non-predicate columns
	//    defer decoding until the engine actually touches the block (§V.H).
	out := make([]block.Block, len(r.outputs))
	rows := numRecords
	if selection != nil {
		rows = len(selection)
	}
	for i, node := range r.outputs {
		node := node
		needsEager := !r.opts.LazyReads || subtreeIntersects(node, predicateLeaves)
		buildNow := func() (block.Block, error) {
			for _, li := range LeavesUnder(node) {
				if err := decode(li); err != nil {
					return nil, err
				}
			}
			sub := map[int]*chunkData{}
			for _, li := range LeavesUnder(node) {
				sub[li] = chunks[li]
			}
			return assembleBlock(node, sub, numRecords, selection)
		}
		if needsEager {
			b, err := buildNow()
			if err != nil {
				return nil, err
			}
			out[i] = b
			continue
		}
		out[i] = block.NewLazyBlock(rows, func() block.Block {
			b, err := buildNow()
			if err != nil {
				// Lazy loads cannot return errors through the Block
				// interface; surface decode corruption loudly.
				panic(fmt.Sprintf("parquet: lazy column %s: %v", node.Path, err))
			}
			return b
		})
	}
	// Non-pruned mode decodes everything even if unused.
	if !r.opts.ColumnPruning {
		for li := range requiredLeaves {
			if err := decode(li); err != nil {
				return nil, err
			}
		}
	}
	return &block.Page{Blocks: out, N: rows}, nil
}

// flatValueAt reads record rec's value from a non-repeated primitive chunk.
func flatValueAt(cd *chunkData, rec int) any {
	if cd.defs == nil {
		return cd.valueAt(rec)
	}
	// With nulls present, value index != record index; precompute prefix on
	// first use.
	if cd.valueIdx == nil {
		cd.valueIdx = make([]int32, cd.entries)
		maxDef := uint8(cd.leaf.MaxDef)
		vi := int32(0)
		for i, d := range cd.defs {
			if d == maxDef {
				cd.valueIdx[i] = vi
				vi++
			} else {
				cd.valueIdx[i] = -1
			}
		}
	}
	vi := cd.valueIdx[rec]
	if vi < 0 {
		return nil
	}
	return cd.valueAt(int(vi))
}

// nullChunk synthesizes an all-null chunk for schema-evolution reads.
func nullChunk(leaf *Leaf, numRecords int) *chunkData {
	defs := make([]uint8, numRecords)
	var reps []uint8
	if leaf.MaxRep > 0 {
		reps = make([]uint8, numRecords)
	}
	return &chunkData{leaf: leaf, reps: reps, defs: defs, entries: numRecords}
}

func subtreeIntersects(node *Node, leaves map[int]bool) bool {
	for _, li := range LeavesUnder(node) {
		if leaves[li] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Legacy reader (§V.C, Fig 4): (1) reads ALL fields row by row; (2)
// transforms row-based records into columnar blocks for all nested columns;
// (3) leaves predicate evaluation to the engine.

// LegacyReader mimics the original open source reader's behavior on the
// same file format.
type LegacyReader struct {
	f       fsys.File
	meta    *FileMeta
	schema  *Schema
	columns []string
	outputs []*Node
	rgIndex int
}

// NewLegacyReader opens a file. columns selects output paths, but — true to
// the original reader — every field is still read from disk and assembled
// into records first.
func NewLegacyReader(f fsys.File, columns []string) (*LegacyReader, error) {
	meta, schema, err := ReadFooter(f)
	if err != nil {
		return nil, err
	}
	r := &LegacyReader{f: f, meta: meta, schema: schema, columns: columns}
	if len(columns) == 0 {
		r.columns = schema.Names
	}
	for _, path := range r.columns {
		n := schema.Resolve(path)
		if n == nil {
			return nil, fmt.Errorf("parquet: no column %q in schema", path)
		}
		r.outputs = append(r.outputs, n)
	}
	return r, nil
}

// OutputTypes returns the SQL type of each output column.
func (r *LegacyReader) OutputTypes() []*types.Type {
	out := make([]*types.Type, len(r.outputs))
	for i, n := range r.outputs {
		out[i] = TypeAt(n)
	}
	return out
}

// Next returns the next page (one per row group), or io.EOF.
func (r *LegacyReader) Next() (*block.Page, error) {
	if r.rgIndex >= len(r.meta.RowGroups) {
		return nil, io.EOF
	}
	rg := &r.meta.RowGroups[r.rgIndex]
	r.rgIndex++

	// Step 1: read all fields from disk (no pruning, no skipping).
	chunks := map[int]*chunkData{}
	for li, leaf := range r.schema.Leaves {
		var cd *chunkData
		found := false
		for i := range rg.Chunks {
			if rg.Chunks[i].LeafIndex == li {
				var err error
				// The legacy reader stays the uncached baseline: zero-value
				// chunkFetch reads straight from the filesystem.
				cd, err = decodeChunk(r.f, r.meta.Codec, &rg.Chunks[i], leaf, false, chunkFetch{})
				if err != nil {
					return nil, err
				}
				found = true
				break
			}
		}
		if !found {
			cd = nullChunk(leaf, int(rg.NumRows))
		}
		chunks[li] = cd
	}

	// Step 1 continued: assemble full row-based records across all columns.
	assemblers := make([]*assembler, len(r.schema.Roots))
	for i, root := range r.schema.Roots {
		sub := map[int]*chunkData{}
		for _, li := range LeavesUnder(root) {
			sub[li] = chunks[li]
		}
		assemblers[i] = newAssembler(root, sub)
	}
	records := make([][]any, 0, rg.NumRows)
	for rec := int64(0); rec < rg.NumRows; rec++ {
		record := make([]any, len(r.schema.Roots))
		for i, a := range assemblers {
			if !a.hasNext() {
				return nil, fmt.Errorf("parquet: column %s exhausted at record %d", r.schema.Names[i], rec)
			}
			v, err := a.nextValue()
			if err != nil {
				return nil, err
			}
			record[i] = v
		}
		records = append(records, record)
	}

	// Step 2: transform row-based records into columnar blocks.
	builders := make([]block.Builder, len(r.outputs))
	for i, node := range r.outputs {
		builders[i] = block.NewBuilder(TypeAt(node), len(records))
	}
	for _, record := range records {
		for i, node := range r.outputs {
			builders[i].Append(extractPath(record, r.schema, node))
		}
	}
	blocks := make([]block.Block, len(builders))
	for i, b := range builders {
		blocks[i] = b.Build()
	}
	return block.NewPage(blocks...), nil
}

// Close releases the file.
func (r *LegacyReader) Close() error { return r.f.Close() }

// extractPath digs a nested output path out of an assembled record.
func extractPath(record []any, schema *Schema, node *Node) any {
	parts := strings.Split(node.Path, ".")
	idx := schema.ColumnIndex(parts[0])
	v := record[idx]
	cur := schema.Roots[idx]
	for _, p := range parts[1:] {
		if v == nil {
			return nil
		}
		fields := v.([]any)
		found := -1
		for i, c := range cur.Children {
			if strings.EqualFold(c.Name, p) {
				found = i
				break
			}
		}
		v = fields[found]
		cur = cur.Children[found]
	}
	return v
}
