package parquet

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/fsys"
	"prestolite/internal/types"
)

// tripSchema mirrors the paper's nested trips table (§V.C).
func tripSchema(t *testing.T) *Schema {
	t.Helper()
	base := types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Varchar},
		types.Field{Name: "city_id", Type: types.Bigint},
		types.Field{Name: "vehicle", Type: types.NewRow(
			types.Field{Name: "make", Type: types.Varchar},
			types.Field{Name: "year", Type: types.Bigint},
		)},
	)
	s, err := NewSchema(
		[]string{"base", "datestr", "fare", "tags", "metrics"},
		[]*types.Type{base, types.Varchar, types.Double, types.NewArray(types.Varchar), types.NewMap(types.Varchar, types.Double)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func tripRows() [][]any {
	return [][]any{
		{[]any{"d-1", int64(12), []any{"toyota", int64(2015)}}, "2017-03-02", 10.5, []any{"airport"}, [][2]any{{"surge", 1.2}}},
		{[]any{"d-2", int64(7), nil}, "2017-03-02", 5.0, []any{}, [][2]any{}},
		{[]any{"d-3", int64(12), []any{"honda", int64(2018)}}, "2017-03-03", 7.5, nil, nil},
		{nil, "2017-03-03", 2.5, []any{"pool", "downtown"}, [][2]any{{"surge", 1.0}, {"toll", 3.5}}},
		{[]any{"d-5", int64(9), []any{nil, int64(2020)}}, "2017-03-04", 30.0, []any{nil, "x"}, [][2]any{{"k", nil}}},
	}
}

func buildPage(t *testing.T, s *Schema, rows [][]any) *block.Page {
	t.Helper()
	pb := block.NewPageBuilder(s.Types)
	for _, r := range rows {
		pb.AppendRow(r)
	}
	return pb.Build()
}

func writeFile(t *testing.T, s *Schema, rows [][]any, opts WriterOptions, native bool) *fsys.BytesFile {
	t.Helper()
	var buf bytes.Buffer
	page := buildPage(t, s, rows)
	if native {
		w, err := NewNativeWriter(&buf, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePage(page); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		w, err := NewLegacyWriter(&buf, s, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePage(page); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return &fsys.BytesFile{Data: buf.Bytes()}
}

func drainReader(t *testing.T, next func() (*block.Page, error)) [][]any {
	t.Helper()
	var rows [][]any
	for {
		p, err := next()
		if errors.Is(err, io.EOF) {
			return rows
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p.Count(); i++ {
			rows = append(rows, p.Row(i))
		}
	}
}

// normalize maps empty []any / [][2]any consistently for DeepEqual.
func normalize(v any) any {
	switch x := v.(type) {
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalize(e)
		}
		return out
	case [][2]any:
		out := make([][2]any, len(x))
		for i, e := range x {
			out[i] = [2]any{normalize(e[0]), normalize(e[1])}
		}
		return out
	default:
		return v
	}
}

func normalizeRows(rows [][]any) [][]any {
	out := make([][]any, len(rows))
	for i, r := range rows {
		nr := make([]any, len(r))
		for j, v := range r {
			nr[j] = normalize(v)
		}
		out[i] = nr
	}
	return out
}

func TestRoundTripBothWritersBothReaders(t *testing.T) {
	s := tripSchema(t)
	rows := tripRows()
	for _, codec := range []Codec{CodecNone, CodecSnappy, CodecGzip} {
		for _, native := range []bool{true, false} {
			f := writeFile(t, s, rows, WriterOptions{Codec: codec}, native)

			legacy, err := NewLegacyReader(f, nil)
			if err != nil {
				t.Fatal(err)
			}
			got := drainReader(t, legacy.Next)
			if !reflect.DeepEqual(normalizeRows(got), normalizeRows(rows)) {
				t.Fatalf("codec=%v native=%v legacy reader:\ngot  %v\nwant %v", codec, native, got, rows)
			}

			nr, err := NewReader(f, AllOptimizations(nil, nil))
			if err != nil {
				t.Fatal(err)
			}
			got2 := drainReader(t, nr.Next)
			if !reflect.DeepEqual(normalizeRows(got2), normalizeRows(rows)) {
				t.Fatalf("codec=%v native=%v new reader:\ngot  %v\nwant %v", codec, native, got2, rows)
			}
		}
	}
}

func TestWritersProduceEquivalentData(t *testing.T) {
	s := tripSchema(t)
	rows := tripRows()
	fNative := writeFile(t, s, rows, WriterOptions{Codec: CodecSnappy}, true)
	fLegacy := writeFile(t, s, rows, WriterOptions{Codec: CodecSnappy}, false)
	r1, _ := NewReader(fNative, AllOptimizations(nil, nil))
	r2, _ := NewReader(fLegacy, AllOptimizations(nil, nil))
	g1 := drainReader(t, r1.Next)
	g2 := drainReader(t, r2.Next)
	if !reflect.DeepEqual(normalizeRows(g1), normalizeRows(g2)) {
		t.Fatalf("writers disagree:\nnative %v\nlegacy %v", g1, g2)
	}
}

func TestNestedColumnPruning(t *testing.T) {
	s := tripSchema(t)
	f := writeFile(t, s, tripRows(), WriterOptions{}, true)
	r, err := NewReader(f, AllOptimizations([]string{"base.driver_uuid", "base.city_id"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	rows := drainReader(t, r.Next)
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "d-1" || rows[0][1] != int64(12) {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[3][0] != nil || rows[3][1] != nil {
		t.Errorf("null struct row = %v", rows[3])
	}
	// Only the two requested leaves decoded.
	if r.Metrics.LeavesDecoded != 2 {
		t.Errorf("LeavesDecoded = %d, want 2", r.Metrics.LeavesDecoded)
	}
	if tt := r.OutputTypes(); tt[0] != types.Varchar || tt[1] != types.Bigint {
		t.Errorf("output types = %v", tt)
	}
}

func TestPredicateInsideReader(t *testing.T) {
	s := tripSchema(t)
	f := writeFile(t, s, tripRows(), WriterOptions{}, true)
	preds := []ColumnPredicate{{Path: "base.city_id", Op: OpIn, Values: []any{int64(12)}}}
	r, err := NewReader(f, AllOptimizations([]string{"base.driver_uuid", "datestr"}, preds))
	if err != nil {
		t.Fatal(err)
	}
	rows := drainReader(t, r.Next)
	if len(rows) != 2 || rows[0][0] != "d-1" || rows[1][0] != "d-3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPredicatePushdownSkipsRowGroups(t *testing.T) {
	s, err := NewSchema([]string{"city_id", "name"}, []*types.Type{types.Bigint, types.Varchar})
	if err != nil {
		t.Fatal(err)
	}
	// Small row groups: values 0..9 in group 1, 10..19 in group 2, etc.
	var buf bytes.Buffer
	w, err := NewNativeWriter(&buf, s, WriterOptions{RowGroupRows: 10, DisableDictionary: true})
	if err != nil {
		t.Fatal(err)
	}
	pb := block.NewPageBuilder(s.Types)
	for i := 0; i < 50; i++ {
		pb.AppendRow([]any{int64(i), "n"})
	}
	if err := w.WritePage(pb.Build()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f := &fsys.BytesFile{Data: buf.Bytes()}

	preds := []ColumnPredicate{{Path: "city_id", Op: OpEq, Values: []any{int64(12)}}}
	r, err := NewReader(f, AllOptimizations([]string{"name"}, preds))
	if err != nil {
		t.Fatal(err)
	}
	rows := drainReader(t, r.Next)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if r.Metrics.RowGroupsSkippedStats != 4 || r.Metrics.RowGroupsRead != 1 {
		t.Errorf("metrics = %+v", r.Metrics)
	}

	// Needle not present at all: every group skipped by stats.
	r2, _ := NewReader(f, AllOptimizations([]string{"name"}, []ColumnPredicate{{Path: "city_id", Op: OpEq, Values: []any{int64(999)}}}))
	if rows := drainReader(t, r2.Next); len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
	if r2.Metrics.RowGroupsSkippedStats != 5 {
		t.Errorf("metrics = %+v", r2.Metrics)
	}

	// Range predicates.
	r3, _ := NewReader(f, AllOptimizations([]string{"city_id"}, []ColumnPredicate{{Path: "city_id", Op: OpGte, Values: []any{int64(40)}}}))
	if rows := drainReader(t, r3.Next); len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	if r3.Metrics.RowGroupsRead != 1 {
		t.Errorf("metrics = %+v", r3.Metrics)
	}
}

func TestDictionaryPushdownSkipsRowGroups(t *testing.T) {
	s, err := NewSchema([]string{"city_id"}, []*types.Type{types.Bigint})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, _ := NewNativeWriter(&buf, s, WriterOptions{RowGroupRows: 100})
	pb := block.NewPageBuilder(s.Types)
	// Fig 8: dictionary {3,5,9,14,21} spanning min=3..max=21, so stats alone
	// cannot exclude city_id = 12 but the dictionary can.
	dict := []int64{3, 5, 9, 14, 21}
	for i := 0; i < 100; i++ {
		pb.AppendRow([]any{dict[i%len(dict)]})
	}
	w.WritePage(pb.Build())
	w.Close()
	f := &fsys.BytesFile{Data: buf.Bytes()}

	preds := []ColumnPredicate{{Path: "city_id", Op: OpEq, Values: []any{int64(12)}}}
	r, _ := NewReader(f, AllOptimizations([]string{"city_id"}, preds))
	if rows := drainReader(t, r.Next); len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
	if r.Metrics.RowGroupsSkippedDict != 1 || r.Metrics.RowGroupsSkippedStats != 0 {
		t.Errorf("metrics = %+v", r.Metrics)
	}

	// Without dictionary pushdown the group is read and filtered row-wise.
	opts := AllOptimizations([]string{"city_id"}, preds)
	opts.DictionaryPushdown = false
	r2, _ := NewReader(f, opts)
	if rows := drainReader(t, r2.Next); len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
	if r2.Metrics.RowGroupsRead != 1 {
		t.Errorf("metrics = %+v", r2.Metrics)
	}
}

func TestLazyReads(t *testing.T) {
	s := tripSchema(t)
	f := writeFile(t, s, tripRows(), WriterOptions{}, true)
	preds := []ColumnPredicate{{Path: "base.city_id", Op: OpEq, Values: []any{int64(12)}}}
	r, err := NewReader(f, AllOptimizations([]string{"datestr", "base.city_id"}, preds))
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	lazy, ok := p.Blocks[0].(*block.LazyBlock)
	if !ok {
		t.Fatalf("non-predicate column should be lazy, got %T", p.Blocks[0])
	}
	if lazy.Loaded() {
		t.Error("lazy block materialized too early")
	}
	// datestr decoded only now:
	before := r.Metrics.LeavesDecoded
	if got := lazy.Value(0); got != "2017-03-02" {
		t.Errorf("lazy value = %v", got)
	}
	_ = before
	// Predicate column is eager (already decoded for filtering).
	if _, isLazy := p.Blocks[1].(*block.LazyBlock); isLazy {
		t.Error("predicate column should be eager")
	}
}

func TestSchemaEvolutionNewFieldReadsNull(t *testing.T) {
	// Write with the old schema (no "rating" field), read with a new schema
	// that added rating to the struct: §V.A "when querying newly added
	// fields in old data, return null".
	oldBase := types.NewRow(types.Field{Name: "driver_uuid", Type: types.Varchar})
	sOld, err := NewSchema([]string{"base"}, []*types.Type{oldBase})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, _ := NewNativeWriter(&buf, sOld, WriterOptions{})
	pb := block.NewPageBuilder(sOld.Types)
	pb.AppendRow([]any{[]any{"d-1"}})
	pb.AppendRow([]any{[]any{"d-2"}})
	w.WritePage(pb.Build())
	w.Close()

	f := &fsys.BytesFile{Data: buf.Bytes()}
	r, err := NewReader(f, AllOptimizations([]string{"base.driver_uuid"}, nil))
	if err != nil {
		t.Fatal(err)
	}
	rows := drainReader(t, r.Next)
	if len(rows) != 2 || rows[0][0] != "d-1" {
		t.Fatalf("rows = %v", rows)
	}
	// The new field is not in the file schema: Resolve fails at reader
	// level; the connector layer maps missing fields to null leaves. Here we
	// verify reading an existing leaf from an evolved file keeps working,
	// and that a missing chunk for a known leaf yields nulls (nullChunk).
	leaf := sOld.Leaves[0]
	nc := nullChunk(leaf, 3)
	if nc.entries != 3 || nc.stats().NullCount != 3 {
		t.Errorf("nullChunk = %+v", nc)
	}
}

func TestMultipleRowGroupsAndPages(t *testing.T) {
	s, _ := NewSchema([]string{"v"}, []*types.Type{types.Bigint})
	var buf bytes.Buffer
	w, _ := NewNativeWriter(&buf, s, WriterOptions{RowGroupRows: 7})
	for p := 0; p < 3; p++ {
		pb := block.NewPageBuilder(s.Types)
		for i := 0; i < 10; i++ {
			pb.AppendRow([]any{int64(p*10 + i)})
		}
		if err := w.WritePage(pb.Build()); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	f := &fsys.BytesFile{Data: buf.Bytes()}
	meta, _, err := ReadFooter(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.RowGroups) != 5 { // 30 rows / 7 per group = 5 groups
		t.Errorf("row groups = %d", len(meta.RowGroups))
	}
	r, _ := NewReader(f, AllOptimizations(nil, nil))
	rows := drainReader(t, r.Next)
	if len(rows) != 30 || rows[29][0] != int64(29) {
		t.Fatalf("rows = %d, last = %v", len(rows), rows[len(rows)-1])
	}
}

func TestFooterStats(t *testing.T) {
	s := tripSchema(t)
	f := writeFile(t, s, tripRows(), WriterOptions{}, true)
	meta, schema, err := ReadFooter(f)
	if err != nil {
		t.Fatal(err)
	}
	leaf := schema.Resolve("base.city_id")
	var cm *ChunkMeta
	for i := range meta.RowGroups[0].Chunks {
		if meta.RowGroups[0].Chunks[i].LeafIndex == leaf.LeafIndex {
			cm = &meta.RowGroups[0].Chunks[i]
		}
	}
	if cm == nil {
		t.Fatal("no chunk for base.city_id")
	}
	if cm.Stats.Min(types.Bigint) != int64(7) || cm.Stats.Max(types.Bigint) != int64(12) {
		t.Errorf("stats = %+v", cm.Stats)
	}
	if cm.Stats.NullCount != 1 { // one null struct row
		t.Errorf("null count = %d", cm.Stats.NullCount)
	}
}

func TestCorruptFiles(t *testing.T) {
	s := tripSchema(t)
	f := writeFile(t, s, tripRows(), WriterOptions{}, true)
	// Truncated file.
	if _, _, err := ReadFooter(&fsys.BytesFile{Data: f.Data[:10]}); err == nil {
		t.Error("truncated footer read succeeded")
	}
	// Bad magic.
	bad := append([]byte{}, f.Data...)
	copy(bad[len(bad)-4:], []byte("XXXX"))
	if _, _, err := ReadFooter(&fsys.BytesFile{Data: bad}); err == nil {
		t.Error("bad magic read succeeded")
	}
	// Garbage footer.
	bad2 := append([]byte{}, f.Data...)
	mid := len(bad2) - 100
	for i := mid; i < len(bad2)-8; i++ {
		bad2[i] = 0xAB
	}
	if _, _, err := ReadFooter(&fsys.BytesFile{Data: bad2}); err == nil {
		t.Error("garbage footer read succeeded")
	}
	// Unknown column.
	if _, err := NewReader(f, AllOptimizations([]string{"nope"}, nil)); err == nil {
		t.Error("unknown column succeeded")
	}
	if _, err := NewReader(f, AllOptimizations(nil, []ColumnPredicate{{Path: "tags", Op: OpEq, Values: []any{int64(1)}}})); err == nil {
		t.Error("predicate on repeated column succeeded")
	}
}

func TestEmptyFile(t *testing.T) {
	s := tripSchema(t)
	var buf bytes.Buffer
	w, _ := NewNativeWriter(&buf, s, WriterOptions{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f := &fsys.BytesFile{Data: buf.Bytes()}
	r, err := NewReader(f, AllOptimizations(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rows := drainReader(t, r.Next); len(rows) != 0 {
		t.Fatalf("rows = %v", rows)
	}
}
