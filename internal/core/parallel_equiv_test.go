package core

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/tpch"
)

// Serial-vs-parallel equivalence suite (driver-based intra-task parallelism):
// every TPC-H-flavored query in the repo's workload runs once with
// task_concurrency=1 and once with task_concurrency=8, and the row sets must
// match exactly after ordering normalization. Aggregates stick to counts,
// min/max, and sums of small integral doubles (l_quantity is 1..50), so
// results are bit-exact no matter which driver merged which partial state —
// the same discipline the chaos suite uses for cross-worker retries.

const (
	equivDataSeed    = 99
	equivFiles       = 8
	equivRowsPerFile = 250
)

// equivQueries covers every parallelized operator shape: parallel scans,
// replicated filters/projections, partitioned grouped aggregation (low and
// high cardinality), global aggregation, distinct aggregation, partitioned
// joins (plain and under a group by), parallel sort with streaming merge,
// and early-stop limits.
var equivQueries = []struct {
	name      string
	sql       string
	countOnly bool // LIMIT picks arbitrary rows; only the count is stable
}{
	{"q1 pricing summary", `SELECT l_returnflag, l_linestatus, count(*) AS n, sum(l_quantity) AS q
		FROM lineitem GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`, false},
	{"filtered count", `SELECT count(*) AS n FROM lineitem WHERE l_quantity < 25.0`, false},
	{"shipmode counts", `SELECT l_shipmode, count(*) AS n FROM lineitem GROUP BY l_shipmode ORDER BY l_shipmode`, false},
	{"global aggregates", `SELECT count(*) AS n, sum(l_quantity) AS q, min(l_orderkey) AS lo, max(l_orderkey) AS hi FROM lineitem`, false},
	{"high-cardinality groupby", `SELECT l_orderkey, l_partkey, count(*) AS n, sum(l_quantity) AS q FROM lineitem
		GROUP BY l_orderkey, l_partkey ORDER BY l_orderkey, l_partkey`, false},
	{"wide sort", `SELECT l_orderkey, l_partkey, l_suppkey, l_quantity FROM lineitem
		ORDER BY l_orderkey, l_partkey, l_suppkey, l_quantity`, false},
	{"self join count", `SELECT count(*) AS n FROM lineitem a JOIN lineitem b ON a.l_orderkey = b.l_orderkey`, false},
	{"join then groupby", `SELECT a.l_shipmode, count(*) AS n FROM lineitem a JOIN lineitem b ON a.l_orderkey = b.l_orderkey
		GROUP BY a.l_shipmode ORDER BY a.l_shipmode`, false},
	{"distinct count", `SELECT count(DISTINCT l_suppkey) AS n FROM lineitem`, false},
	{"grouped distinct", `SELECT l_linestatus, count(DISTINCT l_shipmode) AS n FROM lineitem
		GROUP BY l_linestatus ORDER BY l_linestatus`, false},
	{"projected filter", `SELECT l_orderkey, l_linenumber FROM lineitem WHERE l_quantity < 5.0
		ORDER BY l_orderkey, l_linenumber`, false},
	{"limit early stop", `SELECT l_orderkey FROM lineitem LIMIT 137`, true},
}

// equivEngine builds an embedded engine over a hive LINEITEM warehouse with
// `files` files, so a scan has real splits for the drivers to share.
func equivEngine(t *testing.T, files int) *Engine {
	t.Helper()
	fs := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := make([]metastore.Column, len(tpch.LineItemColumns))
	for i, c := range tpch.LineItemColumns {
		cols[i] = metastore.Column{Name: c.Name, Type: c.Type}
	}
	var pages []*block.Page
	for f := 0; f < files; f++ {
		pages = append(pages, tpch.GeneratePage(equivDataSeed+int64(f), equivRowsPerFile))
	}
	if err := loader.CreateTable("tpch", "lineitem", cols, pages); err != nil {
		t.Fatal(err)
	}
	e := New()
	e.Register("hive", hive.New("hive", ms, fs, hive.Options{}))
	return e
}

func equivSession(drivers int) *planner.Session {
	return &planner.Session{
		Catalog: "hive", Schema: "tpch", User: "equiv",
		Properties: map[string]string{"task_concurrency": fmt.Sprint(drivers)},
	}
}

// normalizeRows renders rows and sorts them, so serial and parallel runs
// compare equal regardless of page arrival order.
func normalizeRows(res *Result) []string {
	rows := res.Rows()
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func runEquiv(t *testing.T, e *Engine, sql string, drivers int) *Result {
	t.Helper()
	res, err := e.Query(equivSession(drivers), sql)
	if err != nil {
		t.Fatalf("drivers=%d query %q: %v", drivers, sql, err)
	}
	return res
}

func TestParallelEquivalence(t *testing.T) {
	e := equivEngine(t, equivFiles)
	for _, q := range equivQueries {
		t.Run(q.name, func(t *testing.T) {
			serial := runEquiv(t, e, q.sql, 1)
			parallel := runEquiv(t, e, q.sql, 8)
			if q.countOnly {
				if s, p := serial.RowCount(), parallel.RowCount(); s != p {
					t.Fatalf("row counts differ: serial %d, parallel %d", s, p)
				}
				return
			}
			s, p := normalizeRows(serial), normalizeRows(parallel)
			if len(s) != len(p) {
				t.Fatalf("row counts differ: serial %d, parallel %d", len(s), len(p))
			}
			for i := range s {
				if s[i] != p[i] {
					t.Fatalf("row %d differs:\nserial   %s\nparallel %s", i, s[i], p[i])
				}
			}
		})
	}
}

// TestParallelEquivalenceOrdered asserts that ORDER BY output arrives in
// sorted order from the parallel plan too (per-driver sorted runs through the
// streaming merge), not merely as the right multiset.
func TestParallelEquivalenceOrdered(t *testing.T) {
	e := equivEngine(t, equivFiles)
	res := runEquiv(t, e, equivQueries[5].sql, 8)
	rows := res.Rows()
	// Columns are (bigint, bigint, bigint, double).
	less := func(a, b []any) bool {
		for c := 0; c < 3; c++ {
			if a[c].(int64) != b[c].(int64) {
				return a[c].(int64) < b[c].(int64)
			}
		}
		return a[3].(float64) < b[3].(float64)
	}
	for i := 1; i < len(rows); i++ {
		if less(rows[i], rows[i-1]) {
			t.Fatalf("ORDER BY output out of order at row %d: %v after %v", i, rows[i], rows[i-1])
		}
	}
}

// TestParallelEquivalenceUnderSpill reruns memory-hungry queries with a pool
// far below the working set and spill enabled, at 1 and 8 drivers: rows stay
// exact, spill actually fires, no spill run or reservation survives. The
// third query stacks 24 concurrent spillable operators (8 aggregation
// partials, 8 finals, 8 sorts) in one pool — the shape that starves without
// cooperative memory revocation (memory.go's revokeHub), so it pins that
// mechanism down.
func TestParallelEquivalenceUnderSpill(t *testing.T) {
	// 16x the files of the main suite: the sort's working set (~1 MB) and the
	// aggregation's group table (~2 MB) dwarf the 512 KiB cap at any driver
	// count, so spill fires deterministically.
	const spillFiles = 128
	baseline := equivEngine(t, spillFiles)
	spillDir := t.TempDir()
	constrained := equivEngine(t, spillFiles)
	constrained.Mem = resource.NewPool("engine", 1<<20)
	spill, err := resource.NewSpillManager(spillDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	constrained.Spill = spill

	hungry := []string{
		`SELECT l_orderkey, l_partkey, count(*) AS n, sum(l_quantity) AS q FROM lineitem
			GROUP BY l_orderkey, l_partkey`,
		`SELECT l_orderkey, l_partkey, l_suppkey, l_quantity FROM lineitem
			ORDER BY l_orderkey, l_partkey, l_suppkey, l_quantity`,
		`SELECT l_orderkey, l_partkey, count(*) AS n, sum(l_quantity) AS q FROM lineitem
			GROUP BY l_orderkey, l_partkey ORDER BY l_orderkey, l_partkey`,
	}
	for _, sql := range hungry {
		want := normalizeRows(runEquiv(t, baseline, sql, 1))
		for _, drivers := range []int{1, 8} {
			sess := equivSession(drivers)
			sess.Properties["query_max_memory"] = fmt.Sprint(512 << 10)
			res, err := constrained.Query(sess, sql)
			if err != nil {
				t.Fatalf("drivers=%d under spill: %v\n  query: %s", drivers, err, sql)
			}
			got := normalizeRows(res)
			if len(got) != len(want) {
				t.Fatalf("drivers=%d under spill: %d rows, want %d", drivers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("drivers=%d under spill: row %d differs:\ngot  %s\nwant %s", drivers, i, got[i], want[i])
				}
			}
		}
	}
	if constrained.Mem.Spilled() == 0 {
		t.Fatal("tiny pool never spilled — the pressure path was not exercised")
	}
	if constrained.Mem.Reserved() != 0 {
		t.Fatalf("pool still holds %d reserved bytes after all queries", constrained.Mem.Reserved())
	}
	if runs := spill.LiveRuns(); len(runs) != 0 {
		t.Fatalf("leaked spill runs: %v", runs)
	}
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill dir holds %d files after all queries", len(entries))
	}
}
