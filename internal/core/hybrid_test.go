package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/hybrid"
	"prestolite/internal/druid"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/types"
)

// Hybrid batch + real-time tables: one logical table planner-expanded into
// union(parquet historical, druid real-time) split on a time watermark.

const hybridBoundary = int64(1000)

type hybridRow struct {
	ts      int64
	country string
	clicks  int64
}

func hybridHistRows() []hybridRow {
	out := make([]hybridRow, 300)
	for i := range out {
		out[i] = hybridRow{ts: int64(i * 3), country: []string{"us", "de", "jp"}[i%3], clicks: int64(i % 10)}
	}
	return out
}

func hybridRTRows() []hybridRow {
	out := make([]hybridRow, 200)
	for i := range out {
		out[i] = hybridRow{ts: hybridBoundary + int64(i*4), country: []string{"us", "de", "jp"}[i%3], clicks: int64(i % 7)}
	}
	return out
}

// hybridEngine builds hive(historical) + druid(real-time) + hybrid catalogs.
// The druid table also holds pre-watermark duplicates of the first 50
// historical rows — the boundary predicates must exclude them or counts go
// wrong, which is exactly what the row-exactness assertions check.
func hybridEngine(t *testing.T) (*Engine, *druid.Table) {
	t.Helper()
	fs := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar, types.Bigint})
	for _, r := range hybridHistRows() {
		pb.AppendRow([]any{r.ts, r.country, r.clicks})
	}
	if err := loader.CreateTable("web", "events_hist", cols, []*block.Page{pb.Build()}); err != nil {
		t.Fatal(err)
	}

	store := druid.NewStore()
	rt, err := store.CreateTable("events_rt", []druid.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]any
	for _, r := range hybridRTRows() {
		rows = append(rows, []any{r.ts, r.country, r.clicks})
	}
	for _, r := range hybridHistRows()[:50] { // pre-watermark duplicates
		rows = append(rows, []any{r.ts, r.country, r.clicks})
	}
	if err := rt.Ingest(rows); err != nil {
		t.Fatal(err)
	}

	e := New()
	e.Register("hive", hive.New("hive", ms, fs, hive.Options{}))
	e.Register("druid", druidconn.New("druid", &druid.EmbeddedClient{Store: store}))
	hc := hybrid.New("hybrid", e.Catalogs)
	if err := hc.AddTable("events", hybrid.TableConfig{
		Historical: connector.HybridPart{Catalog: "hive", Schema: "web", Table: "events_hist"},
		Realtime:   connector.HybridPart{Catalog: "druid", Schema: "default", Table: "events_rt"},
		TimeColumn: "ts",
		Boundary:   hybridBoundary,
	}); err != nil {
		t.Fatal(err)
	}
	e.Register("hybrid", hc)
	return e, rt
}

func hybridQuery(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	res, err := e.Query(DefaultSession("hybrid", "default"), sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

func TestHybridExpansionExplain(t *testing.T) {
	e, _ := hybridEngine(t)
	explain := func(sql string) string {
		t.Helper()
		out, err := e.Explain(DefaultSession("hybrid", "default"), sql)
		if err != nil {
			t.Fatalf("explain %q: %v", sql, err)
		}
		return out
	}

	// No time predicate: both sides under a Union.
	plan := explain("SELECT country, clicks FROM events")
	for _, want := range []string{"Union[2 sources]", "hive.web.events_hist", "druid.default.events_rt"} {
		if !strings.Contains(plan, want) {
			t.Errorf("full-range plan missing %q:\n%s", want, plan)
		}
	}
	// The hybrid catalog itself must not survive into the physical plan.
	if strings.Contains(plan, "hybrid.default.events") {
		t.Errorf("hybrid scan not expanded:\n%s", plan)
	}

	// Historical-only predicate prunes the real-time side.
	plan = explain("SELECT count(*) FROM events WHERE ts < 500")
	if strings.Contains(plan, "Union") || strings.Contains(plan, "events_rt") {
		t.Errorf("ts < 500 should plan historical only:\n%s", plan)
	}
	if !strings.Contains(plan, "events_hist") {
		t.Errorf("ts < 500 lost the historical side:\n%s", plan)
	}

	// Real-time-only predicate prunes the historical side.
	plan = explain("SELECT count(*) FROM events WHERE ts >= 1500")
	if strings.Contains(plan, "Union") || strings.Contains(plan, "events_hist") {
		t.Errorf("ts >= 1500 should plan real-time only:\n%s", plan)
	}
	if !strings.Contains(plan, "events_rt") {
		t.Errorf("ts >= 1500 lost the real-time side:\n%s", plan)
	}
}

func TestHybridResultsRowExact(t *testing.T) {
	e, _ := hybridEngine(t)
	hist, rt := hybridHistRows(), hybridRTRows()

	// count(*): every row exactly once despite the duplicated pre-watermark
	// rows sitting in the druid store.
	res := hybridQuery(t, e, "SELECT count(*) AS n FROM events")
	if got, want := res.Rows()[0][0], int64(len(hist)+len(rt)); got != want {
		t.Errorf("count(*) = %v, want %d", got, want)
	}

	// Global sum across both sides.
	var wantSum int64
	for _, r := range hist {
		wantSum += r.clicks
	}
	for _, r := range rt {
		wantSum += r.clicks
	}
	res = hybridQuery(t, e, "SELECT sum(clicks) AS s FROM events")
	if got := res.Rows()[0][0]; got != wantSum {
		t.Errorf("sum(clicks) = %v, want %d", got, wantSum)
	}

	// Grouped aggregation spanning the boundary.
	wantByCountry := map[string]int64{}
	for _, r := range append(append([]hybridRow{}, hist...), rt...) {
		wantByCountry[r.country]++
	}
	res = hybridQuery(t, e, "SELECT country, count(*) AS n FROM events GROUP BY country ORDER BY country")
	var got []string
	for _, row := range res.Rows() {
		got = append(got, fmt.Sprint(row))
	}
	var want []string
	for c, n := range wantByCountry {
		want = append(want, fmt.Sprint([]any{c, n}))
	}
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("group by country = %v, want %v", got, want)
	}

	// A time range crossing the watermark reads both sides, filtered.
	var wantRange int64
	for _, r := range append(append([]hybridRow{}, hist...), rt...) {
		if r.ts >= 500 && r.ts < 1500 {
			wantRange++
		}
	}
	res = hybridQuery(t, e, "SELECT count(*) AS n FROM events WHERE ts >= 500 AND ts < 1500")
	if got := res.Rows()[0][0]; got != wantRange {
		t.Errorf("boundary-crossing count = %v, want %d", got, wantRange)
	}

	// Single-side ranges agree with the base tables.
	var wantHist int64
	for _, r := range hist {
		if r.ts < 500 {
			wantHist++
		}
	}
	res = hybridQuery(t, e, "SELECT count(*) AS n FROM events WHERE ts < 500")
	if got := res.Rows()[0][0]; got != wantHist {
		t.Errorf("historical-only count = %v, want %d", got, wantHist)
	}
}

// Rows appended to the druid side are visible to hybrid SQL immediately —
// the real-time half of the paper's title promise.
func TestHybridSeesFreshIngest(t *testing.T) {
	e, rt := hybridEngine(t)
	before := hybridQuery(t, e, "SELECT count(*) AS n FROM events").Rows()[0][0].(int64)
	fresh := [][]any{
		{int64(90001), "br", int64(5)},
		{int64(90002), "br", int64(6)},
		{int64(90003), "br", int64(7)},
	}
	if err := rt.Ingest(fresh); err != nil {
		t.Fatal(err)
	}
	after := hybridQuery(t, e, "SELECT count(*) AS n FROM events").Rows()[0][0].(int64)
	if after != before+3 {
		t.Errorf("count after ingest = %d, want %d", after, before+3)
	}
	res := hybridQuery(t, e, "SELECT sum(clicks) AS s FROM events WHERE country = 'br'")
	if got := res.Rows()[0][0]; got != int64(18) {
		t.Errorf("sum over fresh rows = %v, want 18", got)
	}
}
