package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/geo"
	"prestolite/internal/types"
)

// geoEngine builds trips + cities tables: cities have square geofences at
// (i*10+5, i*10+5), trips land inside specific cities.
func geoEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	mem := memory.New("memory")

	if err := mem.CreateTable("geo", "cities", []connector.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "geo_shape", Type: types.Varchar},
	}, nil); err != nil {
		t.Fatal(err)
	}
	var cityRows [][]any
	for i := 0; i < 5; i++ {
		c := float64(i*10 + 5)
		shape := fmt.Sprintf("POLYGON ((%v %v, %v %v, %v %v, %v %v, %v %v))",
			c-3, c-3, c+3, c-3, c+3, c+3, c-3, c+3, c-3, c-3)
		cityRows = append(cityRows, []any{int64(i), shape})
	}
	if err := mem.AppendRows("geo", "cities", cityRows); err != nil {
		t.Fatal(err)
	}

	if err := mem.CreateTable("geo", "trips", []connector.Column{
		{Name: "trip_id", Type: types.Bigint},
		{Name: "dest_lng", Type: types.Double},
		{Name: "dest_lat", Type: types.Double},
		{Name: "datestr", Type: types.Varchar},
	}, nil); err != nil {
		t.Fatal(err)
	}
	trips := [][]any{
		{int64(1), 5.0, 5.0, "2017-08-01"},   // city 0
		{int64(2), 15.5, 15.5, "2017-08-01"}, // city 1
		{int64(3), 15.0, 14.0, "2017-08-01"}, // city 1
		{int64(4), 99.0, 99.0, "2017-08-01"}, // no city
		{int64(5), 25.0, 25.0, "2017-08-02"}, // city 2, other date
	}
	if err := mem.AppendRows("geo", "trips", trips); err != nil {
		t.Fatal(err)
	}
	e.Register("memory", mem)
	return e
}

// paperGeoQuery is the §VI.C query verbatim (modulo table names).
const paperGeoQuery = `SELECT c.city_id, count(*)
	FROM trips AS t
	JOIN cities AS c
	ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat))
	WHERE datestr = '2017-08-01'
	GROUP BY 1`

func TestGeoJoinRewritePlan(t *testing.T) {
	e := geoEngine(t)
	s := DefaultSession("memory", "geo")
	plan, err := e.Explain(s, paperGeoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "GeoSpatialJoin[quadtree") {
		t.Errorf("plan missing quadtree geo join (Fig 13):\n%s", plan)
	}
	if strings.Contains(plan, "st_contains") && strings.Contains(plan, "Filter") {
		// st_contains must not remain as a post-join filter
		t.Errorf("brute-force st_contains filter still present:\n%s", plan)
	}
}

func TestGeoJoinDisabledFallsBackToBruteForce(t *testing.T) {
	e := geoEngine(t)
	s := DefaultSession("memory", "geo")
	s.Properties["geospatial_optimization"] = "false"
	plan, err := e.Explain(s, paperGeoQuery)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "GeoSpatialJoin") {
		t.Errorf("rewrite should be disabled:\n%s", plan)
	}
	if !strings.Contains(plan, "st_contains") {
		t.Errorf("brute force plan should keep st_contains:\n%s", plan)
	}
}

func TestGeoJoinResultsMatchBruteForce(t *testing.T) {
	e := geoEngine(t)
	fast := DefaultSession("memory", "geo")
	slow := DefaultSession("memory", "geo")
	slow.Properties["geospatial_optimization"] = "false"

	queries := []string{
		paperGeoQuery + " ORDER BY 1",
		`SELECT t.trip_id, c.city_id FROM trips t JOIN cities c
			ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat))
			ORDER BY t.trip_id`,
		// Shape on the left side (swapped orientation).
		`SELECT t.trip_id, c.city_id FROM cities c JOIN trips t
			ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat))
			ORDER BY t.trip_id`,
	}
	for _, q := range queries {
		r1, err := e.Query(fast, q)
		if err != nil {
			t.Fatalf("fast %s: %v", q, err)
		}
		r2, err := e.Query(slow, q)
		if err != nil {
			t.Fatalf("slow %s: %v", q, err)
		}
		if !reflect.DeepEqual(r1.Rows(), r2.Rows()) {
			t.Errorf("results differ for %s:\nquadtree: %v\nbrute:    %v", q, r1.Rows(), r2.Rows())
		}
	}
}

func TestPaperGeoQueryResults(t *testing.T) {
	e := geoEngine(t)
	res, err := e.Query(DefaultSession("memory", "geo"), paperGeoQuery+" ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]any{
		{int64(0), int64(1)},
		{int64(1), int64(2)},
	}
	if !reflect.DeepEqual(res.Rows(), want) {
		t.Fatalf("rows = %v, want %v", res.Rows(), want)
	}
}

func TestBuildGeoIndexAggregationInSQL(t *testing.T) {
	// The plugin's build_geo_index aggregation + geo_contains function
	// (Fig 13's rewritten shape, usable directly).
	e := geoEngine(t)
	s := DefaultSession("memory", "geo")
	res, err := e.Query(s, "SELECT build_geo_index(geo_shape) FROM cities")
	if err != nil {
		t.Fatal(err)
	}
	serialized, ok := res.Rows()[0][0].(string)
	if !ok || serialized == "" {
		t.Fatalf("build_geo_index = %v", res.Rows()[0][0])
	}
	idx, err := geo.DeserializeIndex(serialized)
	if err != nil {
		t.Fatal(err)
	}
	if got := idx.Lookup(geo.Point{Lng: 15, Lat: 15}); len(got) != 1 || got[0] != 1 {
		t.Errorf("lookup = %v", got)
	}

	res, err = e.Query(s, `SELECT count(*) FROM trips t, (SELECT build_geo_index(geo_shape) AS gidx FROM cities) AS g
		WHERE geo_contains(g.gidx, st_point(t.dest_lng, t.dest_lat))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows()[0][0] != int64(4) {
		t.Fatalf("geo_contains count = %v", res.Rows())
	}
}
