package core

import (
	"reflect"
	"strings"
	"testing"

	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/planner"
	"prestolite/internal/sql"
	"prestolite/internal/types"
)

// testEngine builds an engine with a memory catalog holding small tables.
func testEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	mem := memory.New("memory")

	tripCols := []connector.Column{
		{Name: "trip_id", Type: types.Bigint},
		{Name: "city_id", Type: types.Bigint},
		{Name: "fare", Type: types.Double},
		{Name: "datestr", Type: types.Varchar},
		{Name: "rider", Type: types.Varchar},
	}
	if err := mem.CreateTable("rawdata", "trips", tripCols, nil); err != nil {
		t.Fatal(err)
	}
	rows := [][]any{
		{int64(1), int64(12), 10.5, "2017-03-02", "alice"},
		{int64(2), int64(12), 20.0, "2017-03-02", "bob"},
		{int64(3), int64(7), 5.0, "2017-03-02", "carol"},
		{int64(4), int64(7), 7.5, "2017-03-03", "dave"},
		{int64(5), int64(9), 30.0, "2017-03-03", nil},
		{int64(6), int64(12), 2.5, "2017-03-03", "erin"},
	}
	if err := mem.AppendRows("rawdata", "trips", rows); err != nil {
		t.Fatal(err)
	}

	cityCols := []connector.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "name", Type: types.Varchar},
	}
	if err := mem.CreateTable("rawdata", "cities", cityCols, nil); err != nil {
		t.Fatal(err)
	}
	if err := mem.AppendRows("rawdata", "cities", [][]any{
		{int64(12), "san francisco"},
		{int64(7), "oakland"},
		{int64(99), "phantom"},
	}); err != nil {
		t.Fatal(err)
	}

	// Nested struct table, like the paper's schemaless trips (§V).
	baseType := types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Varchar},
		types.Field{Name: "city_id", Type: types.Bigint},
		types.Field{Name: "status", Type: types.NewRow(
			types.Field{Name: "code", Type: types.Bigint},
		)},
	)
	nestedCols := []connector.Column{
		{Name: "base", Type: baseType},
		{Name: "datestr", Type: types.Varchar},
	}
	if err := mem.CreateTable("rawdata", "mezzanine", nestedCols, nil); err != nil {
		t.Fatal(err)
	}
	if err := mem.AppendRows("rawdata", "mezzanine", [][]any{
		{[]any{"d-1", int64(12), []any{int64(200)}}, "2017-03-02"},
		{[]any{"d-2", int64(5), []any{int64(500)}}, "2017-03-02"},
		{[]any{"d-3", int64(12), []any{int64(200)}}, "2017-03-03"},
		{nil, "2017-03-02"},
	}); err != nil {
		t.Fatal(err)
	}

	e.Register("memory", mem)
	return e
}

func query(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	res, err := e.Query(DefaultSession("memory", "rawdata"), q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT * FROM trips")
	if res.RowCount() != 6 || len(res.Columns) != 5 {
		t.Fatalf("got %d rows x %d cols", res.RowCount(), len(res.Columns))
	}
	if res.Columns[0].Name != "trip_id" || res.Columns[4].Name != "rider" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestFilterAndProject(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT trip_id, fare FROM trips WHERE city_id = 12 AND fare > 5.0")
	rows := res.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != int64(1) || rows[1][0] != int64(2) {
		t.Errorf("rows = %v", rows)
	}
}

func TestPaperNestedQuery(t *testing.T) {
	e := testEngine(t)
	// §V.C example shape: nested field projection + struct predicate.
	res := query(t, e, `SELECT base.driver_uuid FROM mezzanine
		WHERE datestr = '2017-03-02' AND base.city_id IN (12)`)
	rows := res.Rows()
	if len(rows) != 1 || rows[0][0] != "d-1" {
		t.Fatalf("rows = %v", rows)
	}
	if res.Columns[0].Name != "driver_uuid" {
		t.Errorf("column name = %s", res.Columns[0].Name)
	}
}

func TestDeepNestedDereference(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT base.status.code FROM mezzanine WHERE base.status.code = 200")
	if res.RowCount() != 2 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestGroupBy(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, `SELECT city_id, count(*) AS c, sum(fare) AS total
		FROM trips GROUP BY city_id ORDER BY c DESC, city_id`)
	rows := res.Rows()
	want := [][]any{
		{int64(12), int64(3), 33.0},
		{int64(7), int64(2), 12.5},
		{int64(9), int64(1), 30.0},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
}

func TestGroupByOrdinal(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT datestr, count(*) FROM trips GROUP BY 1 ORDER BY 1")
	rows := res.Rows()
	if len(rows) != 2 || rows[0][1] != int64(3) || rows[1][1] != int64(3) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestGlobalAggregates(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT count(*), count(rider), min(fare), max(fare), avg(fare), sum(city_id) FROM trips")
	rows := res.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	r := rows[0]
	if r[0] != int64(6) || r[1] != int64(5) || r[2] != 2.5 || r[3] != 30.0 {
		t.Errorf("aggs = %v", r)
	}
	if r[4].(float64) < 12.58 || r[4].(float64) > 12.59 {
		t.Errorf("avg = %v", r[4])
	}
	if r[5] != int64(59) {
		t.Errorf("sum(city_id) = %v", r[5])
	}
}

func TestHaving(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, `SELECT city_id, count(*) FROM trips GROUP BY city_id
		HAVING count(*) >= 2 ORDER BY city_id`)
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != int64(7) || rows[1][0] != int64(12) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCountDistinct(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT count(distinct city_id) FROM trips")
	if res.Rows()[0][0] != int64(3) {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestInnerJoin(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, `SELECT t.trip_id, c.name FROM trips t
		JOIN cities c ON t.city_id = c.city_id ORDER BY t.trip_id`)
	rows := res.Rows()
	// Trip 5 (city 9) has no matching city and drops out.
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1] != "san francisco" || rows[2][1] != "oakland" {
		t.Errorf("rows = %v", rows)
	}
}

func TestLeftJoin(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, `SELECT c.name, t.trip_id FROM cities c
		LEFT JOIN trips t ON t.city_id = c.city_id AND t.fare > 100.0 ORDER BY c.name`)
	rows := res.Rows()
	// No trip has fare > 100, so every city row appears once with NULL trip.
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r[1] != nil {
			t.Errorf("expected null trip, got %v", r)
		}
	}
}

func TestJoinWithAggregation(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, `SELECT c.name, count(*) AS trips, sum(t.fare) AS revenue
		FROM trips t JOIN cities c ON t.city_id = c.city_id
		GROUP BY c.name ORDER BY revenue DESC`)
	rows := res.Rows()
	want := [][]any{
		{"san francisco", int64(3), 33.0},
		{"oakland", int64(2), 12.5},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCrossJoinWhere(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, `SELECT t.trip_id FROM trips t, cities c
		WHERE t.city_id = c.city_id AND c.name = 'oakland' ORDER BY 1`)
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != int64(3) || rows[1][0] != int64(4) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSubquery(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, `SELECT city, total FROM (
		SELECT city_id AS city, sum(fare) AS total FROM trips GROUP BY city_id
	) AS agg WHERE total > 15.0 ORDER BY total DESC`)
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != int64(12) || rows[1][0] != int64(9) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOrderByLimit(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT trip_id FROM trips ORDER BY fare DESC LIMIT 2")
	rows := res.Rows()
	if len(rows) != 2 || rows[0][0] != int64(5) || rows[1][0] != int64(2) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	e := testEngine(t)
	// ORDER BY a column that is not in the select list.
	res := query(t, e, "SELECT trip_id FROM trips ORDER BY fare LIMIT 1")
	if res.Rows()[0][0] != int64(6) {
		t.Fatalf("rows = %v", res.Rows())
	}
	if len(res.Columns) != 1 {
		t.Errorf("hidden sort column leaked: %v", res.Columns)
	}
}

func TestExpressionsAndCase(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, `SELECT trip_id, fare * 2.0,
		CASE WHEN fare > 10.0 THEN 'high' ELSE 'low' END AS bucket
		FROM trips WHERE trip_id = 2`)
	r := res.Rows()[0]
	if r[1] != 40.0 || r[2] != "high" {
		t.Fatalf("row = %v", r)
	}
}

func TestScalarQueries(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT 1 + 2 AS three, 'a' || 'b', upper('x')")
	r := res.Rows()[0]
	if r[0] != int64(3) || r[1] != "ab" || r[2] != "X" {
		t.Fatalf("row = %v", r)
	}
}

func TestNullSemantics(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT count(*) FROM trips WHERE rider IS NULL")
	if res.Rows()[0][0] != int64(1) {
		t.Fatalf("rows = %v", res.Rows())
	}
	res = query(t, e, "SELECT count(*) FROM trips WHERE rider = 'nobody' OR rider IS NULL")
	if res.Rows()[0][0] != int64(1) {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestLikeAndBetween(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT count(*) FROM trips WHERE rider LIKE '%o%' AND fare BETWEEN 5.0 AND 25.0")
	// bob, carol: 'o' in name and fare in range (dave has no 'o'... dave: no; carol fare 5.0 yes)
	if res.Rows()[0][0] != int64(2) {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestIntDoubleCoercion(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT count(*) FROM trips WHERE fare > 10")
	if res.Rows()[0][0] != int64(3) {
		t.Fatalf("rows = %v", res.Rows())
	}
	res = query(t, e, "SELECT avg(city_id + 0.5) FROM trips WHERE trip_id <= 2")
	if res.Rows()[0][0] != 12.5 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestExplainShowsPushdown(t *testing.T) {
	e := testEngine(t)
	plan, err := e.Explain(DefaultSession("memory", "rawdata"), "SELECT trip_id FROM trips WHERE city_id = 12 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"filter=", "limit=3", "TableScan"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// The engine-side Filter should be gone (fully absorbed).
	if strings.Contains(plan, "- Filter[") {
		t.Errorf("filter not absorbed:\n%s", plan)
	}
}

func TestProjectionPruningInPlan(t *testing.T) {
	e := testEngine(t)
	plan, err := e.Explain(DefaultSession("memory", "rawdata"), "SELECT trip_id FROM trips")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "rider") || strings.Contains(plan, "fare") {
		t.Errorf("unused columns not pruned:\n%s", plan)
	}
}

func TestShowTables(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SHOW TABLES FROM memory.rawdata")
	rows := res.Rows()
	if len(rows) != 3 || rows[0][0] != "cities" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestQueryErrors(t *testing.T) {
	e := testEngine(t)
	s := DefaultSession("memory", "rawdata")
	bad := []string{
		"SELECT nope FROM trips",
		"SELECT * FROM missing_table",
		"SELECT * FROM badcatalog.s.t",
		"SELECT city_id FROM trips GROUP BY datestr",
		"SELECT sum(rider) FROM trips",
		"SELECT count(*) FROM trips WHERE sum(fare) > 1",
		"SELECT fare + rider FROM trips",
		"SELECT base.missing FROM mezzanine",
		"SELECT * FROM trips ORDER BY 99",
	}
	for _, q := range bad {
		if _, err := e.Query(s, q); err == nil {
			t.Errorf("query %q unexpectedly succeeded", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := testEngine(t)
	_, err := e.Query(DefaultSession("memory", "rawdata"),
		"SELECT city_id FROM trips t JOIN cities c ON t.city_id = c.city_id")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestQualifiedStarColumns(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT t.trip_id, c.city_id FROM trips t JOIN cities c ON t.city_id = c.city_id LIMIT 1")
	if len(res.Columns) != 2 {
		t.Fatalf("cols = %v", res.Columns)
	}
}

func TestEmptyResults(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT * FROM trips WHERE city_id = 404")
	if res.RowCount() != 0 {
		t.Fatalf("rows = %v", res.Rows())
	}
	res = query(t, e, "SELECT count(*) FROM trips WHERE city_id = 404")
	if res.Rows()[0][0] != int64(0) {
		t.Fatalf("count over empty = %v", res.Rows())
	}
	res = query(t, e, "SELECT sum(fare) FROM trips WHERE city_id = 404")
	if res.Rows()[0][0] != nil {
		t.Fatalf("sum over empty = %v", res.Rows())
	}
}

func TestLimitZero(t *testing.T) {
	e := testEngine(t)
	res := query(t, e, "SELECT * FROM trips LIMIT 0")
	if res.RowCount() != 0 {
		t.Fatalf("rows = %v", res.Rows())
	}
}

func TestInsufficientResources(t *testing.T) {
	// §XII.C: "when users are joining two large tables, Presto will return
	// an error, with message 'Insufficient Resource ...'".
	e := testEngine(t)
	s := DefaultSession("memory", "rawdata")
	s.Properties["query_max_memory"] = "16" // absurdly small
	_, err := e.Query(s, "SELECT count(*) FROM trips a JOIN trips b ON a.city_id = b.city_id")
	if err == nil || !strings.Contains(err.Error(), "Insufficient Resources") {
		t.Fatalf("expected Insufficient Resources, got %v", err)
	}
	_, err = e.Query(s, "SELECT * FROM trips ORDER BY fare")
	if err == nil || !strings.Contains(err.Error(), "Insufficient Resources") {
		t.Fatalf("expected Insufficient Resources on sort, got %v", err)
	}
	// With a reasonable limit the same queries succeed.
	s.Properties["query_max_memory"] = "10000000"
	if _, err := e.Query(s, "SELECT count(*) FROM trips a JOIN trips b ON a.city_id = b.city_id"); err != nil {
		t.Fatal(err)
	}
	// Bad limit values are rejected.
	s.Properties["query_max_memory"] = "lots"
	if _, err := e.Query(s, "SELECT 1"); err == nil {
		t.Error("bad query_max_memory accepted")
	}
}

func TestQueryWithBatchFallback(t *testing.T) {
	e := testEngine(t)
	s := DefaultSession("memory", "rawdata")
	s.Properties["query_max_memory"] = "16"
	q := "SELECT count(*) FROM trips a JOIN trips b ON a.city_id = b.city_id"
	res, usedFallback, err := e.QueryWithBatchFallback(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if !usedFallback {
		t.Error("expected fallback to the batch path")
	}
	if res.Rows()[0][0] != int64(14) { // 3*3 + 2*2 + 1*1
		t.Errorf("count = %v", res.Rows()[0][0])
	}
	// Non-resource errors do not fall back.
	if _, used, err := e.QueryWithBatchFallback(s, "SELECT nope FROM trips"); err == nil || used {
		t.Errorf("bad query should fail without fallback: %v %v", used, err)
	}
	// Queries under the limit never fall back.
	if _, used, err := e.QueryWithBatchFallback(s, "SELECT count(*) FROM trips"); err != nil || used {
		t.Errorf("small query fell back: %v %v", used, err)
	}
}

// TestOptimizedMatchesUnoptimized: the optimizer (pushdowns, pruning,
// rewrites) must never change results — run each query through the raw
// analyzed plan and the optimized plan and compare.
func TestOptimizedMatchesUnoptimized(t *testing.T) {
	e := testEngine(t)
	session := DefaultSession("memory", "rawdata")
	queries := []string{
		"SELECT trip_id, fare FROM trips WHERE city_id = 12 AND fare > 5.0 ORDER BY trip_id",
		"SELECT city_id, count(*), sum(fare) FROM trips GROUP BY city_id ORDER BY city_id",
		"SELECT t.trip_id, c.name FROM trips t JOIN cities c ON t.city_id = c.city_id ORDER BY t.trip_id",
		"SELECT base.driver_uuid FROM mezzanine WHERE base.city_id IN (12) ORDER BY 1",
		"SELECT trip_id FROM trips ORDER BY fare DESC LIMIT 3",
		"SELECT count(*) FROM trips WHERE rider IS NULL OR rider LIKE 'a%'",
		"SELECT datestr, avg(fare) FROM trips GROUP BY datestr HAVING count(*) > 2 ORDER BY 1",
	}
	for _, query := range queries {
		stmt, err := sqlparse(query)
		if err != nil {
			t.Fatal(err)
		}
		analyzer := &planner.Analyzer{Catalogs: e.Catalogs, Session: session}
		raw, err := analyzer.Analyze(stmt)
		if err != nil {
			t.Fatalf("%s: analyze: %v", query, err)
		}
		rawRes, err := e.execute(session, raw)
		if err != nil {
			t.Fatalf("%s: raw execute: %v", query, err)
		}
		optRes, err := e.Query(session, query)
		if err != nil {
			t.Fatalf("%s: optimized: %v", query, err)
		}
		if !reflect.DeepEqual(rawRes.Rows(), optRes.Rows()) {
			t.Errorf("%s:\nraw:       %v\noptimized: %v", query, rawRes.Rows(), optRes.Rows())
		}
	}
}

// sqlparse is a test helper returning the query AST.
func sqlparse(q string) (*sql.Query, error) { return sql.ParseQuery(q) }

func TestLeftJoinWithNestedKey(t *testing.T) {
	// LEFT JOIN keyed on a struct dereference exercises the computed-key
	// projection below the join plus NULL padding above it.
	e := testEngine(t)
	res := query(t, e, `SELECT c.name, m.base.driver_uuid FROM cities c
		LEFT JOIN mezzanine m ON m.base.city_id = c.city_id
		ORDER BY c.name, 2`)
	rows := res.Rows()
	// cities: 12 (matches d-1 and d-3), 7 (no match), 99 (no match).
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "oakland" || rows[0][1] != nil {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][0] != "phantom" || rows[1][1] != nil {
		t.Errorf("row 1 = %v", rows[1])
	}
	if rows[2][1] != "d-1" || rows[3][1] != "d-3" {
		t.Errorf("matched rows = %v %v", rows[2], rows[3])
	}
}

func TestJoinOnExpressionKeys(t *testing.T) {
	// Arithmetic on both sides of the equi-condition still hash-joins.
	e := testEngine(t)
	res := query(t, e, `SELECT count(*) FROM trips a
		JOIN cities c ON a.city_id + 1 = c.city_id + 1`)
	if res.Rows()[0][0] != int64(5) {
		t.Fatalf("rows = %v", res.Rows())
	}
	plan, _ := e.Explain(DefaultSession("memory", "rawdata"), `SELECT count(*) FROM trips a
		JOIN cities c ON a.city_id + 1 = c.city_id + 1`)
	if !strings.Contains(plan, "INNERJoin") {
		t.Errorf("expression keys should still produce a hash join:\n%s", plan)
	}
	if strings.Contains(plan, "CROSSJoin") {
		t.Errorf("degenerated to cross join:\n%s", plan)
	}
}
