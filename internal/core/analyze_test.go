package core

import (
	"regexp"
	"strings"
	"testing"

	"prestolite/internal/obs"
)

// TestExplainAnalyzeEmbedded: EXPLAIN ANALYZE executes the statement and
// annotates every operator with nonzero actual row counts and timings.
func TestExplainAnalyzeEmbedded(t *testing.T) {
	e := testEngine(t)
	s := DefaultSession("memory", "rawdata")
	res, err := e.Query(s, "EXPLAIN ANALYZE SELECT city_id, count(*) FROM trips WHERE fare > 3.0 GROUP BY city_id")
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	text := rows[0][0].(string)

	// Every plan line must be followed by a stats annotation.
	planLines := 0
	statLines := 0
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "- ") {
			planLines++
		}
		if strings.HasPrefix(trimmed, "rows: ") {
			statLines++
		}
	}
	if planLines == 0 || planLines != statLines {
		t.Fatalf("plan lines = %d, stat lines = %d:\n%s", planLines, statLines, text)
	}
	// The fare predicate is pushed into the scan: 5 of 6 trips survive.
	if !regexp.MustCompile(`rows: 5 in, 5 out`).MatchString(text) {
		t.Errorf("scan row count missing:\n%s", text)
	}
	if strings.Contains(text, "rows: 0 in, 0 out") {
		t.Errorf("operator with no recorded rows:\n%s", text)
	}
	// Wall times are recorded (at least one non-zero duration).
	if !regexp.MustCompile(`wall: [1-9][0-9.]*(ns|µs|ms|s)`).MatchString(text) {
		t.Errorf("no nonzero wall times:\n%s", text)
	}
	if strings.Contains(text, "batches: 0") {
		t.Errorf("operator with zero batches:\n%s", text)
	}
}

func TestExplainAnalyzeStillReturnsPlainExplainShape(t *testing.T) {
	e := testEngine(t)
	s := DefaultSession("memory", "rawdata")
	res, err := e.Query(s, "EXPLAIN ANALYZE SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0].Name != "Query Plan" {
		t.Errorf("column = %q", res.Columns[0].Name)
	}
}

func TestCacheStatsFooter(t *testing.T) {
	reg := obs.NewRegistry()
	if got := CacheStatsFooter(reg.Snapshot()); got != "" {
		t.Errorf("empty registry footer = %q", got)
	}
	reg.GaugeFunc("hive.cache.footer.hit_rate", func() float64 { return 0.9375 })
	reg.GaugeFunc("hive.cache.footer.hits", func() float64 { return 15 })
	reg.GaugeFunc("unrelated.metric", func() float64 { return 1 })
	got := CacheStatsFooter(reg.Snapshot())
	want := "Cache:\n    hive.cache.footer.hit_rate: 0.94\n    hive.cache.footer.hits: 15\n"
	if got != want {
		t.Errorf("footer = %q, want %q", got, want)
	}
}
