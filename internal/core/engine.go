// Package core is the embedded engine façade: it wires the SQL front end,
// analyzer, optimizer and execution together behind a simple Query API
// (§III Fig 1, single-process form). The distributed runtime in
// internal/cluster reuses the same pieces with a fragmenter and scheduler.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/execution"
	"prestolite/internal/obs"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/sql"
	"prestolite/internal/types"

	// Load the geospatial plugin's functions (§VI.E).
	_ "prestolite/internal/geo"
)

// Engine is an embedded single-process query engine.
type Engine struct {
	Catalogs *connector.Registry
	// Obs is the engine's metrics registry: connectors that expose cache
	// metrics publish into it at Register time, and EXPLAIN ANALYZE appends
	// its cache section from it.
	Obs *obs.Registry
	// Mem, when non-nil, is the engine-wide memory pool; every query runs in
	// a child context so concurrent queries share one budget. nil = queries
	// are bounded only by their own query_max_memory.
	Mem *resource.Pool
	// Spill, when non-nil, lets blocking operators spill to disk instead of
	// failing when a reservation is refused (subject to the spill_enabled
	// session property, default true).
	Spill *resource.SpillManager
}

// New creates an engine with an empty catalog registry.
func New() *Engine {
	return &Engine{Catalogs: connector.NewRegistry(), Obs: obs.NewRegistry()}
}

// Register installs a connector under a catalog name. Connectors that
// implement obs.MetricsSource (e.g. hive with its §VII caches) are wired
// into the engine's metrics registry.
func (e *Engine) Register(catalog string, c connector.Connector) {
	e.Catalogs.Register(catalog, c)
	if src, ok := c.(obs.MetricsSource); ok {
		src.RegisterObsMetrics(e.Obs)
	}
}

// Result is a fully materialized query result.
type Result struct {
	Columns []planner.Column
	Pages   []*block.Page
}

// RowCount returns the total number of result rows.
func (r *Result) RowCount() int {
	n := 0
	for _, p := range r.Pages {
		n += p.Count()
	}
	return n
}

// Rows returns all rows boxed (convenient for tests and small results).
func (r *Result) Rows() [][]any {
	out := make([][]any, 0, r.RowCount())
	for _, p := range r.Pages {
		for i := 0; i < p.Count(); i++ {
			out = append(out, p.Row(i))
		}
	}
	return out
}

// DefaultSession returns a session with the given defaults.
func DefaultSession(catalog, schema string) *planner.Session {
	return &planner.Session{Catalog: catalog, Schema: schema, User: "test", Properties: map[string]string{}}
}

// Plan parses, analyzes and optimizes a query, returning the physical plan.
func (e *Engine) Plan(session *planner.Session, query string) (planner.Node, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	q, ok := stmt.(*sql.Query)
	if !ok {
		return nil, fmt.Errorf("core: Plan requires a SELECT query, got %T", stmt)
	}
	return e.planQuery(session, q)
}

func (e *Engine) planQuery(session *planner.Session, q *sql.Query) (planner.Node, error) {
	analyzer := &planner.Analyzer{Catalogs: e.Catalogs, Session: session}
	plan, err := analyzer.Analyze(q)
	if err != nil {
		return nil, err
	}
	optimizer := &planner.Optimizer{Catalogs: e.Catalogs, Session: session}
	plan = optimizer.Optimize(plan)
	if err := planner.CheckTypes(plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// Query executes a statement and materializes the result. EXPLAIN and SHOW
// statements return single-column textual results.
func (e *Engine) Query(session *planner.Session, query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch t := stmt.(type) {
	case *sql.Query:
		plan, err := e.planQuery(session, t)
		if err != nil {
			return nil, err
		}
		return e.execute(session, plan)
	case *sql.Explain:
		q, ok := t.Stmt.(*sql.Query)
		if !ok {
			return nil, fmt.Errorf("core: EXPLAIN supports only SELECT")
		}
		plan, err := e.planQuery(session, q)
		if err != nil {
			return nil, err
		}
		if t.Analyze {
			text, err := e.explainAnalyze(session, plan)
			if err != nil {
				return nil, err
			}
			return textResult("Query Plan", text), nil
		}
		return textResult("Query Plan", planner.Format(plan)), nil
	case *sql.ShowTables:
		conn, err := e.Catalogs.Get(t.Catalog)
		if err != nil {
			return nil, err
		}
		tables, err := conn.Metadata().ListTables(t.Schema)
		if err != nil {
			return nil, err
		}
		vals := make([]any, len(tables))
		for i, name := range tables {
			vals[i] = name
		}
		return &Result{
			Columns: []planner.Column{{Name: "table", Type: types.Varchar}},
			Pages:   []*block.Page{block.NewPage(block.FromValues(types.Varchar, vals...))},
		}, nil
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

func textResult(column, text string) *Result {
	return &Result{
		Columns: []planner.Column{{Name: column, Type: types.Varchar}},
		Pages:   []*block.Page{block.NewPage(block.FromValues(types.Varchar, text))},
	}
}

// execContext builds the runtime context for a session (§XII.C: queries
// exceeding the session memory limit fail with the "Insufficient Resources"
// error — unless spill is available and enabled). The cleanup function must
// run when the query finishes: it closes the per-query memory context so a
// failed operator cannot leak reservations into the shared pool.
func (e *Engine) execContext(session *planner.Session) (*execution.Context, func(), error) {
	ctx := &execution.Context{Catalogs: e.Catalogs}
	cleanup := func() {}
	if v := session.Property("query_max_memory", ""); v != "" {
		limit, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("core: bad query_max_memory %q: %w", v, err)
		}
		ctx.MemoryLimit = limit
	}
	if e.Mem != nil {
		q := e.Mem.Child("query", ctx.MemoryLimit)
		ctx.Memory = q
		cleanup = q.Close
	}
	if e.Spill != nil && session.Property("spill_enabled", "true") == "true" {
		ctx.Spill = e.Spill
	}
	// Intra-task parallelism: how many driver pipelines a query runs over
	// its split queue. Defaults to the core count; task_concurrency=1 forces
	// serial execution.
	ctx.Drivers = runtime.NumCPU()
	if v := session.Property("task_concurrency", ""); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil || d < 1 {
			return nil, nil, fmt.Errorf("core: bad task_concurrency %q: want a positive integer", v)
		}
		ctx.Drivers = d
	}
	// vectorized_execution=false pins every aggregation and join to the
	// row-at-a-time reference operators — the escape hatch, and the oracle
	// the equivalence suite compares the kernels against.
	ctx.DisableVectorized = session.Property("vectorized_execution", "true") == "false"
	// adaptive_exchange_rows tunes the local exchange's skip-repartition
	// threshold (0 = default, negative = always partition).
	if v := session.Property("adaptive_exchange_rows", ""); v != "" {
		r, err := strconv.Atoi(v)
		if err != nil {
			return nil, nil, fmt.Errorf("core: bad adaptive_exchange_rows %q: want an integer", v)
		}
		ctx.AdaptiveExchangeRows = r
	}
	// partial_aggregation_bypass_rows tunes how much input a partial
	// aggregation hashes before it may switch to pass-through
	// (0 = default, negative = never bypass).
	if v := session.Property("partial_aggregation_bypass_rows", ""); v != "" {
		r, err := strconv.Atoi(v)
		if err != nil {
			return nil, nil, fmt.Errorf("core: bad partial_aggregation_bypass_rows %q: want an integer", v)
		}
		ctx.PartialAggBypassRows = r
	}
	return ctx, cleanup, nil
}

func (e *Engine) execute(session *planner.Session, plan planner.Node) (*Result, error) {
	ctx, cleanup, err := e.execContext(session)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	op, err := execution.BuildParallel(plan, ctx)
	if err != nil {
		return nil, err
	}
	pages, err := execution.Drain(op)
	if err != nil {
		return nil, err
	}
	// Results leave the engine: force lazy columns (a client always reads
	// what it asked for, so deferred decode must be charged here).
	for i, p := range pages {
		pages[i] = block.MaterializePage(p)
	}
	return &Result{Columns: plan.Outputs(), Pages: pages}, nil
}

// explainAnalyze executes plan with instrumentation enabled and renders the
// physical tree annotated with actual rows, bytes, wall time and batch
// counts per operator, plus a cache-statistics footer.
func (e *Engine) explainAnalyze(session *planner.Session, plan planner.Node) (string, error) {
	ctx, cleanup, err := e.execContext(session)
	if err != nil {
		return "", err
	}
	defer cleanup()
	stats := obs.NewTaskStats()
	ctx.Stats = stats
	op, err := execution.BuildParallel(plan, ctx)
	if err != nil {
		return "", err
	}
	pages, err := execution.Drain(op)
	if err != nil {
		return "", err
	}
	// Charge deferred decode exactly as a real client read would.
	for _, p := range pages {
		block.MaterializePage(p)
	}
	text := execution.FormatAnnotated(plan, stats.Snapshot()) + CacheStatsFooter(e.Obs.Snapshot())
	return text + MemoryFooter(ctx.Memory), nil
}

// MemoryFooter renders the per-query memory footer ("" without a memory
// context) — peak reservation and spilled bytes, appended to EXPLAIN ANALYZE
// so §XII.C resource behaviour shows up next to the plan.
func MemoryFooter(pool *resource.Pool) string {
	if pool == nil {
		return ""
	}
	return fmt.Sprintf("\nMemory: peak %d B, spilled %d B\n", pool.Peak(), pool.Spilled())
}

// CacheStatsFooter renders the cache-related gauges of a registry snapshot
// ("" when there are none) — appended to EXPLAIN ANALYZE output so §VII
// cache effectiveness shows up next to the operators it accelerates.
func CacheStatsFooter(snap obs.Snapshot) string { return snap.CacheSection() }

// Explain returns the formatted optimized plan.
func (e *Engine) Explain(session *planner.Session, query string) (string, error) {
	plan, err := e.Plan(session, query)
	if err != nil {
		return "", err
	}
	return planner.Format(plan), nil
}

// QueryWithBatchFallback implements the §XII.C recommendation: users write
// one SQL dialect, and a query that fails with "Insufficient Resources" is
// automatically re-run on a batch path (standing in for Presto on Spark)
// instead of bouncing the error to the user. The batch path here is the same
// engine with the interactive memory limit lifted — the property that
// matters is the transparent retry, not the other engine's internals.
// It reports whether the fallback path served the query.
func (e *Engine) QueryWithBatchFallback(session *planner.Session, query string) (*Result, bool, error) {
	res, err := e.Query(session, query)
	if err == nil {
		return res, false, nil
	}
	var insufficient execution.ErrInsufficientResources
	if !errors.As(err, &insufficient) {
		return nil, false, err
	}
	batch := &planner.Session{
		Catalog: session.Catalog, Schema: session.Schema, User: session.User,
		Properties: map[string]string{},
	}
	for k, v := range session.Properties {
		if k != "query_max_memory" {
			batch.Properties[k] = v
		}
	}
	res, err = e.Query(batch, query)
	return res, true, err
}
