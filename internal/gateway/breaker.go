package gateway

import (
	"sync"
	"time"

	"prestolite/internal/fault"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: traffic flows; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe request
	// is allowed through; its outcome closes or re-opens the circuit.
	BreakerHalfOpen
	// BreakerOpen: the cluster failed repeatedly; requests are refused
	// locally until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is a per-cluster circuit breaker for the gateway's resubmission
// path. It keeps a repeatedly failing cluster from soaking up resubmission
// budget: after Threshold consecutive failures the circuit opens and the
// cluster is skipped outright; after Cooldown one probe is let through, and
// its outcome decides between closing the circuit and re-opening it.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     fault.Clock

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool // half-open: a probe is already in flight
}

// NewBreaker builds a breaker; threshold < 1 defaults to 3 consecutive
// failures, cooldown <= 0 to one second.
func NewBreaker(threshold int, cooldown time.Duration, clock fault.Clock) *Breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if clock == nil {
		clock = fault.RealClock{}
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// Allow reports whether a request may be sent to the cluster now. In the
// open state it flips to half-open once the cooldown elapses, admitting a
// single probe; concurrent callers during the probe are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a served request: the circuit closes and the failure
// count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// Failure records a failed request. Threshold consecutive failures open the
// circuit; a failed half-open probe re-opens it for another full cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.clock.Now()
		b.probing = false
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.clock.Now()
		}
	default: // already open: nothing to count
	}
}

// State returns the current position (open flips to half-open only via
// Allow, so a quiesced breaker reads open until someone asks to send).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
