// Package gateway implements cluster federation (§VIII): a presto gateway
// that redirects incoming queries to specific clusters based on user and
// group, with the user/group → cluster mapping stored in MySQL (the
// mysqlite substrate) so administrators can dynamically re-route any traffic
// to any cluster — e.g. draining a cluster for maintenance or upgrade with
// no downtime.
//
// The gateway uses HTTP redirect (307) rather than proxying: the lesson of
// §XII.B is that a general proxying gateway becomes the bottleneck, while a
// redirecting gateway lets clients connect directly to each cluster.
package gateway

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"

	"prestolite/internal/mysqlite"
	"prestolite/internal/types"
)

// Rule kinds, matched in priority order: user rules beat group rules beat
// the default.
const (
	KindUser    = "user"
	KindGroup   = "group"
	KindDefault = "default"
)

// Gateway routes query traffic.
type Gateway struct {
	db *mysqlite.DB

	http *http.Server
	ln   net.Listener
	addr string

	// Redirects counts issued redirects (for tests/monitoring).
	Redirects atomic.Int64
}

// New creates a gateway backed by a fresh routing database.
func New() (*Gateway, error) {
	db := mysqlite.New()
	if _, err := db.CreateTable("clusters", []mysqlite.Column{
		{Name: "name", Type: types.Varchar},
		{Name: "addr", Type: types.Varchar},
		{Name: "enabled", Type: types.Bigint},
	}, "name"); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("routes", []mysqlite.Column{
		{Name: "principal", Type: types.Varchar}, // "user:alice", "group:etl", "default"
		{Name: "cluster", Type: types.Varchar},
	}, "principal"); err != nil {
		return nil, err
	}
	return &Gateway{db: db}, nil
}

// DB exposes the routing store — "Presto administrators could play with
// MySQL to dynamically redirect any traffic to any cluster".
func (g *Gateway) DB() *mysqlite.DB { return g.db }

// AddCluster registers a cluster coordinator address.
func (g *Gateway) AddCluster(name, addr string) error {
	return g.db.Upsert("clusters", []any{name, addr, int64(1)})
}

// SetClusterEnabled marks a cluster in or out of rotation.
func (g *Gateway) SetClusterEnabled(name string, enabled bool) error {
	row, ok, err := g.db.GetByPK("clusters", name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("gateway: cluster %q is not registered", name)
	}
	e := int64(0)
	if enabled {
		e = 1
	}
	return g.db.Upsert("clusters", []any{row[0], row[1], e})
}

// SetRoute maps a principal ("user:alice", "group:growth", "default") to a
// cluster name.
func (g *Gateway) SetRoute(principal, cluster string) error {
	return g.db.Upsert("routes", []any{principal, cluster})
}

// DeleteRoute removes a mapping.
func (g *Gateway) DeleteRoute(principal string) error {
	_, err := g.db.DeleteByPK("routes", principal)
	return err
}

// Resolve returns the target cluster address for a user and group.
func (g *Gateway) Resolve(user, group string) (string, error) {
	for _, principal := range []string{"user:" + user, "group:" + group, "default"} {
		row, ok, err := g.db.GetByPK("routes", principal)
		if err != nil {
			return "", err
		}
		if !ok {
			continue
		}
		cluster := row[1].(string)
		crow, ok, err := g.db.GetByPK("clusters", cluster)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("gateway: route %s points at unknown cluster %q", principal, cluster)
		}
		if crow[2].(int64) == 0 {
			// Cluster drained: fall through to the next principal (group or
			// default), achieving no-downtime maintenance.
			continue
		}
		return crow[1].(string), nil
	}
	return "", fmt.Errorf("gateway: no route for user %q group %q", user, group)
}

// Start serves the gateway on addr.
func (g *Gateway) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("gateway: listen: %w", err)
	}
	g.ln = ln
	g.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/statement", g.handleStatement)
	g.http = &http.Server{Handler: mux}
	go g.http.Serve(ln)
	return nil
}

// Addr returns the gateway address.
func (g *Gateway) Addr() string { return g.addr }

// Close stops the server.
func (g *Gateway) Close() error {
	if g.http != nil {
		return g.http.Close()
	}
	return nil
}

// handleStatement issues a 307 redirect to the resolved cluster. 307
// preserves the method and body, so the client's POST replays against the
// coordinator directly.
func (g *Gateway) handleStatement(w http.ResponseWriter, r *http.Request) {
	user := r.Header.Get("X-Presto-User")
	group := r.Header.Get("X-Presto-Group")
	target, err := g.Resolve(user, group)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	g.Redirects.Add(1)
	http.Redirect(w, r, "http://"+target+"/v1/statement", http.StatusTemporaryRedirect)
}
