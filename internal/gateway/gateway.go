// Package gateway implements cluster federation (§VIII): a presto gateway
// that redirects incoming queries to specific clusters based on user and
// group, with the user/group → cluster mapping stored in MySQL (the
// mysqlite substrate) so administrators can dynamically re-route any traffic
// to any cluster — e.g. draining a cluster for maintenance or upgrade with
// no downtime.
//
// The gateway uses HTTP redirect (307) rather than proxying: the lesson of
// §XII.B is that a general proxying gateway becomes the bottleneck, while a
// redirecting gateway lets clients connect directly to each cluster.
//
// Routes may also target the LeastLoaded sentinel ("any") instead of a named
// cluster: the gateway then polls each enabled coordinator's /v1/stats and
// redirects to the cluster with the fewest outstanding queries, spreading
// interactive load across the fleet. The Sticky sentinel ("sticky") instead
// rendezvous-hashes the client's session key over the enabled clusters, so a
// dashboard's repeated statements keep landing on the cluster whose result
// and chunk caches they warmed, falling back deterministically when that
// cluster is unhealthy.
package gateway

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/cluster"
	"prestolite/internal/fault"
	"prestolite/internal/mysqlite"
	"prestolite/internal/obs"
	"prestolite/internal/types"
)

// Rule kinds, matched in priority order: user rules beat group rules beat
// the default.
const (
	KindUser    = "user"
	KindGroup   = "group"
	KindDefault = "default"
)

// LeastLoaded is a sentinel route target: instead of naming one cluster, the
// route sends the principal to whichever enabled cluster currently has the
// fewest outstanding queries. The gateway learns the load by polling each
// coordinator's GET /v1/stats (the queries_outstanding gauge), cached for
// loadTTL so a burst of queries doesn't turn into a burst of stats polls.
const LeastLoaded = "any"

// Sticky is a sentinel route target for cache-affinity routing: the gateway
// rendezvous-hashes the client's session key (the X-Presto-Session header,
// falling back to the user) over the enabled clusters and redirects to the
// highest-ranked healthy one. A dashboard that reuses its session key thus
// keeps hitting the same cluster — whose coordinator result cache and worker
// chunk caches stay warm for exactly its queries — while an unhealthy,
// saturated or draining preferred cluster degrades deterministically to the
// next cluster in hash order (counted as gateway_sticky_fallbacks).
const Sticky = "sticky"

// defaultLoadTTL bounds how stale a cached cluster load may be.
const defaultLoadTTL = 250 * time.Millisecond

// defaultResubmitBudget caps how many times /v1/execute resubmits one
// idempotent statement onto another cluster before giving up.
const defaultResubmitBudget = 3

// maxStatementBody bounds the statement document /v1/execute buffers for
// replay across resubmission attempts.
const maxStatementBody = 1 << 20

// Gateway routes query traffic.
type Gateway struct {
	db *mysqlite.DB

	http *http.Server
	ln   net.Listener
	addr string

	// Redirects counts issued redirects (for tests/monitoring).
	Redirects atomic.Int64

	// LoadTTL bounds how stale a cached cluster load may be.
	LoadTTL time.Duration

	// ResubmitBudget caps per-statement resubmission attempts on the
	// /v1/execute path (0 = default 3). The budget spends only on
	// idempotent statements — everything else gets exactly one attempt.
	ResubmitBudget int
	// BreakerThreshold is the consecutive-failure count that opens a
	// cluster's circuit (0 = default 3); BreakerCooldown is how long the
	// circuit stays open before admitting a probe (0 = default 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// loadMu guards the per-cluster outstanding-query cache.
	loadMu    sync.Mutex
	loads     map[string]clusterLoad // addr -> last polled load
	statsHTTP *http.Client
	stmtHTTP  *http.Client

	// breakMu guards the per-cluster circuit breakers (keyed by address).
	breakMu  sync.Mutex
	breakers map[string]*Breaker

	obs             *obs.Registry
	failovers       *obs.Counter
	resubmissions   *obs.Counter
	stickyRoutes    *obs.Counter
	stickyFallbacks *obs.Counter

	// clock drives the load-cache TTL checks; injected via ClientConfig so
	// chaos replay controls gateway staleness decisions too.
	clock fault.Clock
}

type clusterLoad struct {
	outstanding float64
	saturated   bool // admission queues full: a submission now gets a 429
	draining    bool // coordinator in graceful drain: refuses new statements
	fetched     time.Time
	ok          bool
}

// ErrAllSaturated: every reachable cluster's admission queues are full. The
// gateway answers 429 + Retry-After instead of bouncing the client between
// coordinators that would each reject it anyway.
var ErrAllSaturated = errors.New("gateway: all reachable clusters are saturated")

// New creates a gateway backed by a fresh routing database, with default
// client settings.
func New() (*Gateway, error) {
	return NewWithConfig(cluster.ClientConfig{})
}

// NewWithConfig creates a gateway whose health/load polls use cfg — the same
// ClientConfig the coordinator uses, so chaos tests inject one transport
// everywhere and timeouts are never inline literals.
func NewWithConfig(cfg cluster.ClientConfig) (*Gateway, error) {
	cfg = cfg.WithDefaults()
	db := mysqlite.New()
	if _, err := db.CreateTable("clusters", []mysqlite.Column{
		{Name: "name", Type: types.Varchar},
		{Name: "addr", Type: types.Varchar},
		{Name: "enabled", Type: types.Bigint},
	}, "name"); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable("routes", []mysqlite.Column{
		{Name: "principal", Type: types.Varchar}, // "user:alice", "group:etl", "default"
		{Name: "cluster", Type: types.Varchar},
	}, "principal"); err != nil {
		return nil, err
	}
	g := &Gateway{
		db:        db,
		LoadTTL:   defaultLoadTTL,
		loads:     map[string]clusterLoad{},
		statsHTTP: cfg.StatsHTTPClient(),
		stmtHTTP:  cfg.StatementHTTPClient(),
		breakers:  map[string]*Breaker{},
		clock:     cfg.Clock,
		obs:       obs.NewRegistry(),
	}
	g.failovers = g.obs.Counter("gateway_failovers")
	g.resubmissions = g.obs.Counter("gateway_resubmissions")
	g.stickyRoutes = g.obs.Counter("gateway_sticky_routes")
	g.stickyFallbacks = g.obs.Counter("gateway_sticky_fallbacks")
	g.obs.GaugeFunc("redirects", func() float64 { return float64(g.Redirects.Load()) })
	return g, nil
}

// Obs exposes the gateway's metrics registry (gateway_failovers, redirects).
func (g *Gateway) Obs() *obs.Registry { return g.obs }

// DB exposes the routing store — "Presto administrators could play with
// MySQL to dynamically redirect any traffic to any cluster".
func (g *Gateway) DB() *mysqlite.DB { return g.db }

// AddCluster registers a cluster coordinator address, wiring up its circuit
// breaker and the breaker_state.<name> gauge (0 = closed, 1 = half-open,
// 2 = open). Re-registering a cluster overwrites the gauge in place.
func (g *Gateway) AddCluster(name, addr string) error {
	if err := g.db.Upsert("clusters", []any{name, addr, int64(1)}); err != nil {
		return err
	}
	b := g.breakerFor(addr)
	g.obs.GaugeFunc("breaker_state."+name, func() float64 { return float64(b.State()) })
	return nil
}

// breakerFor returns (lazily creating) the breaker guarding addr.
func (g *Gateway) breakerFor(addr string) *Breaker {
	g.breakMu.Lock()
	defer g.breakMu.Unlock()
	b, ok := g.breakers[addr]
	if !ok {
		b = NewBreaker(g.BreakerThreshold, g.BreakerCooldown, g.clock)
		g.breakers[addr] = b
	}
	return b
}

// SetClusterEnabled marks a cluster in or out of rotation.
func (g *Gateway) SetClusterEnabled(name string, enabled bool) error {
	row, ok, err := g.db.GetByPK("clusters", name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("gateway: cluster %q is not registered", name)
	}
	e := int64(0)
	if enabled {
		e = 1
	}
	return g.db.Upsert("clusters", []any{row[0], row[1], e})
}

// SetRoute maps a principal ("user:alice", "group:growth", "default") to a
// cluster name.
func (g *Gateway) SetRoute(principal, cluster string) error {
	return g.db.Upsert("routes", []any{principal, cluster})
}

// DeleteRoute removes a mapping.
func (g *Gateway) DeleteRoute(principal string) error {
	_, err := g.db.DeleteByPK("routes", principal)
	return err
}

// Resolve returns the target cluster address for a user and group. Sticky
// routes key on the user (no session header on this path).
func (g *Gateway) Resolve(user, group string) (string, error) {
	return g.ResolveSession(user, group, "")
}

// ResolveSession resolves with an explicit session key for sticky routes; an
// empty key falls back to the user, so session-less clients still stick
// per-user instead of scattering.
func (g *Gateway) ResolveSession(user, group, session string) (string, error) {
	for _, principal := range []string{"user:" + user, "group:" + group, "default"} {
		row, ok, err := g.db.GetByPK("routes", principal)
		if err != nil {
			return "", err
		}
		if !ok {
			continue
		}
		cluster := row[1].(string)
		if cluster == LeastLoaded {
			addr, err := g.leastLoadedCluster()
			if err != nil {
				return "", err
			}
			return addr, nil
		}
		if cluster == Sticky {
			key := session
			if key == "" {
				key = user
			}
			return g.stickyCluster(key)
		}
		crow, ok, err := g.db.GetByPK("clusters", cluster)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("gateway: route %s points at unknown cluster %q", principal, cluster)
		}
		if crow[2].(int64) == 0 {
			// Cluster drained: fall through to the next principal (group or
			// default), achieving no-downtime maintenance.
			continue
		}
		return g.healthyAddr(cluster, crow[1].(string))
	}
	return "", fmt.Errorf("gateway: no route for user %q group %q", user, group)
}

// healthyAddr returns the primary cluster's address when its coordinator
// answers health polls and has admission headroom, and otherwise fails the
// principal over to the next enabled, reachable, unsaturated cluster (by name
// order, for determinism). Failovers are counted in the gateway_failovers
// metric. A routed cluster whose coordinator is down — or whose admission
// queues are full and would answer only 429 — thus costs one redirect
// elsewhere, not an error back to the client. When every reachable cluster is
// saturated the typed ErrAllSaturated surfaces (handleStatement maps it to
// 429 + Retry-After).
func (g *Gateway) healthyAddr(primaryName, primaryAddr string) (string, error) {
	primary := g.pollCluster(primaryAddr)
	if primary.ok && !primary.saturated && !primary.draining {
		return primaryAddr, nil
	}
	rows, err := g.db.Scan("clusters", nil, nil, -1)
	if err != nil {
		return "", err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].(string) < rows[j][0].(string) })
	sawReachable := primary.ok
	for _, row := range rows {
		if row[0].(string) == primaryName || row[2].(int64) == 0 {
			continue
		}
		load := g.pollCluster(row[1].(string))
		if !load.ok {
			continue
		}
		sawReachable = true
		if load.saturated || load.draining {
			continue
		}
		g.failovers.Inc()
		return row[1].(string), nil
	}
	if sawReachable {
		return "", fmt.Errorf("%w (primary %q)", ErrAllSaturated, primaryName)
	}
	return "", fmt.Errorf("gateway: cluster %q is unreachable and no enabled cluster can take over", primaryName)
}

// leastLoadedCluster polls every enabled cluster's /v1/stats and picks the
// one with the fewest outstanding queries, skipping clusters whose admission
// queues are full. Ties break by cluster name so the choice is deterministic;
// unreachable clusters are skipped.
func (g *Gateway) leastLoadedCluster() (string, error) {
	rows, err := g.db.Scan("clusters", nil, nil, -1)
	if err != nil {
		return "", err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].(string) < rows[j][0].(string) })
	best, bestLoad := "", 0.0
	sawReachable := false
	for _, row := range rows {
		if row[2].(int64) == 0 {
			continue
		}
		addr := row[1].(string)
		load := g.pollCluster(addr)
		if !load.ok {
			continue
		}
		sawReachable = true
		if load.saturated || load.draining {
			continue
		}
		if best == "" || load.outstanding < bestLoad {
			best, bestLoad = addr, load.outstanding
		}
	}
	if best == "" {
		if sawReachable {
			return "", ErrAllSaturated
		}
		return "", fmt.Errorf("gateway: no enabled cluster is reachable for least-loaded routing")
	}
	return best, nil
}

// stickyScore rendezvous-hashes one session key against one cluster name —
// the same highest-random-weight scheme the coordinator uses for split
// affinity, so a cluster joining or leaving only remaps the sessions that
// hashed onto it.
func stickyScore(key, name string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))  // hash.Hash never errors
	_, _ = h.Write([]byte{0})    // separator: ("ab","c") must differ from ("a","bc")
	_, _ = h.Write([]byte(name)) // hash.Hash never errors
	return h.Sum64()
}

// stickyCluster redirects a session key to its highest-ranked enabled cluster
// that is reachable, unsaturated and not draining. Hash rank — not load —
// decides, so the same key lands on the same cluster as long as that cluster
// stays healthy; only then does the session fall down its own deterministic
// preference list (gateway_sticky_fallbacks counts those degradations).
func (g *Gateway) stickyCluster(key string) (string, error) {
	rows, err := g.db.Scan("clusters", nil, nil, -1)
	if err != nil {
		return "", err
	}
	type ranked struct {
		name, addr string
		score      uint64
	}
	var order []ranked
	for _, row := range rows {
		if row[2].(int64) == 0 {
			continue
		}
		name := row[0].(string)
		order = append(order, ranked{name: name, addr: row[1].(string), score: stickyScore(key, name)})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].score != order[j].score {
			return order[i].score > order[j].score
		}
		return order[i].name < order[j].name
	})
	sawReachable := false
	for pos, cand := range order {
		load := g.pollCluster(cand.addr)
		if !load.ok {
			continue
		}
		sawReachable = true
		if load.saturated || load.draining {
			continue
		}
		if pos == 0 {
			g.stickyRoutes.Inc()
		} else {
			g.stickyFallbacks.Inc()
		}
		return cand.addr, nil
	}
	if sawReachable {
		return "", ErrAllSaturated
	}
	return "", fmt.Errorf("gateway: no enabled cluster is reachable for sticky routing")
}

// pollCluster returns a cluster's load snapshot (outstanding queries and
// admission saturation), polling its /v1/stats endpoint at most once per
// LoadTTL.
func (g *Gateway) pollCluster(addr string) clusterLoad {
	g.loadMu.Lock()
	cached, ok := g.loads[addr]
	g.loadMu.Unlock()
	if ok && g.clock.Now().Sub(cached.fetched) < g.LoadTTL {
		return cached
	}
	load := clusterLoad{fetched: g.clock.Now()}
	if resp, err := g.statsHTTP.Get("http://" + addr + "/v1/stats"); err == nil {
		var snap struct {
			Gauges map[string]float64
		}
		if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&snap) == nil {
			load.outstanding = snap.Gauges["queries_outstanding"]
			load.saturated = snap.Gauges["admission_saturated"] > 0
			load.draining = snap.Gauges["coordinator_draining"] > 0
			load.ok = true
		}
		_ = resp.Body.Close() // best-effort: the load snapshot is already decoded
	}
	g.loadMu.Lock()
	g.loads[addr] = load
	g.loadMu.Unlock()
	return load
}

// Start serves the gateway on addr.
func (g *Gateway) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("gateway: listen: %w", err)
	}
	g.ln = ln
	g.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/statement", g.handleStatement)
	mux.HandleFunc("/v1/execute", g.handleExecute)
	mux.HandleFunc("/v1/stats", g.handleStats)
	g.http = &http.Server{Handler: mux}
	go g.http.Serve(ln)
	return nil
}

// Addr returns the gateway address.
func (g *Gateway) Addr() string { return g.addr }

// Close stops the server.
func (g *Gateway) Close() error {
	if g.http != nil {
		return g.http.Close()
	}
	return nil
}

// handleStats serves the gateway's metrics registry as JSON, mirroring the
// coordinator and worker /v1/stats endpoints.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(g.obs.Snapshot().JSON()) // best-effort: client hung up mid-snapshot
}

// handleStatement issues a 307 redirect to the resolved cluster. 307
// preserves the method and body, so the client's POST replays against the
// coordinator directly.
func (g *Gateway) handleStatement(w http.ResponseWriter, r *http.Request) {
	user := r.Header.Get("X-Presto-User")
	group := r.Header.Get("X-Presto-Group")
	target, err := g.ResolveSession(user, group, r.Header.Get("X-Presto-Session"))
	if err != nil {
		if errors.Is(err, ErrAllSaturated) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	g.Redirects.Add(1)
	http.Redirect(w, r, "http://"+target+"/v1/statement", http.StatusTemporaryRedirect)
}

// IsIdempotentStatement reports whether a statement may be replayed on
// another cluster without risking duplicate effects. Reads (SELECT, WITH)
// and plan renderings (EXPLAIN) qualify; anything else gets exactly one
// attempt.
func IsIdempotentStatement(query string) bool {
	q := strings.ToUpper(strings.TrimSpace(query))
	return strings.HasPrefix(q, "SELECT") ||
		strings.HasPrefix(q, "EXPLAIN") ||
		strings.HasPrefix(q, "WITH")
}

// handleExecute is the proxying front end with transparent resubmission:
// unlike /v1/statement's redirect, the gateway forwards the statement
// itself, and when the target cluster fails mid-flight for a lifecycle
// reason — coordinator drain (503 + X-Presto-Retryable) or abrupt process
// death (transport error) — it replays the identical statement onto the
// next healthy cluster, bounded by ResubmitBudget. Only idempotent
// statements resubmit; failures trip the per-cluster circuit breaker so a
// down cluster stops consuming budget.
//
// The §XII.B lesson that a proxying gateway becomes the bottleneck is why
// /v1/statement (redirect) stays the default path; /v1/execute is for
// clients that want the gateway to absorb rolling restarts for them.
func (g *Gateway) handleExecute(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxStatementBody))
	if err != nil {
		http.Error(w, "gateway: reading statement: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req cluster.StatementRequest
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
		http.Error(w, "gateway: bad statement request: "+err.Error(), http.StatusBadRequest)
		return
	}
	user := r.Header.Get("X-Presto-User")
	group := r.Header.Get("X-Presto-Group")
	session := r.Header.Get("X-Presto-Session")

	attempts := 1
	if IsIdempotentStatement(req.Query) {
		budget := g.ResubmitBudget
		if budget <= 0 {
			budget = defaultResubmitBudget
		}
		attempts = 1 + budget
	}
	tried := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		addr, err := g.executeTarget(user, group, session, tried)
		if err != nil {
			lastErr = err
			break
		}
		tried[addr] = true
		if attempt > 0 {
			g.resubmissions.Inc()
		}
		br := g.breakerFor(addr)
		status, hdr, respBody, err := g.forward(addr, body, user, group, session)
		if err != nil {
			// Transport failure: the coordinator process is gone or
			// unreachable. Trip the breaker and resubmit elsewhere.
			br.Failure()
			lastErr = fmt.Errorf("cluster %s: %w", addr, err)
			continue
		}
		if status == http.StatusOK {
			br.Success()
			w.Header().Set("Content-Type", "application/x-gob")
			_, _ = w.Write(respBody) // best-effort: client hung up mid-result
			return
		}
		if status == http.StatusServiceUnavailable && hdr.Get("X-Presto-Retryable") == "true" {
			// The coordinator refused for lifecycle reasons (drain): safe to
			// replay verbatim on the next cluster.
			br.Failure()
			lastErr = fmt.Errorf("cluster %s: %s", addr, strings.TrimSpace(string(respBody)))
			continue
		}
		// The coordinator answered with a verdict on the statement itself
		// (planning error, admission 429): relay it verbatim — resubmitting
		// would not change it, and it is not the cluster's fault.
		if ra := hdr.Get("Retry-After"); ra != "" {
			w.Header().Set("Retry-After", ra)
		}
		w.WriteHeader(status)
		_, _ = w.Write(respBody) // best-effort error relay
		return
	}
	w.Header().Set("Retry-After", "1")
	msg := "gateway: statement could not be placed on any cluster"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	http.Error(w, msg, http.StatusServiceUnavailable)
}

// executeTarget picks the next cluster for one /v1/execute attempt: the
// routed target first, then the remaining enabled clusters in name order —
// skipping already-tried addresses, open circuit breakers, and clusters
// whose health poll says unreachable, saturated or draining.
func (g *Gateway) executeTarget(user, group, session string, tried map[string]bool) (string, error) {
	if addr, err := g.ResolveSession(user, group, session); err == nil && !tried[addr] && g.breakerFor(addr).Allow() {
		return addr, nil
	}
	rows, err := g.db.Scan("clusters", nil, nil, -1)
	if err != nil {
		return "", err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].(string) < rows[j][0].(string) })
	for _, row := range rows {
		if row[2].(int64) == 0 {
			continue
		}
		addr := row[1].(string)
		if tried[addr] {
			continue
		}
		load := g.pollCluster(addr)
		if !load.ok || load.saturated || load.draining {
			continue
		}
		// Breaker last: Allow on an open circuit consumes the half-open
		// probe slot, so only ask once the cluster already looks usable.
		if !g.breakerFor(addr).Allow() {
			continue
		}
		return addr, nil
	}
	return "", fmt.Errorf("gateway: no healthy cluster left to try")
}

// forward replays the statement document against one coordinator.
func (g *Gateway) forward(addr string, body []byte, user, group, session string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/statement", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/x-gob")
	req.Header.Set("X-Presto-User", user)
	req.Header.Set("X-Presto-Group", group)
	if session != "" {
		req.Header.Set("X-Presto-Session", session)
	}
	resp, err := g.stmtHTTP.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// Client executes statements through the gateway's proxying /v1/execute
// endpoint, letting the gateway absorb coordinator drains and deaths via
// transparent resubmission. (cluster.Client against /v1/statement remains
// the redirect-following path.)
type Client struct {
	Addr string
	HTTP *http.Client
}

// NewClient targets a gateway with the default client configuration.
func NewClient(addr string) *Client {
	cfg := cluster.DefaultClientConfig()
	return &Client{Addr: addr, HTTP: cfg.StatementHTTPClient()}
}

// Execute runs one statement via the gateway, carrying the identity headers
// routing keys on.
func (cl *Client) Execute(req cluster.StatementRequest, user, group string) (*cluster.QueryResult, error) {
	return cl.ExecuteSession(req, user, group, "")
}

// ExecuteSession additionally carries a session key so sticky routes pin the
// statement to the cluster whose caches this session warmed.
func (cl *Client) ExecuteSession(req cluster.StatementRequest, user, group, session string) (*cluster.QueryResult, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, "http://"+cl.Addr+"/v1/execute", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/x-gob")
	httpReq.Header.Set("X-Presto-User", user)
	httpReq.Header.Set("X-Presto-Group", group)
	if session != "" {
		httpReq.Header.Set("X-Presto-Session", session)
	}
	hc := cl.HTTP
	if hc == nil {
		def := cluster.DefaultClientConfig()
		hc = def.StatementHTTPClient()
	}
	resp, err := hc.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) // best-effort error detail
		return nil, fmt.Errorf("execute failed (status %d): %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var out cluster.QueryResult
	if err := gob.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
