package gateway

import (
	"net/http"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/cluster"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/resource"
	"prestolite/internal/types"
)

// startCluster creates a one-worker cluster whose memory catalog carries a
// marker value so tests can see which cluster served a query.
func startCluster(t *testing.T, marker string) *cluster.Coordinator {
	t.Helper()
	mem := memory.New("memory")
	if err := mem.CreateTable("meta", "whoami", []connector.Column{
		{Name: "cluster", Type: types.Varchar},
	}, []*block.Page{block.NewPage(block.FromValues(types.Varchar, marker))}); err != nil {
		t.Fatal(err)
	}
	reg := connector.NewRegistry()
	reg.Register("memory", mem)
	coord := cluster.NewCoordinator(reg)
	w := cluster.NewWorker(reg)
	w.GracePeriod = 10 * time.Millisecond
	if err := w.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	coord.AddWorker(w.Addr())
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

func askVia(t *testing.T, gw *Gateway, user, group string) string {
	t.Helper()
	client := cluster.NewClient(gw.Addr())
	res, err := client.QueryWithIdentity(cluster.StatementRequest{
		Query:   "SELECT cluster FROM whoami",
		Catalog: "memory",
		Schema:  "meta",
		User:    user,
	}, user, group)
	if err != nil {
		t.Fatalf("query via gateway as %s/%s: %v", user, group, err)
	}
	rows, err := res.Rows()
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	return rows[0][0].(string)
}

func newGateway(t *testing.T) (*Gateway, *cluster.Coordinator, *cluster.Coordinator) {
	t.Helper()
	dedicated := startCluster(t, "dedicated")
	shared := startCluster(t, "shared")
	gw, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.AddCluster("dedicated", dedicated.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := gw.AddCluster("shared", shared.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetRoute("user:alice", "dedicated"); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetRoute("group:growth", "dedicated"); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetRoute("default", "shared"); err != nil {
		t.Fatal(err)
	}
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return gw, dedicated, shared
}

func TestRoutingByUserAndGroup(t *testing.T) {
	gw, _, _ := newGateway(t)
	if got := askVia(t, gw, "alice", ""); got != "dedicated" {
		t.Errorf("alice routed to %s", got)
	}
	if got := askVia(t, gw, "bob", "growth"); got != "dedicated" {
		t.Errorf("growth group routed to %s", got)
	}
	if got := askVia(t, gw, "bob", "etl"); got != "shared" {
		t.Errorf("bob routed to %s", got)
	}
	if gw.Redirects.Load() != 3 {
		t.Errorf("redirects = %d", gw.Redirects.Load())
	}
}

func TestDynamicRerouting(t *testing.T) {
	gw, _, _ := newGateway(t)
	if got := askVia(t, gw, "alice", ""); got != "dedicated" {
		t.Fatalf("alice initially on %s", got)
	}
	// Administrator rewrites the MySQL mapping; traffic moves immediately.
	if err := gw.SetRoute("user:alice", "shared"); err != nil {
		t.Fatal(err)
	}
	if got := askVia(t, gw, "alice", ""); got != "shared" {
		t.Errorf("alice rerouted to %s", got)
	}
	if err := gw.DeleteRoute("user:alice"); err != nil {
		t.Fatal(err)
	}
	if got := askVia(t, gw, "alice", ""); got != "shared" {
		t.Errorf("alice after delete on %s (default)", got)
	}
}

func TestDrainClusterForMaintenance(t *testing.T) {
	// §VIII: "when we are doing cluster maintenance or software upgrade, we
	// will redirect traffic ... to guarantee no downtime for end users."
	gw, _, _ := newGateway(t)
	if err := gw.SetClusterEnabled("dedicated", false); err != nil {
		t.Fatal(err)
	}
	// Alice's user rule points at the drained cluster; she falls through to
	// the default (shared) with zero failures.
	if got := askVia(t, gw, "alice", ""); got != "shared" {
		t.Errorf("alice during maintenance on %s", got)
	}
	// Maintenance over.
	if err := gw.SetClusterEnabled("dedicated", true); err != nil {
		t.Fatal(err)
	}
	if got := askVia(t, gw, "alice", ""); got != "dedicated" {
		t.Errorf("alice after maintenance on %s", got)
	}
}

func TestResolveErrors(t *testing.T) {
	gw, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Resolve("nobody", ""); err == nil {
		t.Error("no routes should fail")
	}
	if err := gw.SetRoute("default", "ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Resolve("nobody", ""); err == nil {
		t.Error("route to unknown cluster should fail")
	}
	if err := gw.SetClusterEnabled("ghost", true); err == nil {
		t.Error("enabling unknown cluster should fail")
	}
}

// TestLeastLoadedRouting: a route targeting the LeastLoaded sentinel spreads
// queries across clusters by their live outstanding-query counts, polled from
// each coordinator's /v1/stats.
func TestLeastLoadedRouting(t *testing.T) {
	dedicated := startCluster(t, "dedicated")
	shared := startCluster(t, "shared")
	gw, err := New()
	if err != nil {
		t.Fatal(err)
	}
	gw.LoadTTL = 0 // always poll live in the test
	if err := gw.AddCluster("dedicated", dedicated.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := gw.AddCluster("shared", shared.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetRoute("default", LeastLoaded); err != nil {
		t.Fatal(err)
	}
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })

	// Both idle: the tie breaks deterministically by cluster name.
	if got := askVia(t, gw, "bob", ""); got != "dedicated" {
		t.Fatalf("idle tie routed to %s", got)
	}

	// Pile outstanding queries onto the dedicated cluster; traffic moves to
	// the other one.
	dedicated.Obs().Gauge("queries_outstanding").Add(5)
	if got := askVia(t, gw, "bob", ""); got != "shared" {
		t.Errorf("with dedicated loaded, routed to %s", got)
	}

	// Now the shared cluster is busier; traffic moves back.
	shared.Obs().Gauge("queries_outstanding").Add(9)
	if got := askVia(t, gw, "bob", ""); got != "dedicated" {
		t.Errorf("with shared loaded, routed to %s", got)
	}

	// A drained cluster is excluded even if it is the least loaded.
	if err := gw.SetClusterEnabled("dedicated", false); err != nil {
		t.Fatal(err)
	}
	if got := askVia(t, gw, "bob", ""); got != "shared" {
		t.Errorf("with dedicated drained, routed to %s", got)
	}
}

// TestFailoverToHealthyCluster: a route pointing at an enabled cluster whose
// coordinator is dead fails over to the next enabled reachable cluster
// instead of bouncing the client into a connection error, and the failover is
// visible in the gateway_failovers metric.
func TestFailoverToHealthyCluster(t *testing.T) {
	gw, dedicated, _ := newGateway(t)
	gw.LoadTTL = 0 // always poll live health in the test
	if got := askVia(t, gw, "alice", ""); got != "dedicated" {
		t.Fatalf("alice initially on %s", got)
	}
	if n := gw.Obs().Snapshot().Counters["gateway_failovers"]; n != 0 {
		t.Fatalf("gateway_failovers = %d before any failure", n)
	}

	// The dedicated coordinator dies without any route/enabled change.
	if err := dedicated.Close(); err != nil {
		t.Fatal(err)
	}
	if got := askVia(t, gw, "alice", ""); got != "shared" {
		t.Errorf("alice after coordinator death on %s, want shared", got)
	}
	if n := gw.Obs().Snapshot().Counters["gateway_failovers"]; n < 1 {
		t.Errorf("gateway_failovers = %d, want >= 1", n)
	}
}

// TestFailoverNoSurvivors: the routed cluster is dead and there is no other
// enabled cluster -> a clear error, not a hang or a redirect into the void.
func TestFailoverNoSurvivors(t *testing.T) {
	gw, dedicated, _ := newGateway(t)
	gw.LoadTTL = 0
	if err := gw.SetClusterEnabled("shared", false); err != nil {
		t.Fatal(err)
	}
	if err := dedicated.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Resolve("alice", ""); err == nil {
		t.Error("expected error with the primary dead and no enabled survivor")
	}
}

// TestLeastLoadedNoReachableCluster: all clusters down -> a clear error, not
// a hang.
func TestLeastLoadedNoReachableCluster(t *testing.T) {
	gw, err := New()
	if err != nil {
		t.Fatal(err)
	}
	gw.LoadTTL = 0
	if err := gw.AddCluster("ghost", "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetRoute("default", LeastLoaded); err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Resolve("bob", ""); err == nil {
		t.Error("expected error with no reachable clusters")
	}
}

// saturate installs a zero-concurrency admission group on a coordinator, so
// it publishes admission_saturated = 1 on /v1/stats.
func saturate(t *testing.T, coord *cluster.Coordinator) {
	t.Helper()
	if err := coord.ConfigureResources(cluster.ResourceConfig{
		Groups: []resource.GroupConfig{{Name: "drained", MaxConcurrency: 0}},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverSaturatedCluster: a cluster whose admission queues are full
// (admission_saturated on /v1/stats) is skipped like an unhealthy one — the
// query lands on the next enabled cluster instead of bouncing off a 429.
func TestFailoverSaturatedCluster(t *testing.T) {
	gw, dedicated, _ := newGateway(t)
	gw.LoadTTL = 0 // always poll live saturation in the test
	if got := askVia(t, gw, "alice", ""); got != "dedicated" {
		t.Fatalf("alice initially on %s", got)
	}
	saturate(t, dedicated)
	if got := askVia(t, gw, "alice", ""); got != "shared" {
		t.Errorf("alice with dedicated saturated on %s, want shared", got)
	}
}

// TestAllSaturated429: with every reachable cluster saturated the gateway
// answers 429 + Retry-After itself — the client backs off instead of being
// redirected into a guaranteed rejection.
func TestAllSaturated429(t *testing.T) {
	gw, dedicated, shared := newGateway(t)
	gw.LoadTTL = 0
	saturate(t, dedicated)
	saturate(t, shared)

	req, err := http.NewRequest(http.MethodPost, "http://"+gw.Addr()+"/v1/statement", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Presto-User", "alice")
	resp, err := http.DefaultTransport.RoundTrip(req) // no redirect following
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}
