package gateway

import (
	"strings"
	"testing"
	"time"

	"prestolite/internal/cluster"
	"prestolite/internal/fault"
)

func TestBreakerTransitions(t *testing.T) {
	clock := fault.NewManualClock(time.Unix(1000, 0))
	b := NewBreaker(2, time.Second, clock)

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("fresh breaker must be closed and allowing")
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("one failure below threshold must not open")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold failures must open the circuit")
	}
	if b.Allow() {
		t.Fatal("open breaker must refuse before the cooldown")
	}

	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: one probe must be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("only one probe may be in flight during half-open")
	}

	// Failed probe: re-open for another full cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe must re-open the circuit")
	}
	clock.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed: probe again")
	}
	// Successful probe closes it, and the failure count starts over.
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe must close the circuit")
	}
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure count must reset on close")
	}
}

func TestIsIdempotentStatement(t *testing.T) {
	for _, q := range []string{
		"SELECT 1",
		"  select cluster FROM whoami",
		"EXPLAIN SELECT 1",
		"WITH t AS (SELECT 1) SELECT * FROM t",
	} {
		if !IsIdempotentStatement(q) {
			t.Errorf("%q should be idempotent", q)
		}
	}
	for _, q := range []string{"INSERT INTO t VALUES (1)", "DROP TABLE t", ""} {
		if IsIdempotentStatement(q) {
			t.Errorf("%q should not be idempotent", q)
		}
	}
}

// TestExecuteResubmitsAcrossDrain: the routed cluster enters its graceful
// drain mid-window — after the gateway's health poll cached it as healthy —
// so the statement lands on the draining coordinator, bounces with the
// retryable 503, and /v1/execute replays it onto the other cluster. The
// client sees rows, not an error; gateway_resubmissions and the drained
// cluster's breaker record the event.
func TestExecuteResubmitsAcrossDrain(t *testing.T) {
	gw, dedicated, _ := newGateway(t)
	// Freeze the load cache: the drain below must stay invisible to the
	// health poll, forcing the resubmission path (rather than the routing
	// failover) to absorb it.
	gw.LoadTTL = time.Hour
	cl := NewClient(gw.Addr())
	prime := cluster.StatementRequest{Query: "SELECT cluster FROM whoami", Catalog: "memory", Schema: "meta", User: "alice"}
	if _, err := cl.Execute(prime, "alice", ""); err != nil {
		t.Fatalf("priming execute: %v", err)
	}

	// Drain alice's dedicated cluster. DrainGrace is irrelevant here (no
	// in-flight queries); the latch flips before GracefulDrain returns.
	dedicated.DrainGrace = 10 * time.Millisecond
	if err := dedicated.GracefulDrain(); err != nil {
		t.Fatal(err)
	}

	res, err := cl.Execute(cluster.StatementRequest{
		Query:   "SELECT cluster FROM whoami",
		Catalog: "memory",
		Schema:  "meta",
		User:    "alice",
	}, "alice", "")
	if err != nil {
		t.Fatalf("execute during drain: %v", err)
	}
	rows, err := res.Rows()
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	if got := rows[0][0].(string); got != "shared" {
		t.Fatalf("served by %q, want the shared cluster", got)
	}
	snap := gw.Obs().Snapshot()
	if snap.Counters["gateway_resubmissions"] < 1 {
		t.Fatalf("gateway_resubmissions = %d, want >= 1", snap.Counters["gateway_resubmissions"])
	}
	if _, ok := snap.Gauges["breaker_state.dedicated"]; !ok {
		t.Fatal("breaker_state.dedicated gauge missing")
	}
}

// TestExecuteDoesNotResubmitNonIdempotent: a statement that could have side
// effects gets exactly one attempt — a draining target means an error, not
// a silent replay.
func TestExecuteDoesNotResubmitNonIdempotent(t *testing.T) {
	gw, dedicated, _ := newGateway(t)
	dedicated.DrainGrace = 10 * time.Millisecond
	if err := dedicated.GracefulDrain(); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(gw.Addr())
	_, err := cl.Execute(cluster.StatementRequest{
		Query:   "INSERT INTO whoami VALUES ('x')",
		Catalog: "memory",
		Schema:  "meta",
		User:    "alice",
	}, "alice", "")
	if err == nil {
		t.Fatal("non-idempotent statement against a draining cluster must fail")
	}
	if got := gw.Obs().Snapshot().Counters["gateway_resubmissions"]; got != 0 {
		t.Fatalf("gateway_resubmissions = %d, want 0", got)
	}
}

// TestExecuteRelaysStatementErrors: a planning error from the coordinator is
// the statement's own fault — relayed verbatim, never resubmitted, and it
// does not trip the breaker.
func TestExecuteRelaysStatementErrors(t *testing.T) {
	gw, dedicated, _ := newGateway(t)
	cl := NewClient(gw.Addr())
	_, err := cl.Execute(cluster.StatementRequest{
		Query:   "SELECT FROM FROM FROM",
		Catalog: "memory",
		Schema:  "meta",
		User:    "alice",
	}, "alice", "")
	if err == nil {
		t.Fatal("syntax error must surface")
	}
	if !strings.Contains(err.Error(), "status 400") {
		t.Fatalf("error = %v, want the coordinator's 400 relayed", err)
	}
	if got := gw.Obs().Snapshot().Counters["gateway_resubmissions"]; got != 0 {
		t.Fatalf("gateway_resubmissions = %d, want 0", got)
	}
	if gw.breakerFor(dedicated.Addr()).State() != BreakerClosed {
		t.Fatal("a statement error must not trip the cluster's breaker")
	}
}

// TestExecuteBreakerOpensOnDeadCluster: repeated transport failures against
// a killed coordinator open its circuit, and while it is open the gateway
// stops offering that cluster resubmission attempts.
func TestExecuteBreakerOpensOnDeadCluster(t *testing.T) {
	dedicated := startCluster(t, "dedicated")
	shared := startCluster(t, "shared")
	gw, err := New()
	if err != nil {
		t.Fatal(err)
	}
	// Breaker knobs must be set before AddCluster creates the breakers.
	gw.BreakerThreshold = 3
	gw.BreakerCooldown = time.Hour // stays open for the rest of the test
	gw.LoadTTL = time.Hour         // death below stays invisible to health polls
	for _, c := range [][2]string{{"dedicated", dedicated.Addr()}, {"shared", shared.Addr()}} {
		if err := gw.AddCluster(c[0], c[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.SetRoute("user:alice", "dedicated"); err != nil {
		t.Fatal(err)
	}
	if err := gw.SetRoute("default", "shared"); err != nil {
		t.Fatal(err)
	}
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })

	cl := NewClient(gw.Addr())
	req := cluster.StatementRequest{Query: "SELECT cluster FROM whoami", Catalog: "memory", Schema: "meta", User: "alice"}
	// Prime the health cache while the cluster is alive, then kill it.
	if _, err := cl.Execute(req, "alice", ""); err != nil {
		t.Fatalf("priming execute: %v", err)
	}
	deadAddr := dedicated.Addr()
	dedicated.Close() // simulated SIGKILL: connection refused from now on

	for i := 0; i < 3; i++ {
		if _, err := cl.Execute(req, "alice", ""); err != nil {
			t.Fatalf("execute %d: %v (the shared cluster should absorb it)", i, err)
		}
	}
	if st := gw.breakerFor(deadAddr).State(); st != BreakerOpen {
		t.Fatalf("dead cluster breaker = %v, want open", st)
	}
	// With the circuit open the routed target is skipped up front: the next
	// statement should not spend a resubmission on the corpse.
	before := gw.Obs().Snapshot().Counters["gateway_resubmissions"]
	if _, err := cl.Execute(req, "alice", ""); err != nil {
		t.Fatal(err)
	}
	after := gw.Obs().Snapshot().Counters["gateway_resubmissions"]
	if after != before {
		t.Fatalf("resubmissions grew %d -> %d: open breaker must preempt the doomed attempt", before, after)
	}
}
