package gateway

import (
	"testing"

	"prestolite/internal/cluster"
)

// askSticky routes one query through the gateway carrying a session key and
// returns the marker of the cluster that served it.
func askSticky(t *testing.T, gw *Gateway, user, session string) string {
	t.Helper()
	client := cluster.NewClient(gw.Addr())
	res, err := client.QueryWithSession(cluster.StatementRequest{
		Query:   "SELECT cluster FROM whoami",
		Catalog: "memory",
		Schema:  "meta",
		User:    user,
	}, user, "", session)
	if err != nil {
		t.Fatalf("query via gateway as %s session %q: %v", user, session, err)
	}
	rows, err := res.Rows()
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	return rows[0][0].(string)
}

// newStickyGateway wires three clusters behind a default route targeting the
// Sticky sentinel.
func newStickyGateway(t *testing.T) (*Gateway, map[string]*cluster.Coordinator) {
	t.Helper()
	coords := map[string]*cluster.Coordinator{}
	gw, err := New()
	if err != nil {
		t.Fatal(err)
	}
	gw.LoadTTL = 0 // always poll live health in tests
	for _, name := range []string{"east", "west", "north"} {
		coords[name] = startCluster(t, name)
		if err := gw.AddCluster(name, coords[name].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.SetRoute("default", Sticky); err != nil {
		t.Fatal(err)
	}
	if err := gw.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { gw.Close() })
	return gw, coords
}

// TestStickySessionsStayPut: the same session key always lands on the same
// cluster, repeats count as sticky routes (not fallbacks), and distinct keys
// spread over more than one cluster — stickiness without a single hot spot.
func TestStickySessionsStayPut(t *testing.T) {
	gw, _ := newStickyGateway(t)
	sessions := []string{"dash-city-ops", "dash-eats", "dash-freight", "dash-safety", "dash-finance"}
	landed := map[string]string{}
	spread := map[string]bool{}
	for round := 0; round < 3; round++ {
		for _, sess := range sessions {
			got := askSticky(t, gw, "alice", sess)
			if prev, ok := landed[sess]; ok && prev != got {
				t.Errorf("session %s moved from %s to %s with all clusters healthy", sess, prev, got)
			}
			landed[sess] = got
			spread[got] = true
		}
	}
	if len(spread) < 2 {
		t.Errorf("5 sessions all hashed onto one cluster %v — no spread", landed)
	}
	snap := gw.Obs().Snapshot()
	if n := snap.Counters["gateway_sticky_routes"]; n != int64(3*len(sessions)) {
		t.Errorf("gateway_sticky_routes = %d, want %d", n, 3*len(sessions))
	}
	if n := snap.Counters["gateway_sticky_fallbacks"]; n != 0 {
		t.Errorf("gateway_sticky_fallbacks = %d with all clusters healthy", n)
	}
}

// TestStickyFallsBackWhenPreferredDies: killing a session's preferred
// coordinator degrades it to the next cluster in its own hash order — the
// same one every time — and the degradation is visible as sticky fallbacks.
// Sessions whose preferred cluster survived do not move.
func TestStickyFallsBackWhenPreferredDies(t *testing.T) {
	gw, coords := newStickyGateway(t)
	sessions := []string{"dash-city-ops", "dash-eats", "dash-freight", "dash-safety", "dash-finance"}
	landed := map[string]string{}
	for _, sess := range sessions {
		landed[sess] = askSticky(t, gw, "alice", sess)
	}

	// Kill whichever cluster dash-city-ops hashed to.
	victim := landed[sessions[0]]
	if err := coords[victim].Close(); err != nil {
		t.Fatal(err)
	}

	// Each displaced session falls to the next cluster in its own hash order
	// — a per-session constant, though different sessions may pick different
	// survivors.
	fallback := map[string]string{}
	for round := 0; round < 2; round++ {
		for _, sess := range sessions {
			got := askSticky(t, gw, "alice", sess)
			if landed[sess] != victim {
				if got != landed[sess] {
					t.Errorf("session %s moved %s -> %s though its cluster survived", sess, landed[sess], got)
				}
				continue
			}
			if got == victim {
				t.Fatalf("session %s still routed to dead cluster %s", sess, victim)
			}
			if prev, ok := fallback[sess]; ok && prev != got {
				t.Errorf("session %s fallback flapped between %s and %s", sess, prev, got)
			}
			fallback[sess] = got
		}
	}
	if n := gw.Obs().Snapshot().Counters["gateway_sticky_fallbacks"]; n < 1 {
		t.Errorf("gateway_sticky_fallbacks = %d, want >= 1", n)
	}
}

// TestStickySkipsSaturatedAndDrained: a saturated preferred cluster is
// skipped like a dead one, and a cluster pulled from rotation (enabled=0)
// never appears in any session's preference list.
func TestStickySkipsSaturatedAndDrained(t *testing.T) {
	gw, coords := newStickyGateway(t)
	sess := "dash-city-ops"
	first := askSticky(t, gw, "alice", sess)

	saturate(t, coords[first])
	second := askSticky(t, gw, "alice", sess)
	if second == first {
		t.Fatalf("session still routed to saturated cluster %s", first)
	}
	if n := gw.Obs().Snapshot().Counters["gateway_sticky_fallbacks"]; n != 1 {
		t.Errorf("gateway_sticky_fallbacks = %d, want 1", n)
	}

	// Drain the fallback too: the session lands on the last cluster standing.
	if err := gw.SetClusterEnabled(second, false); err != nil {
		t.Fatal(err)
	}
	third := askSticky(t, gw, "alice", sess)
	if third == first || third == second {
		t.Errorf("session routed to %s, want the one remaining cluster", third)
	}
}

// TestStickyKeysOnUserWithoutSession: with no session header the key falls
// back to the user, so per-user stickiness still holds and two users can
// land on different clusters.
func TestStickyKeysOnUserWithoutSession(t *testing.T) {
	gw, _ := newStickyGateway(t)
	users := []string{"alice", "bob", "carol", "dave", "erin"}
	landed := map[string]string{}
	spread := map[string]bool{}
	for round := 0; round < 2; round++ {
		for _, user := range users {
			got := askVia(t, gw, user, "")
			if prev, ok := landed[user]; ok && prev != got {
				t.Errorf("user %s moved from %s to %s between queries", user, prev, got)
			}
			landed[user] = got
			spread[got] = true
		}
	}
	if len(spread) < 2 {
		t.Errorf("5 users all hashed onto one cluster %v — no spread", landed)
	}
}

// TestStickyExecutePath: the proxying /v1/execute endpoint honors the sticky
// session key too, so gateway.Client callers get cache affinity without
// following redirects.
func TestStickyExecutePath(t *testing.T) {
	gw, _ := newStickyGateway(t)
	cl := NewClient(gw.Addr())
	req := cluster.StatementRequest{
		Query:   "SELECT cluster FROM whoami",
		Catalog: "memory",
		Schema:  "meta",
		User:    "alice",
	}
	serve := func(session string) string {
		t.Helper()
		res, err := cl.ExecuteSession(req, "alice", "", session)
		if err != nil {
			t.Fatalf("execute with session %q: %v", session, err)
		}
		rows, err := res.Rows()
		if err != nil || len(rows) != 1 {
			t.Fatalf("rows = %v, %v", rows, err)
		}
		return rows[0][0].(string)
	}
	first := serve("dash-city-ops")
	for i := 0; i < 3; i++ {
		if got := serve("dash-city-ops"); got != first {
			t.Errorf("execute-path session moved from %s to %s", first, got)
		}
	}
}
