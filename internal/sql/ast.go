package sql

import (
	"fmt"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface {
	statementNode()
	String() string
}

// Explain wraps a statement whose plan should be shown instead of executed.
// With Analyze set (EXPLAIN ANALYZE), the statement IS executed and the plan
// is annotated with actual per-operator statistics.
type Explain struct {
	Stmt    Statement
	Analyze bool
}

func (*Explain) statementNode() {}
func (e *Explain) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Stmt.String()
	}
	return "EXPLAIN " + e.Stmt.String()
}

// ShowTables lists tables in a catalog.schema.
type ShowTables struct {
	Catalog string
	Schema  string
}

func (*ShowTables) statementNode() {}
func (s *ShowTables) String() string {
	return fmt.Sprintf("SHOW TABLES FROM %s.%s", s.Catalog, s.Schema)
}

// Query is a SELECT statement.
type Query struct {
	Items   []SelectItem
	From    TableRef // nil for SELECT <exprs>
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   *int64
}

func (*Query) statementNode() {}

func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range q.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	if q.From != nil {
		sb.WriteString(" FROM ")
		sb.WriteString(q.From.String())
	}
	if q.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if q.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(q.Having.String())
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if q.Limit != nil {
		fmt.Fprintf(&sb, " LIMIT %d", *q.Limit)
	}
	return sb.String()
}

// SelectItem is one projection: an expression with optional alias, or *.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TableRef is a FROM-clause relation.
type TableRef interface {
	tableRefNode()
	String() string
}

// TableName references catalog.schema.table (1-3 parts) with optional alias.
type TableName struct {
	Parts []string
	Alias string
}

func (*TableName) tableRefNode() {}
func (t *TableName) String() string {
	s := strings.Join(t.Parts, ".")
	if t.Alias != "" {
		s += " AS " + t.Alias
	}
	return s
}

// JoinType enumerates supported join types.
type JoinType int

const (
	InnerJoin JoinType = iota
	LeftJoin
	CrossJoin
)

func (j JoinType) String() string {
	switch j {
	case LeftJoin:
		return "LEFT JOIN"
	case CrossJoin:
		return "CROSS JOIN"
	default:
		return "INNER JOIN"
	}
}

// Join combines two relations.
type Join struct {
	Type  JoinType
	Left  TableRef
	Right TableRef
	On    Expr // nil for CROSS
}

func (*Join) tableRefNode() {}
func (j *Join) String() string {
	s := j.Left.String() + " " + j.Type.String() + " " + j.Right.String()
	if j.On != nil {
		s += " ON " + j.On.String()
	}
	return s
}

// Subquery is a derived table: (SELECT ...) alias.
type Subquery struct {
	Query *Query
	Alias string
}

func (*Subquery) tableRefNode() {}
func (s *Subquery) String() string {
	return "(" + s.Query.String() + ") AS " + s.Alias
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an AST expression node.
type Expr interface {
	exprNode()
	String() string
}

// Ident is a possibly-qualified name: a, t.a, t.a.b (struct field access is
// resolved during analysis, not parsing).
type Ident struct {
	Parts []string
}

func (*Ident) exprNode()        {}
func (i *Ident) String() string { return strings.Join(i.Parts, ".") }

// Literal is a constant. Value is int64, float64, string, bool, or nil.
// IsDate marks DATE 'yyyy-mm-dd' literals.
type Literal struct {
	Value  any
	IsDate bool
}

func (*Literal) exprNode() {}
func (l *Literal) String() string {
	switch v := l.Value.(type) {
	case nil:
		return "NULL"
	case string:
		if l.IsDate {
			return "DATE '" + v + "'"
		}
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Binary is a binary operation: + - * / % = <> < <= > >= AND OR LIKE ||.
type Binary struct {
	Op    string // upper-case
	Left  Expr
	Right Expr
}

func (*Binary) exprNode() {}
func (b *Binary) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// Unary is NOT x or -x.
type Unary struct {
	Op   string
	Expr Expr
}

func (*Unary) exprNode()        {}
func (u *Unary) String() string { return "(" + u.Op + " " + u.Expr.String() + ")" }

// FuncCall is fn(args), count(*), or agg(DISTINCT x).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncCall) exprNode() {}
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	Expr Expr
	Lo   Expr
	Hi   Expr
	Not  bool
}

func (*Between) exprNode() {}
func (b *Between) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.Expr.String() + " " + not + "BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// InList is x [NOT] IN (v1, v2, ...).
type InList struct {
	Expr Expr
	List []Expr
	Not  bool
}

func (*InList) exprNode() {}
func (i *InList) String() string {
	items := make([]string, len(i.List))
	for j, e := range i.List {
		items[j] = e.String()
	}
	not := ""
	if i.Not {
		not = "NOT "
	}
	return "(" + i.Expr.String() + " " + not + "IN (" + strings.Join(items, ", ") + "))"
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	Expr Expr
	Not  bool
}

func (*IsNull) exprNode() {}
func (i *IsNull) String() string {
	if i.Not {
		return "(" + i.Expr.String() + " IS NOT NULL)"
	}
	return "(" + i.Expr.String() + " IS NULL)"
}

// Case is CASE WHEN c THEN v ... [ELSE e] END (searched form).
type Case struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN cond THEN value arm.
type WhenClause struct {
	Cond Expr
	Then Expr
}

func (*Case) exprNode() {}
func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Then.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// Cast is CAST(x AS type).
type Cast struct {
	Expr     Expr
	TypeName string
}

func (*Cast) exprNode() {}
func (c *Cast) String() string {
	return "CAST(" + c.Expr.String() + " AS " + c.TypeName + ")"
}
