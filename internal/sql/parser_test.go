package sql

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Statement {
	t.Helper()
	stmt, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return stmt
}

func TestParseSimpleSelect(t *testing.T) {
	q := mustParse(t, "SELECT a, b FROM t WHERE a = 1").(*Query)
	if len(q.Items) != 2 || q.Where == nil {
		t.Fatalf("bad query: %+v", q)
	}
	tn := q.From.(*TableName)
	if len(tn.Parts) != 1 || tn.Parts[0] != "t" {
		t.Errorf("table = %v", tn.Parts)
	}
	bin := q.Where.(*Binary)
	if bin.Op != "=" {
		t.Errorf("where op = %s", bin.Op)
	}
}

func TestParseQualifiedTable(t *testing.T) {
	q := mustParse(t, "SELECT * FROM hive.rawdata.trips").(*Query)
	tn := q.From.(*TableName)
	if strings.Join(tn.Parts, ".") != "hive.rawdata.trips" {
		t.Errorf("parts = %v", tn.Parts)
	}
	if !q.Items[0].Star {
		t.Error("expected star")
	}
	if _, err := Parse("SELECT * FROM a.b.c.d"); err == nil {
		t.Error("4-part table should fail")
	}
}

func TestParsePaperQueryNested(t *testing.T) {
	// The §V.C example query.
	q := mustParse(t, `SELECT base.driver_uuid FROM rawdata.schemaless_mezzanine_trips_rows
		WHERE datestr = '2017-03-02' AND base.city_id in (12)`).(*Query)
	id := q.Items[0].Expr.(*Ident)
	if strings.Join(id.Parts, ".") != "base.driver_uuid" {
		t.Errorf("ident = %v", id.Parts)
	}
	and := q.Where.(*Binary)
	if and.Op != "AND" {
		t.Fatalf("where = %v", q.Where)
	}
	in := and.Right.(*InList)
	if len(in.List) != 1 {
		t.Errorf("in list = %v", in.List)
	}
}

func TestParsePaperGeoQuery(t *testing.T) {
	// The §VI.C example query.
	q := mustParse(t, `SELECT c.city_id, count(*)
		FROM trips_table as t
		JOIN city_table as c
		ON st_contains(c.geo_shape, st_point(t.dest_lng, t.dest_lat))
		WHERE datestr = '2017-08-01'
		GROUP BY 1`).(*Query)
	j := q.From.(*Join)
	if j.Type != InnerJoin {
		t.Errorf("join type = %v", j.Type)
	}
	if j.Left.(*TableName).Alias != "t" || j.Right.(*TableName).Alias != "c" {
		t.Error("aliases wrong")
	}
	on := j.On.(*FuncCall)
	if on.Name != "st_contains" || len(on.Args) != 2 {
		t.Errorf("on = %v", j.On)
	}
	if len(q.GroupBy) != 1 {
		t.Errorf("group by = %v", q.GroupBy)
	}
	fc := q.Items[1].Expr.(*FuncCall)
	if fc.Name != "count" || !fc.Star {
		t.Errorf("count(*) = %v", fc)
	}
}

func TestParseJoinVariants(t *testing.T) {
	q := mustParse(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x CROSS JOIN c").(*Query)
	outer := q.From.(*Join)
	if outer.Type != CrossJoin {
		t.Errorf("outer = %v", outer.Type)
	}
	inner := outer.Left.(*Join)
	if inner.Type != LeftJoin || inner.On == nil {
		t.Errorf("inner = %v", inner.Type)
	}
	// comma join
	q2 := mustParse(t, "SELECT * FROM a, b WHERE a.x = b.x").(*Query)
	if q2.From.(*Join).Type != CrossJoin {
		t.Error("comma join should be cross")
	}
}

func TestParseSubquery(t *testing.T) {
	q := mustParse(t, "SELECT x FROM (SELECT a AS x FROM t WHERE a > 1) AS sub WHERE x < 10").(*Query)
	sub := q.From.(*Subquery)
	if sub.Alias != "sub" || sub.Query.Where == nil {
		t.Errorf("subquery = %+v", sub)
	}
	if _, err := Parse("SELECT x FROM (SELECT a FROM t)"); err == nil {
		t.Error("subquery without alias should fail")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	q := mustParse(t, "SELECT 1 + 2 * 3").(*Query)
	bin := q.Items[0].Expr.(*Binary)
	if bin.Op != "+" {
		t.Fatalf("top = %s", bin.Op)
	}
	if bin.Right.(*Binary).Op != "*" {
		t.Error("* should bind tighter than +")
	}

	q2 := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*Query)
	or := q2.Where.(*Binary)
	if or.Op != "OR" {
		t.Fatalf("top = %s", or.Op)
	}
	if or.Right.(*Binary).Op != "AND" {
		t.Error("AND should bind tighter than OR")
	}

	q3 := mustParse(t, "SELECT * FROM t WHERE NOT a = 1 AND b = 2").(*Query)
	and := q3.Where.(*Binary)
	if and.Op != "AND" {
		t.Fatalf("top = %v", q3.Where)
	}
	if _, ok := and.Left.(*Unary); !ok {
		t.Error("NOT should bind tighter than AND")
	}
}

func TestParseLiterals(t *testing.T) {
	q := mustParse(t, "SELECT 42, 3.14, 'it''s', TRUE, FALSE, NULL, DATE '2017-08-01'").(*Query)
	want := []any{int64(42), 3.14, "it's", true, false, nil, "2017-08-01"}
	for i, w := range want {
		lit := q.Items[i].Expr.(*Literal)
		if lit.Value != w {
			t.Errorf("item %d = %v, want %v", i, lit.Value, w)
		}
	}
	if !q.Items[6].Expr.(*Literal).IsDate {
		t.Error("DATE literal flag not set")
	}
}

func TestParsePredicateForms(t *testing.T) {
	q := mustParse(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10
		AND b NOT IN (1, 2) AND c IS NOT NULL AND d LIKE 'x%' AND e NOT LIKE 'y%'
		AND f NOT BETWEEN 0 AND 1 AND g IS NULL`).(*Query)
	s := q.Where.String()
	for _, want := range []string{"BETWEEN", "NOT IN", "IS NOT NULL", "LIKE", "IS NULL", "NOT BETWEEN"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %s", want, s)
		}
	}
}

func TestParseCaseCastConcat(t *testing.T) {
	q := mustParse(t, `SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END,
		CAST(a AS varchar), CAST(b AS array(bigint)), 'a' || 'b' FROM t`).(*Query)
	c := q.Items[0].Expr.(*Case)
	if len(c.Whens) != 1 || c.Else == nil {
		t.Errorf("case = %v", c)
	}
	if q.Items[1].Expr.(*Cast).TypeName != "varchar" {
		t.Errorf("cast = %v", q.Items[1].Expr)
	}
	if q.Items[2].Expr.(*Cast).TypeName != "array(bigint)" {
		t.Errorf("nested cast = %q", q.Items[2].Expr.(*Cast).TypeName)
	}
	if q.Items[3].Expr.(*Binary).Op != "||" {
		t.Error("concat op missing")
	}
}

func TestParseAggregatesAndClauses(t *testing.T) {
	q := mustParse(t, `SELECT city, count(*) AS c, sum(fare), avg(distinct x)
		FROM trips GROUP BY city HAVING count(*) > 10 ORDER BY c DESC, city LIMIT 5`).(*Query)
	if q.Items[1].Alias != "c" {
		t.Error("alias wrong")
	}
	if !q.Items[3].Expr.(*FuncCall).Distinct {
		t.Error("distinct flag missing")
	}
	if q.Having == nil || len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Error("clauses wrong")
	}
	if *q.Limit != 5 {
		t.Errorf("limit = %d", *q.Limit)
	}
}

func TestParseExplainAndShow(t *testing.T) {
	e := mustParse(t, "EXPLAIN SELECT 1").(*Explain)
	if _, ok := e.Stmt.(*Query); !ok {
		t.Error("explain should wrap query")
	}
	if e.Analyze {
		t.Error("plain EXPLAIN should not set Analyze")
	}
	ea := mustParse(t, "EXPLAIN ANALYZE SELECT 1").(*Explain)
	if _, ok := ea.Stmt.(*Query); !ok || !ea.Analyze {
		t.Errorf("EXPLAIN ANALYZE parsed as %+v", ea)
	}
	if got := ea.String(); got != "EXPLAIN ANALYZE SELECT 1" {
		t.Errorf("String() = %q", got)
	}
	s := mustParse(t, "SHOW TABLES FROM hive.rawdata").(*ShowTables)
	if s.Catalog != "hive" || s.Schema != "rawdata" {
		t.Errorf("show = %+v", s)
	}
}

func TestParseSelectWithoutFrom(t *testing.T) {
	q := mustParse(t, "SELECT 1 + 2 AS three").(*Query)
	if q.From != nil || q.Items[0].Alias != "three" {
		t.Error("from-less select wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t LIMIT abc",
		"SELECT * FROM t JOIN u",
		"FROBNICATE",
		"SELECT 'unterminated",
		"SELECT a FROM t WHERE a @ 1",
		"SELECT CAST(a AS) FROM t",
		"SELECT CASE END",
		"SELECT * FROM t extra garbage beyond alias",
		"SELECT count(* FROM t",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", s)
		}
	}
}

func TestParseSemicolonAndComments(t *testing.T) {
	q := mustParse(t, "SELECT a FROM t; ").(*Query)
	if len(q.Items) != 1 {
		t.Error("semicolon handling wrong")
	}
	q2 := mustParse(t, "SELECT a -- trailing comment\nFROM t").(*Query)
	if q2.From == nil {
		t.Error("comment handling wrong")
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	q := mustParse(t, `SELECT "Select" FROM "Weird Table"`).(*Query)
	if q.Items[0].Expr.(*Ident).Parts[0] != "select" {
		t.Error("quoted ident wrong")
	}
	if q.From.(*TableName).Parts[0] != "weird table" {
		t.Error("quoted table wrong")
	}
}

// Property: String() output of a parsed query re-parses to the same string
// (idempotent rendering — a standard parser round-trip invariant).
func TestQuickParseStringFixpoint(t *testing.T) {
	queries := []string{
		"SELECT a, b FROM t WHERE a = 1 AND b < 2 ORDER BY a LIMIT 3",
		"SELECT count(*) FROM hive.s.t GROUP BY x HAVING count(*) > 1",
		"SELECT base.driver_uuid FROM trips WHERE base.city_id IN (12, 13)",
		"SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y",
		"SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT CAST(a AS double) FROM t WHERE s LIKE 'abc%' OR s IS NULL",
		"SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x BETWEEN 1 AND 2",
		"SELECT -a + 2 * 3 FROM t WHERE NOT (a = 1)",
	}
	f := func(idx uint8) bool {
		src := queries[int(idx)%len(queries)]
		q1, err := Parse(src)
		if err != nil {
			t.Logf("parse %q: %v", src, err)
			return false
		}
		s1 := q1.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Logf("re-parse %q: %v", s1, err)
			return false
		}
		return q2.String() == s1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
