// Package sql implements the SQL front end: a hand-written lexer and
// recursive-descent parser producing the AST the analyzer turns into a
// logical plan (§III Fig 1: SQL → Abstract Syntax Tree → logical plan).
package sql

import (
	"fmt"
	"strings"
)

// TokenKind classifies lexer tokens.
type TokenKind int

const (
	TokenEOF TokenKind = iota
	TokenIdent
	TokenKeyword
	TokenNumber
	TokenString
	TokenOp // operators and punctuation
)

// Token is one lexical token with its source position (1-based offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased, identifiers lower-cased
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "ON": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "AND": true, "OR": true, "NOT": true,
	"IN": true, "IS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"BETWEEN": true, "LIKE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CAST": true, "DISTINCT": true, "ASC": true,
	"DESC": true, "EXPLAIN": true, "ANALYZE": true, "DATE": true, "UNION": true, "ALL": true,
	"WITH": true, "SHOW": true, "TABLES": true, "SCHEMAS": true, "CATALOGS": true,
	"DESCRIBE": true, "INSERT": true, "INTO": true, "VALUES": true,
}

// Lex tokenizes input, returning an error for unterminated strings or
// illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			// line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				break
			}
			toks = append(toks, Token{Kind: TokenNumber, Text: input[start:i], Pos: start + 1})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at %d", start+1)
			}
			toks = append(toks, Token{Kind: TokenString, Text: sb.String(), Pos: start + 1})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokenKeyword, Text: upper, Pos: start + 1})
			} else {
				toks = append(toks, Token{Kind: TokenIdent, Text: strings.ToLower(word), Pos: start + 1})
			}
		case c == '"':
			// quoted identifier
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '"' {
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated quoted identifier at %d", start+1)
			}
			toks = append(toks, Token{Kind: TokenIdent, Text: strings.ToLower(sb.String()), Pos: start + 1})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=", "||":
				toks = append(toks, Token{Kind: TokenOp, Text: two, Pos: start + 1})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', '.', '+', '-', '*', '/', '%', '<', '>', '=', ';':
				toks = append(toks, Token{Kind: TokenOp, Text: string(c), Pos: start + 1})
				i++
			default:
				return nil, fmt.Errorf("sql: illegal character %q at %d", string(c), start+1)
			}
		}
	}
	toks = append(toks, Token{Kind: TokenEOF, Pos: n + 1})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}
