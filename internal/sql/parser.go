package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// allow one trailing semicolon
	if p.peek().Kind == TokenOp && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != TokenEOF {
		return nil, p.errorf("unexpected %q after statement", p.peek().Text)
	}
	return stmt, nil
}

// ParseQuery parses a statement and requires it to be a SELECT query.
func ParseQuery(input string) (*Query, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	q, ok := stmt.(*Query)
	if !ok {
		return nil, fmt.Errorf("sql: not a query: %T", stmt)
	}
	return q, nil
}

type parser struct {
	toks  []Token
	pos   int
	input string
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.peek().Pos, truncate(p.input, 80))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func (p *parser) accept(kw string) bool {
	t := p.peek()
	if (t.Kind == TokenKeyword && t.Text == kw) || (t.Kind == TokenOp && t.Text == kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kw string) error {
	if !p.accept(kw) {
		return p.errorf("expected %q, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokenIdent {
		return "", p.errorf("expected identifier, found %q", t.Text)
	}
	p.next()
	return t.Text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	if p.accept("EXPLAIN") {
		analyze := p.accept("ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: inner, Analyze: analyze}, nil
	}
	if p.accept("SHOW") {
		if err := p.expect("TABLES"); err != nil {
			return nil, err
		}
		if err := p.expect("FROM"); err != nil {
			return nil, err
		}
		catalog, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		schema, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ShowTables{Catalog: catalog, Schema: schema}, nil
	}
	if p.peek().Kind == TokenKeyword && p.peek().Text == "SELECT" {
		return p.parseQuery()
	}
	return nil, p.errorf("expected SELECT, EXPLAIN or SHOW, found %q", p.peek().Text)
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if p.accept("FROM") {
		from, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = from
	}
	if p.accept("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, g)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("LIMIT") {
		t := p.peek()
		if t.Kind != TokenNumber {
			return nil, p.errorf("expected number after LIMIT")
		}
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.Text)
		}
		q.Limit = &n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peek().Kind == TokenOp && p.peek().Text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokenIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var jt JoinType
		switch {
		case p.accept("CROSS"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			jt = CrossJoin
		case p.accept("INNER"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			jt = InnerJoin
		case p.accept("LEFT"):
			p.accept("OUTER")
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			jt = LeftJoin
		case p.accept("JOIN"):
			jt = InnerJoin
		case p.accept(","):
			jt = CrossJoin
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &Join{Type: jt, Left: left, Right: right}
			continue
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &Join{Type: jt, Left: left, Right: right}
		if jt != CrossJoin {
			if err := p.expect("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *parser) parseTablePrimary() (TableRef, error) {
	if p.accept("(") {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		alias := ""
		if p.accept("AS") {
			alias, err = p.expectIdent()
			if err != nil {
				return nil, err
			}
		} else if p.peek().Kind == TokenIdent {
			alias = p.next().Text
		}
		if alias == "" {
			return nil, p.errorf("subquery in FROM requires an alias")
		}
		return &Subquery{Query: q, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	parts := []string{name}
	for p.peek().Kind == TokenOp && p.peek().Text == "." {
		p.next()
		part, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		parts = append(parts, part)
	}
	if len(parts) > 3 {
		return nil, p.errorf("table name %s has more than 3 parts", strings.Join(parts, "."))
	}
	t := &TableName{Parts: parts}
	if p.accept("AS") {
		t.Alias, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else if p.peek().Kind == TokenIdent {
		t.Alias = p.next().Text
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Expression parsing (precedence climbing).

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokenOp {
			switch t.Text {
			case "=", "<>", "!=", "<", "<=", ">", ">=":
				p.next()
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				op := t.Text
				if op == "!=" {
					op = "<>"
				}
				left = &Binary{Op: op, Left: left, Right: right}
				continue
			}
		}
		if t.Kind == TokenKeyword {
			switch t.Text {
			case "LIKE":
				p.next()
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &Binary{Op: "LIKE", Left: left, Right: right}
				continue
			case "IS":
				p.next()
				not := p.accept("NOT")
				if err := p.expect("NULL"); err != nil {
					return nil, err
				}
				left = &IsNull{Expr: left, Not: not}
				continue
			case "BETWEEN":
				p.next()
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expect("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &Between{Expr: left, Lo: lo, Hi: hi}
				continue
			case "IN":
				p.next()
				if err := p.expect("("); err != nil {
					return nil, err
				}
				var list []Expr
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					list = append(list, e)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				left = &InList{Expr: left, List: list}
				continue
			case "NOT":
				// x NOT LIKE / NOT BETWEEN / NOT IN
				p.next()
				switch {
				case p.accept("LIKE"):
					right, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					left = &Unary{Op: "NOT", Expr: &Binary{Op: "LIKE", Left: left, Right: right}}
				case p.accept("BETWEEN"):
					lo, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					if err := p.expect("AND"); err != nil {
						return nil, err
					}
					hi, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					left = &Between{Expr: left, Lo: lo, Hi: hi, Not: true}
				case p.accept("IN"):
					if err := p.expect("("); err != nil {
						return nil, err
					}
					var list []Expr
					for {
						e, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						list = append(list, e)
						if !p.accept(",") {
							break
						}
					}
					if err := p.expect(")"); err != nil {
						return nil, err
					}
					left = &InList{Expr: left, List: list, Not: true}
				default:
					return nil, p.errorf("expected LIKE, BETWEEN or IN after NOT")
				}
				continue
			}
		}
		return left, nil
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokenOp && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokenOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &Binary{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokenOp && t.Text == "-" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", Expr: e}, nil
	}
	if t.Kind == TokenOp && t.Text == "+" {
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokenNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &Literal{Value: n}, nil
	case TokenString:
		p.next()
		return &Literal{Value: t.Text}, nil
	case TokenKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: nil}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: true}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: false}, nil
		case "DATE":
			p.next()
			s := p.peek()
			if s.Kind != TokenString {
				return nil, p.errorf("expected string after DATE")
			}
			p.next()
			return &Literal{Value: s.Text, IsDate: true}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.next()
			if err := p.expect("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AS"); err != nil {
				return nil, err
			}
			// type name: ident possibly with (...) — capture raw tokens
			typeName, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Cast{Expr: e, TypeName: typeName}, nil
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	case TokenIdent:
		p.next()
		// function call?
		if p.peek().Kind == TokenOp && p.peek().Text == "(" {
			p.next()
			fc := &FuncCall{Name: t.Text}
			if p.peek().Kind == TokenOp && p.peek().Text == "*" {
				p.next()
				fc.Star = true
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.peek().Kind == TokenOp && p.peek().Text == ")" {
				p.next()
				return fc, nil
			}
			if p.accept("DISTINCT") {
				fc.Distinct = true
			}
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, arg)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		parts := []string{t.Text}
		for p.peek().Kind == TokenOp && p.peek().Text == "." {
			p.next()
			part, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			parts = append(parts, part)
		}
		return &Ident{Parts: parts}, nil
	case TokenOp:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

func (p *parser) parseTypeName() (string, error) {
	t := p.peek()
	var name string
	if t.Kind == TokenIdent {
		name = t.Text
	} else if t.Kind == TokenKeyword && t.Text == "DATE" {
		name = "date"
	} else {
		return "", p.errorf("expected type name, found %q", t.Text)
	}
	p.next()
	// Nested types like array(bigint): consume balanced parens verbatim.
	if p.peek().Kind == TokenOp && p.peek().Text == "(" {
		depth := 0
		var sb strings.Builder
		sb.WriteString(name)
		for {
			tok := p.peek()
			if tok.Kind == TokenEOF {
				return "", p.errorf("unterminated type in CAST")
			}
			if tok.Kind == TokenOp && tok.Text == "(" {
				depth++
			}
			if tok.Kind == TokenOp && tok.Text == ")" {
				if depth == 0 {
					break
				}
				depth--
			}
			p.next()
			if tok.Kind == TokenOp && tok.Text == "," {
				sb.WriteString(", ")
			} else if tok.Kind == TokenKeyword {
				sb.WriteString(strings.ToLower(tok.Text))
			} else {
				sb.WriteString(tok.Text)
			}
			if depth == 0 {
				break
			}
		}
		return sb.String(), nil
	}
	return name, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expect("CASE"); err != nil {
		return nil, err
	}
	c := &Case{}
	for p.accept("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.accept("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expect("END"); err != nil {
		return nil, err
	}
	return c, nil
}
