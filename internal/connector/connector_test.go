package connector

import (
	"errors"
	"io"
	"reflect"
	"testing"

	"prestolite/internal/block"
	"prestolite/internal/types"
)

type stubConnector struct{ name string }

func (s *stubConnector) Name() string                         { return s.name }
func (s *stubConnector) Metadata() Metadata                   { return nil }
func (s *stubConnector) SplitManager() SplitManager           { return nil }
func (s *stubConnector) RecordSetProvider() RecordSetProvider { return nil }

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register("hive", &stubConnector{name: "hive"})
	r.Register("druid", &stubConnector{name: "druid"})
	c, err := r.Get("hive")
	if err != nil || c.Name() != "hive" {
		t.Fatalf("get = %v, %v", c, err)
	}
	if _, err := r.Get("missing"); err == nil {
		t.Error("missing catalog accepted")
	}
	if got := r.Catalogs(); !reflect.DeepEqual(got, []string{"druid", "hive"}) {
		t.Errorf("catalogs = %v", got)
	}
}

func TestTableSchemaColumnIndex(t *testing.T) {
	ts := &TableSchema{Columns: []Column{{Name: "a", Type: types.Bigint}, {Name: "b", Type: types.Varchar}}}
	if ts.ColumnIndex("b") != 1 || ts.ColumnIndex("zzz") != -1 {
		t.Error("ColumnIndex wrong")
	}
}

func TestSlicePageSource(t *testing.T) {
	p := block.NewPage(block.NewInt64Block([]int64{1, 2}))
	src := &SlicePageSource{Pages: []*block.Page{p}}
	got, err := src.Next()
	if err != nil || got.Count() != 2 {
		t.Fatalf("next = %v, %v", got, err)
	}
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
	if err := src.Close(); err != nil {
		t.Error(err)
	}
}
