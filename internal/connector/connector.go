// Package connector defines the SPI that gives the engine unified SQL over
// heterogeneous storage systems without data copy (§IV). A connector
// provides:
//
//   - Metadata          — schemas, tables, columns (ConnectorMetadata)
//   - SplitManager      — how a table divides into parallel work units
//     (ConnectorSplitManager / ConnectorSplit)
//   - RecordSetProvider — how data streams from the underlying system become
//     engine pages (ConnectorRecordSetProvider)
//
// Connectors may additionally implement the pushdown capabilities
// (FilterPushdown, ProjectionPushdown, LimitPushdown, AggregationPushdown);
// the optimizer probes for these and rewrites scans so the underlying system
// does the work and only result rows stream into the engine (§IV.A, §IV.B).
package connector

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"prestolite/internal/block"
	"prestolite/internal/expr"
	"prestolite/internal/types"
)

// Column describes one table column.
type Column struct {
	Name string
	Type *types.Type
}

// TableSchema is the resolved schema of a table.
type TableSchema struct {
	Catalog string
	Schema  string
	Table   string
	Columns []Column
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *TableSchema) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// TableHandle is a connector-private handle for a table plus any pushed-down
// state (predicate, projection, limit, aggregation). Handles must be
// serializable with encoding/gob (register concrete types in init).
type TableHandle interface {
	// Description renders the handle for EXPLAIN output, including pushed
	// state.
	Description() string
}

// Split is one unit of parallel work — one shard of the underlying data
// (ConnectorSplit). Splits must be gob-serializable.
type Split interface {
	// Description renders the split for logs.
	Description() string
}

// PageSource streams pages for one split.
type PageSource interface {
	// Next returns the next page, or (nil, io.EOF) when exhausted.
	Next() (*block.Page, error)
	// Close releases resources. Safe to call multiple times.
	Close() error
}

// Metadata exposes schema information (ConnectorMetadata).
type Metadata interface {
	// ListSchemas returns schema names in sorted order.
	ListSchemas() ([]string, error)
	// ListTables returns table names in a schema in sorted order.
	ListTables(schema string) ([]string, error)
	// GetTable resolves a table, returning its schema and a fresh handle.
	GetTable(schema, table string) (*TableSchema, TableHandle, error)
}

// SplitManager divides a table into splits (ConnectorSplitManager).
type SplitManager interface {
	Splits(handle TableHandle) ([]Split, error)
}

// RecordSetProvider turns a split into a page stream
// (ConnectorRecordSetProvider). columns lists the table-column ordinals to
// produce, in output order; connectors that absorbed a projection pushdown
// receive the post-pushdown ordinals.
type RecordSetProvider interface {
	CreatePageSource(handle TableHandle, split Split, columns []int) (PageSource, error)
}

// Connector bundles the three mandatory SPI surfaces.
type Connector interface {
	Name() string
	Metadata() Metadata
	SplitManager() SplitManager
	RecordSetProvider() RecordSetProvider
}

// SnapshotVersioner is an optional capability: connectors that can report a
// monotonic per-table snapshot version implement it, and the coordinator
// stamps those versions into fragment-result cache keys (§VII). A version
// must change whenever the table's visible data changes (partition added or
// sealed, segment appended/sealed/compacted, schema evolved). ok=false
// marks the table unversionable — queries over it are never result-cached.
type SnapshotVersioner interface {
	SnapshotVersion(schema, table string) (version int64, ok bool)
}

// ---------------------------------------------------------------------------
// Pushdown capabilities (§IV.A, §IV.B). Predicates arrive as RowExpressions
// whose Variable channels are table-column ordinals, so they are
// self-contained for the connector.

// FilterPushdown lets a connector absorb (part of) a predicate.
type FilterPushdown interface {
	// PushFilter returns an updated handle, the residual predicate the
	// engine must still apply (nil if fully absorbed), and whether anything
	// was pushed.
	PushFilter(handle TableHandle, predicate expr.RowExpression, schema *TableSchema) (TableHandle, expr.RowExpression, bool)
}

// ProjectionPushdown lets a connector read only required columns.
type ProjectionPushdown interface {
	// PushProjection narrows the handle to the given table-column ordinals.
	PushProjection(handle TableHandle, columns []int) (TableHandle, bool)
}

// LimitPushdown lets a connector stop producing after limit rows.
type LimitPushdown interface {
	// PushLimit returns an updated handle, whether the limit is guaranteed
	// (engine may drop its own Limit), and whether anything was pushed.
	PushLimit(handle TableHandle, limit int64) (TableHandle, bool, bool)
}

// AggregateSpec describes one aggregate for pushdown: count/sum/min/max/avg
// over a single column (ArgColumn < 0 means count(*)).
type AggregateSpec struct {
	Function   string
	ArgColumn  int
	OutputName string
	OutputType *types.Type
}

// NestedProjectionPushdown is nested column pruning at the connector level
// (§V.D): the scan narrows to specific struct subfields (dotted paths rooted
// at table column names, e.g. "base.city_id"), so the reader only touches
// the required leaves even within one struct column.
type NestedProjectionPushdown interface {
	// PushNestedPaths narrows the scan to the given paths. On success the
	// scan's output columns become exactly these paths (returned with their
	// resolved types, in order).
	PushNestedPaths(handle TableHandle, paths []string) (TableHandle, []Column, bool)
}

// AggregationPushdown lets real-time stores (Druid, Pinot) execute
// aggregations natively so only aggregated rows stream into the engine
// (§IV.B, Fig 2).
type AggregationPushdown interface {
	// PushAggregation absorbs a grouped aggregation. groupBy lists
	// table-column ordinals. On success the scan's output becomes
	// groupBy columns followed by aggregate outputs.
	PushAggregation(handle TableHandle, aggs []AggregateSpec, groupBy []int) (TableHandle, bool)
}

// ---------------------------------------------------------------------------
// Hybrid batch + real-time tables.

// HybridPart names one side of a hybrid table: a fully-qualified table in
// another catalog.
type HybridPart struct {
	Catalog string
	Schema  string
	Table   string
}

// HybridSpec describes how a hybrid table splits: rows with
// TimeColumn < Boundary live in the historical (batch) side, rows with
// TimeColumn >= Boundary in the real-time side. Both sides must expose the
// same column names and types as the hybrid table itself.
type HybridSpec struct {
	Historical HybridPart
	Realtime   HybridPart
	// TimeColumn is the Bigint event-time column the boundary predicate
	// applies to.
	TimeColumn string
	// Boundary is the watermark separating batch history from real-time
	// data (exclusive on the historical side, inclusive on the real-time
	// side).
	Boundary int64
}

// HybridTable marks a connector whose tables are planner-expanded into
// union(historical scan, real-time scan) split by a time predicate. The
// optimizer probes for this on the scan's connector; a hybrid connector
// never executes scans itself.
type HybridTable interface {
	// HybridSpec reports the split spec for a handle, or false when the
	// handle is not hybrid.
	HybridSpec(handle TableHandle) (HybridSpec, bool)
}

// ---------------------------------------------------------------------------
// Catalog registry: catalog name → connector (§IV: catalog.schema.table).

// Registry maps catalog names to connectors.
type Registry struct {
	mu         sync.RWMutex
	connectors map[string]Connector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{connectors: map[string]Connector{}}
}

// Register installs a connector under a catalog name.
func (r *Registry) Register(catalog string, c Connector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.connectors[catalog] = c
}

// Get resolves a catalog name.
func (r *Registry) Get(catalog string) (Connector, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.connectors[catalog]
	if !ok {
		return nil, fmt.Errorf("connector: catalog %q is not registered", catalog)
	}
	return c, nil
}

// Catalogs returns registered catalog names, sorted.
func (r *Registry) Catalogs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.connectors))
	for name := range r.connectors {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Helpers shared by connector implementations.

// SlicePageSource serves a fixed list of pages (used by in-memory stores and
// tests).
type SlicePageSource struct {
	Pages []*block.Page
	pos   int
}

// Next implements PageSource.
func (s *SlicePageSource) Next() (*block.Page, error) {
	if s.pos >= len(s.Pages) {
		return nil, ErrEOF
	}
	p := s.Pages[s.pos]
	s.pos++
	return p, nil
}

// Close implements PageSource.
func (s *SlicePageSource) Close() error { return nil }

// ErrEOF marks page-source exhaustion; it is io.EOF so sources compose with
// standard stream helpers.
var ErrEOF = io.EOF
