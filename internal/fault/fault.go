// Package fault is the deterministic fault-injection layer: a seeded
// Injector drives an http.RoundTripper (Transport) that can drop, delay,
// corrupt or black-hole requests per target/per path, and a fsys.FileSystem
// wrapper (FS) that injects errors and latency into storage reads. Both draw
// every probability decision from one seeded RNG, so a chaos run is
// reproducible from its logged seed: the same seed yields the same fault
// sequence (modulo goroutine interleaving, which decides which request
// receives which draw — the chaos suite therefore asserts invariants, not
// schedules). The package also provides the controllable Clock threaded
// through the cluster and S3 retry/backoff paths.
package fault

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// InjectedError marks a fault produced by the injector, distinguishable from
// organic failures via errors.As.
type InjectedError struct {
	Op     string // "drop", "black-hole", "fs-read", "fs-open", ...
	Target string // host or file path the fault hit
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s on %s", e.Op, e.Target)
}

// Timeout implements the net.Error-ish contract HTTP clients probe.
func (e *InjectedError) Timeout() bool { return false }

// Temporary marks injected faults as transient: retry layers should treat
// them exactly like real connection churn.
func (e *InjectedError) Temporary() bool { return true }

// HTTPRule describes faults for requests whose URL host contains Target and
// whose path contains Path (empty matches everything). Matching rules apply
// in registration order; a drop or black-hole short-circuits the rest.
type HTTPRule struct {
	Target string
	Path   string
	// DropProb is the probability the request fails immediately with an
	// InjectedError, never reaching the server (connection-refused
	// semantics: the server observes nothing).
	DropProb float64
	// BlackHoleProb is the probability the request hangs until its context
	// is cancelled (the client's timeout) — the stalled-RPC failure mode.
	BlackHoleProb float64
	// DelayProb/Delay add latency before the request is forwarded.
	DelayProb float64
	Delay     time.Duration
	// CorruptProb is the probability one byte of the response body is
	// flipped after a successful round trip.
	CorruptProb float64
}

// FSRule describes faults for filesystem operations on paths containing
// Path (empty matches everything). Ops restricts which operations fault
// ("open", "read", "list", "stat", "create", "write", "sync"); nil matches
// all.
type FSRule struct {
	Path string
	Ops  []string
	// ErrProb is the probability the operation fails with an InjectedError.
	ErrProb float64
	// DelayProb/Delay add latency before the operation runs.
	DelayProb float64
	Delay     time.Duration
	// TornProb is the probability a "write" persists only a seeded-random
	// prefix of the buffer before failing — the torn/short write a power cut
	// leaves behind. Only meaningful for the write op.
	TornProb float64
}

func (r *FSRule) matches(op, path string) bool {
	if r.Path != "" && !strings.Contains(path, r.Path) {
		return false
	}
	if len(r.Ops) == 0 {
		return true
	}
	for _, o := range r.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// Counters tallies injected faults for test assertions.
type Counters struct {
	Dropped    atomic.Int64
	BlackHoled atomic.Int64
	Delayed    atomic.Int64
	Corrupted  atomic.Int64
	FSErrors   atomic.Int64
	FSDelays   atomic.Int64
	// FSTornWrites counts writes that persisted only a prefix before failing.
	FSTornWrites atomic.Int64
}

// Injector is the seeded fault source shared by Transport and FS wrappers.
// All methods are safe for concurrent use.
type Injector struct {
	// Clock is used for injected delays; defaults to RealClock. Set before
	// the injector is shared across goroutines.
	Clock Clock

	// Counters is exported for assertions on what was actually injected.
	Counters Counters

	seed int64

	mu        sync.Mutex
	rng       *rand.Rand
	httpRules []HTTPRule
	fsRules   []FSRule
}

// NewInjector creates an injector whose every probabilistic decision comes
// from a rand.Rand seeded with seed.
func NewInjector(seed int64) *Injector {
	return &Injector{Clock: RealClock{}, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed, for logging alongside chaos failures.
func (in *Injector) Seed() int64 { return in.seed }

// FaultHTTP registers an HTTP rule.
func (in *Injector) FaultHTTP(r HTTPRule) {
	in.mu.Lock()
	in.httpRules = append(in.httpRules, r)
	in.mu.Unlock()
}

// FaultFS registers a filesystem rule.
func (in *Injector) FaultFS(r FSRule) {
	in.mu.Lock()
	in.fsRules = append(in.fsRules, r)
	in.mu.Unlock()
}

// Reset drops all rules (the seeded RNG keeps its position, preserving
// determinism across phases of one run).
func (in *Injector) Reset() {
	in.mu.Lock()
	in.httpRules = nil
	in.fsRules = nil
	in.mu.Unlock()
}

// roll draws one uniform [0,1) sample from the seeded RNG.
func (in *Injector) roll() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// intn draws a uniform [0,n) sample from the seeded RNG.
func (in *Injector) intn(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// httpDecision is what the transport should do with one request.
type httpDecision struct {
	drop      bool
	blackHole bool
	delay     time.Duration
	corrupt   bool
}

// decideHTTP evaluates every matching rule in order against one request.
func (in *Injector) decideHTTP(host, path string) httpDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d httpDecision
	for i := range in.httpRules {
		r := &in.httpRules[i]
		if r.Target != "" && !strings.Contains(host, r.Target) {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		if r.DropProb > 0 && in.rng.Float64() < r.DropProb {
			d.drop = true
			return d
		}
		if r.BlackHoleProb > 0 && in.rng.Float64() < r.BlackHoleProb {
			d.blackHole = true
			return d
		}
		if r.DelayProb > 0 && r.Delay > 0 && in.rng.Float64() < r.DelayProb {
			d.delay += r.Delay
		}
		if r.CorruptProb > 0 && in.rng.Float64() < r.CorruptProb {
			d.corrupt = true
		}
	}
	return d
}

// fsDecision is what the FS wrapper should do with one operation.
type fsDecision struct {
	err   bool
	torn  bool // write persists a prefix, then fails (implies err)
	delay time.Duration
}

// decideFS evaluates every matching rule in order against one operation.
func (in *Injector) decideFS(op, path string) fsDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d fsDecision
	for i := range in.fsRules {
		r := &in.fsRules[i]
		if !r.matches(op, path) {
			continue
		}
		if r.DelayProb > 0 && r.Delay > 0 && in.rng.Float64() < r.DelayProb {
			d.delay += r.Delay
		}
		if op == "write" && r.TornProb > 0 && in.rng.Float64() < r.TornProb {
			d.err = true
			d.torn = true
			return d
		}
		if r.ErrProb > 0 && in.rng.Float64() < r.ErrProb {
			d.err = true
			return d
		}
	}
	return d
}

// clock returns the injector's clock, defaulting to real time.
func (in *Injector) clock() Clock {
	if in.Clock != nil {
		return in.Clock
	}
	return RealClock{}
}
