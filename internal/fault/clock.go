package fault

import (
	"sync"
	"time"
)

// Clock abstracts time so retry/backoff/hedging code can run against real
// wall time in production and a controllable clock in tests. It is threaded
// through the coordinator, gateway and PrestoS3FileSystem backoff loops.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	// After behaves like time.After. Implementations must deliver exactly one
	// value on the returned channel.
	After(d time.Duration) <-chan time.Time
}

// RealClock is the production clock: plain wall time.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ManualClock is a deterministic test clock where time passes instantly:
// Sleep and After advance the clock and return immediately, recording how
// much virtual time was requested. That makes backoff schedules assertable
// (and fast) without real sleeping.
type ManualClock struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

// NewManualClock starts a manual clock at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{now: start}
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d instantly and records it.
func (c *ManualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.slept += d
	c.mu.Unlock()
}

// After advances the clock by d instantly and returns an already-fired
// channel, so select loops (e.g. hedged fetches) take the timeout branch
// deterministically.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	c.Sleep(d)
	ch := make(chan time.Time, 1)
	ch <- c.Now()
	return ch
}

// Advance moves the clock forward without recording a sleep.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Slept reports the total virtual time requested via Sleep/After.
func (c *ManualClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
