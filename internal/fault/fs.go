package fault

import (
	"io"

	"prestolite/internal/fsys"
)

// FS wraps a fsys.FileSystem and injects errors and latency into its
// operations — the remote-object-store failure modes (stalled reads, 5xx
// storms) the Parquet readers and the hive connector must survive. Writes
// (Create) pass through untouched: chaos runs fault the read path of sealed
// data.
type FS struct {
	Injector *Injector
	Base     fsys.FileSystem
}

// apply charges the injected delay and returns the injected error, if any.
func (f *FS) apply(op, path string) error {
	d := f.Injector.decideFS(op, path)
	if d.delay > 0 {
		f.Injector.Counters.FSDelays.Add(1)
		f.Injector.clock().Sleep(d.delay)
	}
	if d.err {
		f.Injector.Counters.FSErrors.Add(1)
		return &InjectedError{Op: "fs-" + op, Target: path}
	}
	return nil
}

// ListFiles implements fsys.FileSystem.
func (f *FS) ListFiles(dir string) ([]fsys.FileInfo, error) {
	if err := f.apply("list", dir); err != nil {
		return nil, err
	}
	return f.Base.ListFiles(dir)
}

// GetFileInfo implements fsys.FileSystem.
func (f *FS) GetFileInfo(path string) (fsys.FileInfo, error) {
	if err := f.apply("stat", path); err != nil {
		return fsys.FileInfo{}, err
	}
	return f.Base.GetFileInfo(path)
}

// Open implements fsys.FileSystem; the returned File injects faults into
// every ReadAt.
func (f *FS) Open(path string) (fsys.File, error) {
	if err := f.apply("open", path); err != nil {
		return nil, err
	}
	file, err := f.Base.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, File: file}, nil
}

// Create implements fsys.FileSystem (pass-through).
func (f *FS) Create(path string) (io.WriteCloser, error) {
	return f.Base.Create(path)
}

// faultFile injects faults into random-access reads.
type faultFile struct {
	fs   *FS
	path string
	fsys.File
}

// ReadAt implements io.ReaderAt.
func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.apply("read", f.path); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}
