package fault

import (
	"io"

	"prestolite/internal/fsys"
)

// FS wraps a fsys.FileSystem and injects errors and latency into its
// operations — the remote-object-store failure modes (stalled reads, 5xx
// storms) the Parquet readers and the hive connector must survive, plus the
// write-path failure modes (failed creates, torn/short writes, fsync errors)
// the ingest WAL must survive.
type FS struct {
	Injector *Injector
	Base     fsys.FileSystem
}

// apply charges the injected delay and returns the injected error, if any.
func (f *FS) apply(op, path string) error {
	d := f.Injector.decideFS(op, path)
	if d.delay > 0 {
		f.Injector.Counters.FSDelays.Add(1)
		f.Injector.clock().Sleep(d.delay)
	}
	if d.err {
		f.Injector.Counters.FSErrors.Add(1)
		return &InjectedError{Op: "fs-" + op, Target: path}
	}
	return nil
}

// ListFiles implements fsys.FileSystem.
func (f *FS) ListFiles(dir string) ([]fsys.FileInfo, error) {
	if err := f.apply("list", dir); err != nil {
		return nil, err
	}
	return f.Base.ListFiles(dir)
}

// GetFileInfo implements fsys.FileSystem.
func (f *FS) GetFileInfo(path string) (fsys.FileInfo, error) {
	if err := f.apply("stat", path); err != nil {
		return fsys.FileInfo{}, err
	}
	return f.Base.GetFileInfo(path)
}

// Open implements fsys.FileSystem; the returned File injects faults into
// every ReadAt.
func (f *FS) Open(path string) (fsys.File, error) {
	if err := f.apply("open", path); err != nil {
		return nil, err
	}
	file, err := f.Base.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, File: file}, nil
}

// Create implements fsys.FileSystem; the returned writer injects faults into
// every Write and Sync ("write"/"sync" ops), including torn writes that
// persist only a seeded-random prefix of the buffer (FSRule.TornProb).
func (f *FS) Create(path string) (io.WriteCloser, error) {
	if err := f.apply("create", path); err != nil {
		return nil, err
	}
	w, err := f.Base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultWriter{fs: f, path: path, w: w}, nil
}

// faultWriter injects faults into sequential writes and fsyncs.
type faultWriter struct {
	fs   *FS
	path string
	w    io.WriteCloser
}

// Write implements io.Writer. A torn decision writes a seeded-random strict
// prefix of p to the base writer, then reports failure — the caller sees an
// error, but the prefix is on disk, exactly like a crash mid-write.
func (fw *faultWriter) Write(p []byte) (int, error) {
	d := fw.fs.Injector.decideFS("write", fw.path)
	if d.delay > 0 {
		fw.fs.Injector.Counters.FSDelays.Add(1)
		fw.fs.Injector.clock().Sleep(d.delay)
	}
	if d.torn && len(p) > 0 {
		n := fw.fs.Injector.intn(len(p))
		if n > 0 {
			if _, werr := fw.w.Write(p[:n]); werr != nil {
				return 0, werr
			}
		}
		fw.fs.Injector.Counters.FSTornWrites.Add(1)
		fw.fs.Injector.Counters.FSErrors.Add(1)
		return n, &InjectedError{Op: "fs-torn-write", Target: fw.path}
	}
	if d.err {
		fw.fs.Injector.Counters.FSErrors.Add(1)
		return 0, &InjectedError{Op: "fs-write", Target: fw.path}
	}
	return fw.w.Write(p)
}

// Sync implements fsys.Syncer: an injected sync error models fsync returning
// EIO with the page-cache state unknown.
func (fw *faultWriter) Sync() error {
	if err := fw.fs.apply("sync", fw.path); err != nil {
		return err
	}
	return fsys.Sync(fw.w)
}

// Close implements io.Closer (never faulted: close is the caller's last
// chance to release the descriptor, and every injected failure mode a close
// error would model is already covered by write/sync faults).
func (fw *faultWriter) Close() error { return fw.w.Close() }

// faultFile injects faults into random-access reads.
type faultFile struct {
	fs   *FS
	path string
	fsys.File
}

// ReadAt implements io.ReaderAt.
func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.apply("read", f.path); err != nil {
		return 0, err
	}
	return f.File.ReadAt(p, off)
}
