package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"prestolite/internal/fsys"
)

// TestSeedDeterminism: the same seed produces the same drop pattern over a
// serial request sequence — the property that makes chaos runs replayable.
func TestSeedDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := NewInjector(seed)
		in.FaultHTTP(HTTPRule{DropProb: 0.3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.decideHTTP("w1:8080", "/v1/task").drop
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at draw %d", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-draw patterns")
	}
	drops := 0
	for _, d := range a {
		if d {
			drops++
		}
	}
	if drops < 30 || drops > 90 {
		t.Fatalf("0.3 drop probability yielded %d/200 drops", drops)
	}
}

// TestTransportDrop: a dropped request never reaches the server and surfaces
// as an InjectedError through errors.As.
func TestTransportDrop(t *testing.T) {
	served := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	in := NewInjector(1)
	in.FaultHTTP(HTTPRule{DropProb: 1})
	client := &http.Client{Transport: &Transport{Injector: in}}
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("expected drop error")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Op != "drop" {
		t.Fatalf("err = %v, want InjectedError{Op: drop}", err)
	}
	if served != 0 {
		t.Fatalf("dropped request reached the server %d times", served)
	}
	if n := in.Counters.Dropped.Load(); n != 1 {
		t.Fatalf("Dropped = %d", n)
	}
}

// TestTransportRulesScope: rules match by host and path substring; requests
// outside the scope pass untouched.
func TestTransportRulesScope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	in := NewInjector(1)
	in.FaultHTTP(HTTPRule{Target: "no-such-host", DropProb: 1})
	in.FaultHTTP(HTTPRule{Path: "/v1/task", DropProb: 1})
	client := &http.Client{Transport: &Transport{Injector: in}}

	resp, err := client.Get(srv.URL + "/v1/info")
	if err != nil {
		t.Fatalf("out-of-scope request failed: %v", err)
	}
	_ = resp.Body.Close()
	if _, err := client.Get(srv.URL + "/v1/task/t0/results"); err == nil {
		t.Fatal("in-scope path was not dropped")
	}
}

// TestTransportBlackHole: a black-holed request hangs until the client
// timeout, then fails — never silently succeeds.
func TestTransportBlackHole(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	in := NewInjector(1)
	in.FaultHTTP(HTTPRule{BlackHoleProb: 1})
	client := &http.Client{Transport: &Transport{Injector: in}, Timeout: 50 * time.Millisecond}
	start := time.Now()
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("black-holed request succeeded")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("black hole returned after %v, before the 50ms client timeout", elapsed)
	}
	if n := in.Counters.BlackHoled.Load(); n != 1 {
		t.Fatalf("BlackHoled = %d", n)
	}
}

// TestTransportDelay: injected latency is charged on the injector's clock —
// with a ManualClock the request is slow in virtual time only.
func TestTransportDelay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	clk := NewManualClock(time.Unix(0, 0))
	in := NewInjector(1)
	in.Clock = clk
	in.FaultHTTP(HTTPRule{DelayProb: 1, Delay: 3 * time.Second})
	client := &http.Client{Transport: &Transport{Injector: in}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	_ = resp.Body.Close()
	if got := clk.Slept(); got != 3*time.Second {
		t.Fatalf("virtual delay = %v, want 3s", got)
	}
	if n := in.Counters.Delayed.Load(); n != 1 {
		t.Fatalf("Delayed = %d", n)
	}
}

// TestTransportCorrupt: exactly one body byte differs after a corruption,
// and the flip position is seed-deterministic.
func TestTransportCorrupt(t *testing.T) {
	payload := []byte("hello, presto workers")
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(payload)
	}))
	defer srv.Close()

	readBody := func(seed int64) []byte {
		in := NewInjector(seed)
		in.FaultHTTP(HTTPRule{CorruptProb: 1})
		client := &http.Client{Transport: &Transport{Injector: in}}
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("corrupted request failed: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	a := readBody(7)
	diff := 0
	for i := range a {
		if a[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
	if b := readBody(7); string(a) != string(b) {
		t.Fatal("same seed corrupted different byte positions")
	}
}

// TestFaultFS: filesystem rules inject typed errors into the selected ops and
// paths only, and faulted reads count in the injector's counters.
func TestFaultFS(t *testing.T) {
	base := fsys.NewLocal(t.TempDir())
	for _, p := range []string{"/data/a.parquet", "/data/b.parquet"} {
		w, err := base.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	in := NewInjector(5)
	in.FaultFS(FSRule{Path: "a.parquet", Ops: []string{"read"}, ErrProb: 1})
	ffs := &FS{Injector: in, Base: base}

	// Untargeted file reads fine.
	fb, err := ffs.Open("/data/b.parquet")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := fb.ReadAt(buf, 0); err != nil {
		t.Fatalf("untargeted read failed: %v", err)
	}
	// Open of the targeted file is fine (rule scopes "read" only)...
	fa, err := ffs.Open("/data/a.parquet")
	if err != nil {
		t.Fatalf("open should not fault: %v", err)
	}
	// ...but every read faults with a typed error.
	_, err = fa.ReadAt(buf, 0)
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Op != "fs-read" {
		t.Fatalf("err = %v, want InjectedError{Op: fs-read}", err)
	}
	if n := in.Counters.FSErrors.Load(); n != 1 {
		t.Fatalf("FSErrors = %d", n)
	}
}

// TestManualClock: virtual time passes instantly, Sleep/After accumulate in
// Slept, and After always delivers.
func TestManualClock(t *testing.T) {
	clk := NewManualClock(time.Unix(100, 0))
	start := time.Now()
	clk.Sleep(time.Hour)
	select {
	case now := <-clk.After(30 * time.Minute):
		if want := time.Unix(100, 0).Add(90 * time.Minute); !now.Equal(want) {
			t.Fatalf("After delivered %v, want %v", now, want)
		}
	default:
		t.Fatal("After channel did not fire immediately")
	}
	if real := time.Since(start); real > time.Second {
		t.Fatalf("virtual 90m took %v real time", real)
	}
	if clk.Slept() != 90*time.Minute {
		t.Fatalf("Slept = %v", clk.Slept())
	}
	clk.Advance(10 * time.Minute)
	if clk.Slept() != 90*time.Minute {
		t.Fatal("Advance must not count as sleep")
	}
	if want := time.Unix(100, 0).Add(100 * time.Minute); !clk.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", clk.Now(), want)
	}
}
