package fault

import (
	"bytes"
	"io"
	"net/http"
)

// Transport is an http.RoundTripper that consults an Injector before (and
// after) delegating to Base. Install it as the Transport of any HTTP client
// whose network hops should be chaos-testable — the cluster's ClientConfig
// threads it through every coordinator, gateway and client connection.
type Transport struct {
	Injector *Injector
	// Base performs the real round trip; nil means http.DefaultTransport.
	Base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.Injector
	d := in.decideHTTP(req.URL.Host, req.URL.Path)

	if d.drop {
		in.Counters.Dropped.Add(1)
		return nil, &InjectedError{Op: "drop", Target: req.URL.Host}
	}
	if d.blackHole {
		// Hang until the client's timeout (or caller cancellation) fires:
		// the request is neither delivered nor answered, like a switch
		// silently eating packets.
		in.Counters.BlackHoled.Add(1)
		<-req.Context().Done()
		return nil, &InjectedError{Op: "black-hole", Target: req.URL.Host}
	}
	if d.delay > 0 {
		in.Counters.Delayed.Add(1)
		select {
		case <-in.clock().After(d.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}

	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil || !d.corrupt {
		return resp, err
	}

	// Corrupt: flip one byte of the response body at a seeded position.
	body, rerr := io.ReadAll(resp.Body)
	closeErr := resp.Body.Close()
	if rerr != nil || closeErr != nil || len(body) == 0 {
		resp.Body = io.NopCloser(bytes.NewReader(body))
		return resp, nil
	}
	in.Counters.Corrupted.Add(1)
	body[in.intn(len(body))] ^= 0xff
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}
