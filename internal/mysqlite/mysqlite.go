// Package mysqlite is a small embedded row-oriented transactional store
// standing in for MySQL (§IV: "MySQL is used widely in all companies with
// transaction support"). It provides primary-key indexed tables with
// insert/update/delete and predicate scans. Two consumers exercise it: the
// Presto-MySQL connector (unified SQL without data copy) and the gateway's
// user/group → cluster routing table (§VIII).
package mysqlite

import (
	"fmt"
	"sort"
	"sync"

	"prestolite/internal/expr"
	"prestolite/internal/types"
)

// Column is a typed column.
type Column struct {
	Name string
	Type *types.Type
}

// Predicate is a scan filter: Column <Op> Values.
type Predicate struct {
	Column string
	Op     string // eq, neq, lt, lte, gt, gte, in
	Values []any
}

// Table is a row-oriented table with an optional primary key index.
type Table struct {
	Name    string
	Columns []Column
	PKCol   int // -1 when no primary key

	rows  [][]any
	index map[any]int // pk value -> row offset (-1 entries are tombstones)
	live  int
}

// DB is the embedded database.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New creates an empty database.
func New() *DB {
	return &DB{tables: map[string]*Table{}}
}

// CreateTable registers a table; pk names the primary key column ("" for
// none).
func (db *DB) CreateTable(name string, cols []Column, pk string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("mysqlite: table %q already exists", name)
	}
	t := &Table{Name: name, Columns: cols, PKCol: -1, index: map[any]int{}}
	if pk != "" {
		for i, c := range cols {
			if c.Name == pk {
				t.PKCol = i
			}
		}
		if t.PKCol < 0 {
			return nil, fmt.Errorf("mysqlite: primary key column %q not found", pk)
		}
	}
	db.tables[name] = t
	return t, nil
}

// Table resolves a table by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("mysqlite: table %q does not exist", name)
	}
	return t, nil
}

// Tables lists table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var tableLocks sync.Mutex

// Insert adds a row, enforcing primary key uniqueness.
func (db *DB) Insert(table string, row []any) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	if len(row) != len(t.Columns) {
		return fmt.Errorf("mysqlite: %s expects %d values, got %d", table, len(t.Columns), len(row))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t.PKCol >= 0 {
		pk := row[t.PKCol]
		if pk == nil {
			return fmt.Errorf("mysqlite: %s primary key cannot be NULL", table)
		}
		if old, exists := t.index[pk]; exists && old >= 0 {
			return fmt.Errorf("mysqlite: duplicate primary key %v in %s", pk, table)
		}
		t.index[pk] = len(t.rows)
	}
	t.rows = append(t.rows, append([]any(nil), row...))
	t.live++
	return nil
}

// Upsert inserts or replaces by primary key.
func (db *DB) Upsert(table string, row []any) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	if t.PKCol < 0 {
		return fmt.Errorf("mysqlite: %s has no primary key", table)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	pk := row[t.PKCol]
	if old, exists := t.index[pk]; exists && old >= 0 {
		t.rows[old] = append([]any(nil), row...)
		return nil
	}
	t.index[pk] = len(t.rows)
	t.rows = append(t.rows, append([]any(nil), row...))
	t.live++
	return nil
}

// DeleteByPK removes a row; returns whether it existed.
func (db *DB) DeleteByPK(table string, pk any) (bool, error) {
	t, err := db.Table(table)
	if err != nil {
		return false, err
	}
	if t.PKCol < 0 {
		return false, fmt.Errorf("mysqlite: %s has no primary key", table)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	off, exists := t.index[pk]
	if !exists || off < 0 {
		return false, nil
	}
	t.rows[off] = nil // tombstone
	t.index[pk] = -1
	t.live--
	return true, nil
}

// GetByPK does a point lookup through the index.
func (db *DB) GetByPK(table string, pk any) ([]any, bool, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, false, err
	}
	if t.PKCol < 0 {
		return nil, false, fmt.Errorf("mysqlite: %s has no primary key", table)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	off, exists := t.index[pk]
	if !exists || off < 0 {
		return nil, false, nil
	}
	return append([]any(nil), t.rows[off]...), true, nil
}

// Scan returns rows matching all predicates, projected to the given column
// ordinals (nil = all), stopping at limit (<=0 = unlimited). Point lookups
// on the primary key use the index.
func (db *DB) Scan(table string, preds []Predicate, projection []int, limit int64) ([][]any, error) {
	t, err := db.Table(table)
	if err != nil {
		return nil, err
	}
	colIdx := map[string]int{}
	for i, c := range t.Columns {
		colIdx[c.Name] = i
	}
	for _, p := range preds {
		if _, ok := colIdx[p.Column]; !ok {
			return nil, fmt.Errorf("mysqlite: unknown column %q in %s", p.Column, table)
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()

	project := func(row []any) []any {
		if projection == nil {
			return append([]any(nil), row...)
		}
		out := make([]any, len(projection))
		for i, ord := range projection {
			out[i] = row[ord]
		}
		return out
	}

	// Index fast path: single eq predicate on the primary key.
	if t.PKCol >= 0 && len(preds) == 1 && preds[0].Op == "eq" && colIdx[preds[0].Column] == t.PKCol {
		off, exists := t.index[preds[0].Values[0]]
		if !exists || off < 0 {
			return nil, nil
		}
		return [][]any{project(t.rows[off])}, nil
	}

	var out [][]any
	for _, row := range t.rows {
		if row == nil {
			continue // tombstone
		}
		ok := true
		for _, p := range preds {
			v := row[colIdx[p.Column]]
			if v == nil || !matchPredicate(p, v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		out = append(out, project(row))
		if limit > 0 && int64(len(out)) >= limit {
			break
		}
	}
	return out, nil
}

// Count returns live row count.
func (db *DB) Count(table string) (int, error) {
	t, err := db.Table(table)
	if err != nil {
		return 0, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	return t.live, nil
}

func matchPredicate(p Predicate, v any) bool {
	switch p.Op {
	case "in":
		for _, w := range p.Values {
			if expr.CompareValues(v, w) == 0 {
				return true
			}
		}
		return false
	default:
		c := expr.CompareValues(v, p.Values[0])
		switch p.Op {
		case "eq":
			return c == 0
		case "neq":
			return c != 0
		case "lt":
			return c < 0
		case "lte":
			return c <= 0
		case "gt":
			return c > 0
		case "gte":
			return c >= 0
		}
		return false
	}
}
