package mysqlite

import (
	"reflect"
	"testing"

	"prestolite/internal/types"
)

func testDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	_, err := db.CreateTable("users", []Column{
		{Name: "id", Type: types.Bigint},
		{Name: "name", Type: types.Varchar},
		{Name: "grp", Type: types.Varchar},
	}, "id")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]any{
		{int64(1), "alice", "adhoc"},
		{int64(2), "bob", "etl"},
		{int64(3), "carol", "adhoc"},
	} {
		if err := db.Insert("users", row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestInsertAndPKLookup(t *testing.T) {
	db := testDB(t)
	row, ok, err := db.GetByPK("users", int64(2))
	if err != nil || !ok {
		t.Fatalf("GetByPK: %v %v", ok, err)
	}
	if row[1] != "bob" {
		t.Errorf("row = %v", row)
	}
	if err := db.Insert("users", []any{int64(2), "dup", "x"}); err == nil {
		t.Error("duplicate pk accepted")
	}
	if err := db.Insert("users", []any{nil, "nilpk", "x"}); err == nil {
		t.Error("nil pk accepted")
	}
	if err := db.Insert("users", []any{int64(9)}); err == nil {
		t.Error("short row accepted")
	}
}

func TestUpsertDelete(t *testing.T) {
	db := testDB(t)
	if err := db.Upsert("users", []any{int64(2), "bobby", "etl"}); err != nil {
		t.Fatal(err)
	}
	row, _, _ := db.GetByPK("users", int64(2))
	if row[1] != "bobby" {
		t.Errorf("upsert did not replace: %v", row)
	}
	ok, err := db.DeleteByPK("users", int64(1))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, found, _ := db.GetByPK("users", int64(1)); found {
		t.Error("deleted row still visible")
	}
	if n, _ := db.Count("users"); n != 2 {
		t.Errorf("count = %d", n)
	}
	// Reinsert after delete works.
	if err := db.Insert("users", []any{int64(1), "alice2", "adhoc"}); err != nil {
		t.Errorf("reinsert: %v", err)
	}
}

func TestScan(t *testing.T) {
	db := testDB(t)
	rows, err := db.Scan("users", []Predicate{{Column: "grp", Op: "eq", Values: []any{"adhoc"}}}, []int{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, [][]any{{"alice"}, {"carol"}}) {
		t.Errorf("rows = %v", rows)
	}
	rows, err = db.Scan("users", nil, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || len(rows[0]) != 3 {
		t.Errorf("rows = %v", rows)
	}
	// PK point lookup path.
	rows, err = db.Scan("users", []Predicate{{Column: "id", Op: "eq", Values: []any{int64(3)}}}, nil, 0)
	if err != nil || len(rows) != 1 || rows[0][1] != "carol" {
		t.Errorf("pk scan = %v, %v", rows, err)
	}
	if _, err := db.Scan("users", []Predicate{{Column: "nope", Op: "eq", Values: []any{int64(1)}}}, nil, 0); err == nil {
		t.Error("bad predicate column accepted")
	}
	if _, err := db.Scan("missing", nil, nil, 0); err == nil {
		t.Error("missing table accepted")
	}
}

func TestPredicateOps(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		p    Predicate
		want int
	}{
		{Predicate{Column: "id", Op: "gt", Values: []any{int64(1)}}, 2},
		{Predicate{Column: "id", Op: "lte", Values: []any{int64(2)}}, 2},
		{Predicate{Column: "name", Op: "in", Values: []any{"alice", "carol"}}, 2},
		{Predicate{Column: "grp", Op: "neq", Values: []any{"etl"}}, 2},
	}
	for _, c := range cases {
		rows, err := db.Scan("users", []Predicate{c.p}, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != c.want {
			t.Errorf("%+v: got %d, want %d", c.p, len(rows), c.want)
		}
	}
}
