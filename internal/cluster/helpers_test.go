package cluster

import (
	"fmt"
	"net/http"
)

func httpGet(url string) (*http.Response, error) { return http.Get(url) }

func errOr(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
