package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// newCatalogs builds a hive warehouse with many files so splits spread
// across workers, plus a memory catalog.
func newCatalogs(t *testing.T) *connector.Registry {
	t.Helper()
	nn := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: nn}
	cols := []metastore.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "fare", Type: types.Double},
	}
	// 8 files, 10 rows each.
	var pages []*block.Page
	for f := 0; f < 8; f++ {
		pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Double})
		for i := 0; i < 10; i++ {
			pb.AppendRow([]any{int64((f*10 + i) % 5), float64(f*10+i) / 2})
		}
		pages = append(pages, pb.Build())
	}
	if err := loader.CreateTable("rawdata", "trips", cols, pages); err != nil {
		t.Fatal(err)
	}

	mem := memory.New("memory")
	if err := mem.CreateTable("meta", "cities", []connector.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "name", Type: types.Varchar},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := mem.AppendRows("meta", "cities", [][]any{
		{int64(0), "sf"}, {int64(1), "oak"}, {int64(2), "sj"}, {int64(3), "la"}, {int64(4), "sd"},
	}); err != nil {
		t.Fatal(err)
	}

	reg := connector.NewRegistry()
	reg.Register("hive", hive.New("hive", ms, nn, hive.Options{}))
	reg.Register("memory", mem)
	return reg
}

// newCluster starts a coordinator and n workers sharing catalogs.
func newCluster(t *testing.T, catalogs *connector.Registry, n int) (*Coordinator, []*Worker) {
	t.Helper()
	coord := NewCoordinator(catalogs)
	var workers []*Worker
	for i := 0; i < n; i++ {
		w := NewWorker(catalogs)
		w.GracePeriod = 20 * time.Millisecond
		if err := w.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		coord.AddWorker(w.Addr())
		workers = append(workers, w)
	}
	return coord, workers
}

func session() *planner.Session {
	return &planner.Session{Catalog: "hive", Schema: "rawdata", User: "test", Properties: map[string]string{}}
}

func TestDistributedScan(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 3)
	res, err := coord.Query(session(), "SELECT city_id, fare FROM trips WHERE fare >= 10.0")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 60 { // fares 10.0..39.5 are rows 20..79
		t.Fatalf("got %d rows", len(rows))
	}
}

func TestDistributedPartialFinalAggregation(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 3)
	res, err := coord.Query(session(), `SELECT city_id, count(*) AS n, sum(fare) AS s, avg(fare) AS a
		FROM trips GROUP BY city_id ORDER BY city_id`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	totalN := int64(0)
	totalS := 0.0
	for _, r := range rows {
		totalN += r[1].(int64)
		totalS += r[2].(float64)
	}
	if totalN != 80 {
		t.Errorf("total count = %d", totalN)
	}
	if totalS != 1580.0 { // sum of i/2 for i in 0..79 = (79*80/2)/2
		t.Errorf("total sum = %v", totalS)
	}
	// Each group's avg is consistent with sum/count.
	for _, r := range rows {
		want := r[2].(float64) / float64(r[1].(int64))
		if diff := r[3].(float64) - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("avg mismatch: %v vs %v", r[3], want)
		}
	}
}

func TestExplainDistributedShowsFragments(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 2)
	out, err := coord.ExplainDistributed(session(), "SELECT city_id, count(*) FROM trips GROUP BY city_id")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fragment 0 (coordinator)", "Fragment 1 (source", "Aggregate(PARTIAL)", "Aggregate(FINAL)", "RemoteSource"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestDistributedJoin(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 2)
	res, err := coord.Query(session(), `SELECT c.name, count(*) FROM trips t
		JOIN memory.meta.cities c ON t.city_id = c.city_id
		GROUP BY c.name ORDER BY 2 DESC, 1`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	total := int64(0)
	for _, r := range rows {
		total += r[1].(int64)
	}
	if total != 80 {
		t.Errorf("total = %d", total)
	}
}

func TestMatchesEmbeddedEngine(t *testing.T) {
	catalogs := newCatalogs(t)
	coord, _ := newCluster(t, catalogs, 3)
	queries := []string{
		"SELECT count(*) FROM trips",
		"SELECT city_id, sum(fare) FROM trips GROUP BY city_id ORDER BY 1",
		"SELECT fare FROM trips WHERE city_id = 2 ORDER BY fare DESC LIMIT 3",
		"SELECT min(fare), max(fare), avg(fare) FROM trips WHERE city_id IN (1, 3)",
	}
	for _, q := range queries {
		distRes, err := coord.Query(session(), q)
		if err != nil {
			t.Fatalf("%s (distributed): %v", q, err)
		}
		distRows, err := distRes.Rows()
		if err != nil {
			t.Fatal(err)
		}
		// Embedded execution over the same catalogs.
		analyzer := &planner.Analyzer{Catalogs: catalogs, Session: session()}
		// reuse coordinator single-node path via a 0-worker coordinator is
		// not possible (needs workers); compare against planner+local exec
		// through a fresh Coordinator with one in-process worker instead.
		_ = analyzer
		single, _ := newCluster(t, catalogs, 1)
		singleRes, err := single.Query(session(), q)
		if err != nil {
			t.Fatalf("%s (single): %v", q, err)
		}
		singleRows, err := singleRes.Rows()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(distRows) != fmt.Sprint(singleRows) {
			t.Errorf("%s: distributed %v vs single %v", q, distRows, singleRows)
		}
	}
}

func TestNoWorkers(t *testing.T) {
	coord := NewCoordinator(newCatalogs(t))
	if _, err := coord.Query(session(), "SELECT count(*) FROM trips"); err == nil {
		t.Error("query with no workers should fail")
	}
	// Constant queries run coordinator-only and still work.
	res, err := coord.Query(session(), "SELECT 1 + 2")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := res.Rows()
	if rows[0][0] != int64(3) {
		t.Errorf("rows = %v", rows)
	}
}

func TestGracefulExpansion(t *testing.T) {
	catalogs := newCatalogs(t)
	coord, _ := newCluster(t, catalogs, 1)
	if _, err := coord.Query(session(), "SELECT count(*) FROM trips"); err != nil {
		t.Fatal(err)
	}
	// Add a worker mid-flight via the announce endpoint.
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	w := NewWorker(catalogs)
	w.GracePeriod = 10 * time.Millisecond
	if err := w.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	resp, err := (&Client{Addr: coord.Addr(), HTTP: nil}).announce(coord.Addr(), w.Addr())
	_ = resp
	if err != nil {
		t.Fatal(err)
	}
	if len(coord.Workers()) != 2 {
		t.Fatalf("workers = %v", coord.Workers())
	}
	if _, err := coord.Query(session(), "SELECT count(*) FROM trips"); err != nil {
		t.Fatal(err)
	}
}

func TestGracefulShrinkNoQueryFailures(t *testing.T) {
	catalogs := newCatalogs(t)
	coord, workers := newCluster(t, catalogs, 3)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := coord.Query(session(), "SELECT city_id, count(*) FROM trips GROUP BY city_id")
				if err != nil {
					errs <- err
					return
				}
				rows, err := res.Rows()
				if err != nil || len(rows) != 5 {
					errs <- fmt.Errorf("bad result: %v %v", rows, err)
					return
				}
			}
		}()
	}
	// Drain one worker mid-traffic.
	time.Sleep(20 * time.Millisecond)
	go workers[0].GracefulShutdown()
	workers[0].WaitShutdown()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query failed during graceful shrink: %v", err)
	}
	if workers[0].State() != StateShutdown {
		t.Errorf("worker state = %s", workers[0].State())
	}
	// Queries still succeed on the remaining workers.
	if _, err := coord.Query(session(), "SELECT count(*) FROM trips"); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPStatementEndpoint(t *testing.T) {
	catalogs := newCatalogs(t)
	coord, _ := newCluster(t, catalogs, 2)
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	client := NewClient(coord.Addr())
	res, err := client.Query(StatementRequest{
		Query:   "SELECT city_id, count(*) FROM trips GROUP BY city_id ORDER BY 1",
		Catalog: "hive",
		Schema:  "rawdata",
		User:    "cli",
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || res.Columns[1] != "count(*)" {
		t.Fatalf("rows = %v, cols = %v", rows, res.Columns)
	}
	// Errors propagate.
	if _, err := client.Query(StatementRequest{Query: "SELECT nope FROM trips", Catalog: "hive", Schema: "rawdata"}); err == nil {
		t.Error("bad query accepted")
	}
}

// announce is a tiny helper on Client for the expansion test.
func (cl *Client) announce(coordAddr, workerAddr string) (string, error) {
	resp, err := httpGet("http://" + coordAddr + "/v1/announce?addr=" + workerAddr)
	return "", errOr(resp, err)
}
