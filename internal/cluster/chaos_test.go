package cluster

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/execution"
	"prestolite/internal/fault"
	"prestolite/internal/fsys"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/tpch"
)

// The chaos suite (run via `make chaos`): seeded fault injection against an
// embedded coordinator+workers cluster running TPC-H queries. The invariant
// every test asserts is the §IX reliability contract — a query either returns
// row-exact correct results or a clean typed error, never a hang and never
// wrong rows. Each failure logs its seed; re-run one with
// CHAOS_SEED=<seed> make chaos.

// chaosSeeds returns the seeds to run, honoring a CHAOS_SEED override.
func chaosSeeds(t *testing.T) []int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 42}
}

const (
	chaosDataSeed    = 99 // data is fixed; chaos seeds vary only the faults
	chaosFiles       = 8
	chaosRowsPerFile = 250
)

// chaosQueries are TPC-H-flavored statements over LINEITEM. Aggregates are
// restricted to counts and sums of small integral doubles (l_quantity is
// 1..50), so results are bit-exact regardless of the order partial aggregates
// merge in — which is what lets the suite assert row-exact equality even when
// tasks are re-executed on different workers.
var chaosQueries = []string{
	`SELECT l_returnflag, l_linestatus, count(*) AS n, sum(l_quantity) AS q
		FROM lineitem GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
	`SELECT count(*) AS n FROM lineitem WHERE l_quantity < 25.0`,
	`SELECT l_shipmode, count(*) AS n FROM lineitem GROUP BY l_shipmode ORDER BY l_shipmode`,
}

// chaosCatalogs builds a hive warehouse of TPC-H LINEITEM files over the
// simulated HDFS, wrapped in the fault-injecting filesystem when inj != nil.
// The table is loaded before any fault rules exist, so the data itself is
// always intact — chaos fires on the read path.
func chaosCatalogs(t *testing.T, inj *fault.Injector) *connector.Registry {
	t.Helper()
	var fs fsys.FileSystem = hdfs.New(hdfs.Config{})
	if inj != nil {
		fs = &fault.FS{Injector: inj, Base: fs}
	}
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := make([]metastore.Column, len(tpch.LineItemColumns))
	for i, c := range tpch.LineItemColumns {
		cols[i] = metastore.Column{Name: c.Name, Type: c.Type}
	}
	var pages []*block.Page
	for f := 0; f < chaosFiles; f++ {
		pages = append(pages, tpch.GeneratePage(chaosDataSeed+int64(f), chaosRowsPerFile))
	}
	if err := loader.CreateTable("tpch", "lineitem", cols, pages); err != nil {
		t.Fatal(err)
	}
	reg := connector.NewRegistry()
	reg.Register("hive", hive.New("hive", ms, fs, hive.Options{}))
	return reg
}

// chaosConfig is the tightened client config chaos runs use: short timeouts
// so black holes resolve quickly, fast backoff, a roomy reschedule budget,
// and hedging off by default (the hedging test turns it on).
func chaosConfig(inj *fault.Injector) ClientConfig {
	return ClientConfig{
		WorkerTimeout:    2 * time.Second,
		StatementTimeout: 10 * time.Second,
		Transport:        &fault.Transport{Injector: inj},
		MaxAttempts:      4,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		RetryBudget:      32,
		HedgeDelay:       -1,
		PollInterval:     time.Millisecond,
	}
}

// chaosCluster starts a coordinator with cfg plus n workers.
func chaosCluster(t *testing.T, catalogs *connector.Registry, n int, cfg ClientConfig) (*Coordinator, []*Worker) {
	t.Helper()
	coord := NewCoordinatorWithConfig(catalogs, cfg)
	var workers []*Worker
	for i := 0; i < n; i++ {
		w := NewWorker(catalogs)
		w.GracePeriod = 20 * time.Millisecond
		if err := w.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		coord.AddWorker(w.Addr())
		workers = append(workers, w)
	}
	return coord, workers
}

func chaosSession() *planner.Session {
	return &planner.Session{Catalog: "hive", Schema: "tpch", User: "chaos", Properties: map[string]string{}}
}

// chaosBaseline runs every chaos query on a clean, fault-free cluster and
// returns the expected row sets.
func chaosBaseline(t *testing.T) []string {
	t.Helper()
	coord, _ := chaosCluster(t, chaosCatalogs(t, nil), 3, ClientConfig{})
	out := make([]string, len(chaosQueries))
	for i, q := range chaosQueries {
		out[i] = mustRows(t, coord, q)
	}
	return out
}

// mustRows runs one query and renders its rows for exact comparison.
func mustRows(t *testing.T, coord *Coordinator, query string) string {
	t.Helper()
	res, err := coord.Query(chaosSession(), query)
	if err != nil {
		t.Fatalf("query failed: %v\n  query: %s", err, query)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprint(rows)
}

// watchdog fails the test if fn has not returned within d — the "never a
// hang" half of the chaos contract, enforced with a deadline well under the
// go test timeout so the seed gets logged.
func watchdog(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("chaos query still running after %v — the cluster hung instead of failing cleanly", d)
	}
}

// counter reads one counter from the coordinator's metrics registry.
func counter(coord *Coordinator, name string) int64 {
	return coord.Obs().Snapshot().Counters[name]
}

// TestChaosWorkerDeathReschedules: worker 0 accepts tasks but every result
// fetch to it fails (the deterministic stand-in for a node dying mid-query).
// Every query must still return the exact baseline rows, and the recovery
// must be visible as task_retries — dead-worker splits re-executed on
// survivors.
func TestChaosWorkerDeathReschedules(t *testing.T) {
	want := chaosBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		coord, workers := chaosCluster(t, chaosCatalogs(t, inj), 3, chaosConfig(inj))
		inj.FaultHTTP(fault.HTTPRule{Target: workers[0].Addr(), Path: "/results", DropProb: 1})

		watchdog(t, 60*time.Second, func() {
			for i, q := range chaosQueries {
				if got := mustRows(t, coord, q); got != want[i] {
					t.Errorf("seed %d query %d: rows diverged from clean baseline\ngot  %s\nwant %s", seed, i, got, want[i])
				}
			}
		})
		if n := counter(coord, "task_retries"); n < 1 {
			t.Errorf("seed %d: task_retries = %d, want >= 1 (no split was rescheduled off the dead worker)", seed, n)
		}
	}
}

// TestChaosWorkerKilledMidQuery: a worker is actually torn down (listener
// closed) while queries run. Queries must return exact rows — the scheduler
// and retry layers route around the corpse.
func TestChaosWorkerKilledMidQuery(t *testing.T) {
	want := chaosBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		coord, workers := chaosCluster(t, chaosCatalogs(t, inj), 3, chaosConfig(inj))

		var once sync.Once
		kill := func() { once.Do(func() { workers[0].Close() }) }
		go func() {
			time.Sleep(time.Duration(5+seed%10) * time.Millisecond)
			kill()
		}()
		watchdog(t, 60*time.Second, func() {
			for i, q := range chaosQueries {
				if got := mustRows(t, coord, q); got != want[i] {
					t.Errorf("seed %d query %d: rows diverged after worker kill\ngot  %s\nwant %s", seed, i, got, want[i])
				}
			}
		})
		kill()
	}
}

// TestChaosDroppedRPCs: 10% of every coordinator→worker RPC fails before
// reaching the server. The per-RPC retry layer (and, when retries run dry,
// task rescheduling) must absorb all of it: every query exact.
func TestChaosDroppedRPCs(t *testing.T) {
	want := chaosBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		coord, _ := chaosCluster(t, chaosCatalogs(t, inj), 3, chaosConfig(inj))
		inj.FaultHTTP(fault.HTTPRule{DropProb: 0.1})

		watchdog(t, 60*time.Second, func() {
			for i, q := range chaosQueries {
				if got := mustRows(t, coord, q); got != want[i] {
					t.Errorf("seed %d query %d: rows diverged under 10%% RPC drops\ngot  %s\nwant %s", seed, i, got, want[i])
				}
			}
		})
		if n := inj.Counters.Dropped.Load(); n == 0 {
			t.Errorf("seed %d: injector dropped nothing — the chaos run was a no-op", seed)
		}
	}
}

// TestChaosStragglerHedging: storage reads stall and most result fetches are
// slow. With hedging enabled, duplicate fetches race the stragglers
// (idempotent paged protocol makes the duplicates safe); results stay exact
// and hedged_fetches shows the mitigation actually fired.
func TestChaosStragglerHedging(t *testing.T) {
	want := chaosBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		cfg := chaosConfig(inj)
		cfg.HedgeDelay = 40 * time.Millisecond
		coord, _ := chaosCluster(t, chaosCatalogs(t, inj), 3, cfg)
		inj.FaultFS(fault.FSRule{Ops: []string{"read"}, DelayProb: 0.3, Delay: 20 * time.Millisecond})
		inj.FaultHTTP(fault.HTTPRule{Path: "/results", DelayProb: 0.75, Delay: 250 * time.Millisecond})

		watchdog(t, 60*time.Second, func() {
			if got := mustRows(t, coord, chaosQueries[0]); got != want[0] {
				t.Errorf("seed %d: rows diverged under stalled reads\ngot  %s\nwant %s", seed, got, want[0])
			}
		})
		if n := counter(coord, "hedged_fetches"); n < 1 {
			t.Errorf("seed %d: hedged_fetches = %d, want >= 1 (stragglers were never hedged)", seed, n)
		}
	}
}

// TestChaosFlakyStorage: one warehouse file's reads fail intermittently.
// Tasks over that split fail and re-execute (budget permitting) until a clean
// attempt lands; rows stay exact.
func TestChaosFlakyStorage(t *testing.T) {
	want := chaosBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		cfg := chaosConfig(inj)
		cfg.RetryBudget = 64
		coord, _ := chaosCluster(t, chaosCatalogs(t, inj), 3, cfg)
		inj.FaultFS(fault.FSRule{Path: "lineitem/part-00003", Ops: []string{"read"}, ErrProb: 0.02})

		watchdog(t, 60*time.Second, func() {
			for i, q := range chaosQueries {
				if got := mustRows(t, coord, q); got != want[i] {
					t.Errorf("seed %d query %d: rows diverged under flaky storage\ngot  %s\nwant %s", seed, i, got, want[i])
				}
			}
		})
	}
}

// TestChaosFullPartition: every RPC is dropped — the coordinator is cut off
// from all workers. The query must fail with a typed availability error
// within the retry budget. Hanging (or a wrong answer) is the bug.
func TestChaosFullPartition(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		coord, _ := chaosCluster(t, chaosCatalogs(t, inj), 3, chaosConfig(inj))
		inj.FaultHTTP(fault.HTTPRule{DropProb: 1})

		watchdog(t, 30*time.Second, func() {
			_, err := coord.Query(chaosSession(), chaosQueries[0])
			if err == nil {
				t.Errorf("seed %d: query succeeded with every RPC dropped", seed)
				return
			}
			if !IsUnavailable(err) {
				t.Errorf("seed %d: err = %v, want a typed availability error (IsUnavailable)", seed, err)
			}
		})
	}
}

// TestChaosParallelDriversDroppedRPCs: every worker runs its tasks with 4
// driver pipelines (intra-task parallelism) while 10% of coordinator→worker
// RPCs drop. Results must stay row-exact, and — the teardown invariant — no
// driver or exchange goroutine may outlive its task: after the workload
// drains and the workers shut down (aborting any task whose DELETE was
// dropped), the process goroutine count must return to the pre-cluster
// baseline.
func TestChaosParallelDriversDroppedRPCs(t *testing.T) {
	want := chaosBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		catalogs := chaosCatalogs(t, inj)

		baseGoroutines := runtime.NumGoroutine()
		coord := NewCoordinatorWithConfig(catalogs, chaosConfig(inj))
		var workers []*Worker
		for i := 0; i < 3; i++ {
			w := NewWorker(catalogs)
			w.GracePeriod = 20 * time.Millisecond
			w.TaskConcurrency = 4
			if err := w.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { w.Close() })
			coord.AddWorker(w.Addr())
			workers = append(workers, w)
		}
		inj.FaultHTTP(fault.HTTPRule{DropProb: 0.1})

		watchdog(t, 60*time.Second, func() {
			for i, q := range chaosQueries {
				if got := mustRows(t, coord, q); got != want[i] {
					t.Errorf("seed %d query %d: rows diverged with 4 drivers under 10%% RPC drops\ngot  %s\nwant %s", seed, i, got, want[i])
				}
			}
		})
		if n := inj.Counters.Dropped.Load(); n == 0 {
			t.Errorf("seed %d: injector dropped nothing — the chaos run was a no-op", seed)
		}

		// Teardown leak check: close the workers (aborting tasks whose DELETE
		// was dropped) and poll until the goroutine count is back to the
		// baseline. Idle HTTP connections park goroutines in the shared
		// default transport, so shed them while polling.
		for _, w := range workers {
			w.Close()
		}
		deadline := time.Now().Add(10 * time.Second)
		for {
			if tr, ok := http.DefaultTransport.(*http.Transport); ok {
				tr.CloseIdleConnections()
			}
			if runtime.NumGoroutine() <= baseGoroutines {
				break
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("seed %d: goroutine leak after multi-driver teardown: %d running, baseline %d\n%s",
					seed, runtime.NumGoroutine(), baseGoroutines, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// ---------------------------------------------------------------------------
// Memory-pressure chaos (§XII.C): the degradation ladder under concurrency.
// The invariant mirrors the reliability contract above — under a pool far too
// small for the working set, every query either returns row-exact results
// (admitted, possibly queued, possibly spilled) or fails with a typed
// resource error. Never a hang, never a wrong row, never a leaked spill file.

// chaosMemQueries are deliberately memory-hungry: a wide total-order sort, a
// near-distinct grouped aggregation, and a self-join. Each one's working set
// dwarfs the per-query caps the pressure tests configure. The sort projects
// exactly its sort keys, so tied rows are identical and row-exact comparison
// is order-safe even across external-merge tie-breaks.
var chaosMemQueries = []string{
	`SELECT l_orderkey, l_partkey, l_suppkey, l_quantity FROM lineitem
		ORDER BY l_orderkey, l_partkey, l_suppkey, l_quantity`,
	`SELECT l_orderkey, l_partkey, count(*) AS n, sum(l_quantity) AS q FROM lineitem
		GROUP BY l_orderkey, l_partkey ORDER BY l_orderkey, l_partkey`,
	`SELECT count(*) AS n FROM lineitem a JOIN lineitem b ON a.l_orderkey = b.l_orderkey`,
}

// chaosMemBaseline runs the memory-hungry queries on a clean cluster with no
// resource limits at all.
func chaosMemBaseline(t *testing.T) []string {
	t.Helper()
	coord, _ := chaosCluster(t, chaosCatalogs(t, nil), 3, ClientConfig{})
	out := make([]string, len(chaosMemQueries))
	for i, q := range chaosMemQueries {
		out[i] = mustRows(t, coord, q)
	}
	return out
}

// TestChaosMemoryPressure is the headline §XII.C scenario: 8 concurrent
// memory-hungry TPC-H queries against a coordinator whose pool is a fraction
// of their combined working set, with admission capping concurrency at 2 and
// 5% RPC drops layered on top. Every query must complete row-exact (spilling
// under its per-query cap, queueing behind the group) or fail typed; spill
// must actually fire; and afterwards no reservation, queue entry, or spill
// file may survive.
func TestChaosMemoryPressure(t *testing.T) {
	want := chaosMemBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		coord, _ := chaosCluster(t, chaosCatalogs(t, inj), 3, chaosConfig(inj))
		spillDir := t.TempDir()
		if err := coord.ConfigureResources(ResourceConfig{
			MemoryLimit: 256 << 10,
			SpillDir:    spillDir,
			OOMKill:     true,
			Groups: []resource.GroupConfig{{
				Name: "chaos", MaxConcurrency: 2, MaxQueued: 16, PerQueryMemory: 48 << 10,
			}},
		}); err != nil {
			t.Fatal(err)
		}
		inj.FaultHTTP(fault.HTTPRule{DropProb: 0.05})

		const concurrent = 8
		errs := make(chan error, concurrent)
		var successes atomic.Int64
		watchdog(t, 120*time.Second, func() {
			var wg sync.WaitGroup
			for i := 0; i < concurrent; i++ {
				qi := i % len(chaosMemQueries)
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := coord.Query(chaosSession(), chaosMemQueries[qi])
					if err != nil {
						// Typed degradation is an allowed outcome; anything
						// else is a broken ladder.
						if errors.Is(err, resource.ErrQueryKilledOOM) || errors.Is(err, resource.ErrQueueFull) {
							return
						}
						errs <- fmt.Errorf("query %d failed untyped: %w", qi, err)
						return
					}
					rows, err := res.Rows()
					if err != nil {
						errs <- err
						return
					}
					if got := fmt.Sprint(rows); got != want[qi] {
						errs <- fmt.Errorf("query %d rows diverged under memory pressure\ngot  %s\nwant %s", qi, got, want[qi])
						return
					}
					successes.Add(1)
				}()
			}
			wg.Wait()
		})
		close(errs)
		for err := range errs {
			t.Errorf("seed %d: %v", seed, err)
		}
		if successes.Load() == 0 {
			t.Errorf("seed %d: no query succeeded — the ladder degraded straight to the bottom", seed)
		}
		if n := counter(coord, "spills"); n < 1 {
			t.Errorf("seed %d: spills = %d, want >= 1 (the pressure never reached the spill rung)", seed, n)
		}
		// Satellite (b): no spill file outlives its query.
		if runs := coord.SpillManager().LiveRuns(); len(runs) != 0 {
			t.Errorf("seed %d: leaked coordinator spill runs: %v", seed, runs)
		}
		entries, err := os.ReadDir(spillDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Errorf("seed %d: spill dir holds %d files after all queries finished", seed, len(entries))
		}
		snap := coord.Obs().Snapshot()
		if g := snap.Gauges["pool_reserved_bytes"]; g != 0 {
			t.Errorf("seed %d: pool_reserved_bytes = %v after all queries finished", seed, g)
		}
		if g := snap.Gauges["queue_depth"]; g != 0 {
			t.Errorf("seed %d: queue_depth = %v after all queries finished", seed, g)
		}
	}
}

// TestChaosOOMKillerUnderOverload: spill disabled, OOM killer on, and a pool
// two concurrent sorts cannot share. Queries must drain — each either exact
// or typed (killed by the OOM killer, or cleanly refused with Insufficient
// Resources) — the killer must actually fire, and the pool must return to
// zero so the next workload starts clean.
func TestChaosOOMKillerUnderOverload(t *testing.T) {
	want := chaosMemBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		coord, _ := chaosCluster(t, chaosCatalogs(t, inj), 3, chaosConfig(inj))
		if err := coord.ConfigureResources(ResourceConfig{
			MemoryLimit: 64 << 10,
			OOMKill:     true,
			Groups: []resource.GroupConfig{{
				Name: "chaos", MaxConcurrency: 2, MaxQueued: 16,
			}},
		}); err != nil {
			t.Fatal(err)
		}

		const concurrent = 4
		errs := make(chan error, concurrent)
		watchdog(t, 120*time.Second, func() {
			var wg sync.WaitGroup
			for i := 0; i < concurrent; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := coord.Query(chaosSession(), chaosMemQueries[0])
					if err != nil {
						var insufficient execution.ErrInsufficientResources
						if errors.Is(err, resource.ErrQueryKilledOOM) || errors.As(err, &insufficient) {
							return
						}
						errs <- fmt.Errorf("untyped failure: %w", err)
						return
					}
					rows, err := res.Rows()
					if err != nil {
						errs <- err
						return
					}
					if got := fmt.Sprint(rows); got != want[0] {
						errs <- fmt.Errorf("rows diverged under OOM pressure\ngot  %s\nwant %s", got, want[0])
					}
				}()
			}
			wg.Wait()
		})
		close(errs)
		for err := range errs {
			t.Errorf("seed %d: %v", seed, err)
		}
		if n := counter(coord, "oom_kills"); n < 1 {
			t.Errorf("seed %d: oom_kills = %d, want >= 1 (overload never reached the killer)", seed, n)
		}
		if g := coord.Obs().Snapshot().Gauges["pool_reserved_bytes"]; g != 0 {
			t.Errorf("seed %d: pool_reserved_bytes = %v after the overload drained", seed, g)
		}
	}
}

// TestChaosAdmissionRejects: a one-slot, one-queue-entry group hit by 6
// simultaneous queries. Some run (exact rows), some queue, the rest get the
// typed queue-full rejection; afterwards the queue is empty and the group
// usable.
func TestChaosAdmissionRejects(t *testing.T) {
	want := chaosMemBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		coord, _ := chaosCluster(t, chaosCatalogs(t, inj), 3, chaosConfig(inj))
		if err := coord.ConfigureResources(ResourceConfig{
			Groups: []resource.GroupConfig{{Name: "adhoc", MaxConcurrency: 1, MaxQueued: 1}},
		}); err != nil {
			t.Fatal(err)
		}

		const concurrent = 6
		errs := make(chan error, concurrent)
		var successes, rejects atomic.Int64
		watchdog(t, 120*time.Second, func() {
			var wg sync.WaitGroup
			for i := 0; i < concurrent; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					res, err := coord.Query(chaosSession(), chaosMemQueries[0])
					if err != nil {
						if errors.Is(err, resource.ErrQueueFull) {
							rejects.Add(1)
							return
						}
						errs <- fmt.Errorf("untyped failure: %w", err)
						return
					}
					rows, err := res.Rows()
					if err != nil {
						errs <- err
						return
					}
					if got := fmt.Sprint(rows); got != want[0] {
						errs <- fmt.Errorf("admitted query diverged\ngot  %s\nwant %s", got, want[0])
						return
					}
					successes.Add(1)
				}()
			}
			wg.Wait()
		})
		close(errs)
		for err := range errs {
			t.Errorf("seed %d: %v", seed, err)
		}
		if successes.Load() < 1 {
			t.Errorf("seed %d: no query was admitted", seed)
		}
		if rejects.Load() < 1 {
			t.Errorf("seed %d: no query was rejected — 6 submissions fit a 1+1 group?", seed)
		}
		if n := counter(coord, "admission_rejects"); n != rejects.Load() {
			t.Errorf("seed %d: admission_rejects = %d, want %d", seed, n, rejects.Load())
		}
		if g := coord.Obs().Snapshot().Gauges["queue_depth"]; g != 0 {
			t.Errorf("seed %d: queue_depth = %v after the burst drained", seed, g)
		}
	}
}

// TestChaosWorkerSpillCleanup: workers run with their own tiny pools and
// spill dirs, so the partial aggregation spills on the workers themselves.
// Rows stay exact, worker-side spill fires, and worker shutdown removes every
// scratch file (satellite b at the worker layer).
func TestChaosWorkerSpillCleanup(t *testing.T) {
	want := chaosMemBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		catalogs := chaosCatalogs(t, inj)
		coord := NewCoordinatorWithConfig(catalogs, chaosConfig(inj))
		var workers []*Worker
		var dirs []string
		for i := 0; i < 3; i++ {
			w := NewWorker(catalogs)
			w.GracePeriod = 20 * time.Millisecond
			w.MemoryLimit = 32 << 10
			w.SpillDir = t.TempDir()
			dirs = append(dirs, w.SpillDir)
			if err := w.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { w.Close() })
			coord.AddWorker(w.Addr())
			workers = append(workers, w)
		}

		watchdog(t, 60*time.Second, func() {
			if got := mustRows(t, coord, chaosMemQueries[1]); got != want[1] {
				t.Errorf("seed %d: rows diverged with worker-side spill\ngot  %s\nwant %s", seed, got, want[1])
			}
		})
		spilled := false
		for _, w := range workers {
			if w.Obs.Snapshot().Counters["spills"] > 0 {
				spilled = true
			}
			if runs := w.SpillManager().LiveRuns(); len(runs) != 0 {
				t.Errorf("seed %d: worker %s leaked spill runs: %v", seed, w.Addr(), runs)
			}
			w.Close()
		}
		if !spilled {
			t.Errorf("seed %d: no worker ever spilled — the worker pools never saw pressure", seed)
		}
		for _, dir := range dirs {
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 0 {
				t.Errorf("seed %d: worker spill dir %s holds %d files after shutdown", seed, dir, len(entries))
			}
		}
	}
}
