package cluster

import (
	"sync"
	"time"

	"prestolite/internal/obs"
)

// QueryState is the coordinator-side query lifecycle (§VIII: the coordinator
// "tracks task state").
type QueryState string

const (
	QueryQueued   QueryState = "QUEUED"
	QueryPlanning QueryState = "PLANNING"
	QueryRunning  QueryState = "RUNNING"
	QueryFinished QueryState = "FINISHED"
	QueryFailed   QueryState = "FAILED"
)

// StageInfo aggregates one plan fragment's execution: operator statistics
// merged across all tasks of the stage (fragment 0 is the coordinator-side
// root; source fragments run on workers, one task per worker with splits).
type StageInfo struct {
	FragmentID int
	TableKey   string `json:",omitempty"` // source stages: catalog.schema.table scanned
	Tasks      int
	Workers    []string `json:",omitempty"`
	Operators  []obs.OperatorStatsSnapshot
}

// QueryInfo is the per-query document retained in the coordinator's recent
// query ring and served at /v1/query/{id}.
type QueryInfo struct {
	ID    string
	Query string
	User  string
	State QueryState
	Error string `json:",omitempty"`

	// Lifecycle timestamps: Queued -> Planning -> Running -> Finished.
	Queued   time.Time
	Planning time.Time
	Running  time.Time
	Finished time.Time

	// Rows is the number of result rows streamed to the client.
	Rows int64

	// FromCache marks a query served whole from the coordinator's
	// fragment-result cache: no fragments were scheduled, Stages is empty.
	FromCache bool `json:",omitempty"`

	// Resource usage (§XII.C): time spent queued for an admission slot, the
	// query memory context's peak reservation, and bytes spilled to disk.
	QueuedMs        int64 `json:",omitempty"`
	PeakMemoryBytes int64 `json:",omitempty"`
	SpilledBytes    int64 `json:",omitempty"`

	Stages []StageInfo
}

// queryLog is a bounded ring of recent queries (live queries included). All
// QueryInfo mutation and reading goes through its lock; the coordinator
// mutates via update() and handlers read copies via get()/list().
type queryLog struct {
	mu       sync.Mutex
	capacity int
	byID     map[string]*QueryInfo
	order    []string // oldest .. newest
}

func newQueryLog(capacity int) *queryLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &queryLog{capacity: capacity, byID: map[string]*QueryInfo{}}
}

// add registers a query, evicting the oldest beyond capacity.
func (l *queryLog) add(qi *QueryInfo) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byID[qi.ID] = qi
	l.order = append(l.order, qi.ID)
	for len(l.order) > l.capacity {
		delete(l.byID, l.order[0])
		l.order = l.order[1:]
	}
}

// update mutates a query's info under the log lock.
func (l *queryLog) update(id string, fn func(*QueryInfo)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if qi, ok := l.byID[id]; ok {
		fn(qi)
	}
}

// get returns a copy (stages shared read-only; they are replaced wholesale,
// never mutated in place).
func (l *queryLog) get(id string) (QueryInfo, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	qi, ok := l.byID[id]
	if !ok {
		return QueryInfo{}, false
	}
	return *qi, true
}

// list returns copies, most recent first.
func (l *queryLog) list() []QueryInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryInfo, 0, len(l.order))
	for i := len(l.order) - 1; i >= 0; i-- {
		out = append(out, *l.byID[l.order[i]])
	}
	return out
}
