package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"prestolite/internal/execution"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
)

// sessionWith builds a chaos session carrying extra session properties.
func sessionWith(props map[string]string) *planner.Session {
	s := chaosSession()
	for k, v := range props {
		s.Properties[k] = v
	}
	return s
}

// TestSpillTurnsFailureIntoCompletion is the PR's acceptance criterion in
// miniature: a query whose working set exceeds its per-query cap fails typed
// with spill disabled, and completes with identical rows — visibly spilling —
// once spill_enabled is on (the default).
func TestSpillTurnsFailureIntoCompletion(t *testing.T) {
	coordClean, _ := chaosCluster(t, chaosCatalogs(t, nil), 3, ClientConfig{})
	want := mustRows(t, coordClean, chaosMemQueries[0])

	coord, _ := chaosCluster(t, chaosCatalogs(t, nil), 3, ClientConfig{})
	if err := coord.ConfigureResources(ResourceConfig{
		MemoryLimit: 1 << 20,
		SpillDir:    t.TempDir(),
	}); err != nil {
		t.Fatal(err)
	}
	props := map[string]string{"query_max_memory": "32768"}

	// Spill off: the cap is a hard wall.
	props["spill_enabled"] = "false"
	_, err := coord.Query(sessionWith(props), chaosMemQueries[0])
	var insufficient execution.ErrInsufficientResources
	if !errors.As(err, &insufficient) {
		t.Fatalf("with spill disabled, err = %v, want ErrInsufficientResources", err)
	}
	if !errors.Is(err, resource.ErrPoolExhausted) {
		t.Fatalf("cause should be pool exhaustion, got %v", err)
	}

	// Spill on: the same query under the same cap completes identically.
	props["spill_enabled"] = "true"
	got := mustRows(t, coord, chaosMemQueries[0]) // sanity: default session also fine
	if got != want {
		t.Fatalf("uncapped rows diverged\ngot  %s\nwant %s", got, want)
	}
	res, err := coord.Query(sessionWith(props), chaosMemQueries[0])
	if err != nil {
		t.Fatalf("with spill enabled: %v", err)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(rows); got != want {
		t.Fatalf("spilled rows diverged\ngot  %s\nwant %s", got, want)
	}

	// The round trip is visible in the query's observability record.
	infos := coord.QueryInfos()
	qi := infos[0] // most recent first
	if qi.SpilledBytes <= 0 {
		t.Errorf("SpilledBytes = %d, want > 0", qi.SpilledBytes)
	}
	if qi.PeakMemoryBytes <= 0 || qi.PeakMemoryBytes > 32768 {
		t.Errorf("PeakMemoryBytes = %d, want in (0, 32768]", qi.PeakMemoryBytes)
	}
	if n := counter(coord, "spills"); n < 1 {
		t.Errorf("spills counter = %d, want >= 1", n)
	}
	if runs := coord.SpillManager().LiveRuns(); len(runs) != 0 {
		t.Errorf("leaked spill runs: %v", runs)
	}
}

// TestExplainAnalyzeMemoryFooter: EXPLAIN ANALYZE on a resource-configured
// coordinator reports the query's peak reservation and spilled bytes.
func TestExplainAnalyzeMemoryFooter(t *testing.T) {
	coord, _ := chaosCluster(t, chaosCatalogs(t, nil), 3, ClientConfig{})
	if err := coord.ConfigureResources(ResourceConfig{SpillDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	props := map[string]string{"query_max_memory": "32768"}
	res, err := coord.Query(sessionWith(props), "EXPLAIN ANALYZE "+chaosMemQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows()
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, %v", rows, err)
	}
	text := rows[0][0].(string)
	if !strings.Contains(text, "Memory: peak ") || !strings.Contains(text, "spilled ") {
		t.Fatalf("EXPLAIN ANALYZE missing memory footer:\n%s", text)
	}
	if strings.Contains(text, "spilled 0 B") {
		t.Fatalf("capped query reported no spill:\n%s", text)
	}
}

// TestStatementQueueFull429: the HTTP front end maps the typed queue-full
// rejection to 429 Too Many Requests with a Retry-After header — what the
// gateway (and well-behaved clients) key off.
func TestStatementQueueFull429(t *testing.T) {
	coord, _ := chaosCluster(t, chaosCatalogs(t, nil), 1, ClientConfig{})
	if err := coord.ConfigureResources(ResourceConfig{
		Groups: []resource.GroupConfig{{Name: "drained", MaxConcurrency: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&StatementRequest{
		Query: chaosQueries[1], Catalog: "hive", Schema: "tpch", User: "chaos",
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+coord.Addr()+"/v1/statement", "application/x-gob", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if n := counter(coord, "admission_rejects"); n != 1 {
		t.Errorf("admission_rejects = %d, want 1", n)
	}
}

// TestQueryMaxMemoryValidation: a malformed query_max_memory fails the query
// up front with a clear error instead of being silently ignored.
func TestQueryMaxMemoryValidation(t *testing.T) {
	coord, _ := chaosCluster(t, chaosCatalogs(t, nil), 1, ClientConfig{})
	if err := coord.ConfigureResources(ResourceConfig{}); err != nil {
		t.Fatal(err)
	}
	_, err := coord.Query(sessionWith(map[string]string{"query_max_memory": "lots"}), chaosQueries[1])
	if err == nil || !strings.Contains(err.Error(), "query_max_memory") {
		t.Fatalf("err = %v, want query_max_memory parse error", err)
	}
}
