package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/execution"
	"prestolite/internal/planner"
	"prestolite/internal/sql"

	// Geospatial plugin functions must exist on the coordinator too.
	_ "prestolite/internal/geo"
)

// Coordinator is the single stateful node of a cluster (§VIII): it parses,
// plans, optimizes, fragments, schedules tasks onto workers, tracks task
// status and streams results to clients.
type Coordinator struct {
	Catalogs *connector.Registry

	http *http.Server
	ln   net.Listener
	addr string

	mu      sync.Mutex
	workers map[string]*workerClient // addr -> client

	queryCounter atomic.Int64
}

type workerClient struct {
	addr string
	http *http.Client
}

// NewCoordinator creates a coordinator over a catalog registry.
func NewCoordinator(catalogs *connector.Registry) *Coordinator {
	return &Coordinator{Catalogs: catalogs, workers: map[string]*workerClient{}}
}

// AddWorker registers a worker (graceful expansion, §IX: "new workers are
// automatically added to the existing cluster").
func (c *Coordinator) AddWorker(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[addr] = &workerClient{addr: addr, http: &http.Client{Timeout: 30 * time.Second}}
}

// RemoveWorker forgets a worker.
func (c *Coordinator) RemoveWorker(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.workers, addr)
}

// Workers lists registered worker addresses, sorted.
func (c *Coordinator) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.workers))
	for a := range c.workers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// activeWorkers polls worker states, returning only ACTIVE ones — a worker
// in SHUTTING_DOWN stops receiving new tasks (§IX).
func (c *Coordinator) activeWorkers() []*workerClient {
	c.mu.Lock()
	all := make([]*workerClient, 0, len(c.workers))
	for _, w := range c.workers {
		all = append(all, w)
	}
	c.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].addr < all[j].addr })
	var active []*workerClient
	for _, w := range all {
		info, err := w.info()
		if err == nil && info.State == StateActive {
			active = append(active, w)
		}
	}
	return active
}

func (w *workerClient) info() (WorkerInfo, error) {
	resp, err := w.http.Get("http://" + w.addr + "/v1/info")
	if err != nil {
		return WorkerInfo{}, err
	}
	defer resp.Body.Close()
	var info WorkerInfo
	if err := gob.NewDecoder(resp.Body).Decode(&info); err != nil {
		return WorkerInfo{}, err
	}
	return info, nil
}

// QueryResult is what clients receive.
type QueryResult struct {
	Columns []string
	Types   []string
	Pages   [][]byte // encoded pages
}

// Rows decodes all pages into boxed rows.
func (qr *QueryResult) Rows() ([][]any, error) {
	var out [][]any
	for _, data := range qr.Pages {
		p, err := block.DecodePage(data)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p.Count(); i++ {
			out = append(out, p.Row(i))
		}
	}
	return out, nil
}

// Query plans and executes a SQL query across the cluster.
func (c *Coordinator) Query(session *planner.Session, query string) (*QueryResult, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	q, ok := stmt.(*sql.Query)
	if !ok {
		return nil, fmt.Errorf("cluster: only SELECT queries are supported, got %T", stmt)
	}
	analyzer := &planner.Analyzer{Catalogs: c.Catalogs, Session: session}
	plan, err := analyzer.Analyze(q)
	if err != nil {
		return nil, err
	}
	optimizer := &planner.Optimizer{Catalogs: c.Catalogs, Session: session}
	plan = optimizer.Optimize(plan)
	if err := planner.CheckTypes(plan); err != nil {
		return nil, err
	}

	fragmenter := &planner.Fragmenter{}
	fp := fragmenter.Fragment(plan)

	// Schedule source fragments onto active workers.
	queryID := c.queryCounter.Add(1)
	remotes := map[int][]*taskHandle{}
	if !fp.SingleFragment() {
		workers := c.activeWorkers()
		if len(workers) == 0 {
			return nil, errors.New("cluster: no active workers")
		}
		for id, frag := range fp.Sources {
			conn, err := c.Catalogs.Get(frag.Scan.Catalog)
			if err != nil {
				return nil, err
			}
			splits, err := conn.SplitManager().Splits(frag.Scan.Handle)
			if err != nil {
				return nil, err
			}
			// Split assignment across workers ("scheduler assigns tasks on
			// worker execution slots"): round-robin by default, or affinity
			// scheduling (§VII: RaptorX techniques) — the same split always
			// lands on the same worker, maximizing that worker's footer and
			// fragment-result cache hits.
			affinity := session.Property("affinity_scheduling", "false") == "true"
			assignment := make([][]connector.Split, len(workers))
			for i, s := range splits {
				wi := i % len(workers)
				if affinity {
					h := fnv.New64a()
					h.Write([]byte(s.Description()))
					wi = int(h.Sum64() % uint64(len(workers)))
				}
				assignment[wi] = append(assignment[wi], s)
			}
			for wi, splitSet := range assignment {
				if len(splitSet) == 0 {
					continue
				}
				taskID := fmt.Sprintf("q%d.f%d.t%d", queryID, id, wi)
				th, err := workers[wi].startTask(TaskRequest{
					TaskID:   taskID,
					Fragment: frag.Root,
					TableKey: frag.TableKey,
					Splits:   splitSet,
				})
				if err != nil {
					return nil, fmt.Errorf("cluster: scheduling task on %s: %w", workers[wi].addr, err)
				}
				remotes[id] = append(remotes[id], th)
			}
			if len(remotes[id]) == 0 {
				// No splits at all: register an empty source.
				remotes[id] = nil
			}
		}
	}
	defer func() {
		for _, ths := range remotes {
			for _, th := range ths {
				th.delete()
			}
		}
	}()

	// Execute the root fragment locally, pulling remote pages.
	ctx := &execution.Context{
		Catalogs: c.Catalogs,
		RemoteSources: func(fragmentID int, cols []planner.Column) (execution.Operator, error) {
			return &remoteSourceOperator{tasks: remotes[fragmentID]}, nil
		},
	}
	op, err := execution.Build(fp.Root.Root, ctx)
	if err != nil {
		return nil, err
	}
	pages, err := execution.Drain(op)
	if err != nil {
		return nil, err
	}
	res := &QueryResult{}
	for _, col := range fp.Root.Root.Outputs() {
		res.Columns = append(res.Columns, col.Name)
		res.Types = append(res.Types, col.Type.String())
	}
	for _, p := range pages {
		data, err := block.EncodePage(p)
		if err != nil {
			return nil, err
		}
		res.Pages = append(res.Pages, data)
	}
	return res, nil
}

// ExplainDistributed renders the fragmented plan.
func (c *Coordinator) ExplainDistributed(session *planner.Session, query string) (string, error) {
	q, err := sql.ParseQuery(query)
	if err != nil {
		return "", err
	}
	analyzer := &planner.Analyzer{Catalogs: c.Catalogs, Session: session}
	plan, err := analyzer.Analyze(q)
	if err != nil {
		return "", err
	}
	optimizer := &planner.Optimizer{Catalogs: c.Catalogs, Session: session}
	plan = optimizer.Optimize(plan)
	fragmenter := &planner.Fragmenter{}
	return planner.FormatFragments(fragmenter.Fragment(plan)), nil
}

// ---------------------------------------------------------------------------
// Task client.

type taskHandle struct {
	worker *workerClient
	taskID string
}

func (w *workerClient) startTask(req TaskRequest) (*taskHandle, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, fmt.Errorf("cluster: encode task: %w", err)
	}
	resp, err := w.http.Post("http://"+w.addr+"/v1/task", "application/x-gob", &buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("worker refused task: %s", bytes.TrimSpace(body))
	}
	return &taskHandle{worker: w, taskID: req.TaskID}, nil
}

// next polls the next chunk.
func (t *taskHandle) next() (TaskResultChunk, error) {
	resp, err := t.worker.http.Get("http://" + t.worker.addr + "/v1/task/" + t.taskID + "/results")
	if err != nil {
		return TaskResultChunk{}, err
	}
	defer resp.Body.Close()
	var chunk TaskResultChunk
	if err := gob.NewDecoder(resp.Body).Decode(&chunk); err != nil {
		return TaskResultChunk{}, err
	}
	return chunk, nil
}

func (t *taskHandle) delete() {
	req, _ := http.NewRequest(http.MethodDelete, "http://"+t.worker.addr+"/v1/task/"+t.taskID, nil)
	resp, err := t.worker.http.Do(req)
	if err == nil {
		resp.Body.Close()
	}
}

// remoteSourceOperator streams pages from all tasks of one fragment.
type remoteSourceOperator struct {
	tasks []*taskHandle
	pos   int
}

func (o *remoteSourceOperator) Next() (*block.Page, error) {
	for o.pos < len(o.tasks) {
		th := o.tasks[o.pos]
		chunk, err := th.next()
		if err != nil {
			return nil, fmt.Errorf("cluster: fetching results from %s: %w", th.worker.addr, err)
		}
		if chunk.Err != "" {
			return nil, fmt.Errorf("cluster: task %s failed: %s", th.taskID, chunk.Err)
		}
		if len(chunk.Page) > 0 {
			return block.DecodePage(chunk.Page)
		}
		if chunk.Done {
			o.pos++
			continue
		}
		time.Sleep(time.Millisecond) // task still running
	}
	return nil, io.EOF
}

func (o *remoteSourceOperator) Close() error { return nil }

// ---------------------------------------------------------------------------
// HTTP front end (what the CLI and the gateway talk to).

// StatementRequest is the client query document.
type StatementRequest struct {
	Query      string
	Catalog    string
	Schema     string
	User       string
	Properties map[string]string
}

// Start serves the coordinator API on addr.
func (c *Coordinator) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	c.ln = ln
	c.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/statement", c.handleStatement)
	mux.HandleFunc("/v1/workers", c.handleWorkers)
	mux.HandleFunc("/v1/announce", c.handleAnnounce)
	c.http = &http.Server{Handler: mux}
	go c.http.Serve(ln)
	return nil
}

// Addr returns the coordinator address.
func (c *Coordinator) Addr() string { return c.addr }

// Close stops the server.
func (c *Coordinator) Close() error {
	if c.http != nil {
		return c.http.Close()
	}
	return nil
}

func (c *Coordinator) handleStatement(rw http.ResponseWriter, r *http.Request) {
	var req StatementRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	session := &planner.Session{Catalog: req.Catalog, Schema: req.Schema, User: req.User, Properties: req.Properties}
	res, err := c.Query(session, req.Query)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	gob.NewEncoder(rw).Encode(res)
}

func (c *Coordinator) handleWorkers(rw http.ResponseWriter, r *http.Request) {
	gob.NewEncoder(rw).Encode(c.Workers())
}

// handleAnnounce lets workers self-register (graceful expansion: start a
// worker configured with the coordinator address and it joins the cluster).
func (c *Coordinator) handleAnnounce(rw http.ResponseWriter, r *http.Request) {
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		http.Error(rw, "missing addr", http.StatusBadRequest)
		return
	}
	c.AddWorker(addr)
	rw.WriteHeader(http.StatusOK)
}

// Client executes queries against a remote coordinator.
type Client struct {
	Addr string
	HTTP *http.Client
}

// NewClient targets a coordinator.
func NewClient(addr string) *Client {
	return &Client{Addr: addr, HTTP: &http.Client{Timeout: 120 * time.Second}}
}

// Query runs one statement.
func (cl *Client) Query(req StatementRequest) (*QueryResult, error) {
	return cl.QueryWithIdentity(req, req.User, "")
}

// QueryWithIdentity runs a statement carrying user/group headers, which a
// gateway (§VIII) uses to pick the target cluster; the 307 redirect replays
// the request against the chosen coordinator.
func (cl *Client) QueryWithIdentity(req StatementRequest, user, group string) (*QueryResult, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, "http://"+cl.Addr+"/v1/statement", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/x-gob")
	httpReq.Header.Set("X-Presto-User", user)
	httpReq.Header.Set("X-Presto-Group", group)
	hc := cl.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 120 * time.Second}
	}
	resp, err := hc.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("query failed: %s", bytes.TrimSpace(body))
	}
	var out QueryResult
	if err := gob.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
