package cluster

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/cache"
	"prestolite/internal/connector"
	"prestolite/internal/execution"
	"prestolite/internal/obs"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
	"prestolite/internal/sql"
	"prestolite/internal/types"

	// Geospatial plugin functions must exist on the coordinator too.
	_ "prestolite/internal/geo"
)

// Coordinator is the single stateful node of a cluster (§VIII): it parses,
// plans, optimizes, fragments, schedules tasks onto workers, tracks task
// status and streams results to clients. It also tracks every query as a
// QueryInfo (state, lifecycle timestamps, per-stage operator statistics) in
// a bounded ring served at /v1/query, and publishes cluster-level metrics —
// including the queries_outstanding gauge the gateway routes on — at
// /v1/stats.
type Coordinator struct {
	Catalogs *connector.Registry

	// DrainGrace bounds how long GracefulDrain waits for in-flight queries
	// to finish before aborting the stragglers with ErrCoordinatorDraining.
	// 0 means the 5s default.
	DrainGrace time.Duration

	cfg ClientConfig

	http *http.Server
	ln   net.Listener
	addr string

	mu       sync.Mutex
	workers  map[string]*workerClient // addr -> client
	inflight map[string]map[*taskHandle]struct{}

	// draining latches once GracefulDrain starts: new statements are
	// refused with the typed, retryable ErrCoordinatorDraining.
	draining atomic.Bool
	// liveMu guards live, the queryID -> queryState registry of in-flight
	// queries; the drain aborts through it.
	liveMu sync.Mutex
	live   map[string]*queryState

	queryCounter atomic.Int64
	queries      *queryLog
	obs          *obs.Registry

	// res is the resource-management subsystem (memory pool, admission
	// groups, spill, OOM killer); nil until ConfigureResources is called.
	res *coordResources

	// resultCache is tier 2 of the cache hierarchy: whole query results
	// keyed by canonical plan text plus every scanned table's snapshot
	// version. nil until EnableResultCache.
	resultCache       *cache.ResultCache[cachedResult]
	resultUncacheable *obs.Counter

	submitted     *obs.Counter
	finished      *obs.Counter
	failed        *obs.Counter
	httpWriteErrs *obs.Counter
	taskRetries   *obs.Counter
	rpcRetries    *obs.Counter
	hedgedFetches *obs.Counter
	drains        *obs.Counter
	outstanding   *obs.Gauge
	queryWall     *obs.Histogram

	affinityPlaced   *obs.Counter
	affinityOverflow *obs.Counter
}

type workerClient struct {
	addr string
	http *http.Client
}

// NewCoordinator creates a coordinator over a catalog registry with the
// default client configuration.
func NewCoordinator(catalogs *connector.Registry) *Coordinator {
	return NewCoordinatorWithConfig(catalogs, ClientConfig{})
}

// NewCoordinatorWithConfig creates a coordinator with explicit timeouts,
// transport, clock and retry policy (zero fields take defaults). Chaos
// tests inject their fault transport and tightened timeouts here.
func NewCoordinatorWithConfig(catalogs *connector.Registry, cfg ClientConfig) *Coordinator {
	c := &Coordinator{
		Catalogs: catalogs,
		cfg:      cfg.WithDefaults(),
		workers:  map[string]*workerClient{},
		inflight: map[string]map[*taskHandle]struct{}{},
		live:     map[string]*queryState{},
		queries:  newQueryLog(128),
		obs:      obs.NewRegistry(),
	}
	c.submitted = c.obs.Counter("queries_submitted")
	c.finished = c.obs.Counter("queries_finished")
	c.failed = c.obs.Counter("queries_failed")
	c.httpWriteErrs = c.obs.Counter("http_write_errors")
	c.taskRetries = c.obs.Counter("task_retries")
	c.rpcRetries = c.obs.Counter("rpc_retries")
	c.hedgedFetches = c.obs.Counter("hedged_fetches")
	c.drains = c.obs.Counter("coordinator_drains")
	c.outstanding = c.obs.Gauge("queries_outstanding")
	c.queryWall = c.obs.Histogram("query_wall")
	c.affinityPlaced = c.obs.Counter("splits_affinity_placed")
	c.affinityOverflow = c.obs.Counter("splits_affinity_overflow")
	c.obs.GaugeFunc("coordinator_draining", func() float64 {
		if c.draining.Load() {
			return 1
		}
		return 0
	})
	registerCatalogMetrics(catalogs, c.obs)
	return c
}

// Obs exposes the coordinator's metrics registry (served at /v1/stats).
func (c *Coordinator) Obs() *obs.Registry { return c.obs }

// cachedResult is one coordinator result-cache entry: the finished result
// plus the row count QueryInfo reports on a hit.
type cachedResult struct {
	res  *QueryResult
	rows int64
}

// EnableResultCache turns on the coordinator's fragment-result cache (§VII,
// tier 2 of the hierarchy): SELECT results are cached under a key built from
// the canonical optimized plan and the snapshot version of every table it
// scans. Version-in-key makes invalidation implicit — a metastore partition
// add, a druid segment seal or a hybrid boundary move bumps the version and
// the stale entry simply stops being addressed; ttl and maxBytes only bound
// residency. Queries over tables whose connectors cannot report a snapshot
// version are never cached (counted in coordinator.cache.result.uncacheable).
func (c *Coordinator) EnableResultCache(capacity int, maxBytes int64, ttl time.Duration) {
	rc := cache.NewResultCache[cachedResult](capacity, maxBytes, ttl)
	rc.SetClock(c.cfg.Clock)
	rc.RegisterObs(c.obs, "coordinator.cache.result")
	c.resultUncacheable = c.obs.Counter("coordinator.cache.result.uncacheable")
	c.resultCache = rc
}

// ResultCacheLen returns the resident entry count (0 when disabled).
func (c *Coordinator) ResultCacheLen() int {
	if c.resultCache == nil {
		return 0
	}
	return c.resultCache.Len()
}

// InvalidateResultCache is the explicit escape hatch: it empties the result
// cache and returns the number of entries dropped.
func (c *Coordinator) InvalidateResultCache() int {
	if c.resultCache == nil {
		return 0
	}
	return c.resultCache.InvalidateAll()
}

// resultCacheKey derives the cache key for an optimized plan: the canonical
// plan text (handles render their pushed state, so two queries normalizing
// to the same plan share a key) plus a sorted "catalog.schema.table@version"
// stamp per scanned table. ok is false — the query is uncacheable — when the
// plan scans no tables (nothing pins freshness) or any scanned catalog
// cannot report a snapshot version.
func (c *Coordinator) resultCacheKey(plan planner.Node) (string, bool) {
	var stamps []string
	ok := true
	var walk func(n planner.Node)
	walk = func(n planner.Node) {
		if !ok {
			return
		}
		if ts, isScan := n.(*planner.TableScan); isScan {
			conn, err := c.Catalogs.Get(ts.Catalog)
			if err != nil {
				ok = false
				return
			}
			sv, hasVersion := conn.(connector.SnapshotVersioner)
			if !hasVersion {
				ok = false
				return
			}
			v, vok := sv.SnapshotVersion(ts.Schema, ts.Table)
			if !vok {
				ok = false
				return
			}
			stamps = append(stamps, fmt.Sprintf("%s.%s.%s@%d", ts.Catalog, ts.Schema, ts.Table, v))
		}
		for _, child := range n.Children() {
			walk(child)
		}
	}
	walk(plan)
	if !ok || len(stamps) == 0 {
		return "", false
	}
	sort.Strings(stamps)
	return planner.Format(plan) + "\x00" + strings.Join(stamps, ","), true
}

// fragmentSnapshotVersion resolves the snapshot version a source fragment's
// scan is running against (0 when the catalog cannot report one). It rides
// in the TaskRequest so the worker's fragment-result cache key moves with
// the data: without it, a sealed-then-backfilled table would keep serving
// the pre-backfill pages until the worker cache TTL.
func (c *Coordinator) fragmentSnapshotVersion(conn connector.Connector, scan *planner.TableScan) int64 {
	sv, ok := conn.(connector.SnapshotVersioner)
	if !ok || scan == nil {
		return 0
	}
	v, vok := sv.SnapshotVersion(scan.Schema, scan.Table)
	if !vok {
		return 0
	}
	return v
}

// QueryInfos lists the retained recent queries, most recent first.
func (c *Coordinator) QueryInfos() []QueryInfo { return c.queries.list() }

// GetQueryInfo returns one query's info by id.
func (c *Coordinator) GetQueryInfo(id string) (QueryInfo, bool) { return c.queries.get(id) }

// AddWorker registers a worker (graceful expansion, §IX: "new workers are
// automatically added to the existing cluster").
func (c *Coordinator) AddWorker(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[addr] = &workerClient{addr: addr, http: c.cfg.workerHTTPClient()}
}

// RemoveWorker forgets a worker. Tasks still in flight on that worker are
// aborted so the affected queries fail immediately with a descriptive error
// instead of hanging until the 30s HTTP timeout against a vanished node.
func (c *Coordinator) RemoveWorker(addr string) {
	c.mu.Lock()
	delete(c.workers, addr)
	handles := c.inflight[addr]
	delete(c.inflight, addr)
	c.mu.Unlock()
	for th := range handles {
		th.abort(fmt.Errorf("cluster: worker %s was removed from the cluster with task %s in flight", addr, th.taskID))
	}
}

// trackTask registers a handle as in flight on its worker.
func (c *Coordinator) trackTask(th *taskHandle) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.inflight[th.worker.addr]
	if !ok {
		m = map[*taskHandle]struct{}{}
		c.inflight[th.worker.addr] = m
	}
	m[th] = struct{}{}
}

// releaseTask untracks and deletes a task on its worker.
func (c *Coordinator) releaseTask(th *taskHandle) {
	c.mu.Lock()
	if m, ok := c.inflight[th.worker.addr]; ok {
		delete(m, th)
		if len(m) == 0 {
			delete(c.inflight, th.worker.addr)
		}
	}
	c.mu.Unlock()
	th.delete()
}

// Workers lists registered worker addresses, sorted.
func (c *Coordinator) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.workers))
	for a := range c.workers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// errTaskRefused marks a worker rejecting a task assignment (it entered
// SHUTTING_DOWN after the last state poll); the scheduler retries these on
// another worker instead of failing the query.
var errTaskRefused = errors.New("worker refused task")

// startTaskAnywhere starts req on workers[prefer], falling back to the
// remaining workers on refusal (a worker may begin a graceful shrink
// between the activeWorkers poll and this request — §IX promises in-flight
// queries survive that window) or transport failure (a worker may have just
// died, and the surviving ones can take its splits). Whole-set failures are
// retried with backoff for MaxAttempts rounds before the typed
// ErrSchedulingFailed surfaces. Each round re-checks the query's deadline
// and abort latch, so a drained or overdue query stops scheduling work.
func (c *Coordinator) startTaskAnywhere(qs *queryState, workers []*workerClient, prefer int, req TaskRequest) (*taskHandle, error) {
	var lastErr error
	for round := 1; round <= c.cfg.MaxAttempts; round++ {
		if err := c.checkQuery(qs); err != nil {
			return nil, err
		}
		if round > 1 {
			c.rpcRetries.Inc()
			c.cfg.Clock.Sleep(c.cfg.backoff(round - 1))
		}
		for off := 0; off < len(workers); off++ {
			w := workers[(prefer+off)%len(workers)]
			th, err := w.startTask(req)
			if err == nil {
				return th, nil
			}
			lastErr = fmt.Errorf("scheduling task on %s: %w", w.addr, err)
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrSchedulingFailed, lastErr)
}

// activeWorkers polls worker states, returning only ACTIVE ones — a worker
// in SHUTTING_DOWN stops receiving new tasks (§IX).
func (c *Coordinator) activeWorkers() []*workerClient {
	c.mu.Lock()
	all := make([]*workerClient, 0, len(c.workers))
	for _, w := range c.workers {
		all = append(all, w)
	}
	c.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].addr < all[j].addr })
	var active []*workerClient
	for _, w := range all {
		info, err := w.info()
		if err == nil && info.State == StateActive {
			active = append(active, w)
		}
	}
	return active
}

// activeWorkersExcept returns the active workers other than addr — the
// candidate set for rescheduling a task away from a failed worker.
func (c *Coordinator) activeWorkersExcept(addr string) []*workerClient {
	var out []*workerClient
	for _, w := range c.activeWorkers() {
		if w.addr != addr {
			out = append(out, w)
		}
	}
	return out
}

func (w *workerClient) info() (WorkerInfo, error) {
	resp, err := w.http.Get("http://" + w.addr + "/v1/info")
	if err != nil {
		return WorkerInfo{}, err
	}
	defer resp.Body.Close()
	var info WorkerInfo
	if err := gob.NewDecoder(resp.Body).Decode(&info); err != nil {
		return WorkerInfo{}, err
	}
	return info, nil
}

// QueryResult is what clients receive.
type QueryResult struct {
	Columns []string
	Types   []string
	Pages   [][]byte // encoded pages
}

// Rows decodes all pages into boxed rows.
func (qr *QueryResult) Rows() ([][]any, error) {
	var out [][]any
	for _, data := range qr.Pages {
		p, err := block.DecodePage(data)
		if err != nil {
			return nil, err
		}
		for i := 0; i < p.Count(); i++ {
			out = append(out, p.Row(i))
		}
	}
	return out, nil
}

// Query plans and executes a SQL statement across the cluster. SELECT
// returns rows; EXPLAIN renders the fragmented plan; EXPLAIN ANALYZE
// executes the statement and renders the plan annotated with the actual
// per-operator statistics gathered from every worker task.
func (c *Coordinator) Query(session *planner.Session, query string) (*QueryResult, error) {
	if c.draining.Load() {
		// Refused before any state is created: the statement is safe to
		// resubmit verbatim on another cluster.
		return nil, ErrCoordinatorDraining
	}
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch t := stmt.(type) {
	case *sql.Query:
		res, _, err := c.runTracked(session, t, query, false)
		return res, err
	case *sql.Explain:
		q, ok := t.Stmt.(*sql.Query)
		if !ok {
			return nil, fmt.Errorf("cluster: EXPLAIN supports only SELECT, got %T", t.Stmt)
		}
		if !t.Analyze {
			plan, err := c.planQuery(session, q)
			if err != nil {
				return nil, err
			}
			fragmenter := &planner.Fragmenter{}
			return planTextResult(planner.FormatFragments(fragmenter.Fragment(plan)))
		}
		_, text, err := c.runTracked(session, q, query, true)
		if err != nil {
			return nil, err
		}
		return planTextResult(text)
	default:
		return nil, fmt.Errorf("cluster: unsupported statement %T", stmt)
	}
}

func (c *Coordinator) planQuery(session *planner.Session, q *sql.Query) (planner.Node, error) {
	analyzer := &planner.Analyzer{Catalogs: c.Catalogs, Session: session}
	plan, err := analyzer.Analyze(q)
	if err != nil {
		return nil, err
	}
	optimizer := &planner.Optimizer{Catalogs: c.Catalogs, Session: session}
	plan = optimizer.Optimize(plan)
	if err := planner.CheckTypes(plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// planTextResult packages rendered plan text as a one-row result.
func planTextResult(text string) (*QueryResult, error) {
	data, err := block.EncodePage(block.NewPage(block.FromValues(types.Varchar, text)))
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		Columns: []string{"Query Plan"},
		Types:   []string{types.Varchar.String()},
		Pages:   [][]byte{data},
	}, nil
}

// runTracked wraps execQuery with QueryInfo lifecycle tracking and the
// cluster-level metrics the gateway routes on.
func (c *Coordinator) runTracked(session *planner.Session, q *sql.Query, rawSQL string, analyze bool) (*QueryResult, string, error) {
	queryID := fmt.Sprintf("q%d", c.queryCounter.Add(1))
	c.queries.add(&QueryInfo{ID: queryID, Query: rawSQL, User: session.User, State: QueryQueued, Queued: c.cfg.Clock.Now()})
	c.submitted.Inc()
	c.outstanding.Add(1)
	start := c.cfg.Clock.Now()

	res, text, err := c.admitAndExec(session, q, queryID, analyze, start)

	c.outstanding.Add(-1)
	c.queryWall.Observe(c.cfg.Clock.Now().Sub(start))
	if err != nil {
		c.failed.Inc()
		now := c.cfg.Clock.Now()
		c.queries.update(queryID, func(qi *QueryInfo) {
			qi.State = QueryFailed
			qi.Error = err.Error()
			qi.Finished = now
		})
		return nil, "", err
	}
	c.finished.Inc()
	return res, text, nil
}

// admitAndExec runs the admission-control rung of the §XII.C degradation
// ladder before execution: the query waits in its resource group's FIFO
// queue (staying in the QUEUED state it was added with) until a concurrency
// slot frees up. A full queue rejects immediately with the typed
// resource.ErrQueueFull, which the HTTP front end maps to 429.
func (c *Coordinator) admitAndExec(session *planner.Session, q *sql.Query, queryID string, analyze bool, queued time.Time) (*QueryResult, string, error) {
	if g := c.groupFor(session); g != nil {
		release, err := g.Acquire(nil)
		if err != nil {
			c.res.admissionRejects.Inc()
			return nil, "", err
		}
		defer release()
		queuedMs := c.cfg.Clock.Now().Sub(queued).Milliseconds()
		c.queries.update(queryID, func(qi *QueryInfo) { qi.QueuedMs = queuedMs })
	}
	return c.execQuery(session, q, queryID, analyze)
}

func (c *Coordinator) execQuery(session *planner.Session, q *sql.Query, queryID string, analyze bool) (*QueryResult, string, error) {
	c.queries.update(queryID, func(qi *QueryInfo) { qi.State = QueryPlanning; qi.Planning = c.cfg.Clock.Now() })
	memLimit, err := queryMemoryLimit(session, c.groupFor(session))
	if err != nil {
		return nil, "", err
	}
	plan, err := c.planQuery(session, q)
	if err != nil {
		return nil, "", err
	}

	// Result-cache probe (tier 2). EXPLAIN ANALYZE always executes — its
	// deliverable is the annotated plan, not the rows — and a session can opt
	// out per query with result_cache=false.
	resultCacheKey := ""
	if c.resultCache != nil && !analyze && session.Property("result_cache", "true") != "false" {
		if key, cacheable := c.resultCacheKey(plan); cacheable {
			if hit, found := c.resultCache.Get(key); found {
				now := c.cfg.Clock.Now()
				c.queries.update(queryID, func(qi *QueryInfo) {
					qi.State = QueryFinished
					qi.Finished = now
					qi.Rows = hit.rows
					qi.FromCache = true
				})
				return hit.res, "", nil
			}
			resultCacheKey = key
		} else {
			c.resultUncacheable.Inc()
		}
	}

	fragmenter := &planner.Fragmenter{}
	fp := fragmenter.Fragment(plan)

	c.queries.update(queryID, func(qi *QueryInfo) { qi.State = QueryRunning; qi.Running = c.cfg.Clock.Now() })

	// Schedule source fragments onto active workers. The query state
	// carries the shared retry budget its remote sources draw on, the
	// query's deadline, and the abort latch the coordinator drain trips.
	qs := newQueryState(&c.cfg)
	if v := session.Property("query_max_run_ms", ""); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 1 {
			return nil, "", fmt.Errorf("cluster: bad query_max_run_ms %q: want a positive integer", v)
		}
		qs.deadline = c.cfg.Clock.Now().Add(time.Duration(ms) * time.Millisecond)
	}
	c.liveMu.Lock()
	c.live[queryID] = qs
	c.liveMu.Unlock()
	defer func() {
		c.liveMu.Lock()
		delete(c.live, queryID)
		c.liveMu.Unlock()
	}()
	remotes := map[int][]*taskHandle{}
	// Intra-task parallelism requested by the session; 0 lets each worker
	// apply its own -task-concurrency default.
	taskDrivers := 0
	if v := session.Property("task_concurrency", ""); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil || d < 1 {
			return nil, "", fmt.Errorf("cluster: bad task_concurrency %q: want a positive integer", v)
		}
		taskDrivers = d
	}
	noVector := session.Property("vectorized_execution", "true") == "false"
	adaptiveRows := 0
	if v := session.Property("adaptive_exchange_rows", ""); v != "" {
		r, err := strconv.Atoi(v)
		if err != nil {
			return nil, "", fmt.Errorf("cluster: bad adaptive_exchange_rows %q: want an integer", v)
		}
		adaptiveRows = r
	}
	bypassRows := 0
	if v := session.Property("partial_aggregation_bypass_rows", ""); v != "" {
		r, err := strconv.Atoi(v)
		if err != nil {
			return nil, "", fmt.Errorf("cluster: bad partial_aggregation_bypass_rows %q: want an integer", v)
		}
		bypassRows = r
	}
	if !fp.SingleFragment() {
		workers, err := c.waitActiveWorkers(qs)
		if err != nil {
			return nil, "", err
		}
		for id, frag := range fp.Sources {
			conn, err := c.Catalogs.Get(frag.Scan.Catalog)
			if err != nil {
				return nil, "", err
			}
			splits, err := conn.SplitManager().Splits(frag.Scan.Handle)
			if err != nil {
				return nil, "", err
			}
			// Split assignment across workers ("scheduler assigns tasks on
			// worker execution slots"): soft-affinity rendezvous hashing by
			// default (§VII: RaptorX techniques) — the same split keeps
			// landing on the same worker, maximizing that worker's footer,
			// chunk and fragment-result cache hits — degrading to the next
			// preferred worker at the load cap. affinity_scheduling=false
			// restores plain round-robin.
			affinity := session.Property("affinity_scheduling", "true") != "false"
			assignment, placed, overflow := assignSplits(splits, workers, affinity)
			c.affinityPlaced.Add(int64(placed))
			c.affinityOverflow.Add(int64(overflow))
			snapVersion := c.fragmentSnapshotVersion(conn, frag.Scan)
			for wi, splitSet := range assignment {
				if len(splitSet) == 0 {
					continue
				}
				taskID := fmt.Sprintf("%s.f%d.t%d", queryID, id, wi)
				th, err := c.startTaskAnywhere(qs, workers, wi, TaskRequest{
					TaskID:               taskID,
					Fragment:             frag.Root,
					TableKey:             frag.TableKey,
					Splits:               splitSet,
					Drivers:              taskDrivers,
					DisableVectorized:    noVector,
					AdaptiveExchangeRows: adaptiveRows,
					PartialAggBypassRows: bypassRows,
					Deadline:             deadlineNanos(qs.deadline),
					SnapshotVersion:      snapVersion,
				})
				if err != nil {
					return nil, "", err
				}
				c.trackTask(th)
				remotes[id] = append(remotes[id], th)
			}
			if len(remotes[id]) == 0 {
				// No splits at all: register an empty source.
				remotes[id] = nil
			}
		}
	}
	defer func() {
		for _, ths := range remotes {
			for _, th := range ths {
				c.releaseTask(th)
			}
		}
	}()

	// Execute the root fragment locally, pulling remote pages, with the
	// coordinator-side operators instrumented. The query gets its own memory
	// context — a child of the process-wide pool capped at its session/group
	// limit — and, when configured, the shared spill manager.
	rootStats := obs.NewTaskStats()
	ctx := &execution.Context{
		Catalogs:             c.Catalogs,
		Stats:                rootStats,
		DisableVectorized:    noVector,
		AdaptiveExchangeRows: adaptiveRows,
		PartialAggBypassRows: bypassRows,
		RemoteSources: func(fragmentID int, cols []planner.Column) (execution.Operator, error) {
			return &remoteSourceOperator{c: c, qs: qs, tasks: remotes[fragmentID]}, nil
		},
	}
	if c.res != nil {
		qpool := c.res.pool.Child(queryID, memLimit)
		defer qpool.Close()
		ctx.Memory = qpool
		if c.res.spill != nil && session.Property("spill_enabled", "true") == "true" {
			ctx.Spill = c.res.spill
		}
	} else {
		ctx.MemoryLimit = memLimit
	}
	op, err := execution.Build(fp.Root.Root, ctx)
	if err != nil {
		return nil, "", err
	}
	pages, err := execution.Drain(op)
	if err != nil {
		return nil, "", err
	}

	// Aggregate per-stage operator statistics: fragment 0 is the
	// coordinator's root; each source fragment merges across its tasks.
	stages := []StageInfo{{FragmentID: 0, Tasks: 1, Operators: rootStats.Snapshot()}}
	for id := 1; id < 1+len(fp.Sources); id++ {
		frag, ok := fp.Sources[id]
		if !ok {
			continue
		}
		stage := StageInfo{FragmentID: id, TableKey: frag.TableKey, Tasks: len(remotes[id])}
		var taskSnaps [][]obs.OperatorStatsSnapshot
		for _, th := range remotes[id] {
			taskSnaps = append(taskSnaps, th.taskStats())
			stage.Workers = append(stage.Workers, th.worker.addr)
		}
		stage.Operators = obs.MergeSnapshots(taskSnaps...)
		stages = append(stages, stage)
	}

	res := &QueryResult{}
	for _, col := range fp.Root.Root.Outputs() {
		res.Columns = append(res.Columns, col.Name)
		res.Types = append(res.Types, col.Type.String())
	}
	var rows int64
	for _, p := range pages {
		data, err := block.EncodePage(p)
		if err != nil {
			return nil, "", err
		}
		rows += int64(p.Count())
		res.Pages = append(res.Pages, data)
	}

	now := c.cfg.Clock.Now()
	peak, spilled := int64(0), int64(0)
	if ctx.Memory != nil {
		peak, spilled = ctx.Memory.Peak(), ctx.Memory.Spilled()
	}
	c.queries.update(queryID, func(qi *QueryInfo) {
		qi.State = QueryFinished
		qi.Finished = now
		qi.Rows = rows
		qi.Stages = stages
		qi.PeakMemoryBytes = peak
		qi.SpilledBytes = spilled
	})

	if resultCacheKey != "" {
		size := int64(0)
		for _, data := range res.Pages {
			size += int64(len(data))
		}
		c.resultCache.Put(resultCacheKey, cachedResult{res: res, rows: rows}, size)
	}

	text := ""
	if analyze {
		text = formatAnalyzedFragments(fp, stages) + c.obs.Snapshot().CacheSection() + memFooter(ctx.Memory)
	}
	return res, text, nil
}

// formatAnalyzedFragments renders the distributed EXPLAIN ANALYZE: every
// fragment's tree annotated with the stats aggregated in stages.
func formatAnalyzedFragments(fp *planner.FragmentedPlan, stages []StageInfo) string {
	byFrag := map[int]StageInfo{}
	for _, s := range stages {
		byFrag[s.FragmentID] = s
	}
	out := "Fragment 0 (coordinator):\n" + execution.FormatAnnotated(fp.Root.Root, byFrag[0].Operators)
	for id := 1; id < 1+len(fp.Sources); id++ {
		frag, ok := fp.Sources[id]
		if !ok {
			continue
		}
		stage := byFrag[id]
		out += fmt.Sprintf("Fragment %d (source, table %s, %d tasks):\n%s",
			id, frag.TableKey, stage.Tasks, execution.FormatAnnotated(frag.Root, stage.Operators))
	}
	return out
}

// ExplainDistributed renders the fragmented plan.
func (c *Coordinator) ExplainDistributed(session *planner.Session, query string) (string, error) {
	q, err := sql.ParseQuery(query)
	if err != nil {
		return "", err
	}
	analyzer := &planner.Analyzer{Catalogs: c.Catalogs, Session: session}
	plan, err := analyzer.Analyze(q)
	if err != nil {
		return "", err
	}
	optimizer := &planner.Optimizer{Catalogs: c.Catalogs, Session: session}
	plan = optimizer.Optimize(plan)
	fragmenter := &planner.Fragmenter{}
	return planner.FormatFragments(fragmenter.Fragment(plan)), nil
}

// ---------------------------------------------------------------------------
// Task client.

type taskHandle struct {
	worker *workerClient
	taskID string
	// req is kept so a dead worker's task can be rescheduled onto a
	// survivor: the same fragment over the same splits.
	req TaskRequest

	mu       sync.Mutex
	stats    []obs.OperatorStatsSnapshot // from the Done chunk, if seen
	abortErr error
}

// abort marks the handle failed (worker removed); readers see the error on
// their next poll instead of timing out against a vanished node.
func (t *taskHandle) abort(err error) {
	t.mu.Lock()
	if t.abortErr == nil {
		t.abortErr = err
	}
	t.mu.Unlock()
}

func (t *taskHandle) aborted() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.abortErr
}

func (t *taskHandle) setStats(s []obs.OperatorStatsSnapshot) {
	t.mu.Lock()
	t.stats = s
	t.mu.Unlock()
}

// taskStats returns the task's operator statistics. Tasks drained to
// completion shipped them on the Done chunk; tasks abandoned early (LIMIT
// satisfied upstream) are asked for a live snapshot.
func (t *taskHandle) taskStats() []obs.OperatorStatsSnapshot {
	t.mu.Lock()
	s := t.stats
	t.mu.Unlock()
	if s != nil {
		return s
	}
	resp, err := t.worker.http.Get("http://" + t.worker.addr + "/v1/task/" + t.taskID + "/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	if err := gob.NewDecoder(resp.Body).Decode(&s); err != nil {
		return nil
	}
	return s
}

func (w *workerClient) startTask(req TaskRequest) (*taskHandle, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, fmt.Errorf("cluster: encode task: %w", err)
	}
	resp, err := w.http.Post("http://"+w.addr+"/v1/task", "application/x-gob", &buf)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024)) // best-effort error detail
		return nil, fmt.Errorf("%w: %s", errTaskRefused, bytes.TrimSpace(body))
	}
	return &taskHandle{worker: w, taskID: req.TaskID, req: req}, nil
}

// fetchPage fetches result page n by index. Naming the page (instead of the
// worker keeping a cursor) makes the fetch idempotent, which is what allows
// the retry and hedging layers to fire duplicates safely.
func (t *taskHandle) fetchPage(page int) (TaskResultChunk, error) {
	resp, err := t.worker.http.Get(fmt.Sprintf("http://%s/v1/task/%s/results?page=%d", t.worker.addr, t.taskID, page))
	if err != nil {
		return TaskResultChunk{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024)) // best-effort error detail
		return TaskResultChunk{}, fmt.Errorf("task %s on %s: status %d: %s",
			t.taskID, t.worker.addr, resp.StatusCode, bytes.TrimSpace(body))
	}
	var chunk TaskResultChunk
	if err := gob.NewDecoder(resp.Body).Decode(&chunk); err != nil {
		return TaskResultChunk{}, err
	}
	return chunk, nil
}

func (t *taskHandle) delete() {
	req, err := http.NewRequest(http.MethodDelete, "http://"+t.worker.addr+"/v1/task/"+t.taskID, nil)
	if err != nil {
		return // static URL; cannot happen
	}
	resp, err := t.worker.http.Do(req)
	if err == nil {
		_ = resp.Body.Close() // best-effort cleanup of a fire-and-forget DELETE
	}
}

// remoteSourceOperator streams pages from all tasks of one fragment. Each
// task is drained to completion (through the retry/reschedule/hedging
// machinery in retry.go) before any of its pages flow downstream, so a task
// that dies halfway is replaced wholesale and can never leak a partial —
// and therefore wrong — page stream into the query.
type remoteSourceOperator struct {
	c     *Coordinator
	qs    *queryState
	tasks []*taskHandle

	pos     int
	buf     []*block.Page // drained pages of tasks[pos]
	bufPos  int
	drained bool
}

func (o *remoteSourceOperator) Next() (*block.Page, error) {
	for o.pos < len(o.tasks) {
		if !o.drained {
			pages, err := o.c.drainTask(o.qs, o.tasks, o.pos)
			if err != nil {
				return nil, err
			}
			o.buf, o.bufPos, o.drained = pages, 0, true
		}
		if o.bufPos < len(o.buf) {
			p := o.buf[o.bufPos]
			o.bufPos++
			return p, nil
		}
		o.pos++
		o.buf, o.drained = nil, false
	}
	return nil, io.EOF
}

func (o *remoteSourceOperator) Close() error { return nil }

// ---------------------------------------------------------------------------
// HTTP front end (what the CLI and the gateway talk to).

// StatementRequest is the client query document.
type StatementRequest struct {
	Query      string
	Catalog    string
	Schema     string
	User       string
	Properties map[string]string
}

// Start serves the coordinator API on addr.
func (c *Coordinator) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: coordinator listen: %w", err)
	}
	c.ln = ln
	c.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/statement", c.handleStatement)
	mux.HandleFunc("/v1/workers", c.handleWorkers)
	mux.HandleFunc("/v1/announce", c.handleAnnounce)
	mux.HandleFunc("/v1/stats", c.handleStats)
	mux.HandleFunc("/v1/query", c.handleQueries)
	mux.HandleFunc("/v1/query/", c.handleQueryByID)
	mux.HandleFunc("/v1/shutdown", c.handleShutdown)
	c.http = &http.Server{Handler: mux}
	go c.http.Serve(ln)
	return nil
}

// Addr returns the coordinator address.
func (c *Coordinator) Addr() string { return c.addr }

// Close stops the server immediately (the SIGKILL path). The graceful
// counterpart is GracefulDrain.
func (c *Coordinator) Close() error {
	if c.http != nil {
		return c.http.Close()
	}
	return nil
}

// Draining reports whether the coordinator has begun its graceful drain.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// deadlineNanos encodes a query deadline for the wire: unix nanos, 0 = none.
func deadlineNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// liveCount returns the number of in-flight queries.
func (c *Coordinator) liveCount() int {
	c.liveMu.Lock()
	defer c.liveMu.Unlock()
	return len(c.live)
}

// GracefulDrain is the coordinator's half of §IX graceful shrink, mirroring
// the worker's: latch draining (handleStatement starts refusing with the
// retryable 503 and the coordinator_draining gauge flips, so gateways route
// around this cluster), let in-flight queries finish for up to DrainGrace,
// abort any stragglers with the typed ErrCoordinatorDraining, wait for
// their handlers to unwind, then close the listener. Idempotent — a second
// call returns immediately.
func (c *Coordinator) GracefulDrain() error {
	if !c.draining.CompareAndSwap(false, true) {
		return nil
	}
	c.drains.Inc()
	grace := c.DrainGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	deadline := c.cfg.Clock.Now().Add(grace)
	for c.liveCount() > 0 && c.cfg.Clock.Now().Before(deadline) {
		c.cfg.Clock.Sleep(5 * time.Millisecond)
	}
	// Abort the stragglers: every RPC hop checks the latch, so each query
	// fails with the typed error on its next poll instead of running on
	// against a closing server.
	c.liveMu.Lock()
	for _, qs := range c.live {
		qs.abort(ErrCoordinatorDraining)
	}
	c.liveMu.Unlock()
	// Let the aborted handlers deliver their 503s before the listener goes
	// away; they stop at the next hop, so this converges in RPC time, not
	// query time.
	settle := c.cfg.Clock.Now().Add(grace)
	for c.liveCount() > 0 && c.cfg.Clock.Now().Before(settle) {
		c.cfg.Clock.Sleep(5 * time.Millisecond)
	}
	return c.Close()
}

// handleShutdown begins the graceful drain, like the worker's /v1/shutdown.
func (c *Coordinator) handleShutdown(rw http.ResponseWriter, r *http.Request) {
	go func() { _ = c.GracefulDrain() }() // drain errors surface via the caller of Close
	rw.WriteHeader(http.StatusAccepted)
}

func (c *Coordinator) handleStatement(rw http.ResponseWriter, r *http.Request) {
	var req StatementRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	session := &planner.Session{Catalog: req.Catalog, Schema: req.Schema, User: req.User, Properties: req.Properties}
	res, err := c.Query(session, req.Query)
	if err != nil {
		if errors.Is(err, resource.ErrQueueFull) {
			// Admission rejected the query: tell the client (and any gateway
			// in front) to retry elsewhere or later.
			rw.Header().Set("Retry-After", "1")
			http.Error(rw, err.Error(), http.StatusTooManyRequests)
			return
		}
		if errors.Is(err, ErrCoordinatorDraining) {
			// Refused (or aborted mid-drain) by the lifecycle, not by the
			// statement: the query is safe to replay verbatim elsewhere.
			// X-Presto-Retryable is what the gateway's transparent
			// resubmission keys on.
			rw.Header().Set("Retry-After", "1")
			rw.Header().Set("X-Presto-Retryable", "true")
			http.Error(rw, err.Error(), http.StatusServiceUnavailable)
			return
		}
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	c.replyGob(rw, res)
}

// replyGob encodes v to the client. A client that disconnects mid-response
// is normal churn, but it must show up in /v1/stats rather than vanish.
func (c *Coordinator) replyGob(rw http.ResponseWriter, v any) {
	if err := gob.NewEncoder(rw).Encode(v); err != nil {
		c.httpWriteErrs.Inc()
	}
}

func (c *Coordinator) handleWorkers(rw http.ResponseWriter, r *http.Request) {
	c.replyGob(rw, c.Workers())
}

// handleStats serves the coordinator's metrics registry as JSON.
func (c *Coordinator) handleStats(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	if _, err := rw.Write(c.obs.Snapshot().JSON()); err != nil {
		c.httpWriteErrs.Inc()
	}
}

// handleQueries lists retained recent queries, most recent first.
func (c *Coordinator) handleQueries(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c.QueryInfos()); err != nil {
		c.httpWriteErrs.Inc()
	}
}

// handleQueryByID serves one query's full QueryInfo (per-stage operator
// statistics included) at /v1/query/{id}.
func (c *Coordinator) handleQueryByID(rw http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/query/")
	qi, ok := c.GetQueryInfo(id)
	if !ok {
		http.Error(rw, "unknown query "+id, http.StatusNotFound)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(qi); err != nil {
		c.httpWriteErrs.Inc()
	}
}

// handleAnnounce lets workers self-register (graceful expansion: start a
// worker configured with the coordinator address and it joins the cluster).
func (c *Coordinator) handleAnnounce(rw http.ResponseWriter, r *http.Request) {
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		http.Error(rw, "missing addr", http.StatusBadRequest)
		return
	}
	c.AddWorker(addr)
	rw.WriteHeader(http.StatusOK)
}

// Client executes queries against a remote coordinator.
type Client struct {
	Addr string
	HTTP *http.Client
}

// NewClient targets a coordinator with the default client configuration.
func NewClient(addr string) *Client {
	return NewClientWithConfig(addr, ClientConfig{})
}

// NewClientWithConfig targets a coordinator with explicit timeouts and
// transport (zero fields take defaults).
func NewClientWithConfig(addr string, cfg ClientConfig) *Client {
	cfg = cfg.WithDefaults()
	return &Client{Addr: addr, HTTP: cfg.statementHTTPClient()}
}

// Query runs one statement.
func (cl *Client) Query(req StatementRequest) (*QueryResult, error) {
	return cl.QueryWithIdentity(req, req.User, "")
}

// QueryWithIdentity runs a statement carrying user/group headers, which a
// gateway (§VIII) uses to pick the target cluster; the 307 redirect replays
// the request against the chosen coordinator.
func (cl *Client) QueryWithIdentity(req StatementRequest, user, group string) (*QueryResult, error) {
	return cl.QueryWithSession(req, user, group, "")
}

// QueryWithSession additionally carries a session key (X-Presto-Session): a
// gateway with a sticky route hashes the key to a preferred cluster so a
// dashboard's repeated statements keep landing where its caches are warm.
func (cl *Client) QueryWithSession(req StatementRequest, user, group, session string) (*QueryResult, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, "http://"+cl.Addr+"/v1/statement", bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/x-gob")
	httpReq.Header.Set("X-Presto-User", user)
	httpReq.Header.Set("X-Presto-Group", group)
	if session != "" {
		httpReq.Header.Set("X-Presto-Session", session)
	}
	hc := cl.HTTP
	if hc == nil {
		def := DefaultClientConfig()
		hc = def.statementHTTPClient()
	}
	resp, err := hc.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)) // best-effort error detail
		return nil, fmt.Errorf("query failed: %s", bytes.TrimSpace(body))
	}
	var out QueryResult
	if err := gob.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}
