package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"prestolite/internal/fault"
)

// TestCoordinatorDrainRefusesNewQueries: once the drain latches, new
// statements fail with the typed ErrCoordinatorDraining (direct API) and the
// HTTP front end answers 503 + X-Presto-Retryable so a gateway can resubmit
// the statement elsewhere.
func TestCoordinatorDrainRefusesNewQueries(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 2)
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	coord.DrainGrace = 50 * time.Millisecond

	if _, err := coord.Query(session(), "SELECT count(*) FROM trips"); err != nil {
		t.Fatalf("pre-drain query: %v", err)
	}

	done := make(chan error, 1)
	go func() { done <- coord.GracefulDrain() }()

	// The latch flips synchronously at the head of GracefulDrain; poll
	// briefly for the goroutine to get there.
	deadline := time.Now().Add(time.Second)
	for !coord.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !coord.Draining() {
		t.Fatal("coordinator never entered draining")
	}

	_, err := coord.Query(session(), "SELECT count(*) FROM trips")
	if !errors.Is(err, ErrCoordinatorDraining) {
		t.Fatalf("draining query error = %v, want ErrCoordinatorDraining", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("ErrCoordinatorDraining must be retryable")
	}

	// HTTP surface: 503 + Retry-After + X-Presto-Retryable, while the
	// listener is still up (no live queries hold the drain open).
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&StatementRequest{Query: "SELECT count(*) FROM trips", Catalog: "hive", Schema: "rawdata"}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+coord.Addr()+"/v1/statement", "application/x-gob", &buf)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("X-Presto-Retryable") != "true" {
			t.Fatalf("missing X-Presto-Retryable header, got %v", resp.Header)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("missing Retry-After header")
		}
	}
	// err != nil means the drain already closed the listener — also a valid
	// refusal from the client's point of view (connection refused is
	// classified worker-gone/retryable by the gateway path).

	if derr := <-done; derr != nil {
		t.Fatalf("GracefulDrain: %v", derr)
	}
	if coord.Obs().Snapshot().Counters["coordinator_drains"] != 1 {
		t.Fatalf("coordinator_drains = %v, want 1", coord.Obs().Snapshot().Counters["coordinator_drains"])
	}

	// Idempotent: a second drain is a no-op and does not double-count.
	if err := coord.GracefulDrain(); err != nil {
		t.Fatalf("second GracefulDrain: %v", err)
	}
	if coord.Obs().Snapshot().Counters["coordinator_drains"] != 1 {
		t.Fatalf("second drain must not re-count")
	}
}

// TestCoordinatorDrainLetsInFlightFinish: queries already running when the
// drain starts complete normally inside the grace period.
func TestCoordinatorDrainLetsInFlightFinish(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 2)
	coord.DrainGrace = 5 * time.Second

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = coord.Query(session(), "SELECT city_id, sum(fare) FROM trips GROUP BY city_id")
		}(i)
	}
	// Begin the drain while the queries are (likely) in flight; those
	// already registered must finish, later arrivals get the typed error.
	if err := coord.GracefulDrain(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrCoordinatorDraining) {
			t.Fatalf("query %d failed with %v, want success or ErrCoordinatorDraining", i, err)
		}
	}
}

// TestWorkerGoneFastReschedule is satellite 1: an abruptly killed worker
// (Close, the simulated SIGKILL) surfaces as the typed ErrWorkerGone on the
// FIRST failed fetch — no per-RPC retry rounds against the corpse — and the
// query still answers exactly via rescheduling onto the survivor.
func TestWorkerGoneFastReschedule(t *testing.T) {
	// Unit half: a fetch against a dead address classifies as worker-gone
	// without burning rpc retries.
	coord := NewCoordinatorWithConfig(newCatalogs(t), ClientConfig{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		HedgeDelay:  -1, // disabled: one fetch per attempt
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close() // nothing listens here anymore: connection refused
	th := &taskHandle{
		worker: &workerClient{addr: deadAddr, http: coord.cfg.workerHTTPClient()},
		taskID: "t0",
	}
	before := coord.Obs().Snapshot().Counters["rpc_retries"]
	_, err = coord.fetchChunk(nil, th, 0)
	if !errors.Is(err, ErrWorkerGone) {
		t.Fatalf("fetch from dead worker = %v, want ErrWorkerGone", err)
	}
	if got := coord.Obs().Snapshot().Counters["rpc_retries"]; got != before {
		t.Fatalf("rpc_retries = %d (was %d): worker-gone must short-circuit the retry loop", got, before)
	}

	// Integration half: kill one of two workers mid-cluster; the query
	// reschedules its splits onto the survivor and stays row-exact.
	coord2, workers := newCluster(t, newCatalogs(t), 2)
	workers[0].Close()
	res, err := coord2.Query(session(), "SELECT count(*) FROM trips")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].(int64) != 80 {
		t.Fatalf("rows = %v, want [[80]]", rows)
	}
}

// TestQueryDeadline: the per-hop deadline gate on the coordinator's clock,
// and the worker-side refusal of tasks that arrive already expired.
func TestQueryDeadline(t *testing.T) {
	clock := fault.NewManualClock(time.Unix(1000, 0))
	coord := NewCoordinatorWithConfig(newCatalogs(t), ClientConfig{Clock: clock, HedgeDelay: -1})

	qs := newQueryState(&coord.cfg)
	qs.deadline = clock.Now().Add(100 * time.Millisecond)
	if err := coord.checkQuery(qs); err != nil {
		t.Fatalf("fresh deadline: %v", err)
	}
	clock.Advance(100 * time.Millisecond)
	err := coord.checkQuery(qs)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired deadline = %v, want ErrDeadlineExceeded", err)
	}
	if !isTerminal(err) {
		t.Fatal("deadline errors must be terminal (never rescheduled)")
	}

	// Terminal errors stop drainTask before it consumes reschedule budget.
	th := &taskHandle{worker: &workerClient{addr: "127.0.0.1:1", http: coord.cfg.workerHTTPClient()}, taskID: "t0"}
	budgetBefore := qs.budget.Load()
	if _, err := coord.drainTask(qs, []*taskHandle{th}, 0); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("drainTask = %v, want ErrDeadlineExceeded", err)
	}
	if qs.budget.Load() != budgetBefore {
		t.Fatal("terminal error must not consume retry budget")
	}

	// Worker half: a task whose Deadline is already past is refused 503.
	w := NewWorker(newCatalogs(t))
	if err := w.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var buf bytes.Buffer
	req := TaskRequest{TaskID: "expired", Deadline: w.Clock.Now().Add(-time.Second).UnixNano()}
	if err := gob.NewEncoder(&buf).Encode(&req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+w.Addr()+"/v1/task", "application/x-gob", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired task status = %d, want 503", resp.StatusCode)
	}
}

// TestQueryDeadlineSessionProperty: the session property parses, propagates
// into TaskRequests, and a bad value is rejected up front.
func TestQueryDeadlineSessionProperty(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 2)
	s := session()
	s.Properties["query_max_run_ms"] = "60000"
	if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err != nil {
		t.Fatalf("query with generous deadline: %v", err)
	}
	s.Properties["query_max_run_ms"] = "banana"
	if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err == nil {
		t.Fatal("bad query_max_run_ms must be rejected")
	}
}
