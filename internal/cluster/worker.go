// Package cluster implements the distributed runtime of §III: one
// coordinator parses, plans and schedules; workers execute tasks over splits
// and stream result pages back. It also implements §IX's graceful expansion
// (new workers announce themselves and receive work immediately) and
// graceful shrink (SHUTTING_DOWN drain with a grace period, so no queries
// fail during scale-down).
package cluster

import (
	"context"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/cache"
	"prestolite/internal/connector"
	"prestolite/internal/execution"
	"prestolite/internal/fault"
	"prestolite/internal/obs"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
)

// WorkerState is the §IX lifecycle.
type WorkerState string

const (
	StateActive       WorkerState = "ACTIVE"
	StateShuttingDown WorkerState = "SHUTTING_DOWN"
	StateShutdown     WorkerState = "SHUTDOWN"
)

// TaskRequest asks a worker to run one fragment over the given splits.
type TaskRequest struct {
	TaskID   string
	Fragment planner.Node
	TableKey string
	Splits   []connector.Split
	// Drivers requests a specific intra-task parallelism (the session's
	// task_concurrency); 0 defers to the worker's own configuration.
	Drivers int
	// DisableVectorized pins the task to the row-at-a-time reference
	// operators (the session's vectorized_execution=false).
	DisableVectorized bool
	// AdaptiveExchangeRows tunes the local exchange's skip-repartition
	// threshold (0 = default, negative = always partition).
	AdaptiveExchangeRows int
	// PartialAggBypassRows tunes adaptive partial aggregation's trigger
	// (0 = default, negative = never bypass).
	PartialAggBypassRows int
	// Deadline is the query's deadline in unix nanoseconds (0 = none). The
	// worker refuses tasks that arrive already expired — the last hop of the
	// coordinator's per-RPC deadline enforcement.
	Deadline int64
	// SnapshotVersion is the scanned table's snapshot version at scheduling
	// time (0 when the catalog cannot report one). It is part of the worker's
	// fragment-result cache key, so cached fragment output over data that has
	// since changed is unreachable rather than stale.
	SnapshotVersion int64
}

// TaskResultChunk is one page (or the end-of-stream marker) of task output.
type TaskResultChunk struct {
	Page []byte // encoded page; empty when none ready yet
	Done bool
	Err  string
	// Stats ships the task's per-operator statistics back with the results
	// (populated on Done chunks), so the coordinator can aggregate QueryInfo
	// without extra round trips.
	Stats []obs.OperatorStatsSnapshot
}

// WorkerInfo is the status document.
type WorkerInfo struct {
	State       WorkerState
	ActiveTasks int
}

// Worker executes tasks. It owns a connector registry (each worker process
// mounts the same catalogs).
type Worker struct {
	Catalogs    *connector.Registry
	GracePeriod time.Duration // shutdown.grace-period, default 2 minutes in prod
	// EnableFragmentResultCache turns on the §VII fragment result cache:
	// identical (fragment, splits) tasks are served from memory instead of
	// re-reading files. Safe for sealed data; paired with the coordinator's
	// affinity scheduling so repeats land on the same worker.
	EnableFragmentResultCache bool
	// FragmentCacheHits counts tasks served from the cache.
	FragmentCacheHits atomic.Int64
	// Obs is the worker's metrics registry, served as JSON at /v1/stats:
	// task counters, a task wall-time histogram, and the §VII cache metrics
	// of every connector that exposes them.
	Obs *obs.Registry
	// Clock drives the graceful-shutdown grace periods and drain polls;
	// defaults to real time. Fault-injection tests substitute a manual
	// clock.
	Clock fault.Clock
	// MemoryLimit caps the worker's process-wide memory pool (§XII.C); every
	// task runs in a child context. 0 with no SpillDir = legacy unaccounted
	// execution.
	MemoryLimit int64
	// SpillDir, when set, lets task operators spill to disk when a memory
	// reservation is refused. Runs are removed as tasks close; anything left
	// (crash-path leftovers) is swept on worker shutdown.
	SpillDir string
	// SpillBudget caps bytes on disk across live spill runs. 0 = unlimited.
	SpillBudget int64
	// TaskConcurrency is the default number of driver pipelines per task
	// (the -task-concurrency flag); 0 means one per CPU core. A TaskRequest
	// carrying an explicit Drivers overrides it.
	TaskConcurrency int

	pool  *resource.Pool
	spill *resource.SpillManager

	http *http.Server
	ln   net.Listener
	addr string

	mu       sync.Mutex
	state    WorkerState
	draining bool // set after the first grace period: refuse new tasks
	tasks    map[string]*workerTask
	closed   chan struct{}

	fragCache *cache.LRU[string, []*block.Page]

	tasksStarted   *obs.Counter
	tasksCompleted *obs.Counter
	tasksFailed    *obs.Counter
	httpWriteErrs  *obs.Counter
	taskWall       *obs.Histogram
}

type workerTask struct {
	stats *obs.TaskStats // live; snapshot at any time

	mu        sync.Mutex
	pages     []*block.Page
	done      bool
	err       error
	next      int
	cancel    context.CancelFunc
	cancelled bool
}

// setCancel publishes the task's cancel function once execution starts; an
// abort that raced in beforehand (DELETE straight after the POST) fires
// immediately instead of being lost.
func (t *workerTask) setCancel(fn context.CancelFunc) {
	t.mu.Lock()
	t.cancel = fn
	aborted := t.cancelled
	t.mu.Unlock()
	if aborted {
		fn()
	}
}

// abort cancels the task's execution context, stopping all of its drivers
// promptly (scans and exchange producers check it between pages).
func (t *workerTask) abort() {
	t.mu.Lock()
	t.cancelled = true
	fn := t.cancel
	t.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// NewWorker creates a worker with the given catalogs.
func NewWorker(catalogs *connector.Registry) *Worker {
	w := &Worker{
		Catalogs:    catalogs,
		GracePeriod: 2 * time.Minute,
		Clock:       fault.RealClock{},
		state:       StateActive,
		tasks:       map[string]*workerTask{},
		closed:      make(chan struct{}),
		fragCache:   cache.NewLRU[string, []*block.Page](256, 10*time.Minute),
		Obs:         obs.NewRegistry(),
	}
	w.tasksStarted = w.Obs.Counter("tasks_started")
	w.tasksCompleted = w.Obs.Counter("tasks_completed")
	w.tasksFailed = w.Obs.Counter("tasks_failed")
	w.httpWriteErrs = w.Obs.Counter("http_write_errors")
	w.taskWall = w.Obs.Histogram("task_wall")
	w.Obs.GaugeFunc("fragment_cache.hits", func() float64 { return float64(w.FragmentCacheHits.Load()) })
	w.Obs.GaugeFunc("active_tasks", func() float64 { return float64(w.activeTaskCount()) })
	registerCatalogMetrics(catalogs, w.Obs)
	return w
}

// registerCatalogMetrics wires every connector exposing metrics (e.g. hive's
// file-list and footer caches) into reg.
func registerCatalogMetrics(catalogs *connector.Registry, reg *obs.Registry) {
	for _, name := range catalogs.Catalogs() {
		conn, err := catalogs.Get(name)
		if err != nil {
			continue
		}
		if src, ok := conn.(obs.MetricsSource); ok {
			src.RegisterObsMetrics(reg)
		}
	}
}

func (w *Worker) activeTaskCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, t := range w.tasks {
		t.mu.Lock()
		if !t.done {
			n++
		}
		t.mu.Unlock()
	}
	return n
}

// Start listens on addr (use "127.0.0.1:0" for tests).
func (w *Worker) Start(addr string) error {
	if w.MemoryLimit > 0 || w.SpillDir != "" {
		w.pool = resource.NewPool("worker", w.MemoryLimit)
		w.pool.SetClock(w.Clock)
		w.Obs.GaugeFunc("pool_reserved_bytes", func() float64 { return float64(w.pool.Reserved()) })
	}
	if w.SpillDir != "" {
		mgr, err := resource.NewSpillManager(w.SpillDir, w.SpillBudget)
		if err != nil {
			return err
		}
		mgr.SetCounters(w.Obs.Counter("spills"), w.Obs.Counter("spilled_bytes"))
		w.spill = mgr
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: worker listen: %w", err)
	}
	w.ln = ln
	w.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/task", w.handleTask)
	mux.HandleFunc("/v1/task/", w.handleTaskResults)
	mux.HandleFunc("/v1/info", w.handleInfo)
	mux.HandleFunc("/v1/stats", w.handleStats)
	mux.HandleFunc("/v1/shutdown", w.handleShutdown)
	w.http = &http.Server{Handler: mux}
	go w.http.Serve(ln)
	return nil
}

// Addr returns the worker address.
func (w *Worker) Addr() string { return w.addr }

// State returns the current lifecycle state.
func (w *Worker) State() WorkerState {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

// Close stops the server immediately (ungraceful). In-flight tasks are
// cancelled (their drivers stop at the next page boundary) and their spill
// runs swept, so a killed worker leaves neither goroutines scanning nor temp
// files behind.
func (w *Worker) Close() error {
	w.mu.Lock()
	tasks := make([]*workerTask, 0, len(w.tasks))
	for _, t := range w.tasks {
		tasks = append(tasks, t)
	}
	w.mu.Unlock()
	for _, t := range tasks {
		t.abort()
	}
	if w.spill != nil {
		w.spill.RemoveAll()
	}
	if w.http != nil {
		return w.http.Close()
	}
	return nil
}

// SpillManager exposes the worker's spill manager (nil when spill is not
// configured) — tests use it to assert no runs leak.
func (w *Worker) SpillManager() *resource.SpillManager { return w.spill }

func (w *Worker) handleInfo(rw http.ResponseWriter, r *http.Request) {
	w.mu.Lock()
	info := WorkerInfo{State: w.state, ActiveTasks: 0}
	for _, t := range w.tasks {
		t.mu.Lock()
		if !t.done {
			info.ActiveTasks++
		}
		t.mu.Unlock()
	}
	w.mu.Unlock()
	w.replyGob(rw, info)
}

// replyGob encodes v to the client. A client that disconnects mid-response
// is normal churn, but it must show up in /v1/stats rather than vanish.
func (w *Worker) replyGob(rw http.ResponseWriter, v any) {
	if err := gob.NewEncoder(rw).Encode(v); err != nil {
		w.httpWriteErrs.Inc()
	}
}

// handleStats serves the worker's metrics registry as JSON.
func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "application/json")
	if _, err := rw.Write(w.Obs.Snapshot().JSON()); err != nil {
		w.httpWriteErrs.Inc()
	}
}

// handleShutdown begins the §IX graceful-shrink sequence.
func (w *Worker) handleShutdown(rw http.ResponseWriter, r *http.Request) {
	go w.GracefulShutdown()
	rw.WriteHeader(http.StatusAccepted)
}

// GracefulShutdown follows §IX exactly: enter SHUTTING_DOWN, sleep for the
// grace period (so the coordinator notices and stops sending tasks), block
// until active tasks complete, sleep the grace period again (so the
// coordinator sees all tasks complete), then shut down.
func (w *Worker) GracefulShutdown() {
	w.mu.Lock()
	if w.state != StateActive {
		w.mu.Unlock()
		return
	}
	w.state = StateShuttingDown
	w.mu.Unlock()

	// Grace period 1: the coordinator notices SHUTTING_DOWN and stops
	// assigning; racing tasks are still accepted and will complete.
	w.Clock.Sleep(w.GracePeriod)
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
	// Drain: a task is gone only when its coordinator has consumed the
	// results and issued the DELETE — waiting for execution alone would race
	// result polling against the listener closing below. ("The coordinator
	// sees all tasks complete", made explicit instead of timing-based.)
	for {
		w.mu.Lock()
		remaining := len(w.tasks)
		w.mu.Unlock()
		if remaining == 0 {
			break
		}
		w.Clock.Sleep(10 * time.Millisecond)
	}
	w.Clock.Sleep(w.GracePeriod)

	w.mu.Lock()
	w.state = StateShutdown
	w.mu.Unlock()
	close(w.closed)
	if w.spill != nil {
		w.spill.RemoveAll()
	}
	_ = w.http.Close() // shutting down: the listener is going away regardless
}

// WaitShutdown blocks until the worker exits.
func (w *Worker) WaitShutdown() { <-w.closed }

func (w *Worker) handleTask(rw http.ResponseWriter, r *http.Request) {
	// Tasks racing the shutdown announcement are still accepted until the
	// first grace period elapses (§IX: the coordinator becomes aware during
	// that sleep and stops sending tasks; only then does the worker drain).
	w.mu.Lock()
	refuse := w.draining || w.state == StateShutdown
	state := w.state
	w.mu.Unlock()
	if refuse {
		http.Error(rw, "worker is "+string(state), http.StatusServiceUnavailable)
		return
	}

	var req TaskRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(rw, "bad task: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Deadline > 0 && w.Clock.Now().UnixNano() >= req.Deadline {
		// The query blew its deadline in flight; starting the task would
		// only burn cycles the coordinator will never collect.
		http.Error(rw, "task "+req.TaskID+" arrived past its query deadline", http.StatusServiceUnavailable)
		return
	}
	task := &workerTask{stats: obs.NewTaskStats()}
	w.mu.Lock()
	w.tasks[req.TaskID] = task
	w.mu.Unlock()

	go w.runTask(&req, task)
	rw.WriteHeader(http.StatusAccepted)
}

func (w *Worker) runTask(req *TaskRequest, task *workerTask) {
	w.tasksStarted.Inc()
	start := w.Clock.Now()
	var cacheKey string
	if w.EnableFragmentResultCache {
		cacheKey = fragmentCacheKey(req)
		if pages, ok := w.fragCache.Get(cacheKey); ok {
			w.FragmentCacheHits.Add(1)
			w.tasksCompleted.Inc()
			task.mu.Lock()
			task.pages = pages
			task.done = true
			task.mu.Unlock()
			return
		}
	}
	// The task context is the cancellation root for every driver this task
	// runs: a DELETE from the coordinator or a worker Close aborts them all.
	// (It is created here, not in the HTTP handler — the task deliberately
	// outlives its submitting request.)
	tctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	task.setCancel(cancel)
	ctx := &execution.Context{
		Catalogs:             w.Catalogs,
		Splits:               map[string][]connector.Split{req.TableKey: req.Splits},
		Stats:                task.stats,
		Ctx:                  tctx,
		Drivers:              w.taskDrivers(req),
		DisableVectorized:    req.DisableVectorized,
		AdaptiveExchangeRows: req.AdaptiveExchangeRows,
		PartialAggBypassRows: req.PartialAggBypassRows,
	}
	if w.pool != nil {
		// Per-task memory context: tasks share the worker pool, and a failed
		// task cannot leak reservations past its Close.
		tpool := w.pool.Child(req.TaskID, 0)
		defer tpool.Close()
		ctx.Memory = tpool
		ctx.Spill = w.spill
	}
	op, err := execution.BuildParallel(req.Fragment, ctx)
	if err != nil {
		w.tasksFailed.Inc()
		task.fail(err)
		return
	}
	pages, err := execution.Drain(op)
	w.taskWall.Observe(w.Clock.Now().Sub(start))
	if err != nil {
		w.tasksFailed.Inc()
		task.fail(err)
		return
	}
	if w.EnableFragmentResultCache {
		w.fragCache.Put(cacheKey, pages)
	}
	w.tasksCompleted.Inc()
	task.mu.Lock()
	task.pages = pages
	task.done = true
	task.mu.Unlock()
}

// taskDrivers resolves a task's intra-task parallelism: the request's
// explicit session setting wins, then the worker's -task-concurrency
// default, then one driver per core.
func (w *Worker) taskDrivers(req *TaskRequest) int {
	if req.Drivers > 0 {
		return req.Drivers
	}
	if w.TaskConcurrency > 0 {
		return w.TaskConcurrency
	}
	return runtime.NumCPU()
}

// fragmentCacheKey identifies a (fragment, splits) unit of work. Fragment
// plans render deterministically and split descriptions identify the exact
// files, so equal keys mean equal results over sealed data.
func fragmentCacheKey(req *TaskRequest) string {
	h := fnv.New64a()
	h.Write([]byte(planner.Format(req.Fragment)))
	h.Write([]byte(strconv.FormatInt(req.SnapshotVersion, 16)))
	h.Write([]byte{0})
	for _, s := range req.Splits {
		h.Write([]byte(s.Description()))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum64())
}

func (t *workerTask) fail(err error) {
	t.mu.Lock()
	t.err = err
	t.done = true
	t.mu.Unlock()
}

// handleTaskResults serves GET /v1/task/{id}/results, GET
// /v1/task/{id}/stats and DELETE /v1/task/{id}.
func (w *Worker) handleTaskResults(rw http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.TrimPrefix(r.URL.Path, "/v1/task/"), "/")
	taskID := parts[0]
	w.mu.Lock()
	task := w.tasks[taskID]
	w.mu.Unlock()
	if task == nil {
		http.Error(rw, "no such task", http.StatusNotFound)
		return
	}
	if r.Method == http.MethodDelete {
		w.mu.Lock()
		delete(w.tasks, taskID)
		w.mu.Unlock()
		// A deleted task may still be executing (e.g. the coordinator
		// abandoned it under LIMIT): cancel it so its drivers stop scanning.
		task.abort()
		rw.WriteHeader(http.StatusOK)
		return
	}
	if len(parts) > 1 && parts[1] == "stats" {
		// Live per-operator snapshot (used by the coordinator for tasks it
		// did not drain to completion, e.g. under LIMIT).
		w.replyGob(rw, task.stats.Snapshot())
		return
	}
	// Idempotent paged protocol: GET ...?page=N serves page N by index and
	// never advances the worker-side cursor, so retried and hedged duplicate
	// fetches of the same page are safe. The cursor mode below stays as the
	// fallback for clients that do not name a page.
	if pageStr := r.URL.Query().Get("page"); pageStr != "" {
		idx, err := strconv.Atoi(pageStr)
		if err != nil || idx < 0 {
			http.Error(rw, "bad page index", http.StatusBadRequest)
			return
		}
		task.mu.Lock()
		chunk := TaskResultChunk{}
		switch {
		case task.err != nil:
			chunk.Err = task.err.Error()
			chunk.Done = true
		case idx < len(task.pages):
			data, err := block.EncodePage(task.pages[idx])
			if err != nil {
				chunk.Err = err.Error()
				chunk.Done = true
			} else {
				chunk.Page = data
			}
		case task.done:
			chunk.Done = true
		}
		if chunk.Done {
			chunk.Stats = task.stats.Snapshot()
		}
		task.mu.Unlock()
		w.replyGob(rw, chunk)
		return
	}
	// Poll one chunk. Build it under the task lock, then write it out with
	// the lock released: the HTTP write can block on a slow client and must
	// not stall the executor goroutine publishing pages into this task.
	task.mu.Lock()
	chunk := TaskResultChunk{}
	if task.err != nil {
		chunk.Err = task.err.Error()
		chunk.Done = true
	} else if task.next < len(task.pages) {
		data, err := block.EncodePage(task.pages[task.next])
		if err != nil {
			chunk.Err = err.Error()
			chunk.Done = true
		} else {
			chunk.Page = data
			task.next++
		}
	} else if task.done {
		chunk.Done = true
	}
	if chunk.Done {
		chunk.Stats = task.stats.Snapshot()
	}
	task.mu.Unlock()
	w.replyGob(rw, chunk)
}
