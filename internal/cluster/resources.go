package cluster

import (
	"fmt"
	"strconv"

	"prestolite/internal/obs"
	"prestolite/internal/planner"
	"prestolite/internal/resource"
)

// ResourceConfig configures the coordinator's resource-management subsystem
// (§XII.C): a process-wide memory pool every query's context is a child of,
// admission-controlled resource groups, spill-to-disk for blocking
// operators, and the last-resort OOM killer. The zero value (no call to
// ConfigureResources) leaves the coordinator in its legacy mode: no pooling,
// no queueing, no spill.
type ResourceConfig struct {
	// MemoryLimit caps the process-wide pool in bytes. 0 = unlimited.
	MemoryLimit int64
	// SpillDir enables spill-to-disk, rooted at this directory. "" = spill
	// disabled.
	SpillDir string
	// SpillBudget caps the bytes on disk across live spill runs. 0 =
	// unlimited.
	SpillBudget int64
	// OOMKill enables the last rung of the degradation ladder: when the
	// shared pool is exhausted, the query with the largest reservation is
	// killed so the rest can finish.
	OOMKill bool
	// Groups are the admission-control resource groups; queries pick one
	// with the resource_group session property and default to the first.
	// Empty = admission disabled.
	Groups []resource.GroupConfig
}

// coordResources is the live subsystem built from a ResourceConfig.
type coordResources struct {
	pool             *resource.Pool
	spill            *resource.SpillManager
	groups           map[string]*resource.Group
	defaultGroup     *resource.Group
	admissionRejects *obs.Counter
}

// ConfigureResources installs memory pools, admission control, spill-to-disk
// and the OOM killer on the coordinator. Call once, before Start.
func (c *Coordinator) ConfigureResources(cfg ResourceConfig) error {
	res := &coordResources{groups: map[string]*resource.Group{}}
	res.pool = resource.NewPool("coordinator", cfg.MemoryLimit)
	res.pool.SetClock(c.cfg.Clock)
	if cfg.OOMKill {
		res.pool.EnableOOMKiller(c.obs.Counter("oom_kills"))
	}
	if cfg.SpillDir != "" {
		mgr, err := resource.NewSpillManager(cfg.SpillDir, cfg.SpillBudget)
		if err != nil {
			return err
		}
		mgr.SetCounters(c.obs.Counter("spills"), c.obs.Counter("spilled_bytes"))
		res.spill = mgr
	}
	for _, gc := range cfg.Groups {
		g := resource.NewGroup(gc, c.cfg.Clock)
		res.groups[gc.Name] = g
		if res.defaultGroup == nil {
			res.defaultGroup = g
		}
	}
	res.admissionRejects = c.obs.Counter("admission_rejects")
	c.obs.GaugeFunc("pool_reserved_bytes", func() float64 { return float64(res.pool.Reserved()) })
	c.obs.GaugeFunc("queue_depth", func() float64 {
		n := 0
		for _, g := range res.groups {
			n += g.Depth()
		}
		return float64(n)
	})
	// admission_saturated is what the gateway failover polls: 1 means a new
	// submission right now would be rejected with queue-full (HTTP 429).
	c.obs.GaugeFunc("admission_saturated", func() float64 {
		if len(res.groups) == 0 {
			return 0
		}
		for _, g := range res.groups {
			if !g.Saturated() {
				return 0
			}
		}
		return 1
	})
	c.res = res
	return nil
}

// SpillManager exposes the coordinator's spill manager (nil when spill is
// not configured) — tests use it to assert no runs leak.
func (c *Coordinator) SpillManager() *resource.SpillManager {
	if c.res == nil {
		return nil
	}
	return c.res.spill
}

// groupFor resolves the session's admission group: the resource_group
// session property when it names a configured group, else the first
// configured group. nil = admission disabled.
func (c *Coordinator) groupFor(session *planner.Session) *resource.Group {
	if c.res == nil {
		return nil
	}
	if name := session.Property("resource_group", ""); name != "" {
		if g, ok := c.res.groups[name]; ok {
			return g
		}
	}
	return c.res.defaultGroup
}

// queryMemoryLimit resolves the per-query memory cap: the query_max_memory
// session property wins, then the group's PerQueryMemory, else uncapped.
func queryMemoryLimit(session *planner.Session, g *resource.Group) (int64, error) {
	if v := session.Property("query_max_memory", ""); v != "" {
		limit, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("cluster: bad query_max_memory %q: %w", v, err)
		}
		return limit, nil
	}
	if g != nil {
		return g.Config().PerQueryMemory, nil
	}
	return 0, nil
}

// memFooter renders the EXPLAIN ANALYZE memory footer ("" without a memory
// context): peak reservation and spilled bytes next to the plan they
// belong to.
func memFooter(p *resource.Pool) string {
	if p == nil {
		return ""
	}
	return fmt.Sprintf("\nMemory: peak %d B, spilled %d B\n", p.Peak(), p.Spilled())
}
