package cluster

import (
	"strings"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/memory"
	"prestolite/internal/hdfs"
	"prestolite/internal/metastore"
	"prestolite/internal/planner"
	"prestolite/internal/types"
)

// resultCacheFixture builds a partitioned hive table (so the metastore can
// bump its snapshot version via AddPartition) plus a memory catalog (which
// cannot report versions — the uncacheable case).
func resultCacheFixture(t *testing.T) (*connector.Registry, *metastore.Metastore, *hive.Loader) {
	t.Helper()
	fs := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "fare", Type: types.Double},
	}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Double})
	for i := 0; i < 10; i++ {
		pb.AppendRow([]any{int64(i % 5), float64(i)})
	}
	if err := loader.CreatePartitionedTable("rawdata", "trips", cols, "datestr",
		map[string][]*block.Page{"2017-03-01": {pb.Build()}}, map[string]bool{"2017-03-01": true}); err != nil {
		t.Fatal(err)
	}
	mem := memory.New("memory")
	if err := mem.CreateTable("meta", "cities", []connector.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "name", Type: types.Varchar},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if err := mem.AppendRows("meta", "cities", [][]any{{int64(0), "sf"}, {int64(1), "oak"}}); err != nil {
		t.Fatal(err)
	}
	reg := connector.NewRegistry()
	reg.Register("hive", hive.New("hive", ms, fs, hive.Options{}))
	reg.Register("memory", mem)
	return reg, ms, loader
}

// TestCoordinatorResultCache: the tier-2 cache serves a repeated dashboard
// query without scheduling any task, marks it FromCache, and a metastore
// version bump (new partition) makes the stale entry unreachable so the next
// run sees the new data.
func TestCoordinatorResultCache(t *testing.T) {
	catalogs, ms, loader := resultCacheFixture(t)
	coord, workers := newCluster(t, catalogs, 2)
	coord.EnableResultCache(64, 8<<20, time.Hour)

	q := "SELECT city_id, count(*) AS n FROM trips GROUP BY city_id ORDER BY 1"
	first, err := coord.Query(session(), q)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := first.Rows()
	if len(r1) != 5 {
		t.Fatalf("rows = %v", r1)
	}
	if n := coord.ResultCacheLen(); n != 1 {
		t.Fatalf("cache len after first run = %d, want 1", n)
	}

	tasksBefore := workers[0].Obs.Snapshot().Counters["tasks_started"] + workers[1].Obs.Snapshot().Counters["tasks_started"]
	second, err := coord.Query(session(), q)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := second.Rows()
	tasksAfter := workers[0].Obs.Snapshot().Counters["tasks_started"] + workers[1].Obs.Snapshot().Counters["tasks_started"]
	if tasksAfter != tasksBefore {
		t.Errorf("cached run scheduled %d tasks, want 0", tasksAfter-tasksBefore)
	}
	if len(r1) != len(r2) {
		t.Fatalf("cache changed results: %v vs %v", r1, r2)
	}
	for i := range r1 {
		for j := range r1[i] {
			if r1[i][j] != r2[i][j] {
				t.Errorf("row %d differs: %v vs %v", i, r1[i], r2[i])
			}
		}
	}
	infos := coord.QueryInfos()
	if !infos[0].FromCache || infos[0].Rows != 5 {
		t.Errorf("cached QueryInfo = %+v", infos[0])
	}
	if infos[1].FromCache {
		t.Errorf("first run marked FromCache: %+v", infos[1])
	}
	snap := coord.Obs().Snapshot()
	if snap.Gauges["coordinator.cache.result.hits"] != 1 {
		t.Errorf("result cache hits = %v", snap.Gauges["coordinator.cache.result.hits"])
	}

	// New partition: the metastore version moves, the key changes, and the
	// query recomputes over the larger table instead of serving stale rows.
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Double})
	for i := 0; i < 5; i++ {
		pb.AppendRow([]any{int64(0), float64(100 + i)})
	}
	if err := loader.AddPartition("rawdata", "trips", "datestr", "2017-03-02", []*block.Page{pb.Build()}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.GetTable("rawdata", "trips"); err != nil {
		t.Fatal(err)
	}
	third, err := coord.Query(session(), q)
	if err != nil {
		t.Fatal(err)
	}
	r3, _ := third.Rows()
	var total int64
	for _, r := range r3 {
		total += r[1].(int64)
	}
	if total != 15 {
		t.Errorf("after partition add: total count = %d, want 15 (stale cache served?)", total)
	}
	if n := coord.ResultCacheLen(); n != 2 {
		t.Errorf("cache len = %d, want 2 (old + new version keys)", n)
	}

	// Explicit invalidation empties the cache.
	if dropped := coord.InvalidateResultCache(); dropped != 2 {
		t.Errorf("InvalidateResultCache dropped %d, want 2", dropped)
	}
}

// TestResultCacheUncacheablePaths: queries over versionless catalogs, session
// opt-outs and EXPLAIN ANALYZE never populate the cache.
func TestResultCacheUncacheablePaths(t *testing.T) {
	catalogs, _, _ := resultCacheFixture(t)
	coord, _ := newCluster(t, catalogs, 1)
	coord.EnableResultCache(64, 8<<20, time.Hour)

	// memory has no SnapshotVersioner: uncacheable.
	s := session()
	s.Catalog, s.Schema = "memory", "meta"
	if _, err := coord.Query(s, "SELECT count(*) FROM cities"); err != nil {
		t.Fatal(err)
	}
	if n := coord.ResultCacheLen(); n != 0 {
		t.Errorf("versionless query was cached (len %d)", n)
	}
	if n := coord.Obs().Snapshot().Counters["coordinator.cache.result.uncacheable"]; n != 1 {
		t.Errorf("uncacheable = %d, want 1", n)
	}

	// Constant queries scan nothing: uncacheable, still correct.
	if _, err := coord.Query(session(), "SELECT 1 + 2"); err != nil {
		t.Fatal(err)
	}
	if n := coord.ResultCacheLen(); n != 0 {
		t.Errorf("constant query was cached (len %d)", n)
	}

	// Session opt-out.
	s2 := session()
	s2.Properties["result_cache"] = "false"
	if _, err := coord.Query(s2, "SELECT count(*) FROM trips"); err != nil {
		t.Fatal(err)
	}
	if n := coord.ResultCacheLen(); n != 0 {
		t.Errorf("opted-out query was cached (len %d)", n)
	}

	// EXPLAIN ANALYZE executes for real and renders the cache footer with
	// the result-cache tier visible.
	res, err := coord.Query(session(), "EXPLAIN ANALYZE SELECT count(*) FROM trips")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := res.Rows()
	text := rows[0][0].(string)
	if !strings.Contains(text, "coordinator.cache.result") {
		t.Errorf("EXPLAIN ANALYZE cache footer missing result-cache tier:\n%s", text)
	}
	if !strings.Contains(text, "hive.cache.chunk") {
		t.Errorf("EXPLAIN ANALYZE cache footer missing chunk-cache tier:\n%s", text)
	}
	if n := coord.ResultCacheLen(); n != 0 {
		t.Errorf("EXPLAIN ANALYZE was cached (len %d)", n)
	}
}

// TestResultCacheRespectsTaskRequestVersion: the worker fragment cache key
// folds SnapshotVersion, so identical fragments over changed data miss.
func TestResultCacheRespectsTaskRequestVersion(t *testing.T) {
	req := TaskRequest{TaskID: "t", Fragment: &planner.Values{}, SnapshotVersion: 1}
	k1 := fragmentCacheKey(&req)
	req.SnapshotVersion = 2
	k2 := fragmentCacheKey(&req)
	if k1 == k2 {
		t.Error("fragment cache key ignores SnapshotVersion")
	}
}
