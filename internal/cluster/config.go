package cluster

import (
	"math/rand"
	"net/http"
	"time"

	"prestolite/internal/fault"
)

// ClientConfig collects every knob of the cluster's HTTP clients — the
// timeouts that used to be inline literals, the transport (the fault
// injection hook), the clock, and the retry/hedging policy. The zero value
// means "all defaults"; WithDefaults fills the blanks. It is shared by the
// coordinator's worker clients, the statement Client, the gateway's stats
// pollers, and every chaos test.
type ClientConfig struct {
	// WorkerTimeout bounds each coordinator→worker RPC (was a hardcoded 30s
	// literal). It is the backstop that turns a black-holed request into a
	// retryable error instead of a hang.
	WorkerTimeout time.Duration
	// StatementTimeout bounds a client→coordinator statement round trip
	// (was a hardcoded 120s literal).
	StatementTimeout time.Duration
	// StatsTimeout bounds gateway health/load polls of coordinator
	// /v1/stats endpoints.
	StatsTimeout time.Duration

	// Transport is the base RoundTripper for every client this config
	// builds; nil means http.DefaultTransport. Chaos tests install a
	// *fault.Transport here.
	Transport http.RoundTripper
	// Clock drives backoff sleeps and hedge timers; nil means real time.
	Clock fault.Clock

	// MaxAttempts is how many times one RPC (result fetch, task start
	// round) is tried before the failure escalates to task rescheduling.
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt with
	// ±50% jitter, capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RetryBudget is the per-query budget of task reschedules (a dead
	// worker's tasks restarting on survivors). Exhausting it yields
	// ErrRetryBudgetExhausted instead of retrying forever.
	RetryBudget int
	// HedgeDelay is how long a task-result fetch may be outstanding before
	// a duplicate (hedged) fetch races it — the straggler mitigation.
	// Result fetches are idempotent (the coordinator names the page index),
	// so whichever copy answers first wins. 0 disables hedging.
	HedgeDelay time.Duration
	// PollInterval is the pause between result polls of a still-running
	// task.
	PollInterval time.Duration
}

// DefaultClientConfig returns the production defaults.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		WorkerTimeout:    30 * time.Second,
		StatementTimeout: 120 * time.Second,
		StatsTimeout:     2 * time.Second,
		Clock:            fault.RealClock{},
		MaxAttempts:      3,
		BaseBackoff:      25 * time.Millisecond,
		MaxBackoff:       time.Second,
		RetryBudget:      8,
		HedgeDelay:       500 * time.Millisecond,
		PollInterval:     time.Millisecond,
	}
}

// WithDefaults fills every zero field from DefaultClientConfig, so partial
// configs (say, only a Transport) behave sanely. HedgeDelay < 0 means
// "explicitly disabled" and is preserved as 0.
func (cfg ClientConfig) WithDefaults() ClientConfig {
	def := DefaultClientConfig()
	if cfg.WorkerTimeout == 0 {
		cfg.WorkerTimeout = def.WorkerTimeout
	}
	if cfg.StatementTimeout == 0 {
		cfg.StatementTimeout = def.StatementTimeout
	}
	if cfg.StatsTimeout == 0 {
		cfg.StatsTimeout = def.StatsTimeout
	}
	if cfg.Clock == nil {
		cfg.Clock = def.Clock
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = def.MaxAttempts
	}
	if cfg.BaseBackoff == 0 {
		cfg.BaseBackoff = def.BaseBackoff
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = def.MaxBackoff
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = def.RetryBudget
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = def.HedgeDelay
	} else if cfg.HedgeDelay < 0 {
		cfg.HedgeDelay = 0
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = def.PollInterval
	}
	return cfg
}

// workerHTTPClient builds the per-worker RPC client.
func (cfg *ClientConfig) workerHTTPClient() *http.Client {
	return &http.Client{Timeout: cfg.WorkerTimeout, Transport: cfg.Transport}
}

// statementHTTPClient builds the client→coordinator statement client.
func (cfg *ClientConfig) statementHTTPClient() *http.Client {
	return &http.Client{Timeout: cfg.StatementTimeout, Transport: cfg.Transport}
}

// StatementHTTPClient builds a statement-timeout client — what the gateway's
// proxying /v1/execute path uses to forward statements to coordinators.
func (cfg *ClientConfig) StatementHTTPClient() *http.Client {
	return cfg.statementHTTPClient()
}

// StatsHTTPClient builds the short-deadline client gateways use to poll
// coordinator stats and health.
func (cfg *ClientConfig) StatsHTTPClient() *http.Client {
	return &http.Client{Timeout: cfg.StatsTimeout, Transport: cfg.Transport}
}

// backoff returns the sleep before retry attempt n (n >= 1): exponential
// from BaseBackoff, capped at MaxBackoff, with ±50% jitter so synchronized
// retry storms spread out. Jitter comes from the global RNG — it shifts
// timings, never outcomes, so seeded chaos runs stay reproducible.
func (cfg *ClientConfig) backoff(attempt int) time.Duration {
	d := cfg.BaseBackoff
	for i := 1; i < attempt && d < cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > cfg.MaxBackoff {
		d = cfg.MaxBackoff
	}
	if d <= 0 {
		return 0
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}
