package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"prestolite/internal/block"
)

// Typed availability errors. A query that cannot make progress fails with
// one of these within its retry budget — never a hang, and never a silent
// wrong answer. errors.Is works through all the wrapping the retry layers
// add.
var (
	// ErrNoActiveWorkers: the coordinator found no ACTIVE worker after its
	// retry rounds (empty cluster, or a full partition).
	ErrNoActiveWorkers = errors.New("cluster: no active workers")
	// ErrSchedulingFailed: every active worker refused or failed the task
	// start across all retry rounds.
	ErrSchedulingFailed = errors.New("cluster: could not schedule task on any active worker")
	// ErrRetryBudgetExhausted: the query burned its whole task-reschedule
	// budget and still could not finish.
	ErrRetryBudgetExhausted = errors.New("cluster: task retry budget exhausted")
	// ErrCoordinatorDraining: the coordinator is in its graceful-shutdown
	// drain and no longer admits queries. Retryable on another cluster — the
	// gateway resubmits idempotent statements transparently.
	ErrCoordinatorDraining = errors.New("cluster: coordinator is draining")
	// ErrWorkerGone: a worker's process died abruptly (connection refused or
	// reset, not a timeout). Surfaced by the first failed fetch so split
	// rescheduling engages immediately instead of after retry exhaustion.
	ErrWorkerGone = errors.New("cluster: worker is gone")
	// ErrDeadlineExceeded: the query overran its deadline. Terminal — it is
	// never rescheduled, and every RPC hop checks it.
	ErrDeadlineExceeded = errors.New("cluster: query deadline exceeded")
)

// IsUnavailable reports whether err is one of the typed cluster-availability
// errors, as opposed to a planning or semantic error. Chaos tests use it to
// assert that a partitioned cluster fails cleanly.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrNoActiveWorkers) ||
		errors.Is(err, ErrSchedulingFailed) ||
		errors.Is(err, ErrRetryBudgetExhausted) ||
		errors.Is(err, ErrCoordinatorDraining) ||
		errors.Is(err, ErrWorkerGone)
}

// IsRetryable reports whether a failed query may be resubmitted elsewhere
// without risking duplicate effects: the coordinator refused or lost the
// query for availability reasons rather than rejecting its content. The
// gateway's transparent-resubmission path keys on this.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrCoordinatorDraining) ||
		errors.Is(err, ErrNoActiveWorkers) ||
		errors.Is(err, ErrSchedulingFailed)
}

// isWorkerGone classifies transport errors that mean the peer process is
// dead (refused: nothing listens; reset: the listener vanished mid-stream)
// rather than slow or lossy. Injected faults and timeouts deliberately do
// not match — those keep the per-RPC retry loop, death skips it.
func isWorkerGone(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// isTerminal reports errors that must fail the query as-is: rescheduling the
// task cannot help (the deadline stays blown, the drain stays in progress).
func isTerminal(err error) bool {
	return errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrCoordinatorDraining)
}

// queryState carries the per-query fault-tolerance budget shared by all of
// the query's remote-source operators, plus the query's deadline and its
// abort latch (set by the coordinator drain).
type queryState struct {
	budget      atomic.Int64 // remaining task reschedules
	reschedules atomic.Int64 // used for unique replacement task IDs
	deadline    time.Time    // zero = no deadline

	mu       sync.Mutex
	abortErr error
}

func newQueryState(cfg *ClientConfig) *queryState {
	qs := &queryState{}
	qs.budget.Store(int64(cfg.RetryBudget))
	return qs
}

// abort latches a terminal error onto the query; every RPC hop observes it
// on its next check. First abort wins.
func (qs *queryState) abort(err error) {
	qs.mu.Lock()
	if qs.abortErr == nil {
		qs.abortErr = err
	}
	qs.mu.Unlock()
}

func (qs *queryState) aborted() error {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.abortErr
}

// checkQuery is the per-hop liveness gate: every RPC loop (task start,
// result fetch, worker wait) calls it so an aborted or deadline-blown query
// stops at the next hop instead of grinding through retries. nil qs (direct
// task-client use in tests) always passes.
func (c *Coordinator) checkQuery(qs *queryState) error {
	if qs == nil {
		return nil
	}
	if err := qs.aborted(); err != nil {
		return err
	}
	if !qs.deadline.IsZero() && !c.cfg.Clock.Now().Before(qs.deadline) {
		return fmt.Errorf("%w (deadline %s)", ErrDeadlineExceeded, qs.deadline.Format(time.RFC3339Nano))
	}
	return nil
}

// drainTask pulls every result page of tasks[i], rescheduling the task onto
// a surviving worker (and re-draining from page zero) whenever the current
// attempt fails. The all-or-nothing drain is what keeps results row-exact
// under worker death: no page reaches downstream operators until one task
// attempt has produced its complete, consistent page stream.
func (c *Coordinator) drainTask(qs *queryState, tasks []*taskHandle, i int) ([]*block.Page, error) {
	for {
		th := tasks[i]
		pages, err := c.drainOnce(qs, th)
		if err == nil {
			return pages, nil
		}
		if isTerminal(err) {
			return nil, err
		}
		replacement, rerr := c.rescheduleTask(qs, th, err)
		if rerr != nil {
			return nil, rerr
		}
		c.trackTask(replacement)
		c.releaseTask(th) // best-effort DELETE on the failed worker
		tasks[i] = replacement
	}
}

// drainOnce fetches the complete page stream of one task attempt.
func (c *Coordinator) drainOnce(qs *queryState, th *taskHandle) ([]*block.Page, error) {
	var pages []*block.Page
	for n := 0; ; {
		chunk, err := c.fetchChunk(qs, th, n)
		if err != nil {
			return nil, err
		}
		if chunk.Err != "" {
			return nil, fmt.Errorf("cluster: task %s failed on %s: %s", th.taskID, th.worker.addr, chunk.Err)
		}
		if len(chunk.Page) > 0 {
			p, err := block.DecodePage(chunk.Page)
			if err != nil {
				// A corrupted page that slipped past gob decoding: treat it
				// like any other failed attempt and re-execute elsewhere.
				return nil, fmt.Errorf("cluster: decoding page %d of task %s from %s: %w", n, th.taskID, th.worker.addr, err)
			}
			pages = append(pages, p)
			n++
			continue
		}
		if chunk.Done {
			if chunk.Stats != nil {
				th.setStats(chunk.Stats)
			}
			return pages, nil
		}
		c.cfg.Clock.Sleep(c.cfg.PollInterval) // task still running
	}
}

// fetchChunk fetches page n of a task with per-RPC retries (exponential
// backoff + jitter) and hedging. Page fetches are idempotent — the request
// names the page index, the worker keeps no cursor — so retried and hedged
// copies of the same fetch are safe. A connection-refused/reset failure
// short-circuits the retry loop as ErrWorkerGone: the process is dead,
// and rescheduling should engage on the first failed fetch, not after
// MaxAttempts rounds of backoff against a corpse.
func (c *Coordinator) fetchChunk(qs *queryState, th *taskHandle, page int) (TaskResultChunk, error) {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if err := c.checkQuery(qs); err != nil {
			return TaskResultChunk{}, err
		}
		if err := th.aborted(); err != nil {
			return TaskResultChunk{}, err
		}
		if attempt > 1 {
			c.rpcRetries.Inc()
			c.cfg.Clock.Sleep(c.cfg.backoff(attempt - 1))
		}
		chunk, err := c.fetchChunkHedged(th, page)
		if err == nil {
			return chunk, nil
		}
		if isWorkerGone(err) {
			return TaskResultChunk{}, fmt.Errorf("%w: fetching results of task %s from %s: %v",
				ErrWorkerGone, th.taskID, th.worker.addr, err)
		}
		lastErr = err
	}
	return TaskResultChunk{}, fmt.Errorf("cluster: fetching results from %s: %w", th.worker.addr, lastErr)
}

// fetchChunkHedged fires the fetch and, if no response arrives within
// HedgeDelay, races a duplicate against it (§VII straggler mitigation for
// result pulls). First response wins; an abandoned copy finishes on its own
// within the client timeout and is discarded.
func (c *Coordinator) fetchChunkHedged(th *taskHandle, page int) (TaskResultChunk, error) {
	if c.cfg.HedgeDelay <= 0 {
		return th.fetchPage(page)
	}
	type result struct {
		chunk TaskResultChunk
		err   error
	}
	ch := make(chan result, 2) // buffered: the loser's send never blocks
	fetch := func() {
		chunk, err := th.fetchPage(page)
		ch <- result{chunk, err}
	}
	go fetch()
	select {
	case r := <-ch:
		return r.chunk, r.err
	case <-c.cfg.Clock.After(c.cfg.HedgeDelay):
		c.hedgedFetches.Inc()
		go fetch()
	}
	r := <-ch
	return r.chunk, r.err
}

// rescheduleTask restarts a failed task attempt on a surviving worker,
// consuming one unit of the query's retry budget. The replacement runs the
// same fragment over the same splits, so its page stream is equivalent to
// what the dead worker would have produced.
func (c *Coordinator) rescheduleTask(qs *queryState, th *taskHandle, cause error) (*taskHandle, error) {
	if err := c.checkQuery(qs); err != nil {
		return nil, err
	}
	if qs.budget.Add(-1) < 0 {
		return nil, fmt.Errorf("%w (task %s): %v", ErrRetryBudgetExhausted, th.taskID, cause)
	}
	c.taskRetries.Inc()
	// Prefer workers other than the one that just failed; fall back to the
	// full active set when it was the only one left (its failure may have
	// been a transient RPC problem, not death).
	workers := c.activeWorkersExcept(th.worker.addr)
	if len(workers) == 0 {
		workers = c.activeWorkers()
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("%w: rescheduling task %s after: %v", ErrNoActiveWorkers, th.taskID, cause)
	}
	req := th.req
	req.TaskID = fmt.Sprintf("%s.r%d", th.req.TaskID, qs.reschedules.Add(1))
	replacement, err := c.startTaskAnywhere(qs, workers, 0, req)
	if err != nil {
		return nil, fmt.Errorf("cluster: rescheduling task %s (after: %v): %w", th.req.TaskID, cause, err)
	}
	return replacement, nil
}

// waitActiveWorkers polls for ACTIVE workers, retrying with backoff when
// workers are registered but none answer (transient churn). An empty
// cluster fails immediately — nothing will appear by waiting.
func (c *Coordinator) waitActiveWorkers(qs *queryState) ([]*workerClient, error) {
	for attempt := 1; ; attempt++ {
		if err := c.checkQuery(qs); err != nil {
			return nil, err
		}
		workers := c.activeWorkers()
		if len(workers) > 0 {
			return workers, nil
		}
		if len(c.Workers()) == 0 {
			return nil, fmt.Errorf("%w: none registered", ErrNoActiveWorkers)
		}
		if attempt >= c.cfg.MaxAttempts {
			return nil, fmt.Errorf("%w: %d registered, none reachable after %d polls",
				ErrNoActiveWorkers, len(c.Workers()), attempt)
		}
		c.rpcRetries.Inc()
		c.cfg.Clock.Sleep(c.cfg.backoff(attempt))
	}
}
