package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// TestQueryInfoAggregation: a multi-worker query leaves behind a QueryInfo
// with ordered lifecycle timestamps and per-stage operator statistics merged
// across both workers' tasks.
func TestQueryInfoAggregation(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 2)
	q := "SELECT city_id, count(*) AS n FROM trips GROUP BY city_id"
	res, err := coord.Query(session(), q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}

	infos := coord.QueryInfos()
	if len(infos) != 1 {
		t.Fatalf("QueryInfos = %d entries", len(infos))
	}
	qi := infos[0]
	if qi.State != QueryFinished {
		t.Fatalf("state = %s (err %q)", qi.State, qi.Error)
	}
	if qi.Query != q || qi.User != "test" || qi.Rows != 5 {
		t.Errorf("qi = %+v", qi)
	}
	if qi.Queued.IsZero() || qi.Planning.Before(qi.Queued) ||
		qi.Running.Before(qi.Planning) || qi.Finished.Before(qi.Running) {
		t.Errorf("timestamps out of order: %v %v %v %v", qi.Queued, qi.Planning, qi.Running, qi.Finished)
	}

	if len(qi.Stages) != 2 {
		t.Fatalf("stages = %+v", qi.Stages)
	}
	root, src := qi.Stages[0], qi.Stages[1]
	if root.FragmentID != 0 || root.Tasks != 1 || len(root.Operators) == 0 {
		t.Errorf("root stage = %+v", root)
	}
	if src.Tasks != 2 || len(src.Workers) != 2 || src.TableKey == "" {
		t.Errorf("source stage = %+v", src)
	}
	// The scan read all 80 rows, merged across the two workers' tasks.
	var sawScan bool
	for _, op := range src.Operators {
		if strings.HasPrefix(op.Name, "TableScan") {
			sawScan = true
			if op.RowsOut != 80 || op.Tasks != 2 {
				t.Errorf("scan stats = %+v", op)
			}
		}
		if op.RowsOut == 0 {
			t.Errorf("operator %s recorded no rows", op.Name)
		}
	}
	if !sawScan {
		t.Errorf("no TableScan operator in %+v", src.Operators)
	}

	// Cluster metrics moved with the query.
	snap := coord.Obs().Snapshot()
	if snap.Counters["queries_submitted"] != 1 || snap.Counters["queries_finished"] != 1 {
		t.Errorf("counters = %v", snap.Counters)
	}
	if snap.Gauges["queries_outstanding"] != 0 {
		t.Errorf("outstanding = %v", snap.Gauges["queries_outstanding"])
	}
	if snap.Histograms["query_wall"].Count != 1 {
		t.Errorf("query_wall = %+v", snap.Histograms["query_wall"])
	}
}

// TestQueryInfoFailedQuery: a failing query lands in the ring as FAILED with
// its error, and the failure counter moves.
func TestQueryInfoFailedQuery(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 1)
	if _, err := coord.Query(session(), "SELECT nope FROM trips"); err == nil {
		t.Fatal("expected error")
	}
	infos := coord.QueryInfos()
	if len(infos) != 1 || infos[0].State != QueryFailed || infos[0].Error == "" {
		t.Fatalf("infos = %+v", infos)
	}
	if n := coord.Obs().Snapshot().Counters["queries_failed"]; n != 1 {
		t.Errorf("queries_failed = %d", n)
	}
}

// TestRemoveWorkerAbortsInflight: removing a worker aborts its in-flight
// tasks so readers fail immediately with a descriptive error instead of
// hanging until the HTTP timeout against a vanished node.
func TestRemoveWorkerAbortsInflight(t *testing.T) {
	coord := NewCoordinator(newCatalogs(t))
	w := &workerClient{addr: "10.255.255.1:8080", http: http.DefaultClient} // unreachable on purpose
	coord.mu.Lock()
	coord.workers[w.addr] = w
	coord.mu.Unlock()

	th := &taskHandle{worker: w, taskID: "q1.f1.t0", req: TaskRequest{TaskID: "q1.f1.t0"}}
	coord.trackTask(th)
	coord.RemoveWorker(w.addr)

	op := &remoteSourceOperator{c: coord, qs: newQueryState(&coord.cfg), tasks: []*taskHandle{th}}
	_, err := op.Next()
	if err == nil {
		t.Fatal("expected abort error")
	}
	want := "worker 10.255.255.1:8080 was removed from the cluster with task q1.f1.t0 in flight"
	if !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v", err)
	}

	coord.mu.Lock()
	defer coord.mu.Unlock()
	if len(coord.inflight) != 0 {
		t.Errorf("inflight not cleaned: %v", coord.inflight)
	}
}

// TestDistributedExplainAnalyze is the acceptance check: EXPLAIN ANALYZE over
// a 2-worker cluster returns every fragment's plan annotated with nonzero
// actual row counts and timings, and GET /v1/query/{id} serves the same
// statistics as JSON.
func TestDistributedExplainAnalyze(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 2)
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	res, err := coord.Query(session(),
		"EXPLAIN ANALYZE SELECT city_id, count(*) AS n FROM trips GROUP BY city_id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "Query Plan" {
		t.Fatalf("columns = %v", res.Columns)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	text := rows[0][0].(string)

	if !strings.Contains(text, "Fragment 0 (coordinator):") {
		t.Errorf("missing coordinator fragment:\n%s", text)
	}
	if !strings.Contains(text, "2 tasks):") {
		t.Errorf("missing source fragment task count:\n%s", text)
	}
	// Every operator line is annotated, with nonzero rows and timings.
	planLines, statLines := 0, 0
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "- ") {
			planLines++
		}
		if strings.HasPrefix(trimmed, "rows: ") {
			statLines++
		}
	}
	if planLines == 0 || planLines != statLines {
		t.Fatalf("plan lines = %d, stat lines = %d:\n%s", planLines, statLines, text)
	}
	if strings.Contains(text, "rows: 0 in, 0 out") {
		t.Errorf("operator with no recorded rows:\n%s", text)
	}
	if !strings.Contains(text, "rows: 80 in, 80 out") {
		t.Errorf("merged scan row count missing:\n%s", text)
	}
	if !strings.Contains(text, "tasks: 2") {
		t.Errorf("merged task count missing:\n%s", text)
	}
	if !regexp.MustCompile(`wall: [1-9][0-9.]*(ns|µs|ms|s)`).MatchString(text) {
		t.Errorf("no nonzero wall times:\n%s", text)
	}
	// Hive footer-cache gauges registered on the coordinator show up.
	if !strings.Contains(text, "Cache:") || !strings.Contains(text, "hive.cache.") {
		t.Errorf("cache footer missing:\n%s", text)
	}

	// /v1/query/{id} serves the same stats as JSON.
	local := coord.QueryInfos()[0]
	resp, err := http.Get("http://" + coord.Addr() + "/v1/query/" + local.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /v1/query/%s: %d %s", local.ID, resp.StatusCode, body)
	}
	var remote QueryInfo
	if err := json.NewDecoder(resp.Body).Decode(&remote); err != nil {
		t.Fatal(err)
	}
	if remote.ID != local.ID || remote.State != QueryFinished {
		t.Fatalf("remote = %+v", remote)
	}
	if !reflect.DeepEqual(remote.Stages, local.Stages) {
		t.Errorf("stage stats over HTTP differ:\nlocal  %+v\nremote %+v", local.Stages, remote.Stages)
	}
}

// TestCoordinatorQueryEndpoints: /v1/query lists recent queries most recent
// first and /v1/stats serves the cluster metrics snapshot.
func TestCoordinatorQueryEndpoints(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 1)
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })

	for i := 0; i < 3; i++ {
		if _, err := coord.Query(session(), fmt.Sprintf("SELECT %d", i)); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get("http://" + coord.Addr() + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []QueryInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 || list[0].Query != "SELECT 2" || list[2].Query != "SELECT 0" {
		t.Fatalf("list = %+v", list)
	}

	resp2, err := http.Get("http://" + coord.Addr() + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap struct {
		Counters map[string]int64
		Gauges   map[string]float64
	}
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["queries_finished"] != 3 {
		t.Errorf("stats = %+v", snap)
	}
	if _, ok := snap.Gauges["queries_outstanding"]; !ok {
		t.Errorf("no outstanding gauge: %+v", snap)
	}
}

// TestQueryLogEviction: the ring keeps only the newest entries.
func TestQueryLogEviction(t *testing.T) {
	l := newQueryLog(2)
	for i := 0; i < 5; i++ {
		l.add(&QueryInfo{ID: fmt.Sprintf("q%d", i)})
	}
	got := l.list()
	if len(got) != 2 || got[0].ID != "q4" || got[1].ID != "q3" {
		t.Fatalf("list = %+v", got)
	}
	if _, ok := l.get("q0"); ok {
		t.Error("q0 not evicted")
	}
}
