package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"prestolite/internal/connector"
)

// fakeSplit is a named split for exercising the assignment logic directly.
type fakeSplit string

func (s fakeSplit) Description() string { return string(s) }

func fakeWorkers(n int) []*workerClient {
	out := make([]*workerClient, n)
	for i := range out {
		out[i] = &workerClient{addr: fmt.Sprintf("10.0.0.%d:8080", i+1)}
	}
	return out
}

func fakeSplits(n int) []connector.Split {
	out := make([]connector.Split, n)
	for i := range out {
		out[i] = fakeSplit(fmt.Sprintf("/warehouse/dash/events/part-%05d.parquet", i))
	}
	return out
}

// TestAffinityFirstChoicePlacement: soft affinity is only worth its load-cap
// complexity if the cap rarely interferes — at dashboard scale the vast
// majority of splits must land on their rendezvous-hashed first choice, or
// the worker-local caches churn on every worker-set change.
func TestAffinityFirstChoicePlacement(t *testing.T) {
	splits := fakeSplits(200)
	workers := fakeWorkers(8)
	assignment, placed, overflow := assignSplits(splits, workers, true)

	total := 0
	for _, set := range assignment {
		total += len(set)
	}
	if total != len(splits) {
		t.Fatalf("assigned %d of %d splits", total, len(splits))
	}
	if placed+overflow != len(splits) {
		t.Fatalf("placed %d + overflow %d != %d splits", placed, overflow, len(splits))
	}

	// Count splits that landed on their top-ranked worker independently of
	// the counters, so the counters themselves are verified too.
	firstChoice := 0
	for wi, set := range assignment {
		for _, s := range set {
			if rankWorkers(s.Description(), workers)[0] == wi {
				firstChoice++
			}
		}
	}
	if firstChoice != placed {
		t.Errorf("placed counter = %d but %d splits sit on their first choice", placed, firstChoice)
	}
	if pct := 100 * firstChoice / len(splits); pct < 90 {
		t.Errorf("only %d%% of splits on their hashed worker, want >= 90%%", pct)
	}

	// The load cap holds: no worker exceeds fair share + 1.
	capPer := loadCap(len(splits), len(workers))
	for wi, set := range assignment {
		if len(set) > capPer {
			t.Errorf("worker %d holds %d splits, cap is %d", wi, len(set), capPer)
		}
	}
}

// TestAffinityIsDeterministic: the same splits over the same worker set
// always produce the same assignment — there is no hidden state, so a
// coordinator restart (or a second coordinator) schedules identically.
func TestAffinityIsDeterministic(t *testing.T) {
	splits := fakeSplits(64)
	workers := fakeWorkers(5)
	a1, _, _ := assignSplits(splits, workers, true)
	a2, _, _ := assignSplits(splits, workers, true)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Error("repeated assignment diverged")
	}
}

// TestAffinityMinimalDisruption is the rendezvous-hashing property the tier-1
// caches depend on: removing one worker must only move the splits that lived
// on it — every other split keeps its worker and therefore its warm cache.
func TestAffinityMinimalDisruption(t *testing.T) {
	splits := fakeSplits(120)
	workers := fakeWorkers(6)
	before, _, _ := assignSplits(splits, workers, true)

	// Drop worker 3 and reassign.
	survivors := append(append([]*workerClient{}, workers[:3]...), workers[4:]...)
	after, _, _ := assignSplits(splits, survivors, true)

	locate := func(assignment [][]connector.Split, ws []*workerClient, desc string) string {
		for wi, set := range assignment {
			for _, s := range set {
				if s.Description() == desc {
					return ws[wi].addr
				}
			}
		}
		return ""
	}
	moved := 0
	for _, s := range splits {
		b, a := locate(before, workers, s.Description()), locate(after, survivors, s.Description())
		if b != workers[3].addr && b != a {
			moved++
		}
	}
	// The load cap shifts slightly when the fleet shrinks, so a handful of
	// overflow splits may migrate; wholesale reshuffling (what a modulo
	// scheduler does) moves most of them.
	if moved > len(splits)/10 {
		t.Errorf("%d of %d surviving splits moved after one worker loss, want <= 10%%", moved, len(splits))
	}
}

// TestAffinityRoundRobinFallback: affinity off is the legacy round-robin —
// perfectly balanced, no affinity counters.
func TestAffinityRoundRobinFallback(t *testing.T) {
	splits := fakeSplits(9)
	workers := fakeWorkers(3)
	assignment, placed, overflow := assignSplits(splits, workers, false)
	if placed != 0 || overflow != 0 {
		t.Errorf("round-robin counted affinity: placed=%d overflow=%d", placed, overflow)
	}
	for wi, set := range assignment {
		if len(set) != 3 {
			t.Errorf("worker %d holds %d splits, want 3", wi, len(set))
		}
	}
}

// TestAffinitySchedulingEndToEnd: with the default session, repeated queries
// place >= 90% of their splits on hashed workers (visible through the
// coordinator counters), and affinity_scheduling=false suppresses them.
func TestAffinitySchedulingEndToEnd(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 3)
	s := session()
	for i := 0; i < 4; i++ {
		if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err != nil {
			t.Fatal(err)
		}
	}
	snap := coord.Obs().Snapshot()
	placed, overflow := snap.Counters["splits_affinity_placed"], snap.Counters["splits_affinity_overflow"]
	if placed+overflow != 4*8 {
		t.Fatalf("affinity counters cover %d splits, want 32 (4 queries x 8 files)", placed+overflow)
	}
	// 8 splits over 3 workers is the worst case for the cap (fair share +1
	// = 4, so one hot worker sheds a split per query); the >= 90% contract
	// at dashboard scale is TestAffinityFirstChoicePlacement's assertion.
	if 100*placed/(placed+overflow) < 75 {
		t.Errorf("placed=%d overflow=%d: fewer than 75%% of splits on their hashed worker", placed, overflow)
	}

	s.Properties["affinity_scheduling"] = "false"
	if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err != nil {
		t.Fatal(err)
	}
	snap2 := coord.Obs().Snapshot()
	if snap2.Counters["splits_affinity_placed"] != placed || snap2.Counters["splits_affinity_overflow"] != overflow {
		t.Error("affinity_scheduling=false still moved the affinity counters")
	}
}

// TestAffinityStickyAcrossQueries: the end-to-end stickiness contract — the
// per-worker split distribution of a repeated query is identical run over
// run (same splits, same workers, same hash), which is what turns repeats
// into chunk- and fragment-cache hits.
func TestAffinityStickyAcrossQueries(t *testing.T) {
	coord, workers := newCluster(t, newCatalogs(t), 3)
	s := session()
	s.Properties["task_concurrency"] = "1"

	distribution := func() string {
		var sb strings.Builder
		for _, w := range workers {
			hits := w.Obs.Snapshot().Counters["tasks_started"]
			fmt.Fprintf(&sb, "%s=%d;", w.Addr(), hits)
		}
		return sb.String()
	}
	if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err != nil {
		t.Fatal(err)
	}
	base := distribution()
	deltas := map[string]bool{}
	prev := base
	for i := 0; i < 3; i++ {
		if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err != nil {
			t.Fatal(err)
		}
		cur := distribution()
		deltas[diffTasks(t, prev, cur)] = true
		prev = cur
	}
	if len(deltas) != 1 {
		t.Errorf("per-worker task deltas varied across identical queries: %v", deltas)
	}
}

// diffTasks renders the per-worker delta between two tasks_started snapshots.
func diffTasks(t *testing.T, before, after string) string {
	t.Helper()
	parse := func(s string) map[string]int64 {
		out := map[string]int64{}
		for _, kv := range strings.Split(strings.TrimSuffix(s, ";"), ";") {
			parts := strings.Split(kv, "=")
			if len(parts) != 2 {
				t.Fatalf("bad snapshot %q", s)
			}
			var n int64
			fmt.Sscanf(parts[1], "%d", &n)
			out[parts[0]] = n
		}
		return out
	}
	b, a := parse(before), parse(after)
	addrs := make([]string, 0, len(a))
	for addr := range a {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	var sb strings.Builder
	for _, addr := range addrs {
		fmt.Fprintf(&sb, "%s+%d;", addr, a[addr]-b[addr])
	}
	return sb.String()
}
