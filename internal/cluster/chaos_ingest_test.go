package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/hybrid"
	"prestolite/internal/druid"
	"prestolite/internal/fault"
	"prestolite/internal/fsys"
	"prestolite/internal/hdfs"
	"prestolite/internal/ingest"
	"prestolite/internal/metastore"
	"prestolite/internal/obs"
	"prestolite/internal/planner"
	"prestolite/internal/types"
	"prestolite/internal/workload"
)

// Chaos for the real-time path (run via `make chaos-ingest`): a continuous
// rate-limited producer streams events through the partitioned log into
// druid segments while analytical hybrid queries run on a faulted cluster.
// The contract under test is the ingestion SLA: events become queryable
// within 5 seconds, and once the stream quiesces the hybrid table is
// row-exact — every historical row and every streamed event counted exactly
// once, despite worker faults, slow reads, seals and compactions happening
// underneath the queries.

const (
	ingestBoundary  = int64(1000) // watermark: hive below, druid at or above
	ingestHistRows  = 500
	ingestEvents    = 4000
	ingestRate      = 2000 // events/sec
	ingestSLA       = 5 * time.Second
	ingestTopicName = "events"
)

// ingestHistClicks is the clicks value of historical row i (ts == i).
func ingestHistClicks(i int) int64 { return int64(i % 10) }

// ingestCatalogs builds the hybrid stack: hive historical (behind the fault
// FS), a live druid store fed by the segment writer, and the hybrid catalog
// splitting "events" on the watermark.
func ingestCatalogs(t *testing.T, inj *fault.Injector) (*connector.Registry, *druid.Table) {
	t.Helper()
	var fs fsys.FileSystem = hdfs.New(hdfs.Config{})
	if inj != nil {
		fs = &fault.FS{Injector: inj, Base: fs}
	}
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar, types.Bigint})
	for i := 0; i < ingestHistRows; i++ {
		pb.AppendRow([]any{int64(i), []string{"us", "de", "jp"}[i%3], ingestHistClicks(i)})
	}
	if err := loader.CreateTable("web", "events_hist", cols, []*block.Page{pb.Build()}); err != nil {
		t.Fatal(err)
	}

	store := druid.NewStore()
	rt, err := store.CreateTable("events_rt", []druid.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Small segments so the stream exercises seal + compaction mid-query.
	rt.SetSegmentConfig(druid.SegmentConfig{
		SealRows:         1500,
		SealAge:          500 * time.Millisecond,
		CompactBelowRows: 1000,
		CompactBatch:     8,
	})

	reg := connector.NewRegistry()
	reg.Register("hive", hive.New("hive", ms, fs, hive.Options{}))
	reg.Register("druid", druidconn.New("druid", &druid.EmbeddedClient{Store: store}))
	hc := hybrid.New("hybrid", reg)
	if err := hc.AddTable("events", hybrid.TableConfig{
		Historical: connector.HybridPart{Catalog: "hive", Schema: "web", Table: "events_hist"},
		Realtime:   connector.HybridPart{Catalog: "druid", Schema: "default", Table: "events_rt"},
		TimeColumn: "ts",
		Boundary:   ingestBoundary,
	}); err != nil {
		t.Fatal(err)
	}
	reg.Register("hybrid", hc)
	return reg, rt
}

func ingestSession() *planner.Session {
	return &planner.Session{Catalog: "hybrid", Schema: "default", User: "chaos", Properties: map[string]string{}}
}

// ingestCount runs a single-value aggregate on the cluster and returns it.
func ingestCount(t *testing.T, coord *Coordinator, query string) int64 {
	t.Helper()
	res, err := coord.Query(ingestSession(), query)
	if err != nil {
		t.Fatalf("query failed: %v\n  query: %s", err, query)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("want single aggregate value, got %v", rows)
	}
	v, ok := rows[0][0].(int64)
	if !ok {
		t.Fatalf("aggregate value %v (%T) is not int64", rows[0][0], rows[0][0])
	}
	return v
}

// TestChaosIngestFreshnessAndExactness is the PR's SLA proof. Per seed:
//
//  1. stream ingestEvents deterministic events at ingestRate through the
//     partitioned log into druid, while one worker's result path is dead
//     and hive reads are randomly delayed;
//  2. during the stream, analytical hybrid counts must never decrease and
//     never exceed what the producer has sent (no duplicates from the
//     boundary or from segment churn);
//  3. marker events sent mid-stream must become queryable within the 5s
//     SLA (polled end-to-end: producer -> log -> segment -> SQL);
//  4. after quiesce, counts and sums are exact against the replayable
//     stream definition, and the freshness histogram p99 is within SLA.
func TestChaosIngestFreshnessAndExactness(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		catalogs, rt := ingestCatalogs(t, inj)
		coord, workers := chaosCluster(t, catalogs, 3, chaosConfig(inj))
		inj.FaultHTTP(fault.HTTPRule{Target: workers[0].Addr(), Path: "/results", DropProb: 1})
		inj.FaultFS(fault.FSRule{Path: "events_hist", Ops: []string{"read"}, DelayProb: 0.2, Delay: 2 * time.Millisecond})

		log := ingest.NewLog()
		topic, err := log.CreateTopic(ingestTopicName, 4)
		if err != nil {
			t.Fatal(err)
		}
		producer := ingest.NewProducer(topic, ingest.ProducerConfig{BatchRecords: 64, Linger: 5 * time.Millisecond})
		reg := obs.NewRegistry()
		writer := ingest.NewSegmentWriter(log, topic, rt, ingest.WriterConfig{
			MaintainEvery: 50 * time.Millisecond,
		})
		writer.RegisterObsMetrics(reg)
		writer.Start()

		var markers, markerClicks int64
		watchdog(t, 120*time.Second, func() {
			ctx := context.Background()
			streamDone := make(chan int64, 1)
			go func() {
				sent, err := workload.RunStream(ctx, workload.StreamConfig{
					EventsPerSec: ingestRate,
					MaxEvents:    ingestEvents,
					Seed:         seed,
				}, func(ev workload.StreamEvent) error {
					return producer.Send(ev.Key, ev.Time, []any{ingestBoundary + ev.Seq, ev.Country, ev.Clicks})
				})
				if err != nil {
					t.Errorf("seed %d: stream stopped early after %d events: %v", seed, sent, err)
				}
				streamDone <- sent
			}()

			// Phase 2+3: concurrent queries and freshness probes while the
			// stream runs (~2s at ingestRate).
			prev := int64(0)
			probe := 0
			for done := false; !done; {
				select {
				case <-streamDone:
					done = true
				default:
					n := ingestCount(t, coord, "SELECT count(*) AS n FROM events")
					if n < prev {
						t.Errorf("seed %d: count went backwards: %d -> %d", seed, prev, n)
					}
					ceiling := ingestHistRows + producer.Sent()
					if n > ceiling {
						t.Errorf("seed %d: count %d exceeds rows produced so far (%d) — duplicates", seed, n, ceiling)
					}
					prev = n

					// Freshness probe: a marker event must be queryable in 5s.
					markerTs := int64(10_000_000) + int64(probe)
					probe++
					sent := time.Now()
					if err := producer.Send("marker", sent, []any{markerTs, "marker", int64(1)}); err != nil {
						t.Fatalf("seed %d: marker send: %v", seed, err)
					}
					markers++
					markerClicks++
					q := fmt.Sprintf("SELECT count(*) AS n FROM events WHERE ts = %d", markerTs)
					for ingestCount(t, coord, q) != 1 {
						if time.Since(sent) > ingestSLA {
							t.Fatalf("seed %d: marker %d not queryable after %v (SLA %v)", seed, markerTs, time.Since(sent), ingestSLA)
						}
						time.Sleep(20 * time.Millisecond)
					}
					if lat := time.Since(sent); lat > ingestSLA {
						t.Errorf("seed %d: marker freshness %v exceeds SLA %v", seed, lat, ingestSLA)
					}
				}
			}

			// Phase 4: quiesce — flush the producer, drain the log, stop.
			if err := producer.Close(); err != nil {
				t.Fatalf("seed %d: producer close: %v", seed, err)
			}
			deadline := time.Now().Add(ingestSLA)
			for log.Lag(ingest.DefaultWriterGroup, ingestTopicName) > 0 {
				if time.Now().After(deadline) {
					t.Fatalf("seed %d: lag %d not drained within %v", seed, log.Lag(ingest.DefaultWriterGroup, ingestTopicName), ingestSLA)
				}
				time.Sleep(10 * time.Millisecond)
			}
			writer.Stop()
		})

		// Exact assertions against the replayable stream definition.
		var streamClicks int64
		for i := int64(0); i < ingestEvents; i++ {
			streamClicks += workload.MakeStreamEvent(seed, i, time.Time{}).Clicks
		}
		wantTotal := int64(ingestHistRows) + ingestEvents + markers
		if got := ingestCount(t, coord, "SELECT count(*) AS n FROM events"); got != wantTotal {
			t.Errorf("seed %d: final count(*) = %d, want %d", seed, got, wantTotal)
		}
		if got := ingestCount(t, coord, fmt.Sprintf("SELECT count(*) AS n FROM events WHERE ts < %d", ingestBoundary)); got != int64(ingestHistRows) {
			t.Errorf("seed %d: historical count = %d, want %d", seed, got, ingestHistRows)
		}
		if got := ingestCount(t, coord, fmt.Sprintf("SELECT count(*) AS n FROM events WHERE ts >= %d", ingestBoundary)); got != ingestEvents+markers {
			t.Errorf("seed %d: real-time count = %d, want %d", seed, got, ingestEvents+markers)
		}
		var wantClicks int64
		for i := 0; i < ingestHistRows; i++ {
			wantClicks += ingestHistClicks(i)
		}
		wantClicks += streamClicks + markerClicks
		if got := ingestCount(t, coord, "SELECT sum(clicks) AS s FROM events"); got != wantClicks {
			t.Errorf("seed %d: final sum(clicks) = %d, want %d", seed, got, wantClicks)
		}

		// Ingest pipeline metrics: every row written, none dropped, and the
		// end-to-end freshness histogram inside SLA.
		snap := reg.Snapshot()
		if got := snap.Counters["ingest_rows_written"]; got != ingestEvents+markers {
			t.Errorf("seed %d: ingest_rows_written = %d, want %d", seed, got, ingestEvents+markers)
		}
		if got := snap.Counters["ingest_write_errors"]; got != 0 {
			t.Errorf("seed %d: ingest_write_errors = %d, want 0", seed, got)
		}
		hs := writer.Freshness().Snapshot()
		if hs.Count != ingestEvents+markers {
			t.Errorf("seed %d: freshness observations = %d, want %d", seed, hs.Count, ingestEvents+markers)
		}
		if p99 := time.Duration(hs.P99); p99 > ingestSLA {
			t.Errorf("seed %d: freshness p99 = %v exceeds SLA %v", seed, p99, ingestSLA)
		}

		// The lifecycle kept the segment census bounded: the stream must not
		// leave one segment per micro-batch behind.
		stats := rt.Stats()
		if stats.Sealed+stats.Open > 40 {
			t.Errorf("seed %d: %d segments for %d rows — lifecycle not consolidating (%+v)",
				seed, stats.Sealed+stats.Open, stats.Rows, stats)
		}
		t.Logf("seed %d: segments open=%d sealed=%d compacted=%d rows=%d freshness p50=%v p99=%v",
			seed, stats.Open, stats.Sealed, stats.Compacted, stats.Rows,
			time.Duration(hs.P50), time.Duration(hs.P99))
	}
}
