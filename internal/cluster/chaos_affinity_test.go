package cluster

import (
	"testing"
	"time"

	"prestolite/internal/fault"
)

// TestChaosAffinityCachedWorkerDeath is the tentpole's degradation proof:
// affinity scheduling (on by default) concentrates each split's repeats on
// one worker, whose chunk and fragment-result caches go hot — then that
// worker dies mid-fetch. The soft-affinity contract is that the caches are
// an optimization, never a correctness dependency: the reschedule machinery
// re-executes the dead worker's splits cold on survivors and every query
// still returns the exact clean-cluster rows, with the recovery visible as
// task_retries.
func TestChaosAffinityCachedWorkerDeath(t *testing.T) {
	want := chaosBaseline(t)
	for _, seed := range chaosSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
		inj := fault.NewInjector(seed)
		catalogs := chaosCatalogs(t, inj)
		coord := NewCoordinatorWithConfig(catalogs, chaosConfig(inj))
		var workers []*Worker
		for i := 0; i < 3; i++ {
			w := NewWorker(catalogs)
			w.GracePeriod = 20 * time.Millisecond
			w.EnableFragmentResultCache = true
			if err := w.Start("127.0.0.1:0"); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { w.Close() })
			coord.AddWorker(w.Addr())
			workers = append(workers, w)
		}

		// Warm pass: no faults. Affinity places splits, workers fill their
		// fragment caches (and the shared hive chunk cache fills underneath).
		watchdog(t, 60*time.Second, func() {
			for i, q := range chaosQueries {
				if got := mustRows(t, coord, q); got != want[i] {
					t.Errorf("seed %d query %d: warm pass diverged\ngot  %s\nwant %s", seed, i, got, want[i])
				}
			}
		})
		if placed := counter(coord, "splits_affinity_placed"); placed == 0 {
			t.Fatalf("seed %d: affinity placed no splits — the default is off?", seed)
		}

		// Kill the cached worker: it still accepts tasks (affinity keeps
		// hashing splits onto it) but every result fetch is dropped — the
		// deterministic stand-in for a node dying with hot caches.
		inj.FaultHTTP(fault.HTTPRule{Target: workers[0].Addr(), Path: "/results", DropProb: 1})

		retriesBefore := counter(coord, "task_retries")
		hitsBefore := workers[1].FragmentCacheHits.Load() + workers[2].FragmentCacheHits.Load()
		watchdog(t, 60*time.Second, func() {
			for i, q := range chaosQueries {
				if got := mustRows(t, coord, q); got != want[i] {
					t.Errorf("seed %d query %d: rows diverged after cached-worker death\ngot  %s\nwant %s", seed, i, got, want[i])
				}
			}
		})
		if n := counter(coord, "task_retries") - retriesBefore; n < 1 {
			t.Errorf("seed %d: task_retries moved by %d, want >= 1 (dead worker's splits were never rescheduled)", seed, n)
		}
		// The survivors' caches still pay off: their own affinity-pinned
		// splits repeat as fragment-cache hits even while worker 0's splits
		// re-execute cold.
		if n := workers[1].FragmentCacheHits.Load() + workers[2].FragmentCacheHits.Load() - hitsBefore; n < 1 {
			t.Errorf("seed %d: surviving workers served %d fragment-cache hits, want >= 1", seed, n)
		}
	}
}
