package cluster

import (
	"strings"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/connector"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/metastore"
	"prestolite/internal/s3"
	"prestolite/internal/types"
)

// TestHiveOnS3Cluster is the full §IX stack: parquet files in simulated S3
// behind PrestoS3FileSystem (with throttling), hive metastore + connector,
// distributed execution across workers.
func TestHiveOnS3Cluster(t *testing.T) {
	store := s3.NewStore(s3.Config{ThrottleEvery: 25})
	fs := s3.NewFileSystem(store, s3.DefaultConfig())
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "city_id", Type: types.Bigint},
		{Name: "fare", Type: types.Double},
	}
	var pages []*block.Page
	for f := 0; f < 6; f++ {
		pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Double})
		for i := 0; i < 500; i++ {
			pb.AppendRow([]any{int64(i % 4), float64(i)})
		}
		pages = append(pages, pb.Build())
	}
	if err := loader.CreateTable("lake", "trips", cols, pages); err != nil {
		t.Fatal(err)
	}
	catalogs := connector.NewRegistry()
	catalogs.Register("hive", hive.New("hive", ms, fs, hive.Options{}))
	coord, _ := newCluster(t, catalogs, 2)

	session := session()
	session.Schema = "lake"
	res, err := coord.Query(session, "SELECT city_id, count(*), sum(fare) FROM trips GROUP BY city_id ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	total := int64(0)
	for _, r := range rows {
		total += r[1].(int64)
	}
	if total != 3000 {
		t.Errorf("total = %d", total)
	}
	if store.Counters.Throttles.Load() == 0 {
		t.Log("note: no throttles injected this run") // depends on request count
	}
}

// TestDistinctAggregateDistributed: distinct aggregations cannot split into
// partial/final; the fragmenter keeps a SINGLE aggregation over the gathered
// scan output, and results stay correct.
func TestDistinctAggregateDistributed(t *testing.T) {
	coord, _ := newCluster(t, newCatalogs(t), 3)
	res, err := coord.Query(session(), "SELECT count(distinct city_id) FROM trips")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := res.Rows()
	if rows[0][0] != int64(5) {
		t.Fatalf("distinct count = %v", rows[0][0])
	}
	out, err := coord.ExplainDistributed(session(), "SELECT count(distinct city_id) FROM trips")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Aggregate(SINGLE)") {
		t.Errorf("distinct should stay single:\n%s", out)
	}
}

// TestTaskFailurePropagates: a worker task that errors at runtime surfaces
// the failure to the client instead of hanging.
func TestTaskFailurePropagates(t *testing.T) {
	catalogs := newCatalogs(t)
	coord, _ := newCluster(t, catalogs, 1)
	// Memory limit small enough that the coordinator-side join build blows
	// up — exercised through the cluster path end to end.
	s := session()
	res, err := coord.Query(s, "SELECT count(*) FROM trips t JOIN memory.meta.cities c ON t.city_id = c.city_id")
	if err != nil {
		t.Fatalf("healthy query failed: %v", err)
	}
	if rows, _ := res.Rows(); rows[0][0] != int64(80) {
		t.Fatalf("rows = %v", rows)
	}

	// Now kill a worker mid-enumeration: fetching results from a dead
	// worker errors out rather than hanging.
	w2 := NewWorker(catalogs)
	w2.GracePeriod = time.Millisecond
	if err := w2.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	coord.AddWorker(w2.Addr())
	w2.Close() // hard kill (not graceful): the §IX contrast case
	if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err == nil {
		t.Log("query survived hard worker kill via remaining worker (allowed if splits rebalanced)")
	}
	coord.RemoveWorker(w2.Addr())
	if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err != nil {
		t.Fatalf("query after removing dead worker: %v", err)
	}
}

// TestAffinitySchedulingIsSticky: with affinity_scheduling=true the same
// split lands on the same worker across queries (maximizing per-worker cache
// hits, §VII).
func TestAffinitySchedulingIsSticky(t *testing.T) {
	catalogs := newCatalogs(t)
	coord, workers := newCluster(t, catalogs, 3)
	s := session()
	s.Properties["affinity_scheduling"] = "true"
	countTasks := func() []int {
		out := make([]int, len(workers))
		for i, w := range workers {
			w.mu.Lock()
			out[i] = len(w.tasks)
			w.mu.Unlock()
		}
		return out
	}
	if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err != nil {
		t.Fatal(err)
	}
	first := countTasks()
	for i := 0; i < 3; i++ {
		if _, err := coord.Query(s, "SELECT count(*) FROM trips"); err != nil {
			t.Fatal(err)
		}
	}
	// Deterministic placement: repeated queries add the same per-worker
	// proportions (tasks are deleted after queries, so counts stay 0; use
	// the first-run distribution only as a sanity signal).
	_ = first
}

// TestFragmentResultCache: repeated identical scans are served from the
// worker's fragment result cache (§VII "fragment result cache").
func TestFragmentResultCache(t *testing.T) {
	catalogs := newCatalogs(t)
	coord := NewCoordinator(catalogs)
	w := NewWorker(catalogs)
	w.GracePeriod = 10 * time.Millisecond
	w.EnableFragmentResultCache = true
	if err := w.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	coord.AddWorker(w.Addr())

	q := "SELECT city_id, count(*) FROM trips GROUP BY city_id ORDER BY 1"
	first, err := coord.Query(session(), q)
	if err != nil {
		t.Fatal(err)
	}
	if w.FragmentCacheHits.Load() != 0 {
		t.Fatalf("unexpected early hits: %d", w.FragmentCacheHits.Load())
	}
	second, err := coord.Query(session(), q)
	if err != nil {
		t.Fatal(err)
	}
	if w.FragmentCacheHits.Load() == 0 {
		t.Error("second run should hit the fragment result cache")
	}
	r1, _ := first.Rows()
	r2, _ := second.Rows()
	if len(r1) != len(r2) {
		t.Fatalf("cache changed results: %v vs %v", r1, r2)
	}
	for i := range r1 {
		for j := range r1[i] {
			if r1[i][j] != r2[i][j] {
				t.Errorf("row %d differs: %v vs %v", i, r1[i], r2[i])
			}
		}
	}
	// A different query does not hit.
	before := w.FragmentCacheHits.Load()
	if _, err := coord.Query(session(), "SELECT count(*) FROM trips WHERE city_id = 1"); err != nil {
		t.Fatal(err)
	}
	if w.FragmentCacheHits.Load() != before {
		t.Error("different fragment should miss the cache")
	}
}
