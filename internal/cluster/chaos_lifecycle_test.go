// Package cluster_test holds the rolling-restart lifecycle chaos suite (run
// via `make chaos-lifecycle`). It lives in an external test package because
// the scenario spans the whole stack — durable ingest, two clusters, and the
// gateway's resubmission path — and the gateway package imports cluster.
package cluster_test

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prestolite/internal/block"
	"prestolite/internal/cluster"
	"prestolite/internal/connector"
	druidconn "prestolite/internal/connectors/druid"
	"prestolite/internal/connectors/hive"
	"prestolite/internal/connectors/hybrid"
	"prestolite/internal/druid"
	"prestolite/internal/fault"
	"prestolite/internal/fsys"
	"prestolite/internal/gateway"
	"prestolite/internal/hdfs"
	"prestolite/internal/ingest"
	"prestolite/internal/metastore"
	"prestolite/internal/types"
)

// The scenario: a continuous per-record-acked producer streams events into a
// WAL-backed durable log feeding druid, while hybrid count/sum queries run
// through the gateway's proxying /v1/execute endpoint — and meanwhile the
// ingest process is SIGKILL-restarted (writer killed, log abandoned without
// Close, recovered from the WAL) and each coordinator in turn is gracefully
// drained and replaced. The contract:
//
//   - zero acked-event loss: every Send that returned nil is in the final
//     table exactly once, across every restart;
//   - queries never see a count decrease or a duplicate-inflated count, and
//     either succeed or fail with a clean error — never a hang;
//   - freshness recovers after each restart: a marker event becomes
//     queryable through the gateway within the 5s SLA.
const (
	lcBoundary  = int64(1000)
	lcHistRows  = 300
	lcBatch     = 250 // events streamed between lifecycle events
	lcSLA       = 5 * time.Second
	lcTopicName = "events"
)

func lifecycleSeeds(t *testing.T) []int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 42}
}

func lcHistClicks(i int) int64 { return int64(i % 10) }

// lifecycleCatalogs builds the hybrid stack shared by both clusters: hive
// historical below the boundary, the live druid table at or above it.
func lifecycleCatalogs(t *testing.T) (*connector.Registry, *druid.Table) {
	t.Helper()
	fs := hdfs.New(hdfs.Config{})
	ms := metastore.New()
	loader := &hive.Loader{MS: ms, FS: fs}
	cols := []metastore.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	}
	pb := block.NewPageBuilder([]*types.Type{types.Bigint, types.Varchar, types.Bigint})
	for i := 0; i < lcHistRows; i++ {
		pb.AppendRow([]any{int64(i), []string{"us", "de", "jp"}[i%3], lcHistClicks(i)})
	}
	if err := loader.CreateTable("web", "events_hist", cols, []*block.Page{pb.Build()}); err != nil {
		t.Fatal(err)
	}

	store := druid.NewStore()
	rt, err := store.CreateTable("events_rt", []druid.Column{
		{Name: "ts", Type: types.Bigint},
		{Name: "country", Type: types.Varchar},
		{Name: "clicks", Type: types.Bigint},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetSegmentConfig(druid.SegmentConfig{
		SealRows:         400,
		SealAge:          200 * time.Millisecond,
		CompactBelowRows: 300,
		CompactBatch:     8,
	})

	reg := connector.NewRegistry()
	reg.Register("hive", hive.New("hive", ms, fs, hive.Options{}))
	reg.Register("druid", druidconn.New("druid", &druid.EmbeddedClient{Store: store}))
	hc := hybrid.New("hybrid", reg)
	if err := hc.AddTable(lcTopicName, hybrid.TableConfig{
		Historical: connector.HybridPart{Catalog: "hive", Schema: "web", Table: "events_hist"},
		Realtime:   connector.HybridPart{Catalog: "druid", Schema: "default", Table: "events_rt"},
		TimeColumn: "ts",
		Boundary:   lcBoundary,
	}); err != nil {
		t.Fatal(err)
	}
	reg.Register("hybrid", hc)
	return reg, rt
}

func lifecycleClientConfig() cluster.ClientConfig {
	return cluster.ClientConfig{
		WorkerTimeout:    2 * time.Second,
		StatementTimeout: 10 * time.Second,
		MaxAttempts:      4,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       20 * time.Millisecond,
		RetryBudget:      32,
		HedgeDelay:       -1,
		PollInterval:     time.Millisecond,
	}
}

// startLifecycleCoordinator starts a coordinator serving HTTP over the given
// (already running) workers.
func startLifecycleCoordinator(t *testing.T, catalogs *connector.Registry, workers []*cluster.Worker) *cluster.Coordinator {
	t.Helper()
	coord := cluster.NewCoordinatorWithConfig(catalogs, lifecycleClientConfig())
	coord.DrainGrace = 3 * time.Second
	for _, w := range workers {
		coord.AddWorker(w.Addr())
	}
	if err := coord.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

func startLifecycleWorkers(t *testing.T, catalogs *connector.Registry, n int) []*cluster.Worker {
	t.Helper()
	var workers []*cluster.Worker
	for i := 0; i < n; i++ {
		w := cluster.NewWorker(catalogs)
		w.GracePeriod = 20 * time.Millisecond
		if err := w.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
	}
	return workers
}

// lcBroker owns the durable ingest side and can be crash-restarted: the
// writer is killed, the old Log (and its open WAL handles) abandoned without
// Close — the simulated SIGKILL — and a fresh Log recovered from the same
// directory.
type lcBroker struct {
	t     *testing.T
	fs    fsys.FileSystem
	table *druid.Table

	mu       sync.Mutex
	log      *ingest.Log
	topic    *ingest.Topic
	writer   *ingest.SegmentWriter
	producer *ingest.Producer
}

func newLCBroker(t *testing.T, fs fsys.FileSystem, table *druid.Table) *lcBroker {
	b := &lcBroker{t: t, fs: fs, table: table}
	b.boot(2)
	return b
}

func (b *lcBroker) boot(partitions int) {
	log, err := ingest.NewDurableLog(b.fs, ingest.WALConfig{})
	if err != nil {
		b.t.Fatalf("durable log: %v", err)
	}
	topic, err := log.EnsureTopic(lcTopicName, partitions)
	if err != nil {
		b.t.Fatal(err)
	}
	writer := ingest.NewSegmentWriter(log, topic, b.table, ingest.WriterConfig{
		PollInterval:  2 * time.Millisecond,
		MaintainEvery: 50 * time.Millisecond,
	})
	writer.Start()
	// BatchRecords 1 + disabled linger: Send appends (and WAL-fsyncs) inline,
	// so a nil return IS the durability ack the zero-loss contract counts.
	producer := ingest.NewProducer(topic, ingest.ProducerConfig{BatchRecords: 1, Linger: -1})
	b.log, b.topic, b.writer, b.producer = log, topic, writer, producer
}

// send acks one event (nil return = durable). Concurrent-safe against
// crashRestart.
func (b *lcBroker) send(key string, eventTime time.Time, row []any) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.producer.Send(key, eventTime, row)
}

func (b *lcBroker) lag() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.log.Lag(ingest.DefaultWriterGroup, lcTopicName)
}

func (b *lcBroker) walStats() ingest.WALStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.log.WAL().Stats()
}

func (b *lcBroker) stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writer.Stop()
}

// crashRestart is the ingest half of the rolling restart: SIGKILL (no drain,
// no Close — whatever was fetched-but-uncommitted stays uncommitted, open
// WAL files keep their torn state) followed by recovery from the WAL into
// the same druid table, where the source watermark dedups redelivery.
func (b *lcBroker) crashRestart() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.writer.Kill()
	partitions := b.topic.Partitions()
	// The old log and producer are deliberately abandoned un-Closed.
	b.boot(partitions)
}

// lcExecute runs one statement through the gateway's resubmitting endpoint
// and returns the single aggregate value.
func lcExecute(cl *gateway.Client, query string) (int64, error) {
	res, err := cl.Execute(cluster.StatementRequest{
		Query:   query,
		Catalog: "hybrid",
		Schema:  "default",
		User:    "chaos",
	}, "chaos", "")
	if err != nil {
		return 0, err
	}
	rows, err := res.Rows()
	if err != nil {
		return 0, err
	}
	if len(rows) != 1 || len(rows[0]) != 1 {
		return 0, fmt.Errorf("want single aggregate value, got %v", rows)
	}
	v, ok := rows[0][0].(int64)
	if !ok {
		return 0, fmt.Errorf("aggregate value %v (%T) is not int64", rows[0][0], rows[0][0])
	}
	return v, nil
}

func lifecycleWatchdog(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("lifecycle chaos still running after %v — the stack hung instead of failing cleanly", d)
	}
}

// TestChaosLifecycleRollingRestart is the PR's headline suite. Per seed it
// streams acked events while (1) crash-restarting the ingest process and
// (2) rolling both coordinators through drain-and-replace, with hybrid
// queries running concurrently through the gateway the whole time. Post
// quiesce the table must be row-exact against the acked set.
func TestChaosLifecycleRollingRestart(t *testing.T) {
	for _, seed := range lifecycleSeeds(t) {
		t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)

		catalogs, rt := lifecycleCatalogs(t)
		inj := fault.NewInjector(seed)
		walFS := &fault.FS{Injector: inj, Base: fsys.NewLocal(t.TempDir())}
		broker := newLCBroker(t, walFS, rt)

		workersA := startLifecycleWorkers(t, catalogs, 2)
		workersB := startLifecycleWorkers(t, catalogs, 2)
		coordA := startLifecycleCoordinator(t, catalogs, workersA)
		coordB := startLifecycleCoordinator(t, catalogs, workersB)

		gw, err := gateway.New()
		if err != nil {
			t.Fatal(err)
		}
		gw.LoadTTL = 50 * time.Millisecond
		gw.BreakerCooldown = 100 * time.Millisecond
		if err := gw.AddCluster("a", coordA.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := gw.AddCluster("b", coordB.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := gw.SetRoute("default", "a"); err != nil {
			t.Fatal(err)
		}
		if err := gw.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { gw.Close() })
		cl := gateway.NewClient(gw.Addr())

		var acked atomic.Int64   // events durably acked (Send returned nil)
		var ackedClicks int64    // written by the stream loop only
		var markers atomic.Int64 // freshness probes, ts >= lcBoundary too
		seq := int64(0)

		// streamBatch sends n events, counting only acked ones. A Send may
		// legitimately fail in the crash window (producer replaced mid-call);
		// failed sends are not acked and not owed to the table.
		streamBatch := func(n int) {
			for i := 0; i < n; i++ {
				s := seq
				seq++
				clicks := (s*7 + seed) % 11
				err := broker.send(fmt.Sprintf("k%d", s%17), time.Now(),
					[]any{lcBoundary + s, []string{"us", "de", "jp"}[s%3], clicks})
				if err == nil {
					acked.Add(1)
					ackedClicks += clicks
				}
			}
		}

		// probeFreshness asserts an acked marker becomes queryable through
		// the gateway within the SLA — the freshness-recovery contract after
		// each lifecycle event.
		probe := int64(0)
		probeFreshness := func(stage string) {
			markerTs := int64(10_000_000) + probe
			probe++
			sent := time.Now()
			for broker.send("marker", sent, []any{markerTs, "marker", int64(1)}) != nil {
				if time.Since(sent) > lcSLA {
					t.Fatalf("seed %d: %s: marker send not acked within %v", seed, stage, lcSLA)
				}
				time.Sleep(5 * time.Millisecond)
			}
			markers.Add(1)
			q := fmt.Sprintf("SELECT count(*) AS n FROM events WHERE ts = %d", markerTs)
			for {
				n, err := lcExecute(cl, q)
				if err == nil && n == 1 {
					break
				}
				if time.Since(sent) > lcSLA {
					t.Fatalf("seed %d: %s: marker %d not queryable after %v (SLA %v, last: n=%d err=%v)",
						seed, stage, markerTs, time.Since(sent), lcSLA, n, err)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}

		// Concurrent query load for the whole scenario: counts must never
		// decrease (monotonic ingest) and never exceed rows acked (no
		// duplicates from WAL redelivery or restarts). Errors must be clean
		// failures; with two clusters and resubmission they should be rare,
		// and are tolerated but tallied.
		stopQueries := make(chan struct{})
		var queryWG sync.WaitGroup
		var queryErrs atomic.Int64
		var querySuccesses atomic.Int64
		for g := 0; g < 2; g++ {
			queryWG.Add(1)
			go func() {
				defer queryWG.Done()
				prev := int64(0)
				for {
					select {
					case <-stopQueries:
						return
					default:
					}
					n, err := lcExecute(cl, "SELECT count(*) AS n FROM events")
					if err != nil {
						queryErrs.Add(1)
						continue
					}
					querySuccesses.Add(1)
					if n < prev {
						t.Errorf("seed %d: count went backwards: %d -> %d", seed, prev, n)
					}
					// Read the ceiling after the query so it can only be
					// an overestimate of what the query could have seen.
					ceiling := int64(lcHistRows) + acked.Load() + markers.Load()
					if n > ceiling {
						t.Errorf("seed %d: count %d exceeds acked rows %d — duplicates", seed, n, ceiling)
					}
					prev = n
					time.Sleep(time.Millisecond)
				}
			}()
		}

		lifecycleWatchdog(t, 120*time.Second, func() {
			streamBatch(lcBatch)
			probeFreshness("warmup")

			// Lifecycle event 1: SIGKILL + recover the ingest process.
			broker.crashRestart()
			if rec := broker.walStats().RecoveredRecords; rec <= 0 {
				t.Errorf("seed %d: ingest restart recovered %d records, want > 0", seed, rec)
			}
			streamBatch(lcBatch)
			probeFreshness("after ingest restart")

			// Lifecycle event 2: roll coordinator A — graceful drain via the
			// HTTP endpoint while queries keep flowing, then a replacement
			// registers under the same cluster name.
			resp, err := http.Post("http://"+coordA.Addr()+"/v1/shutdown", "", nil)
			if err != nil {
				t.Fatalf("seed %d: shutdown A: %v", seed, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("seed %d: shutdown A: status %d", seed, resp.StatusCode)
			}
			streamBatch(lcBatch)
			coordA2 := startLifecycleCoordinator(t, catalogs, workersA)
			if err := gw.AddCluster("a", coordA2.Addr()); err != nil {
				t.Fatal(err)
			}
			probeFreshness("after coordinator A roll")

			// Lifecycle event 3: roll coordinator B the same way — the
			// rolling restart covers every coordinator.
			if err := coordB.GracefulDrain(); err != nil {
				t.Fatalf("seed %d: drain B: %v", seed, err)
			}
			streamBatch(lcBatch)
			coordB2 := startLifecycleCoordinator(t, catalogs, workersB)
			if err := gw.AddCluster("b", coordB2.Addr()); err != nil {
				t.Fatal(err)
			}
			probeFreshness("after coordinator B roll")

			// Quiesce: stop the stream, drain the log, final maintenance.
			deadline := time.Now().Add(lcSLA)
			for broker.lag() > 0 {
				if time.Now().After(deadline) {
					t.Fatalf("seed %d: lag %d not drained within %v", seed, broker.lag(), lcSLA)
				}
				time.Sleep(10 * time.Millisecond)
			}
			broker.stop()
			close(stopQueries)
			queryWG.Wait()
		})

		// Row-exact post-quiesce: every acked event exactly once, across the
		// ingest crash and both coordinator rolls.
		wantRT := acked.Load() + markers.Load()
		wantTotal := int64(lcHistRows) + wantRT
		if got, err := lcExecute(cl, "SELECT count(*) AS n FROM events"); err != nil || got != wantTotal {
			t.Errorf("seed %d: final count(*) = %d (err %v), want %d", seed, got, err, wantTotal)
		}
		if got, err := lcExecute(cl, fmt.Sprintf("SELECT count(*) AS n FROM events WHERE ts < %d", lcBoundary)); err != nil || got != int64(lcHistRows) {
			t.Errorf("seed %d: historical count = %d (err %v), want %d", seed, got, err, lcHistRows)
		}
		if got, err := lcExecute(cl, fmt.Sprintf("SELECT count(*) AS n FROM events WHERE ts >= %d", lcBoundary)); err != nil || got != wantRT {
			t.Errorf("seed %d: real-time count = %d (err %v), want %d", seed, got, err, wantRT)
		}
		var wantClicks int64
		for i := 0; i < lcHistRows; i++ {
			wantClicks += lcHistClicks(i)
		}
		wantClicks += ackedClicks + markers.Load()
		if got, err := lcExecute(cl, "SELECT sum(clicks) AS s FROM events"); err != nil || got != wantClicks {
			t.Errorf("seed %d: final sum(clicks) = %d (err %v), want %d", seed, got, err, wantClicks)
		}

		// The durability plumbing actually ran: fsyncs on the ack path, and
		// the post-restart WAL saw a real recovery.
		ws := broker.walStats()
		if ws.Fsyncs <= 0 {
			t.Errorf("seed %d: wal fsyncs = %d, want > 0", seed, ws.Fsyncs)
		}
		if ws.RecoveredRecords <= 0 {
			t.Errorf("seed %d: recovered records = %d, want > 0", seed, ws.RecoveredRecords)
		}
		if s := querySuccesses.Load(); s == 0 {
			t.Errorf("seed %d: no query ever succeeded during the scenario", seed)
		}
		t.Logf("seed %d: acked=%d markers=%d query_ok=%d query_err=%d wal_fsyncs=%d recovered=%d",
			seed, acked.Load(), markers.Load(), querySuccesses.Load(), queryErrs.Load(),
			ws.Fsyncs, ws.RecoveredRecords)
	}
}
