package cluster

import (
	"hash/fnv"
	"sort"

	"prestolite/internal/connector"
)

// Soft-affinity split scheduling (§VII, RaptorX techniques): every split has
// a stable preference order over workers, computed by rendezvous hashing of
// (split description, worker address). The same split keeps landing on the
// same worker as long as that worker is alive and below the load cap, which
// is what makes the worker-local chunk and fragment-result caches pay off —
// a repeated dashboard query re-reads data that is already hot on exactly
// the workers that cached it. Affinity is *soft*: a full or missing worker
// degrades to the next in the preference order, never to a scheduling
// failure, and the reschedule machinery in retry.go still moves tasks off
// workers that die mid-query.

// loadCap bounds how many splits one worker may take: its fair share plus
// one. Affinity therefore never concentrates a stage onto a strict subset of
// the cluster beyond a one-split imbalance — placement prefers the hashed
// worker but the stage still parallelizes.
func loadCap(splits, workers int) int {
	if workers <= 0 {
		return splits
	}
	return (splits+workers-1)/workers + 1
}

// affinityScore ranks one (split, worker) pair. fnv64a over the split
// description and the worker address is stable across queries and across
// coordinator restarts — no state to rebuild, which is the point of
// rendezvous hashing over a stateful assignment table.
func affinityScore(desc, addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(desc))
	h.Write([]byte{0})
	h.Write([]byte(addr))
	return h.Sum64()
}

// rankWorkers returns worker indexes in descending score order for one
// split; ties break on address so the order is total and deterministic.
func rankWorkers(desc string, workers []*workerClient) []int {
	ranked := make([]int, len(workers))
	for i := range ranked {
		ranked[i] = i
	}
	sort.Slice(ranked, func(a, b int) bool {
		sa, sb := affinityScore(desc, workers[ranked[a]].addr), affinityScore(desc, workers[ranked[b]].addr)
		if sa != sb {
			return sa > sb
		}
		return workers[ranked[a]].addr < workers[ranked[b]].addr
	})
	return ranked
}

// assignSplits distributes splits over workers. With affinity false it is
// the legacy round-robin. With affinity true each split goes to its
// top-ranked worker, overflowing down the preference order when the target
// is at the load cap; placed/overflow report how many splits landed on
// their first choice versus degraded (the coordinator counts both).
func assignSplits(splits []connector.Split, workers []*workerClient, affinity bool) (assignment [][]connector.Split, placed, overflow int) {
	assignment = make([][]connector.Split, len(workers))
	if len(workers) == 0 {
		return assignment, 0, 0
	}
	if !affinity {
		for i, s := range splits {
			wi := i % len(workers)
			assignment[wi] = append(assignment[wi], s)
		}
		return assignment, 0, 0
	}
	capPer := loadCap(len(splits), len(workers))
	for _, s := range splits {
		ranked := rankWorkers(s.Description(), workers)
		target := -1
		for pos, wi := range ranked {
			if len(assignment[wi]) < capPer {
				target = wi
				if pos == 0 {
					placed++
				} else {
					overflow++
				}
				break
			}
		}
		if target < 0 {
			// Unreachable while capPer*len(workers) > len(splits), but a
			// least-loaded fallback beats a panic if the cap math changes.
			target = 0
			for wi := range assignment {
				if len(assignment[wi]) < len(assignment[target]) {
					target = wi
				}
			}
			overflow++
		}
		assignment[target] = append(assignment[target], s)
	}
	return assignment, placed, overflow
}
