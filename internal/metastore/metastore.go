// Package metastore implements the schema service of §V.A: "schemas are
// managed as a service outside of Presto, which tracks different versions of
// schemas, enforces schema evolution rules, and guarantees schema matching".
//
// Evolution rules (company-wide, per the paper):
//   - adding new fields to an existing struct is allowed (old data reads
//     NULL for the new field);
//   - removing existing fields is allowed (data still ingested into the
//     removed field is ignored);
//   - field rename and type change are NOT allowed.
package metastore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"prestolite/internal/types"
)

// Column is a named, typed table column.
type Column struct {
	Name string
	Type *types.Type
}

// Partition is one directory of files, keyed like "datestr=2017-03-02".
type Partition struct {
	Name string
	// Location is the directory holding the partition's files.
	Location string
	// Sealed marks immutable partitions; open partitions receive
	// near-real-time ingestion and bypass the file list cache (§VII.A).
	Sealed bool
}

// TableVersion is one historical schema.
type TableVersion struct {
	Version int
	Columns []Column
}

// Table is a registered table.
type Table struct {
	Schema        string
	Name          string
	Columns       []Column
	PartitionKeys []string // appended as virtual varchar columns
	Location      string
	Versions      []TableVersion

	partitions map[string]*Partition
	// changeVersion counts every mutation to the table's data layout:
	// partitions added or sealed, schema evolved. It is the snapshot version
	// stamped into result-cache keys (§VII): any bump makes old keys
	// unreachable, which is how cached query results are invalidated without
	// a scan of the cache.
	changeVersion int64
}

// Partitions returns partitions sorted by name.
func (t *Table) Partitions() []*Partition {
	out := make([]*Partition, 0, len(t.partitions))
	for _, p := range t.partitions {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Change describes one table mutation, delivered to OnChange listeners.
// Caches key invalidation off Location: for partition events it is the
// partition directory, for schema events the table directory.
type Change struct {
	Schema   string
	Table    string
	Kind     ChangeKind
	Location string
	// Version is the table's change version after the mutation.
	Version int64
}

// ChangeKind enumerates table mutations.
type ChangeKind int

const (
	// ChangePartitionAdded fires when a partition directory is registered.
	ChangePartitionAdded ChangeKind = iota
	// ChangePartitionSealed fires when a partition becomes immutable —
	// the moment its file listing becomes cacheable but any listing cached
	// while it was open is stale.
	ChangePartitionSealed
	// ChangeSchemaEvolved fires when EvolveTable records a new version.
	ChangeSchemaEvolved
)

// Metastore is the in-process schema service.
type Metastore struct {
	mu        sync.RWMutex
	tables    map[string]*Table // "schema.table"
	listeners []func(Change)
}

// New creates an empty metastore.
func New() *Metastore {
	return &Metastore{tables: map[string]*Table{}}
}

// OnChange registers a listener invoked after every table mutation.
// Listeners run synchronously, outside the metastore lock, in registration
// order; connectors subscribe their cache invalidation here.
func (m *Metastore) OnChange(fn func(Change)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, fn)
}

// notify delivers ch to listeners. Callers must NOT hold m.mu.
func (m *Metastore) notify(ch Change) {
	m.mu.RLock()
	fns := m.listeners
	m.mu.RUnlock()
	for _, fn := range fns {
		fn(ch)
	}
}

// TableVersion returns the current change version of a table: 0 for a
// freshly created table, bumped on every partition add/seal and schema
// evolution. ok is false when the table does not exist.
func (m *Metastore) TableVersion(schema, table string) (int64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tables[key(schema, table)]
	if !ok {
		return 0, false
	}
	return t.changeVersion, true
}

func key(schema, table string) string { return schema + "." + table }

// CreateTable registers a table.
func (m *Metastore) CreateTable(schema, name, location string, columns []Column, partitionKeys []string) (*Table, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := key(schema, name)
	if _, exists := m.tables[k]; exists {
		return nil, fmt.Errorf("metastore: table %s already exists", k)
	}
	t := &Table{
		Schema:        schema,
		Name:          name,
		Columns:       columns,
		PartitionKeys: partitionKeys,
		Location:      location,
		Versions:      []TableVersion{{Version: 1, Columns: columns}},
		partitions:    map[string]*Partition{},
	}
	m.tables[k] = t
	return t, nil
}

// GetTable resolves a table.
func (m *Metastore) GetTable(schema, name string) (*Table, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tables[key(schema, name)]
	if !ok {
		return nil, fmt.Errorf("metastore: table %s.%s does not exist", schema, name)
	}
	return t, nil
}

// ListTables lists table names in a schema, sorted.
func (m *Metastore) ListTables(schema string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, t := range m.tables {
		if t.Schema == schema {
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ListSchemas lists schema names, sorted.
func (m *Metastore) ListSchemas() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := map[string]bool{}
	for _, t := range m.tables {
		seen[t.Schema] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// AddPartition registers a partition directory.
func (m *Metastore) AddPartition(schema, table string, p Partition) error {
	m.mu.Lock()
	t, ok := m.tables[key(schema, table)]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: table %s.%s does not exist", schema, table)
	}
	cp := p
	t.partitions[p.Name] = &cp
	t.changeVersion++
	ch := Change{Schema: schema, Table: table, Kind: ChangePartitionAdded, Location: p.Location, Version: t.changeVersion}
	m.mu.Unlock()
	m.notify(ch)
	return nil
}

// SealPartition marks a partition immutable (eligible for file list
// caching).
func (m *Metastore) SealPartition(schema, table, partition string) error {
	m.mu.Lock()
	t, ok := m.tables[key(schema, table)]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: table %s.%s does not exist", schema, table)
	}
	p, ok := t.partitions[partition]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: partition %s of %s.%s does not exist", partition, schema, table)
	}
	p.Sealed = true
	t.changeVersion++
	ch := Change{Schema: schema, Table: table, Kind: ChangePartitionSealed, Location: p.Location, Version: t.changeVersion}
	m.mu.Unlock()
	m.notify(ch)
	return nil
}

// EvolveTable applies a schema change, enforcing the evolution rules. On
// success a new version is recorded.
func (m *Metastore) EvolveTable(schema, table string, newColumns []Column) error {
	m.mu.Lock()
	t, ok := m.tables[key(schema, table)]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("metastore: table %s.%s does not exist", schema, table)
	}
	oldByName := map[string]*types.Type{}
	for _, c := range t.Columns {
		oldByName[strings.ToLower(c.Name)] = c.Type
	}
	for _, c := range newColumns {
		if old, exists := oldByName[strings.ToLower(c.Name)]; exists {
			if err := CheckEvolution(old, c.Type, c.Name); err != nil {
				m.mu.Unlock()
				return err
			}
		}
	}
	t.Columns = newColumns
	t.Versions = append(t.Versions, TableVersion{Version: len(t.Versions) + 1, Columns: newColumns})
	t.changeVersion++
	ch := Change{Schema: schema, Table: table, Kind: ChangeSchemaEvolved, Location: t.Location, Version: t.changeVersion}
	m.mu.Unlock()
	m.notify(ch)
	return nil
}

// RenameColumn always fails: "field rename ... not allowed. Field name is
// used to identify metastore schema and Parquet file schema" (§V.A).
func (m *Metastore) RenameColumn(schema, table, oldName, newName string) error {
	return fmt.Errorf("metastore: renaming %s to %s is not allowed: field name identifies the column in both metastore and file schemas", oldName, newName)
}

// CheckEvolution validates old → new for one column at path. Struct fields
// may be added or removed; same-named fields must keep their exact type
// ("Presto is type strict, we do not allow automatic type coercion").
func CheckEvolution(old, new *types.Type, path string) error {
	if old.Kind != new.Kind {
		return fmt.Errorf("metastore: type change at %s (%s -> %s) is not allowed", path, old, new)
	}
	switch old.Kind {
	case types.KindRow:
		oldFields := map[string]*types.Type{}
		for _, f := range old.Fields {
			oldFields[strings.ToLower(f.Name)] = f.Type
		}
		for _, f := range new.Fields {
			if oldType, exists := oldFields[strings.ToLower(f.Name)]; exists {
				if err := CheckEvolution(oldType, f.Type, path+"."+f.Name); err != nil {
					return err
				}
			}
			// Added fields are fine: old data reads NULL.
		}
		// Removed fields are fine: ingested data for them is ignored.
		return nil
	case types.KindArray:
		return CheckEvolution(old.Elem, new.Elem, path+".element")
	case types.KindMap:
		if err := CheckEvolution(old.Key, new.Key, path+".key"); err != nil {
			return err
		}
		return CheckEvolution(old.Value, new.Value, path+".value")
	default:
		if !old.Equals(new) {
			return fmt.Errorf("metastore: type change at %s (%s -> %s) is not allowed", path, old, new)
		}
		return nil
	}
}
