package metastore

import (
	"strings"
	"testing"

	"prestolite/internal/types"
)

func baseStruct() *types.Type {
	return types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Varchar},
		types.Field{Name: "city_id", Type: types.Bigint},
		types.Field{Name: "status", Type: types.NewRow(
			types.Field{Name: "code", Type: types.Bigint},
		)},
	)
}

func newMS(t *testing.T) *Metastore {
	t.Helper()
	ms := New()
	if _, err := ms.CreateTable("rawdata", "trips", "/warehouse/rawdata/trips",
		[]Column{{Name: "base", Type: baseStruct()}, {Name: "fare", Type: types.Double}},
		[]string{"datestr"}); err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestCreateAndGet(t *testing.T) {
	ms := newMS(t)
	tab, err := ms.GetTable("rawdata", "trips")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Location != "/warehouse/rawdata/trips" || len(tab.Columns) != 2 {
		t.Fatalf("table = %+v", tab)
	}
	if len(tab.Versions) != 1 || tab.Versions[0].Version != 1 {
		t.Errorf("versions = %+v", tab.Versions)
	}
	if _, err := ms.CreateTable("rawdata", "trips", "x", nil, nil); err == nil {
		t.Error("duplicate create accepted")
	}
	if _, err := ms.GetTable("rawdata", "missing"); err == nil {
		t.Error("missing table accepted")
	}
	if got := ms.ListTables("rawdata"); len(got) != 1 || got[0] != "trips" {
		t.Errorf("tables = %v", got)
	}
	if got := ms.ListSchemas(); len(got) != 1 || got[0] != "rawdata" {
		t.Errorf("schemas = %v", got)
	}
}

func TestPartitions(t *testing.T) {
	ms := newMS(t)
	check := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	check(ms.AddPartition("rawdata", "trips", Partition{Name: "datestr=2017-03-02", Location: "/p1", Sealed: false}))
	check(ms.AddPartition("rawdata", "trips", Partition{Name: "datestr=2017-03-01", Location: "/p0", Sealed: true}))
	tab, _ := ms.GetTable("rawdata", "trips")
	parts := tab.Partitions()
	if len(parts) != 2 || parts[0].Name != "datestr=2017-03-01" {
		t.Fatalf("partitions = %v", parts)
	}
	check(ms.SealPartition("rawdata", "trips", "datestr=2017-03-02"))
	parts = tab.Partitions()
	if !parts[1].Sealed {
		t.Error("seal did not stick")
	}
	if err := ms.SealPartition("rawdata", "trips", "nope"); err == nil {
		t.Error("sealing missing partition accepted")
	}
	if err := ms.AddPartition("rawdata", "missing", Partition{}); err == nil {
		t.Error("partition on missing table accepted")
	}
}

func TestEvolutionAddRemoveFields(t *testing.T) {
	ms := newMS(t)
	// Add a field to the struct and a new top-level column: allowed.
	newBase := types.NewRow(
		types.Field{Name: "driver_uuid", Type: types.Varchar},
		types.Field{Name: "city_id", Type: types.Bigint},
		types.Field{Name: "status", Type: types.NewRow(
			types.Field{Name: "code", Type: types.Bigint},
			types.Field{Name: "reason", Type: types.Varchar}, // added
		)},
		types.Field{Name: "rating", Type: types.Double}, // added
	)
	if err := ms.EvolveTable("rawdata", "trips", []Column{
		{Name: "base", Type: newBase},
		{Name: "fare", Type: types.Double},
		{Name: "tip", Type: types.Double}, // new column
	}); err != nil {
		t.Fatalf("add evolution rejected: %v", err)
	}
	tab, _ := ms.GetTable("rawdata", "trips")
	if len(tab.Versions) != 2 {
		t.Errorf("versions = %d", len(tab.Versions))
	}

	// Remove fields: allowed.
	smaller := types.NewRow(types.Field{Name: "driver_uuid", Type: types.Varchar})
	if err := ms.EvolveTable("rawdata", "trips", []Column{{Name: "base", Type: smaller}}); err != nil {
		t.Fatalf("remove evolution rejected: %v", err)
	}
}

func TestEvolutionRejectsTypeChanges(t *testing.T) {
	ms := newMS(t)
	cases := []Column{
		// primitive type change inside struct
		{Name: "base", Type: types.NewRow(types.Field{Name: "city_id", Type: types.Varchar})},
		// struct replaced by primitive
		{Name: "base", Type: types.Bigint},
		// nested type change
		{Name: "base", Type: types.NewRow(types.Field{Name: "status", Type: types.NewRow(
			types.Field{Name: "code", Type: types.Varchar},
		)})},
	}
	for _, c := range cases {
		err := ms.EvolveTable("rawdata", "trips", []Column{c, {Name: "fare", Type: types.Double}})
		if err == nil {
			t.Errorf("evolution to %s unexpectedly accepted", c.Type)
			continue
		}
		if !strings.Contains(err.Error(), "not allowed") {
			t.Errorf("unexpected error: %v", err)
		}
	}
	// Top-level column type change.
	if err := ms.EvolveTable("rawdata", "trips", []Column{
		{Name: "base", Type: baseStruct()},
		{Name: "fare", Type: types.Varchar},
	}); err == nil {
		t.Error("top-level type change accepted")
	}
}

func TestRenameAlwaysRejected(t *testing.T) {
	ms := newMS(t)
	if err := ms.RenameColumn("rawdata", "trips", "fare", "price"); err == nil {
		t.Error("rename accepted")
	}
}

func TestCheckEvolutionNestedContainers(t *testing.T) {
	arr := types.NewArray(types.NewRow(types.Field{Name: "x", Type: types.Bigint}))
	arr2 := types.NewArray(types.NewRow(
		types.Field{Name: "x", Type: types.Bigint},
		types.Field{Name: "y", Type: types.Varchar},
	))
	if err := CheckEvolution(arr, arr2, "col"); err != nil {
		t.Errorf("array element field add rejected: %v", err)
	}
	badArr := types.NewArray(types.NewRow(types.Field{Name: "x", Type: types.Double}))
	if err := CheckEvolution(arr, badArr, "col"); err == nil {
		t.Error("array element type change accepted")
	}
	m := types.NewMap(types.Varchar, types.NewRow(types.Field{Name: "v", Type: types.Bigint}))
	m2 := types.NewMap(types.Varchar, types.NewRow(types.Field{Name: "v", Type: types.Bigint}, types.Field{Name: "w", Type: types.Bigint}))
	if err := CheckEvolution(m, m2, "col"); err != nil {
		t.Errorf("map value field add rejected: %v", err)
	}
	badKey := types.NewMap(types.Bigint, types.Bigint)
	if err := CheckEvolution(types.NewMap(types.Varchar, types.Bigint), badKey, "col"); err == nil {
		t.Error("map key type change accepted")
	}
}
