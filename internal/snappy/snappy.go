// Package snappy implements the Snappy block-format codec from scratch
// (stdlib-only), used by the columnar file format for the Fig 18 writer
// benchmarks. The format is the standard one: a uvarint-encoded decompressed
// length followed by a stream of literal and copy elements.
package snappy

import (
	"encoding/binary"
	"errors"
	"math"
)

const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03

	maxOffset = 1 << 15 // window for match search (block format allows 2^32-1; we emit copy-2 max)
)

// ErrCorrupt reports malformed input.
var ErrCorrupt = errors.New("snappy: corrupt input")

// MaxEncodedLen returns the worst-case compressed size for srcLen bytes.
func MaxEncodedLen(srcLen int) int {
	return 32 + srcLen + srcLen/6
}

// Encode compresses src, appending to dst's capacity if possible.
func Encode(dst, src []byte) []byte {
	if n := MaxEncodedLen(len(src)); cap(dst) < n {
		dst = make([]byte, 0, n)
	} else {
		dst = dst[:0]
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(src)))
	dst = append(dst, lenBuf[:n]...)

	if len(src) == 0 {
		return dst
	}

	// Hash-table match finder over 4-byte sequences.
	const tableBits = 14
	var table [1 << tableBits]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(u uint32) uint32 {
		return (u * 0x1e35a7bd) >> (32 - tableBits)
	}
	load32 := func(i int) uint32 {
		return binary.LittleEndian.Uint32(src[i:])
	}

	litStart := 0
	i := 0
	for i+4 <= len(src) {
		h := hash(load32(i))
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) <= maxOffset && load32(int(cand)) == load32(i) {
			// Emit pending literals.
			dst = emitLiteral(dst, src[litStart:i])
			// Extend the match.
			matchLen := 4
			for i+matchLen < len(src) && src[int(cand)+matchLen] == src[i+matchLen] {
				matchLen++
			}
			dst = emitCopy(dst, i-int(cand), matchLen)
			i += matchLen
			litStart = i
			continue
		}
		i++
	}
	dst = emitLiteral(dst, src[litStart:])
	return dst
}

func emitLiteral(dst, lit []byte) []byte {
	for len(lit) > 0 {
		chunk := lit
		if len(chunk) > 1<<16 {
			chunk = chunk[:1<<16]
		}
		n := len(chunk) - 1
		switch {
		case n < 60:
			dst = append(dst, byte(n)<<2|tagLiteral)
		case n < 1<<8:
			dst = append(dst, 60<<2|tagLiteral, byte(n))
		default:
			dst = append(dst, 61<<2|tagLiteral, byte(n), byte(n>>8))
		}
		dst = append(dst, chunk...)
		lit = lit[len(chunk):]
	}
	return dst
}

func emitCopy(dst []byte, offset, length int) []byte {
	// Long matches: emit 64-byte copies.
	for length >= 68 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	if length > 64 {
		// Emit a 60-byte copy, leaving >= 4 bytes.
		dst = append(dst, 59<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 60
	}
	if length >= 12 || offset >= 2048 || length < 4 {
		dst = append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
		return dst
	}
	// copy-1: 4 <= length <= 11, offset < 2048
	dst = append(dst, byte(offset>>8)<<5|byte(length-4)<<2|tagCopy1, byte(offset))
	return dst
}

// DecodedLen returns the decompressed length of src. Claimed lengths beyond
// 2^32-1 are rejected outright: they cannot come from a legal encoder and
// int(n) would overflow on 64-bit uvarints.
func DecodedLen(src []byte) (int, error) {
	n, read := binary.Uvarint(src)
	if read <= 0 || n > math.MaxUint32 {
		return 0, ErrCorrupt
	}
	return int(n), nil
}

// Decode decompresses src. dst is used when large enough.
func Decode(dst, src []byte) ([]byte, error) {
	dLen, err := DecodedLen(src)
	if err != nil {
		return nil, err
	}
	// The densest legal element is a 3-byte copy expanding to 64 bytes
	// (~21×), so a header claiming more than 64× the input is corrupt. The
	// check runs before allocation: a crafted header must not be able to
	// demand gigabytes for a few input bytes.
	if dLen > 64*len(src) {
		return nil, ErrCorrupt
	}
	_, hdr := binary.Uvarint(src)
	s := src[hdr:]
	if cap(dst) < dLen {
		dst = make([]byte, dLen)
	} else {
		dst = dst[:dLen]
	}
	d := 0
	for len(s) > 0 {
		tag := s[0]
		switch tag & 0x03 {
		case tagLiteral:
			n := int(tag >> 2)
			switch {
			case n < 60:
				n++
				s = s[1:]
			case n == 60:
				if len(s) < 2 {
					return nil, ErrCorrupt
				}
				n = int(s[1]) + 1
				s = s[2:]
			case n == 61:
				if len(s) < 3 {
					return nil, ErrCorrupt
				}
				n = int(s[1]) | int(s[2])<<8
				n++
				s = s[3:]
			default:
				return nil, ErrCorrupt // 62/63: 3- and 4-byte lengths unused by our encoder
			}
			if n > len(s) || d+n > dLen {
				return nil, ErrCorrupt
			}
			copy(dst[d:], s[:n])
			d += n
			s = s[n:]
		case tagCopy1:
			if len(s) < 2 {
				return nil, ErrCorrupt
			}
			length := int(tag>>2&0x07) + 4
			offset := int(tag>>5)<<8 | int(s[1])
			s = s[2:]
			if err := copyWithin(dst, &d, offset, length, dLen); err != nil {
				return nil, err
			}
		case tagCopy2:
			if len(s) < 3 {
				return nil, ErrCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(s[1]) | int(s[2])<<8
			s = s[3:]
			if err := copyWithin(dst, &d, offset, length, dLen); err != nil {
				return nil, err
			}
		case tagCopy4:
			if len(s) < 5 {
				return nil, ErrCorrupt
			}
			length := int(tag>>2) + 1
			offset := int(binary.LittleEndian.Uint32(s[1:]))
			s = s[5:]
			if err := copyWithin(dst, &d, offset, length, dLen); err != nil {
				return nil, err
			}
		}
	}
	if d != dLen {
		return nil, ErrCorrupt
	}
	return dst, nil
}

func copyWithin(dst []byte, d *int, offset, length, dLen int) error {
	if offset <= 0 || offset > *d || *d+length > dLen {
		return ErrCorrupt
	}
	// Byte-at-a-time to honor overlapping copies (RLE-style matches).
	for i := 0; i < length; i++ {
		dst[*d] = dst[*d-offset]
		*d++
	}
	return nil
}
