package snappy

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc := Encode(nil, src)
	dec, err := Decode(nil, enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d bytes out", len(src), len(dec))
	}
}

func TestRoundTripBasics(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abc"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte(strings.Repeat("abcd", 1000)),
		[]byte(strings.Repeat("the quick brown fox jumps over the lazy dog. ", 100)),
		bytes.Repeat([]byte{0}, 1<<17),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestCompressionRatio(t *testing.T) {
	src := []byte(strings.Repeat("hello world, hello world, hello world. ", 1000))
	enc := Encode(nil, src)
	if len(enc) > len(src)/4 {
		t.Errorf("repetitive input compressed to %d of %d bytes", len(enc), len(src))
	}
	if n, err := DecodedLen(enc); err != nil || n != len(src) {
		t.Errorf("DecodedLen = %d, %v", n, err)
	}
}

func TestIncompressibleInput(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	src := make([]byte, 1<<16)
	r.Read(src)
	enc := Encode(nil, src)
	if len(enc) > MaxEncodedLen(len(src)) {
		t.Errorf("encoded %d > MaxEncodedLen %d", len(enc), MaxEncodedLen(len(src)))
	}
	roundTrip(t, src)
}

func TestDecodeCorrupt(t *testing.T) {
	bad := [][]byte{
		{},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // bad uvarint
		{0x04, 0xf0},             // literal longer than input
		{0x04, 0x01, 0x00, 0x00}, // copy with zero offset
		{0x08, 0x00, 'a'},        // truncated
	}
	for _, c := range bad {
		if _, err := Decode(nil, c); err == nil {
			t.Errorf("Decode(%x) unexpectedly succeeded", c)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, size uint16, repetitive bool) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size) % 8192
		src := make([]byte, n)
		if repetitive {
			// Low-entropy input exercises the copy paths.
			pattern := make([]byte, 1+r.Intn(16))
			r.Read(pattern)
			for i := range src {
				src[i] = pattern[i%len(pattern)]
			}
			// Random mutations.
			for k := 0; k < n/20; k++ {
				src[r.Intn(n+1)%max(n, 1)] = byte(r.Intn(256))
			}
		} else {
			r.Read(src)
		}
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkEncodeRepetitive(b *testing.B) {
	src := []byte(strings.Repeat("uber trips in san francisco ", 4096))
	b.SetBytes(int64(len(src)))
	var dst []byte
	for i := 0; i < b.N; i++ {
		dst = Encode(dst, src)
	}
}

func BenchmarkDecodeRepetitive(b *testing.B) {
	src := []byte(strings.Repeat("uber trips in san francisco ", 4096))
	enc := Encode(nil, src)
	b.SetBytes(int64(len(src)))
	var dst []byte
	var err error
	for i := 0; i < b.N; i++ {
		dst, err = Decode(dst, enc)
		if err != nil {
			b.Fatal(err)
		}
	}
}
