package snappy

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzRoundTrip: Encode then Decode must reproduce any input byte-for-byte.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("a"))
	f.Add([]byte("abcabcabcabcabcabcabc"))
	f.Add(bytes.Repeat([]byte{0}, 100_000))
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := Encode(nil, src)
		dec, err := Decode(nil, enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%d bytes)): %v", len(src), err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("round trip mismatch: %d bytes in, %d bytes out", len(src), len(dec))
		}
	})
}

// FuzzDecode: arbitrary (mostly invalid) input must decode or error — never
// panic, never allocate unboundedly.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0x00})
	f.Add(Encode(nil, []byte("the quick brown fox")))
	// A header claiming 2^32-1 decoded bytes over no body.
	huge := make([]byte, binary.MaxVarintLen64)
	n := binary.PutUvarint(huge, 1<<32-1)
	f.Add(huge[:n])
	f.Fuzz(func(t *testing.T, src []byte) {
		dec, err := Decode(nil, src)
		if err == nil {
			if want, lerr := DecodedLen(src); lerr != nil || len(dec) != want {
				t.Fatalf("successful decode disagrees with DecodedLen: got %d, want %d (err %v)", len(dec), want, lerr)
			}
		}
	})
}

// TestDecodeTruncated: every strict prefix of a valid stream must fail
// cleanly — truncation mid-element, mid-literal, or mid-header may never
// panic or return a short result as success.
func TestDecodeTruncated(t *testing.T) {
	inputs := [][]byte{
		[]byte("hello, hello, hello, hello"),
		bytes.Repeat([]byte("abcdefgh"), 500),
		randBytes(rand.New(rand.NewSource(11)), 1000), // incompressible: long literals
	}
	for _, src := range inputs {
		enc := Encode(nil, src)
		for cut := 0; cut < len(enc); cut++ {
			if _, err := Decode(nil, enc[:cut]); err == nil {
				t.Fatalf("Decode accepted a %d/%d-byte prefix of a valid stream", cut, len(enc))
			}
		}
	}
}

// TestDecodeHugeClaimedLength: crafted headers demanding absurd allocations
// are rejected before any allocation happens.
func TestDecodeHugeClaimedLength(t *testing.T) {
	for _, claim := range []uint64{1 << 20, 1 << 31, 1<<32 - 1, 1 << 40, 1 << 63, 1<<64 - 1} {
		var hdr [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(hdr[:], claim)
		src := append(hdr[:n:n], 0x00) // tiny body can never satisfy the claim
		if _, err := Decode(nil, src); err == nil {
			t.Errorf("Decode accepted header claiming %d bytes over a 1-byte body", claim)
		}
		if claim > 1<<32-1 {
			if _, err := DecodedLen(src); err == nil {
				t.Errorf("DecodedLen accepted out-of-range claim %d", claim)
			}
		}
	}
}

// TestRoundTripSeededRandom: table-driven round trips over seeded random data
// across the size spectrum, both incompressible noise and synthetic
// repetitive data that stresses the copy emitter.
func TestRoundTripSeededRandom(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		for _, size := range []int{0, 1, 3, 64, 1 << 10, 1 << 16, 1<<16 + 1, 1 << 18} {
			noise := randBytes(rng, size)
			repetitive := noise
			if size > 0 {
				chunk := noise[:max(size/16, 1)]
				repetitive = bytes.Repeat(chunk, size/len(chunk)+1)[:size]
			}
			lowEntropy := make([]byte, size)
			for i := range lowEntropy {
				lowEntropy[i] = byte(rng.Intn(3))
			}
			for _, src := range [][]byte{noise, repetitive, lowEntropy} {
				enc := Encode(nil, src)
				dec, err := Decode(nil, enc)
				if err != nil {
					t.Fatalf("seed %d size %d: %v", seed, size, err)
				}
				if !bytes.Equal(dec, src) {
					t.Fatalf("seed %d size %d: round trip mismatch", seed, size)
				}
			}
		}
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
